// Sampled-mode benchmark: BenchmarkSampledRate runs each model's
// interval-sampled path over a trace 20x the BenchmarkSimRate length and
// reports effective throughput — Minst/s of trace covered, fast-forward
// warming included — plus the CPI error of the sampled estimate against
// the full run of the same trace as the "errpct" metric. Simulation and
// window placement are both deterministic, so errpct is a stable number
// per model: cmd/benchgate records it in the trajectory's "sampled"
// section and gates accuracy regressions exactly like rate regressions.
//
//	go test -run '^$' -bench BenchmarkSampledRate -benchmem
package repro

import (
	"math"
	"testing"

	"icfp/internal/pipeline"
	"icfp/internal/sim"
	"icfp/internal/spec"
	"icfp/internal/workload"
)

func BenchmarkSampledRate(b *testing.B) {
	cfg := benchCfg()
	total := cfg.WarmupInsts + 20*benchTimed
	// The registry's DefaultSampling shape: one window per twelfth of the
	// trace, 2% of each stratum measured, a ramp three windows long.
	pol := pipeline.SamplePolicy{Interval: total / 600, Period: total / 12, Ramp: total / 200, Seed: 1}
	w := workload.SPEC(simRateBench, total)
	for _, m := range sim.AllModels {
		full := sim.Run(m, cfg, w)
		b.Run(m.String(), func(b *testing.B) {
			b.ReportAllocs()
			var insts int64
			var errpct float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r := sim.New(m, cfg).(spec.SampledRunner).RunSampled(w, pol)
				insts += int64(w.Trace.Len())
				errpct = 100 * math.Abs(r.CPI()-full.CPI()) / full.CPI()
			}
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(insts)/secs/1e6, "Minst/s")
			}
			b.ReportMetric(errpct, "errpct")
		})
	}
}
