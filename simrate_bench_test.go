// Simulator-throughput benchmarks: BenchmarkSimRate measures raw
// simulation speed per machine model — simulated instructions per second
// (Minst/s) and allocation per run (B/op via -benchmem) — over one shared
// pre-generated workload, so the numbers isolate the simulator hot loops
// from workload generation.
//
//	go test -run '^$' -bench BenchmarkSimRate -benchmem
//
// cmd/benchgate runs this suite, exports the measurements as a
// perf-trajectory JSON (BENCH_PR6.json holds the committed baseline), and
// gates CI on sim-rate and allocs/op regressions. See README.md
// "Performance".
package repro

import (
	"testing"

	"icfp/internal/sim"
	"icfp/internal/workload"
)

// simRateBench is the benchmark workload: equake exercises the rally and
// store-buffer machinery of every advance-mode model without mcf's
// pathological chase serialization, so rates are comparable across all
// five machines.
const simRateBench = "equake"

func BenchmarkSimRate(b *testing.B) {
	cfg := benchCfg()
	// One shared read-only workload for every model and iteration; the
	// arena invariant (TestWorkloadImmutableAcrossModels) makes this safe
	// and keeps generation cost out of the measurement.
	w := workload.SPEC(simRateBench, cfg.WarmupInsts+benchTimed)
	for _, m := range sim.AllModels {
		b.Run(m.String(), func(b *testing.B) {
			b.ReportAllocs()
			var insts int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r := sim.Run(m, cfg, w)
				insts += r.Insts
			}
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(insts)/secs/1e6, "Minst/s")
			}
		})
	}
}
