// Simulator-throughput benchmarks: BenchmarkSimRate measures raw
// simulation speed per machine model — simulated instructions per second
// (Minst/s) and allocation per run (B/op via -benchmem) — over one shared
// pre-generated workload, so the numbers isolate the simulator hot loops
// from workload generation.
//
//	go test -run '^$' -bench BenchmarkSimRate -benchmem
//
// cmd/benchgate runs this suite, exports the measurements as a
// perf-trajectory JSON (BENCH_PR6.json holds the committed baseline), and
// gates CI on sim-rate and allocs/op regressions. See README.md
// "Performance".
package repro

import (
	"os"
	"testing"

	"icfp/internal/obs"
	"icfp/internal/sim"
	"icfp/internal/workload"
)

// simRateBench is the benchmark workload: equake exercises the rally and
// store-buffer machinery of every advance-mode model without mcf's
// pathological chase serialization, so rates are comparable across all
// five machines.
const simRateBench = "equake"

func BenchmarkSimRate(b *testing.B) {
	cfg := benchCfg()
	// With ICFP_BENCH_TELEMETRY set, every timed iteration also updates
	// the obs counters the production harness would — so the CI gate
	// measures sim rates with telemetry enabled and pins its cost inside
	// the regression tolerance. A nil registry keeps all of this as
	// no-ops in the default (untelemetered) run.
	var reg *obs.Registry
	if os.Getenv("ICFP_BENCH_TELEMETRY") != "" {
		reg = obs.NewRegistry()
	}
	// One shared read-only workload for every model and iteration; the
	// arena invariant (TestWorkloadImmutableAcrossModels) makes this safe
	// and keeps generation cost out of the measurement.
	w := workload.SPEC(simRateBench, cfg.WarmupInsts+benchTimed)
	for _, m := range sim.AllModels {
		b.Run(m.String(), func(b *testing.B) {
			b.ReportAllocs()
			sims := reg.Counter("exp_simulations_total", "", "model", m.String())
			simInsts := reg.Counter("exp_sim_instructions_total", "", "model", m.String())
			var insts int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r := sim.Run(m, cfg, w)
				insts += r.Insts
				sims.Inc()
				simInsts.Add(r.Insts)
			}
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(insts)/secs/1e6, "Minst/s")
			}
		})
	}
}
