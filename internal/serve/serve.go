// Package serve is the simulation service: the HTTP layer that turns
// the batch pipeline into a long-lived daemon (cmd/expq). Clients
// submit declarative suites — the same `-spec` documents the CLI runs —
// and get back per-job progress plus the final rendered tables,
// byte-identical to a local run of the same suite.
//
// The serving discipline mirrors the shared-batch-service shape of the
// cluster-computing literature in PAPERS.md: most traffic is absorbed
// by common infrastructure, and only genuinely new work reaches the
// compute backend. Concretely, each submitted job resolves through
// three layers:
//
//  1. the persistent content-addressed store (internal/store) — a prior
//     completion by any client, any process lifetime, is a hit;
//  2. the in-flight table — jobs identical (by canonical spec) to one
//     already simulating for another client attach to that flight
//     instead of simulating again (singleflight across all clients);
//  3. the compute backend — an elastic `expd join` fleet via the
//     internal/dist coordinator, or a local worker pool.
//
// Completed simulations are persisted before waiters are released, so a
// result is never announced and then lost to a crash.
//
// Responses stream as NDJSON (one JSON event per line, flushed as they
// happen): `plan` (how the submission resolved), `job` (one result
// merged), `output` (the rendered report), `done` or `error`. The wire
// format is plain chunked HTTP — curl works.
package serve

import (
	"bytes"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"

	"icfp/internal/dist"
	"icfp/internal/exp"
	"icfp/internal/exp/registry"
	"icfp/internal/obs"
	"icfp/internal/spec"
	"icfp/internal/store"
)

// maxSuiteBytes bounds one submitted suite document. Generously above
// any real suite (the full -all set is a few kilobytes) while keeping a
// hostile client from streaming gigabytes into memory.
const maxSuiteBytes = 8 << 20

// Config assembles a Server.
type Config struct {
	// Store persists completed results across submissions and daemon
	// restarts. Required.
	Store *store.Store
	// Join, when set, delivers dialed-in expd workers; cache-miss jobs
	// are dispatched to the fleet via the dist coordinator. The channel
	// is long-lived: each submission runs one coordinator round, and
	// workers redial between rounds (the expd join retry loop).
	Join <-chan dist.Worker
	// DistOpts seeds the per-submission coordinator options (heartbeat,
	// idle give-up, frame timeout, logging). Join, Parallel, Metrics,
	// and OnMerge are filled per submission.
	DistOpts dist.Options
	// WorkerParallel is each fleet worker's pool size (dist handshake).
	WorkerParallel int
	// LocalParallel, when Join is nil, sizes the in-process simulation
	// pool; values below 1 mean GOMAXPROCS.
	LocalParallel int
	// Token, when non-empty, requires `Authorization: Bearer <token>`
	// on submissions — the same shared secret the dist fleet uses.
	Token string
	// Metrics, when set, receives the expq_* service series and is
	// shared with the store and the dispatch layer.
	Metrics *obs.Registry
	// Log receives service diagnostics; nil means silent.
	Log *slog.Logger
}

// flight is one in-progress simulation shared by every submission that
// needs its key: the claimant runs it, everyone else waits on done.
type flight struct {
	done chan struct{}
	res  exp.CachedResult
	err  error
}

// Server handles suite submissions. One Server owns the in-flight
// table; run exactly one per store directory.
type Server struct {
	cfg   Config
	arena *exp.Arena // local mode: workload traces shared across submissions

	mu       sync.Mutex // guards inflight
	inflight map[exp.Key]*flight

	// dispatchMu serializes fleet rounds: the join channel feeds one
	// coordinator at a time. Store hits and flight waits never take it.
	dispatchMu sync.Mutex

	submissions *obs.Counter
	dispatched  *obs.Counter
	attached    *obs.Counter
	clients     *obs.Gauge
}

// New assembles a Server from cfg.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("serve: Config.Store is required")
	}
	s := &Server{
		cfg:         cfg,
		arena:       exp.NewArena(),
		inflight:    make(map[exp.Key]*flight),
		submissions: cfg.Metrics.Counter("expq_submissions_total", "suite submissions accepted"),
		dispatched:  cfg.Metrics.Counter("expq_dispatched_jobs_total", "jobs sent to the compute backend (store misses not already in flight)"),
		attached:    cfg.Metrics.Counter("expq_attached_jobs_total", "jobs attached to another client's in-flight simulation"),
		clients:     cfg.Metrics.Gauge("expq_clients", "submissions currently being served"),
	}
	cfg.Metrics.GaugeFunc("expq_inflight_jobs", "simulations currently running for some client", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(len(s.inflight))
	})
	return s, nil
}

// Handler returns the service's HTTP routes: POST /submit and GET
// /healthz. Metrics stay on the separate obs handler (cmd/expq's
// -metrics-addr), mirroring the expd split between control and
// observation planes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/submit", s.handleSubmit)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// authorized checks the bearer token, constant-time, hash-first so
// length is not observable either — the same discipline as the dist
// transport preamble.
func (s *Server) authorized(r *http.Request) bool {
	if s.cfg.Token == "" {
		return true
	}
	got := r.Header.Get("Authorization")
	want := "Bearer " + s.cfg.Token
	gh, wh := sha256.Sum256([]byte(got)), sha256.Sum256([]byte(want))
	return subtle.ConstantTimeCompare(gh[:], wh[:]) == 1
}

// Event is one NDJSON progress line of a streaming submission response.
type Event struct {
	Event string `json:"event"` // plan | job | output | done | error

	// plan: how the submission resolved against the three layers.
	Jobs       int `json:"jobs,omitempty"`       // distinct simulations in the suite
	StoreHits  int `json:"store_hits,omitempty"` // answered from the persistent store
	Attached   int `json:"attached,omitempty"`   // shared with another client's flight
	Dispatched int `json:"dispatched,omitempty"` // sent to the compute backend

	// job: one simulation merged.
	Machine  string `json:"machine,omitempty"`
	Workload string `json:"workload,omitempty"`
	Done     int    `json:"done,omitempty"`
	Total    int    `json:"total,omitempty"`

	// output: the rendered report, verbatim.
	Data string `json:"data,omitempty"`

	// error.
	Error string `json:"error,omitempty"`
}

// eventWriter serializes NDJSON events onto one response: job events
// arrive from concurrent merge callbacks.
type eventWriter struct {
	mu sync.Mutex
	w  io.Writer
	f  http.Flusher
}

func (ew *eventWriter) send(e Event) {
	ew.mu.Lock()
	defer ew.mu.Unlock()
	b, err := json.Marshal(e)
	if err != nil {
		return // events are plain data; this cannot happen
	}
	ew.w.Write(append(b, '\n'))
	if ew.f != nil {
		ew.f.Flush()
	}
}

// planned is one distinct simulation of a submission, tagged with how
// it resolved.
type planned struct {
	sj spec.Job
	k  exp.Key
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a suite document", http.StatusMethodNotAllowed)
		return
	}
	if !s.authorized(r) {
		http.Error(w, "missing or wrong bearer token", http.StatusUnauthorized)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSuiteBytes))
	if err != nil {
		http.Error(w, fmt.Sprintf("reading suite: %v", err), http.StatusBadRequest)
		return
	}
	suite, err := spec.UnmarshalSuite(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	jobs := make([]exp.Job, len(suite.Jobs))
	for i, j := range suite.Jobs {
		jobs[i] = exp.Job{Name: j.Name, Machine: j.Machine, Workload: j.Workload}
	}
	plan, err := exp.Plan(jobs)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	s.submissions.Inc()
	s.clients.Add(1)
	defer s.clients.Add(-1)
	if s.cfg.Log != nil {
		s.cfg.Log.Info("submission accepted", obs.KeyJobs, len(plan), "suite", suite.Name)
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	ew := &eventWriter{w: w, f: flusher}

	cache := exp.NewCache()
	out, err := s.run(suite, plan, cache, ew)
	if err != nil {
		ew.send(Event{Event: "error", Error: err.Error()})
		return
	}
	ew.send(Event{Event: "output", Data: string(out)})
	ew.send(Event{Event: "done", Jobs: len(plan)})
}

// run resolves the plan through store, in-flight table, and backend,
// then renders the suite from the filled cache. All simulation results
// land in cache; the returned bytes are the rendered report.
func (s *Server) run(suite spec.Suite, plan []spec.Job, cache *exp.Cache, ew *eventWriter) ([]byte, error) {
	var mine []planned   // this submission simulates these
	var shared []*flight // another submission is simulating these
	storeHits := 0
	for _, sj := range plan {
		k := exp.KeyOf(sj)
		if rec, ok, err := s.cfg.Store.Get(k); err != nil {
			return nil, err
		} else if ok {
			cache.AddResults([]exp.CachedResult{rec})
			storeHits++
			continue
		}
		s.mu.Lock()
		if f, ok := s.inflight[k]; ok {
			shared = append(shared, f)
			s.attached.Inc()
		} else {
			f := &flight{done: make(chan struct{})}
			s.inflight[k] = f
			mine = append(mine, planned{sj: sj, k: k})
		}
		s.mu.Unlock()
	}
	ew.send(Event{Event: "plan", Jobs: len(plan), StoreHits: storeHits, Attached: len(shared), Dispatched: len(mine)})

	total := len(plan)
	var doneMu sync.Mutex
	done := storeHits
	progress := func(k exp.Key) {
		doneMu.Lock()
		done++
		n := done
		doneMu.Unlock()
		ew.send(Event{Event: "job", Machine: k.Machine, Workload: k.Workload, Done: n, Total: total})
	}

	if err := s.dispatch(mine, cache, progress); err != nil {
		return nil, err
	}
	// Results simulated by other submissions: wait and merge. The
	// claimant persisted each before publishing, so a flight resolving
	// cleanly is durable.
	for _, f := range shared {
		<-f.done
		if f.err != nil {
			return nil, fmt.Errorf("serve: shared in-flight job failed: %w", f.err)
		}
		cache.AddResults([]exp.CachedResult{f.res})
		progress(exp.Key{Machine: f.res.Machine, Workload: f.res.Workload})
	}

	// Every key is now a cache hit: rendering simulates nothing, and the
	// bytes match a local run of the same suite by construction (same
	// renderer, same results).
	var buf bytes.Buffer
	if _, err := registry.ReportSuite(&buf, suite, exp.WithCache(cache), exp.Parallelism(1)); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// dispatch runs this submission's share of the plan on the backend,
// persisting and publishing each result as it merges. On any error the
// unpublished flights are failed and removed so a later submission can
// retry the keys.
func (s *Server) dispatch(mine []planned, cache *exp.Cache, progress func(exp.Key)) (err error) {
	if len(mine) == 0 {
		return nil
	}
	s.dispatched.Add(int64(len(mine)))

	published := make(map[exp.Key]bool, len(mine))
	var pubMu sync.Mutex
	// complete persists one merged result, then releases its waiters.
	// Persist-before-publish: a waiter released on a result that then
	// failed to persist would report success the store cannot back.
	complete := func(k exp.Key) {
		res, ok := cache.Lookup(k)
		if !ok {
			return // foreign key (cost report echo); nothing to publish
		}
		rec := exp.CachedResult{Machine: k.Machine, Workload: k.Workload, R: res}
		if d, ok := cache.Elapsed(k); ok {
			rec.ElapsedNS = int64(d)
		}
		perr := s.cfg.Store.Put(rec)
		pubMu.Lock()
		if published[k] {
			pubMu.Unlock()
			return
		}
		published[k] = true
		pubMu.Unlock()
		s.mu.Lock()
		f := s.inflight[k]
		delete(s.inflight, k)
		s.mu.Unlock()
		if f != nil {
			f.res, f.err = rec, perr
			close(f.done)
		}
		if perr != nil {
			if s.cfg.Log != nil {
				s.cfg.Log.Error("persisting result failed", obs.KeyCause, perr)
			}
			pubMu.Lock()
			if err == nil {
				err = perr
			}
			pubMu.Unlock()
			return
		}
		progress(k)
	}
	// Whatever the backend leaves unpublished (dispatch error, worker
	// loss) fails loudly for this submission's waiters and frees the
	// keys for a retry.
	defer func() {
		for _, p := range mine {
			pubMu.Lock()
			pub := published[p.k]
			pubMu.Unlock()
			if pub {
				continue
			}
			s.mu.Lock()
			f := s.inflight[p.k]
			delete(s.inflight, p.k)
			s.mu.Unlock()
			if f != nil {
				f.err = fmt.Errorf("serve: job (%s | %s) not completed: %w", p.k.Machine, p.k.Workload, err)
				close(f.done)
			}
		}
	}()

	if s.cfg.Join != nil {
		plan := make([]spec.Job, len(mine))
		for i, p := range mine {
			plan[i] = p.sj
		}
		s.dispatchMu.Lock()
		defer s.dispatchMu.Unlock()
		opts := s.cfg.DistOpts
		opts.Join = s.cfg.Join
		opts.Parallel = s.cfg.WorkerParallel
		opts.Metrics = s.cfg.Metrics
		opts.OnMerge = complete
		if rerr := dist.Run(plan, nil, cache, opts); rerr != nil && err == nil {
			err = rerr
		}
		return err
	}

	jobs := make([]exp.Job, len(mine))
	for i, p := range mine {
		jobs[i] = exp.Job{Name: fmt.Sprintf("serve/%d", i), Machine: p.sj.Machine, Workload: p.sj.Workload}
	}
	if _, rerr := exp.Run(jobs,
		exp.WithCache(cache),
		exp.WithArena(s.arena),
		exp.Parallelism(s.cfg.LocalParallel),
		exp.OnRun(complete),
	); rerr != nil && err == nil {
		err = rerr
	}
	return err
}
