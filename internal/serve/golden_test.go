package serve_test

import (
	"bytes"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/pem"
	"math/big"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"icfp/internal/dist"
	"icfp/internal/exp/registry"
	"icfp/internal/obs"
	"icfp/internal/serve"
	"icfp/internal/store"
)

// genFleetCert writes a throwaway self-signed certificate and key, the
// same shape the registry elastic-fleet golden test uses: it secures
// both the daemon's HTTPS front and the worker transport here.
func genFleetCert(t *testing.T) (certFile, keyFile string) {
	t.Helper()
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	tmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: "expq-test"},
		DNSNames:              []string{"localhost"},
		IPAddresses:           []net.IP{net.IPv4(127, 0, 0, 1), net.IPv6loopback},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(time.Hour),
		KeyUsage:              x509.KeyUsageDigitalSignature | x509.KeyUsageCertSign,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		BasicConstraintsValid: true,
		IsCA:                  true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		t.Fatal(err)
	}
	keyDER, err := x509.MarshalECPrivateKey(key)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	certFile = filepath.Join(dir, "cert.pem")
	keyFile = filepath.Join(dir, "key.pem")
	if err := os.WriteFile(certFile, pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: der}), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(keyFile, pem.EncodeToMemory(&pem.Block{Type: "EC PRIVATE KEY", Bytes: keyDER}), 0o600); err != nil {
		t.Fatal(err)
	}
	return certFile, keyFile
}

// TestServiceFleetMatchesGoldenAndSurvivesRestart is the subsystem's
// acceptance pin, end to end: the full -all suite submitted to a live
// daemon backed by an elastic TLS+token worker fleet renders
// byte-identical to the committed single-process golden; then the
// daemon "restarts" (a second Server over a re-opened store, no fleet
// at all), and resubmitting everything is answered entirely from the
// persistent store — zero jobs dispatched, asserted via metrics.
func TestServiceFleetMatchesGoldenAndSurvivesRestart(t *testing.T) {
	golden, err := os.ReadFile(filepath.Join("..", "..", "cmd", "experiments", "testdata", "golden_all_tiny.txt"))
	if err != nil {
		t.Fatal(err)
	}
	certFile, keyFile := genFleetCert(t)
	acceptSec := dist.Security{CertFile: certFile, KeyFile: keyFile, Token: "fleet-secret"}
	dialSec := dist.Security{CAFile: certFile, Token: "fleet-secret"}
	storeDir := t.TempDir()

	// The daemon's worker listener, exactly as cmd/expq wires it:
	// authenticate, read the register frame, feed the long-lived join
	// channel. The loop never stands down.
	wln, err := acceptSec.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer wln.Close()
	join := make(chan dist.Worker)
	go func() {
		for {
			conn, err := wln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				sc, err := acceptSec.Secure(c)
				if err != nil {
					return
				}
				w, err := dist.AcceptWorker(sc, c.RemoteAddr().String())
				if err != nil {
					return
				}
				join <- w
			}(conn)
		}
	}()

	// Two elastic workers in the expd join shape: dial, register, serve
	// one coordinator round, redial. Each submission is its own dist.Run,
	// so redialing is what makes one fleet serve a whole session.
	workerDone := make(chan struct{})
	defer close(workerDone)
	for i := 0; i < 2; i++ {
		name := []string{"wA", "wB"}[i]
		go func(name string) {
			for {
				select {
				case <-workerDone:
					return
				default:
				}
				conn, err := dialSec.Dial(wln.Addr().String())
				if err != nil {
					time.Sleep(10 * time.Millisecond)
					continue
				}
				if err := dist.Register(conn, name); err == nil {
					dist.Serve(conn)
				}
				conn.Close()
			}
		}(name)
	}

	// Daemon A: TLS+token HTTPS front, fleet backend, persistent store.
	regA := obs.NewRegistry()
	stA, err := store.Open(storeDir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	stA.Instrument(regA)
	srvA, err := serve.New(serve.Config{
		Store:    stA,
		Join:     join,
		DistOpts: dist.Options{Logf: t.Logf},
		Token:    "fleet-secret",
		Metrics:  regA,
	})
	if err != nil {
		t.Fatal(err)
	}
	hln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hsA := &http.Server{Handler: srvA.Handler()}
	go hsA.ServeTLS(hln, certFile, keyFile)

	client, err := serve.NewClient("https://"+hln.Addr().String(), "fleet-secret", certFile, "")
	if err != nil {
		t.Fatal(err)
	}

	// Submit every -all experiment in order; the concatenation of the
	// per-experiment reports IS the -all output (how experiments -server
	// assembles it), so it must match the committed golden byte for byte.
	submitAll := func(c *serve.Client) ([]byte, int, int) {
		t.Helper()
		var out bytes.Buffer
		hits, jobs := 0, 0
		for _, name := range registry.DefaultNames() {
			rep, err := c.Submit(describe(t, name), func(e serve.Event) {
				if e.Event == "plan" {
					hits += e.StoreHits
					jobs += e.Jobs
				}
			})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			out.Write(rep)
		}
		return out.Bytes(), hits, jobs
	}

	outA, _, _ := submitAll(client)
	if !bytes.Equal(outA, golden) {
		t.Errorf("service output differs from the committed golden (%d vs %d bytes)", len(outA), len(golden))
	}
	if got := regA.Counter("dist_results_merged_total", "").Value(); got < 1 {
		t.Errorf("dist_results_merged_total = %d, want >= 1 (the fleet must have simulated)", got)
	}
	if got := regA.Counter("expq_store_puts_total", "").Value(); got < 1 {
		t.Errorf("expq_store_puts_total = %d, want >= 1", got)
	}

	// "Restart": tear the daemon down and bring up a fresh Server over a
	// re-opened store — no fleet, and a local pool that must never run.
	hsA.Close()
	regB := obs.NewRegistry()
	stB, err := store.Open(storeDir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	stB.Instrument(regB)
	srvB, err := serve.New(serve.Config{Store: stB, LocalParallel: 1, Metrics: regB})
	if err != nil {
		t.Fatal(err)
	}
	hsB := httptest.NewServer(srvB.Handler())
	defer hsB.Close()
	clientB, err := serve.NewClient(hsB.URL, "", "", "")
	if err != nil {
		t.Fatal(err)
	}

	outB, hits, jobs := submitAll(clientB)
	if !bytes.Equal(outB, golden) {
		t.Errorf("post-restart output differs from the committed golden (%d vs %d bytes)", len(outB), len(golden))
	}
	if hits != jobs || jobs == 0 {
		t.Errorf("post-restart plans: %d store hits of %d jobs, want all from the store", hits, jobs)
	}
	if got := regB.Counter("expq_dispatched_jobs_total", "").Value(); got != 0 {
		t.Errorf("post-restart daemon dispatched %d jobs, want 0 (everything persisted)", got)
	}
	if got := regB.Counter("expq_store_hits_total", "").Value(); got != int64(jobs) {
		t.Errorf("expq_store_hits_total = %d, want %d", got, jobs)
	}
}
