package serve_test

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"icfp/internal/exp"
	"icfp/internal/exp/registry"
	"icfp/internal/obs"
	"icfp/internal/serve"
	"icfp/internal/sim"
	"icfp/internal/store"
)

// tinyParams mirrors the registry tests' scaled-down sample sizes, so
// suites here stay cheap.
func tinyParams() registry.Params {
	cfg := sim.DefaultConfig()
	cfg.WarmupInsts = 1_000
	return registry.Params{Cfg: cfg, N: 2_000}
}

// localServer builds a Server backed by a fresh store and the
// in-process simulation pool, plus its HTTP front.
func localServer(t *testing.T, reg *obs.Registry) (*serve.Server, *httptest.Server, *store.Store) {
	t.Helper()
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st.Instrument(reg)
	srv, err := serve.New(serve.Config{Store: st, LocalParallel: 2, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return srv, hs, st
}

// describe marshals one registry experiment as the suite document a
// client submits.
func describe(t *testing.T, name string) []byte {
	t.Helper()
	s, err := registry.Describe(name, tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// localRender runs the same experiment locally — the byte-identity
// reference for every remote path.
func localRender(t *testing.T, name string) []byte {
	t.Helper()
	s, err := registry.Describe(name, tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := registry.ReportSuite(&buf, s, exp.Parallelism(1)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSubmitMatchesLocalAndStorePersists pins the service's core
// contract: a submission renders byte-identically to the local run, and
// an immediate resubmission is answered entirely from the store.
func TestSubmitMatchesLocalAndStorePersists(t *testing.T) {
	reg := obs.NewRegistry()
	_, hs, st := localServer(t, reg)
	c, err := serve.NewClient(hs.URL, "", "", "")
	if err != nil {
		t.Fatal(err)
	}

	want := localRender(t, "fig8")
	var events []serve.Event
	out, err := c.Submit(describe(t, "fig8"), func(e serve.Event) { events = append(events, e) })
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, want) {
		t.Errorf("remote output differs from local:\n--- local ---\n%s\n--- remote ---\n%s", want, out)
	}
	if events[0].Event != "plan" || events[0].StoreHits != 0 || events[0].Dispatched == 0 {
		t.Errorf("first submission plan event = %+v, want all-dispatched", events[0])
	}
	if st.Len() == 0 {
		t.Error("store is empty after a completed submission")
	}

	// Resubmission: zero dispatched, all store hits, same bytes.
	dispatchedBefore := reg.Counter("expq_dispatched_jobs_total", "").Value()
	var events2 []serve.Event
	out2, err := c.Submit(describe(t, "fig8"), func(e serve.Event) { events2 = append(events2, e) })
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out2, want) {
		t.Error("resubmission output differs")
	}
	if events2[0].Dispatched != 0 || events2[0].StoreHits != events2[0].Jobs {
		t.Errorf("resubmission plan event = %+v, want 100%% store hits", events2[0])
	}
	if got := reg.Counter("expq_dispatched_jobs_total", "").Value(); got != dispatchedBefore {
		t.Errorf("resubmission dispatched %d jobs, want 0", got-dispatchedBefore)
	}
}

// TestSingleflightSharesInflightWork pins cross-client dedup: many
// concurrent submissions of the same suite produce each distinct
// simulation exactly once between them.
func TestSingleflightSharesInflightWork(t *testing.T) {
	reg := obs.NewRegistry()
	_, hs, _ := localServer(t, reg)
	suite := describe(t, "hops")

	const clients = 4
	var wg sync.WaitGroup
	outs := make([][]byte, clients)
	errs := make([]error, clients)
	plans := make([]serve.Event, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := serve.NewClient(hs.URL, "", "", "")
			if err != nil {
				errs[i] = err
				return
			}
			outs[i], errs[i] = c.Submit(suite, func(e serve.Event) {
				if e.Event == "plan" {
					plans[i] = e
				}
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	for i := 1; i < clients; i++ {
		if !bytes.Equal(outs[0], outs[i]) {
			t.Errorf("client %d got different bytes than client 0", i)
		}
	}
	// Each client's plan must fully account for its jobs across the
	// three layers, and the clients together must have shared work: far
	// fewer dispatches than clients x jobs.
	jobs := plans[0].Jobs
	if jobs == 0 {
		t.Fatal("plan event reports 0 jobs")
	}
	total := 0
	for i, p := range plans {
		if p.StoreHits+p.Attached+p.Dispatched != p.Jobs {
			t.Errorf("client %d plan %+v does not account for all jobs", i, p)
		}
		total += p.Dispatched
	}
	if total >= clients*jobs {
		t.Errorf("clients dispatched %d of %d job-submissions; store + in-flight table shared nothing", total, clients*jobs)
	}
	if got := reg.Counter("expq_dispatched_jobs_total", "").Value(); got != int64(total) {
		t.Errorf("expq_dispatched_jobs_total = %d, want %d (sum of plan events)", got, total)
	}
}

// TestBearerTokenAuth pins the auth gate: wrong or missing tokens are
// rejected before any work, the right token is accepted.
func TestBearerTokenAuth(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(serve.Config{Store: st, LocalParallel: 1, Token: "secret"})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	for _, tc := range []struct {
		token string
		want  bool
	}{{"secret", true}, {"wrong", false}, {"", false}} {
		c, err := serve.NewClient(hs.URL, tc.token, "", "")
		if err != nil {
			t.Fatal(err)
		}
		_, err = c.Submit(describe(t, "hops"), nil)
		if ok := err == nil; ok != tc.want {
			t.Errorf("token %q: err = %v, want success=%v", tc.token, err, tc.want)
		}
		if !tc.want && (err == nil || !strings.Contains(err.Error(), "401")) {
			t.Errorf("token %q: err = %v, want a 401", tc.token, err)
		}
	}

	// Health stays open: liveness probes don't carry credentials.
	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %v %v, want open 200", resp, err)
	}
	if resp != nil {
		resp.Body.Close()
	}
}

// TestSubmitRejectsGarbage pins the input gate: undecodable and invalid
// suites fail with a 400 before anything simulates.
func TestSubmitRejectsGarbage(t *testing.T) {
	_, hs, _ := localServer(t, nil)
	for _, tc := range []struct{ name, body string }{
		{"not json", "not json at all"},
		{"unknown field", `{"name":"x","jobs":[],"wat":1}`},
		{"invalid job", `{"name":"x","jobs":[{"name":"j","machine":"wat","workload":"wat"}]}`},
	} {
		resp, err := http.Post(hs.URL+"/submit", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}
	// GET is not a submission.
	resp, err := http.Get(hs.URL + "/submit")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /submit = %d, want 405", resp.StatusCode)
	}
}

// TestSubmissionsShareStoreAcrossSuites pins cross-suite sharing:
// fig7's in-order baselines cover fig8's (figure8Names is a subset of
// figure7Names with identical specs), so a fig8 submission after fig7
// must hit the store for every baseline.
func TestSubmissionsShareStoreAcrossSuites(t *testing.T) {
	reg := obs.NewRegistry()
	_, hs, _ := localServer(t, reg)
	c, err := serve.NewClient(hs.URL, "", "", "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(describe(t, "fig7"), nil); err != nil {
		t.Fatal(err)
	}
	var plan serve.Event
	if _, err := c.Submit(describe(t, "fig8"), func(e serve.Event) {
		if e.Event == "plan" {
			plan = e
		}
	}); err != nil {
		t.Fatal(err)
	}
	if plan.StoreHits == 0 {
		t.Errorf("fig8 after fig7 hit the store 0 times; shared in-order baselines must be reused (plan %+v)", plan)
	}
}

// TestFuzzSuiteIsFullStoreCitizen pins the fuzz family's service-level
// citizenship: a suite of fuzz-family scenarios (the registry's fuzz
// corpus experiment) renders remotely byte-identical to the local run,
// persists to the store, and an immediate resubmission is answered
// 100% from store hits with nothing dispatched — same seed and knobs,
// same canonical key, exactly like named workloads.
func TestFuzzSuiteIsFullStoreCitizen(t *testing.T) {
	reg := obs.NewRegistry()
	_, hs, st := localServer(t, reg)
	c, err := serve.NewClient(hs.URL, "", "", "")
	if err != nil {
		t.Fatal(err)
	}

	want := localRender(t, "fuzz")
	var events []serve.Event
	out, err := c.Submit(describe(t, "fuzz"), func(e serve.Event) { events = append(events, e) })
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, want) {
		t.Errorf("remote fuzz output differs from local:\n--- local ---\n%s\n--- remote ---\n%s", want, out)
	}
	if st.Len() == 0 {
		t.Error("store is empty after a completed fuzz submission")
	}

	dispatchedBefore := reg.Counter("expq_dispatched_jobs_total", "").Value()
	var events2 []serve.Event
	out2, err := c.Submit(describe(t, "fuzz"), func(e serve.Event) { events2 = append(events2, e) })
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out2, want) {
		t.Error("fuzz resubmission output differs")
	}
	if events2[0].Dispatched != 0 || events2[0].StoreHits != events2[0].Jobs {
		t.Errorf("fuzz resubmission plan event = %+v, want 100%% store hits", events2[0])
	}
	if got := reg.Counter("expq_dispatched_jobs_total", "").Value(); got != dispatchedBefore {
		t.Errorf("fuzz resubmission dispatched %d jobs, want 0", got-dispatchedBefore)
	}
}
