package serve

import (
	"bufio"
	"bytes"
	"crypto/tls"
	"crypto/x509"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
)

// Client submits suites to a running expq daemon and folds the NDJSON
// event stream back into the same artifacts a local run produces: the
// rendered report bytes, verbatim.
type Client struct {
	base  string
	token string
	http  *http.Client
}

// NewClient returns a client for the daemon at base (e.g.
// "http://host:9800" or "https://..."). caFile, when non-empty, pins
// the daemon's TLS certificate authority — the same -tls-ca file the
// dist fleet dials with; serverName overrides TLS hostname verification
// (for CAs whose certificates name a canonical host).
func NewClient(base string, token, caFile, serverName string) (*Client, error) {
	c := &Client{base: strings.TrimRight(base, "/"), token: token, http: &http.Client{}}
	if caFile != "" || serverName != "" {
		tc := &tls.Config{ServerName: serverName}
		if caFile != "" {
			pem, err := os.ReadFile(caFile)
			if err != nil {
				return nil, fmt.Errorf("serve: reading CA file: %w", err)
			}
			pool := x509.NewCertPool()
			if !pool.AppendCertsFromPEM(pem) {
				return nil, fmt.Errorf("serve: no certificates in CA file %s", caFile)
			}
			tc.RootCAs = pool
		}
		c.http = &http.Client{Transport: &http.Transport{TLSClientConfig: tc}}
	}
	return c, nil
}

// Submit sends one suite document and consumes the event stream until
// done or error. onEvent, when non-nil, observes every event as it
// arrives (progress display); the returned bytes are the daemon's
// rendered report, byte-identical to running the suite locally.
func (c *Client) Submit(suiteJSON []byte, onEvent func(Event)) ([]byte, error) {
	req, err := http.NewRequest(http.MethodPost, c.base+"/submit", bytes.NewReader(suiteJSON))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("serve: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}

	sc := bufio.NewScanner(resp.Body)
	// The output event carries the whole rendered report in one line.
	sc.Buffer(make([]byte, 0, 64<<10), maxSuiteBytes)
	var out []byte
	completed := false
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			return nil, fmt.Errorf("serve: undecodable event %q: %w", line, err)
		}
		if onEvent != nil {
			onEvent(e)
		}
		switch e.Event {
		case "output":
			out = []byte(e.Data)
		case "done":
			completed = true
		case "error":
			return nil, fmt.Errorf("serve: daemon: %s", e.Error)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !completed {
		return nil, fmt.Errorf("serve: response stream ended without a done event")
	}
	return out, nil
}
