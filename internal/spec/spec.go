// Package spec is the declarative vocabulary of the evaluation: a small,
// JSON-serializable way to name a machine, a workload, and a suite of
// experiments. Everything the harness can simulate is expressible as a
// spec value, and every spec value marshals losslessly — so experiments
// are data, not code: they can be written by hand, emitted by
// `cmd/experiments -describe`, shipped to distributed workers, and keyed
// in persistent caches, all in one format.
//
// The canonical encoding (Canonical: compact JSON with sorted object
// keys) is the identity of a machine or workload throughout the module:
// it is the memoization key of internal/exp, the wire identity of
// internal/dist batches, and the entry key of persisted cache snapshots.
// Two specs with equal canonical encodings always construct identical
// simulations; specs with different encodings are simply cached apart.
//
// Decoding is strict by design: unknown fields and out-of-range values
// are rejected with actionable errors (UnmarshalSuite, Validate), so a
// typo'd knob fails loudly instead of silently simulating the default
// machine.
package spec

import (
	"encoding/json"
	"fmt"
	"slices"

	"icfp/internal/pipeline"
	"icfp/internal/workload"
)

// Runner runs a workload; every machine a spec can name satisfies it.
type Runner interface {
	Run(w *workload.Workload) pipeline.Result
}

// SampledRunner additionally runs a workload under a sampling policy.
// Every machine a spec can name satisfies it too; the split interface
// keeps Runner — the minimal contract third-party harness code holds —
// unchanged.
type SampledRunner interface {
	Runner
	RunSampled(w *workload.Workload, pol pipeline.SamplePolicy) pipeline.Result
}

// The simulated micro-architectures a Machine can name.
const (
	ModelInOrder   = "in-order"
	ModelRunahead  = "runahead"
	ModelMultipass = "multipass"
	ModelSLTP      = "sltp"
	ModelICFP      = "icfp"
	ModelOOO       = "ooo"
)

// Models lists the valid Machine.Model values.
var Models = []string{ModelInOrder, ModelRunahead, ModelMultipass, ModelSLTP, ModelICFP, ModelOOO}

// Advance-trigger policy names (pipeline.AdvanceTrigger).
const (
	TriggerL2        = "l2"         // advance under L2 misses only
	TriggerPrimaryD1 = "primary-d1" // also under primary data-cache misses
	TriggerAll       = "all"        // under every miss
)

// Triggers lists the valid Machine.Trigger values.
var Triggers = []string{TriggerL2, TriggerPrimaryD1, TriggerAll}

// Store-buffer design names (icfp.SBMode), iCFP only.
const (
	SBChained = "chained" // address-hash chained indexed buffer (the paper's design)
	SBIdeal   = "ideal"   // idealized fully-associative buffer
	SBLimited = "limited" // indexed buffer with limited forwarding
)

// StoreBuffers lists the valid Machine.StoreBuffer values.
var StoreBuffers = []string{SBChained, SBIdeal, SBLimited}

// Machine declares one simulated machine: a model, the model-level
// policy knobs that are constructor arguments rather than configuration
// fields (advance trigger, store-buffer design, CFP), and named
// overrides of the Table 1 base configuration. The zero Overrides (nil)
// means the paper's default machine of that model.
type Machine struct {
	// Model selects the micro-architecture (see Models).
	Model string `json:"model"`
	// Trigger overrides the model's paper advance-trigger policy.
	// Valid for runahead, multipass, and icfp; empty means the model's
	// own default (runahead l2, multipass primary-d1, icfp all).
	Trigger string `json:"trigger,omitempty"`
	// StoreBuffer selects the iCFP store-buffer design (icfp only;
	// empty means chained).
	StoreBuffer string `json:"store_buffer,omitempty"`
	// CFP enables continual flow on the out-of-order model (ooo only).
	CFP bool `json:"cfp,omitempty"`
	// Overrides names the configuration fields that diverge from the
	// Table 1 base (BaseConfig); nil means none.
	Overrides *Overrides `json:"overrides,omitempty"`
}

// Sampling mode names.
const (
	// ModeFull simulates every instruction in detail (the default).
	ModeFull = "full"
	// ModeSampled runs SMARTS-style interval sampling: detailed
	// simulation inside periodic measurement windows, functional cache
	// and predictor warming in between.
	ModeSampled = "sampled"
)

// SamplingModes lists the valid Sampling.Mode values.
var SamplingModes = []string{ModeFull, ModeSampled}

// Sampling declares a workload's sampling policy. A nil policy (and,
// canonically, an explicit "full" one) means full detailed simulation.
type Sampling struct {
	// Mode is "full" or "sampled".
	Mode string `json:"mode"`
	// Interval is the detailed instructions measured per window
	// (sampled only; >= 1).
	Interval int `json:"interval,omitempty"`
	// Period is the stratum length: one window per Period instructions
	// (sampled only; >= Interval). Period == Interval measures every
	// instruction and is canonically a full run.
	Period int `json:"period,omitempty"`
	// Warmup is the minimum functionally warmed prefix before the first
	// window (sampled only; the machine's own warmup still applies).
	Warmup int `json:"warmup,omitempty"`
	// Ramp is the detailed-warmup length: detailed simulation starts Ramp
	// instructions before each window but only the window itself is
	// measured, hiding warm-state transients functional warming cannot
	// recreate (sampled only; SMARTS "detailed warmup").
	Ramp int `json:"ramp,omitempty"`
	// Seed selects stratified-random window placement within each
	// period; 0 places windows systematically at period starts.
	Seed int64 `json:"seed,omitempty"`
}

// Live reports whether the policy actually changes the simulation — a
// sampled mode whose windows do not provably coalesce into the full
// measured region. Non-live policies dispatch through the ordinary full
// path (and canonicalize away, so they share its cache identity).
func (s *Sampling) Live() bool {
	return s != nil && s.Mode == ModeSampled && !(s.Period == s.Interval && s.Warmup == 0 && s.Ramp == 0)
}

// Policy converts the declaration to the pipeline's sampling policy.
func (s *Sampling) Policy() pipeline.SamplePolicy {
	if s == nil || s.Mode != ModeSampled {
		return pipeline.SamplePolicy{}
	}
	return pipeline.SamplePolicy{Interval: s.Interval, Period: s.Period, Warmup: s.Warmup, Ramp: s.Ramp, Seed: s.Seed}
}

// Fuzz declares a member of the seeded adversarial scenario family
// (workload.Fuzz): the seed plus the four pathology knobs, each an
// integer intensity in 0..100. The (seed, knobs) pair fully determines
// the generated trace, so a fuzz workload is as much a first-class
// cache/store/wire citizen as a named SPEC benchmark. Zero knobs are
// canonically omitted: explicit-zero and absent spellings are the same
// scenario and share one identity.
type Fuzz struct {
	Seed         int64 `json:"seed"`
	SBPressure   int   `json:"sb_pressure,omitempty"`
	BranchOnLoad int   `json:"branch_on_load,omitempty"`
	MissCluster  int   `json:"miss_cluster,omitempty"`
	RallyStarve  int   `json:"rally_starve,omitempty"`
}

// Knobs converts the declaration to the workload generator's knobs.
func (f *Fuzz) Knobs() workload.FuzzKnobs {
	return workload.FuzzKnobs{
		SBPressure:   f.SBPressure,
		BranchOnLoad: f.BranchOnLoad,
		MissCluster:  f.MissCluster,
		RallyStarve:  f.RallyStarve,
	}
}

// Workload declares one workload: exactly one of a SPEC2000-profile
// benchmark (with its total dynamic instruction count, warmup included),
// a Figure 1 micro-scenario, or a fuzz-family scenario, plus an optional
// sampling policy.
type Workload struct {
	// SPEC names a SPEC2000-profile benchmark (workload.AllSPECNames).
	SPEC string `json:"spec,omitempty"`
	// Scenario names a Figure 1 micro-scenario (workload.AllScenarios).
	Scenario string `json:"scenario,omitempty"`
	// Fuzz names a seeded adversarial scenario-family member.
	Fuzz *Fuzz `json:"fuzz,omitempty"`
	// N is the total dynamic instruction count of a SPEC or fuzz
	// workload, warmup included. Scenarios have fixed traces and must
	// leave it 0.
	N int `json:"n,omitempty"`
	// Sampling selects how much of the workload is simulated in detail
	// (SPEC and fuzz only). Nil means full simulation.
	Sampling *Sampling `json:"sampling,omitempty"`
}

// Job is one named simulation: a machine run over a workload. Names
// index result sets and must be unique within a suite; the (machine,
// workload) pair — not the name — is the simulation's cache identity.
type Job struct {
	Name     string   `json:"name,omitempty"`
	Machine  Machine  `json:"machine"`
	Workload Workload `json:"workload"`
}

// Render kinds.
const (
	// RenderTable prints one row per job: cycles, instructions, IPC.
	RenderTable = "table"
	// RenderSpeedup groups jobs by the name prefix before the last "/"
	// and prints each job's percent speedup over its group's baseline
	// job (last name segment == Baseline), plus the geometric mean.
	RenderSpeedup = "speedup"
	// RenderSweep reads job names as "row/col" and prints a grid of
	// percent speedups over the baseline row at the same column.
	RenderSweep = "sweep"
	// RenderBuiltin renders with a registry experiment's own table
	// code; the suite's job names must match that experiment's.
	RenderBuiltin = "builtin"
)

// Render declares how a suite's results become a table.
type Render struct {
	Kind string `json:"kind"`
	// Baseline is the name segment of the per-group (speedup) or
	// per-column (sweep) baseline job; default "base".
	Baseline string `json:"baseline,omitempty"`
	// Builtin names the registry experiment whose renderer to reuse
	// (RenderBuiltin only).
	Builtin string `json:"builtin,omitempty"`
}

// Suite is a named list of jobs plus how to render their results — the
// unit a user authors, `-describe` emits, and `-spec` runs.
type Suite struct {
	Name string `json:"name"`
	Desc string `json:"desc,omitempty"`
	// N and Warm record the sample sizes the suite was built for
	// (timed and warmup instructions per sample). The jobs themselves
	// carry their full identity; these exist for renderers and tooling.
	N      int     `json:"n,omitempty"`
	Warm   int     `json:"warm,omitempty"`
	Render *Render `json:"render,omitempty"`
	Jobs   []Job   `json:"jobs"`
}

// SPECWorkload names a generated SPEC2000-profile benchmark with n total
// dynamic instructions (warmup included).
func SPECWorkload(name string, n int) Workload {
	return Workload{SPEC: name, N: n}
}

// ScenarioWorkload names one of the Figure 1 micro-scenarios.
func ScenarioWorkload(sc workload.Scenario) Workload {
	return Workload{Scenario: string(sc)}
}

// FuzzWorkload names the fuzz-family scenario (seed, knobs) with n
// total dynamic instructions (warmup included).
func FuzzWorkload(seed int64, k workload.FuzzKnobs, n int) Workload {
	return Workload{Fuzz: &Fuzz{
		Seed:         seed,
		SBPressure:   k.SBPressure,
		BranchOnLoad: k.BranchOnLoad,
		MissCluster:  k.MissCluster,
		RallyStarve:  k.RallyStarve,
	}, N: n}
}

// Canonical returns the canonical encoding of v: compact JSON with
// object keys sorted. It is deterministic across processes and Go
// versions, which is what makes it usable as a cache key and wire
// identity. All spec values are built from strings, bools, and small
// integers, so the float64 round trip through the generic JSON tree is
// exact.
func Canonical(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("spec: canonical encoding of %T: %v", v, err))
	}
	var tree any
	if err := json.Unmarshal(b, &tree); err != nil {
		panic(fmt.Sprintf("spec: canonical re-parse of %T: %v", v, err))
	}
	out, err := json.Marshal(tree) // encoding/json sorts map keys
	if err != nil {
		panic(fmt.Sprintf("spec: canonical re-encoding of %T: %v", v, err))
	}
	return string(out)
}

// Canonical returns the machine's canonical encoding — its identity in
// caches and on the wire. Spellings that construct provably identical
// machines collapse to one encoding: an explicit paper-default policy
// (icfp's "all" trigger and "chained" store buffer; runahead's "l2"
// trigger, which only restates the base configuration) encodes the same
// as leaving the field empty, so e.g. the Figure 8 chained column reuses
// Figure 5's full-iCFP simulations instead of repeating them. Only
// equivalences that hold for every override combination are collapsed —
// multipass's default trigger also forces D$-blocking, so its explicit
// spelling is not the same machine under a block_secondary_d1 override
// and stays distinct.
func (m Machine) Canonical() string {
	switch m.Model {
	case ModelICFP:
		if m.Trigger == TriggerAll {
			m.Trigger = ""
		}
		if m.StoreBuffer == SBChained {
			m.StoreBuffer = ""
		}
	case ModelRunahead:
		if m.Trigger == TriggerL2 {
			m.Trigger = ""
		}
	}
	return Canonical(m)
}

// Canonical returns the workload's canonical encoding. A sampling policy
// that provably does not change the simulation — explicit "full" mode, or
// a sampled mode whose windows coalesce into the whole measured region
// (period == interval with no extra warmup, for any seed) — encodes the
// same as no policy at all, so such spellings share the full run's cache
// entries and wire identity. Every live policy field, including the
// placement seed, stays part of the identity.
func (w Workload) Canonical() string {
	if !w.Sampling.Live() {
		w.Sampling = nil
	}
	return Canonical(w)
}

// Base returns the workload stripped of its sampling policy — the
// identity of the generated trace and memory image, which sampling does
// not affect. Sampled and full runs of one benchmark share a Base, and
// with it the harness's in-memory trace and warmed-state checkpoints.
func (w Workload) Base() Workload {
	w.Sampling = nil
	return w
}

// Validate checks the machine against the model vocabulary and the
// override ranges, returning an actionable error for the first problem.
func (m Machine) Validate() error {
	if m.Model == "" {
		return fmt.Errorf("spec: machine has no model (want one of %v)", Models)
	}
	if !slices.Contains(Models, m.Model) {
		return fmt.Errorf("spec: unknown model %q (want one of %v)", m.Model, Models)
	}
	if m.Trigger != "" {
		if !slices.Contains(Triggers, m.Trigger) {
			return fmt.Errorf("spec: unknown trigger %q (want one of %v)", m.Trigger, Triggers)
		}
		switch m.Model {
		case ModelRunahead, ModelMultipass, ModelICFP:
		default:
			return fmt.Errorf("spec: model %q has no advance trigger (trigger applies to %s, %s, %s)",
				m.Model, ModelRunahead, ModelMultipass, ModelICFP)
		}
	}
	if m.StoreBuffer != "" {
		if !slices.Contains(StoreBuffers, m.StoreBuffer) {
			return fmt.Errorf("spec: unknown store_buffer %q (want one of %v)", m.StoreBuffer, StoreBuffers)
		}
		if m.Model != ModelICFP {
			return fmt.Errorf("spec: store_buffer applies only to model %q, not %q", ModelICFP, m.Model)
		}
	}
	if m.CFP && m.Model != ModelOOO {
		return fmt.Errorf("spec: cfp applies only to model %q, not %q", ModelOOO, m.Model)
	}
	if m.Overrides != nil {
		if err := m.Overrides.Validate(); err != nil {
			return err
		}
		if m.Overrides.ROBEntries != nil && m.Model != ModelOOO {
			return fmt.Errorf("spec: rob_entries applies only to model %q, not %q", ModelOOO, m.Model)
		}
	}
	return nil
}

// maxInsts bounds workload and warmup instruction counts at roughly the
// paper's full scale: a spec arriving over the network must not be able
// to pin a worker's cores for hours on one key. It is the generator's
// own documented bound.
const maxInsts = workload.MaxInsts

// Validate checks the workload names exactly one known benchmark,
// scenario, or fuzz-family member with a sane instruction count. It is
// the panic barrier in front of workload generation: everything the
// generator would reject (out-of-range n, out-of-range fuzz knobs) is
// an error here, so a user-authored suite reaching a daemon can never
// panic it.
func (w Workload) Validate() error {
	kinds := 0
	for _, set := range []bool{w.SPEC != "", w.Scenario != "", w.Fuzz != nil} {
		if set {
			kinds++
		}
	}
	if kinds > 1 {
		return fmt.Errorf("spec: workload names %d of SPEC/scenario/fuzz; want exactly one", kinds)
	}
	switch {
	case w.SPEC != "":
		if !slices.Contains(workload.AllSPECNames, w.SPEC) {
			return fmt.Errorf("spec: unknown SPEC benchmark %q (want one of %v)", w.SPEC, workload.AllSPECNames)
		}
		if w.N < 1 || w.N > maxInsts {
			return fmt.Errorf("spec: SPEC workload %q has n=%d, want 1..%d (total dynamic instructions, warmup included)", w.SPEC, w.N, maxInsts)
		}
	case w.Scenario != "":
		if !slices.Contains(workload.AllScenarios, workload.Scenario(w.Scenario)) {
			return fmt.Errorf("spec: unknown scenario %q (want one of %v)", w.Scenario, workload.AllScenarios)
		}
		if w.N != 0 {
			return fmt.Errorf("spec: scenario %q has fixed length; n=%d must be omitted", w.Scenario, w.N)
		}
	case w.Fuzz != nil:
		if err := w.Fuzz.Knobs().Validate(); err != nil {
			return fmt.Errorf("spec: %w", err)
		}
		if w.N < 1 || w.N > maxInsts {
			return fmt.Errorf("spec: fuzz workload seed=%d has n=%d, want 1..%d (total dynamic instructions, warmup included)", w.Fuzz.Seed, w.N, maxInsts)
		}
	default:
		return fmt.Errorf("spec: workload names neither a SPEC benchmark, a scenario, nor a fuzz scenario")
	}
	if s := w.Sampling; s != nil {
		if w.Scenario != "" {
			return fmt.Errorf("spec: sampling applies only to SPEC and fuzz workloads, not scenario %q", w.Scenario)
		}
		switch s.Mode {
		case ModeFull:
			if s.Interval != 0 || s.Period != 0 || s.Warmup != 0 || s.Ramp != 0 || s.Seed != 0 {
				return fmt.Errorf("spec: sampling mode %q takes no interval/period/warmup/ramp/seed", ModeFull)
			}
		case ModeSampled:
			if s.Interval < 1 || s.Interval > maxInsts {
				return fmt.Errorf("spec: sampling interval %d, want 1..%d", s.Interval, maxInsts)
			}
			if s.Period < s.Interval || s.Period > maxInsts {
				return fmt.Errorf("spec: sampling period %d, want interval (%d)..%d", s.Period, s.Interval, maxInsts)
			}
			if s.Warmup < 0 || s.Warmup > maxInsts {
				return fmt.Errorf("spec: sampling warmup %d, want 0..%d", s.Warmup, maxInsts)
			}
			if s.Ramp < 0 || s.Ramp > maxInsts {
				return fmt.Errorf("spec: sampling ramp %d, want 0..%d", s.Ramp, maxInsts)
			}
			if s.Warmup+s.Interval > w.N {
				return fmt.Errorf("spec: sampling warmup %d + interval %d exceeds workload n=%d", s.Warmup, s.Interval, w.N)
			}
		default:
			return fmt.Errorf("spec: unknown sampling mode %q (want one of %v)", s.Mode, SamplingModes)
		}
	}
	return nil
}

// New generates the declared workload. The spec must be valid
// (Validate is the panic barrier: every input it accepts generates).
func (w Workload) New() *workload.Workload {
	switch {
	case w.Scenario != "":
		return workload.NewScenario(workload.Scenario(w.Scenario))
	case w.Fuzz != nil:
		return workload.Fuzz(w.Fuzz.Seed, w.Fuzz.Knobs(), w.N)
	}
	return workload.SPEC(w.SPEC, w.N)
}

// Validate checks the job's machine and workload, with the job's name as
// context.
func (j Job) Validate() error {
	if err := j.Machine.Validate(); err != nil {
		return fmt.Errorf("job %q: %w", j.Name, err)
	}
	if err := j.Workload.Validate(); err != nil {
		return fmt.Errorf("job %q: %w", j.Name, err)
	}
	return nil
}

// renderKinds lists the valid Render.Kind values.
var renderKinds = []string{RenderTable, RenderSpeedup, RenderSweep, RenderBuiltin}

// Validate checks the render declaration.
func (r Render) Validate() error {
	if !slices.Contains(renderKinds, r.Kind) {
		return fmt.Errorf("spec: unknown render kind %q (want one of %v)", r.Kind, renderKinds)
	}
	if r.Kind == RenderBuiltin && r.Builtin == "" {
		return fmt.Errorf("spec: render kind %q needs a builtin experiment name", RenderBuiltin)
	}
	if r.Kind != RenderBuiltin && r.Builtin != "" {
		return fmt.Errorf("spec: render kind %q does not take a builtin name (%q)", r.Kind, r.Builtin)
	}
	if r.Baseline != "" && r.Kind != RenderSpeedup && r.Kind != RenderSweep {
		return fmt.Errorf("spec: render kind %q does not take a baseline (%q)", r.Kind, r.Baseline)
	}
	return nil
}

// Validate checks the whole suite: a name, valid sample sizes, a valid
// render, and uniquely named valid jobs.
func (s Suite) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("spec: suite has no name")
	}
	if s.N < 0 || s.N > maxInsts || s.Warm < 0 || s.Warm > maxInsts {
		return fmt.Errorf("spec: suite %q has n=%d, warm=%d; want 0..%d each", s.Name, s.N, s.Warm, maxInsts)
	}
	if s.Render != nil {
		if err := s.Render.Validate(); err != nil {
			return fmt.Errorf("suite %q: %w", s.Name, err)
		}
	}
	seen := make(map[string]bool, len(s.Jobs))
	for i, j := range s.Jobs {
		if j.Name == "" {
			return fmt.Errorf("spec: suite %q job %d has no name", s.Name, i)
		}
		if seen[j.Name] {
			return fmt.Errorf("spec: suite %q has two jobs named %q", s.Name, j.Name)
		}
		seen[j.Name] = true
		if err := j.Validate(); err != nil {
			return fmt.Errorf("suite %q: %w", s.Name, err)
		}
	}
	return nil
}

// Marshal renders the suite as indented JSON with a trailing newline.
// The encoding is deterministic: Marshal ∘ UnmarshalSuite ∘ Marshal is
// the identity on bytes.
func (s Suite) Marshal() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("spec: encoding suite %q: %w", s.Name, err)
	}
	return append(b, '\n'), nil
}

// UnmarshalSuite parses and validates a suite. Decoding is strict:
// unknown fields anywhere in the document (a typo'd "trigerr") and
// trailing garbage are errors, and the parsed suite must validate.
func UnmarshalSuite(data []byte) (Suite, error) {
	var s Suite
	if err := strictUnmarshal(data, &s); err != nil {
		return Suite{}, fmt.Errorf("spec: decoding suite: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Suite{}, err
	}
	return s, nil
}
