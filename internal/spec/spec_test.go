package spec_test

import (
	"reflect"
	"strings"
	"testing"

	"icfp/internal/icfp"
	"icfp/internal/inorder"
	"icfp/internal/multipass"
	"icfp/internal/ooo"
	"icfp/internal/pipeline"
	"icfp/internal/runahead"
	"icfp/internal/sltp"
	"icfp/internal/spec"
	"icfp/internal/workload"
)

func TestCanonicalSortsKeysAndIsStable(t *testing.T) {
	m := spec.Machine{Model: spec.ModelICFP, Trigger: spec.TriggerL2,
		Overrides: &spec.Overrides{Warmup: spec.Int(1000), L2HitLat: spec.Int(30)}}
	c := m.Canonical()
	if c != m.Canonical() {
		t.Fatal("canonical encoding is not stable")
	}
	// Keys are sorted: "l2_hit_lat" < "warmup" inside overrides, "model"
	// < "overrides" < "trigger" at the top.
	if want := `{"model":"icfp","overrides":{"l2_hit_lat":30,"warmup":1000},"trigger":"l2"}`; c != want {
		t.Errorf("canonical = %s, want %s", c, want)
	}
	if w := spec.SPECWorkload("mcf", 3000); w.Canonical() != `{"n":3000,"spec":"mcf"}` {
		t.Errorf("workload canonical = %s", w.Canonical())
	}
	// Equal values encode equally regardless of how they were built.
	m2 := spec.Machine{Trigger: spec.TriggerL2, Model: spec.ModelICFP,
		Overrides: &spec.Overrides{L2HitLat: spec.Int(30), Warmup: spec.Int(1000)}}
	if m2.Canonical() != c {
		t.Error("field assignment order leaked into the canonical encoding")
	}
}

// TestCanonicalCollapsesPaperDefaultSpellings pins the key-sharing
// rule: explicit paper-default policies encode like the empty field, so
// identically constructed machines (Figure 8's chained column vs Figure
// 5's full iCFP) share one cache key — while equivalences that do not
// hold under every override (multipass) stay distinct.
func TestCanonicalCollapsesPaperDefaultSpellings(t *testing.T) {
	icfpDefault := spec.Machine{Model: spec.ModelICFP}
	icfpExplicit := spec.Machine{Model: spec.ModelICFP, Trigger: spec.TriggerAll, StoreBuffer: spec.SBChained}
	if icfpDefault.Canonical() != icfpExplicit.Canonical() {
		t.Error("explicit all/chained iCFP must share the default iCFP's key")
	}
	raDefault := spec.Machine{Model: spec.ModelRunahead}
	raExplicit := spec.Machine{Model: spec.ModelRunahead, Trigger: spec.TriggerL2}
	if raDefault.Canonical() != raExplicit.Canonical() {
		t.Error("explicit l2 runahead must share the default runahead's key")
	}
	// Non-defaults stay distinct.
	if (spec.Machine{Model: spec.ModelICFP, Trigger: spec.TriggerL2}).Canonical() == icfpDefault.Canonical() {
		t.Error("iCFP-L2 collapsed into the default iCFP")
	}
	if (spec.Machine{Model: spec.ModelICFP, StoreBuffer: spec.SBIdeal}).Canonical() == icfpDefault.Canonical() {
		t.Error("ideal store buffer collapsed into chained")
	}
	// Multipass's explicit default trigger is NOT the same machine under
	// a block_secondary_d1 override, so it must not collapse.
	mpDefault := spec.Machine{Model: spec.ModelMultipass}
	mpExplicit := spec.Machine{Model: spec.ModelMultipass, Trigger: spec.TriggerPrimaryD1}
	if mpDefault.Canonical() == mpExplicit.Canonical() {
		t.Error("multipass explicit trigger must stay a distinct key")
	}
}

// TestMachineNewMatchesDirectConstructors pins that the spec constructor
// path builds the same machines as the direct model constructors: same
// cycle counts on a real workload.
func TestMachineNewMatchesDirectConstructors(t *testing.T) {
	cfg := spec.BaseConfig()
	cfg.WarmupInsts = 5_000
	w := workload.SPEC("mcf", cfg.WarmupInsts+20_000)
	warm := &spec.Overrides{Warmup: spec.Int(5_000)}

	direct := map[string]spec.Runner{
		"in-order":  inorder.New(cfg),
		"runahead":  runahead.New(cfg),
		"multipass": multipass.New(cfg),
		"sltp":      sltp.New(cfg),
		"icfp":      icfp.New(cfg),
		"icfp-l2":   icfp.NewWithOptions(cfg, pipeline.TriggerL2Only, icfp.SBChained),
		"icfp-sb":   icfp.NewWithOptions(cfg, pipeline.TriggerAll, icfp.SBLimited),
	}
	viaSpec := map[string]spec.Machine{
		"in-order":  {Model: spec.ModelInOrder, Overrides: warm},
		"runahead":  {Model: spec.ModelRunahead, Overrides: warm},
		"multipass": {Model: spec.ModelMultipass, Overrides: warm},
		"sltp":      {Model: spec.ModelSLTP, Overrides: warm},
		"icfp":      {Model: spec.ModelICFP, Overrides: warm},
		"icfp-l2":   {Model: spec.ModelICFP, Trigger: spec.TriggerL2, Overrides: warm},
		"icfp-sb":   {Model: spec.ModelICFP, StoreBuffer: spec.SBLimited, Overrides: warm},
	}
	for name, m := range viaSpec {
		r, err := m.New()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got := r.Run(w).Cycles
		want := direct[name].Run(w).Cycles
		if got != want {
			t.Errorf("%s: spec-built machine ran %d cycles, direct constructor %d", name, got, want)
		}
	}

	// ooo, including the CFP flag and the ROB override.
	oc := ooo.DefaultConfig()
	oc.Config = cfg
	oc.CFP = true
	oc.ROBEntries = 64
	want := ooo.New(oc).Run(w).Cycles
	m := spec.Machine{Model: spec.ModelOOO, CFP: true,
		Overrides: &spec.Overrides{Warmup: spec.Int(5_000), ROBEntries: spec.Int(64)}}
	r, err := m.New()
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Run(w).Cycles; got != want {
		t.Errorf("ooo-cfp: spec-built machine ran %d cycles, direct constructor %d", got, want)
	}
}

func TestOverridesForRoundTrips(t *testing.T) {
	base := spec.BaseConfig()
	if ov, err := spec.OverridesFor(base); err != nil || ov != nil {
		t.Fatalf("OverridesFor(base) = (%+v, %v), want (nil, nil)", ov, err)
	}

	cfg := base
	cfg.WarmupInsts = 1_000
	cfg.Hier.L2HitLat = 35
	cfg.PoisonBits = 2
	cfg.NonBlockingRally = false
	ov, err := spec.OverridesFor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := spec.Machine{Model: spec.ModelICFP, Overrides: ov}
	back, err := m.Config()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, cfg) {
		t.Errorf("base + OverridesFor(cfg) != cfg:\n%+v\n%+v", back, cfg)
	}

	// A divergence no override expresses must be an error, not a silent
	// drop.
	bad := base
	bad.Hier.L1D.SizeBytes *= 2
	if _, err := spec.OverridesFor(bad); err == nil {
		t.Error("OverridesFor accepted a cache-geometry change no override expresses")
	}
	bad2 := base
	bad2.Trigger = pipeline.TriggerAll
	if _, err := spec.OverridesFor(bad2); err == nil {
		t.Error("OverridesFor accepted a trigger change (trigger rides on Machine, not Overrides)")
	}
}

func TestMergeOverrides(t *testing.T) {
	primary := &spec.Overrides{PoisonBits: spec.Int(1)}
	fallback := &spec.Overrides{PoisonBits: spec.Int(8), Warmup: spec.Int(500)}
	got := spec.Merge(primary, fallback)
	if *got.PoisonBits != 1 || *got.Warmup != 500 {
		t.Errorf("Merge = %+v, want primary's poison_bits and fallback's warmup", got)
	}
	if spec.Merge(nil, nil) != nil {
		t.Error("Merge(nil, nil) must stay nil")
	}
	if spec.Merge(&spec.Overrides{}, nil) != nil {
		t.Error("an all-unset Overrides must normalize to nil")
	}
	// Merge must not alias its inputs: mutating a merged cell in place
	// must leave both inputs untouched.
	*got.PoisonBits = 4
	*got.Warmup = 9
	if *primary.PoisonBits != 1 {
		t.Error("Merge aliased its primary input's pointer cells")
	}
	if *fallback.Warmup != 500 || *fallback.PoisonBits != 8 {
		t.Error("Merge aliased its fallback input's pointer cells")
	}
}

func TestValidateActionableErrors(t *testing.T) {
	cases := map[string]interface{ Validate() error }{
		"unknown model":        spec.Machine{Model: "icpf"},
		"no model":             spec.Machine{},
		"unknown trigger":      spec.Machine{Model: spec.ModelICFP, Trigger: "sometimes"},
		"trigger on in-order":  spec.Machine{Model: spec.ModelInOrder, Trigger: spec.TriggerAll},
		"sb on runahead":       spec.Machine{Model: spec.ModelRunahead, StoreBuffer: spec.SBIdeal},
		"cfp on icfp":          spec.Machine{Model: spec.ModelICFP, CFP: true},
		"rob on sltp":          spec.Machine{Model: spec.ModelSLTP, Overrides: &spec.Overrides{ROBEntries: spec.Int(64)}},
		"poison out of range":  spec.Machine{Model: spec.ModelICFP, Overrides: &spec.Overrides{PoisonBits: spec.Int(9)}},
		"width out of range":   spec.Machine{Model: spec.ModelInOrder, Overrides: &spec.Overrides{Width: spec.Int(0)}},
		"unknown benchmark":    spec.Workload{SPEC: "mcff", N: 1000},
		"zero n":               spec.Workload{SPEC: "mcf"},
		"hostile n":            spec.Workload{SPEC: "mcf", N: 1 << 31},
		"unknown scenario":     spec.Workload{Scenario: "zzz"},
		"scenario with n":      spec.Workload{Scenario: string(workload.ScenarioLoneL2), N: 5},
		"both spec & scenario": spec.Workload{SPEC: "mcf", N: 10, Scenario: string(workload.ScenarioLoneL2)},
		"empty workload":       spec.Workload{},
		"fuzz & spec":          spec.Workload{SPEC: "mcf", Fuzz: &spec.Fuzz{Seed: 1}, N: 10},
		"fuzz & scenario":      spec.Workload{Scenario: string(workload.ScenarioLoneL2), Fuzz: &spec.Fuzz{Seed: 1}},
		"fuzz knob too high":   spec.Workload{Fuzz: &spec.Fuzz{Seed: 1, SBPressure: 101}, N: 10},
		"fuzz knob negative":   spec.Workload{Fuzz: &spec.Fuzz{Seed: 1, MissCluster: -1}, N: 10},
		"fuzz zero n":          spec.Workload{Fuzz: &spec.Fuzz{Seed: 1}},
	}
	for name, v := range cases {
		if err := v.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, v)
		}
	}
	ok := spec.Machine{Model: spec.ModelICFP, Trigger: spec.TriggerAll, StoreBuffer: spec.SBIdeal,
		Overrides: &spec.Overrides{PoisonBits: spec.Int(8), Warmup: spec.Int(0)}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid machine rejected: %v", err)
	}
}

func TestUnmarshalSuiteStrict(t *testing.T) {
	good := `{
  "name": "mini",
  "n": 1000,
  "warm": 100,
  "render": {"kind": "speedup"},
  "jobs": [
    {"name": "g/base", "machine": {"model": "in-order"}, "workload": {"spec": "mcf", "n": 1100}},
    {"name": "g/icfp", "machine": {"model": "icfp", "overrides": {"warmup": 100}}, "workload": {"spec": "mcf", "n": 1100}}
  ]
}`
	s, err := spec.UnmarshalSuite([]byte(good))
	if err != nil {
		t.Fatalf("valid suite rejected: %v", err)
	}
	if len(s.Jobs) != 2 || s.Name != "mini" {
		t.Fatalf("parsed suite = %+v", s)
	}

	for name, doc := range map[string]string{
		"typo'd machine field": strings.Replace(good, `"model": "icfp", "overrides"`, `"model": "icfp", "trigerr": "l2", "overrides"`, 1),
		"typo'd override":      strings.Replace(good, `"warmup": 100`, `"warmupp": 100`, 1),
		"unknown top field":    strings.Replace(good, `"name": "mini",`, `"name": "mini", "jobz": [],`, 1),
		"duplicate job names":  strings.Replace(good, `"g/icfp"`, `"g/base"`, 1),
		"out-of-range value": strings.Replace(good, `{"spec": "mcf", "n": 1100}}
  ]`, `{"spec": "mcf", "n": -4}}
  ]`, 1),
		"trailing garbage":     good + "{}",
		"builtin without name": strings.Replace(good, `{"kind": "speedup"}`, `{"kind": "builtin"}`, 1),
		"unknown render kind":  strings.Replace(good, `{"kind": "speedup"}`, `{"kind": "chart"}`, 1),
	} {
		if _, err := spec.UnmarshalSuite([]byte(doc)); err == nil {
			t.Errorf("%s: UnmarshalSuite accepted:\n%s", name, doc)
		}
	}
}

// TestFuzzWorkloadDecodesToError pins the daemon's panic barrier for
// the fuzz family: a user-authored suite with hostile fuzz knobs is
// rejected at UnmarshalSuite with a named error — it never reaches the
// generator, whose contract assumes a validated profile. A valid fuzz
// job decodes, canonicalizes (explicit zero knobs collapse to the
// omitted spelling) and generates.
func TestFuzzWorkloadDecodesToError(t *testing.T) {
	tmpl := `{
  "name": "f",
  "n": 1000,
  "jobs": [
    {"name": "j", "machine": {"model": "icfp"}, "workload": {"fuzz": %s, "n": 1000}}
  ]
}`
	for name, fz := range map[string]string{
		"knob above range": `{"seed": 3, "sb_pressure": 400}`,
		"knob below range": `{"seed": 3, "rally_starve": -2}`,
		"typo'd knob":      `{"seed": 3, "sb_presure": 50}`,
	} {
		doc := strings.Replace(tmpl, "%s", fz, 1)
		if _, err := spec.UnmarshalSuite([]byte(doc)); err == nil {
			t.Errorf("%s: UnmarshalSuite accepted hostile fuzz spec:\n%s", name, doc)
		}
	}

	good := strings.Replace(tmpl, "%s", `{"seed": 3, "branch_on_load": 90, "miss_cluster": 0}`, 1)
	s, err := spec.UnmarshalSuite([]byte(good))
	if err != nil {
		t.Fatalf("valid fuzz suite rejected: %v", err)
	}
	wl := s.Jobs[0].Workload
	if want := spec.FuzzWorkload(3, workload.FuzzKnobs{BranchOnLoad: 90}, 1000).Canonical(); wl.Canonical() != want {
		t.Errorf("explicit zero knob leaked into identity: %s vs %s", wl.Canonical(), want)
	}
	if w := wl.New(); w.Trace.Len() == 0 {
		t.Error("generated fuzz workload is empty")
	}
}

func TestSuiteMarshalRoundTripsBytes(t *testing.T) {
	s := spec.Suite{
		Name: "rt", Desc: "round trip", N: 2000, Warm: 100,
		Render: &spec.Render{Kind: spec.RenderSweep, Baseline: "base"},
		Jobs: []spec.Job{
			{Name: "base/10", Machine: spec.Machine{Model: spec.ModelInOrder, Overrides: &spec.Overrides{L2HitLat: spec.Int(10), Warmup: spec.Int(100)}}, Workload: spec.SPECWorkload("equake", 2100)},
			{Name: "icfp/10", Machine: spec.Machine{Model: spec.ModelICFP, Trigger: spec.TriggerAll, Overrides: &spec.Overrides{L2HitLat: spec.Int(10), Warmup: spec.Int(100)}}, Workload: spec.SPECWorkload("equake", 2100)},
		},
	}
	b1, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := spec.UnmarshalSuite(b1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := back.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Errorf("Marshal -> Unmarshal -> Marshal changed bytes:\n%s\n---\n%s", b1, b2)
	}
	if !reflect.DeepEqual(s, back) {
		t.Errorf("suite changed across the round trip:\n%+v\n%+v", s, back)
	}
}
