package spec_test

import (
	"encoding/json"
	"testing"

	"icfp/internal/spec"
	"icfp/internal/workload"
)

// FuzzSuiteCanonical throws arbitrary bytes at the suite decoder — the
// exact surface expq exposes to user-authored JSON. Garbage must come
// back as an error, never a panic, and anything accepted must satisfy
// the identity contract the cache and store build on:
// Marshal(Unmarshal(x)) re-decodes, and every job's canonical encoding
// is a fixed point (decode -> canonicalize -> decode -> canonicalize is
// idempotent).
func FuzzSuiteCanonical(f *testing.F) {
	mk := func(s spec.Suite) []byte {
		b, err := s.Marshal()
		if err != nil {
			f.Fatal(err)
		}
		return b
	}
	f.Add(mk(spec.Suite{
		Name: "seed-spec", N: 1000, Warm: 100,
		Jobs: []spec.Job{{Name: "j", Machine: spec.Machine{Model: spec.ModelICFP, Trigger: spec.TriggerAll},
			Workload: spec.SPECWorkload("mcf", 1100)}},
	}))
	f.Add(mk(spec.Suite{
		Name: "seed-fuzz", N: 1000,
		Jobs: []spec.Job{{Name: "j", Machine: spec.Machine{Model: spec.ModelRunahead},
			Workload: spec.FuzzWorkload(102, workload.FuzzKnobs{SBPressure: 85, MissCluster: 30}, 1000)}},
	}))
	f.Add([]byte(`{"name":"x","jobs":[{"name":"j","machine":{"model":"icfp"},"workload":{"fuzz":{"seed":1,"sb_pressure":400},"n":10}}]}`))
	f.Add([]byte(`{"name":"x","jobs":[]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := spec.UnmarshalSuite(data)
		if err != nil {
			return
		}
		b, err := s.Marshal()
		if err != nil {
			t.Fatalf("accepted suite failed to marshal: %v", err)
		}
		if _, err := spec.UnmarshalSuite(b); err != nil {
			t.Fatalf("marshalled form of an accepted suite was rejected: %v\n%s", err, b)
		}
		for _, j := range s.Jobs {
			mc, wc := j.Machine.Canonical(), j.Workload.Canonical()
			var m2 spec.Machine
			if err := json.Unmarshal([]byte(mc), &m2); err != nil {
				t.Fatalf("canonical machine does not decode: %v\n%s", err, mc)
			}
			if got := m2.Canonical(); got != mc {
				t.Fatalf("machine canonical not a fixed point: %s -> %s", mc, got)
			}
			var w2 spec.Workload
			if err := json.Unmarshal([]byte(wc), &w2); err != nil {
				t.Fatalf("canonical workload does not decode: %v\n%s", err, wc)
			}
			if got := w2.Canonical(); got != wc {
				t.Fatalf("workload canonical not a fixed point: %s -> %s", wc, got)
			}
		}
	})
}
