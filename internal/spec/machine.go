package spec

import (
	"fmt"

	"icfp/internal/icfp"
	"icfp/internal/inorder"
	"icfp/internal/multipass"
	"icfp/internal/ooo"
	"icfp/internal/pipeline"
	"icfp/internal/runahead"
	"icfp/internal/sltp"
)

// Config returns the concrete pipeline configuration the machine runs
// on: BaseConfig with the overrides applied. The machine must be valid.
func (m Machine) Config() (pipeline.Config, error) {
	if err := m.Validate(); err != nil {
		return pipeline.Config{}, err
	}
	cfg := BaseConfig()
	m.Overrides.apply(&cfg)
	return cfg, nil
}

// trigger maps a spec trigger name to the pipeline policy.
func trigger(name string) pipeline.AdvanceTrigger {
	switch name {
	case TriggerL2:
		return pipeline.TriggerL2Only
	case TriggerPrimaryD1:
		return pipeline.TriggerPrimaryD1
	case TriggerAll:
		return pipeline.TriggerAll
	}
	panic(fmt.Sprintf("spec: unvalidated trigger %q", name))
}

// sbMode maps a spec store-buffer name to the iCFP design.
func sbMode(name string) icfp.SBMode {
	switch name {
	case "", SBChained:
		return icfp.SBChained
	case SBIdeal:
		return icfp.SBIdeal
	case SBLimited:
		return icfp.SBLimited
	}
	panic(fmt.Sprintf("spec: unvalidated store_buffer %q", name))
}

// New constructs the declared machine — the one constructor path behind
// the harness, the registry, and distributed workers. An empty Trigger
// leaves each model its paper default (runahead honours the base
// configuration's L2-only/D$-blocking setting; multipass forces
// L2+primary-D$; sltp always L2-only; icfp advances under all misses).
func (m Machine) New() (Runner, error) {
	cfg, err := m.Config()
	if err != nil {
		return nil, err
	}
	switch m.Model {
	case ModelInOrder:
		return inorder.New(cfg), nil
	case ModelRunahead:
		if m.Trigger != "" {
			cfg.Trigger = trigger(m.Trigger)
		}
		return runahead.New(cfg), nil
	case ModelMultipass:
		if m.Trigger != "" {
			return multipass.NewWithTrigger(cfg, trigger(m.Trigger), cfg.BlockSecondaryD1), nil
		}
		return multipass.New(cfg), nil
	case ModelSLTP:
		return sltp.New(cfg), nil
	case ModelICFP:
		trig := pipeline.TriggerAll
		if m.Trigger != "" {
			trig = trigger(m.Trigger)
		}
		return icfp.NewWithOptions(cfg, trig, sbMode(m.StoreBuffer)), nil
	case ModelOOO:
		oc := ooo.DefaultConfig()
		oc.Config = cfg
		oc.CFP = m.CFP
		if m.Overrides != nil && m.Overrides.ROBEntries != nil {
			oc.ROBEntries = *m.Overrides.ROBEntries
		}
		return ooo.New(oc), nil
	}
	return nil, fmt.Errorf("spec: unknown model %q", m.Model)
}
