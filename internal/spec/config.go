package spec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"reflect"

	"icfp/internal/pipeline"
)

// BaseConfig returns the configuration every spec diverges from: the
// paper's Table 1 machine with the sampling methodology's default warmup
// (150 000 instructions replayed untimed before each measured sample).
// sim.DefaultConfig is this function.
func BaseConfig() pipeline.Config {
	cfg := pipeline.DefaultConfig()
	cfg.WarmupInsts = 150_000
	return cfg
}

// Overrides names the configuration fields a machine spec may change
// from BaseConfig. Every field is optional (nil leaves the base value);
// all values are small integers, booleans, or enum strings, so the
// canonical encoding is exact. Fields not named here — cache geometry,
// branch predictor shape, functional-check flags — are deliberately not
// overridable: a spec that needs them is a new base, not an override.
type Overrides struct {
	// Core.
	Width *int `json:"width,omitempty"` // superscalar width, 1..8

	// Memory hierarchy.
	L2HitLat   *int `json:"l2_hit_lat,omitempty"`  // L2 hit latency in cycles
	MemLat     *int `json:"mem_lat,omitempty"`     // memory latency in cycles
	NumMSHRs   *int `json:"num_mshrs,omitempty"`   // outstanding memory misses
	StreamBufs *int `json:"stream_bufs,omitempty"` // stream buffers (0 disables prefetch)

	// Structure sizes.
	StoreBufEntries   *int `json:"store_buf_entries,omitempty"`
	SliceEntries      *int `json:"slice_entries,omitempty"`
	ChainedSBEntries  *int `json:"chained_sb_entries,omitempty"`
	ChainTableEntries *int `json:"chain_table_entries,omitempty"`
	PoisonBits        *int `json:"poison_bits,omitempty"` // 1..8
	RunaheadCache     *int `json:"runahead_cache,omitempty"`
	SRLEntries        *int `json:"srl_entries,omitempty"`
	ResultBufEntries  *int `json:"result_buf_entries,omitempty"`
	ROBEntries        *int `json:"rob_entries,omitempty"` // ooo reorder buffer

	// Policies.
	BlockSecondaryD1 *bool `json:"block_secondary_d1,omitempty"` // Runahead "D$-b"
	MultithreadRally *bool `json:"multithread_rally,omitempty"`  // iCFP §3.1
	NonBlockingRally *bool `json:"non_blocking_rally,omitempty"` // iCFP vs SLTP rallies

	// Methodology.
	Warmup *int `json:"warmup,omitempty"` // untimed warmup instructions per sample
}

// Int returns a pointer to v, for building Overrides literals.
func Int(v int) *int { return &v }

// Bool returns a pointer to v, for building Overrides literals.
func Bool(v bool) *bool { return &v }

// intRange is one validated integer knob.
type intRange struct {
	name     string
	val      *int
	min, max int
}

// ranges lists the override knobs with their accepted ranges. The caps
// are generous engineering bounds, not paper values: they exist so a
// spec arriving over the network cannot demand absurd allocations.
func (o *Overrides) ranges() []intRange {
	return []intRange{
		{"width", o.Width, 1, 8},
		{"l2_hit_lat", o.L2HitLat, 1, 10_000},
		{"mem_lat", o.MemLat, 1, 1_000_000},
		{"num_mshrs", o.NumMSHRs, 1, 4096},
		{"stream_bufs", o.StreamBufs, 0, 256},
		{"store_buf_entries", o.StoreBufEntries, 1, 1 << 16},
		{"slice_entries", o.SliceEntries, 1, 1 << 16},
		{"chained_sb_entries", o.ChainedSBEntries, 1, 1 << 16},
		{"chain_table_entries", o.ChainTableEntries, 1, 1 << 20},
		{"poison_bits", o.PoisonBits, 1, 8},
		{"runahead_cache", o.RunaheadCache, 1, 1 << 20},
		{"srl_entries", o.SRLEntries, 1, 1 << 16},
		{"result_buf_entries", o.ResultBufEntries, 1, 1 << 16},
		{"rob_entries", o.ROBEntries, 1, 4096},
		{"warmup", o.Warmup, 0, maxInsts},
	}
}

// Validate range-checks every set override.
func (o *Overrides) Validate() error {
	for _, r := range o.ranges() {
		if r.val != nil && (*r.val < r.min || *r.val > r.max) {
			return fmt.Errorf("spec: override %s=%d out of range %d..%d", r.name, *r.val, r.min, r.max)
		}
	}
	return nil
}

// apply writes the set overrides into cfg. The overrides must be valid.
func (o *Overrides) apply(cfg *pipeline.Config) {
	if o == nil {
		return
	}
	set := func(dst *int, v *int) {
		if v != nil {
			*dst = *v
		}
	}
	setb := func(dst *bool, v *bool) {
		if v != nil {
			*dst = *v
		}
	}
	set(&cfg.Width, o.Width)
	set(&cfg.Hier.L2HitLat, o.L2HitLat)
	set(&cfg.Hier.MemLat, o.MemLat)
	set(&cfg.Hier.NumMSHRs, o.NumMSHRs)
	set(&cfg.Hier.StreamBufs, o.StreamBufs)
	set(&cfg.StoreBufEntries, o.StoreBufEntries)
	set(&cfg.SliceEntries, o.SliceEntries)
	set(&cfg.ChainedSBEntries, o.ChainedSBEntries)
	set(&cfg.ChainTableEntries, o.ChainTableEntries)
	set(&cfg.PoisonBits, o.PoisonBits)
	set(&cfg.RunaheadCache, o.RunaheadCache)
	set(&cfg.SRLEntries, o.SRLEntries)
	set(&cfg.ResultBufEntries, o.ResultBufEntries)
	setb(&cfg.BlockSecondaryD1, o.BlockSecondaryD1)
	setb(&cfg.MultithreadRally, o.MultithreadRally)
	setb(&cfg.NonBlockingRally, o.NonBlockingRally)
	set(&cfg.WarmupInsts, o.Warmup)
	// ROBEntries is not a pipeline.Config field; the ooo constructor
	// reads it from the Overrides directly.
}

// OverridesFor expresses cfg as overrides of BaseConfig. It returns nil
// when cfg is the base itself, and an error when cfg diverges in a field
// no override names (cache geometry, predictor shape, trigger policy,
// value checking) — the caller's configuration cannot ride in a spec and
// must not be silently dropped.
func OverridesFor(cfg pipeline.Config) (*Overrides, error) {
	base := BaseConfig()
	var o Overrides
	diff := func(dst **int, have, want int) {
		if have != want {
			*dst = Int(have)
		}
	}
	diffb := func(dst **bool, have, want bool) {
		if have != want {
			*dst = Bool(have)
		}
	}
	diff(&o.Width, cfg.Width, base.Width)
	diff(&o.L2HitLat, cfg.Hier.L2HitLat, base.Hier.L2HitLat)
	diff(&o.MemLat, cfg.Hier.MemLat, base.Hier.MemLat)
	diff(&o.NumMSHRs, cfg.Hier.NumMSHRs, base.Hier.NumMSHRs)
	diff(&o.StreamBufs, cfg.Hier.StreamBufs, base.Hier.StreamBufs)
	diff(&o.StoreBufEntries, cfg.StoreBufEntries, base.StoreBufEntries)
	diff(&o.SliceEntries, cfg.SliceEntries, base.SliceEntries)
	diff(&o.ChainedSBEntries, cfg.ChainedSBEntries, base.ChainedSBEntries)
	diff(&o.ChainTableEntries, cfg.ChainTableEntries, base.ChainTableEntries)
	diff(&o.PoisonBits, cfg.PoisonBits, base.PoisonBits)
	diff(&o.RunaheadCache, cfg.RunaheadCache, base.RunaheadCache)
	diff(&o.SRLEntries, cfg.SRLEntries, base.SRLEntries)
	diff(&o.ResultBufEntries, cfg.ResultBufEntries, base.ResultBufEntries)
	diffb(&o.BlockSecondaryD1, cfg.BlockSecondaryD1, base.BlockSecondaryD1)
	diffb(&o.MultithreadRally, cfg.MultithreadRally, base.MultithreadRally)
	diffb(&o.NonBlockingRally, cfg.NonBlockingRally, base.NonBlockingRally)
	diff(&o.Warmup, cfg.WarmupInsts, base.WarmupInsts)

	// Round trip: base + overrides must reconstruct cfg exactly, or the
	// configuration diverges somewhere no override can express.
	check := base
	o.apply(&check)
	if !reflect.DeepEqual(check, cfg) {
		return nil, fmt.Errorf("spec: configuration diverges from the base in a field overrides cannot express (trigger policy, cache geometry, predictor shape, or check flags)")
	}
	return normalize(&o), nil
}

// Merge returns overrides taking every set field of primary and filling
// the rest from fallback. Either argument may be nil; the result is nil
// when no field is set at all, so canonical encodings stay minimal.
func Merge(primary, fallback *Overrides) *Overrides {
	if primary == nil {
		return normalize(fallback)
	}
	if fallback == nil {
		return normalize(primary)
	}
	out := *primary
	ov := reflect.ValueOf(&out).Elem()
	fv := reflect.ValueOf(fallback).Elem()
	for i := 0; i < ov.NumField(); i++ {
		if ov.Field(i).IsNil() {
			ov.Field(i).Set(fv.Field(i))
		}
	}
	return normalize(&out)
}

// normalize collapses an all-nil Overrides to nil; a non-nil result is
// a deep copy (fresh pointer cells, not aliases of the input's), so
// callers can hand one machine's Overrides to many jobs and mutate any
// copy without corrupting the others' cache identities.
func normalize(o *Overrides) *Overrides {
	if o == nil {
		return nil
	}
	var cp Overrides
	src := reflect.ValueOf(o).Elem()
	dst := reflect.ValueOf(&cp).Elem()
	set := false
	for i := 0; i < src.NumField(); i++ {
		f := src.Field(i)
		if f.IsNil() {
			continue
		}
		set = true
		cell := reflect.New(f.Type().Elem())
		cell.Elem().Set(f.Elem())
		dst.Field(i).Set(cell)
	}
	if !set {
		return nil
	}
	return &cp
}

// strictUnmarshal decodes JSON rejecting unknown fields (anywhere in the
// document, including nested objects) and trailing garbage.
func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if err := dec.Decode(new(any)); err != io.EOF {
		return fmt.Errorf("trailing data after the JSON document")
	}
	return nil
}
