package spec_test

import (
	"fmt"

	"icfp/internal/spec"
)

// ExampleSuite shows the whole authoring loop: build a suite as plain
// data, marshal it to the JSON that `cmd/experiments -spec` runs, and
// round-trip it back. The same document can equally be written by hand —
// experiments are data, not code.
func ExampleSuite() {
	s := spec.Suite{
		Name:   "icfp-vs-inorder",
		Desc:   "iCFP speedup on a pointer-chasing benchmark",
		N:      40_000,
		Warm:   10_000,
		Render: &spec.Render{Kind: spec.RenderSpeedup, Baseline: "base"},
		Jobs: []spec.Job{
			{
				Name:     "mcf/base",
				Machine:  spec.Machine{Model: spec.ModelInOrder, Overrides: &spec.Overrides{Warmup: spec.Int(10_000)}},
				Workload: spec.SPECWorkload("mcf", 50_000),
			},
			{
				Name:     "mcf/icfp",
				Machine:  spec.Machine{Model: spec.ModelICFP, Overrides: &spec.Overrides{Warmup: spec.Int(10_000)}},
				Workload: spec.SPECWorkload("mcf", 50_000),
			},
		},
	}

	data, err := s.Marshal()
	if err != nil {
		fmt.Println("marshal:", err)
		return
	}
	back, err := spec.UnmarshalSuite(data)
	if err != nil {
		fmt.Println("unmarshal:", err)
		return
	}
	fmt.Printf("suite %q: %d jobs, render %s over baseline %q\n",
		back.Name, len(back.Jobs), back.Render.Kind, back.Render.Baseline)
	// Output:
	// suite "icfp-vs-inorder": 2 jobs, render speedup over baseline "base"
}

// ExampleMachine_Canonical pins the identity story: the canonical
// encoding is the machine's name everywhere (memoization keys, cache
// files, the dist wire), and spellings that construct provably identical
// machines collapse to one encoding — an explicit paper-default policy
// is the same machine as leaving the field empty.
func ExampleMachine_Canonical() {
	defaulted := spec.Machine{Model: spec.ModelICFP}
	explicit := spec.Machine{Model: spec.ModelICFP, Trigger: spec.TriggerAll, StoreBuffer: spec.SBChained}

	fmt.Println(defaulted.Canonical())
	fmt.Println(defaulted.Canonical() == explicit.Canonical())
	// Output:
	// {"model":"icfp"}
	// true
}
