// Package ooo implements the two comparison points the paper cites in
// §5.3: a 2-way out-of-order processor ("a 68% performance advantage over
// our 2-way in-order pipeline") and a 2-way out-of-order Continual Flow
// Pipeline ("an 83% advantage").
//
// The model is a resource-constrained dataflow scheduler rather than a
// full rename/issue-queue simulation: instructions dispatch in order into
// a reorder buffer at the front-end rate, execute when their operands and
// a function-unit port are available, and commit in order. The CFP
// variant releases reorder-buffer entries held by L2-miss forward slices
// (the CPR/CFP effect: the window scales virtually past misses); slice
// re-execution is assumed to overlap with the non-blocking back end, so
// it approximates an upper bound consistent with the paper's one-line
// characterization.
package ooo

import (
	"icfp/internal/bpred"
	"icfp/internal/isa"
	"icfp/internal/mem"
	"icfp/internal/pipeline"
	"icfp/internal/workload"
)

// Config extends the pipeline configuration with window sizes.
type Config struct {
	pipeline.Config
	ROBEntries int  // reorder buffer capacity
	CFP        bool // continual-flow: L2-miss slices release their entries
}

// DefaultConfig returns a 2-way out-of-order machine on the Table 1
// memory system with a 128-entry reorder buffer.
func DefaultConfig() Config {
	return Config{Config: pipeline.DefaultConfig(), ROBEntries: 128}
}

// Machine is an out-of-order (optionally continual-flow) pipeline.
type Machine struct {
	cfg Config
}

// New builds the machine.
func New(cfg Config) *Machine { return &Machine{cfg: cfg} }

// ports schedules a small set of identical, fully pipelined function
// units: at most `count` operations may START in any one cycle. Unlike a
// scalar busy-until clock, it backfills idle gaps — essential for
// out-of-order scheduling, where a long-latency consumer reserving a
// future slot must not block younger operations from using earlier idle
// cycles.
// The backing store is a fixed ring of per-cycle start counts covering
// the window [low, low+portsWindow): far wider than any distance the
// ROB can reach back (its window is bounded by ROBEntries times the
// longest miss latency in cycles of slack, in practice a few hundred),
// yet allocation-free no matter how many cycles a run spans. The
// previous map-backed version grew one bucket per distinct cycle — ~43
// bytes per simulated instruction on long traces.
type ports struct {
	count int
	used  []uint8
	low   int64 // cycles below this are forgotten (and unschedulable)
}

// portsWindow is the ring span in cycles; a power of two so the slot
// computation is a mask.
const portsWindow = 8192

func newPorts(count int) *ports {
	return &ports{count: count, used: make([]uint8, portsWindow)}
}

// take returns the earliest cycle >= cycle with a free issue slot and
// occupies it.
func (p *ports) take(cycle int64) int64 {
	if cycle < p.low {
		cycle = p.low
	}
	p.slide(cycle)
	c := cycle
	for p.used[c&(portsWindow-1)] >= uint8(p.count) {
		c++
		p.slide(c)
	}
	p.used[c&(portsWindow-1)]++
	return c
}

// slide advances the window so cycle c's slot is valid, zeroing slots
// whose cycles fall off the back.
func (p *ports) slide(c int64) {
	if c < p.low+portsWindow {
		return
	}
	newLow := c - portsWindow + 1
	if newLow-p.low >= portsWindow {
		clear(p.used) // jumped a whole window: nothing survives
	} else {
		for k := p.low; k < newLow; k++ {
			p.used[k&(portsWindow-1)] = 0
		}
	}
	p.low = newLow
}

// Run simulates the workload to completion.
func (m *Machine) Run(w *workload.Workload) pipeline.Result {
	return m.RunSampled(w, pipeline.SamplePolicy{})
}

// RunSampled simulates the workload under the given sampling policy,
// running the detailed model only inside measurement windows. The zero
// policy is a full run.
func (m *Machine) RunSampled(w *workload.Workload, pol pipeline.SamplePolicy) pipeline.Result {
	return pipeline.RunWindowed(w, &m.cfg.Config, pol,
		func(hier *mem.Hierarchy, pred *bpred.Predictor, start, meas, hi int) pipeline.Result {
			return m.runWindow(w, hier, pred, start, meas, hi)
		})
}

// runWindow runs the detailed model over trace indexes [start, hi) from
// the given warmed state at cycle 0, measuring [meas, hi) (counters are
// snapshotted at the crossing and reported as differences).
func (m *Machine) runWindow(w *workload.Workload, hier *mem.Hierarchy, pred *bpred.Predictor, start, meas, hi int) pipeline.Result {
	cfg := m.cfg
	front := pipeline.NewFrontend(&cfg.Config, hier, pred)
	sb := pipeline.NewStoreBuffer(cfg.StoreBufEntries, hier)

	tr := w.Trace

	intPorts := newPorts(cfg.IntPorts)
	memPorts := newPorts(cfg.MemFPBrPorts)

	var ready [isa.NumRegs]int64
	// commitAt[k] is the commit cycle of the k'th most recent
	// instruction, a ring of ROB size for the dispatch stall.
	commitAt := make([]int64, cfg.ROBEntries)
	var lastCommit int64
	commitSlot := 0 // instructions committed in the current commit cycle

	var finish int64
	var mispredicts uint64
	pipe := int64(cfg.DCachePipe)

	var measBase int64
	var misp0 uint64
	var hs0 mem.Stats
	for i := start; i < hi; i++ {
		if i == meas {
			measBase, misp0, hs0 = finish, mispredicts, hier.Stats
		}
		in := tr.At(i)
		k := (i - start) % cfg.ROBEntries

		// Dispatch: in order, limited by the front end and a free ROB
		// entry (the instruction ROBEntries older must have committed).
		dispatch := front.Avail(in)
		if prev := commitAt[k]; prev > dispatch {
			dispatch = prev
		}
		predTaken := front.Predict(in)

		// Execute: when operands are ready and a port frees.
		opsReady := dispatch
		if in.Src1.Valid() && ready[in.Src1] > opsReady {
			opsReady = ready[in.Src1]
		}
		if in.Src2.Valid() && ready[in.Src2] > opsReady {
			opsReady = ready[in.Src2]
		}
		var start, done int64
		sliced := false
		switch {
		case in.Op == isa.OpLoad:
			start = memPorts.take(opsReady)
			if _, ok := sb.Forward(start, in.Addr); ok {
				done = start + pipe
			} else {
				acc := hier.Data(start, in.Addr, false)
				done = acc.Done + pipe
				if h := start + pipe; done < h {
					done = h
				}
				if cfg.CFP && acc.Level == mem.LevelMem {
					sliced = true // the slice buffer absorbs this load
				}
			}
		case in.Op == isa.OpStore:
			start = memPorts.take(opsReady)
			sb.Insert(start, in.Addr, in.Val)
			done = start + 1
		case pipeline.IsMemFPBr(in.Op):
			start = memPorts.take(opsReady)
			done = start + int64(in.Op.ExecLatency())
		default:
			start = intPorts.take(opsReady)
			done = start + int64(in.Op.ExecLatency())
		}
		if in.HasDst() {
			ready[in.Dst] = done
		}

		if in.Op.IsCtrl() {
			front.Train(in)
			if predTaken != in.Taken {
				mispredicts++
				front.Redirect(done)
			}
		}

		// Commit: in order, Width per cycle. A CFP slice releases its
		// entry at dispatch+drain rather than holding the ROB for the
		// whole miss (its dependents re-acquire entries later; their
		// timing is already carried through the ready[] dataflow).
		commitReady := done
		if sliced {
			commitReady = start + pipe
		}
		c := commitReady
		if c < lastCommit {
			c = lastCommit
		}
		if c == lastCommit && commitSlot >= cfg.Width {
			c++
		}
		if c > lastCommit {
			commitSlot = 0
		}
		lastCommit = c
		commitSlot++
		commitAt[k] = c
		if done > finish {
			finish = done
		}
		if c > finish {
			finish = c
		}
	}

	insts := int64(hi - meas)
	if insts == 0 {
		return pipeline.Result{}
	}
	ki := float64(insts) / 1000
	hs := hier.Stats
	return pipeline.Result{
		Cycles:            finish - measBase,
		Insts:             insts,
		DCacheMissPerKI:   float64(hs.DataL1Misses-hs0.DataL1Misses) / ki,
		L2MissPerKI:       float64(hs.DataL2Misses-hs0.DataL2Misses) / ki,
		BranchMispredicts: mispredicts - misp0,
	}
}
