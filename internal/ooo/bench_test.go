package ooo

// Allocation audit for the out-of-order reference core, mirroring the
// in-order one: allocs/op must not scale with trace length (no
// per-instruction slice or map growth). The ports scheduler is the one
// structure that could silently grow; its fixed sliding ring keeps it
// allocation-free regardless of run length, which this benchmark pins
// by comparing two trace sizes. Run with
//
//	go test -run '^$' -bench BenchmarkRunAllocs -benchmem ./internal/ooo/

import (
	"fmt"
	"testing"

	"icfp/internal/workload"
)

func BenchmarkRunAllocs(b *testing.B) {
	for _, n := range []int{4000, 16000} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.WarmupInsts = 1000
			w := workload.SPEC("equake", n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				New(cfg).Run(w)
			}
		})
	}
}
