package ooo

import (
	"testing"

	"icfp/internal/inorder"
	"icfp/internal/pipeline"
	"icfp/internal/stats"
	"icfp/internal/workload"
)

func TestOOOBeatsInOrder(t *testing.T) {
	ocfg := DefaultConfig()
	ocfg.WarmupInsts = 50_000
	icfg := pipeline.DefaultConfig()
	icfg.WarmupInsts = 50_000
	for _, name := range []string{"art", "gcc", "equake"} {
		io := inorder.New(icfg).Run(workload.SPEC(name, 250_000))
		oo := New(ocfg).Run(workload.SPEC(name, 250_000))
		if oo.Cycles >= io.Cycles {
			t.Errorf("%s: out-of-order %d must beat in-order %d", name, oo.Cycles, io.Cycles)
		}
	}
}

func TestCFPBeatsPlainOOOOnMisses(t *testing.T) {
	// CFP releases window entries held by L2-miss slices; on a
	// memory-bound workload the window no longer fills behind misses.
	cfg := DefaultConfig()
	cfg.WarmupInsts = 50_000
	oo := New(cfg).Run(workload.SPEC("mcf", 250_000))
	cfp := cfg
	cfp.CFP = true
	cf := New(cfp).Run(workload.SPEC("mcf", 250_000))
	if cf.Cycles > oo.Cycles {
		t.Fatalf("OoO-CFP %d must not lose to OoO %d on mcf", cf.Cycles, oo.Cycles)
	}
}

func TestROBSizeMatters(t *testing.T) {
	small := DefaultConfig()
	small.WarmupInsts = 50_000
	small.ROBEntries = 16
	big := small
	big.ROBEntries = 256
	s := New(small).Run(workload.SPEC("art", 200_000))
	b := New(big).Run(workload.SPEC("art", 200_000))
	if b.Cycles >= s.Cycles {
		t.Fatalf("a 256-entry window (%d cycles) must beat 16 entries (%d) on art", b.Cycles, s.Cycles)
	}
}

func TestSection53Advantages(t *testing.T) {
	// §5.3: "a 2-way issue out-of-order processor has a 68% performance
	// advantage over our 2-way in-order pipeline, while a 2-way issue
	// (out-of-order) CFP pipeline has an 83% advantage." Check the shape:
	// both large and positive, CFP above plain out-of-order.
	if testing.Short() {
		t.Skip("suite-wide geomean")
	}
	icfg := pipeline.DefaultConfig()
	icfg.WarmupInsts = 50_000
	ocfg := DefaultConfig()
	ocfg.WarmupInsts = 50_000
	ccfg := ocfg
	ccfg.CFP = true

	var oo, cf []float64
	for _, name := range workload.AllSPECNames {
		io := inorder.New(icfg).Run(workload.SPEC(name, 150_000))
		o := New(ocfg).Run(workload.SPEC(name, 150_000))
		c := New(ccfg).Run(workload.SPEC(name, 150_000))
		oo = append(oo, float64(io.Cycles)/float64(o.Cycles))
		cf = append(cf, float64(io.Cycles)/float64(c.Cycles))
	}
	gOO := (stats.GeoMean(oo) - 1) * 100
	gCF := (stats.GeoMean(cf) - 1) * 100
	t.Logf("out-of-order %+.1f%% (paper 68%%), out-of-order CFP %+.1f%% (paper 83%%)", gOO, gCF)
	if gOO < 30 {
		t.Errorf("out-of-order advantage %.1f%% far below the paper's 68%%", gOO)
	}
	if gCF <= gOO {
		t.Errorf("CFP (%.1f%%) must extend the out-of-order advantage (%.1f%%)", gCF, gOO)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WarmupInsts = 20_000
	a := New(cfg).Run(workload.SPEC("swim", 120_000))
	b := New(cfg).Run(workload.SPEC("swim", 120_000))
	if a.Cycles != b.Cycles {
		t.Fatalf("non-deterministic: %d vs %d", a.Cycles, b.Cycles)
	}
}
