package area

import "testing"

func TestStructureArea(t *testing.T) {
	s := Structure{Name: "x", Entries: 100, Bits: 10}
	want := periphery + 1000*ramPerBit
	if got := s.MM2(); got != want {
		t.Fatalf("MM2 = %v, want %v", got, want)
	}
	c := Structure{Name: "x", Entries: 100, Bits: 10, CAM: true}
	if c.MM2() <= s.MM2() {
		t.Fatal("CAM must cost more than RAM")
	}
}

func TestDesignTotals(t *testing.T) {
	for _, d := range AllDesigns() {
		got := d.Total()
		want := PaperMM2[d.Name]
		if got < want*0.5 || got > want*1.6 {
			t.Errorf("%s: %.3f mm² vs paper %.2f (outside 0.5x-1.6x band)", d.Name, got, want)
		}
	}
}

func TestRelativeOrdering(t *testing.T) {
	// The paper's ordering: Runahead < Multipass < iCFP < SLTP.
	ds := map[string]float64{}
	for _, d := range AllDesigns() {
		ds[d.Name] = d.Total()
	}
	if !(ds["Runahead"] < ds["Multipass"] && ds["Multipass"] < ds["iCFP"] && ds["iCFP"] < ds["SLTP"]) {
		t.Fatalf("ordering wrong: %v", ds)
	}
}

func TestICFPBeatsSLTPDespiteMoreFeatures(t *testing.T) {
	// The §5.3 punchline: iCFP outperforms SLTP with a smaller footprint,
	// because SLTP needs an associative load queue and a second checkpoint.
	if ICFPDesign().Total() >= SLTPDesign().Total() {
		t.Fatal("iCFP must be smaller than SLTP")
	}
}

func TestCheckpointCharged(t *testing.T) {
	d := Design{Name: "d", Checkpoints: 2}
	if d.Total() != 2*ckptPerPort*rfPorts {
		t.Fatalf("checkpoint-only total = %v", d.Total())
	}
}
