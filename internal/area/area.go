// Package area estimates the silicon overhead of each latency-tolerance
// design (§5.3 of the paper). The paper used a modified CACTI-4.1 at
// 45 nm; we substitute a small analytic model — per-structure periphery
// plus per-bit array cost, with distinct costs for RAM and CAM cells and
// for shadow-bitcell register-file checkpoints — whose constants are
// calibrated so the four totals land near the paper's 0.12 / 0.22 / 0.36
// / 0.26 mm² for Runahead / Multipass / SLTP / iCFP. Only the relative
// footprints carry the paper's argument.
package area

// Cell cost constants (mm² per bit) and per-structure periphery (mm²).
const (
	ramPerBit   = 2.5e-6
	camPerBit   = 12.0e-6
	periphery   = 0.008
	ckptPerPort = 0.005 // shadow-bitcell checkpoint of a 64x64b RF, per port
	rfPorts     = 6     // the paper prices a 6-port register file
)

// Structure is one hardware array in a design's overhead budget.
type Structure struct {
	Name    string
	Entries int
	Bits    int  // bits per entry
	CAM     bool // associatively searched
}

// MM2 returns the structure's estimated area in mm².
func (s Structure) MM2() float64 {
	per := ramPerBit
	if s.CAM {
		per = camPerBit
	}
	return periphery + float64(s.Entries*s.Bits)*per
}

// Design is a named set of structures plus checkpoint count.
type Design struct {
	Name        string
	Structures  []Structure
	Checkpoints int // shadow-bitcell register-file checkpoints
}

// Total returns the design's estimated overhead in mm².
func (d Design) Total() float64 {
	a := float64(d.Checkpoints) * ckptPerPort * rfPorts
	for _, s := range d.Structures {
		a += s.MM2()
	}
	return a
}

// Common structure widths (bits): a 40-bit physical address tag, 64-bit
// data word, 8-bit poison vector, 12-bit SSN link, 10-bit sequence number.
const (
	addrBits = 40
	dataBits = 64
	poisVec  = 8
	ssnBits  = 12
	seqBits  = 10
)

// RunaheadDesign prices Runahead execution: per-register poison bits, the
// 256-entry runahead cache, and one checkpoint.
func RunaheadDesign() Design {
	return Design{
		Name:        "Runahead",
		Checkpoints: 1,
		Structures: []Structure{
			{Name: "poison bits", Entries: 64, Bits: 1},
			{Name: "runahead cache", Entries: 256, Bits: addrBits + dataBits + 1},
		},
	}
}

// MultipassDesign prices Multipass: poison bits, the 128-entry result
// buffer, a 256-entry forwarding cache, and the load disambiguation unit.
func MultipassDesign() Design {
	return Design{
		Name:        "Multipass",
		Checkpoints: 1,
		Structures: []Structure{
			{Name: "poison bits", Entries: 64, Bits: 1},
			{Name: "result buffer", Entries: 128, Bits: dataBits + 16},
			{Name: "forwarding cache", Entries: 256, Bits: addrBits + dataBits + 1},
			{Name: "load disambiguation", Entries: 128, Bits: addrBits, CAM: true},
		},
	}
}

// SLTPDesign prices SLTP: poison bits, the SRL, the slice buffer with
// captured side inputs, a 256-entry associative load queue, and two
// checkpoints (§4: "a single register file and two checkpoints").
func SLTPDesign() Design {
	return Design{
		Name:        "SLTP",
		Checkpoints: 2,
		Structures: []Structure{
			{Name: "poison bits", Entries: 64, Bits: 1},
			{Name: "SRL", Entries: 128, Bits: addrBits + dataBits + 1},
			{Name: "slice buffer", Entries: 128, Bits: 2*dataBits + 32},
			{Name: "load queue", Entries: 256, Bits: addrBits + 16, CAM: true},
		},
	}
}

// ICFPDesign prices iCFP: poison vectors, last-writer sequence numbers,
// the slice buffer, the chained (indexed, non-associative) store buffer,
// the chain table, the load signature, and one checkpoint. The scratch
// register file is not counted: it is the second thread context the core
// already has (§5.3).
func ICFPDesign() Design {
	return Design{
		Name:        "iCFP",
		Checkpoints: 1,
		Structures: []Structure{
			{Name: "poison vectors", Entries: 64, Bits: poisVec},
			{Name: "sequence numbers", Entries: 64, Bits: seqBits},
			{Name: "slice buffer (instructions)", Entries: 128, Bits: 32 + seqBits + poisVec + ssnBits + 16},
			{Name: "slice buffer (side inputs)", Entries: 128, Bits: 2 * (dataBits + 8)},
			{Name: "chained store buffer", Entries: 128, Bits: addrBits + dataBits + poisVec + ssnBits},
			{Name: "chain table", Entries: 512, Bits: 16},
			{Name: "signature", Entries: 1024, Bits: 1},
		},
	}
}

// AllDesigns returns the four designs in the paper's order.
func AllDesigns() []Design {
	return []Design{RunaheadDesign(), MultipassDesign(), SLTPDesign(), ICFPDesign()}
}

// PaperMM2 records the paper's reported totals for comparison.
var PaperMM2 = map[string]float64{
	"Runahead": 0.12, "Multipass": 0.22, "SLTP": 0.36, "iCFP": 0.26,
}
