package inorder

// Allocation audit for the baseline core: the per-instruction path must
// not grow any slice or map as the trace lengthens. The two workload
// sizes would diverge in allocs/op if any per-instruction append crept
// in; run with
//
//	go test -run '^$' -bench BenchmarkRunAllocs -benchmem ./internal/inorder/

import (
	"fmt"
	"testing"

	"icfp/internal/pipeline"
	"icfp/internal/workload"
)

func BenchmarkRunAllocs(b *testing.B) {
	for _, n := range []int{4000, 16000} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			cfg := pipeline.DefaultConfig()
			cfg.WarmupInsts = 1000
			w := workload.SPEC("equake", n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				New(cfg).Run(w)
			}
		})
	}
}
