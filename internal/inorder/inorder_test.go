package inorder

import (
	"testing"

	"icfp/internal/isa"
	"icfp/internal/mem"
	"icfp/internal/memimage"
	"icfp/internal/pipeline"
	"icfp/internal/workload"
)

// tinyWorkload builds a trace from instructions with a warm-code prewarm
// so timing tests measure data behaviour, not cold I$ misses.
func tinyWorkload(insts []isa.Inst) *workload.Workload {
	return &workload.Workload{
		Name:  "tiny",
		Trace: &isa.Trace{Name: "tiny", Insts: insts},
		Mem:   memimage.New(),
		Prewarm: func(h *mem.Hierarchy) {
			for i := range insts {
				h.ICache.Insert(insts[i].PC, false)
				h.L2.Insert(insts[i].PC, false)
			}
		},
	}
}

func run(t *testing.T, w *workload.Workload) pipeline.Result {
	t.Helper()
	m := New(pipeline.DefaultConfig())
	return m.Run(w)
}

// runWarm simulates a SPEC-profile workload with a warmup prefix, as the
// paper's sampling methodology does.
func runWarm(t *testing.T, name string, warm, timed int) pipeline.Result {
	t.Helper()
	cfg := pipeline.DefaultConfig()
	cfg.WarmupInsts = warm
	return New(cfg).Run(workload.SPEC(name, warm+timed))
}

func seqALU(n int) []isa.Inst {
	insts := make([]isa.Inst, n)
	for i := range insts {
		insts[i] = isa.Inst{
			PC: uint64(0x1000 + 4*i), Op: isa.OpALU,
			Dst: isa.IntReg(8 + i%8), Src1: isa.IntReg(1), Src2: isa.RegNone,
		}
	}
	return insts
}

func TestIndependentALUReachesWidth2(t *testing.T) {
	r := run(t, tinyWorkload(seqALU(2000)))
	if ipc := r.IPC(); ipc < 1.5 {
		t.Fatalf("independent ALU IPC = %.2f, want near 2", ipc)
	}
}

func TestDependentChainIPC1(t *testing.T) {
	insts := make([]isa.Inst, 1000)
	for i := range insts {
		insts[i] = isa.Inst{
			PC: uint64(0x1000 + 4*i), Op: isa.OpALU,
			Dst: isa.IntReg(8), Src1: isa.IntReg(8), Src2: isa.RegNone,
		}
	}
	r := run(t, tinyWorkload(insts))
	if ipc := r.IPC(); ipc > 1.05 {
		t.Fatalf("dependent chain IPC = %.2f, must be <= 1", ipc)
	}
}

func TestMemPortLimitsLoads(t *testing.T) {
	// All loads to one warm line: limited by the single mem port -> IPC <= 1.
	insts := make([]isa.Inst, 1000)
	for i := range insts {
		insts[i] = isa.Inst{
			PC: uint64(0x1000 + 4*i), Op: isa.OpLoad,
			Dst: isa.IntReg(8 + i%8), Src1: isa.IntReg(1), Addr: 0x100000, Size: 8,
		}
	}
	w := tinyWorkload(insts)
	r := run(t, w)
	if ipc := r.IPC(); ipc > 1.02 {
		t.Fatalf("load-only IPC = %.2f, must be <= 1 (one mem port)", ipc)
	}
}

func TestStallOnUseNotOnMiss(t *testing.T) {
	// A load that misses to memory followed by many independent ALU ops:
	// the pipeline must keep issuing the ALU ops (no stall until use).
	insts := []isa.Inst{
		{PC: 0x1000, Op: isa.OpLoad, Dst: isa.IntReg(20), Src1: isa.IntReg(1), Addr: 0x900000, Size: 8},
	}
	insts = append(insts, seqALU(400)...)
	for i := 1; i < len(insts); i++ {
		insts[i].PC = uint64(0x2000 + 4*i)
	}
	r := run(t, tinyWorkload(insts))
	// 400 independent ALU ops at ~2/cycle ≈ 200 cycles; the 400-cycle miss
	// dominates only if we waited for it. Since nothing uses r20, total
	// cycles must reflect the miss data arriving (~400) but not a stall of
	// 400 + 200.
	if r.Cycles > 550 {
		t.Fatalf("cycles = %d; miss-independent work must proceed under the miss", r.Cycles)
	}

	// Now the same with an immediate use: must serialize.
	use := append([]isa.Inst{}, insts[0])
	use = append(use, isa.Inst{PC: 0x1004, Op: isa.OpALU, Dst: isa.IntReg(21), Src1: isa.IntReg(20)})
	use = append(use, seqALU(400)...)
	for i := 2; i < len(use); i++ {
		use[i].PC = uint64(0x2000 + 4*i)
	}
	r2 := run(t, tinyWorkload(use))
	if r2.Cycles < 550 {
		t.Fatalf("cycles = %d; use of missing value must stall the in-order pipe", r2.Cycles)
	}
}

func TestStoreLoadForwarding(t *testing.T) {
	// Store to a cold line, then immediately load it back: forwarding
	// must avoid waiting for the store's cache miss.
	insts := []isa.Inst{
		{PC: 0x1000, Op: isa.OpStore, Src1: isa.IntReg(1), Src2: isa.IntReg(2), Addr: 0x900000, Size: 8, Val: 77},
		{PC: 0x1004, Op: isa.OpLoad, Dst: isa.IntReg(8), Src1: isa.IntReg(1), Addr: 0x900000, Size: 8, Val: 77},
		{PC: 0x1008, Op: isa.OpALU, Dst: isa.IntReg(9), Src1: isa.IntReg(8)},
	}
	r := run(t, tinyWorkload(insts))
	if r.Cycles > 50 {
		t.Fatalf("cycles = %d; load must forward from the store buffer", r.Cycles)
	}
}

func TestBranchMispredictsCounted(t *testing.T) {
	// Random-outcome branches must yield mispredicts.
	r := runWarm(t, "gcc", 10000, 20000)
	if r.BranchMispredicts == 0 {
		t.Fatal("gcc-profile run must mispredict sometimes")
	}
}

func TestMissStatsPopulated(t *testing.T) {
	r := runWarm(t, "mcf", 10000, 30000)
	if r.DCacheMissPerKI < 10 {
		t.Fatalf("mcf D$ miss/KI = %.1f, want substantial", r.DCacheMissPerKI)
	}
	if r.L2MissPerKI <= 0 {
		t.Fatal("mcf must have L2 misses")
	}
	if r.DCacheMLP < 1 {
		t.Fatalf("DCacheMLP = %.2f, must be >= 1 with misses", r.DCacheMLP)
	}
}

func TestLowMissWorkloadFast(t *testing.T) {
	r := runWarm(t, "mesa", 20000, 20000)
	if ipc := r.IPC(); ipc < 0.8 {
		t.Fatalf("mesa IPC = %.2f, want near-ideal for a low-miss workload", ipc)
	}
}

func TestDeterministicRuns(t *testing.T) {
	w := workload.SPEC("vpr", 10000)
	r1 := New(pipeline.DefaultConfig()).Run(w)
	w2 := workload.SPEC("vpr", 10000)
	r2 := New(pipeline.DefaultConfig()).Run(w2)
	if r1.Cycles != r2.Cycles || r1.Insts != r2.Insts {
		t.Fatalf("same workload, different results: %d vs %d cycles", r1.Cycles, r2.Cycles)
	}
}

func TestPointerChaseSlowerThanStreaming(t *testing.T) {
	chase := runWarm(t, "mcf", 10000, 30000)
	str := runWarm(t, "applu", 10000, 30000)
	if chase.IPC() >= str.IPC() {
		t.Fatalf("mcf IPC %.3f must be well below applu IPC %.3f", chase.IPC(), str.IPC())
	}
}
