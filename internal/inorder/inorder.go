// Package inorder implements the baseline machine of the paper's
// evaluation: a 2-way superscalar, 10-stage, stall-on-use in-order
// pipeline. It does not stall on a cache miss itself — only on the first
// instruction that consumes a missing value (or on structural hazards),
// exactly the behaviour the paper's Figure 1 sketches with thick lines.
package inorder

import (
	"icfp/internal/bpred"
	"icfp/internal/isa"
	"icfp/internal/mem"
	"icfp/internal/pipeline"
	"icfp/internal/stats"
	"icfp/internal/workload"
)

// Machine is a baseline in-order pipeline.
type Machine struct {
	cfg pipeline.Config
}

// New returns a baseline machine with the given configuration.
func New(cfg pipeline.Config) *Machine { return &Machine{cfg: cfg} }

// Run simulates the workload to completion and reports the result.
func (m *Machine) Run(w *workload.Workload) pipeline.Result {
	return m.RunSampled(w, pipeline.SamplePolicy{})
}

// RunSampled simulates the workload under the given sampling policy: the
// detailed pipeline runs only inside the policy's measurement windows,
// with functional warming in between. The zero policy is a full run.
func (m *Machine) RunSampled(w *workload.Workload, pol pipeline.SamplePolicy) pipeline.Result {
	return pipeline.RunWindowed(w, &m.cfg, pol,
		func(hier *mem.Hierarchy, pred *bpred.Predictor, start, meas, hi int) pipeline.Result {
			return m.runWindow(w, hier, pred, start, meas, hi)
		})
}

// runWindow runs the detailed pipeline over trace indexes [start, hi)
// starting from the given warmed hierarchy and predictor at cycle 0,
// measuring [meas, hi): counters are snapshotted when the loop crosses
// meas and the result reports differences. MLP is the one exception —
// its trackers observe the whole detailed range, ramp included.
func (m *Machine) runWindow(w *workload.Workload, hier *mem.Hierarchy, pred *bpred.Predictor, start, meas, hi int) pipeline.Result {
	cfg := m.cfg
	front := pipeline.NewFrontend(&cfg, hier, pred)
	slots := pipeline.NewSlotAlloc(&cfg)
	sb := pipeline.NewStoreBuffer(cfg.StoreBufEntries, hier)
	var board pipeline.Scoreboard

	var dTrack, l2Track stats.MLPTracker
	hier.MissObserver = func(start, done int64, l2 bool) {
		dTrack.Add(start, done)
		if l2 {
			l2Track.Add(start, done)
		}
	}

	tr := w.Trace

	var finish int64
	var lastIssue int64
	var mispredicts uint64

	var measBase int64 // finish when detailed execution crossed meas
	var misp0 uint64   // mispredicts at the crossing
	var hs0 mem.Stats  // hierarchy counters at the crossing
	for i := start; i < hi; i++ {
		if i == meas {
			measBase, misp0, hs0 = finish, mispredicts, hier.Stats
		}
		in := tr.At(i)
		earliest := front.Avail(in)
		if r := board.SrcReady(in); r > earliest {
			earliest = r
		}
		if earliest < lastIssue {
			earliest = lastIssue // in-order issue
		}
		predTaken := front.Predict(in)

		if in.Op == isa.OpStore {
			earliest = sb.FullUntil(earliest)
		}
		t := slots.Take(earliest, in.Op)
		lastIssue = t

		var done int64
		switch in.Op {
		case isa.OpLoad:
			if _, ok := sb.Forward(t, in.Addr); ok {
				done = t + int64(cfg.DCachePipe)
			} else {
				r := hier.Data(t, in.Addr, false)
				done = r.Done + int64(cfg.DCachePipe)
				if hit := t + int64(cfg.DCachePipe); done < hit {
					done = hit
				}
			}
		case isa.OpStore:
			sb.Insert(t, in.Addr, in.Val)
			done = t + 1
		default:
			done = t + int64(in.Op.ExecLatency())
		}

		board.WriteDst(in, done, 0, uint64(i))

		if in.Op.IsCtrl() {
			front.Train(in)
			if predTaken != in.Taken {
				mispredicts++
				front.Redirect(t + 1)
			}
		}
		if done > finish {
			finish = done
		}
	}

	insts := int64(hi - meas)
	ki := float64(insts) / 1000
	hs := hier.Stats
	return pipeline.Result{
		Cycles:            finish - measBase,
		Insts:             insts,
		DCacheMissPerKI:   float64(hs.DataL1Misses-hs0.DataL1Misses) / ki,
		L2MissPerKI:       float64(hs.DataL2Misses-hs0.DataL2Misses) / ki,
		DCacheMLP:         dTrack.MLP(),
		L2MLP:             l2Track.MLP(),
		BranchMispredicts: mispredicts - misp0,
	}
}
