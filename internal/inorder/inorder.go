// Package inorder implements the baseline machine of the paper's
// evaluation: a 2-way superscalar, 10-stage, stall-on-use in-order
// pipeline. It does not stall on a cache miss itself — only on the first
// instruction that consumes a missing value (or on structural hazards),
// exactly the behaviour the paper's Figure 1 sketches with thick lines.
package inorder

import (
	"icfp/internal/bpred"
	"icfp/internal/isa"
	"icfp/internal/mem"
	"icfp/internal/pipeline"
	"icfp/internal/stats"
	"icfp/internal/workload"
)

// Machine is a baseline in-order pipeline.
type Machine struct {
	cfg pipeline.Config
}

// New returns a baseline machine with the given configuration.
func New(cfg pipeline.Config) *Machine { return &Machine{cfg: cfg} }

// Run simulates the workload to completion and reports the result.
func (m *Machine) Run(w *workload.Workload) pipeline.Result {
	cfg := m.cfg
	hier := mem.New(cfg.Hier)
	if w.Prewarm != nil {
		w.Prewarm(hier)
	}
	pred := bpred.New(cfg.Bpred)
	front := pipeline.NewFrontend(&cfg, hier, pred)
	slots := pipeline.NewSlotAlloc(&cfg)
	sb := pipeline.NewStoreBuffer(cfg.StoreBufEntries, hier)
	var board pipeline.Scoreboard

	var dTrack, l2Track stats.MLPTracker
	hier.MissObserver = func(start, done int64, l2 bool) {
		dTrack.Add(start, done)
		if l2 {
			l2Track.Add(start, done)
		}
	}

	tr := w.Trace
	warm := cfg.WarmupInsts
	if warm > tr.Len() {
		warm = tr.Len()
	}
	pipeline.Warmup(hier, pred, tr, warm)

	var finish int64
	var lastIssue int64
	var mispredicts uint64

	for i := warm; i < tr.Len(); i++ {
		in := tr.At(i)
		earliest := front.Avail(in)
		if r := board.SrcReady(in); r > earliest {
			earliest = r
		}
		if earliest < lastIssue {
			earliest = lastIssue // in-order issue
		}
		predTaken := front.Predict(in)

		if in.Op == isa.OpStore {
			earliest = sb.FullUntil(earliest)
		}
		t := slots.Take(earliest, in.Op)
		lastIssue = t

		var done int64
		switch in.Op {
		case isa.OpLoad:
			if _, ok := sb.Forward(t, in.Addr); ok {
				done = t + int64(cfg.DCachePipe)
			} else {
				r := hier.Data(t, in.Addr, false)
				done = r.Done + int64(cfg.DCachePipe)
				if hit := t + int64(cfg.DCachePipe); done < hit {
					done = hit
				}
			}
		case isa.OpStore:
			sb.Insert(t, in.Addr, in.Val)
			done = t + 1
		default:
			done = t + int64(in.Op.ExecLatency())
		}

		board.WriteDst(in, done, 0, uint64(i))

		if in.Op.IsCtrl() {
			front.Train(in)
			if predTaken != in.Taken {
				mispredicts++
				front.Redirect(t + 1)
			}
		}
		if done > finish {
			finish = done
		}
	}

	insts := int64(tr.Len() - warm)
	ki := float64(insts) / 1000
	hs := hier.Stats
	return pipeline.Result{
		Name:              w.Name,
		Cycles:            finish,
		Insts:             insts,
		DCacheMissPerKI:   float64(hs.DataL1Misses) / ki,
		L2MissPerKI:       float64(hs.DataL2Misses) / ki,
		DCacheMLP:         dTrack.MLP(),
		L2MLP:             l2Track.MLP(),
		BranchMispredicts: mispredicts,
	}
}
