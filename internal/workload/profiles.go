// SPEC2000-profile workloads. Each profile approximates the memory and
// control character of one SPEC2000 benchmark as reported in Table 2 of
// the paper (D$ and L2 misses per kilo-instruction) and in its text
// (pointer chasing in mcf/vpr, streaming in swim/applu/lucas, negligible
// misses in mesa/eon/vortex). Absolute rates are approximate by design;
// EXPERIMENTS.md records the measured values next to the paper's.
package workload

import "fmt"

// SPECfpNames lists the SPECfp 2000 benchmarks the paper evaluates, in
// Figure 5 order. (fma3d and sixtrack are absent in the paper as well.)
var SPECfpNames = []string{
	"ammp", "applu", "apsi", "art", "equake", "facerec",
	"galgel", "lucas", "mesa", "mgrid", "swim", "wupwise",
}

// SPECintNames lists the SPECint 2000 benchmarks in Figure 5 order.
var SPECintNames = []string{
	"bzip2", "crafty", "eon", "gap", "gcc", "gzip",
	"mcf", "parser", "perlbmk", "twolf", "vortex", "vpr",
}

// AllSPECNames lists all 24 benchmarks, fp first, as the paper's tables do.
var AllSPECNames = append(append([]string{}, SPECfpNames...), SPECintNames...)

const (
	kb = 1 << 10
	mb = 1 << 20
)

// intBase returns common SPECint-style mix defaults.
func intBase(name string) Profile {
	return Profile{
		Name: name, FP: false,
		LoadFrac: 0.25, StoreFrac: 0.10, BranchFrac: 0.16,
		StreamStride: 8, RandBytes: 512 * kb,
		BranchNoise: 0.06, BranchOnLoad: 0.2,
		StoreToLoadFwd: 0.2, ILP: 1, MulFrac: 0.05, ConsumeLag: 8,
	}
}

// fpBase returns common SPECfp-style mix defaults.
func fpBase(name string) Profile {
	return Profile{
		Name: name, FP: true,
		LoadFrac: 0.28, StoreFrac: 0.10, BranchFrac: 0.06,
		StreamStride: 16, RandBytes: 512 * kb,
		BranchNoise: 0.02, BranchOnLoad: 0.05,
		StoreToLoadFwd: 0.15, ILP: 2, MulFrac: 0.3, ConsumeLag: 10,
	}
}

// profiles holds the calibrated per-benchmark parameters.
var profiles = func() map[string]Profile {
	m := make(map[string]Profile)
	def := func(p Profile) { m[p.Name] = p }

	// --- SPECfp ---
	p := fpBase("ammp") // molecular dynamics: random + light pointer lists
	p.RandFrac, p.RandBytes = 0.054, 1000*kb
	p.StreamFrac = 0.02
	p.ILP = 1
	p.Chase2Frac, p.Chase2Bytes = 0.018, 384*kb
	p.ChaseFrac, p.ChaseBytes = 0.003, 2560*kb
	p.ConsumeLag = 2
	def(p)

	p = fpBase("applu") // dense solver: heavy streaming
	p.StreamFrac, p.StreamStride = 0.28, 16
	p.RandFrac, p.RandBytes = 0.015, 2560*kb
	def(p)

	p = fpBase("apsi")
	p.StreamFrac, p.StreamStride = 0.25, 16
	p.RandFrac, p.RandBytes = 0.005, 256*kb
	def(p)

	p = fpBase("art") // image recognition: huge random footprint, high ILP
	p.RandFrac, p.RandBytes = 0.36, 1150*kb
	p.ILP = 3
	p.ConsumeLag = 1
	def(p)

	p = fpBase("equake") // sparse matrix: L2-hitting randoms + rare deep chases
	p.RandFrac, p.RandBytes = 0.065, 600*kb
	p.Chase2Frac, p.Chase2Bytes = 0.018, 300*kb
	p.ChaseFrac, p.ChaseBytes = 0.003, 3*mb
	p.BranchOnLoad = 0.2
	p.PoisonAddrFrac = 0.01
	def(p)

	p = fpBase("facerec") // bursty streams
	p.StreamFrac, p.StreamStride = 0.035, 64
	p.RandFrac, p.RandBytes = 0.015, 3*mb
	p.ILP = 8
	def(p)

	p = fpBase("galgel")
	p.RandFrac, p.RandBytes = 0.055, 256*kb
	def(p)

	p = fpBase("lucas")
	p.StreamFrac, p.StreamStride = 0.135, 32
	def(p)

	p = fpBase("mesa") // rendering: almost no misses
	p.RandFrac, p.RandBytes = 0.004, 64*kb
	def(p)

	p = fpBase("mgrid")
	p.StreamFrac, p.StreamStride = 0.185, 16
	def(p)

	p = fpBase("swim") // streaming plus a large random tail
	p.StreamFrac, p.StreamStride = 0.085, 64
	p.RandFrac, p.RandBytes = 0.02, 3*mb
	p.ILP = 5
	def(p)

	p = fpBase("wupwise")
	p.RandFrac, p.RandBytes = 0.012, 1500*kb
	p.StreamFrac, p.StreamStride = 0.005, 64
	def(p)

	// --- SPECint ---
	q := intBase("bzip2")
	q.RandFrac, q.RandBytes = 0.012, 1500*kb
	q.ILP = 2
	q.StreamFrac, q.StreamStride = 0.015, 32
	def(q)

	q = intBase("crafty")
	q.RandFrac, q.RandBytes = 0.016, 256*kb
	q.BranchNoise = 0.08
	def(q)

	q = intBase("eon")
	q.RandFrac, q.RandBytes = 0.048, 192*kb
	q.ConsumeLag = 18
	def(q)

	q = intBase("gap")
	q.RandFrac, q.RandBytes = 0.018, 1500*kb
	q.ILP = 2
	def(q)

	q = intBase("gcc")
	q.RandFrac, q.RandBytes = 0.038, 256*kb
	q.BranchNoise = 0.07
	def(q)

	q = intBase("gzip")
	q.StreamFrac, q.StreamStride = 0.05, 32
	q.RandFrac, q.RandBytes = 0.02, 256*kb
	def(q)

	q = intBase("mcf") // pointer chasing over near- and far-resident lists
	q.ChaseFrac, q.ChaseBytes = 0.12, 4*mb
	q.Chase2Frac, q.Chase2Bytes = 0.28, 256*kb
	q.RandFrac, q.RandBytes = 0.04, 1000*kb
	q.BranchOnLoad, q.BranchNoise = 0.4, 0.14
	q.PoisonAddrFrac = 0.02
	q.ILP = 3
	q.ConsumeLag = 1
	def(q)

	q = intBase("parser")
	q.RandFrac, q.RandBytes = 0.026, 800*kb
	q.Chase2Frac, q.Chase2Bytes = 0.01, 256*kb
	q.ChaseFrac, q.ChaseBytes = 0.003, 2*mb
	q.BranchNoise = 0.08
	q.PoisonAddrFrac = 0.01
	def(q)

	q = intBase("perlbmk")
	q.RandFrac, q.RandBytes = 0.015, 256*kb
	def(q)

	q = intBase("twolf") // place&route: D$-bound, little MLP
	q.RandFrac, q.RandBytes = 0.06, 256*kb
	q.Chase2Frac, q.Chase2Bytes = 0.01, 128*kb
	q.BranchOnLoad = 0.35
	q.ILP = 1
	q.ConsumeLag = 5
	def(q)

	q = intBase("vortex")
	q.RandFrac, q.RandBytes = 0.008, 256*kb
	def(q)

	q = intBase("vpr") // chases over working sets around the L2 boundary
	q.ChaseFrac, q.ChaseBytes = 0.011, 2560*kb
	q.Chase2Frac, q.Chase2Bytes = 0.05, 384*kb
	q.RandFrac, q.RandBytes = 0.025, 512*kb
	q.BranchOnLoad, q.BranchNoise = 0.25, 0.07
	q.PoisonAddrFrac = 0.02
	def(q)

	return m
}()

// Profiles returns the profile for a SPEC2000 benchmark name. It panics
// on unknown names, which indicates a typo at the call site.
func Profiles(name string) Profile {
	p, ok := profiles[name]
	if !ok {
		panic(fmt.Sprintf("workload: unknown benchmark %q", name))
	}
	return p
}

// DefaultSeed is the seed used by SPEC so that all tools and tests see
// identical traces.
const DefaultSeed = 20090214 // HPCA 2009 publication date

// SPEC generates the named benchmark profile with n dynamic instructions.
func SPEC(name string, n int) *Workload {
	return Generate(Profiles(name), n, DefaultSeed)
}
