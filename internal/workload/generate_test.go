package workload

import (
	"runtime"
	"strings"
	"testing"
)

// TestGenerateSingleAllocation pins the builder's one-allocation
// contract: the trace backing is sized n+genSlack up front and never
// regrows. A regrowth would show as a capacity different from the
// preallocation (append doubles), so capacity equality is the witness.
func TestGenerateSingleAllocation(t *testing.T) {
	for _, name := range AllSPECNames {
		for _, n := range []int{1, 1000, 50_000} {
			w := Generate(Profiles(name), n, DefaultSeed)
			if got, want := cap(w.Trace.Insts), n+genSlack; got != want {
				t.Fatalf("%s n=%d: trace backing cap %d, want the single preallocation %d (generation overran genSlack and regrew)",
					name, n, got, want)
			}
			if w.Trace.Len() < n {
				t.Fatalf("%s n=%d: trace has %d insts, want >= n", name, n, w.Trace.Len())
			}
		}
	}
}

// TestGenerateRejectsBadN pins the documented 1..MaxInsts contract.
func TestGenerateRejectsBadN(t *testing.T) {
	for _, n := range []int{0, -1, MaxInsts + 1} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("Generate(n=%d) did not panic", n)
				}
				if !strings.Contains(r.(string), "out of range") {
					t.Fatalf("Generate(n=%d) panic = %q, want an out-of-range message", n, r)
				}
			}()
			Generate(Profiles("mcf"), n, DefaultSeed)
		}()
	}
}

// BenchmarkGenerate measures trace generation and reports bytes allocated
// per generated instruction — the figure of merit for the one-allocation
// builder (an isa.Inst is 64 bytes; the memory image and chase rings add
// a workload-fixed overhead on top).
func BenchmarkGenerate(b *testing.B) {
	const n = 200_000
	p := Profiles("mcf")
	b.ReportAllocs()
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if w := Generate(p, n, DefaultSeed); w.Trace.Len() < n {
			b.Fatal("short trace")
		}
	}
	b.StopTimer()
	runtime.ReadMemStats(&ms1)
	b.ReportMetric(float64(ms1.TotalAlloc-ms0.TotalAlloc)/float64(b.N)/float64(n), "bytes/inst")
}
