// Figure 1 micro-scenarios. Each returns a tiny workload whose miss
// pattern matches one of the paper's illustrative cases (a)–(f), plus a
// cache pre-warm hook so the pattern is exact: "L2 miss" lines start
// entirely uncached, "D$ miss" lines start in the L2 only, and everything
// else (code, hot data) starts fully cached.
package workload

import (
	"icfp/internal/isa"
	"icfp/internal/mem"
	"icfp/internal/memimage"
)

// Scenario identifies one of the Figure 1 cases.
type Scenario string

// The six miss scenarios of Figure 1.
const (
	ScenarioLoneL2          Scenario = "a-lone-l2"
	ScenarioIndependentL2   Scenario = "b-independent-l2"
	ScenarioDependentL2     Scenario = "c-dependent-l2"
	ScenarioChains          Scenario = "d-chains"
	ScenarioD1IndependentL2 Scenario = "e-dmiss-indep-l2"
	ScenarioD1DependentL2   Scenario = "f-dmiss-dep-l2"
)

// AllScenarios lists the Figure 1 scenarios in paper order.
var AllScenarios = []Scenario{
	ScenarioLoneL2, ScenarioIndependentL2, ScenarioDependentL2,
	ScenarioChains, ScenarioD1IndependentL2, ScenarioD1DependentL2,
}

// Data addresses used by scenarios; each lives on its own L1 and L2 line.
const (
	scnMissA = 0x9000_0000 // always cold -> memory miss
	scnMissE = 0x9100_0000 // always cold -> memory miss
	scnMissD = 0x9200_0000 // always cold -> memory miss
	scnDHitC = 0x9300_0000 // pre-warmed into L2 only -> D$ miss, L2 hit
	scnHot   = 0x9400_0000 // pre-warmed everywhere -> D$ hit
)

type scnBuilder struct {
	pc    uint64
	insts []isa.Inst
	mem   *memimage.Image
	l2    []uint64 // lines to pre-warm into L2 only
}

func newScn() *scnBuilder {
	return &scnBuilder{pc: codeBase, mem: memimage.New()}
}

func (s *scnBuilder) next() uint64 { s.pc += 4; return s.pc - 4 }

func (s *scnBuilder) load(dst, addrReg isa.Reg, addr uint64) {
	s.insts = append(s.insts, isa.Inst{
		PC: s.next(), Op: isa.OpLoad, Dst: dst, Src1: addrReg,
		Addr: addr, Size: 8, Val: s.mem.Read64(addr),
	})
}

func (s *scnBuilder) alu(dst, s1, s2 isa.Reg) {
	s.insts = append(s.insts, isa.Inst{PC: s.next(), Op: isa.OpALU, Dst: dst, Src1: s1, Src2: s2})
}

func (s *scnBuilder) build(name string) *Workload {
	l2only := append([]uint64(nil), s.l2...)
	insts := s.insts
	return &Workload{
		Name:  name,
		Trace: &isa.Trace{Name: name, Insts: insts},
		Mem:   s.mem,
		Prewarm: func(h *mem.Hierarchy) {
			// Code and hot data are fully warm.
			for i := range insts {
				h.ICache.Insert(insts[i].PC, false)
				h.L2.Insert(insts[i].PC, false)
			}
			h.DCache.Insert(scnHot, false)
			h.L2.Insert(scnHot, false)
			// "D$ miss" lines live in the L2 only.
			for _, a := range l2only {
				h.L2.Insert(a, false)
			}
		},
	}
}

// Registers: rA..rH mirror the paper's boxed letters.
var (
	rA = isa.IntReg(10)
	rB = isa.IntReg(11)
	rC = isa.IntReg(12)
	rD = isa.IntReg(13)
	rE = isa.IntReg(14)
	rF = isa.IntReg(15)
	rG = isa.IntReg(16)
	rH = isa.IntReg(17)
)

// filler emits n independent single-cycle ops.
func (s *scnBuilder) filler(n int, base isa.Reg) {
	for i := 0; i < n; i++ {
		s.alu(isa.IntReg(20+i%8), base, isa.RegNone)
	}
}

// NewScenario builds the named Figure 1 case. The traces are deliberately
// longer than the figure's sketches (tens of filler instructions) so that
// pipelines have real work to overlap with the misses.
func NewScenario(sc Scenario) *Workload {
	s := newScn()
	switch sc {
	case ScenarioLoneL2:
		// A: L2 miss; B depends on A; C..F independent.
		s.load(rA, regZero, scnMissA)
		s.alu(rB, rA, isa.RegNone)
		s.filler(40, regZero)

	case ScenarioIndependentL2:
		// A and E are independent L2 misses; B dep A, F dep E; G,H tail.
		s.load(rA, regZero, scnMissA)
		s.alu(rB, rA, isa.RegNone)
		s.filler(10, regZero)
		s.load(rE, regZero, scnMissE)
		s.alu(rF, rE, isa.RegNone)
		s.filler(30, regZero)

	case ScenarioDependentL2:
		// E's address depends on A's value: dependent L2 misses.
		// The memory image holds a pointer at A's location.
		s.mem.Write64(scnMissA, scnMissE)
		s.load(rA, regZero, scnMissA)
		s.filler(8, regZero)
		s.load(rE, rA, scnMissE) // address from rA
		s.alu(rF, rE, isa.RegNone)
		s.filler(30, regZero)

	case ScenarioChains:
		// Two independent chains of dependent misses: A->B and E->F.
		s.mem.Write64(scnMissA, scnMissD)
		s.mem.Write64(scnMissE, scnMissD+0x100_0000)
		s.load(rA, regZero, scnMissA)
		s.load(rB, rA, scnMissD) // dep miss on A
		s.filler(6, regZero)
		s.load(rE, regZero, scnMissE)
		s.load(rF, rE, scnMissD+0x100_0000) // dep miss on E
		s.filler(30, regZero)

	case ScenarioD1IndependentL2:
		// Under L2 miss A: a D$ miss C, then an L2 miss D *independent*
		// of C. Blocking on C delays D; poisoning C lets D overlap A.
		s.load(rA, regZero, scnMissA)
		s.alu(rB, rA, isa.RegNone)
		s.filler(4, regZero)
		s.l2 = append(s.l2, scnDHitC)
		s.load(rC, regZero, scnDHitC)
		s.filler(4, regZero)
		s.load(rD, regZero, scnMissD) // independent of C
		s.alu(rE, rD, isa.RegNone)
		s.filler(30, regZero)

	case ScenarioD1DependentL2:
		// Under L2 miss A: a D$ miss C whose value feeds L2 miss D.
		s.mem.Write64(scnDHitC, scnMissD)
		s.load(rA, regZero, scnMissA)
		s.alu(rB, rA, isa.RegNone)
		s.filler(4, regZero)
		s.l2 = append(s.l2, scnDHitC)
		s.load(rC, regZero, scnDHitC)
		s.filler(4, regZero)
		s.load(rD, rC, scnMissD) // address from C
		s.alu(rE, rD, isa.RegNone)
		s.filler(30, regZero)

	default:
		panic("workload: unknown scenario " + string(sc))
	}
	return s.build(string(sc))
}
