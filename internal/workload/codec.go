// Trace serialization. Workloads are deterministic, but pinning a trace
// to a file decouples regression baselines from generator changes and
// lets externally produced traces (e.g. converted from a real
// instruction-trace format) run on the simulator. The format is a simple
// little-endian binary stream; the memory image is reconstructed from
// the stores and load values in the trace itself plus an explicit seed
// section for data that is read before ever being written (chase rings).
package workload

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"icfp/internal/isa"
	"icfp/internal/memimage"
)

// traceMagic identifies the file format; bump the version on change.
const traceMagic = "ICFPTRC1"

// WriteTrace serializes a workload (trace plus the memory words its loads
// observe) to w.
func WriteTrace(w io.Writer, wl *Workload) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return err
	}
	le := binary.LittleEndian
	var scratch [8]byte

	writeU64 := func(v uint64) error {
		le.PutUint64(scratch[:], v)
		_, err := bw.Write(scratch[:])
		return err
	}

	name := []byte(wl.Name)
	if err := writeU64(uint64(len(name))); err != nil {
		return err
	}
	if _, err := bw.Write(name); err != nil {
		return err
	}

	// Memory seed: words that loads observe before any store writes them.
	seeds := seedWords(wl)
	if err := writeU64(uint64(len(seeds))); err != nil {
		return err
	}
	for _, s := range seeds {
		if err := writeU64(s.addr); err != nil {
			return err
		}
		if err := writeU64(s.val); err != nil {
			return err
		}
	}

	if err := writeU64(uint64(wl.Trace.Len())); err != nil {
		return err
	}
	for i := 0; i < wl.Trace.Len(); i++ {
		in := wl.Trace.At(i)
		flags := uint64(in.Op)
		if in.Taken {
			flags |= 1 << 8
		}
		flags |= uint64(in.Dst) << 16
		flags |= uint64(in.Src1) << 24
		flags |= uint64(in.Src2) << 32
		flags |= uint64(in.Size) << 40
		for _, v := range [...]uint64{flags, in.PC, in.Addr, in.Val, in.Target} {
			if err := writeU64(v); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

type seedWord struct{ addr, val uint64 }

// seedWords extracts the memory words loads observe before any store to
// the same address, which is exactly the initial image the trace needs.
func seedWords(wl *Workload) []seedWord {
	written := map[uint64]bool{}
	seeded := map[uint64]bool{}
	var out []seedWord
	for i := 0; i < wl.Trace.Len(); i++ {
		in := wl.Trace.At(i)
		switch in.Op {
		case isa.OpStore:
			written[in.Addr] = true
		case isa.OpLoad:
			if !written[in.Addr] && !seeded[in.Addr] && in.Val != 0 {
				seeded[in.Addr] = true
				out = append(out, seedWord{in.Addr, in.Val})
			}
		}
	}
	return out
}

// ReadTrace deserializes a workload written by WriteTrace. The resulting
// workload has no Prewarm hook; callers warm caches via Config.WarmupInsts.
func ReadTrace(r io.Reader) (*Workload, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(traceMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("workload: reading magic: %w", err)
	}
	if string(magic) != traceMagic {
		return nil, fmt.Errorf("workload: bad magic %q", magic)
	}
	var scratch [8]byte
	readU64 := func() (uint64, error) {
		if _, err := io.ReadFull(br, scratch[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(scratch[:]), nil
	}

	nameLen, err := readU64()
	if err != nil {
		return nil, err
	}
	if nameLen > 1<<16 {
		return nil, fmt.Errorf("workload: implausible name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}

	img := memimage.New()
	nSeeds, err := readU64()
	if err != nil {
		return nil, err
	}
	for k := uint64(0); k < nSeeds; k++ {
		addr, err := readU64()
		if err != nil {
			return nil, err
		}
		val, err := readU64()
		if err != nil {
			return nil, err
		}
		img.Write64(addr, val)
	}

	n, err := readU64()
	if err != nil {
		return nil, err
	}
	if n > 1<<28 {
		return nil, fmt.Errorf("workload: implausible trace length %d", n)
	}
	// Grow in bounded chunks rather than trusting the length field with a
	// single up-front allocation: a corrupt or hostile header can claim up
	// to 2^28 instructions (multi-GB) while supplying only a few bytes, and
	// the allocation must stay proportional to data actually read.
	const chunk = 1 << 16
	insts := make([]isa.Inst, 0, min(n, chunk))
	for i := uint64(0); i < n; i++ {
		var vals [5]uint64
		for k := range vals {
			if vals[k], err = readU64(); err != nil {
				return nil, fmt.Errorf("workload: instruction %d: %w", i, err)
			}
		}
		flags := vals[0]
		insts = append(insts, isa.Inst{
			Op:     isa.Op(flags & 0xFF),
			Taken:  flags&(1<<8) != 0,
			Dst:    isa.Reg(flags >> 16),
			Src1:   isa.Reg(flags >> 24),
			Src2:   isa.Reg(flags >> 32),
			Size:   uint8(flags >> 40),
			PC:     vals[1],
			Addr:   vals[2],
			Val:    vals[3],
			Target: vals[4],
		})
	}
	return &Workload{
		Name:  string(name),
		Trace: &isa.Trace{Name: string(name), Insts: insts},
		Mem:   img,
	}, nil
}
