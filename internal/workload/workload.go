// Package workload generates the deterministic, fully resolved instruction
// traces the simulator runs. It replaces the paper's SPEC2000/Alpha
// binaries (which we cannot run) with synthetic programs whose memory and
// control behaviour is calibrated per benchmark to the characterization in
// Table 2 of the paper: data-cache and L2 misses per kilo-instruction, and
// the *kind* of misses — independent random misses (art-like), streaming
// prefetch-friendly misses (swim-like), and dependent pointer-chase miss
// chains (mcf-like), which are what differentiate iCFP from Runahead,
// Multipass and SLTP.
package workload

import (
	"fmt"
	"math/rand"
	"sync"

	"icfp/internal/isa"
	"icfp/internal/mem"
	"icfp/internal/memimage"
)

// Workload couples a resolved trace with the functional memory image it
// was generated against and an optional cache pre-warm hook (used by the
// Figure 1 micro-scenarios to set up exact hit/miss patterns).
type Workload struct {
	Name    string
	Trace   *isa.Trace
	Mem     *memimage.Image
	Prewarm func(h *mem.Hierarchy) // optional; called before simulation

	sharedMu sync.Mutex
	shared   map[string]any
}

// SharedState returns the per-workload shared value for key, calling
// build exactly once per key to create it. The harness shares workloads
// read-only across all simulations (exp.Arena), so this is where state
// that is a pure function of the workload — warmed cache/predictor
// checkpoints, most importantly — attaches and amortizes across every
// machine that runs the workload. build runs under the workload's shared
// lock: it must create the (empty) container only, deferring real work
// to the container's own methods.
func (w *Workload) SharedState(key string, build func() any) any {
	w.sharedMu.Lock()
	defer w.sharedMu.Unlock()
	if w.shared == nil {
		w.shared = make(map[string]any)
	}
	v, ok := w.shared[key]
	if !ok {
		v = build()
		w.shared[key] = v
	}
	return v
}

// Address-space layout for generated programs. Regions are spaced far
// apart so they never alias.
const (
	codeBase   = 0x0040_0000 // instruction PCs
	hotBase    = 0x1000_0000 // small always-cached data region
	streamBase = 0x2000_0000 // sequentially-walked region
	randBase   = 0x4000_0000 // large random-access region
	chaseBase  = 0x8000_0000 // far linked-list region
	chase2Base = 0xA000_0000 // near (L2-resident) linked-list region
)

// hotBytes is the size of the hot region; it fits comfortably in the
// 32 KB L1 so hot loads essentially always hit.
const hotBytes = 8 << 10

// Profile parameterizes a synthetic benchmark. All fractions are of
// dynamic instructions unless stated otherwise.
type Profile struct {
	Name string
	FP   bool // SPECfp-style (fp compute, fewer branches)

	// Instruction mix.
	LoadFrac   float64 // fraction of instructions that are loads
	StoreFrac  float64 // fraction that are stores
	BranchFrac float64 // fraction that are conditional branches

	// Load population. Fractions are of loads and must sum to <= 1;
	// the remainder are hot loads that hit the L1.
	StreamFrac float64 // sequential loads (prefetch-friendly)
	RandFrac   float64 // uniform-random loads over RandBytes
	ChaseFrac  float64 // pointer-chase loads (each depends on the last)

	StreamStride uint64 // bytes between consecutive stream loads
	RandBytes    uint64 // random-region footprint
	ChaseBytes   uint64 // far linked-list footprint (>> L2: every hop misses to memory)

	// Near chase ring: sized to stay L2-resident but exceed the L1, so
	// its hops are dependent data-cache misses that hit in the L2 — the
	// "secondary data cache miss under an L2 miss" pattern of Figure 6.
	Chase2Frac  float64
	Chase2Bytes uint64

	// Control behaviour.
	BranchNoise  float64 // fraction of branches with random outcome
	BranchOnLoad float64 // fraction of branches keyed on a load result

	// Store behaviour.
	StoreToLoadFwd float64 // fraction of stores reloaded shortly after
	PoisonAddrFrac float64 // fraction of stores whose address comes from a load

	// Compute structure.
	ILP     int     // independent dependence chains in compute blocks
	MulFrac float64 // fraction of compute ops that are multiplies
	// ConsumeLag inserts this many independent compute instructions
	// between a load group and its consumers. It models how far real code
	// separates loads from uses: with a large lag, a stall-on-use
	// in-order pipeline hides L2-hit latencies by itself (eon/gcc-like);
	// with none, every miss stalls the pipe at once (art/mcf-like).
	ConsumeLag int
}

// builder incrementally constructs a resolved trace.
type builder struct {
	rng  *rand.Rand
	mem  *memimage.Image
	tr   []isa.Inst
	vals [isa.NumRegs]uint64

	streamPtr uint64
	far       chaseWalk // far ring (memory misses)
	near      chaseWalk // near ring (L2-resident D$ misses)
}

// chaseWalk tracks a pointer walk over a prebuilt ring of nodes.
type chaseWalk struct {
	ptr  uint64
	ring []uint64
	idx  int
}

// next returns the current node address and advances the walk.
func (c *chaseWalk) next() uint64 {
	addr := c.ptr
	c.idx = (c.idx + 1) % len(c.ring)
	c.ptr = c.ring[c.idx]
	return addr
}

// Register conventions inside generated programs.
var (
	regStream  = isa.IntReg(1) // stream pointer
	regIndex   = isa.IntReg(2) // random index scratch
	regChase   = isa.IntReg(3) // far chase pointer
	regChase2  = isa.IntReg(4) // near chase pointer
	regPayload = isa.IntReg(5) // chase-node payload
	regPayAcc  = isa.IntReg(6) // payload accumulator
	regZero    = isa.IntReg(0)
)

// dataRegs rotate as destinations of loads and compute.
func dataReg(i int, fp bool) isa.Reg {
	if fp {
		return isa.FPReg(8 + i%16)
	}
	return isa.IntReg(8 + i%16)
}

func newBuilder(seed int64, n int) *builder {
	return &builder{
		rng: rand.New(rand.NewSource(seed)),
		mem: memimage.New(),
		// One allocation for the whole trace: generation appends at most
		// one iteration past n (bounded by genSlack), and growing a
		// multi-hundred-kilo-instruction slice by doubling would copy the
		// whole trace several times over.
		tr: make([]isa.Inst, 0, n+genSlack),
	}
}

func (b *builder) emit(in isa.Inst) { b.tr = append(b.tr, in) }

// emitALU appends a 1-cycle integer op dst = f(src1, src2).
func (b *builder) emitALU(pc uint64, dst, s1, s2 isa.Reg) {
	v := b.vals[s1&63] + 1
	if s2.Valid() {
		v += b.vals[s2&63]
	}
	if dst.Valid() {
		b.vals[dst] = v
	}
	b.emit(isa.Inst{PC: pc, Op: isa.OpALU, Dst: dst, Src1: s1, Src2: s2, Val: v})
}

// emitOp appends a compute op of the given class.
func (b *builder) emitOp(pc uint64, op isa.Op, dst, s1, s2 isa.Reg) {
	v := b.vals[s1&63] ^ 0x9E3779B97F4A7C15
	if s2.Valid() {
		v += b.vals[s2&63]
	}
	if dst.Valid() {
		b.vals[dst] = v
	}
	b.emit(isa.Inst{PC: pc, Op: op, Dst: dst, Src1: s1, Src2: s2, Val: v})
}

// emitLoad appends a load dst = mem[addr] whose address was produced by
// addrReg (the dependence the timing model honors).
func (b *builder) emitLoad(pc uint64, dst, addrReg isa.Reg, addr uint64) {
	v := b.mem.Read64(addr)
	if dst.Valid() {
		b.vals[dst] = v
	}
	b.emit(isa.Inst{PC: pc, Op: isa.OpLoad, Dst: dst, Src1: addrReg, Addr: addr, Size: 8, Val: v})
}

// emitStore appends a store mem[addr] = dataReg.
func (b *builder) emitStore(pc uint64, addrReg, data isa.Reg, addr uint64) {
	v := b.vals[data&63]
	b.mem.Write64(addr, v)
	b.emit(isa.Inst{PC: pc, Op: isa.OpStore, Src1: addrReg, Src2: data, Addr: addr, Size: 8, Val: v})
}

// emitBranch appends a conditional branch.
func (b *builder) emitBranch(pc uint64, s1, s2 isa.Reg, taken bool, target uint64) {
	b.emit(isa.Inst{PC: pc, Op: isa.OpBranch, Src1: s1, Src2: s2, Taken: taken, Target: target})
}

// buildChase lays a pseudo-random ring of linked-list nodes over bytes of
// memory starting at base and initializes the image so that each node's
// first word points at the next node.
func (b *builder) buildChase(base, bytes uint64, reg isa.Reg) chaseWalk {
	if bytes == 0 {
		return chaseWalk{}
	}
	const nodeSize = 64 // one node per L1 line
	n := int(bytes / nodeSize)
	if n < 2 {
		n = 2
	}
	order := b.rng.Perm(n)
	addrs := make([]uint64, n)
	for i, o := range order {
		addrs[i] = base + uint64(o)*nodeSize
	}
	for i := range addrs {
		next := addrs[(i+1)%n]
		b.mem.Write64(addrs[i], next)
	}
	b.vals[reg] = addrs[0]
	return chaseWalk{ptr: addrs[0], ring: addrs}
}

// MaxInsts bounds generated workload lengths at roughly the paper's full
// scale. It is the documented contract of Generate — and the bound
// internal/spec enforces on specs arriving over the network, so a remote
// worker cannot be pinned for hours on a single absurd key.
const MaxInsts = 1 << 30

// genSlack bounds how far one generator iteration can run past n: the
// nominal loop body is ~64 instructions, and the widest profile mix
// (every chase load expanding to three instructions, forwarded reloads
// doubling stores) stays well under this. The builder preallocates
// n+genSlack up front so the whole trace is one allocation;
// TestGenerateSingleAllocation pins that the backing never regrows.
const genSlack = 512

// Generate builds a deterministic workload of roughly n dynamic
// instructions for the profile; n must be in 1..MaxInsts. The same
// (profile, seed, n) triple always yields an identical trace.
func Generate(p Profile, n int, seed int64) *Workload {
	if n < 1 || n > MaxInsts {
		panic(fmt.Sprintf("workload: Generate n=%d out of range 1..%d", n, MaxInsts))
	}
	b := newBuilder(seed, n)
	b.streamPtr = streamBase
	b.far = b.buildChase(chaseBase, p.ChaseBytes, regChase)
	b.near = b.buildChase(chase2Base, p.Chase2Bytes, regChase2)
	// Hot region: fill with nonzero data.
	for a := uint64(0); a < hotBytes; a += 8 {
		b.mem.Write64(hotBase+a, a^0xABCD)
	}

	// The program is one big loop; every iteration walks the same static
	// block sequence (stable PCs train the predictor and I$), with block
	// contents drawn from the profile's mix.
	for len(b.tr) < n {
		b.iteration(p)
	}
	fixupTargets(b.tr)
	// Terminate cleanly: final loop-back branch falls through.
	if last := &b.tr[len(b.tr)-1]; last.Op == isa.OpBranch {
		last.Taken = false
	}
	return &Workload{
		Name:    p.Name,
		Trace:   &isa.Trace{Name: p.Name, Insts: b.tr},
		Mem:     b.mem,
		Prewarm: prewarmL2(p),
	}
}

// prewarmL2 returns a hook that installs the steady-state-resident data
// regions into the L2: the whole random region (its resident tail if it
// exceeds capacity) and the near chase ring. Sampled runs are far shorter
// than real executions, so without this the first touch of every cold
// line would masquerade as a memory miss.
func prewarmL2(p Profile) func(h *mem.Hierarchy) {
	return func(h *mem.Hierarchy) {
		line := uint64(h.L2.LineBytes())
		for a := uint64(0); a < p.RandBytes; a += line {
			h.L2.Insert(randBase+a, false)
		}
		for a := uint64(0); a < p.Chase2Bytes; a += line {
			h.L2.Insert(chase2Base+a, false)
		}
	}
}

// iteration emits one loop body. Static layout (fixed PCs per block slot):
// [chase] [rand] [stream] [compute] [stores] [branches] [loop branch].
func (b *builder) iteration(p Profile) {
	pc := uint64(codeBase)
	next := func() uint64 { pc += 4; return pc - 4 }
	di := b.rng.Intn(16) // rotating data register base

	// Derive per-iteration op counts from the profile fractions, assuming
	// a nominal body of ~64 instructions. Fractional counts round
	// probabilistically so small fractions are honored in expectation.
	const body = 64.0
	round := func(x float64) int {
		n := int(x)
		if b.rng.Float64() < x-float64(n) {
			n++
		}
		return n
	}
	loads := round(body * p.LoadFrac)
	stores := round(body * p.StoreFrac)
	branches := round(body * p.BranchFrac)
	chase := round(float64(loads) * p.ChaseFrac)
	chase2 := round(float64(loads) * p.Chase2Frac)
	randLoads := round(float64(loads) * p.RandFrac)
	stream := round(float64(loads) * p.StreamFrac)
	// Profiles reach this generator from user-authored suites (the fuzz
	// family decodes via spec), so degenerate shapes must fall back, not
	// panic: a load class without a backing region becomes hot loads,
	// and probabilistic rounding that oversubscribes the load budget
	// clamps the hot remainder at zero.
	if len(b.far.ring) == 0 {
		chase = 0
	}
	if len(b.near.ring) == 0 {
		chase2 = 0
	}
	if p.RandBytes < 8 {
		randLoads = 0
	}
	hot := loads - chase - chase2 - randLoads - stream
	if hot < 0 {
		hot = 0
	}
	compute := 64 - loads - stores - branches
	if compute < 0 {
		compute = 0
	}

	// Far chase block: dependent memory misses. Each hop reads the node's
	// payload (same line as the pointer) and consumes it immediately, as
	// real list-walking code does — this is what makes a stall-on-use
	// in-order pipeline serialize on every hop.
	for c := 0; c < chase; c++ {
		addr := b.far.next()
		b.emitLoad(next(), regPayload, regChase, addr+8)
		b.emitLoad(next(), regChase, regChase, addr)
		b.emitALU(next(), regPayAcc, regPayAcc, regPayload)
	}

	// Near chase block: dependent D$ misses that hit in the L2.
	for c := 0; c < chase2; c++ {
		addr := b.near.next()
		b.emitLoad(next(), regPayload, regChase2, addr+8)
		b.emitLoad(next(), regChase2, regChase2, addr)
		b.emitALU(next(), regPayAcc, regPayAcc, regPayload)
	}

	// Main block: groups of up to ILP independent loads, each group
	// followed immediately by instructions that consume every loaded
	// value. Tight consumption is what makes a stall-on-use in-order
	// pipeline suffer under misses: its achievable MLP is bounded by the
	// group size, while advance-mode machines run ahead across groups
	// and iterations.
	ilp := p.ILP
	if ilp < 1 {
		ilp = 1
	}
	kinds := make([]int, 0, randLoads+stream+hot)
	for r := 0; r < randLoads; r++ {
		kinds = append(kinds, 0)
	}
	for s := 0; s < stream; s++ {
		kinds = append(kinds, 1)
	}
	for h := 0; h < hot; h++ {
		kinds = append(kinds, 2)
	}
	b.rng.Shuffle(len(kinds), func(i, j int) { kinds[i], kinds[j] = kinds[j], kinds[i] })

	computeLeft := compute
	for g := 0; g < len(kinds); g += ilp {
		end := g + ilp
		if end > len(kinds) {
			end = len(kinds)
		}
		group := kinds[g:end]
		// Issue the group's loads back to back (independent of each other).
		for k, kind := range group {
			dst := dataReg(di+k, p.FP)
			switch kind {
			case 0: // random
				addr := randBase + uint64(b.rng.Int63n(int64(p.RandBytes/8)))*8
				b.emitLoad(next(), dst, regIndex, addr)
			case 1: // stream
				b.emitLoad(next(), dst, regStream, b.streamPtr)
				b.streamPtr += p.StreamStride
			default: // hot
				addr := hotBase + uint64(b.rng.Int63n(hotBytes/8))*8
				b.emitLoad(next(), dst, regZero, addr)
			}
		}
		// Optional slack between the loads and their uses.
		for l := 0; l < p.ConsumeLag && computeLeft > 0; l++ {
			op := isa.OpALU
			if p.FP {
				op = isa.OpFAdd
			}
			acc := dataReg(di+8+l%ilp, p.FP)
			b.emitOp(next(), op, acc, acc, isa.RegNone)
			computeLeft--
		}
		// Consume every loaded value into per-chain accumulators.
		for k := range group {
			op := isa.OpALU
			if p.FP {
				op = isa.OpFAdd
			}
			acc := dataReg(di+8+k%ilp, p.FP)
			b.emitOp(next(), op, acc, acc, dataReg(di+k, p.FP))
			computeLeft--
		}
		// Advance the stream/index pointers for the next group.
		b.emitALU(next(), regIndex, regIndex, isa.RegNone)
		computeLeft--
	}

	// Remaining compute: ILP independent chains over the accumulators.
	for k := 0; k < computeLeft; k++ {
		op := isa.OpALU
		if p.FP {
			op = isa.OpFAdd
		}
		if b.rng.Float64() < p.MulFrac {
			if p.FP {
				op = isa.OpFMul
			} else {
				op = isa.OpIMul
			}
		}
		chain := k % ilp
		dst := dataReg(di+8+chain, p.FP)
		b.emitOp(next(), op, dst, dst, dataReg(di+chain, p.FP))
	}

	// Store block.
	for s := 0; s < stores; s++ {
		data := dataReg(di+s, p.FP)
		var addr uint64
		addrReg := regIndex
		switch {
		case b.rng.Float64() < p.PoisonAddrFrac && len(b.far.ring) > 0:
			// Address derived from a chase load: poisoned-address store
			// when the chase is miss-dependent.
			addr = b.vals[regChase] + 8
			addrReg = regChase
		case b.rng.Float64() < p.RandFrac && p.RandBytes >= 8:
			// Stores follow the same cold/hot split as loads so store
			// misses track the profile's miss-rate targets. (The random
			// draw happens unconditionally, so the degenerate-region
			// guard never shifts the rng stream of a valid profile.)
			addr = randBase + uint64(b.rng.Int63n(int64(p.RandBytes/8)))*8
		default:
			addr = hotBase + uint64(b.rng.Int63n(hotBytes/8))*8
		}
		b.emitStore(next(), addrReg, data, addr)
		// A fixed prefix of stores is reloaded shortly after, exercising
		// store-to-load forwarding. The count is deterministic so that
		// every iteration has an identical static PC layout.
		if s < int(float64(stores)*p.StoreToLoadFwd) {
			b.emitLoad(next(), dataReg(di+s+1, p.FP), addrReg, addr)
		}
	}

	// Data-dependent branches. Targets are fixed up after generation to
	// point at the dynamically following instruction.
	for k := 0; k < branches; k++ {
		src := dataReg(di+k, p.FP)
		if b.rng.Float64() < p.BranchOnLoad {
			// Branch keyed on recently loaded data: on chase workloads the
			// node payload (so branches become miss-dependent, as real
			// list-walking code is), otherwise the latest group load.
			if p.ChaseFrac > 0 || p.Chase2Frac > 0 {
				src = regPayAcc
			} else {
				src = dataReg(di, p.FP)
			}
		}
		taken := true
		if b.rng.Float64() < p.BranchNoise {
			taken = b.rng.Intn(2) == 0
		}
		b.emitBranch(next(), src, regZero, taken, 0)
	}

	// Loop-back branch (predictably taken).
	lb := next()
	b.emitBranch(lb, regIndex, regZero, true, codeBase)
}

// fixupTargets points every taken control transfer at the PC of the
// dynamically following instruction so traces are internally consistent.
func fixupTargets(tr []isa.Inst) {
	for i := range tr {
		if tr[i].Op.IsCtrl() && tr[i].Taken && i+1 < len(tr) {
			tr[i].Target = tr[i+1].PC
		}
	}
}
