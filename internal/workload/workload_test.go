package workload

import (
	"testing"

	"icfp/internal/isa"
)

func TestGenerateDeterministic(t *testing.T) {
	p := Profiles("mcf")
	w1 := Generate(p, 2000, 7)
	w2 := Generate(p, 2000, 7)
	if w1.Trace.Len() != w2.Trace.Len() {
		t.Fatal("same seed must give same length")
	}
	for i := 0; i < w1.Trace.Len(); i++ {
		if *w1.Trace.At(i) != *w2.Trace.At(i) {
			t.Fatalf("instruction %d differs between identical generations", i)
		}
	}
}

func TestGenerateSeedSensitivity(t *testing.T) {
	p := Profiles("gcc")
	w1 := Generate(p, 2000, 1)
	w2 := Generate(p, 2000, 2)
	same := 0
	n := w1.Trace.Len()
	if w2.Trace.Len() < n {
		n = w2.Trace.Len()
	}
	for i := 0; i < n; i++ {
		if *w1.Trace.At(i) == *w2.Trace.At(i) {
			same++
		}
	}
	if same == n {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestGenerateLength(t *testing.T) {
	w := SPEC("gzip", 5000)
	if w.Trace.Len() < 5000 || w.Trace.Len() > 5200 {
		t.Fatalf("trace length %d not within one iteration of request", w.Trace.Len())
	}
}

func TestTraceEndsWithFallthrough(t *testing.T) {
	w := SPEC("bzip2", 1000)
	last := w.Trace.At(w.Trace.Len() - 1)
	if last.Op == isa.OpBranch && last.Taken {
		t.Fatal("final branch must fall through")
	}
}

func TestLoadValuesMatchMemoryImage(t *testing.T) {
	// Every load's recorded value must equal what the memory image holds
	// under in-order replay of the stores. Since stores were applied at
	// generation time, the final image reflects all stores; instead we
	// replay: maintain our own image copy and check as we go.
	w := SPEC("mcf", 20000)
	type pending struct{ addr, val uint64 }
	written := map[uint64]uint64{}
	for i := 0; i < w.Trace.Len(); i++ {
		in := w.Trace.At(i)
		switch in.Op {
		case isa.OpStore:
			written[in.Addr] = in.Val
		case isa.OpLoad:
			if v, ok := written[in.Addr]; ok && v != in.Val {
				t.Fatalf("inst %d: load[%#x] = %#x but last store wrote %#x", i, in.Addr, in.Val, v)
			}
		}
	}
	_ = pending{}
}

func TestChaseLoadsAreDependent(t *testing.T) {
	w := SPEC("mcf", 20000)
	chase := 0
	for i := 0; i < w.Trace.Len(); i++ {
		in := w.Trace.At(i)
		if in.Op == isa.OpLoad && in.Src1 == regChase && in.Dst == regChase {
			chase++
			// Value loaded must be the address of some future chase load.
			if in.Val < chaseBase {
				t.Fatalf("chase load %d value %#x not a chase pointer", i, in.Val)
			}
		}
	}
	if chase == 0 {
		t.Fatal("mcf profile must contain chase loads")
	}
}

func TestChaseWalkIsConsistent(t *testing.T) {
	// Each chase load's address must equal the previous chase load's value.
	w := SPEC("vpr", 20000)
	var prevVal uint64
	havePrev := false
	for i := 0; i < w.Trace.Len(); i++ {
		in := w.Trace.At(i)
		if in.Op == isa.OpLoad && in.Src1 == regChase && in.Dst == regChase {
			if havePrev && in.Addr != prevVal {
				t.Fatalf("chase load %d at %#x but previous pointer was %#x", i, in.Addr, prevVal)
			}
			prevVal = in.Val
			havePrev = true
		}
	}
}

func TestTakenTargetsPointAtNextPC(t *testing.T) {
	w := SPEC("gcc", 10000)
	for i := 0; i+1 < w.Trace.Len(); i++ {
		in := w.Trace.At(i)
		if in.Op.IsCtrl() && in.Taken {
			if in.Target != w.Trace.At(i+1).PC {
				t.Fatalf("inst %d taken target %#x but next PC %#x", i, in.Target, w.Trace.At(i+1).PC)
			}
		}
		if !in.Op.IsCtrl() || !in.Taken {
			if in.PC+4 != w.Trace.At(i+1).PC {
				t.Fatalf("inst %d fallthrough PC %#x -> %#x", i, in.PC, w.Trace.At(i+1).PC)
			}
		}
	}
}

func TestInstructionMixRoughlyMatchesProfile(t *testing.T) {
	p := Profiles("gcc")
	w := Generate(p, 50000, 3)
	var loads, stores, branches int
	for i := 0; i < w.Trace.Len(); i++ {
		switch w.Trace.At(i).Op {
		case isa.OpLoad:
			loads++
		case isa.OpStore:
			stores++
		case isa.OpBranch:
			branches++
		}
	}
	n := float64(w.Trace.Len())
	lf := float64(loads) / n
	// Loads include the forwarding reloads, so allow generous slack.
	if lf < p.LoadFrac*0.7 || lf > p.LoadFrac*1.6 {
		t.Errorf("load fraction %.3f vs profile %.3f", lf, p.LoadFrac)
	}
	sf := float64(stores) / n
	if sf < p.StoreFrac*0.6 || sf > p.StoreFrac*1.5 {
		t.Errorf("store fraction %.3f vs profile %.3f", sf, p.StoreFrac)
	}
}

func TestProfilesPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Profiles must panic on unknown name")
		}
	}()
	Profiles("nonesuch")
}

func TestAllProfilesGenerate(t *testing.T) {
	for _, name := range AllSPECNames {
		w := SPEC(name, 1000)
		if w.Trace.Len() == 0 {
			t.Errorf("%s: empty trace", name)
		}
		if w.Name != name {
			t.Errorf("%s: workload named %q", name, w.Name)
		}
	}
	if len(AllSPECNames) != 24 {
		t.Errorf("expected 24 benchmarks, have %d", len(AllSPECNames))
	}
}

func TestScenariosBuild(t *testing.T) {
	for _, sc := range AllScenarios {
		w := NewScenario(sc)
		if w.Trace.Len() < 10 {
			t.Errorf("%s: suspiciously short (%d insts)", sc, w.Trace.Len())
		}
		if w.Prewarm == nil {
			t.Errorf("%s: missing prewarm hook", sc)
		}
	}
}

func TestScenarioDependentChainAddresses(t *testing.T) {
	w := NewScenario(ScenarioDependentL2)
	// Find the two loads; the second's address must equal the first's value.
	var first, second *isa.Inst
	for i := 0; i < w.Trace.Len(); i++ {
		in := w.Trace.At(i)
		if in.Op == isa.OpLoad {
			if first == nil {
				first = in
			} else {
				second = in
				break
			}
		}
	}
	if first == nil || second == nil {
		t.Fatal("scenario must contain two loads")
	}
	if first.Val != second.Addr {
		t.Fatalf("dependent miss: first value %#x != second addr %#x", first.Val, second.Addr)
	}
	if second.Src1 != first.Dst {
		t.Fatal("second load must read the first load's destination")
	}
}

func TestScenarioUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewScenario must panic on unknown scenario")
		}
	}()
	NewScenario(Scenario("zzz"))
}
