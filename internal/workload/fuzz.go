// The fuzz scenario family: seeded, spec-addressable random workloads.
// Each member is identified by (seed, knobs) — the same pair always
// derives the same Profile and therefore the same trace — so fuzzed
// scenarios carry a canonical identity just like the named SPEC
// profiles, and can participate in suites, the memo cache, the result
// store, and distributed dispatch (spec.Workload.Fuzz). The unbiased
// family (zero knobs) spans the whole behaviour space: miss-heavy and
// miss-free, chases, streams, poisoned-address stores, noisy branches.
// The knobs then push a member toward one of the pathologies the
// paper's iCFP claims rest on: store-buffer pressure, branch-on-load
// chains, miss clustering, and rally starvation.
package workload

import "fmt"

// FuzzKnobs bias a fuzz-family member toward an adversarial pathology.
// Each knob is an integer intensity in 0..100: 0 leaves the seed's
// unbiased random profile untouched, 100 pulls the relevant profile
// fields all the way to their pathological extreme. Integers (not
// floats) keep the canonical JSON encoding exact and the identity
// story trivial.
type FuzzKnobs struct {
	// SBPressure raises store density, store-to-load forwarding and
	// poisoned-address stores until drains, chained-buffer overflows
	// and simple-runahead transitions dominate.
	SBPressure int
	// BranchOnLoad keys branches on freshly loaded (often missing)
	// values: advance-mode branch resolution, squashes and re-poisoning.
	BranchOnLoad int
	// MissCluster concentrates loads into dependent chase chains and
	// random misses with zero consume lag — back-to-back miss bursts
	// instead of an even spread.
	MissCluster int
	// RallyStarve combines deep memory-miss chains with forwarding and
	// poisoned stores so rallies keep re-missing and never settle.
	RallyStarve int
}

// Validate checks every knob is an intensity in 0..100. It is the
// guard the spec layer invokes on decode, so an out-of-range knob in a
// user-authored suite is an error, never a generator panic.
func (k FuzzKnobs) Validate() error {
	for _, f := range []struct {
		name string
		v    int
	}{
		{"sb_pressure", k.SBPressure},
		{"branch_on_load", k.BranchOnLoad},
		{"miss_cluster", k.MissCluster},
		{"rally_starve", k.RallyStarve},
	} {
		if f.v < 0 || f.v > 100 {
			return fmt.Errorf("workload: fuzz knob %s=%d out of range 0..100", f.name, f.v)
		}
	}
	return nil
}

// zero reports whether every knob is at its neutral setting.
func (k FuzzKnobs) zero() bool { return k == FuzzKnobs{} }

// FuzzName returns the family member's name — the display form of its
// (seed, knobs) identity. Unbiased members keep the short historical
// "fuzz-s<seed>" spelling.
func FuzzName(seed int64, k FuzzKnobs) string {
	if k.zero() {
		return fmt.Sprintf("fuzz-s%d", seed)
	}
	return fmt.Sprintf("fuzz-s%d-sb%d-bl%d-mc%d-rs%d",
		seed, k.SBPressure, k.BranchOnLoad, k.MissCluster, k.RallyStarve)
}

// lerp moves a toward b by t in [0,1].
func lerp(a, b, t float64) float64 { return a + (b-a)*t }

// FuzzProfile derives the family member's structurally valid Profile.
// The base is a pure function of the seed (a multiplicative-hash draw
// per field, spanning the whole behaviour space); each nonzero knob
// then lerps its pathology's fields toward their extremes. The load
// population is renormalized afterwards so the fractions stay a valid
// partition whatever the knobs do — by construction the result can
// always be generated, never panicking Generate.
func FuzzProfile(seed int64, k FuzzKnobs) Profile {
	r := func(key int64, mod int64) float64 {
		x := (seed*2654435761 + key*40503) % mod
		if x < 0 {
			x += mod
		}
		return float64(x) / float64(mod)
	}
	p := Profile{
		Name:           FuzzName(seed, k),
		FP:             r(1, 2) < 0.5,
		LoadFrac:       0.15 + 0.2*r(2, 97),
		StoreFrac:      0.05 + 0.1*r(3, 89),
		BranchFrac:     0.05 + 0.15*r(4, 83),
		StreamFrac:     0.3 * r(5, 79),
		RandFrac:       0.3 * r(6, 73),
		ChaseFrac:      0.1 * r(7, 71),
		Chase2Frac:     0.2 * r(8, 67),
		StreamStride:   []uint64{8, 16, 32, 64}[int(4*r(9, 61))%4],
		RandBytes:      64<<10 + uint64(r(10, 59)*float64(2<<20)),
		ChaseBytes:     1<<20 + uint64(r(11, 53)*float64(3<<20)),
		Chase2Bytes:    64<<10 + uint64(r(12, 47)*float64(512<<10)),
		BranchNoise:    0.2 * r(13, 43),
		BranchOnLoad:   0.5 * r(14, 41),
		StoreToLoadFwd: 0.3 * r(15, 37),
		PoisonAddrFrac: 0.05 * r(16, 31),
		ILP:            1 + int(7*r(17, 29)),
		MulFrac:        0.4 * r(18, 23),
		ConsumeLag:     int(16 * r(19, 19)),
	}

	if t := float64(k.SBPressure) / 100; t > 0 {
		p.StoreFrac = lerp(p.StoreFrac, 0.30, t)
		p.StoreToLoadFwd = lerp(p.StoreToLoadFwd, 0.90, t)
		p.PoisonAddrFrac = lerp(p.PoisonAddrFrac, 0.25, t)
	}
	if t := float64(k.BranchOnLoad) / 100; t > 0 {
		p.BranchFrac = lerp(p.BranchFrac, 0.30, t)
		p.BranchOnLoad = lerp(p.BranchOnLoad, 1.0, t)
		p.BranchNoise = lerp(p.BranchNoise, 0.40, t)
		// Branch chains need missing values to chain on.
		p.ChaseFrac = lerp(p.ChaseFrac, 0.15, t)
	}
	if t := float64(k.MissCluster) / 100; t > 0 {
		p.ChaseFrac = lerp(p.ChaseFrac, 0.30, t)
		p.Chase2Frac = lerp(p.Chase2Frac, 0.40, t)
		p.RandFrac = lerp(p.RandFrac, 0.35, t)
		p.ConsumeLag = int(lerp(float64(p.ConsumeLag), 0, t))
		p.ILP = 1 + int(lerp(float64(p.ILP-1), 0, t))
	}
	if t := float64(k.RallyStarve) / 100; t > 0 {
		p.ChaseFrac = lerp(p.ChaseFrac, 0.25, t)
		p.ChaseBytes = uint64(lerp(float64(p.ChaseBytes), float64(6<<20), t))
		p.BranchOnLoad = lerp(p.BranchOnLoad, 0.80, t)
		p.StoreToLoadFwd = lerp(p.StoreToLoadFwd, 0.70, t)
		p.PoisonAddrFrac = lerp(p.PoisonAddrFrac, 0.30, t)
		p.ConsumeLag = int(lerp(float64(p.ConsumeLag), 0, t))
	}

	// Keep the load population a valid partition: the biased fractions
	// are of loads and must leave room for the hot remainder.
	if sum := p.StreamFrac + p.RandFrac + p.ChaseFrac + p.Chase2Frac; sum > 0.95 {
		scale := 0.95 / sum
		p.StreamFrac *= scale
		p.RandFrac *= scale
		p.ChaseFrac *= scale
		p.Chase2Frac *= scale
	}
	return p
}

// Fuzz generates the fuzz-family member (seed, knobs) with n dynamic
// instructions. The trace seed is the family seed, so the member's
// identity fully determines its trace, exactly as SPEC's does.
func Fuzz(seed int64, k FuzzKnobs, n int) *Workload {
	return Generate(FuzzProfile(seed, k), n, seed)
}

// FuzzCase is one curated member of the committed adversarial corpus.
type FuzzCase struct {
	// Label names the pathology the case was curated for (reports and
	// test names); the simulation identity is (Seed, Knobs) alone.
	Label string
	Seed  int64
	Knobs FuzzKnobs
}

// Name returns the case's family-member name.
func (c FuzzCase) Name() string { return FuzzName(c.Seed, c.Knobs) }

// FuzzCorpusMember returns the corpus member with the given label —
// the lookup the equivalence suites use to sample the corpus without
// depending on its ordering.
func FuzzCorpusMember(label string) (FuzzCase, bool) {
	for _, c := range FuzzCorpus() {
		if c.Label == label {
			return c, true
		}
	}
	return FuzzCase{}, false
}

// FuzzCorpus returns the curated adversarial corpus: twenty fuzz-family
// members chosen to concentrate on the miss patterns the paper's claims
// rest on. The corpus is committed behaviour: cmd/fuzzgate pins every
// member's cross-model stats against a golden file, and the strict
// equivalence suites sample it. Grow it by appending — reordering or
// editing existing members invalidates the golden.
func FuzzCorpus() []FuzzCase {
	return []FuzzCase{
		// Store-buffer pressure: drain stalls, chained-SB overflows,
		// forced simple-runahead transitions.
		{"sb-moderate", 101, FuzzKnobs{SBPressure: 50}},
		{"sb-heavy", 102, FuzzKnobs{SBPressure: 85}},
		{"sb-extreme", 103, FuzzKnobs{SBPressure: 100}},
		{"sb-poisoned", 104, FuzzKnobs{SBPressure: 70, MissCluster: 30}},

		// Branch-on-load chains: advance-mode branches keyed on missing
		// values, squash storms, re-poisoning.
		{"bl-moderate", 201, FuzzKnobs{BranchOnLoad: 50}},
		{"bl-heavy", 202, FuzzKnobs{BranchOnLoad: 90}},
		{"bl-noisy", 203, FuzzKnobs{BranchOnLoad: 100}},
		{"bl-under-sb", 204, FuzzKnobs{BranchOnLoad: 60, SBPressure: 60}},

		// Miss clustering: dependent chase bursts with no consume lag —
		// the mcf-like serialization that differentiates the models.
		{"mc-moderate", 301, FuzzKnobs{MissCluster: 50}},
		{"mc-heavy", 302, FuzzKnobs{MissCluster: 85}},
		{"mc-extreme", 303, FuzzKnobs{MissCluster: 100}},
		{"mc-branchy", 304, FuzzKnobs{MissCluster: 70, BranchOnLoad: 40}},

		// Rally starvation: rallies that keep re-missing under deep
		// chains, heavy forwarding and poisoned-address stores.
		{"rs-moderate", 401, FuzzKnobs{RallyStarve: 50}},
		{"rs-heavy", 402, FuzzKnobs{RallyStarve: 85}},
		{"rs-extreme", 403, FuzzKnobs{RallyStarve: 100}},
		{"rs-clustered", 404, FuzzKnobs{RallyStarve: 70, MissCluster: 50}},

		// Everything at once, across distinct seeds: the maximally
		// adversarial corner of the family.
		{"all-a", 501, FuzzKnobs{SBPressure: 60, BranchOnLoad: 60, MissCluster: 60, RallyStarve: 60}},
		{"all-b", 502, FuzzKnobs{SBPressure: 80, BranchOnLoad: 40, MissCluster: 90, RallyStarve: 30}},
		{"all-c", 503, FuzzKnobs{SBPressure: 30, BranchOnLoad: 90, MissCluster: 40, RallyStarve: 80}},
		{"all-d", 504, FuzzKnobs{SBPressure: 100, BranchOnLoad: 100, MissCluster: 100, RallyStarve: 100}},
	}
}
