package workload

import (
	"fmt"
	"testing"
)

// TestFuzzProfileZeroKnobsIsUnbiased pins the family's backward
// compatibility: the zero-knob member of each seed must be the same
// profile the original test-only generator produced (internal/sim's
// fuzz suites still rely on its behaviour-space spread).
func TestFuzzProfileZeroKnobsIsUnbiased(t *testing.T) {
	p := FuzzProfile(7, FuzzKnobs{})
	if p.Name != "fuzz-s7" {
		t.Errorf("Name = %q", p.Name)
	}
	// Spot-check a seed-derived field against the historical hash
	// derivation (seed*2654435761 + key*40503, mod per field).
	r := func(key, mod int64) float64 {
		x := (7*2654435761 + key*40503) % mod
		if x < 0 {
			x += mod
		}
		return float64(x) / float64(mod)
	}
	if want := 0.15 + 0.2*r(2, 97); p.LoadFrac != want {
		t.Errorf("LoadFrac = %v, want %v", p.LoadFrac, want)
	}
	if want := 0.05 + 0.1*r(3, 89); p.StoreFrac != want {
		t.Errorf("StoreFrac = %v, want %v", p.StoreFrac, want)
	}
}

// TestFuzzDeterministicIdentity pins the identity story: same (seed,
// knobs) always generates a byte-identical trace; different knobs on
// the same seed generate a different one.
func TestFuzzDeterministicIdentity(t *testing.T) {
	k := FuzzKnobs{SBPressure: 70, MissCluster: 30}
	a := Fuzz(104, k, 3000)
	b := Fuzz(104, k, 3000)
	if a.Trace.Len() != b.Trace.Len() {
		t.Fatalf("trace lengths differ: %d vs %d", a.Trace.Len(), b.Trace.Len())
	}
	for i := 0; i < a.Trace.Len(); i++ {
		if *a.Trace.At(i) != *b.Trace.At(i) {
			t.Fatalf("traces diverge at %d", i)
		}
	}
	c := Fuzz(104, FuzzKnobs{SBPressure: 71, MissCluster: 30}, 3000)
	same := a.Trace.Len() == c.Trace.Len()
	if same {
		for i := 0; i < a.Trace.Len(); i++ {
			if *a.Trace.At(i) != *c.Trace.At(i) {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different knobs generated an identical trace")
	}
}

// TestFuzzKnobsValidate pins the 0..100 intensity range with named
// errors — the guard the spec layer relies on.
func TestFuzzKnobsValidate(t *testing.T) {
	if err := (FuzzKnobs{SBPressure: 100, RallyStarve: 0}).Validate(); err != nil {
		t.Errorf("in-range knobs rejected: %v", err)
	}
	for _, k := range []FuzzKnobs{
		{SBPressure: 101}, {BranchOnLoad: -1}, {MissCluster: 1000}, {RallyStarve: -5},
	} {
		if err := k.Validate(); err == nil {
			t.Errorf("knobs %+v accepted, want range error", k)
		}
	}
}

// TestFuzzCorpusIsWellFormed keeps the committed corpus usable as an
// identity set: unique labels, unique (seed, knobs) identities, every
// member valid.
func TestFuzzCorpusIsWellFormed(t *testing.T) {
	labels := map[string]bool{}
	names := map[string]bool{}
	for _, c := range FuzzCorpus() {
		if c.Label == "" || labels[c.Label] {
			t.Errorf("corpus label %q empty or duplicated", c.Label)
		}
		labels[c.Label] = true
		if names[c.Name()] {
			t.Errorf("corpus identity %q duplicated", c.Name())
		}
		names[c.Name()] = true
		if err := c.Knobs.Validate(); err != nil {
			t.Errorf("corpus member %q invalid: %v", c.Label, err)
		}
	}
	if len(labels) < 20 {
		t.Errorf("corpus has %d members, want >= 20", len(labels))
	}
	if _, ok := FuzzCorpusMember("sb-extreme"); !ok {
		t.Error("FuzzCorpusMember misses a committed label")
	}
	if _, ok := FuzzCorpusMember("nope"); ok {
		t.Error("FuzzCorpusMember invented a member")
	}
}

// TestGenerateSurvivesDegenerateProfiles pins the generator's panic
// fixes: profiles whose probabilistic rounding or degenerate byte
// budgets used to divide by zero, call rand.Int63n(0), or build a
// negative-capacity slice must now generate. These shapes are exactly
// what a hostile spec-decoded fuzz profile could once reach.
func TestGenerateSurvivesDegenerateProfiles(t *testing.T) {
	cases := []Profile{
		// ChaseFrac without chase memory: empty far ring.
		{Name: "no-chase-mem", LoadFrac: 0.4, ChaseFrac: 0.3, ChaseBytes: 0},
		// Chase2Frac without near-ring memory.
		{Name: "no-chase2-mem", LoadFrac: 0.4, Chase2Frac: 0.3, Chase2Bytes: 0},
		// RandFrac with a random region too small to address.
		{Name: "tiny-rand", LoadFrac: 0.4, RandFrac: 0.4, RandBytes: 4},
		// Rounding pressure: fractions sum to ~1 of loads, so per-body
		// rounding can transiently exceed the load budget.
		{Name: "round-pressure", LoadFrac: 0.5, ChaseFrac: 0.5, Chase2Frac: 0.49,
			ChaseBytes: 1 << 20, Chase2Bytes: 1 << 16},
		// Stores with degenerate random region.
		{Name: "store-tiny-rand", LoadFrac: 0.2, StoreFrac: 0.3, RandFrac: 0.5, RandBytes: 4},
	}
	for _, p := range cases {
		t.Run(p.Name, func(t *testing.T) {
			w := Generate(p, 5000, 1)
			if w.Trace.Len() == 0 {
				t.Fatal("empty trace")
			}
		})
	}
}

// TestFuzzName pins the display-name forms.
func TestFuzzName(t *testing.T) {
	if got := FuzzName(9, FuzzKnobs{}); got != "fuzz-s9" {
		t.Errorf("zero-knob name = %q", got)
	}
	want := fmt.Sprintf("fuzz-s9-sb%d-bl%d-mc%d-rs%d", 1, 2, 3, 4)
	if got := FuzzName(9, FuzzKnobs{SBPressure: 1, BranchOnLoad: 2, MissCluster: 3, RallyStarve: 4}); got != want {
		t.Errorf("knobbed name = %q, want %q", got, want)
	}
}
