package workload

import (
	"bytes"
	"testing"
)

// FuzzReadTrace feeds arbitrary bytes to the trace decoder. The decoder
// handles untrusted files (externally converted traces, store payloads),
// so its only acceptable failure mode is a returned error: no panic, no
// allocation proportional to a hostile length field rather than to the
// bytes actually supplied. Accepted inputs must re-encode and decode
// again cleanly (the seed section is re-derived from the trace, so
// byte-identity is only guaranteed for writer-produced inputs).
func FuzzReadTrace(f *testing.F) {
	// Seed with a small real trace plus truncations and header
	// corruptions of it, so the mutator starts inside the format.
	var buf bytes.Buffer
	if err := WriteTrace(&buf, Fuzz(101, FuzzKnobs{SBPressure: 50}, 200)); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:len(traceMagic)+4])
	f.Add([]byte(traceMagic))
	f.Add([]byte("ICFPTRC9 not the right magic"))
	// Claim a huge trace length while supplying no instruction bytes.
	hostile := append([]byte{}, valid[:len(traceMagic)]...)
	hostile = append(hostile, 0, 0, 0, 0, 0, 0, 0, 0)  // name len 0
	hostile = append(hostile, 0, 0, 0, 0, 0, 0, 0, 0)  // seed count 0
	hostile = append(hostile, 0, 0, 0, 0, 0, 16, 0, 0) // trace len 2^44: over cap
	f.Add(hostile)

	f.Fuzz(func(t *testing.T, data []byte) {
		wl, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Successfully decoded inputs must re-encode deterministically.
		var out bytes.Buffer
		if err := WriteTrace(&out, wl); err != nil {
			t.Fatalf("re-encoding a decoded trace failed: %v", err)
		}
		back, err := ReadTrace(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("decoding a re-encoded trace failed: %v", err)
		}
		if back.Trace.Len() != wl.Trace.Len() {
			t.Fatalf("round trip changed length: %d -> %d", wl.Trace.Len(), back.Trace.Len())
		}
	})
}
