package workload

import (
	"bytes"
	"strings"
	"testing"

	"icfp/internal/isa"
)

func TestTraceRoundTrip(t *testing.T) {
	orig := SPEC("mcf", 20_000)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, orig); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if got.Name != orig.Name {
		t.Fatalf("name %q != %q", got.Name, orig.Name)
	}
	if got.Trace.Len() != orig.Trace.Len() {
		t.Fatalf("length %d != %d", got.Trace.Len(), orig.Trace.Len())
	}
	for i := 0; i < orig.Trace.Len(); i++ {
		a, b := *orig.Trace.At(i), *got.Trace.At(i)
		if a != b {
			t.Fatalf("instruction %d differs: %+v vs %+v", i, a, b)
		}
	}
}

func TestTraceSeedsChaseMemory(t *testing.T) {
	// After a round trip, the memory image must reproduce the chase
	// pointers loads observe (the seed-word mechanism).
	orig := SPEC("vpr", 20_000)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	written := map[uint64]bool{}
	for i := 0; i < got.Trace.Len(); i++ {
		in := got.Trace.At(i)
		switch in.Op {
		case isa.OpStore:
			written[in.Addr] = true
		case isa.OpLoad:
			if !written[in.Addr] && in.Val != 0 {
				if v := got.Mem.Read64(in.Addr); v != in.Val {
					t.Fatalf("inst %d: image[%#x]=%#x, trace value %#x", i, in.Addr, v, in.Val)
				}
			}
		}
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("NOTATRACE")); err == nil {
		t.Fatal("bad magic must be rejected")
	}
	if _, err := ReadTrace(strings.NewReader("")); err == nil {
		t.Fatal("empty input must be rejected")
	}
	// Truncated stream after the header.
	var buf bytes.Buffer
	_ = WriteTrace(&buf, SPEC("mesa", 1_000))
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := ReadTrace(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated trace must be rejected")
	}
}
