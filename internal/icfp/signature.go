package icfp

// Signature is the §3.3 multiprocessor-safety filter: a local Bloom-style
// address signature. Loads that obtain their values from the cache (the
// ones vulnerable to external stores) insert their addresses; external
// stores probe it, and a hit forces a squash to the checkpoint. The
// signature is cleared when a rally completes. It is never communicated
// between processors.
type Signature struct {
	bits []uint64

	Inserts    uint64
	Probes     uint64
	ProbeHits  uint64
	Clears     uint64
	occupation int
}

// NewSignature builds a signature with the given size in bits (rounded up
// to a multiple of 64; minimum 64).
func NewSignature(bits int) *Signature {
	if bits < 64 {
		bits = 64
	}
	return &Signature{bits: make([]uint64, (bits+63)/64)}
}

func (s *Signature) hashes(addr uint64) (int, int) {
	n := len(s.bits) * 64
	a := addr >> 3
	h1 := int((a ^ a>>13) % uint64(n))
	h2 := int((a*0x9E3779B97F4A7C15 ^ a>>7) % uint64(n))
	return h1, h2
}

func (s *Signature) set(i int)      { s.bits[i/64] |= 1 << (i % 64) }
func (s *Signature) get(i int) bool { return s.bits[i/64]&(1<<(i%64)) != 0 }

// Insert records a vulnerable load address.
func (s *Signature) Insert(addr uint64) {
	s.Inserts++
	h1, h2 := s.hashes(addr)
	s.set(h1)
	s.set(h2)
}

// Probe tests an external store address against the signature. A true
// result requires a squash to the checkpoint (it may be a false
// positive — that is safe, merely slow).
func (s *Signature) Probe(addr uint64) bool {
	s.Probes++
	h1, h2 := s.hashes(addr)
	hit := s.get(h1) && s.get(h2)
	if hit {
		s.ProbeHits++
	}
	return hit
}

// Clear empties the signature (rally completion).
func (s *Signature) Clear() {
	s.Clears++
	for i := range s.bits {
		s.bits[i] = 0
	}
}
