package icfp

// Strict-vs-skip-ahead equivalence: the cycle loop with event-horizon
// skip-ahead (nextEvent) must report results identical to the trivially
// correct strict loop that steps one cycle at a time. Any divergence
// means a state change escaped the pipeline.Horizon contract (an event
// that fired without a covering Observe), so these tests run the exact
// same machine twice and require the full Result struct to match —
// cycles, advance/rally counts, forwarding stats, everything.

import (
	"testing"

	"icfp/internal/pipeline"
	"icfp/internal/workload"
)

// strictCase is one adversarial machine/workload combination.
type strictCase struct {
	name string
	cfg  func() pipeline.Config
	sb   SBMode
	trig pipeline.AdvanceTrigger
	w    func() *workload.Workload
}

// tinySB squeezes the chained store buffer so drains, SB overflows and
// simple-runahead transitions fire constantly.
func tinySB() pipeline.Config {
	cfg := pipeline.DefaultConfig()
	cfg.ChainedSBEntries = 4
	cfg.ChainTableEntries = 2
	cfg.StoreBufEntries = 2
	return cfg
}

// tinySlice forces slice overflows and pass churn with a starved poison
// pool.
func tinySlice() pipeline.Config {
	cfg := pipeline.DefaultConfig()
	cfg.SliceEntries = 4
	cfg.PoisonBits = 1
	return cfg
}

// singleThreaded turns off multithreaded rallies so passes own the pipe.
func singleThreaded() pipeline.Config {
	cfg := pipeline.DefaultConfig()
	cfg.MultithreadRally = false
	cfg.NonBlockingRally = false
	return cfg
}

func spec(name string, n int) func() *workload.Workload {
	return func() *workload.Workload {
		w := workload.SPEC(name, n)
		return w
	}
}

func scenario(sc workload.Scenario) func() *workload.Workload {
	return func() *workload.Workload { return workload.NewScenario(sc) }
}

func strictCases() []strictCase {
	deflt := pipeline.DefaultConfig
	cases := []strictCase{
		// Figure 1 miss patterns under the full machine.
		{"chains-default", deflt, SBChained, pipeline.TriggerAll, scenario(workload.ScenarioChains)},
		{"dependent-l2", deflt, SBChained, pipeline.TriggerAll, scenario(workload.ScenarioDependentL2)},
		{"dmiss-dep-l2", deflt, SBChained, pipeline.TriggerAll, scenario(workload.ScenarioD1DependentL2)},
		// Pathological store-buffer pressure: every few stores force a
		// drain stall or an overflow transition.
		{"mcf-tiny-sb", tinySB, SBChained, pipeline.TriggerAll, spec("mcf", 4000)},
		{"equake-tiny-sb-limited", tinySB, SBLimited, pipeline.TriggerAll, spec("equake", 4000)},
		// Branch-on-load chains: gcc's branchy profile with a starved
		// slice buffer and one poison bit maximizes squashes and
		// re-poisoning.
		{"gcc-tiny-slice", tinySlice, SBChained, pipeline.TriggerAll, spec("gcc", 4000)},
		{"mcf-single-thread", singleThreaded, SBChained, pipeline.TriggerAll, spec("mcf", 4000)},
		// Trigger variants exercise different advance entry points.
		{"equake-l2-only", deflt, SBChained, pipeline.TriggerL2Only, spec("equake", 4000)},
		{"equake-ideal-sb", deflt, SBIdeal, pipeline.TriggerPrimaryD1, spec("equake", 4000)},
	}
	return cases
}

func runOnce(tc strictCase, strict bool) pipeline.Result {
	prev := strictCycles
	strictCycles = strict
	defer func() { strictCycles = prev }()
	cfg := tc.cfg()
	cfg.WarmupInsts = 500
	m := NewWithOptions(cfg, tc.trig, tc.sb)
	return m.Run(tc.w())
}

func TestStrictEquivalence(t *testing.T) {
	for _, tc := range strictCases() {
		t.Run(tc.name, func(t *testing.T) {
			want := runOnce(tc, true)
			got := runOnce(tc, false)
			if got != want {
				t.Errorf("skip-ahead diverged from strict stepping:\nstrict: %+v\nskip:   %+v", want, got)
			}
		})
	}
}

// TestStrictEquivalenceExternalStores covers the coherence-probe event
// stream, the one skip-ahead source that arrives from outside the core.
func TestStrictEquivalenceExternalStores(t *testing.T) {
	run := func(strict bool) pipeline.Result {
		prev := strictCycles
		strictCycles = strict
		defer func() { strictCycles = prev }()
		cfg := pipeline.DefaultConfig()
		cfg.WarmupInsts = 500
		m := New(cfg)
		m.ExternalStores = []ExternalStoreEvent{
			{Cycle: 100, Addr: 0x9000_0000},
			{Cycle: 900, Addr: 0x9200_0000},
			{Cycle: 2500, Addr: 0x9000_0040},
		}
		return m.Run(workload.SPEC("mcf", 4000))
	}
	want := run(true)
	got := run(false)
	if got != want {
		t.Errorf("skip-ahead diverged with external stores:\nstrict: %+v\nskip:   %+v", want, got)
	}
}
