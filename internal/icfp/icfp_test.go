package icfp

import (
	"testing"

	"icfp/internal/inorder"
	"icfp/internal/pipeline"
	"icfp/internal/runahead"
	"icfp/internal/workload"
)

func cfgForTest() pipeline.Config {
	cfg := pipeline.DefaultConfig()
	cfg.CheckValues = true
	return cfg
}

func runBoth(t *testing.T, name string, n int) (io, ic pipeline.Result) {
	t.Helper()
	cfg := cfgForTest()
	cfg.WarmupInsts = 50_000
	io = inorder.New(cfg).Run(workload.SPEC(name, 50_000+n))
	ic = New(cfg).Run(workload.SPEC(name, 50_000+n))
	if ic.Insts != io.Insts {
		t.Fatalf("instruction counts differ: %d vs %d", ic.Insts, io.Insts)
	}
	return io, ic
}

func TestScenarioLoneL2BeatsInOrderAndRA(t *testing.T) {
	// Figure 1a: iCFP commits the miss-independent tail and re-executes
	// only the two-instruction slice; RA gains nothing.
	cfg := cfgForTest()
	io := inorder.New(cfg).Run(workload.NewScenario(workload.ScenarioLoneL2))
	ra := runahead.New(cfg).Run(workload.NewScenario(workload.ScenarioLoneL2))
	ic := New(cfg).Run(workload.NewScenario(workload.ScenarioLoneL2))
	if ic.Cycles >= io.Cycles {
		t.Fatalf("iCFP %d must beat in-order %d on a lone L2 miss", ic.Cycles, io.Cycles)
	}
	if ic.Cycles >= ra.Cycles {
		t.Fatalf("iCFP %d must beat Runahead %d on a lone L2 miss", ic.Cycles, ra.Cycles)
	}
}

func TestScenarioIndependentMissesOverlap(t *testing.T) {
	// Figure 1b: independent misses overlap; an in-order pipe serializes.
	cfg := cfgForTest()
	io := inorder.New(cfg).Run(workload.NewScenario(workload.ScenarioIndependentL2))
	ic := New(cfg).Run(workload.NewScenario(workload.ScenarioIndependentL2))
	if float64(ic.Cycles) > 0.7*float64(io.Cycles) {
		t.Fatalf("iCFP %d must overlap the two misses (in-order %d)", ic.Cycles, io.Cycles)
	}
	if ic.Advances != 1 {
		t.Fatalf("one advance episode expected, got %d", ic.Advances)
	}
}

func TestScenarioSecondaryD1Poisoned(t *testing.T) {
	// Figures 1e/1f: iCFP confidently poisons the secondary D$ miss and
	// overlaps the following L2 miss either way.
	cfg := cfgForTest()
	for _, sc := range []workload.Scenario{workload.ScenarioD1IndependentL2, workload.ScenarioD1DependentL2} {
		io := inorder.New(cfg).Run(workload.NewScenario(sc))
		ic := New(cfg).Run(workload.NewScenario(sc))
		if float64(ic.Cycles) > 0.7*float64(io.Cycles) {
			t.Errorf("%s: iCFP %d vs in-order %d", sc, ic.Cycles, io.Cycles)
		}
	}
}

func TestRallyReexecutesOnlySlices(t *testing.T) {
	// On the lone-miss scenario the slice is 2 instructions; rally work
	// must be tiny even though the advance covered dozens of instructions.
	cfg := cfgForTest()
	ic := New(cfg).Run(workload.NewScenario(workload.ScenarioLoneL2))
	if ic.RallyInsts > 4 {
		t.Fatalf("rally executed %d instructions; slice is 2", ic.RallyInsts)
	}
	if ic.AdvanceInsts < 20 {
		t.Fatalf("advance covered only %d instructions", ic.AdvanceInsts)
	}
}

func TestICFPSpeedsUpHighMissWorkloads(t *testing.T) {
	io, ic := runBoth(t, "ammp", 150_000)
	if sp := ic.SpeedupOver(io); sp < 30 {
		t.Fatalf("ammp speedup = %.1f%%, expected a large win", sp)
	}
}

func TestICFPHarmlessOnLowMissWorkloads(t *testing.T) {
	io, ic := runBoth(t, "mesa", 100_000)
	if sp := ic.SpeedupOver(io); sp < -3 {
		t.Fatalf("mesa speedup = %.1f%%; iCFP must not hurt low-miss code", sp)
	}
}

func TestICFPRaisesMLP(t *testing.T) {
	io, ic := runBoth(t, "art", 150_000)
	if ic.DCacheMLP <= io.DCacheMLP {
		t.Fatalf("iCFP D$ MLP %.2f must exceed in-order %.2f", ic.DCacheMLP, io.DCacheMLP)
	}
	if ic.L2MLP <= io.L2MLP {
		t.Fatalf("iCFP L2 MLP %.2f must exceed in-order %.2f", ic.L2MLP, io.L2MLP)
	}
}

func TestChainedHopsAreLow(t *testing.T) {
	// §3.2: excess store buffer hops per load below 0.5 everywhere.
	for _, name := range []string{"ammp", "mcf", "gcc", "swim"} {
		_, ic := runBoth(t, name, 100_000)
		if ic.SBExtraHops > 0.5 {
			t.Errorf("%s: %.3f excess hops per load (paper bound 0.5)", name, ic.SBExtraHops)
		}
	}
}

func TestPoisonVectorsHelpDependentMisses(t *testing.T) {
	// §3.4: 8 poison bits let rallies skip instructions independent of the
	// returned miss; mcf benefits most.
	cfg := cfgForTest()
	cfg.WarmupInsts = 50_000
	one := cfg
	one.PoisonBits = 1
	r1 := New(one).Run(workload.SPEC("mcf", 250_000))
	r8 := New(cfg).Run(workload.SPEC("mcf", 250_000))
	if sp := r8.SpeedupOver(r1); sp < 0 {
		t.Fatalf("8-bit poison vectors slowed mcf by %.1f%%", -sp)
	}
}

func TestNonBlockingRallyBeatsBlocking(t *testing.T) {
	// Figure 7: non-blocking rallies are the biggest feature on
	// dependent-miss workloads.
	cfg := cfgForTest()
	cfg.WarmupInsts = 50_000
	blocking := cfg
	blocking.NonBlockingRally = false
	blocking.MultithreadRally = false
	blocking.PoisonBits = 1
	b := NewWithOptions(blocking, pipeline.TriggerAll, SBChained).Run(workload.SPEC("mcf", 250_000))
	nb := New(cfg).Run(workload.SPEC("mcf", 250_000))
	if nb.Cycles >= b.Cycles {
		t.Fatalf("non-blocking rallies (%d cycles) must beat blocking (%d) on mcf", nb.Cycles, b.Cycles)
	}
}

func TestStoreBufferModesOrdering(t *testing.T) {
	// Figure 8: limited <= chained <= ideal (chained within a whisker of
	// ideal).
	cfg := cfgForTest()
	cfg.WarmupInsts = 50_000
	run := func(mode SBMode) int64 {
		return NewWithOptions(cfg, pipeline.TriggerAll, mode).Run(workload.SPEC("swim", 200_000)).Cycles
	}
	lim, ch, id := run(SBLimited), run(SBChained), run(SBIdeal)
	if ch > lim {
		t.Fatalf("chained (%d) must not lose to limited (%d)", ch, lim)
	}
	if diff := float64(ch-id) / float64(id); diff > 0.02 {
		t.Fatalf("chained trails ideal by %.1f%% (paper: < 1%%)", diff*100)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := cfgForTest()
	cfg.WarmupInsts = 20_000
	a := New(cfg).Run(workload.SPEC("vpr", 100_000))
	b := New(cfg).Run(workload.SPEC("vpr", 100_000))
	if a.Cycles != b.Cycles || a.RallyInsts != b.RallyInsts {
		t.Fatalf("non-deterministic: %d/%d vs %d/%d cycles/rally", a.Cycles, a.RallyInsts, b.Cycles, b.RallyInsts)
	}
}

func TestAdvanceCommitsAreCounted(t *testing.T) {
	_, ic := runBoth(t, "mcf", 150_000)
	if ic.Advances == 0 || ic.AdvanceInsts == 0 || ic.RallyPasses == 0 {
		t.Fatalf("mcf must exercise advance/rally: %+v", ic)
	}
	if ic.RallyPerKI < 100 {
		t.Fatalf("mcf rally/KI = %.0f; the paper reports thousands", ic.RallyPerKI)
	}
}

func TestValuesCheckedOnForwarding(t *testing.T) {
	// CheckValues is enabled in all these tests: a forwarding bug panics.
	// Run a store-forwarding-heavy workload to exercise it.
	_, _ = runBoth(t, "gcc", 100_000)
}

func TestExternalStoreSquash(t *testing.T) {
	// §3.3: an external store that hits the load signature while a
	// checkpoint is outstanding squashes to the checkpoint. The lone-L2
	// scenario keeps a checkpoint open for ~400 cycles; its filler loads
	// populate the signature.
	cfg := cfgForTest()
	w := workload.NewScenario(workload.ScenarioLoneL2)
	hot := uint64(0x9400_0000) // scnHot: read by the scenario's prelude? use filler addr

	// First, without conflicts.
	clean := New(cfg).Run(workload.NewScenario(workload.ScenarioLoneL2))
	if clean.Squashes != 0 {
		t.Fatalf("clean run squashed %d times", clean.Squashes)
	}

	// Now inject a conflicting store mid-advance. The scenario's loads hit
	// the warm line at scnHot... the ALU filler does not load, so probe an
	// address the trigger load touched: the miss address itself is read
	// from the cache only at rally time; instead probe broadly.
	m := New(cfg)
	m.ExternalStores = []ExternalStoreEvent{{Cycle: 100, Addr: 0x9000_0000}}
	dirty := m.Run(w)
	// The trigger load's address was inserted into the signature only if
	// it read the cache; a poisoned load defers, so a miss may not squash.
	// Either way the run must complete deterministically.
	if dirty.Insts != clean.Insts {
		t.Fatalf("external store corrupted execution: %d vs %d insts", dirty.Insts, clean.Insts)
	}
	_ = hot
}

func TestSignatureSquashOnVulnerableLoad(t *testing.T) {
	// Force a signature hit: run a workload whose advance-mode loads read
	// the cache (hot loads under a chase miss), then probe one such line.
	cfg := cfgForTest()
	cfg.WarmupInsts = 20_000
	m := New(cfg)
	// Probe a hot-region line repeatedly during the run; hot loads insert
	// into the signature during advance mode.
	for c := int64(1000); c < 400_000; c += 5_000 {
		m.ExternalStores = append(m.ExternalStores, ExternalStoreEvent{Cycle: c, Addr: 0x1000_0100})
	}
	r := m.Run(workload.SPEC("mcf", 120_000))
	if r.Squashes == 0 {
		t.Fatal("periodic conflicting external stores must cause squashes")
	}
}
