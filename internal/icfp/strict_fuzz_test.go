package icfp

// Strict-vs-skip-ahead equivalence over the committed adversarial
// corpus: the same store-pressure, branch-chain, miss-cluster and
// rally-starvation members the cross-model oracle (internal/diffcheck)
// gates are also strict-stepped here, so a skip-ahead divergence on a
// corpus pathology fails in the package that owns the bug.

import (
	"testing"

	"icfp/internal/pipeline"
	"icfp/internal/workload"
)

// fuzzSampleLabels picks one corpus member per pathology axis plus the
// everything-at-once member.
var fuzzSampleLabels = []string{"sb-extreme", "bl-noisy", "mc-extreme", "rs-extreme", "all-d"}

func TestStrictEquivalenceFuzzCorpus(t *testing.T) {
	for _, label := range fuzzSampleLabels {
		c, ok := workload.FuzzCorpusMember(label)
		if !ok {
			t.Fatalf("corpus member %q missing (corpus edited instead of appended?)", label)
		}
		tc := strictCase{
			name: c.Label, cfg: pipeline.DefaultConfig,
			sb: SBChained, trig: pipeline.TriggerAll,
			w: func() *workload.Workload { return workload.Fuzz(c.Seed, c.Knobs, 6000) },
		}
		t.Run(c.Label, func(t *testing.T) {
			want := runOnce(tc, true)
			got := runOnce(tc, false)
			if got != want {
				t.Errorf("skip-ahead diverged from strict stepping on %s:\nstrict: %+v\nskip:   %+v",
					c.Name(), want, got)
			}
		})
	}
}
