package icfp

import "testing"

func TestSliceAppendAndCapacity(t *testing.T) {
	s := newSliceBuffer(3)
	for i := 0; i < 3; i++ {
		if _, ok := s.Append(sliceEntry{idx: i}); !ok {
			t.Fatalf("append %d failed", i)
		}
	}
	if !s.Full() {
		t.Fatal("must be full")
	}
	if _, ok := s.Append(sliceEntry{}); ok {
		t.Fatal("append into a full buffer must fail")
	}
}

func TestSliceDeactivateReclaimsHead(t *testing.T) {
	s := newSliceBuffer(3)
	a, _ := s.Append(sliceEntry{idx: 1})
	b, _ := s.Append(sliceEntry{idx: 2})
	// Deactivating the middle entry does not reclaim (in-place sparsity).
	s.Deactivate(b, 10)
	if s.Len() != 2 {
		t.Fatalf("len = %d; tail entry must stay until head reclaims", s.Len())
	}
	// Deactivating the head reclaims both.
	s.Deactivate(a, 20)
	if s.Len() != 0 {
		t.Fatalf("len = %d after head reclaim", s.Len())
	}
	if !s.Empty() {
		t.Fatal("no active entries must remain")
	}
	// Reclaimed ids still answer Executed.
	if _, ok := s.Executed(a); !ok {
		t.Fatal("reclaimed entry must report executed")
	}
	if done, ok := s.Executed(b); !ok || done != 0 {
		// b was reclaimed from the head too; done is no longer tracked.
		_ = done
	}
}

func TestSliceExecutedStates(t *testing.T) {
	s := newSliceBuffer(4)
	a, _ := s.Append(sliceEntry{idx: 1})
	b, _ := s.Append(sliceEntry{idx: 2})
	if _, ok := s.Executed(b); ok {
		t.Fatal("active entry must not be executed")
	}
	s.Deactivate(b, 42)
	if done, ok := s.Executed(b); !ok || done != 42 {
		t.Fatalf("Executed(b) = %d,%v", done, ok)
	}
	_ = a
}

func TestSliceSetPoison(t *testing.T) {
	s := newSliceBuffer(4)
	a, _ := s.Append(sliceEntry{idx: 1, poison: 0b01})
	if got := s.ActivePoison(); got != 0b01 {
		t.Fatalf("ActivePoison = %#b, want 0b01", got)
	}
	s.SetPoison(a, 0b10)
	if _, p, ok := s.State(a); !ok || p != 0b10 {
		t.Fatal("SetPoison must replace the vector")
	}
	if got := s.ActivePoison(); got != 0b10 {
		t.Fatalf("ActivePoison = %#b after SetPoison, want 0b10", got)
	}
	s.Deactivate(a, 1)
	if got := s.ActivePoison(); got != 0 {
		t.Fatalf("ActivePoison = %#b after Deactivate, want 0", got)
	}
}

func TestSliceClear(t *testing.T) {
	s := newSliceBuffer(4)
	s.Append(sliceEntry{idx: 1})
	s.Append(sliceEntry{idx: 2})
	s.Clear()
	if !s.Empty() || s.Len() != 0 {
		t.Fatal("Clear must empty the buffer")
	}
	// Ids keep increasing monotonically after a clear.
	id, _ := s.Append(sliceEntry{idx: 3})
	if id < 2 {
		t.Fatalf("id %d reused after clear", id)
	}
}

func TestSignatureBasics(t *testing.T) {
	sig := NewSignature(256)
	if sig.Probe(0x1000) {
		t.Fatal("empty signature must not hit")
	}
	sig.Insert(0x1000)
	if !sig.Probe(0x1000) {
		t.Fatal("inserted address must hit")
	}
	sig.Clear()
	if sig.Probe(0x1000) {
		t.Fatal("cleared signature must not hit")
	}
	if sig.Inserts != 1 || sig.Probes != 3 || sig.ProbeHits != 1 || sig.Clears != 1 {
		t.Fatalf("stats: %+v", *sig)
	}
}

func TestSignatureNoFalseNegatives(t *testing.T) {
	sig := NewSignature(1024)
	addrs := make([]uint64, 200)
	for i := range addrs {
		addrs[i] = uint64(0x4000_0000 + i*64)
		sig.Insert(addrs[i])
	}
	for _, a := range addrs {
		if !sig.Probe(a) {
			t.Fatalf("false negative for %#x", a)
		}
	}
}

func TestSignatureFalsePositiveRateBounded(t *testing.T) {
	sig := NewSignature(1024)
	for i := 0; i < 64; i++ {
		sig.Insert(uint64(0x4000_0000 + i*64))
	}
	fp := 0
	const probes = 2000
	for i := 0; i < probes; i++ {
		if sig.Probe(uint64(0x9000_0000 + i*64)) {
			fp++
		}
	}
	if rate := float64(fp) / probes; rate > 0.25 {
		t.Fatalf("false positive rate %.2f too high for 64 inserts in 1024 bits", rate)
	}
}
