// Package icfp implements the paper's contribution: the in-order
// Continual Flow Pipeline. The machine lives in icfp.go; this file
// implements the address-hash-chained store buffer of §3.2, built on the
// SSN (store sequence number) dynamic store naming scheme.
//
// Every store — committed or advance-mode, poisoned or not — is assigned
// the next SSN and occupies store-buffer slot SSN mod capacity. A small
// chain table maps an address hash to the SSN of the youngest store with
// that hash; each buffer entry links to the next-youngest same-hash store.
// Loads forward by walking the chain from the table head instead of an
// associative search; SSNs at or below SSNcomplete name stores already
// written to the cache and terminate the walk.
package icfp

import "icfp/internal/stats"

// SBMode selects the store-buffer design (Figure 8).
type SBMode int

// Store buffer designs compared in Figure 8.
const (
	// SBChained is iCFP's address-hash-chained indexed buffer.
	SBChained SBMode = iota
	// SBIdeal is an idealized fully-associative buffer (no hop cost,
	// no hash collisions).
	SBIdeal
	// SBLimited is an indexed buffer with limited forwarding: a load that
	// hits in the chain table but does not match the head store's address
	// must stall until that store drains (the in-order analogue of
	// out-of-order CFP's SRL/LCF scheme).
	SBLimited
)

// String names the mode.
func (m SBMode) String() string {
	switch m {
	case SBChained:
		return "chained"
	case SBIdeal:
		return "ideal-associative"
	case SBLimited:
		return "indexed-limited"
	}
	return "?"
}

// ChainedStoreBuffer implements the §3.2 store buffer. SSNs start at 1 so
// that 0 can serve as a null link.
//
// Entry storage is struct-of-arrays, split by access pattern: a
// forwarding lookup walks the hash chain reading only addr/ssn/link
// (the hot arrays), while val/poison/idx (the cold arrays) are touched
// only on an actual hit, drain, or squash. The hot walk therefore pulls
// three tightly packed arrays through the cache instead of one sparse
// 48-byte record per hop.
type ChainedStoreBuffer struct {
	mode SBMode
	// Hot per-slot arrays (chain walks): indexed by SSN mod capacity.
	addr []uint64
	ssn  []uint64
	link []uint64 // SSN of the next-youngest same-hash store (0 = none)
	// Cold per-slot arrays (hit/drain/squash only).
	val    []uint64
	poison []uint8
	idx    []int // trace index of the store (squash recovery)

	chain []uint64 // chain table: hash -> youngest SSN

	ssnTail     uint64 // SSN of the youngest inserted store
	ssnComplete uint64 // SSN of the youngest store written to the cache

	// Hops histogram: excess chain hops per forwarded-or-missed load
	// (first access is free, §3.2).
	Hops     *stats.Histogram
	Forwards uint64
}

// NewChainedStoreBuffer builds a buffer with the given entry count, chain
// table size, and design mode.
func NewChainedStoreBuffer(entries, chainEntries int, mode SBMode) *ChainedStoreBuffer {
	return &ChainedStoreBuffer{
		mode:   mode,
		addr:   make([]uint64, entries),
		ssn:    make([]uint64, entries),
		link:   make([]uint64, entries),
		val:    make([]uint64, entries),
		poison: make([]uint8, entries),
		idx:    make([]int, entries),
		chain:  make([]uint64, chainEntries),
		Hops:   stats.NewHistogram(32),
	}
}

func (b *ChainedStoreBuffer) hash(addr uint64) int {
	return int((addr >> 3) % uint64(len(b.chain)))
}

// slot maps an SSN to its ring position in the per-slot arrays.
func (b *ChainedStoreBuffer) slot(ssn uint64) int {
	return int(ssn % uint64(len(b.ssn)))
}

// Full reports whether no entry is free.
func (b *ChainedStoreBuffer) Full() bool {
	return b.ssnTail-b.ssnComplete >= uint64(len(b.ssn))
}

// Live returns the number of not-yet-drained stores.
func (b *ChainedStoreBuffer) Live() int { return int(b.ssnTail - b.ssnComplete) }

// Tail returns the SSN of the youngest store (0 if none yet). A load
// dispatched now forwards from stores with SSN <= Tail().
func (b *ChainedStoreBuffer) Tail() uint64 { return b.ssnTail }

// Insert appends a store, returning its SSN. ok is false when the buffer
// is full (the caller must transition to simple-runahead mode, §3.4).
// A store with unknown (poisoned) data carries its poison vector; its
// value is filled in by UpdateValue during a rally.
func (b *ChainedStoreBuffer) Insert(addr, val uint64, poison uint8, idx int) (ssn uint64, ok bool) {
	if b.Full() {
		return 0, false
	}
	b.ssnTail++
	ssn = b.ssnTail
	h := b.hash(addr)
	p := b.slot(ssn)
	b.addr[p] = addr
	b.ssn[p] = ssn
	b.link[p] = b.chain[h]
	b.val[p] = val
	b.poison[p] = poison
	b.idx[p] = idx
	b.chain[h] = ssn
	return ssn, true
}

// OldestPoisoned returns the oldest live store with unresolved (poisoned)
// data at or below limit, if any. Squash recovery must roll back at least
// this far: a poisoned store whose slice entry is discarded would
// otherwise never receive its value and would block drains forever.
func (b *ChainedStoreBuffer) OldestPoisoned(limit uint64) (ssn uint64, idx int, ok bool) {
	for s := b.ssnComplete + 1; s <= b.ssnTail && s <= limit; s++ {
		p := b.slot(s)
		if b.ssn[p] == s && b.poison[p] != 0 {
			return s, b.idx[p], true
		}
	}
	return 0, 0, false
}

// UpdateValue fills a previously poisoned store's value (rally execution
// of a miss-dependent store) and clears its poison, unblocking drains.
func (b *ChainedStoreBuffer) UpdateValue(ssn uint64, val uint64) {
	p := b.slot(ssn)
	if b.ssn[p] == ssn {
		b.val[p] = val
		b.poison[p] = 0
	}
}

// ForwardResult reports the outcome of a forwarding lookup.
type ForwardResult struct {
	Found  bool
	Val    uint64
	Poison uint8
	Hops   int // excess chain hops beyond the free first access
	// StallSSN is nonzero in SBLimited mode when the load must stall
	// until the store with this SSN drains.
	StallSSN uint64
}

// Forward looks up the youngest store to addr with SSN <= loadSSN.
// loadSSN is the buffer's Tail at the load's dispatch; rally loads pass
// their recorded dispatch-time value so younger stores are skipped.
func (b *ChainedStoreBuffer) Forward(loadSSN uint64, addr uint64) ForwardResult {
	switch b.mode {
	case SBIdeal:
		return b.forwardIdeal(loadSSN, addr)
	case SBLimited:
		return b.forwardLimited(loadSSN, addr)
	}
	return b.forwardChained(loadSSN, addr)
}

func (b *ChainedStoreBuffer) forwardChained(loadSSN uint64, addr uint64) ForwardResult {
	ssn := b.chain[b.hash(addr)]
	visits := 0
	for ssn > b.ssnComplete {
		p := b.slot(ssn)
		if b.ssn[p] != ssn {
			break // overwritten slot: the chain is stale past here
		}
		visits++
		if b.addr[p] == addr && ssn <= loadSSN {
			b.Forwards++
			b.Hops.Add(visits - 1)
			return ForwardResult{Found: true, Val: b.val[p], Poison: b.poison[p], Hops: visits - 1}
		}
		ssn = b.link[p]
	}
	if visits > 0 {
		b.Hops.Add(visits - 1)
	} else {
		b.Hops.Add(0)
	}
	return ForwardResult{Hops: max0(visits - 1)}
}

func (b *ChainedStoreBuffer) forwardIdeal(loadSSN uint64, addr uint64) ForwardResult {
	b.Hops.Add(0)
	best := uint64(0)
	hit := -1
	for p := range b.ssn {
		if b.ssn[p] > b.ssnComplete && b.ssn[p] <= loadSSN && b.addr[p] == addr && b.ssn[p] > best {
			best = b.ssn[p]
			hit = p
		}
	}
	if hit < 0 {
		return ForwardResult{}
	}
	b.Forwards++
	return ForwardResult{Found: true, Val: b.val[hit], Poison: b.poison[hit]}
}

func (b *ChainedStoreBuffer) forwardLimited(loadSSN uint64, addr uint64) ForwardResult {
	ssn := b.chain[b.hash(addr)]
	b.Hops.Add(0)
	if ssn <= b.ssnComplete {
		return ForwardResult{} // chain empty: value comes from the cache
	}
	p := b.slot(ssn)
	if b.ssn[p] != ssn {
		return ForwardResult{}
	}
	if b.addr[p] == addr && ssn <= loadSSN {
		b.Forwards++
		return ForwardResult{Found: true, Val: b.val[p], Poison: b.poison[p]}
	}
	// Hash collision (or a younger same-hash store): no chain to follow —
	// the pipeline stalls until the head store drains.
	return ForwardResult{StallSSN: ssn}
}

// CanDrain reports whether DrainNext(limit) would succeed: the oldest
// live store exists, is poison-free, and has SSN <= limit. It lets the
// cycle loop's skip-ahead ask "can the store buffer make progress next
// cycle?" without mutating anything.
func (b *ChainedStoreBuffer) CanDrain(limit uint64) bool {
	if b.ssnComplete >= b.ssnTail {
		return false
	}
	next := b.ssnComplete + 1
	if next > limit {
		return false
	}
	p := b.slot(next)
	return b.ssn[p] == next && b.poison[p] == 0
}

// DrainNext drains the oldest store to the cache if it is drainable: it
// must exist, be poison-free, and have SSN <= limit (the drain gate —
// stores younger than an outstanding checkpoint may not write the cache,
// or a squash could not be undone). It returns the drained entry and true
// on success.
func (b *ChainedStoreBuffer) DrainNext(limit uint64) (addr uint64, ok bool) {
	if b.ssnComplete >= b.ssnTail {
		return 0, false
	}
	next := b.ssnComplete + 1
	if next > limit {
		return 0, false
	}
	p := b.slot(next)
	if b.ssn[p] != next || b.poison[p] != 0 {
		return 0, false
	}
	b.ssnComplete = next
	return b.addr[p], true
}

// SquashTo rolls the buffer back so that ssnTail = ssn, dropping all
// younger stores (checkpoint restore), and rebuilds the chain table from
// the surviving live stores so chains stay exact. Squashes are rare, so
// the rebuild cost is irrelevant.
func (b *ChainedStoreBuffer) SquashTo(ssn uint64) {
	for s := ssn + 1; s <= b.ssnTail; s++ {
		p := b.slot(s)
		if b.ssn[p] == s {
			b.addr[p], b.ssn[p], b.link[p] = 0, 0, 0
			b.val[p], b.poison[p], b.idx[p] = 0, 0, 0
		}
	}
	b.ssnTail = ssn
	for i := range b.chain {
		b.chain[i] = 0
	}
	for s := b.ssnComplete + 1; s <= b.ssnTail; s++ {
		p := b.slot(s)
		if b.ssn[p] != s {
			continue
		}
		h := b.hash(b.addr[p])
		b.link[p] = b.chain[h]
		b.chain[h] = s
	}
}

// MeanExtraHops returns the average excess chain hops per load access.
func (b *ChainedStoreBuffer) MeanExtraHops() float64 { return b.Hops.Mean() }

func max0(v int) int {
	if v < 0 {
		return 0
	}
	return v
}
