package icfp

import (
	"testing"
	"testing/quick"
)

func newCSB() *ChainedStoreBuffer {
	return NewChainedStoreBuffer(16, 32, SBChained)
}

func TestSBModeString(t *testing.T) {
	for m, want := range map[SBMode]string{
		SBChained: "chained", SBIdeal: "ideal-associative",
		SBLimited: "indexed-limited", SBMode(9): "?",
	} {
		if m.String() != want {
			t.Errorf("mode %d = %q", m, m.String())
		}
	}
}

func TestInsertAndForward(t *testing.T) {
	b := newCSB()
	ssn, ok := b.Insert(0x100, 42, 0, 1)
	if !ok || ssn != 1 {
		t.Fatalf("first insert ssn=%d ok=%v", ssn, ok)
	}
	fwd := b.Forward(b.Tail(), 0x100)
	if !fwd.Found || fwd.Val != 42 {
		t.Fatalf("forward = %+v", fwd)
	}
	if fwd.Hops != 0 {
		t.Fatalf("direct hit must cost 0 excess hops, got %d", fwd.Hops)
	}
}

func TestForwardYoungestWins(t *testing.T) {
	b := newCSB()
	b.Insert(0x100, 1, 0, 1)
	b.Insert(0x100, 2, 0, 2)
	fwd := b.Forward(b.Tail(), 0x100)
	if !fwd.Found || fwd.Val != 2 {
		t.Fatalf("forward must see the youngest store: %+v", fwd)
	}
}

func TestForwardRespectsLoadSSN(t *testing.T) {
	// A rally load older than a store must not forward from it.
	b := newCSB()
	s1, _ := b.Insert(0x100, 1, 0, 1)
	b.Insert(0x100, 2, 0, 2)
	fwd := b.Forward(s1, 0x100) // load dispatched between the two stores
	if !fwd.Found || fwd.Val != 1 {
		t.Fatalf("load must forward from the older store: %+v", fwd)
	}
}

func TestChainWalkCountsHops(t *testing.T) {
	// Two same-hash different-address stores: the later lookup must walk.
	b := NewChainedStoreBuffer(16, 4, SBChained)
	a1 := uint64(0x100)       // hash = (0x100>>3)%4 = 0
	a2 := uint64(0x100 + 4*8) // also hash 0
	b.Insert(a1, 1, 0, 1)
	b.Insert(a2, 2, 0, 2)
	fwd := b.Forward(b.Tail(), a1) // head of chain is a2: one extra hop
	if !fwd.Found || fwd.Val != 1 {
		t.Fatalf("chained forward failed: %+v", fwd)
	}
	if fwd.Hops != 1 {
		t.Fatalf("expected 1 excess hop, got %d", fwd.Hops)
	}
}

func TestPoisonPropagatesThroughForward(t *testing.T) {
	b := newCSB()
	ssn, _ := b.Insert(0x100, 0, 0b10, 1) // poisoned-data store
	fwd := b.Forward(b.Tail(), 0x100)
	if !fwd.Found || fwd.Poison != 0b10 {
		t.Fatalf("poison must forward: %+v", fwd)
	}
	b.UpdateValue(ssn, 99)
	fwd = b.Forward(b.Tail(), 0x100)
	if fwd.Poison != 0 || fwd.Val != 99 {
		t.Fatalf("rally update must clear poison: %+v", fwd)
	}
}

func TestDrainOrderAndGate(t *testing.T) {
	b := newCSB()
	b.Insert(0x100, 1, 0, 1)
	s2, _ := b.Insert(0x200, 0, 1, 2) // poisoned
	b.Insert(0x300, 3, 0, 3)

	if addr, ok := b.DrainNext(b.Tail()); !ok || addr != 0x100 {
		t.Fatalf("first drain = %#x, %v", addr, ok)
	}
	// The poisoned store blocks in-order draining.
	if _, ok := b.DrainNext(b.Tail()); ok {
		t.Fatal("poisoned store must block drains")
	}
	b.UpdateValue(s2, 5)
	if addr, ok := b.DrainNext(b.Tail()); !ok || addr != 0x200 {
		t.Fatalf("drain after update = %#x, %v", addr, ok)
	}
	// The drain gate (checkpoint SSN) stops younger stores.
	if _, ok := b.DrainNext(2); ok {
		t.Fatal("drain gate must hold back stores younger than the checkpoint")
	}
	if addr, ok := b.DrainNext(b.Tail()); !ok || addr != 0x300 {
		t.Fatalf("final drain = %#x, %v", addr, ok)
	}
}

func TestDrainedStoreStopsForwarding(t *testing.T) {
	b := newCSB()
	b.Insert(0x100, 7, 0, 1)
	b.DrainNext(b.Tail())
	if fwd := b.Forward(b.Tail(), 0x100); fwd.Found {
		t.Fatal("drained store must not forward (value is in the cache)")
	}
}

func TestCapacity(t *testing.T) {
	b := newCSB() // 16 entries
	for i := 0; i < 16; i++ {
		if _, ok := b.Insert(uint64(0x1000+i*8), 0, 0, i); !ok {
			t.Fatalf("insert %d rejected early", i)
		}
	}
	if !b.Full() {
		t.Fatal("buffer must be full")
	}
	if _, ok := b.Insert(0x9999, 0, 0, 99); ok {
		t.Fatal("17th insert must fail")
	}
	b.DrainNext(b.Tail())
	if _, ok := b.Insert(0x9999, 0, 0, 99); !ok {
		t.Fatal("insert after drain must succeed")
	}
}

func TestSquashToDropsYoungStores(t *testing.T) {
	b := newCSB()
	s1, _ := b.Insert(0x100, 1, 0, 1)
	b.Insert(0x200, 2, 0, 2)
	b.Insert(0x300, 3, 0, 3)
	b.SquashTo(s1)
	if b.Tail() != s1 {
		t.Fatalf("tail = %d, want %d", b.Tail(), s1)
	}
	if fwd := b.Forward(b.Tail(), 0x200); fwd.Found {
		t.Fatal("squashed store must not forward")
	}
	if fwd := b.Forward(b.Tail(), 0x100); !fwd.Found || fwd.Val != 1 {
		t.Fatal("pre-squash store must survive with an exact chain")
	}
}

func TestOldestPoisoned(t *testing.T) {
	b := newCSB()
	b.Insert(0x100, 1, 0, 10)
	s2, _ := b.Insert(0x200, 0, 1, 20)
	b.Insert(0x300, 0, 2, 30)
	ssn, idx, ok := b.OldestPoisoned(b.Tail())
	if !ok || ssn != s2 || idx != 20 {
		t.Fatalf("OldestPoisoned = %d,%d,%v", ssn, idx, ok)
	}
	if _, _, ok := b.OldestPoisoned(s2 - 1); ok {
		t.Fatal("limit below the poisoned store must report none")
	}
}

func TestIdealModeFindsEverything(t *testing.T) {
	b := NewChainedStoreBuffer(16, 4, SBIdeal)
	b.Insert(0x100, 1, 0, 1)
	b.Insert(0x120, 2, 0, 2) // same hash as 0x100 in a 4-entry table
	fwd := b.Forward(b.Tail(), 0x100)
	if !fwd.Found || fwd.Val != 1 || fwd.Hops != 0 {
		t.Fatalf("ideal forward: %+v", fwd)
	}
}

func TestLimitedModeStallsOnCollision(t *testing.T) {
	b := NewChainedStoreBuffer(16, 4, SBLimited)
	b.Insert(0x100, 1, 0, 1)
	s2, _ := b.Insert(0x120, 2, 0, 2) // same hash, different address
	fwd := b.Forward(b.Tail(), 0x100)
	if fwd.Found {
		t.Fatal("limited mode cannot walk the chain")
	}
	if fwd.StallSSN != s2 {
		t.Fatalf("expected stall on ssn %d, got %+v", s2, fwd)
	}
	// Exact head match still forwards.
	f2 := b.Forward(b.Tail(), 0x120)
	if !f2.Found || f2.Val != 2 {
		t.Fatalf("limited head match: %+v", f2)
	}
}

// Property: chained forwarding always returns the youngest older-than-load
// matching store, exactly as the ideal buffer does.
func TestChainedMatchesIdealProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		ch := NewChainedStoreBuffer(32, 8, SBChained)
		id := NewChainedStoreBuffer(32, 8, SBIdeal)
		for i, op := range ops {
			addr := uint64(op%16) * 8 // 16 distinct addresses
			if op%3 == 0 {
				fc := ch.Forward(ch.Tail(), addr)
				fi := id.Forward(id.Tail(), addr)
				if fc.Found != fi.Found || (fc.Found && fc.Val != fi.Val) {
					return false
				}
			} else if !ch.Full() {
				ch.Insert(addr, uint64(i), 0, i)
				id.Insert(addr, uint64(i), 0, i)
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
