package icfp

// The slice buffer (§3.1, §3.4): a FIFO of miss-dependent instructions
// and their miss-independent side inputs. Entries stay in place across
// rally passes; executing un-poisons an entry in place, and re-poisoned
// entries are simply re-activated, which keeps the buffer in program
// order under multithreaded advance/rally (no dequeue-and-requeue).
// Successive passes make the buffer sparse; space reclaims from the head.

// srcKind describes where a slice instruction's input comes from.
type srcKind uint8

const (
	srcNone     srcKind = iota // no such operand
	srcCaptured                // miss-independent side input, captured on entry
	srcSlice                   // produced by an older slice entry
)

// sliceSrc is one input of a slice entry.
type sliceSrc struct {
	kind srcKind
	prod uint64 // producing entry id (kind == srcSlice)
}

// sliceEntry is one miss-dependent instruction awaiting rally, as
// assembled by the caller at append time. The buffer does not store it
// as-is: the fields split into hot scan state and cold payload (see
// sliceBuffer).
type sliceEntry struct {
	idx    int    // trace index
	seq    uint64 // distance from the checkpoint (last-writer gating)
	ssn    uint64 // store-buffer tail at dispatch (forwarding window)
	poison uint8  // union of poison bits the entry currently waits on
	srcs   [2]sliceSrc

	// Stores: SSN of the store-buffer entry whose value this instruction
	// fills when it executes.
	storeSSN uint64

	// Poisoned branches: whether the advance-mode prediction matched the
	// resolved direction. false forces a squash when the entry rallies.
	predOK bool
}

// sliceMeta is the cold payload of a buffered entry: everything the
// rally touches only when the entry actually executes.
type sliceMeta struct {
	idx      int
	seq      uint64
	ssn      uint64
	srcs     [2]sliceSrc
	storeSSN uint64
	predOK   bool
	done     int64 // completion cycle once executed
}

// sliceBuffer holds entries in program order, indexed by id. The backing
// storage is a set of fixed parallel rings of cap slots allocated once at
// construction: occupied slots are ids head..head+n-1 at ring positions
// start..start+n-1 (mod cap), so steady-state append/reclaim churn never
// allocates or copies entries.
//
// The layout is struct-of-arrays, split by access pattern: the rally
// cursor probes many entries per cycle but executes at most one, so the
// two fields every probe reads (active, poison — two bytes) live in
// dense byte arrays while the rest of the entry sits in a parallel cold
// array. A cursor sweep over a sparse buffer then touches ~32 entries
// per cache line instead of one.
type sliceBuffer struct {
	cap    int
	active []bool      // hot ring: entry awaiting execution
	poison []uint8     // hot ring: current poison vector
	meta   []sliceMeta // cold ring: payload read only on execution
	start  int         // ring index of the entry with id head
	n      int         // occupied slots
	head   uint64      // id of the oldest occupied slot
	live   int         // active entries

	// waiting[b] counts active entries whose poison vector includes bit b,
	// maintained incrementally so the per-cycle "any active entry waiting
	// on a returned bit?" check is O(1), not a buffer walk. actMask caches
	// the union of bits with a nonzero count. All poison updates of
	// buffered entries must go through SetPoison to keep both exact.
	waiting [8]int
	actMask uint8
}

func newSliceBuffer(capacity int) *sliceBuffer {
	return &sliceBuffer{
		cap:    capacity,
		active: make([]bool, capacity),
		poison: make([]uint8, capacity),
		meta:   make([]sliceMeta, capacity),
	}
}

// pos returns the ring position of the i-th oldest occupied slot.
func (s *sliceBuffer) pos(i int) int {
	idx := s.start + i
	if idx >= s.cap {
		idx -= s.cap
	}
	return idx
}

// countPoison adjusts the waiting counts for an active entry's poison
// vector by delta (+1 on activation, -1 on deactivation or change).
func (s *sliceBuffer) countPoison(p uint8, delta int) {
	for b := 0; p != 0; b, p = b+1, p>>1 {
		if p&1 != 0 {
			s.waiting[b] += delta
			if s.waiting[b] > 0 {
				s.actMask |= 1 << b
			} else {
				s.actMask &^= 1 << b
			}
		}
	}
}

// Full reports whether appending would exceed capacity. Capacity counts
// occupied slots (active or not) because un-poisoned entries are not
// compacted, only reclaimed from the head (§3.4).
func (s *sliceBuffer) Full() bool { return s.n >= s.cap }

// Empty reports whether no active entries remain.
func (s *sliceBuffer) Empty() bool { return s.live == 0 }

// Len returns the number of occupied slots.
func (s *sliceBuffer) Len() int { return s.n }

// End returns one past the youngest occupied id (== head when empty).
func (s *sliceBuffer) End() uint64 { return s.head + uint64(s.n) }

// Append adds an active entry and returns its id. ok is false when full.
func (s *sliceBuffer) Append(e sliceEntry) (uint64, bool) {
	if s.Full() {
		return 0, false
	}
	id := s.head + uint64(s.n)
	p := s.pos(s.n)
	s.active[p] = true
	s.poison[p] = e.poison
	s.meta[p] = sliceMeta{
		idx: e.idx, seq: e.seq, ssn: e.ssn,
		srcs: e.srcs, storeSSN: e.storeSSN, predOK: e.predOK,
	}
	s.n++
	s.live++
	s.countPoison(e.poison, +1)
	return id, true
}

// State returns the hot scan state of the entry with the given id:
// whether it is still buffered, and if so whether it is active and what
// poison it waits on. This is the rally cursor's probe — it touches only
// the hot rings.
func (s *sliceBuffer) State(id uint64) (active bool, poison uint8, present bool) {
	if id < s.head || id >= s.head+uint64(s.n) {
		return false, 0, false
	}
	p := s.pos(int(id - s.head))
	return s.active[p], s.poison[p], true
}

// Meta returns the cold payload of a buffered entry, or nil if the id
// has been reclaimed. The pointer is valid until the entry is reclaimed.
func (s *sliceBuffer) Meta(id uint64) *sliceMeta {
	if id < s.head || id >= s.head+uint64(s.n) {
		return nil
	}
	return &s.meta[s.pos(int(id-s.head))]
}

// ActivePoison returns the union of poison vectors over active entries.
func (s *sliceBuffer) ActivePoison() uint8 { return s.actMask }

// SetPoison changes a buffered entry's poison vector, keeping the
// waiting counts exact.
func (s *sliceBuffer) SetPoison(id uint64, p uint8) {
	if id < s.head || id >= s.head+uint64(s.n) {
		return
	}
	rp := s.pos(int(id - s.head))
	if s.active[rp] {
		s.countPoison(s.poison[rp], -1)
		s.countPoison(p, +1)
	}
	s.poison[rp] = p
}

// Deactivate marks an entry executed and reclaims inactive space from the
// head.
func (s *sliceBuffer) Deactivate(id uint64, done int64) {
	if id < s.head || id >= s.head+uint64(s.n) {
		return
	}
	p := s.pos(int(id - s.head))
	if !s.active[p] {
		return
	}
	s.countPoison(s.poison[p], -1)
	s.active[p] = false
	s.meta[p].done = done
	s.live--
	s.reclaim()
}

// reclaim frees inactive entries at the head. Their ids remain resolvable
// as "executed" via Executed.
func (s *sliceBuffer) reclaim() {
	for s.n > 0 && !s.active[s.start] {
		s.start++
		if s.start == s.cap {
			s.start = 0
		}
		s.head++
		s.n--
	}
}

// Clear empties the buffer (squash to checkpoint).
func (s *sliceBuffer) Clear() {
	s.head += uint64(s.n)
	s.n = 0
	s.live = 0
	s.waiting = [8]int{}
	s.actMask = 0
}

// Executed reports whether the entry id has executed (inactive or already
// reclaimed) and, if resolvable, its completion cycle.
func (s *sliceBuffer) Executed(id uint64) (int64, bool) {
	if id < s.head {
		return 0, true // reclaimed: long done
	}
	if id >= s.head+uint64(s.n) {
		return 0, false
	}
	p := s.pos(int(id - s.head))
	if s.active[p] {
		return 0, false
	}
	return s.meta[p].done, true
}
