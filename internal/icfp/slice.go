package icfp

// The slice buffer (§3.1, §3.4): a FIFO of miss-dependent instructions
// and their miss-independent side inputs. Entries stay in place across
// rally passes; executing un-poisons an entry in place, and re-poisoned
// entries are simply re-activated, which keeps the buffer in program
// order under multithreaded advance/rally (no dequeue-and-requeue).
// Successive passes make the buffer sparse; space reclaims from the head.

// srcKind describes where a slice instruction's input comes from.
type srcKind uint8

const (
	srcNone     srcKind = iota // no such operand
	srcCaptured                // miss-independent side input, captured on entry
	srcSlice                   // produced by an older slice entry
)

// sliceSrc is one input of a slice entry.
type sliceSrc struct {
	kind srcKind
	prod uint64 // producing entry id (kind == srcSlice)
}

// sliceEntry is one miss-dependent instruction awaiting rally.
type sliceEntry struct {
	id     uint64 // dense, monotonically increasing
	idx    int    // trace index
	seq    uint64 // distance from the checkpoint (last-writer gating)
	ssn    uint64 // store-buffer tail at dispatch (forwarding window)
	active bool
	poison uint8 // union of poison bits the entry currently waits on
	srcs   [2]sliceSrc

	// Stores: SSN of the store-buffer entry whose value this instruction
	// fills when it executes.
	storeSSN uint64

	// Poisoned branches: whether the advance-mode prediction matched the
	// resolved direction. false forces a squash when the entry rallies.
	predOK bool

	done int64 // completion cycle once executed
}

// sliceBuffer holds entries in program order, indexed by id.
type sliceBuffer struct {
	cap     int
	entries []sliceEntry // entries[i].id == head+uint64(i)
	head    uint64       // id of entries[0]
	live    int          // active entries
}

func newSliceBuffer(capacity int) *sliceBuffer {
	return &sliceBuffer{cap: capacity}
}

// Full reports whether appending would exceed capacity. Capacity counts
// occupied slots (active or not) because un-poisoned entries are not
// compacted, only reclaimed from the head (§3.4).
func (s *sliceBuffer) Full() bool { return len(s.entries) >= s.cap }

// Empty reports whether no active entries remain.
func (s *sliceBuffer) Empty() bool { return s.live == 0 }

// Len returns the number of occupied slots.
func (s *sliceBuffer) Len() int { return len(s.entries) }

// Append adds an active entry and returns its id. ok is false when full.
func (s *sliceBuffer) Append(e sliceEntry) (uint64, bool) {
	if s.Full() {
		return 0, false
	}
	e.id = s.head + uint64(len(s.entries))
	e.active = true
	s.entries = append(s.entries, e)
	s.live++
	return e.id, true
}

// Get returns the entry with the given id, or nil if reclaimed.
func (s *sliceBuffer) Get(id uint64) *sliceEntry {
	if id < s.head || id >= s.head+uint64(len(s.entries)) {
		return nil
	}
	return &s.entries[id-s.head]
}

// Deactivate marks an entry executed and reclaims inactive space from the
// head.
func (s *sliceBuffer) Deactivate(id uint64, done int64) {
	e := s.Get(id)
	if e == nil || !e.active {
		return
	}
	e.active = false
	e.done = done
	s.live--
	s.reclaim()
}

// Repoison re-activates the entry with a new poison vector... entries are
// re-poisoned in place when a rally finds their inputs still missing.
func (s *sliceBuffer) Repoison(id uint64, poison uint8) {
	if e := s.Get(id); e != nil {
		e.poison = poison
	}
}

// reclaim frees inactive entries at the head. Their ids remain resolvable
// as "executed" via doneBefore.
func (s *sliceBuffer) reclaim() {
	n := 0
	for n < len(s.entries) && !s.entries[n].active {
		n++
	}
	if n > 0 {
		s.head += uint64(n)
		s.entries = s.entries[n:]
	}
}

// Clear empties the buffer (squash to checkpoint).
func (s *sliceBuffer) Clear() {
	s.head += uint64(len(s.entries))
	s.entries = s.entries[:0]
	s.live = 0
}

// Executed reports whether the entry id has executed (inactive or already
// reclaimed) and, if resolvable, its completion cycle.
func (s *sliceBuffer) Executed(id uint64) (int64, bool) {
	if id < s.head {
		return 0, true // reclaimed: long done
	}
	e := s.Get(id)
	if e == nil || e.active {
		return 0, false
	}
	return e.done, true
}
