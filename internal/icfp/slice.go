package icfp

// The slice buffer (§3.1, §3.4): a FIFO of miss-dependent instructions
// and their miss-independent side inputs. Entries stay in place across
// rally passes; executing un-poisons an entry in place, and re-poisoned
// entries are simply re-activated, which keeps the buffer in program
// order under multithreaded advance/rally (no dequeue-and-requeue).
// Successive passes make the buffer sparse; space reclaims from the head.

// srcKind describes where a slice instruction's input comes from.
type srcKind uint8

const (
	srcNone     srcKind = iota // no such operand
	srcCaptured                // miss-independent side input, captured on entry
	srcSlice                   // produced by an older slice entry
)

// sliceSrc is one input of a slice entry.
type sliceSrc struct {
	kind srcKind
	prod uint64 // producing entry id (kind == srcSlice)
}

// sliceEntry is one miss-dependent instruction awaiting rally.
type sliceEntry struct {
	id     uint64 // dense, monotonically increasing
	idx    int    // trace index
	seq    uint64 // distance from the checkpoint (last-writer gating)
	ssn    uint64 // store-buffer tail at dispatch (forwarding window)
	active bool
	poison uint8 // union of poison bits the entry currently waits on
	srcs   [2]sliceSrc

	// Stores: SSN of the store-buffer entry whose value this instruction
	// fills when it executes.
	storeSSN uint64

	// Poisoned branches: whether the advance-mode prediction matched the
	// resolved direction. false forces a squash when the entry rallies.
	predOK bool

	done int64 // completion cycle once executed
}

// sliceBuffer holds entries in program order, indexed by id. The backing
// array is a fixed ring of cap slots allocated once at construction:
// occupied slots are ids head..head+n-1 at ring positions start..start+n-1
// (mod cap), so steady-state append/reclaim churn never allocates or
// copies entries.
type sliceBuffer struct {
	cap     int
	entries []sliceEntry // fixed ring backing, len == cap
	start   int          // ring index of the entry with id head
	n       int          // occupied slots
	head    uint64       // id of the oldest occupied slot
	live    int          // active entries

	// waiting[b] counts active entries whose poison vector includes bit b,
	// maintained incrementally so the per-cycle "any active entry waiting
	// on a returned bit?" check is O(bits), not a buffer walk. All poison
	// updates of buffered entries must go through SetPoison to keep the
	// counts exact.
	waiting [8]int
}

func newSliceBuffer(capacity int) *sliceBuffer {
	return &sliceBuffer{cap: capacity, entries: make([]sliceEntry, capacity)}
}

// at returns the i-th oldest occupied slot.
func (s *sliceBuffer) at(i int) *sliceEntry {
	idx := s.start + i
	if idx >= s.cap {
		idx -= s.cap
	}
	return &s.entries[idx]
}

// countPoison adjusts the waiting counts for an active entry's poison
// vector by delta (+1 on activation, -1 on deactivation or change).
func (s *sliceBuffer) countPoison(p uint8, delta int) {
	for b := 0; p != 0; b, p = b+1, p>>1 {
		if p&1 != 0 {
			s.waiting[b] += delta
		}
	}
}

// Full reports whether appending would exceed capacity. Capacity counts
// occupied slots (active or not) because un-poisoned entries are not
// compacted, only reclaimed from the head (§3.4).
func (s *sliceBuffer) Full() bool { return s.n >= s.cap }

// Empty reports whether no active entries remain.
func (s *sliceBuffer) Empty() bool { return s.live == 0 }

// Len returns the number of occupied slots.
func (s *sliceBuffer) Len() int { return s.n }

// End returns one past the youngest occupied id (== head when empty).
func (s *sliceBuffer) End() uint64 { return s.head + uint64(s.n) }

// Append adds an active entry and returns its id. ok is false when full.
func (s *sliceBuffer) Append(e sliceEntry) (uint64, bool) {
	if s.Full() {
		return 0, false
	}
	e.id = s.head + uint64(s.n)
	e.active = true
	*s.at(s.n) = e
	s.n++
	s.live++
	s.countPoison(e.poison, +1)
	return e.id, true
}

// Get returns the entry with the given id, or nil if reclaimed.
func (s *sliceBuffer) Get(id uint64) *sliceEntry {
	if id < s.head || id >= s.head+uint64(s.n) {
		return nil
	}
	return s.at(int(id - s.head))
}

// ActivePoison returns the union of poison vectors over active entries.
func (s *sliceBuffer) ActivePoison() uint8 {
	var p uint8
	for b := 0; b < 8; b++ {
		if s.waiting[b] > 0 {
			p |= 1 << b
		}
	}
	return p
}

// SetPoison changes a buffered entry's poison vector, keeping the waiting
// counts exact.
func (s *sliceBuffer) SetPoison(e *sliceEntry, p uint8) {
	if e.active {
		s.countPoison(e.poison, -1)
		s.countPoison(p, +1)
	}
	e.poison = p
}

// Deactivate marks an entry executed and reclaims inactive space from the
// head.
func (s *sliceBuffer) Deactivate(id uint64, done int64) {
	e := s.Get(id)
	if e == nil || !e.active {
		return
	}
	s.countPoison(e.poison, -1)
	e.active = false
	e.done = done
	s.live--
	s.reclaim()
}

// reclaim frees inactive entries at the head. Their ids remain resolvable
// as "executed" via doneBefore.
func (s *sliceBuffer) reclaim() {
	for s.n > 0 && !s.at(0).active {
		s.start = (s.start + 1) % s.cap
		s.head++
		s.n--
	}
}

// Clear empties the buffer (squash to checkpoint).
func (s *sliceBuffer) Clear() {
	s.head += uint64(s.n)
	s.n = 0
	s.live = 0
	s.waiting = [8]int{}
}

// Executed reports whether the entry id has executed (inactive or already
// reclaimed) and, if resolvable, its completion cycle.
func (s *sliceBuffer) Executed(id uint64) (int64, bool) {
	if id < s.head {
		return 0, true // reclaimed: long done
	}
	e := s.Get(id)
	if e == nil || e.active {
		return 0, false
	}
	return e.done, true
}
