// The iCFP machine: a 2-way in-order pipeline that, on a cache miss at
// any level, checkpoints the register file and continues in "advance"
// mode — committing miss-independent instructions and diverting
// miss-dependent ones (with their side inputs) into the slice buffer.
// Each miss return triggers a "rally" pass that re-executes only the
// slice, merging results into primary register state gated by last-writer
// sequence numbers. Rallies are non-blocking (a slice load that misses
// again is re-poisoned in place for a later pass) and can be
// multithreaded with continued advance at the program tail.
package icfp

import (
	"fmt"

	"icfp/internal/bpred"
	"icfp/internal/isa"
	"icfp/internal/mem"
	"icfp/internal/pipeline"
	"icfp/internal/stats"
	"icfp/internal/workload"
)

// Machine is an iCFP pipeline.
type Machine struct {
	cfg    pipeline.Config
	sbMode SBMode

	// ExternalStores optionally injects coherence probes from another
	// processor (§3.3): at each event's cycle, the address probes the
	// load signature and forces a squash to the checkpoint on a hit.
	ExternalStores []ExternalStoreEvent
}

// ExternalStoreEvent is one remote store visible to this core.
type ExternalStoreEvent struct {
	Cycle int64
	Addr  uint64
}

// New returns a full iCFP machine: advance under all misses, chained
// store buffer, non-blocking multithreaded rallies, poison vectors as
// configured.
func New(cfg pipeline.Config) *Machine {
	cfg.Trigger = pipeline.TriggerAll
	return &Machine{cfg: cfg}
}

// NewWithOptions returns an iCFP machine with an explicit advance trigger
// (Figure 6's iCFP-L2 vs iCFP-all) and store-buffer design (Figure 8).
func NewWithOptions(cfg pipeline.Config, trig pipeline.AdvanceTrigger, sb SBMode) *Machine {
	cfg.Trigger = trig
	return &Machine{cfg: cfg, sbMode: sb}
}

// watchdogCycles bounds any single simulation; exceeding it indicates a
// scheduling deadlock rather than a slow workload.
const watchdogCycles = int64(1) << 36

// strictCycles (test-only) forces the cycle loop to step one cycle at a
// time instead of skipping ahead to the next known event. Simulated
// behaviour must be byte-identical either way — the equivalence tests in
// strict_test.go pin that — so the flag exists purely to exercise the
// skip-ahead logic against the trivially correct strict loop.
var strictCycles = false

type mode int

const (
	modeNormal mode = iota
	modeAdvance
)

type pendingMiss struct {
	cycle int64
	bit   uint8
}

// staged is the next tail instruction, with its front-end state resolved
// exactly once.
type staged struct {
	idx       int
	in        *isa.Inst
	avail     int64
	predTaken bool
	valid     bool
}

type run struct {
	cfg     *pipeline.Config
	sbMode  SBMode
	ext     []ExternalStoreEvent
	tr      *isa.Trace
	end     int // window end (exclusive trace index); tr.Len() for full runs
	meas    int // measurement start (trace index); == window start for full runs
	hier    *mem.Hierarchy
	front   *pipeline.Frontend
	slots   *pipeline.SlotAlloc
	board   pipeline.Scoreboard // RF0: main register file state
	scratch pipeline.Scoreboard // RF1: rally scratch register file
	csb     *ChainedStoreBuffer
	slice   *sliceBuffer
	sig     *Signature

	mode    mode
	ckpt    pipeline.Checkpoint
	ckptSSN uint64
	seqCtr  uint64

	// Poison-bit pool.
	nBits      int
	bitNext    int
	bitPending [8]int
	pending    []pendingMiss
	// pendingMin is the earliest return cycle in pending (meaningful only
	// while pending is non-empty). It lets fireReturns and nextEvent skip
	// the pending walk on the vast majority of cycles, where no return is
	// due.
	pendingMin int64
	// recheckPass is set by every event that could newly satisfy the
	// "some active slice entry waits on a returned bit" pass-start
	// condition (a miss return, a slice append or re-poison, a pass end).
	// fireReturns only re-evaluates waitingFreeBits while it is set, so
	// the check is O(changed) instead of per-cycle.
	recheckPass bool

	// Last poisoned writer of each register (slice entry id), valid while
	// board.Poison[reg] != 0.
	lastWriter [isa.NumRegs]uint64

	// pendingBranches counts unresolved poisoned branches in the slice
	// buffer. Tail advance pauses once it exceeds a small bound: work past
	// many unresolved low-confidence branches is likely to be squashed,
	// so a real front end gates fetch instead (confidence throttling).
	pendingBranches int

	// Rally pass state.
	passActive   bool
	passBits     uint8
	cursor       uint64
	retsDuring   bool
	rallyReadyAt int64

	// Tail state.
	i         int
	st        staged
	lastIssue int64
	stallSSN  uint64 // SBLimited: waiting for this store to drain
	// stEarliest caches tailEarliest() for the staged instruction; valid
	// while stEarliestOK. Every write that can move the staged
	// instruction's issue cycle (scoreboard writebacks, mode transitions,
	// checkpoint restores) invalidates it via dirtyTail.
	stEarliest   int64
	stEarliestOK bool

	cycle    int64
	finish   int64
	sraUntil int64 // simple-runahead episode active until this cycle

	dTrack, l2Track stats.MLPTracker
	res             pipeline.Result

	// Measurement-crossing snapshot (ramp support): latched once when the
	// tail cursor first reaches meas.
	crossed  bool
	measBase int64
	res0     pipeline.Result
	hs0      mem.Stats
	fwd0     uint64
}

// Run simulates the workload to completion.
func (m *Machine) Run(w *workload.Workload) pipeline.Result {
	return m.RunSampled(w, pipeline.SamplePolicy{})
}

// RunSampled simulates the workload under the given sampling policy,
// running the detailed model only inside measurement windows. The zero
// policy is a full run.
func (m *Machine) RunSampled(w *workload.Workload, pol pipeline.SamplePolicy) pipeline.Result {
	return pipeline.RunWindowed(w, &m.cfg, pol,
		func(hier *mem.Hierarchy, pred *bpred.Predictor, start, meas, hi int) pipeline.Result {
			return m.runWindow(w, hier, pred, start, meas, hi)
		})
}

// runWindow runs the detailed model over trace indexes [start, hi) from
// the given warmed state at cycle 0, measuring [meas, hi): the cycle
// loop latches a counter snapshot when the tail cursor first reaches
// meas and the result reports differences (slice/rally work in flight at
// the crossing is charged to the ramp). External store events are
// replayed from the start of every window (their cycles are
// window-relative).
func (m *Machine) runWindow(w *workload.Workload, hier *mem.Hierarchy, pred *bpred.Predictor, start, meas, hi int) pipeline.Result {
	cfg := m.cfg
	r := &run{cfg: &cfg, sbMode: m.sbMode, tr: w.Trace, end: hi, meas: meas, ext: m.ExternalStores}
	r.hier = hier
	r.front = pipeline.NewFrontend(&cfg, r.hier, pred)
	r.slots = pipeline.NewSlotAlloc(&cfg)
	r.csb = NewChainedStoreBuffer(cfg.ChainedSBEntries, cfg.ChainTableEntries, m.sbMode)
	r.slice = newSliceBuffer(cfg.SliceEntries)
	r.sig = NewSignature(1024)
	// Pending-miss scratch: sized so steady state never grows it (bounded
	// in practice by outstanding MSHRs).
	r.pending = make([]pendingMiss, 0, cfg.Hier.NumMSHRs+8)
	r.nBits = cfg.PoisonBits
	if r.nBits < 1 {
		r.nBits = 1
	}
	if r.nBits > 8 {
		r.nBits = 8
	}

	r.i = start

	r.hier.MissObserver = func(start, done int64, l2 bool) {
		r.dTrack.Add(start, done)
		if l2 {
			r.l2Track.Add(start, done)
		}
	}

	r.loop()

	insts := int64(hi - meas)
	if insts == 0 {
		return pipeline.Result{}
	}
	ki := float64(insts) / 1000
	hs := r.hier.Stats
	res := pipeline.SubCounters(r.res, r.res0)
	res.Cycles = r.finish - r.measBase
	res.Insts = insts
	res.DCacheMissPerKI = float64(hs.DataL1Misses-r.hs0.DataL1Misses) / ki
	res.L2MissPerKI = float64(hs.DataL2Misses-r.hs0.DataL2Misses) / ki
	// MLP and store-buffer hop shapes observe the whole detailed range,
	// ramp included: they are distribution summaries, not extensive
	// counters, and the ramp's samples come from the same machine state.
	res.DCacheMLP = r.dTrack.MLP()
	res.L2MLP = r.l2Track.MLP()
	res.RallyPerKI = float64(res.RallyInsts) / ki
	res.SBForwards = r.csb.Forwards - r.fwd0
	res.SBExtraHops = r.csb.MeanExtraHops()
	res.SBHopsAtLeast = r.csb.Hops.FractionAtLeast(5)
	return res
}

// loop is the cycle-driven core: each iteration is one cycle (with
// skip-ahead when nothing can possibly happen). Each subsystem call is
// guarded by the cheapest possible "could it do anything this cycle?"
// check inline: the loop body runs a couple hundred thousand times per
// simulated workload, so even a no-op function call per subsystem per
// cycle is measurable against the in-order baseline.
func (r *run) loop() {
	n := r.end
	for r.i < n || !r.slice.Empty() || len(r.pending) > 0 {
		if r.cycle > watchdogCycles {
			panic("icfp: simulation exceeded the watchdog cycle bound (deadlock?)")
		}
		if (len(r.pending) > 0 && r.pendingMin <= r.cycle) || r.recheckPass {
			r.fireReturns()
		}
		for len(r.ext) > 0 && r.ext[0].Cycle <= r.cycle {
			r.externalStore(r.ext[0].Addr)
			r.ext = r.ext[1:]
		}
		prog := false
		if r.csb.ssnComplete < r.csb.ssnTail && r.drainStores() {
			prog = true
		}
		if r.passActive && r.rallyStep() {
			prog = true
		}
		if r.tailStep() {
			prog = true
		}
		if r.mode == modeAdvance {
			r.maybeExitAdvance()
		}
		if prog {
			r.cycle++
			continue
		}
		r.cycle = r.nextEvent()
	}
	if r.cycle > r.finish {
		r.finish = r.cycle
	}
}

// nextEvent finds the earliest cycle at which anything can change, per
// the pipeline.Horizon contract: every subsystem that can make progress
// contributes its next known event cycle.
func (r *run) nextEvent() int64 {
	if strictCycles {
		return r.cycle + 1
	}
	var h pipeline.Horizon
	h.Reset(r.cycle)
	if len(r.pending) > 0 {
		h.Observe(r.pendingMin)
	}
	if r.recheckPass && !r.passActive && !r.slice.Empty() {
		// A pass-start re-check is queued (an event this iteration, after
		// fireReturns already ran, may have satisfied the pass condition):
		// fireReturns must evaluate it next cycle.
		h.ObserveNext()
	}
	if r.passActive {
		// An active pass processes or skips entries every cycle once its
		// ready point passes; never skip beyond that.
		if r.rallyReadyAt > r.cycle {
			h.Observe(r.rallyReadyAt)
		} else {
			h.ObserveNext()
		}
	}
	if r.st.valid {
		h.Observe(r.cachedTailEarliest())
	}
	if r.csb.CanDrain(r.drainLimit()) {
		// A drainable head store retries next cycle. A blocked head
		// (poisoned value, or younger than the outstanding checkpoint)
		// cannot unblock without a rally writeback, a miss return, or a
		// mode transition — all of which are covered by the horizons
		// above — so it contributes no event of its own.
		h.ObserveNext()
	}
	if len(r.ext) > 0 {
		h.Observe(r.ext[0].Cycle)
	}
	return h.Next()
}

// ---- poison bits and miss returns ----

// allocBit assigns a poison bit (round-robin, §3.4) to a new miss
// returning at the given cycle.
func (r *run) allocBit(ret int64) uint8 {
	b := uint8(r.bitNext % r.nBits)
	r.bitNext++
	r.bitPending[b]++
	if len(r.pending) == 0 || ret < r.pendingMin {
		r.pendingMin = ret
	}
	r.pending = append(r.pending, pendingMiss{cycle: ret, bit: b})
	return 1 << b
}

// fireReturns retires pending misses whose data has arrived and starts or
// extends rally passes.
func (r *run) fireReturns() {
	if len(r.pending) > 0 && r.pendingMin <= r.cycle {
		live := r.pending[:0]
		newMin := int64(1)<<62 - 1
		for _, p := range r.pending {
			if p.cycle <= r.cycle {
				r.bitPending[p.bit]--
				r.passBits |= 1 << p.bit
				if r.passActive {
					r.retsDuring = true
				}
				r.recheckPass = true
			} else {
				live = append(live, p)
				if p.cycle < newMin {
					newMin = p.cycle
				}
			}
		}
		r.pending = live
		r.pendingMin = newMin
	}
	if r.recheckPass && !r.passActive {
		// A pass must run whenever any active entry waits on a bit whose
		// miss has returned — including entries that were (re)poisoned
		// with an already-returned bit after the last pass ended (e.g. a
		// tail load forwarding from a still-poisoned store). When the
		// check fails, clear the flag so the loop's guard goes quiet: any
		// event that could change the answer sets it again.
		if r.slice.Empty() {
			r.recheckPass = false
		} else if wb := r.waitingFreeBits(); wb != 0 {
			r.passBits = wb
			r.startPass()
		} else {
			r.recheckPass = false
		}
	}
}

func (r *run) startPass() {
	r.passActive = true
	r.retsDuring = false
	r.cursor = r.slice.head
	r.rallyReadyAt = r.cycle
	r.res.RallyPasses++
}

// endPass completes a rally pass; a return that fired mid-pass starts the
// next pass immediately.
func (r *run) endPass() {
	r.passActive = false
	r.passBits = 0
	if r.retsDuring && !r.slice.Empty() {
		// Returns fired mid-pass: entries before the cursor missed their
		// un-poisoning. Start the next pass over the free bits that still
		// have waiting entries.
		r.passBits = r.waitingFreeBits()
		if r.passBits != 0 {
			r.startPass()
			return
		}
	}
	if r.slice.Empty() {
		r.sig.Clear()
	}
	// Entries the pass left active may already wait on free bits (e.g.
	// re-poisoned from a store whose miss returned mid-pass): have
	// fireReturns re-evaluate the pass-start condition once.
	r.recheckPass = true
}

// waitingFreeBits returns the union of poison bits that (a) have no
// outstanding miss and (b) appear on at least one active slice entry.
func (r *run) waitingFreeBits() uint8 {
	var free uint8
	for b := 0; b < r.nBits; b++ {
		if r.bitPending[b] == 0 {
			free |= 1 << b
		}
	}
	if free == 0 {
		return 0 // every bit has an outstanding miss: skip the slice walk
	}
	return free & r.slice.ActivePoison()
}

// ---- store drains ----

// drainLimit is the oldest SSN allowed to leave the store buffer: while a
// checkpoint is outstanding, stores younger than it must stay buffered
// (they are the squash-recovery state).
func (r *run) drainLimit() uint64 {
	if r.mode == modeAdvance {
		return r.ckptSSN
	}
	return r.csb.Tail()
}

// drainStores writes at most one committed store per cycle to the cache.
func (r *run) drainStores() bool {
	addr, ok := r.csb.DrainNext(r.drainLimit())
	if !ok {
		return false
	}
	r.hier.Data(r.cycle, addr, true)
	return true
}

// ---- rally ----

// rallyStep processes the rally pass: up to eight skips and one
// instruction execution per cycle (§3.4: banked slice buffer).
func (r *run) rallyStep() bool {
	if !r.passActive {
		return false
	}
	if r.rallyReadyAt > r.cycle {
		return false
	}
	progress := false
	for skips := 0; skips < 8; {
		if r.cursor >= r.slice.End() {
			r.endPass()
			return progress
		}
		active, poison, present := r.slice.State(r.cursor)
		if !present || !active {
			r.cursor++
			continue // reclaimed or executed: free skip
		}
		if poison&r.passBits == 0 {
			if r.cfg.NonBlockingRally {
				// Not un-poisoned by this pass: banked skip. Skips consume
				// this cycle's skip bandwidth, so they count as progress
				// (otherwise skip-ahead would leap over the pass walk).
				r.cursor++
				skips++
				progress = true
				continue
			}
			// Blocking rallies cannot skip: fall through and wait.
		}
		if done := r.execSliceEntry(r.cursor); done {
			progress = true
		}
		return progress
	}
	return progress
}

// execSliceEntry attempts to execute the slice entry with the given id
// at the current cycle. It returns true if rally bandwidth was consumed.
func (r *run) execSliceEntry(id uint64) bool {
	m := r.slice.Meta(id)
	in := r.tr.At(m.idx)

	// Gather register inputs: all slice-internal producers must have
	// executed; otherwise re-poison with their current wait bits.
	ready := r.cycle
	var waitBits uint8
	for _, s := range m.srcs {
		if s.kind != srcSlice {
			continue
		}
		if done, ok := r.slice.Executed(s.prod); ok {
			if done > ready {
				ready = done
			}
		} else if _, pp, present := r.slice.State(s.prod); present {
			waitBits |= pp
		}
	}
	if waitBits != 0 {
		if !r.cfg.NonBlockingRally {
			// Blocking rallies stall until the producers' misses return.
			r.rallyReadyAt = r.earliestReturn()
			return false
		}
		r.slice.SetPoison(id, waitBits)
		r.cursor++
		r.res.RallyInsts++
		return true
	}
	if ready > r.cycle {
		r.rallyReadyAt = ready // bypass wait within the slice
		return false
	}
	if !r.slots.TryTake(r.cycle, in.Op) {
		return false // port conflict with the tail this cycle
	}
	r.res.RallyInsts++

	done := r.cycle + 1
	switch in.Op {
	case isa.OpLoad:
		fwd := r.csb.Forward(m.ssn, in.Addr)
		switch {
		case fwd.Found && fwd.Poison != 0:
			// Memory dependence on a still-poisoned store.
			r.slice.SetPoison(id, fwd.Poison)
			r.cursor++
			return true
		case fwd.Found:
			r.checkValue(in, fwd.Val)
			done = r.cycle + int64(r.cfg.DCachePipe) + int64(fwd.Hops)
		default:
			acc := r.hier.Data(r.cycle, in.Addr, false)
			if acc.Done > r.cycle+int64(r.cfg.DCachePipe)+2 {
				if r.cfg.NonBlockingRally {
					// Still (or newly) missing: re-poison and move on.
					r.slice.SetPoison(id, r.allocBit(acc.Done))
					r.cursor++
					return true
				}
				// Blocking rally: wait the miss out.
				done = acc.Done + int64(r.cfg.DCachePipe)
				r.rallyReadyAt = acc.Done
			} else {
				done = r.cycle + int64(r.cfg.DCachePipe)
				r.sig.Insert(in.Addr)
			}
		}
	case isa.OpStore:
		r.csb.UpdateValue(m.storeSSN, in.Val)
	case isa.OpBranch, isa.OpJump, isa.OpCall, isa.OpRet:
		r.front.Train(in)
		r.pendingBranches--
		if !m.predOK {
			r.squash(m.idx, m.ssn)
			return true
		}
	default:
		done = r.cycle + int64(in.Op.ExecLatency())
	}

	// Writeback: scratch always; main register file only when this entry
	// is still the architecturally last writer (sequence number gate).
	if in.HasDst() {
		r.scratch.Ready[in.Dst] = done
		r.scratch.Poison[in.Dst] = 0
		if r.board.Seq[in.Dst] == m.seq {
			r.board.Ready[in.Dst] = done
			r.board.Poison[in.Dst] = 0
			r.dirtyTail() // the staged tail may source this register
		}
	}
	r.slice.Deactivate(id, done)
	r.cursor++
	if done > r.finish {
		r.finish = done
	}
	return true
}

// earliestReturn gives the soonest pending miss return (for blocking
// rallies and skip-ahead).
func (r *run) earliestReturn() int64 {
	if len(r.pending) == 0 {
		return r.cycle + pipeline.HorizonFar
	}
	return r.pendingMin
}

// ---- tail ----

// stage resolves front-end state for the next tail instruction.
func (r *run) stage() bool {
	if r.st.valid {
		return true
	}
	if r.i >= r.end {
		return false
	}
	if !r.crossed && r.i >= r.meas {
		// First tail instruction of the measurement range: snapshot every
		// counter the result reports as a difference. A later squash may
		// rewind the cursor below meas; the latch stays set — replay work
		// caused inside the measurement range is charged to it.
		r.crossed = true
		r.measBase, r.res0, r.hs0, r.fwd0 = r.finish, r.res, r.hier.Stats, r.csb.Forwards
	}
	in := r.tr.At(r.i)
	r.st.idx = r.i
	r.st.in = in
	r.st.avail = r.front.Avail(in)
	r.st.predTaken = r.front.Predict(in)
	r.st.valid = true
	r.i++
	r.dirtyTail()
	return true
}

// dirtyTail invalidates the cached earliest-issue cycle of the staged
// tail instruction. Every state change that can move that cycle — a
// scoreboard writeback, a mode transition, a checkpoint restore, a
// restage — must call it; reads go through cachedTailEarliest.
func (r *run) dirtyTail() { r.stEarliestOK = false }

// cachedTailEarliest returns tailEarliest(), recomputed only when
// dirtyTail invalidated it. The tail re-checks its issue cycle every
// simulated cycle while stalled; the inputs only change on the events
// above, so the cache makes the per-cycle check O(1).
func (r *run) cachedTailEarliest() int64 {
	if !r.stEarliestOK {
		r.stEarliest = r.tailEarliest()
		r.stEarliestOK = true
	}
	return r.stEarliest
}

// tailEarliest computes the staged instruction's earliest issue cycle.
func (r *run) tailEarliest() int64 {
	var g pipeline.Gate
	g.Reset(r.st.avail)
	if r.mode == modeNormal || r.board.SrcPoison(r.st.in) == 0 {
		g.Require(r.board.SrcReady(r.st.in))
	}
	g.Require(r.lastIssue)
	return g.At()
}

// tailStep issues tail instructions into this cycle's remaining slots.
// maxPendingBranches bounds how many unresolved poisoned branches the
// tail may advance past before fetch gating pauses it.
const maxPendingBranches = 6

func (r *run) tailStep() bool {
	if r.passActive && !r.cfg.MultithreadRally {
		return false // rallies own the pipeline when not multithreaded
	}
	if r.mode == modeAdvance && r.pendingBranches >= maxPendingBranches {
		return false // confidence throttle: wait for rallies to resolve
	}
	if r.st.valid && r.stEarliestOK && r.stEarliest > r.cycle {
		return false // staged and stalled: the common no-op cycle, no calls
	}
	progress := false
	for {
		if !r.stage() {
			return progress
		}
		if r.cachedTailEarliest() > r.cycle {
			return progress
		}
		if r.stallSSN != 0 {
			// SBLimited: a prior load is stalled on a colliding store.
			if r.csb.ssnComplete < r.stallSSN {
				return progress
			}
			r.stallSSN = 0
		}
		if !r.slots.TryTake(r.cycle, r.st.in.Op) {
			return progress
		}
		if !r.issueTail() {
			return progress
		}
		progress = true
	}
}

// issueTail processes the staged instruction at the current cycle. It
// returns false if the instruction could not issue after all (structural
// stall) and must retry.
func (r *run) issueTail() bool {
	in := r.st.in
	idx := r.st.idx
	t := r.cycle

	if r.mode == modeAdvance && r.board.SrcPoison(in) != 0 {
		if !r.sliceOut() {
			return false
		}
		r.st.valid = false
		r.lastIssue = t
		return true
	}

	var done int64
	switch in.Op {
	case isa.OpLoad:
		out, d := r.execLoad(idx, t)
		switch out {
		case loadStall:
			return false
		case loadSliced:
			r.st.valid = false
			r.lastIssue = t
			return true // fully handled via the slice path
		}
		done = d
	case isa.OpStore:
		if _, ok := r.csb.Insert(in.Addr, in.Val, 0, idx); !ok {
			r.stallAdvance(idx, &r.res.SBOverflows)
			return false
		}
		done = t + 1
	default:
		done = t + int64(in.Op.ExecLatency())
	}

	seq := r.nextSeq()
	r.board.WriteDst(in, done, 0, seq)
	if in.Op.IsCtrl() {
		r.front.Train(in)
		if r.st.predTaken != in.Taken {
			r.res.BranchMispredicts++
			r.front.Redirect(t + 1)
		}
	}
	if r.mode == modeAdvance {
		r.res.AdvanceInsts++
	}
	if done > r.finish {
		r.finish = done
	}
	r.st.valid = false
	r.lastIssue = t
	return true
}

// nextSeq returns the instruction's last-writer sequence number: distance
// from the checkpoint while one is outstanding, zero otherwise.
func (r *run) nextSeq() uint64 {
	if r.mode != modeAdvance {
		return 0
	}
	r.seqCtr++
	return r.seqCtr
}

// loadOutcome reports how a tail load was handled.
type loadOutcome int

const (
	loadDone   loadOutcome = iota // executed; write back the result
	loadSliced                    // diverted to the slice buffer
	loadStall                     // structural stall; retry next cycle
)

// execLoad performs a tail load: store-buffer forwarding, then the
// hierarchy; misses poison and slice (in advance mode) or trigger the
// transition (in normal mode).
func (r *run) execLoad(idx int, t int64) (loadOutcome, int64) {
	in := r.tr.At(idx)
	pipe := int64(r.cfg.DCachePipe)

	fwd := r.csb.Forward(r.csb.Tail(), in.Addr)
	if fwd.StallSSN != 0 {
		r.stallSSN = fwd.StallSSN
		return loadStall, 0
	}
	if fwd.Found {
		if fwd.Poison != 0 {
			// Forward from a poisoned store: the load is miss-dependent.
			return r.poisonLoad(idx, fwd.Poison, 0), 0
		}
		r.checkValue(in, fwd.Val)
		return loadDone, t + pipe + int64(fwd.Hops)
	}

	acc := r.hier.Data(t, in.Addr, false)
	if acc.Done <= t+pipe+int64(r.cfg.FrontDepth) {
		r.sig.Insert(in.Addr)
		d := acc.Done + pipe
		if m := t + pipe; d < m {
			d = m
		}
		return loadDone, d
	}

	// A real miss.
	if !r.triggered(acc.Level) {
		// Configured not to advance under this miss level: behave like
		// the in-order baseline (stall on use).
		return loadDone, acc.Done + pipe
	}
	if r.mode == modeNormal {
		r.enterAdvance(idx)
	}
	return r.poisonLoad(idx, 0, acc.Done), 0
}

// poisonLoad diverts a missing or poison-forwarded load into the slice
// buffer. inherited is the poison from a forwarding store (0 for a real
// miss returning at ret).
func (r *run) poisonLoad(idx int, inherited uint8, ret int64) loadOutcome {
	in := r.tr.At(idx)
	var vec uint8
	e := sliceEntry{idx: idx, seq: r.nextSeq(), ssn: r.csb.Tail()}
	if inherited != 0 {
		vec = inherited
	} else {
		vec = r.allocBit(ret)
	}
	e.poison = vec
	r.captureSrcs(&e, in)
	id, ok := r.slice.Append(e)
	if !ok {
		r.undoLoadPoison(inherited, vec)
		r.stallAdvance(idx, &r.res.SliceOverflows)
		return loadStall
	}
	// The new entry may wait on an already-returned bit (poison inherited
	// from a store whose miss came back): re-check the pass condition.
	r.recheckPass = true
	r.board.WriteDst(in, r.cycle+1, vec, e.seq)
	if in.HasDst() {
		r.lastWriter[in.Dst] = id
	}
	r.res.AdvanceInsts++
	return loadSliced
}

// undoLoadPoison rolls back a freshly allocated pending miss when the
// slice buffer rejected the load (the access itself stands — it becomes a
// prefetch).
func (r *run) undoLoadPoison(inherited, vec uint8) {
	if inherited != 0 {
		return
	}
	for b := 0; b < r.nBits; b++ {
		if vec == 1<<b {
			r.bitPending[b]--
			break
		}
	}
	if n := len(r.pending); n > 0 {
		dropped := r.pending[n-1]
		r.pending = r.pending[:n-1]
		if dropped.cycle == r.pendingMin {
			r.pendingMin = 1<<62 - 1
			for _, p := range r.pending {
				if p.cycle < r.pendingMin {
					r.pendingMin = p.cycle
				}
			}
		}
	}
	// The undone allocation may have freed a bit that slice entries wait
	// on; let fireReturns re-check.
	r.recheckPass = true
}

// sliceOut diverts a poisoned (miss-dependent) non-load-miss instruction
// into the slice buffer.
func (r *run) sliceOut() bool {
	in := r.st.in
	if r.slice.Full() {
		// Check capacity before touching the store buffer: a poisoned
		// store inserted without a slice entry would never receive its
		// value and would block drains forever.
		r.stallAdvance(r.st.idx, &r.res.SliceOverflows)
		return false
	}
	e := sliceEntry{idx: r.st.idx, seq: r.nextSeq(), ssn: r.csb.Tail()}
	e.poison = r.board.SrcPoison(in)
	r.captureSrcs(&e, in)

	switch in.Op {
	case isa.OpStore:
		if in.Src1.Valid() && r.board.Poison[in.Src1] != 0 {
			// Poisoned address: cannot chain into the store buffer.
			r.stallAdvance(r.st.idx, &r.res.PoisonAddrObs)
			return false // stall until the address un-poisons (§3.4)
		}
		ssn, ok := r.csb.Insert(in.Addr, 0, e.poison, r.st.idx)
		if !ok {
			r.stallAdvance(r.st.idx, &r.res.SBOverflows)
			return false
		}
		e.storeSSN = ssn
	case isa.OpBranch, isa.OpJump, isa.OpCall, isa.OpRet:
		e.predOK = r.st.predTaken == in.Taken
		r.pendingBranches++
	}

	id, ok := r.slice.Append(e)
	if !ok {
		r.stallAdvance(r.st.idx, &r.res.SliceOverflows)
		return false
	}
	// As in poisonLoad: the entry's poison bits may already be free.
	r.recheckPass = true
	r.board.WriteDst(in, r.cycle+1, e.poison, e.seq)
	if in.HasDst() {
		r.lastWriter[in.Dst] = id
	}
	r.res.AdvanceInsts++
	return true
}

// captureSrcs records where each input comes from: a captured
// miss-independent side value, or an older slice entry.
func (r *run) captureSrcs(e *sliceEntry, in *isa.Inst) {
	srcs := [2]isa.Reg{in.Src1, in.Src2}
	for k, s := range srcs {
		switch {
		case !s.Valid():
			e.srcs[k] = sliceSrc{kind: srcNone}
		case r.board.Poison[s] != 0:
			e.srcs[k] = sliceSrc{kind: srcSlice, prod: r.lastWriter[s]}
		default:
			e.srcs[k] = sliceSrc{kind: srcCaptured}
		}
	}
}

// ---- mode transitions ----

func (r *run) triggered(level mem.Level) bool {
	switch r.cfg.Trigger {
	case pipeline.TriggerL2Only:
		return level == mem.LevelMem
	case pipeline.TriggerPrimaryD1:
		if r.mode == modeAdvance {
			return level == mem.LevelMem
		}
		return level != mem.LevelL1
	case pipeline.TriggerAll:
		return level != mem.LevelL1
	}
	return false
}

// enterAdvance checkpoints the register file and transitions to advance
// mode. Unlike Runahead, nothing is flushed: the pipeline keeps flowing.
func (r *run) enterAdvance(idx int) {
	r.mode = modeAdvance
	r.res.Advances++
	r.ckpt = pipeline.TakeCheckpoint(&r.board, idx)
	r.ckptSSN = r.csb.Tail()
	r.seqCtr = 0
	for k := range r.board.Seq {
		r.board.Seq[k] = 0
	}
	r.scratch = pipeline.Scoreboard{}
	r.dirtyTail() // tailEarliest gates on the mode
}

// maybeExitAdvance returns to normal mode once the slice buffer is empty,
// no misses are pending, and no register is poisoned.
func (r *run) maybeExitAdvance() {
	if r.mode != modeAdvance {
		return
	}
	if r.slice.Empty() && len(r.pending) == 0 && !r.board.AnyPoisoned() {
		r.mode = modeNormal
		r.sig.Clear()
		r.dirtyTail() // tailEarliest gates on the mode
	}
}

// squash recovers from a mispredicted poisoned branch discovered during a
// rally: drop all state younger than the branch and resume execution at
// the branch itself.
//
// Recovering at the branch (rather than the epoch checkpoint) idealizes
// the recovery point: committed register state older than the branch is
// identified by the last-writer sequence numbers already maintained in
// RF0, so a replay from the branch reconstructs exactly the state a
// branch-local checkpoint would hold. DESIGN.md records this deviation
// from the paper's single-checkpoint description.
func (r *run) squash(branchIdx int, branchSSN uint64) {
	r.res.Squashes++
	// If a poisoned (value-pending) store older than the recovery point
	// survives, its slice entry is about to be discarded — roll the
	// recovery point back so that store re-executes.
	if ssn, idx, ok := r.csb.OldestPoisoned(branchSSN); ok {
		branchSSN = ssn - 1
		if idx < branchIdx {
			branchIdx = idx
		}
	}
	restoreAt := r.cycle + int64(r.cfg.FrontDepth)
	r.ckpt.Restore(&r.board, restoreAt)
	r.slice.Clear()
	r.csb.SquashTo(branchSSN)
	r.pending = r.pending[:0]
	for b := range r.bitPending {
		r.bitPending[b] = 0
	}
	r.passActive = false
	r.passBits = 0
	r.pendingBranches = 0
	r.sig.Clear()
	r.front.Flush(r.cycle)
	r.front.Redirect(r.cycle) // the mispredict itself
	r.res.BranchMispredicts++
	r.i = branchIdx
	r.st.valid = false
	r.dirtyTail()
	r.lastIssue = restoreAt
	r.mode = modeNormal
	r.stallSSN = 0
}

// ExternalStore models a coherence probe from another processor (§3.3):
// if the address hits the load signature while a checkpoint is
// outstanding, iCFP squashes to the checkpoint. It reports whether a
// squash occurred.
func (r *run) externalStore(addr uint64) bool {
	if r.mode != modeAdvance {
		return false
	}
	if !r.sig.Probe(addr) {
		return false
	}
	// External conflicts squash to the epoch checkpoint (§3.3).
	r.squash(r.ckpt.Index, r.ckptSSN)
	return true
}

// stallAdvance begins (at most once per stall episode) a simple-runahead
// excursion and counts the episode against the given counter.
func (r *run) stallAdvance(idx int, counter *uint64) {
	if r.cycle < r.sraUntil {
		return
	}
	*counter++
	if r.cfg.PoisonAddrPolicy == pipeline.PoisonAddrSimpleRunahead {
		r.prefetchAhead(idx)
	}
	r.sraUntil = r.earliestReturn()
}

// prefetchAhead approximates "simple runahead" mode (§3.4): when full
// advance cannot proceed (slice or store buffer exhausted, or a
// poisoned-address store), the machine keeps fetching and executing
// non-committing instructions for their prefetch effect. We model the
// prefetch effect without per-cycle simulation: walk forward issuing
// cache accesses for miss-independent loads until the next miss return.
func (r *run) prefetchAhead(from int) {
	horizon := r.earliestReturn()
	if horizon <= r.cycle {
		return
	}
	var poison [isa.NumRegs]bool
	for k := range poison {
		poison[k] = r.board.Poison[k] != 0
	}
	clock := r.cycle
	issued := 0
	for j := from + 1; j < r.end && clock < horizon && issued < 256; j++ {
		in := r.tr.At(j)
		p := (in.Src1.Valid() && poison[in.Src1]) || (in.Src2.Valid() && poison[in.Src2])
		if in.HasDst() {
			poison[in.Dst] = p
		}
		if in.Op == isa.OpLoad && !p {
			r.hier.Prefetch(clock, in.Addr)
			issued++
		}
		if in.Op == isa.OpBranch && p {
			break // unknown direction: stop prefetching
		}
		clock += 1 // ~IPC 1 pacing for the non-committal walk
	}
}

// checkValue asserts functional forwarding correctness when enabled.
func (r *run) checkValue(in *isa.Inst, got uint64) {
	if r.cfg.CheckValues && got != in.Val {
		panic(fmt.Sprintf("icfp: forwarded value %#x != trace value %#x at pc %#x", got, in.Val, in.PC))
	}
}
