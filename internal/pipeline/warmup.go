package pipeline

import (
	"icfp/internal/bpred"
	"icfp/internal/isa"
	"icfp/internal/mem"
)

// Warmup functionally replays the first n instructions of the trace into
// the caches and branch predictor without advancing simulated time,
// mirroring the paper's methodology ("each 1 million instruction sample is
// preceded by a 4 million instruction cache and predictor warmup period").
// Cache insertions go through normal LRU replacement, so capacity
// behaviour is preserved; the bus, MSHRs and stream buffers are untouched.
//
// Timing runs should then start at trace index n with all registers ready.
func Warmup(h *mem.Hierarchy, p *bpred.Predictor, tr *isa.Trace, n int) {
	WarmRange(h, p, tr, 0, n)
}

// WarmRange functionally replays trace indexes [lo, hi) into the caches
// and branch predictor, exactly as Warmup does for [0, n). Sampled runs
// use it to extend warmed state incrementally between measurement
// windows: warming [0, a) and then [a, b) leaves state identical to
// warming [0, b) in one pass, because warming is a pure left fold over
// the trace.
func WarmRange(h *mem.Hierarchy, p *bpred.Predictor, tr *isa.Trace, lo, hi int) {
	if hi > tr.Len() {
		hi = tr.Len()
	}
	for i := lo; i < hi; i++ {
		in := tr.At(i)
		if !h.ICache.Lookup(in.PC, false) {
			h.L2.Lookup(in.PC, false)
			h.L2.Insert(in.PC, false)
			h.ICache.Insert(in.PC, false)
		}
		switch in.Op {
		case isa.OpLoad, isa.OpStore:
			write := in.Op == isa.OpStore
			if !h.DCache.Lookup(in.Addr, write) {
				h.L2.Lookup(in.Addr, write)
				h.L2.Insert(in.Addr, write)
				h.DCache.Insert(in.Addr, write)
			}
		case isa.OpBranch:
			p.Predict(in.PC)
			p.Update(in.PC, in.Taken)
			if in.Taken {
				p.UpdateTarget(in.PC, in.Target)
			}
		case isa.OpJump, isa.OpCall, isa.OpRet:
			if in.Taken {
				p.UpdateTarget(in.PC, in.Target)
			}
		}
	}
}
