package pipeline

import "icfp/internal/mem"

// StoreBuffer is the conventional associatively-searched store buffer
// found in the baseline in-order pipeline (Table 1: 32 entries). Stores
// enter at issue and drain to the data cache in program order at one per
// cycle once their cache write completes; loads forward from the youngest
// matching older store.
type StoreBuffer struct {
	cap     int
	hier    *mem.Hierarchy
	entries []sbEntry
	// lastDrain is the completion cycle of the most recent drained store;
	// drains are serialized through the single cache write port.
	lastDrain int64

	Forwards uint64
}

type sbEntry struct {
	addr  uint64
	val   uint64
	done  int64 // cycle the entry's cache write completes (entry frees)
	valid bool
}

// NewStoreBuffer builds a store buffer of the given capacity draining
// into h. The entry backing is allocated once: occupancy never exceeds
// the capacity, so the compact/insert churn reuses it allocation-free.
func NewStoreBuffer(capacity int, h *mem.Hierarchy) *StoreBuffer {
	return &StoreBuffer{cap: capacity, hier: h, entries: make([]sbEntry, 0, capacity)}
}

// compact drops entries whose drain completed by cycle.
func (b *StoreBuffer) compact(cycle int64) {
	live := b.entries[:0]
	for _, e := range b.entries {
		if e.done > cycle {
			live = append(live, e)
		}
	}
	b.entries = live
}

// FullUntil returns the earliest cycle >= cycle at which a free entry
// exists, so callers can charge the stall before taking an issue slot.
func (b *StoreBuffer) FullUntil(cycle int64) int64 {
	b.compact(cycle)
	for len(b.entries) >= b.cap {
		oldest := b.entries[0].done
		for _, e := range b.entries {
			if e.done < oldest {
				oldest = e.done
			}
		}
		cycle = oldest
		b.compact(cycle)
	}
	return cycle
}

// Insert accepts a store issued at cycle and returns the cycle at which
// the store actually occupies an entry (later than cycle if the buffer is
// full and the pipeline must stall for a drain).
func (b *StoreBuffer) Insert(cycle int64, addr, val uint64) int64 {
	cycle = b.FullUntil(cycle)
	// Schedule this store's drain. Drain *initiations* are serialized
	// through the single cache write port (one per cycle), but their
	// completions overlap: a store miss occupies an MSHR, not the port.
	start := cycle
	if b.lastDrain+1 > start {
		start = b.lastDrain + 1
	}
	b.lastDrain = start
	r := b.hier.Data(start, addr, true)
	done := r.Done + 1
	b.entries = append(b.entries, sbEntry{addr: addr, val: val, done: done, valid: true})
	return cycle
}

// Forward returns the value of the youngest not-yet-drained store to addr
// at the given cycle.
func (b *StoreBuffer) Forward(cycle int64, addr uint64) (uint64, bool) {
	b.compact(cycle)
	for i := len(b.entries) - 1; i >= 0; i-- {
		if b.entries[i].addr == addr {
			b.Forwards++
			return b.entries[i].val, true
		}
	}
	return 0, false
}

// Occupancy returns the number of live entries at cycle.
func (b *StoreBuffer) Occupancy(cycle int64) int {
	b.compact(cycle)
	return len(b.entries)
}

// DrainDone returns the cycle by which everything currently buffered has
// written to the cache.
func (b *StoreBuffer) DrainDone() int64 {
	done := b.lastDrain
	for _, e := range b.entries {
		if e.done > done {
			done = e.done
		}
	}
	return done
}
