package pipeline

import (
	"icfp/internal/bpred"
	"icfp/internal/isa"
	"icfp/internal/mem"
)

// Frontend models instruction supply: I-cache access, branch prediction,
// and the fetch-to-issue latency. It exposes, for each trace index
// consumed in order, the earliest cycle that instruction can issue.
//
// The model is intentionally lean: instructions are consumed from the
// resolved trace; wrong-path fetch is charged as redirect latency rather
// than simulated instruction by instruction.
type Frontend struct {
	cfg   *Config
	hier  *mem.Hierarchy
	pred  *bpred.Predictor
	avail int64 // earliest issue cycle for the next instruction
	slot  int   // instructions already granted in the avail cycle
	line  uint64

	Mispredicts uint64
}

// NewFrontend builds a front end bound to the hierarchy and predictor.
func NewFrontend(cfg *Config, h *mem.Hierarchy, p *bpred.Predictor) *Frontend {
	return &Frontend{cfg: cfg, hier: h, pred: p, avail: int64(cfg.FrontDepth), line: ^uint64(0)}
}

// Avail returns the earliest cycle at which in can issue, accounting for
// fetch bandwidth (Width per cycle), I$ misses, and taken-branch target
// bubbles. Call it once per consumed instruction, in order.
func (f *Frontend) Avail(in *isa.Inst) int64 {
	// New I$ line: charge the instruction cache.
	lineAddr := in.PC &^ 63
	if lineAddr != f.line {
		f.line = lineAddr
		fetchCycle := f.avail - int64(f.cfg.FrontDepth)
		if fetchCycle < 0 {
			fetchCycle = 0
		}
		r := f.hier.Inst(fetchCycle, in.PC)
		if wait := r.Done - fetchCycle; wait > 0 {
			f.avail += wait
			f.slot = 0
		}
	}
	if f.slot >= f.cfg.Width {
		f.avail++
		f.slot = 0
	}
	cycle := f.avail
	f.slot++
	return cycle
}

// Predict runs the direction predictor and BTB for a control instruction
// and returns the predicted direction. It also charges taken-branch
// bubbles (BTB miss on a taken transfer costs a refetch bubble) and
// maintains the RAS. It does NOT train the direction predictor — call
// Train when the branch resolves (immediately for non-poisoned branches;
// at rally time for poisoned ones).
func (f *Frontend) Predict(in *isa.Inst) (predTaken bool) {
	switch in.Op {
	case isa.OpBranch:
		predTaken = f.pred.Predict(in.PC)
	case isa.OpJump:
		predTaken = true
	case isa.OpCall:
		predTaken = true
		f.pred.Push(in.PC + 4)
	case isa.OpRet:
		predTaken = true
		if tgt, ok := f.pred.Pop(); ok && tgt == in.Target {
			return true // RAS hit: no bubble
		}
	default:
		return false
	}
	if predTaken {
		if tgt, ok := f.pred.PredictTarget(in.PC); !ok || tgt != in.Target {
			// Taken transfer with unknown target: bubble until the target
			// computes in decode.
			f.avail += 2
			f.slot = 0
			f.pred.UpdateTarget(in.PC, in.Target)
		}
	}
	return predTaken
}

// Train updates the direction predictor with a resolved outcome.
func (f *Frontend) Train(in *isa.Inst) {
	if in.Op == isa.OpBranch {
		f.pred.Update(in.PC, in.Taken)
	}
}

// Redirect flushes the front end after a resolved misprediction: the next
// instruction cannot issue before resolveCycle plus the refill depth.
func (f *Frontend) Redirect(resolveCycle int64) {
	f.Mispredicts++
	f.Flush(resolveCycle)
}

// Flush charges a pipeline refill from resolveCycle without counting a
// misprediction (mode transitions, checkpoint restores, squashes).
func (f *Frontend) Flush(resolveCycle int64) {
	refill := resolveCycle + int64(f.cfg.FrontDepth)
	if refill > f.avail {
		f.avail = refill
		f.slot = 0
	}
	f.line = ^uint64(0)
}

// Stall pushes instruction supply back to no earlier than cycle without
// counting a misprediction (used when the back end blocks the pipe).
func (f *Frontend) Stall(cycle int64) {
	if cycle > f.avail {
		f.avail = cycle
		f.slot = 0
	}
}
