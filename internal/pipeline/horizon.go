package pipeline

// HorizonFar is the distance Horizon jumps when no event is known. It is
// large enough that a healthy simulation never legitimately reaches it
// between events, and small enough that a buggy core hits its watchdog
// bound after a handful of empty jumps instead of wrapping the clock.
const HorizonFar = int64(1_000_000)

// Horizon accumulates candidate future event cycles and yields the
// earliest one: the next cycle at which a cycle-driven core's state can
// possibly change. Cores use it to skip dead cycles — stretches where
// every pipe is stalled on an event whose completion time is already
// known (a miss return, a rally wake-up, a staged instruction's earliest
// issue cycle) — instead of burning one loop iteration per cycle.
//
// The contract that keeps skip-ahead byte-identical to strict
// cycle-by-cycle stepping: every state change the core can make must be
// covered by an Observe call — if a subsystem can make progress at cycle
// c and nothing else changes before c, some Observe(c') with c' <= c must
// have been issued. Observing too early is harmless (the core re-checks
// and re-observes); failing to observe an event skips it and diverges.
// See docs/ARCHITECTURE.md, "The cycle loop contract".
type Horizon struct {
	now  int64
	next int64
}

// Reset starts a new decision at the current cycle.
func (h *Horizon) Reset(now int64) {
	h.now = now
	h.next = now + HorizonFar
}

// Observe offers a candidate event cycle. Candidates at or before the
// current cycle are ignored: they describe work that was already
// attempted this cycle, not a future event.
func (h *Horizon) Observe(c int64) {
	if c > h.now && c < h.next {
		h.next = c
	}
}

// ObserveNext records that progress is possible on the very next cycle
// (e.g. a store buffer with a drainable head retries every cycle).
func (h *Horizon) ObserveNext() {
	if h.now+1 < h.next {
		h.next = h.now + 1
	}
}

// Next returns the cycle to jump to: the earliest observed future event,
// clamped to at least one cycle of progress.
func (h *Horizon) Next() int64 {
	if h.next <= h.now {
		return h.now + 1
	}
	return h.next
}

// Gate is the Horizon's dual, for instruction-driven cores: where a
// cycle-driven core asks "what is the EARLIEST future cycle at which
// anything can change?" and jumps there, an instruction-driven core asks
// "what is the LATEST readiness constraint on the next instruction?" and
// issues there directly — the degenerate, strongest form of skip-ahead,
// since no stalled cycle is ever visited at all. Runahead, Multipass and
// SLTP accumulate front-end availability, source readiness and in-order
// issue ordering through a Gate; iCFP's tail uses one for the same
// computation inside its cycle loop. See docs/ARCHITECTURE.md, "The
// cycle loop contract".
type Gate struct {
	at int64
}

// Reset starts a new constraint set with a floor cycle.
func (g *Gate) Reset(c int64) { g.at = c }

// Require adds a readiness constraint: issue cannot happen before c.
func (g *Gate) Require(c int64) {
	if c > g.at {
		g.at = c
	}
}

// At returns the earliest cycle satisfying every constraint so far.
func (g *Gate) At() int64 { return g.at }
