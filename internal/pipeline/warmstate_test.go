package pipeline

import (
	"testing"

	"icfp/internal/bpred"
	"icfp/internal/mem"
	"icfp/internal/workload"
)

// TestWarmStateIncrementalEqualsDirect pins the checkpoint store's core
// soundness claim: warmed state handed out by the series — built by
// cloning a shorter master and extending it — is indistinguishable from
// state warmed directly over the full prefix in one pass. The witness is
// behavioural: replaying the identical instruction suffix into both
// states must produce identical cache and predictor counters (warming is
// deterministic, so any divergence in cache contents, LRU order, victim
// buffers, or predictor tables would surface as a counter difference).
func TestWarmStateIncrementalEqualsDirect(t *testing.T) {
	const n, mid, upto = 20_000, 5_000, 15_000
	w := workload.SPEC("mcf", n)
	cfg := DefaultConfig()

	// Direct: one pass over [0, upto).
	dh := mem.New(cfg.Hier)
	if w.Prewarm != nil {
		w.Prewarm(dh)
	}
	dp := bpred.New(cfg.Bpred)
	WarmRange(dh, dp, w.Trace, 0, upto)

	// Series: a master at mid first, then upto — forcing the incremental
	// clone-and-extend path.
	if h, p := WarmState(w, cfg.Hier, cfg.Bpred, mid); h == nil || p == nil {
		t.Fatal("nil warm state")
	}
	sh, sp := WarmState(w, cfg.Hier, cfg.Bpred, upto)

	// Replay the identical suffix into both and compare every counter.
	WarmRange(dh, dp, w.Trace, upto, n)
	WarmRange(sh, sp, w.Trace, upto, n)

	type counters struct {
		ih, im, dhits, dm, vh, l2h, l2m uint64
		lookups, mispredicts            uint64
	}
	snap := func(h *mem.Hierarchy, p *bpred.Predictor) counters {
		return counters{
			ih: h.ICache.Hits, im: h.ICache.Misses,
			dhits: h.DCache.Hits, dm: h.DCache.Misses, vh: h.DCache.VictimHits,
			l2h: h.L2.Hits, l2m: h.L2.Misses,
			lookups: p.Lookups, mispredicts: p.Mispredicts,
		}
	}
	if d, s := snap(dh, dp), snap(sh, sp); d != s {
		t.Fatalf("incremental warm state diverged from direct warming:\ndirect %+v\nseries %+v", d, s)
	}
}

// TestWarmStateMastersAreImmutable pins that handed-out state is a
// private clone: mutating it must not corrupt the master other callers
// receive.
func TestWarmStateMastersAreImmutable(t *testing.T) {
	const n, upto = 10_000, 8_000
	w := workload.SPEC("gzip", n)
	cfg := DefaultConfig()

	h1, p1 := WarmState(w, cfg.Hier, cfg.Bpred, upto)
	// Trash the first clone.
	for a := uint64(1 << 30); a < 1<<30+1<<20; a += 64 {
		h1.DCache.Lookup(a, true)
		h1.DCache.Insert(a, true)
		p1.Update(a, a%3 == 0)
	}
	h2, p2 := WarmState(w, cfg.Hier, cfg.Bpred, upto)
	if h2.DCache.Hits == h1.DCache.Hits && h2.DCache.Misses == h1.DCache.Misses {
		t.Fatal("second clone shows the first clone's mutations")
	}
	// A clean clone replayed forward must match direct warming, proving
	// the master did not absorb the first clone's writes.
	dh := mem.New(cfg.Hier)
	if w.Prewarm != nil {
		w.Prewarm(dh)
	}
	dp := bpred.New(cfg.Bpred)
	WarmRange(dh, dp, w.Trace, 0, upto)
	WarmRange(dh, dp, w.Trace, upto, n)
	WarmRange(h2, p2, w.Trace, upto, n)
	if dh.DCache.Hits != h2.DCache.Hits || dh.DCache.Misses != h2.DCache.Misses ||
		dp.Lookups != p2.Lookups || dp.Mispredicts != p2.Mispredicts {
		t.Fatal("master corrupted by a previous clone's mutations")
	}
}
