package pipeline

import "icfp/internal/isa"

// SlotAlloc tracks issue-port usage cycle by cycle: Width total slots, of
// which at most IntPorts may be integer ops and at most MemFPBrPorts may
// be fp/load/store/branch ops (Table 1: "2-way superscalar, 2 integer,
// 1 fp/load/store/branch").
//
// Issue times must be requested in non-decreasing order; the allocator
// advances an internal current cycle and resets counts on each new cycle.
type SlotAlloc struct {
	cfg   *Config
	cycle int64
	total int
	ints  int
	mems  int
}

// NewSlotAlloc builds an allocator for cfg's port plan.
func NewSlotAlloc(cfg *Config) *SlotAlloc { return &SlotAlloc{cfg: cfg, cycle: -1} }

// IsMemFPBr reports whether op issues on the shared fp/load/store/branch
// port (as opposed to an integer port).
func IsMemFPBr(op isa.Op) bool {
	switch op {
	case isa.OpLoad, isa.OpStore, isa.OpFAdd, isa.OpFMul,
		isa.OpBranch, isa.OpJump, isa.OpCall, isa.OpRet:
		return true
	}
	return false
}

func (s *SlotAlloc) advanceTo(cycle int64) {
	if cycle > s.cycle {
		s.cycle = cycle
		s.total, s.ints, s.mems = 0, 0, 0
	}
}

// Take allocates a slot for op at the earliest cycle >= earliest and
// returns that cycle.
func (s *SlotAlloc) Take(earliest int64, op isa.Op) int64 {
	s.advanceTo(earliest)
	for !s.fits(op) {
		s.advanceTo(s.cycle + 1)
	}
	s.use(op)
	return s.cycle
}

// TakeStrict is Take without the skip: it steps the allocator one cycle
// at a time from the current cycle until op fits. The result and end
// state are identical to Take's — the strict-vs-skip-ahead equivalence
// tests use it to pin that the jump in advanceTo never changes what a
// core observes.
func (s *SlotAlloc) TakeStrict(earliest int64, op isa.Op) int64 {
	c := s.cycle
	if c < 0 {
		c = 0
	}
	if earliest > c {
		c = earliest
	}
	for !s.TryTake(c, op) {
		c++
	}
	return c
}

// Peek returns the cycle Take would allocate for op at earliest, without
// mutating allocator state. Cores use it to decide whether an instruction
// would issue before a deadline (e.g. an advance-mode miss return).
func (s *SlotAlloc) Peek(earliest int64, op isa.Op) int64 {
	if earliest > s.cycle {
		return earliest // fresh cycle: all ports free
	}
	if s.fits(op) {
		return s.cycle
	}
	return s.cycle + 1
}

// TryTake allocates a slot only if one is free exactly at cycle; it
// reports success. Cores use it when interleaving two streams (rally and
// tail) in the same cycle.
func (s *SlotAlloc) TryTake(cycle int64, op isa.Op) bool {
	s.advanceTo(cycle)
	if s.cycle != cycle || !s.fits(op) {
		return false
	}
	s.use(op)
	return true
}

func (s *SlotAlloc) fits(op isa.Op) bool {
	if s.total >= s.cfg.Width {
		return false
	}
	if IsMemFPBr(op) {
		return s.mems < s.cfg.MemFPBrPorts
	}
	return s.ints < s.cfg.IntPorts
}

func (s *SlotAlloc) use(op isa.Op) {
	s.total++
	if IsMemFPBr(op) {
		s.mems++
	} else {
		s.ints++
	}
}

// Cycle returns the allocator's current cycle (the last one issued into).
func (s *SlotAlloc) Cycle() int64 { return s.cycle }
