package pipeline

import "icfp/internal/isa"

// Scoreboard tracks, for every architectural register: the cycle its
// latest value becomes available (for stall-on-use scheduling), its poison
// bitvector (advance-mode miss dependence tracking, §3.4), and its
// last-writer sequence number (distance from the checkpoint, used to gate
// rally-time updates against write-after-write hazards, §3.1).
type Scoreboard struct {
	Ready  [isa.NumRegs]int64
	Poison [isa.NumRegs]uint8
	Seq    [isa.NumRegs]uint64
}

// SrcReady returns the cycle by which all of in's sources are available.
func (s *Scoreboard) SrcReady(in *isa.Inst) int64 {
	var t int64
	if in.Src1.Valid() && s.Ready[in.Src1] > t {
		t = s.Ready[in.Src1]
	}
	if in.Src2.Valid() && s.Ready[in.Src2] > t {
		t = s.Ready[in.Src2]
	}
	return t
}

// SrcPoison returns the union of the sources' poison vectors.
func (s *Scoreboard) SrcPoison(in *isa.Inst) uint8 {
	var p uint8
	if in.Src1.Valid() {
		p |= s.Poison[in.Src1]
	}
	if in.Src2.Valid() {
		p |= s.Poison[in.Src2]
	}
	return p
}

// WriteDst records a completed write: value ready at done, poison vector
// p (0 un-poisons), and last-writer sequence number seq.
func (s *Scoreboard) WriteDst(in *isa.Inst, done int64, p uint8, seq uint64) {
	if !in.HasDst() {
		return
	}
	s.Ready[in.Dst] = done
	s.Poison[in.Dst] = p
	s.Seq[in.Dst] = seq
}

// ClearPoison erases all poison state (e.g. on checkpoint restore).
func (s *Scoreboard) ClearPoison() {
	for i := range s.Poison {
		s.Poison[i] = 0
	}
}

// AnyPoisoned reports whether any register is poisoned.
func (s *Scoreboard) AnyPoisoned() bool {
	for _, p := range s.Poison {
		if p != 0 {
			return true
		}
	}
	return false
}

// SettleAll forces every register available by the given cycle (used on
// checkpoint restore, when architectural state is rebuilt wholesale).
func (s *Scoreboard) SettleAll(cycle int64) {
	for i := range s.Ready {
		if s.Ready[i] > cycle {
			s.Ready[i] = cycle
		}
	}
}
