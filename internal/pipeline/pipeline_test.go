package pipeline

import (
	"testing"

	"icfp/internal/bpred"
	"icfp/internal/isa"
	"icfp/internal/mem"
)

func TestSlotAllocPorts(t *testing.T) {
	cfg := DefaultConfig() // 2-wide, 2 int, 1 memfpbr
	s := NewSlotAlloc(&cfg)
	if c := s.Take(10, isa.OpALU); c != 10 {
		t.Fatalf("first int at %d", c)
	}
	if c := s.Take(10, isa.OpALU); c != 10 {
		t.Fatalf("second int at %d", c)
	}
	// Width exhausted: third op moves to cycle 11.
	if c := s.Take(10, isa.OpALU); c != 11 {
		t.Fatalf("third int at %d, want 11", c)
	}
	if c := s.Take(11, isa.OpLoad); c != 11 {
		t.Fatalf("load at %d", c)
	}
	// Only one mem/fp/br port per cycle.
	if c := s.Take(11, isa.OpBranch); c != 12 {
		t.Fatalf("branch at %d, want 12", c)
	}
}

func TestSlotAllocPeekDoesNotMutate(t *testing.T) {
	cfg := DefaultConfig()
	s := NewSlotAlloc(&cfg)
	s.Take(5, isa.OpLoad)
	if p := s.Peek(5, isa.OpStore); p != 6 {
		t.Fatalf("peek = %d, want 6 (mem port busy)", p)
	}
	// Peek must not have consumed anything.
	if c := s.Take(5, isa.OpALU); c != 5 {
		t.Fatalf("int slot consumed by peek: %d", c)
	}
}

func TestSlotAllocTryTake(t *testing.T) {
	cfg := DefaultConfig()
	s := NewSlotAlloc(&cfg)
	if !s.TryTake(7, isa.OpLoad) {
		t.Fatal("first load must fit")
	}
	if s.TryTake(7, isa.OpStore) {
		t.Fatal("second mem op must not fit at the same cycle")
	}
	if !s.TryTake(8, isa.OpStore) {
		t.Fatal("next cycle must fit")
	}
}

func TestScoreboard(t *testing.T) {
	var b Scoreboard
	in := &isa.Inst{Op: isa.OpALU, Dst: isa.IntReg(3), Src1: isa.IntReg(1), Src2: isa.IntReg(2)}
	b.Ready[isa.IntReg(1)] = 10
	b.Ready[isa.IntReg(2)] = 20
	if r := b.SrcReady(in); r != 20 {
		t.Fatalf("SrcReady = %d", r)
	}
	b.Poison[isa.IntReg(2)] = 0b101
	if p := b.SrcPoison(in); p != 0b101 {
		t.Fatalf("SrcPoison = %b", p)
	}
	b.WriteDst(in, 42, 0b1, 7)
	if b.Ready[in.Dst] != 42 || b.Poison[in.Dst] != 1 || b.Seq[in.Dst] != 7 {
		t.Fatal("WriteDst did not record state")
	}
	if !b.AnyPoisoned() {
		t.Fatal("poison must be visible")
	}
	b.ClearPoison()
	if b.AnyPoisoned() {
		t.Fatal("ClearPoison failed")
	}
}

func TestCheckpointRestore(t *testing.T) {
	var b Scoreboard
	b.Ready[5] = 100
	b.Seq[5] = 9
	ck := TakeCheckpoint(&b, 42)
	b.Ready[5] = 999
	b.Poison[5] = 1
	b.Seq[5] = 10
	ck.Restore(&b, 500)
	if b.Ready[5] != 500 {
		t.Fatalf("restored ready = %d (value available at restore time)", b.Ready[5])
	}
	if b.Poison[5] != 0 || b.Seq[5] != 9 {
		t.Fatal("restore must clear poison and rewind seq")
	}
	// An in-flight value completing after the restore keeps its time.
	var c Scoreboard
	c.Ready[1] = 800
	ck2 := TakeCheckpoint(&c, 0)
	c.Ready[1] = 5
	ck2.Restore(&c, 500)
	if c.Ready[1] != 800 {
		t.Fatalf("late value must keep its completion: %d", c.Ready[1])
	}
}

func TestRunaheadCache(t *testing.T) {
	rc := NewRunaheadCache(2)
	rc.Put(0x100, 1, 0)
	rc.Put(0x200, 2, 3)
	if v, p, ok := rc.Get(0x200); !ok || v != 2 || p != 3 {
		t.Fatalf("Get = %d,%d,%v", v, p, ok)
	}
	rc.Put(0x300, 3, 0) // evicts 0x100 (FIFO)
	if _, _, ok := rc.Get(0x100); ok {
		t.Fatal("FIFO eviction expected")
	}
	if rc.Evictions != 1 || rc.Len() != 2 {
		t.Fatalf("evictions=%d len=%d", rc.Evictions, rc.Len())
	}
	rc.Put(0x200, 9, 0) // update in place: no eviction
	if rc.Evictions != 1 {
		t.Fatal("update must not evict")
	}
	rc.Clear()
	if rc.Len() != 0 {
		t.Fatal("Clear failed")
	}
}

func TestStoreBufferForwardAndDrain(t *testing.T) {
	h := mem.New(mem.DefaultConfig())
	sb := NewStoreBuffer(4, h)
	sb.Insert(10, 0x1000, 55)
	if v, ok := sb.Forward(11, 0x1000); !ok || v != 55 {
		t.Fatalf("forward = %d,%v", v, ok)
	}
	// After the drain completes the entry is gone.
	done := sb.DrainDone()
	if _, ok := sb.Forward(done+1, 0x1000); ok {
		t.Fatal("drained store must not forward")
	}
}

func TestStoreBufferCapacityStall(t *testing.T) {
	h := mem.New(mem.DefaultConfig())
	sb := NewStoreBuffer(2, h)
	// Two misses fill the buffer; their drains take hundreds of cycles.
	sb.Insert(0, 0x10000, 1)
	sb.Insert(0, 0x20000, 2)
	if free := sb.FullUntil(1); free <= 1 {
		t.Fatalf("full buffer must stall: FullUntil = %d", free)
	}
}

func TestFrontendBandwidthAndRedirect(t *testing.T) {
	cfg := DefaultConfig()
	h := mem.New(cfg.Hier)
	p := bpred.New(cfg.Bpred)
	// Warm the line so fetch is not I$-bound.
	h.ICache.Insert(0x1000, false)
	h.L2.Insert(0x1000, false)
	f := NewFrontend(&cfg, h, p)
	in := &isa.Inst{PC: 0x1000, Op: isa.OpALU}
	c1 := f.Avail(in)
	c2 := f.Avail(in)
	c3 := f.Avail(in)
	if c1 != c2 {
		t.Fatalf("2-wide fetch: %d vs %d", c1, c2)
	}
	if c3 != c1+1 {
		t.Fatalf("third instruction must wait a cycle: %d vs %d", c3, c1)
	}
	f.Redirect(100)
	if c := f.Avail(in); c < 100+int64(cfg.FrontDepth) {
		t.Fatalf("post-redirect avail = %d, want >= %d", c, 100+cfg.FrontDepth)
	}
	if f.Mispredicts != 1 {
		t.Fatalf("Mispredicts = %d", f.Mispredicts)
	}
}

func TestFrontendIcacheMissStallsFetch(t *testing.T) {
	cfg := DefaultConfig()
	h := mem.New(cfg.Hier)
	p := bpred.New(cfg.Bpred)
	f := NewFrontend(&cfg, h, p)
	in := &isa.Inst{PC: 0x1000, Op: isa.OpALU}
	c := f.Avail(in) // cold I$: miss to memory
	if c < int64(cfg.Hier.MemLat) {
		t.Fatalf("cold ifetch available at %d, must wait for memory", c)
	}
}

func TestWarmupPopulatesStructures(t *testing.T) {
	cfg := DefaultConfig()
	h := mem.New(cfg.Hier)
	p := bpred.New(cfg.Bpred)
	tr := &isa.Trace{Insts: []isa.Inst{
		{PC: 0x1000, Op: isa.OpLoad, Dst: isa.IntReg(1), Addr: 0x5000, Size: 8},
		{PC: 0x1004, Op: isa.OpBranch, Src1: isa.IntReg(1), Taken: true, Target: 0x1000},
	}}
	Warmup(h, p, tr, 2)
	if h.ProbeData(0x5000) != mem.LevelL1 {
		t.Fatal("warmup must fill the D$")
	}
	if !h.ICache.Probe(0x1000) {
		t.Fatal("warmup must fill the I$")
	}
	if tgt, ok := p.PredictTarget(0x1004); !ok || tgt != 0x1000 {
		t.Fatal("warmup must train the BTB")
	}
}

func TestResultHelpers(t *testing.T) {
	r := Result{Cycles: 200, Insts: 100}
	if r.IPC() != 0.5 {
		t.Fatalf("IPC = %v", r.IPC())
	}
	base := Result{Cycles: 300}
	if sp := r.SpeedupOver(base); sp != 50 {
		t.Fatalf("speedup = %v, want 50", sp)
	}
	var zero Result
	if zero.IPC() != 0 || zero.SpeedupOver(base) != 0 {
		t.Fatal("zero-cycle results must not divide by zero")
	}
}

func TestTriggerString(t *testing.T) {
	for tr, want := range map[AdvanceTrigger]string{
		TriggerL2Only: "L2-only", TriggerPrimaryD1: "L2+primaryD$",
		TriggerAll: "all", AdvanceTrigger(9): "?",
	} {
		if tr.String() != want {
			t.Errorf("%d = %q", tr, tr.String())
		}
	}
}

func TestFrontendCallReturnUsesRAS(t *testing.T) {
	cfg := DefaultConfig()
	h := mem.New(cfg.Hier)
	p := bpred.New(cfg.Bpred)
	// Warm code lines.
	for _, pc := range []uint64{0x1000, 0x2000} {
		h.ICache.Insert(pc, false)
		h.L2.Insert(pc, false)
	}
	f := NewFrontend(&cfg, h, p)

	call := &isa.Inst{PC: 0x1000, Op: isa.OpCall, Taken: true, Target: 0x2000}
	ret := &isa.Inst{PC: 0x2000, Op: isa.OpRet, Taken: true, Target: 0x1004}

	f.Avail(call)
	if !f.Predict(call) {
		t.Fatal("calls are always predicted taken")
	}
	f.Avail(ret)
	before := f.avail
	if !f.Predict(ret) {
		t.Fatal("returns are always predicted taken")
	}
	// A RAS hit means no target bubble was charged.
	if f.avail != before {
		t.Fatalf("RAS hit must not bubble: avail %d -> %d", before, f.avail)
	}

	// A return with an empty RAS (mismatched target) costs a bubble the
	// first time (BTB cold).
	f2 := NewFrontend(&cfg, h, bpred.New(cfg.Bpred))
	f2.Avail(ret)
	b2 := f2.avail
	f2.Predict(ret)
	if f2.avail == b2 {
		t.Fatal("cold return without RAS must charge a target bubble")
	}
}
