package pipeline

import "icfp/internal/isa"

// AdvanceTrigger selects which load misses push a machine from normal
// execution into advance mode (Figures 5 and 6 sweep this):
type AdvanceTrigger int

// Trigger levels.
const (
	// TriggerL2Only advances only under misses that leave the L2
	// (Runahead's and SLTP's best configuration at a 20-cycle L2).
	TriggerL2Only AdvanceTrigger = iota
	// TriggerPrimaryD1 also advances under primary data-cache misses
	// (Multipass's configuration).
	TriggerPrimaryD1
	// TriggerAll advances under every miss, including secondary data
	// cache misses (iCFP's configuration).
	TriggerAll
)

// String names the trigger for experiment output.
func (t AdvanceTrigger) String() string {
	switch t {
	case TriggerL2Only:
		return "L2-only"
	case TriggerPrimaryD1:
		return "L2+primaryD$"
	case TriggerAll:
		return "all"
	}
	return "?"
}

// RunaheadCache is the small forwarding cache Runahead and Multipass use
// for advance-mode stores (256 entries in Table 1). It offers only
// best-effort forwarding: entries may be evicted (FIFO) and everything is
// discarded when advance mode ends.
//
// The backing storage is a fixed ring of capacity slots in FIFO
// (insertion) order plus an addr→slot index, all allocated at
// construction: the Put/Get/Clear cycle of an advance episode allocates
// nothing, no matter how many episodes a run enters.
//
// The index is an open-addressed linear-probe table rather than a Go
// map: Multipass enters thousands of short episodes per run, and a map
// pays a hashed lookup per advance load/store plus a full bucket sweep
// per episode exit. Here a lookup is a multiply and a short probe, and
// Clear is one epoch increment — slots are live only while their stamp
// matches the current epoch. Evicting a ring entry removes its key with
// standard backshift deletion, so probe chains stay exact and the table
// (sized 4× capacity, load factor ≤ ¼) never needs tombstones.
type RunaheadCache struct {
	cap    int
	addr   []uint64 // ring, FIFO order: slots start..start+n-1 mod cap
	val    []uint64
	poison []uint8
	start  int
	n      int

	// addr → ring slot index. A table slot i holds key[i] iff
	// epoch[i] == cur; Clear bumps cur to empty the table in O(1).
	key   []uint64
	slot  []int32
	epoch []uint32
	cur   uint32
	mask  uint64

	Evictions uint64
}

// NewRunaheadCache builds a runahead cache with the given entry count.
func NewRunaheadCache(capacity int) *RunaheadCache {
	size := 4
	for size < 4*capacity {
		size *= 2
	}
	return &RunaheadCache{
		cap:    capacity,
		addr:   make([]uint64, capacity),
		val:    make([]uint64, capacity),
		poison: make([]uint8, capacity),
		key:    make([]uint64, size),
		slot:   make([]int32, size),
		epoch:  make([]uint32, size),
		cur:    1,
		mask:   uint64(size - 1),
	}
}

// find probes for addr. It returns the table index holding it (ok) or
// the empty slot where it would be inserted (!ok).
func (r *RunaheadCache) find(addr uint64) (int, bool) {
	i := (addr * 0x9E3779B97F4A7C15) & r.mask
	for {
		if r.epoch[i] != r.cur {
			return int(i), false
		}
		if r.key[i] == addr {
			return int(i), true
		}
		i = (i + 1) & r.mask
	}
}

// remove deletes addr's table entry by backshift: later entries in the
// probe chain that hash at or before the vacated slot shift into it, so
// no tombstone is left behind.
func (r *RunaheadCache) remove(addr uint64) {
	i, ok := r.find(addr)
	if !ok {
		return
	}
	hole := uint64(i)
	j := hole
	for {
		j = (j + 1) & r.mask
		if r.epoch[j] != r.cur {
			break
		}
		h := (r.key[j] * 0x9E3779B97F4A7C15) & r.mask
		// Shift j into the hole unless j's home position lies in the
		// cyclic range (hole, j] — then the hole doesn't break j's chain.
		var shift bool
		if j > hole {
			shift = h <= hole || h > j
		} else {
			shift = h <= hole && h > j
		}
		if shift {
			r.key[hole], r.slot[hole] = r.key[j], r.slot[j]
			r.epoch[hole] = r.cur
			r.epoch[j] = 0
			hole = j
		}
	}
	r.epoch[hole] = 0
}

// Put records an advance store. A poisoned store records poison so that
// loads forwarding from it are poisoned too. Updating an existing address
// keeps its original FIFO position.
func (r *RunaheadCache) Put(addr, val uint64, poison uint8) {
	i, ok := r.find(addr)
	if ok {
		p := r.slot[i]
		r.val[p] = val
		r.poison[p] = poison
		return
	}
	if r.n >= r.cap {
		r.remove(r.addr[r.start])
		r.start++
		if r.start == r.cap {
			r.start = 0
		}
		r.n--
		r.Evictions++
		// The backshift may have moved addr's insertion point.
		i, _ = r.find(addr)
	}
	p := r.start + r.n
	if p >= r.cap {
		p -= r.cap
	}
	r.addr[p] = addr
	r.val[p] = val
	r.poison[p] = poison
	r.key[i] = addr
	r.slot[i] = int32(p)
	r.epoch[i] = r.cur
	r.n++
}

// Get returns the forwarded value and poison for addr, if present.
func (r *RunaheadCache) Get(addr uint64) (val uint64, poison uint8, ok bool) {
	i, ok := r.find(addr)
	if !ok {
		return 0, 0, false
	}
	p := r.slot[i]
	return r.val[p], r.poison[p], true
}

// Clear empties the cache (at advance-mode exit) without releasing any
// storage: bumping the epoch empties the index in O(1).
func (r *RunaheadCache) Clear() {
	r.cur++
	if r.cur == 0 { // epoch wrap: stale stamps could alias, reset them
		clear(r.epoch)
		r.cur = 1
	}
	r.start, r.n = 0, 0
}

// Len returns the number of live entries.
func (r *RunaheadCache) Len() int { return r.n }

// Checkpoint snapshots the scoreboard so that checkpoint-based machines
// (Runahead, Multipass, SLTP, iCFP on a squash) can restore register
// availability state.
type Checkpoint struct {
	Ready [isa.NumRegs]int64
	Seq   [isa.NumRegs]uint64
	Index int // trace index of the checkpointed (triggering) instruction
}

// TakeCheckpoint captures the scoreboard at trace index idx.
func TakeCheckpoint(b *Scoreboard, idx int) Checkpoint {
	return Checkpoint{Ready: b.Ready, Seq: b.Seq, Index: idx}
}

// Restore rewinds the scoreboard to the checkpoint, clearing poison. Any
// register whose value had not yet arrived by `at` keeps its original
// ready time; everything else is available at `at`.
func (c *Checkpoint) Restore(b *Scoreboard, at int64) {
	for i := range b.Ready {
		b.Ready[i] = c.Ready[i]
		if b.Ready[i] < at {
			b.Ready[i] = at
		}
		b.Seq[i] = c.Seq[i]
		b.Poison[i] = 0
	}
}
