package pipeline

import "icfp/internal/isa"

// AdvanceTrigger selects which load misses push a machine from normal
// execution into advance mode (Figures 5 and 6 sweep this):
type AdvanceTrigger int

// Trigger levels.
const (
	// TriggerL2Only advances only under misses that leave the L2
	// (Runahead's and SLTP's best configuration at a 20-cycle L2).
	TriggerL2Only AdvanceTrigger = iota
	// TriggerPrimaryD1 also advances under primary data-cache misses
	// (Multipass's configuration).
	TriggerPrimaryD1
	// TriggerAll advances under every miss, including secondary data
	// cache misses (iCFP's configuration).
	TriggerAll
)

// String names the trigger for experiment output.
func (t AdvanceTrigger) String() string {
	switch t {
	case TriggerL2Only:
		return "L2-only"
	case TriggerPrimaryD1:
		return "L2+primaryD$"
	case TriggerAll:
		return "all"
	}
	return "?"
}

// RunaheadCache is the small forwarding cache Runahead and Multipass use
// for advance-mode stores (256 entries in Table 1). It offers only
// best-effort forwarding: entries may be evicted (FIFO) and everything is
// discarded when advance mode ends.
type RunaheadCache struct {
	cap  int
	m    map[uint64]raEntry
	fifo []uint64

	Evictions uint64
}

type raEntry struct {
	val    uint64
	poison uint8
}

// NewRunaheadCache builds a runahead cache with the given entry count.
func NewRunaheadCache(capacity int) *RunaheadCache {
	return &RunaheadCache{cap: capacity, m: make(map[uint64]raEntry)}
}

// Put records an advance store. A poisoned store records poison so that
// loads forwarding from it are poisoned too.
func (r *RunaheadCache) Put(addr, val uint64, poison uint8) {
	if _, ok := r.m[addr]; !ok {
		if len(r.fifo) >= r.cap {
			old := r.fifo[0]
			r.fifo = r.fifo[1:]
			delete(r.m, old)
			r.Evictions++
		}
		r.fifo = append(r.fifo, addr)
	}
	r.m[addr] = raEntry{val: val, poison: poison}
}

// Get returns the forwarded value and poison for addr, if present.
func (r *RunaheadCache) Get(addr uint64) (val uint64, poison uint8, ok bool) {
	e, ok := r.m[addr]
	return e.val, e.poison, ok
}

// Clear empties the cache (at advance-mode exit).
func (r *RunaheadCache) Clear() {
	r.m = make(map[uint64]raEntry)
	r.fifo = r.fifo[:0]
}

// Len returns the number of live entries.
func (r *RunaheadCache) Len() int { return len(r.m) }

// Checkpoint snapshots the scoreboard so that checkpoint-based machines
// (Runahead, Multipass, SLTP, iCFP on a squash) can restore register
// availability state.
type Checkpoint struct {
	Ready [isa.NumRegs]int64
	Seq   [isa.NumRegs]uint64
	Index int // trace index of the checkpointed (triggering) instruction
}

// TakeCheckpoint captures the scoreboard at trace index idx.
func TakeCheckpoint(b *Scoreboard, idx int) Checkpoint {
	return Checkpoint{Ready: b.Ready, Seq: b.Seq, Index: idx}
}

// Restore rewinds the scoreboard to the checkpoint, clearing poison. Any
// register whose value had not yet arrived by `at` keeps its original
// ready time; everything else is available at `at`.
func (c *Checkpoint) Restore(b *Scoreboard, at int64) {
	for i := range b.Ready {
		b.Ready[i] = c.Ready[i]
		if b.Ready[i] < at {
			b.Ready[i] = at
		}
		b.Seq[i] = c.Seq[i]
		b.Poison[i] = 0
	}
}
