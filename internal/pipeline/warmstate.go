package pipeline

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"icfp/internal/bpred"
	"icfp/internal/mem"
	"icfp/internal/workload"
)

// WarmState returns a private hierarchy and predictor functionally
// warmed over trace indexes [0, upto) of w — the machine-independent
// warmed state a detailed window starts from.
//
// The warmed state is a checkpoint shared through the workload itself:
// all machines whose hierarchy and predictor configurations agree (the
// common case — every model in a sweep runs the Table 1 memory system)
// share one warm-state series per workload, keyed by the canonical
// encoding of those configurations. The series warms each prefix once —
// extending incrementally from the longest previously warmed prefix, so
// a sampled run's k window starts cost one pass over the trace, not k —
// and hands out exact clones, so a registry sweep warms once per
// workload instead of once per job. Exactness of the clones (a run
// started from a clone is byte-identical to a run started from directly
// warmed state) is pinned by the warm-state equivalence tests and,
// transitively, by the committed -all golden.
func WarmState(w *workload.Workload, hierCfg mem.Config, bpredCfg bpred.Config, upto int) (*mem.Hierarchy, *bpred.Predictor) {
	key := warmKey(hierCfg, bpredCfg)
	s := w.SharedState(key, func() any {
		return &warmSeries{w: w, hierCfg: hierCfg, bpredCfg: bpredCfg}
	}).(*warmSeries)
	return s.at(upto)
}

// warmKey is the shared-state key of a warm series: machines agree on
// warmed state exactly when they agree on the hierarchy and predictor
// configurations. Struct JSON marshalling has a fixed field order, so
// the encoding is deterministic.
func warmKey(hierCfg mem.Config, bpredCfg bpred.Config) string {
	b, err := json.Marshal(struct {
		H mem.Config
		B bpred.Config
	}{hierCfg, bpredCfg})
	if err != nil {
		panic(fmt.Sprintf("pipeline: warm-state key encoding: %v", err))
	}
	return "pipeline.warm:" + string(b)
}

// warmSeries holds warmed-state masters for one (workload, hierarchy
// config, predictor config) triple at increasing trace prefixes.
type warmSeries struct {
	w        *workload.Workload
	hierCfg  mem.Config
	bpredCfg bpred.Config

	mu      sync.Mutex
	masters []warmMaster // ascending by upto
}

// warmMaster is the warmed state after functionally replaying [0, upto).
// Masters are immutable once stored; callers always receive clones.
type warmMaster struct {
	upto int
	hier *mem.Hierarchy
	pred *bpred.Predictor
}

// at returns clones of the master warmed to upto, creating it — by
// extending the longest existing shorter master — if needed. Window
// starts ascend within a run and coincide across machines running the
// same policy, so in the steady state every call either clones an
// existing master or extends the newest one by a single inter-window
// gap.
func (s *warmSeries) at(upto int) (*mem.Hierarchy, *bpred.Predictor) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Largest master with .upto <= upto.
	i := sort.Search(len(s.masters), func(i int) bool { return s.masters[i].upto > upto }) - 1
	if i >= 0 && s.masters[i].upto == upto {
		m := s.masters[i]
		return m.hier.Clone(), m.pred.Clone()
	}
	var hier *mem.Hierarchy
	var pred *bpred.Predictor
	lo := 0
	if i >= 0 {
		hier = s.masters[i].hier.Clone()
		pred = s.masters[i].pred.Clone()
		lo = s.masters[i].upto
	} else {
		hier = mem.New(s.hierCfg)
		if s.w.Prewarm != nil {
			s.w.Prewarm(hier)
		}
		pred = bpred.New(s.bpredCfg)
	}
	WarmRange(hier, pred, s.w.Trace, lo, upto)
	m := warmMaster{upto: upto, hier: hier, pred: pred}
	s.masters = append(s.masters, warmMaster{})
	copy(s.masters[i+2:], s.masters[i+1:])
	s.masters[i+1] = m
	return m.hier.Clone(), m.pred.Clone()
}
