package pipeline

import (
	"math/rand"

	"icfp/internal/bpred"
	"icfp/internal/mem"
	"icfp/internal/stats"
	"icfp/internal/workload"
)

// SamplePolicy declares SMARTS-style interval sampling (Wunderlich et
// al., ISCA'03): the trace is split into fixed strata of Period
// instructions, one detailed-measurement window of Interval instructions
// is placed in each stratum, and the state between windows advances by
// functional warming only (caches and predictor, no timing). The zero
// policy means full simulation.
type SamplePolicy struct {
	// Interval is the detailed instructions measured per window.
	Interval int
	// Period is the stratum length: one window per Period instructions.
	// Period == Interval measures everything (a full run, byte-identical
	// to the unsampled path by construction — the windows coalesce).
	Period int
	// Warmup is the minimum functionally-warmed prefix before the first
	// window may begin; the machine's own WarmupInsts still applies, so
	// the measured region starts at max(machine warmup, Warmup).
	Warmup int
	// Ramp is the detailed-warming length (SMARTS "detailed warmup"):
	// each window's detailed simulation starts Ramp instructions before
	// the window, and those instructions are excluded from measurement.
	// Functional warming replays only the architectural stream, so state
	// that detailed execution itself creates — speculative predictor
	// training, advance-mode prefetches, in-flight misses — is absent at
	// a cold window entry; the ramp regenerates it before counting
	// starts.
	Ramp int
	// Seed selects stratified-random window placement inside each
	// stratum; 0 places windows systematically at stratum starts.
	Seed int64
}

// Enabled reports whether the policy requests sampling.
func (p SamplePolicy) Enabled() bool { return p.Interval > 0 }

// Window is one detailed-measurement interval [Start, End) in trace
// instruction indexes.
type Window struct {
	Start, End int
}

// Windows plans the detailed windows for a trace of n instructions on a
// machine that functionally warms the first warm instructions. Adjacent
// windows coalesce, so the degenerate Period == Interval policy yields
// exactly one window covering the whole measured region — structurally
// identical to a full run, which is what makes "sampled with
// period=interval is byte-identical to full" provable rather than
// approximate.
func (p SamplePolicy) Windows(warm, n int) []Window {
	base := warm
	if p.Warmup > base {
		base = p.Warmup
	}
	if base > n {
		base = n
	}
	if !p.Enabled() {
		return []Window{{Start: base, End: n}}
	}
	var rng *rand.Rand
	if p.Seed != 0 {
		rng = rand.New(rand.NewSource(p.Seed))
	}
	var wins []Window
	for s := base; s < n; s += p.Period {
		off := 0
		if rng != nil && p.Period > p.Interval {
			// Stratified-random placement: a uniform offset per stratum,
			// drawn in stratum order so the plan is a pure function of
			// (policy, warm, n).
			off = rng.Intn(p.Period - p.Interval + 1)
		}
		lo := s + off
		hi := lo + p.Interval
		if lo >= n {
			break
		}
		if hi > n {
			hi = n
		}
		if nw := len(wins); nw > 0 && wins[nw-1].End == lo {
			wins[nw-1].End = hi // coalesce adjacent windows
		} else {
			wins = append(wins, Window{Start: lo, End: hi})
		}
	}
	if len(wins) == 0 {
		return []Window{{Start: base, End: n}}
	}
	return wins
}

// CombineWindows aggregates per-window partial Results into one Result.
// A single window passes through untouched (modulo the name), which is
// what keeps full runs and degenerate sampled runs byte-identical to the
// historical single-pass code. Multiple windows sum counts exactly,
// recombine per-KI rates by measured instructions, and attach the
// sampling statistics: the interval count and the 95% confidence
// half-width of CPI across windows (normal approximation, 1.96·s/√k —
// the SMARTS/RZBENCH "report how you measured" discipline).
func CombineWindows(name string, parts []Result) Result {
	if len(parts) == 0 {
		return Result{Name: name}
	}
	if len(parts) == 1 {
		res := parts[0]
		res.Name = name
		return res
	}
	var res Result
	res.Name = name
	var cpis []float64
	var fwdWeight float64
	for _, p := range parts {
		res.Cycles += p.Cycles
		res.Insts += p.Insts
		res.BranchMispredicts += p.BranchMispredicts
		res.Advances += p.Advances
		res.AdvanceInsts += p.AdvanceInsts
		res.RallyInsts += p.RallyInsts
		res.RallyPasses += p.RallyPasses
		res.SliceOverflows += p.SliceOverflows
		res.SBOverflows += p.SBOverflows
		res.PoisonAddrObs += p.PoisonAddrObs
		res.Squashes += p.Squashes
		res.SBForwards += p.SBForwards
		ki := float64(p.Insts) / 1000
		res.DCacheMissPerKI += p.DCacheMissPerKI * ki
		res.L2MissPerKI += p.L2MissPerKI * ki
		res.DCacheMLP += p.DCacheMLP * float64(p.Insts)
		res.L2MLP += p.L2MLP * float64(p.Insts)
		fw := float64(p.SBForwards)
		res.SBExtraHops += p.SBExtraHops * fw
		res.SBHopsAtLeast += p.SBHopsAtLeast * fw
		fwdWeight += fw
		if p.Insts > 0 {
			cpis = append(cpis, float64(p.Cycles)/float64(p.Insts))
		}
	}
	if res.Insts == 0 {
		return Result{Name: name}
	}
	ki := float64(res.Insts) / 1000
	res.DCacheMissPerKI /= ki
	res.L2MissPerKI /= ki
	res.DCacheMLP /= float64(res.Insts)
	res.L2MLP /= float64(res.Insts)
	res.RallyPerKI = float64(res.RallyInsts) / ki
	if fwdWeight > 0 {
		res.SBExtraHops /= fwdWeight
		res.SBHopsAtLeast /= fwdWeight
	} else {
		res.SBExtraHops, res.SBHopsAtLeast = 0, 0
	}
	res.SampleIntervals = len(cpis)
	_, res.SampleCPICI95 = stats.MeanCI95(cpis)
	return res
}

// RunWindowed is the shared driver behind every model's Run and
// RunSampled: it plans the detailed windows (one full window when the
// policy is zero), fetches warmed cache/predictor state for each window
// start from the workload's shared warm-state store, runs the model's
// detailed window function, and combines the partial results. runWindow
// receives a private warmed hierarchy and predictor (clones — the model
// may mutate them freely) and trace index bounds start <= meas < end: it
// must simulate [start, end) in detail starting at cycle 0 but measure
// only [meas, end) — Cycles, Insts, and every event counter cover the
// measured range (the [start, meas) ramp re-creates execution-dependent
// state functional warming cannot) — and report the window's Result
// (Name left empty). Full runs always have start == meas, so the
// snapshot a model takes at the measurement boundary is the zero state
// and the historical single-pass result is reproduced exactly.
func RunWindowed(w *workload.Workload, cfg *Config, pol SamplePolicy,
	runWindow func(hier *mem.Hierarchy, pred *bpred.Predictor, start, meas, end int) Result) Result {
	n := w.Trace.Len()
	warm := cfg.WarmupInsts
	if warm > n {
		warm = n
	}
	wins := pol.Windows(warm, n)
	parts := make([]Result, 0, len(wins))
	for _, win := range wins {
		start := win.Start - pol.Ramp
		if start < 0 {
			start = 0
		}
		hier, pred := WarmState(w, cfg.Hier, cfg.Bpred, start)
		parts = append(parts, runWindow(hier, pred, start, win.Start, win.End))
	}
	return CombineWindows(w.Name, parts)
}

// SubCounters returns a with every additive event counter reduced by its
// value in b — the measurement-boundary bookkeeping behind ramped
// windows, where a model snapshots its counters when detailed simulation
// crosses into the measured range and reports only the difference.
// Derived rates and identity fields are left untouched.
func SubCounters(a, b Result) Result {
	a.BranchMispredicts -= b.BranchMispredicts
	a.Advances -= b.Advances
	a.AdvanceInsts -= b.AdvanceInsts
	a.RallyInsts -= b.RallyInsts
	a.RallyPasses -= b.RallyPasses
	a.SliceOverflows -= b.SliceOverflows
	a.SBOverflows -= b.SBOverflows
	a.PoisonAddrObs -= b.PoisonAddrObs
	a.Squashes -= b.Squashes
	a.SBForwards -= b.SBForwards
	return a
}
