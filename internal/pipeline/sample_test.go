package pipeline

import (
	"math"
	"testing"

	"icfp/internal/bpred"
	"icfp/internal/mem"
	"icfp/internal/workload"
)

func TestWindowsFullRun(t *testing.T) {
	var pol SamplePolicy // zero: full simulation
	wins := pol.Windows(100, 1000)
	if len(wins) != 1 || wins[0] != (Window{100, 1000}) {
		t.Fatalf("zero policy windows = %v, want [{100 1000}]", wins)
	}
}

func TestWindowsPeriodEqualsIntervalCoalesces(t *testing.T) {
	pol := SamplePolicy{Interval: 50, Period: 50}
	wins := pol.Windows(100, 1000)
	if len(wins) != 1 || wins[0] != (Window{100, 1000}) {
		t.Fatalf("degenerate policy windows = %v, want one coalesced [{100 1000}]", wins)
	}
	// The coalescing must hold for any seed: with period == interval
	// there is no placement freedom.
	pol.Seed = 12345
	wins = pol.Windows(100, 1000)
	if len(wins) != 1 || wins[0] != (Window{100, 1000}) {
		t.Fatalf("seeded degenerate policy windows = %v, want one coalesced [{100 1000}]", wins)
	}
}

func TestWindowsSystematic(t *testing.T) {
	pol := SamplePolicy{Interval: 10, Period: 100}
	wins := pol.Windows(0, 1000)
	if len(wins) != 10 {
		t.Fatalf("got %d windows, want 10: %v", len(wins), wins)
	}
	for i, w := range wins {
		if w.Start != i*100 || w.End != i*100+10 {
			t.Fatalf("window %d = %v, want {%d %d}", i, w, i*100, i*100+10)
		}
	}
}

func TestWindowsWarmupBase(t *testing.T) {
	pol := SamplePolicy{Interval: 10, Period: 100, Warmup: 250}
	wins := pol.Windows(100, 1000)
	if wins[0].Start != 250 {
		t.Fatalf("first window starts at %d, want the policy warmup 250", wins[0].Start)
	}
	pol.Warmup = 50 // machine warmup dominates
	wins = pol.Windows(100, 1000)
	if wins[0].Start != 100 {
		t.Fatalf("first window starts at %d, want the machine warmup 100", wins[0].Start)
	}
}

func TestWindowsSeededPlacement(t *testing.T) {
	pol := SamplePolicy{Interval: 10, Period: 100, Seed: 7}
	a := pol.Windows(0, 10_000)
	b := pol.Windows(0, 10_000)
	if len(a) != len(b) {
		t.Fatal("seeded planning not deterministic")
	}
	offsetSeen := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("seeded planning not deterministic")
		}
		if a[i].Start%100 != 0 {
			offsetSeen = true
		}
		if a[i].End-a[i].Start != 10 {
			t.Fatalf("window %v is not Interval long", a[i])
		}
		if a[i].Start/100 != i {
			t.Fatalf("window %d = %v escaped its stratum", i, a[i])
		}
	}
	if !offsetSeen {
		t.Fatal("seed 7 placed every window at its stratum start; want random offsets")
	}
}

func TestWindowsClampedAtEnd(t *testing.T) {
	pol := SamplePolicy{Interval: 30, Period: 100}
	wins := pol.Windows(0, 220)
	want := []Window{{0, 30}, {100, 130}, {200, 220}}
	if len(wins) != len(want) {
		t.Fatalf("windows = %v, want %v", wins, want)
	}
	for i := range want {
		if wins[i] != want[i] {
			t.Fatalf("windows = %v, want %v", wins, want)
		}
	}
}

func TestCombineWindowsSingleIsPassthrough(t *testing.T) {
	part := Result{
		Cycles: 123, Insts: 456, DCacheMissPerKI: 7.5, L2MLP: 1.25,
		BranchMispredicts: 9, SBExtraHops: 0.5,
	}
	got := CombineWindows("w", []Result{part})
	want := part
	want.Name = "w"
	if got != want {
		t.Fatalf("single-part combine = %+v, want verbatim passthrough %+v", got, want)
	}
	if got.SampleIntervals != 0 {
		t.Fatal("single-window result must not claim sampling statistics")
	}
}

func TestCombineWindowsAggregates(t *testing.T) {
	parts := []Result{
		{Cycles: 1000, Insts: 500, DCacheMissPerKI: 10, DCacheMLP: 2, RallyInsts: 50, SBForwards: 10, SBExtraHops: 1},
		{Cycles: 3000, Insts: 1500, DCacheMissPerKI: 20, DCacheMLP: 4, RallyInsts: 150, SBForwards: 30, SBExtraHops: 2},
	}
	got := CombineWindows("w", parts)
	if got.Cycles != 4000 || got.Insts != 2000 {
		t.Fatalf("totals = %d cycles, %d insts; want 4000, 2000", got.Cycles, got.Insts)
	}
	// Miss rate recombines by measured instructions: (10*0.5 + 20*1.5)/2.
	if want := 17.5; math.Abs(got.DCacheMissPerKI-want) > 1e-12 {
		t.Fatalf("DCacheMissPerKI = %v, want %v", got.DCacheMissPerKI, want)
	}
	// MLP recombines insts-weighted: (2*500 + 4*1500)/2000.
	if want := 3.5; math.Abs(got.DCacheMLP-want) > 1e-12 {
		t.Fatalf("DCacheMLP = %v, want %v", got.DCacheMLP, want)
	}
	// Hop mean recombines forward-weighted: (1*10 + 2*30)/40.
	if want := 1.75; math.Abs(got.SBExtraHops-want) > 1e-12 {
		t.Fatalf("SBExtraHops = %v, want %v", got.SBExtraHops, want)
	}
	if want := 100.0; math.Abs(got.RallyPerKI-want) > 1e-12 {
		t.Fatalf("RallyPerKI = %v, want %v", got.RallyPerKI, want)
	}
	if got.SampleIntervals != 2 {
		t.Fatalf("SampleIntervals = %d, want 2", got.SampleIntervals)
	}
	// Both windows have CPI 2.0: the half-width must be 0.
	if got.SampleCPICI95 != 0 {
		t.Fatalf("equal-CPI windows got CI %v, want 0", got.SampleCPICI95)
	}

	// Unequal CPIs yield a positive half-width.
	parts[1].Cycles = 6000
	got = CombineWindows("w", parts)
	if got.SampleCPICI95 <= 0 {
		t.Fatalf("unequal-CPI windows got CI %v, want > 0", got.SampleCPICI95)
	}
}

// TestRunWindowedRampBounds pins the driver's measurement-boundary
// contract: with a ramp, runWindow receives start = max(0, meas - Ramp)
// and meas at the planned window start; without one, start == meas (the
// invariant full runs rely on for byte-identity — the boundary snapshot
// is then the zero state).
func TestRunWindowedRampBounds(t *testing.T) {
	w := workload.SPEC("gzip", 2_000)
	cfg := DefaultConfig()
	cfg.WarmupInsts = 100

	type triple struct{ start, meas, end int }
	var got []triple
	record := func(hier *mem.Hierarchy, pred *bpred.Predictor, start, meas, end int) Result {
		got = append(got, triple{start, meas, end})
		return Result{Cycles: int64(end - meas), Insts: int64(end - meas)}
	}

	got = nil
	RunWindowed(w, &cfg, SamplePolicy{Interval: 100, Period: 500, Ramp: 250}, record)
	want := []triple{{0, 100, 200}, {350, 600, 700}, {850, 1100, 1200}, {1350, 1600, 1700}}
	if len(got) != len(want) {
		t.Fatalf("windows = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("window %d = %v, want %v (ramp must clamp at trace start)", i, got[i], want[i])
		}
	}

	got = nil
	RunWindowed(w, &cfg, SamplePolicy{}, record)
	n := w.Trace.Len()
	if len(got) != 1 || got[0] != (triple{100, 100, n}) {
		t.Fatalf("full run windows = %v, want one {100 100 %d} (start == meas)", got, n)
	}
}

// TestSubCounters spot-checks the boundary-snapshot subtraction helper.
func TestSubCounters(t *testing.T) {
	a := Result{Cycles: 100, Insts: 50, BranchMispredicts: 9, Advances: 5, RallyInsts: 30, SBForwards: 12, DCacheMissPerKI: 7.5}
	b := Result{BranchMispredicts: 4, Advances: 2, RallyInsts: 10, SBForwards: 5}
	got := SubCounters(a, b)
	if got.BranchMispredicts != 5 || got.Advances != 3 || got.RallyInsts != 20 || got.SBForwards != 7 {
		t.Fatalf("SubCounters = %+v", got)
	}
	// Non-counter fields pass through untouched.
	if got.Cycles != 100 || got.Insts != 50 || got.DCacheMissPerKI != 7.5 {
		t.Fatalf("SubCounters touched non-counter fields: %+v", got)
	}
}
