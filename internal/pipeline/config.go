// Package pipeline holds the machinery shared by all five simulated
// micro-architectures (in-order, Runahead, Multipass, SLTP, iCFP): the
// Table 1 machine configuration, the front-end fetch/prediction model, the
// per-cycle issue-slot allocator, the register scoreboard with poison
// vectors and last-writer sequence numbers, and the conventional
// associative store buffer.
package pipeline

import (
	"icfp/internal/bpred"
	"icfp/internal/mem"
)

// PoisonAddrPolicy selects what iCFP does on a store with a poisoned
// address (paper §3.2: "it can either stall or transition to a simple
// runahead mode").
type PoisonAddrPolicy int

// Poisoned-address store policies.
const (
	PoisonAddrSimpleRunahead PoisonAddrPolicy = iota
	PoisonAddrStall
)

// Config is the full machine configuration (Table 1 plus the per-design
// structure sizes from §5).
type Config struct {
	// Core.
	Width        int // superscalar width (2)
	IntPorts     int // integer units (2)
	MemFPBrPorts int // fp/load/store/branch units (1)
	FrontDepth   int // fetch-to-issue stages: 3 I$ + decode + reg-read
	DCachePipe   int // D$ access stages (3)

	Hier  mem.Config
	Bpred bpred.Config

	// Conventional store buffer (baseline and all designs' normal mode).
	StoreBufEntries int

	// Advance-mode structures.
	SliceEntries      int // slice buffer (iCFP, SLTP)
	ChainedSBEntries  int // iCFP chained store buffer
	ChainTableEntries int // iCFP chain table
	PoisonBits        int // iCFP poison vector width (1..8)
	RunaheadCache     int // Runahead/Multipass runahead cache entries
	SRLEntries        int // SLTP store redo log entries
	ResultBufEntries  int // Multipass result buffer entries

	// Policies.
	// Trigger selects which misses enter advance mode.
	Trigger AdvanceTrigger
	// BlockSecondaryD1 makes advance execution wait out secondary data
	// cache misses instead of poisoning them (Runahead's "D$-b" option,
	// §2; irrelevant to iCFP, which always poisons).
	BlockSecondaryD1 bool
	PoisonAddrPolicy PoisonAddrPolicy
	// MultithreadRally lets iCFP overlap rally with tail advance (§3.1).
	MultithreadRally bool
	// NonBlockingRally lets iCFP make multiple rally passes, re-poisoning
	// slice loads that miss again. When false, rallies block on dependent
	// misses (the SLTP behaviour).
	NonBlockingRally bool

	// CheckValues enables functional assertions: forwarded store-buffer
	// values must match the trace's resolved load values.
	CheckValues bool

	// WarmupInsts replays this many leading trace instructions into the
	// caches and predictor untimed before measurement begins (the paper
	// warms 4M instructions per 1M sample).
	WarmupInsts int
}

// DefaultConfig returns the paper's simulated processor (Table 1) with
// full iCFP features enabled.
func DefaultConfig() Config {
	return Config{
		Width:             2,
		IntPorts:          2,
		MemFPBrPorts:      1,
		FrontDepth:        5,
		DCachePipe:        3,
		Hier:              mem.DefaultConfig(),
		Bpred:             bpred.DefaultConfig(),
		StoreBufEntries:   32,
		SliceEntries:      128,
		ChainedSBEntries:  128,
		ChainTableEntries: 512,
		PoisonBits:        8,
		RunaheadCache:     256,
		SRLEntries:        128,
		ResultBufEntries:  128,
		Trigger:           TriggerL2Only,
		BlockSecondaryD1:  true,
		PoisonAddrPolicy:  PoisonAddrSimpleRunahead,
		MultithreadRally:  true,
		NonBlockingRally:  true,
	}
}

// Result reports one simulation run. Fields that do not apply to a given
// micro-architecture are zero.
type Result struct {
	Name   string // workload name
	Cycles int64
	Insts  int64 // committed program instructions

	// Memory behaviour.
	DCacheMissPerKI float64 // demand L1D misses per kilo-instruction
	L2MissPerKI     float64 // demand memory misses per kilo-instruction
	DCacheMLP       float64
	L2MLP           float64

	// Front end.
	BranchMispredicts uint64

	// Advance/rally behaviour.
	Advances       uint64  // mode transitions into advance
	AdvanceInsts   uint64  // instructions processed in advance mode
	RallyInsts     uint64  // instructions re-executed during rallies
	RallyPasses    uint64  // rally passes over the slice buffer
	RallyPerKI     float64 // rally instructions per kilo-instruction
	SliceOverflows uint64  // transitions to simple-runahead on slice full
	SBOverflows    uint64  // transitions on store-buffer full
	PoisonAddrObs  uint64  // poisoned-address stores observed
	Squashes       uint64  // checkpoint restores from branch divergence

	// iCFP chained store buffer behaviour (§3.2).
	SBForwards    uint64
	SBExtraHops   float64 // mean excess chain hops per load
	SBHopsAtLeast float64 // fraction of loads with >= 5 extra hops

	// Interval sampling (zero for full runs). Both fields are additive
	// to the persisted cache-file schema: snapshots written before they
	// existed decode them as zero, i.e. as full runs.
	SampleIntervals int     // measurement windows combined into this result
	SampleCPICI95   float64 // 95% confidence half-width of CPI across windows
}

// IPC returns committed instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Insts) / float64(r.Cycles)
}

// IPCCI95 returns the 95% confidence half-width of IPC for sampled
// results, derived from the CPI half-width by the delta method
// (IPC = 1/CPI, so dIPC = dCPI/CPI²). Full runs report 0.
func (r Result) IPCCI95() float64 {
	if r.SampleCPICI95 == 0 || r.Insts == 0 || r.Cycles == 0 {
		return 0
	}
	cpi := float64(r.Cycles) / float64(r.Insts)
	return r.SampleCPICI95 / (cpi * cpi)
}

// CPI returns cycles per committed instruction (0 when nothing ran).
func (r Result) CPI() float64 {
	if r.Insts == 0 {
		return 0
	}
	return float64(r.Cycles) / float64(r.Insts)
}

// SpeedupOver returns the percent speedup of r over base on the same
// workload (positive means r is faster).
func (r Result) SpeedupOver(base Result) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return (float64(base.Cycles)/float64(r.Cycles) - 1) * 100
}
