package pipeline

// Model-based test of the RunaheadCache's open-addressed index: a
// reference implementation using a plain map plus an order slice must
// agree with the backshift-deleting, epoch-cleared table on every
// lookup, across adversarial key streams (dense collisions, repeated
// Clear, capacity-1 thrashing).

import (
	"math/rand"
	"testing"
)

// refCache is the obvious FIFO-evicting forwarding cache.
type refCache struct {
	cap   int
	m     map[uint64][2]uint64 // addr -> {val, poison}
	order []uint64
}

func newRefCache(capacity int) *refCache {
	return &refCache{cap: capacity, m: make(map[uint64][2]uint64)}
}

func (r *refCache) Put(addr, val uint64, poison uint8) {
	if _, ok := r.m[addr]; ok {
		r.m[addr] = [2]uint64{val, uint64(poison)}
		return
	}
	if len(r.order) >= r.cap {
		delete(r.m, r.order[0])
		r.order = r.order[1:]
	}
	r.m[addr] = [2]uint64{val, uint64(poison)}
	r.order = append(r.order, addr)
}

func (r *refCache) Get(addr uint64) (uint64, uint8, bool) {
	v, ok := r.m[addr]
	if !ok {
		return 0, 0, false
	}
	return v[0], uint8(v[1]), true
}

func (r *refCache) Clear() {
	clear(r.m)
	r.order = r.order[:0]
}

func TestRunaheadCacheMatchesReference(t *testing.T) {
	for _, capacity := range []int{1, 2, 7, 16, 256} {
		rc := NewRunaheadCache(capacity)
		ref := newRefCache(capacity)
		rng := rand.New(rand.NewSource(int64(capacity)))
		// A small key universe forces constant collisions, updates and
		// evictions; keys a multiple of the table size apart probe to the
		// same home slot, exercising the backshift chains.
		keys := make([]uint64, 3*capacity+5)
		for i := range keys {
			keys[i] = uint64(i) * 1024
		}
		for op := 0; op < 20000; op++ {
			switch k := rng.Intn(10); {
			case k == 0:
				rc.Clear()
				ref.Clear()
			case k < 4:
				addr := keys[rng.Intn(len(keys))]
				got, gp, gok := rc.Get(addr)
				want, wp, wok := ref.Get(addr)
				if gok != wok || got != want || gp != wp {
					t.Fatalf("cap %d op %d: Get(%#x) = (%d,%d,%v), want (%d,%d,%v)",
						capacity, op, addr, got, gp, gok, want, wp, wok)
				}
			default:
				addr := keys[rng.Intn(len(keys))]
				val := rng.Uint64()
				poison := uint8(rng.Intn(3))
				rc.Put(addr, val, poison)
				ref.Put(addr, val, poison)
			}
			if rc.Len() != len(ref.order) {
				t.Fatalf("cap %d op %d: Len %d, want %d", capacity, op, rc.Len(), len(ref.order))
			}
		}
		// Final sweep: every key agrees.
		for _, addr := range keys {
			got, gp, gok := rc.Get(addr)
			want, wp, wok := ref.Get(addr)
			if gok != wok || got != want || gp != wp {
				t.Fatalf("cap %d final: Get(%#x) = (%d,%d,%v), want (%d,%d,%v)",
					capacity, addr, got, gp, gok, want, wp, wok)
			}
		}
	}
}

// TestRunaheadCacheEpochWrap forces the 32-bit epoch counter to wrap and
// checks stale stamps cannot alias as live.
func TestRunaheadCacheEpochWrap(t *testing.T) {
	rc := NewRunaheadCache(4)
	rc.Put(0x1000, 7, 0)
	rc.cur = ^uint32(0) - 1 // two Clears from wrapping
	rc.Clear()
	rc.Put(0x2000, 9, 0)
	rc.Clear() // wraps: epochs reset, cur restarts at 1
	if rc.cur != 1 {
		t.Fatalf("cur after wrap = %d, want 1", rc.cur)
	}
	if _, _, ok := rc.Get(0x1000); ok {
		t.Fatal("stale pre-wrap key visible after wrap")
	}
	if _, _, ok := rc.Get(0x2000); ok {
		t.Fatal("cleared key visible after wrap")
	}
	rc.Put(0x3000, 11, 2)
	if v, p, ok := rc.Get(0x3000); !ok || v != 11 || p != 2 {
		t.Fatalf("post-wrap Put/Get = (%d,%d,%v), want (11,2,true)", v, p, ok)
	}
}
