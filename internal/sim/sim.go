// Package sim is the top-level driver: it names the five simulated
// micro-architectures, runs workloads against them, and provides the
// sweep helpers behind the paper's figures.
package sim

import (
	"fmt"

	"icfp/internal/exp"
	"icfp/internal/icfp"
	"icfp/internal/inorder"
	"icfp/internal/multipass"
	"icfp/internal/pipeline"
	"icfp/internal/runahead"
	"icfp/internal/sltp"
	"icfp/internal/workload"
)

// Model names a simulated micro-architecture.
type Model int

// The five machines of the paper's evaluation.
const (
	InOrder Model = iota
	Runahead
	Multipass
	SLTP
	ICFP
)

// AllModels lists the machines in the paper's presentation order.
var AllModels = []Model{InOrder, Runahead, Multipass, SLTP, ICFP}

// String names the model as the paper does.
func (m Model) String() string {
	switch m {
	case InOrder:
		return "in-order"
	case Runahead:
		return "Runahead"
	case Multipass:
		return "Multipass"
	case SLTP:
		return "SLTP"
	case ICFP:
		return "iCFP"
	}
	return fmt.Sprintf("model(%d)", int(m))
}

// DefaultConfig returns the Table 1 machine with the paper's sampling
// methodology defaults (warmup before each measured sample).
func DefaultConfig() pipeline.Config {
	cfg := pipeline.DefaultConfig()
	cfg.WarmupInsts = 150_000
	return cfg
}

// New constructs model m on the given configuration. Each model applies
// its own paper configuration for the advance trigger (Figure 5's
// settings); use the model packages directly for trigger sensitivity
// studies.
func New(m Model, cfg pipeline.Config) Runner {
	switch m {
	case InOrder:
		return inorder.New(cfg)
	case Runahead:
		return runahead.New(cfg)
	case Multipass:
		return multipass.New(cfg)
	case SLTP:
		return sltp.New(cfg)
	case ICFP:
		return icfp.New(cfg)
	}
	panic(fmt.Sprintf("sim: unknown model %d", int(m)))
}

// Job expresses "run model m over the named SPEC benchmark" as a harness
// job, the building block of the experiment registry. The result name is
// the job's identity within its run; the model's String() is its cache
// identity.
func Job(name string, m Model, cfg pipeline.Config, wl exp.WorkloadSpec) exp.Job {
	return exp.Job{
		Name:     name,
		Machine:  m.String(),
		Config:   cfg,
		Make:     func(cfg pipeline.Config) exp.Runner { return New(m, cfg) },
		Workload: wl,
	}
}

// Run simulates workload w on model m.
func Run(m Model, cfg pipeline.Config, w *workload.Workload) pipeline.Result {
	return New(m, cfg).Run(w)
}

// RunSPEC simulates the named SPEC2000-profile benchmark with n timed
// instructions after the configured warmup.
func RunSPEC(m Model, cfg pipeline.Config, name string, n int) pipeline.Result {
	w := workload.SPEC(name, cfg.WarmupInsts+n)
	return Run(m, cfg, w)
}

// Speedups runs base and test models over the named benchmarks and
// returns the percent speedup of test over base per benchmark, plus the
// geometric-mean speedup. Runs go through the memoizing harness, so the
// base model simulates once per (configuration, benchmark) even when it
// appears on both sides.
func Speedups(base, test Model, cfg pipeline.Config, names []string, n int) (per map[string]float64, geo float64) {
	return SpeedupsCached(exp.NewCache(), base, test, cfg, names, n)
}

// SpeedupsCached is Speedups against a shared cache: runs already
// performed by any earlier experiment sharing the cache are reused
// instead of re-simulated.
func SpeedupsCached(c *exp.Cache, base, test Model, cfg pipeline.Config, names []string, n int, opts ...exp.Option) (per map[string]float64, geo float64) {
	jobs := make([]exp.Job, 0, 2*len(names))
	seen := make(map[string]bool, len(names))
	for _, name := range names {
		if seen[name] {
			continue // one job pair per benchmark; repeats reuse it
		}
		seen[name] = true
		wl := exp.SPECWorkload(name, cfg.WarmupInsts+n)
		jobs = append(jobs,
			Job("base/"+name, base, cfg, wl),
			Job("test/"+name, test, cfg, wl))
	}
	rs, err := exp.Run(jobs, append([]exp.Option{exp.WithCache(c)}, opts...)...)
	if err != nil {
		panic(err) // the job set is built right here; an error is a sim bug
	}
	per = make(map[string]float64, len(names))
	pairs := make([][2]string, 0, len(names))
	for _, name := range names {
		per[name] = rs.Speedup("test/"+name, "base/"+name)
		pairs = append(pairs, [2]string{"test/" + name, "base/" + name})
	}
	return per, rs.GeoMeanSpeedup(pairs)
}

// L2LatencyPoint is one configuration point of the Figure 6 sweep.
type L2LatencyPoint struct {
	Label   string
	Machine func(cfg pipeline.Config) Runner
}

// Runner runs a workload (satisfied by every machine in this module).
type Runner interface {
	Run(w *workload.Workload) pipeline.Result
}

// Figure6Machines returns the six configurations of the paper's L2
// hit-latency sensitivity study: the baseline, three Runahead trigger
// variants, and two iCFP trigger variants.
func Figure6Machines() []L2LatencyPoint {
	return []L2LatencyPoint{
		{"in-order", func(cfg pipeline.Config) Runner { return inorder.New(cfg) }},
		{"RA-L2", func(cfg pipeline.Config) Runner {
			cfg.Trigger = pipeline.TriggerL2Only
			cfg.BlockSecondaryD1 = true
			return runahead.New(cfg)
		}},
		{"RA-L2/D$-primary", func(cfg pipeline.Config) Runner {
			cfg.Trigger = pipeline.TriggerPrimaryD1
			cfg.BlockSecondaryD1 = true
			return runahead.New(cfg)
		}},
		{"RA-all", func(cfg pipeline.Config) Runner {
			cfg.Trigger = pipeline.TriggerAll
			cfg.BlockSecondaryD1 = false
			return runahead.New(cfg)
		}},
		{"iCFP-L2", func(cfg pipeline.Config) Runner {
			return icfp.NewWithOptions(cfg, pipeline.TriggerL2Only, icfp.SBChained)
		}},
		{"iCFP-all", func(cfg pipeline.Config) Runner {
			return icfp.NewWithOptions(cfg, pipeline.TriggerAll, icfp.SBChained)
		}},
	}
}

// SweepL2Latency runs one machine configuration over the given L2 hit
// latencies for a benchmark and returns percent speedups over the
// in-order baseline at the same latency.
func SweepL2Latency(mk func(cfg pipeline.Config) Runner, cfg pipeline.Config, name string, n int, lats []int) []float64 {
	return SweepL2LatencyCached(exp.NewCache(), "sweep-machine", mk, cfg, name, n, lats)
}

// SweepL2LatencyCached is SweepL2Latency against a shared cache: the
// in-order baseline at each latency simulates once no matter how many
// machines sweep against it. The label identifies mk in the cache —
// callers sharing a cache must pass distinct labels for machines that
// behave differently on the same configuration.
func SweepL2LatencyCached(c *exp.Cache, label string, mk func(cfg pipeline.Config) Runner, cfg pipeline.Config, name string, n int, lats []int, opts ...exp.Option) []float64 {
	jobs := make([]exp.Job, 0, 2*len(lats))
	for k, lat := range lats {
		cl := cfg
		cl.Hier.L2HitLat = lat
		wl := exp.SPECWorkload(name, cl.WarmupInsts+n)
		jobs = append(jobs,
			Job(fmt.Sprintf("base/%d", k), InOrder, cl, wl),
			exp.Job{
				Name:     fmt.Sprintf("test/%d", k),
				Machine:  label,
				Config:   cl,
				Make:     func(cfg pipeline.Config) exp.Runner { return mk(cfg) },
				Workload: wl,
			})
	}
	rs, err := exp.Run(jobs, append([]exp.Option{exp.WithCache(c)}, opts...)...)
	if err != nil {
		panic(err) // the job set is built right here; an error is a sim bug
	}
	out := make([]float64, len(lats))
	for k := range lats {
		out[k] = rs.Speedup(fmt.Sprintf("test/%d", k), fmt.Sprintf("base/%d", k))
	}
	return out
}

// FeatureBuildConfigs returns the Figure 7 "build" from SLTP to full
// iCFP. The first entry is the SLTP machine itself; the rest are iCFP
// configurations adding one feature at a time.
func FeatureBuildConfigs() []struct {
	Label string
	Make  func(cfg pipeline.Config) Runner
} {
	return []struct {
		Label string
		Make  func(cfg pipeline.Config) Runner
	}{
		{"SRL memory, single blocking rallies (SLTP)", func(cfg pipeline.Config) Runner {
			return sltp.New(cfg)
		}},
		{"+ address-hash chaining", func(cfg pipeline.Config) Runner {
			cfg.NonBlockingRally = false
			cfg.MultithreadRally = false
			cfg.PoisonBits = 1
			return icfp.NewWithOptions(cfg, pipeline.TriggerAll, icfp.SBChained)
		}},
		{"+ multiple non-blocking rallies", func(cfg pipeline.Config) Runner {
			cfg.NonBlockingRally = true
			cfg.MultithreadRally = false
			cfg.PoisonBits = 1
			return icfp.NewWithOptions(cfg, pipeline.TriggerAll, icfp.SBChained)
		}},
		{"+ 8-bit poison vectors", func(cfg pipeline.Config) Runner {
			cfg.NonBlockingRally = true
			cfg.MultithreadRally = false
			cfg.PoisonBits = 8
			return icfp.NewWithOptions(cfg, pipeline.TriggerAll, icfp.SBChained)
		}},
		{"+ multithreaded rallies (iCFP)", func(cfg pipeline.Config) Runner {
			cfg.NonBlockingRally = true
			cfg.MultithreadRally = true
			cfg.PoisonBits = 8
			return icfp.NewWithOptions(cfg, pipeline.TriggerAll, icfp.SBChained)
		}},
	}
}

// StoreBufferConfigs returns the Figure 8 store-buffer design
// comparison: indexed-limited, chained, and idealized fully-associative.
func StoreBufferConfigs() []struct {
	Label string
	Mode  icfp.SBMode
} {
	return []struct {
		Label string
		Mode  icfp.SBMode
	}{
		{"indexed with limited forwarding", icfp.SBLimited},
		{"chained (iCFP)", icfp.SBChained},
		{"fully-associative (idealized)", icfp.SBIdeal},
	}
}
