// Package sim is the top-level driver: it names the five simulated
// micro-architectures, runs workloads against them, and provides the
// sweep helpers behind the paper's figures.
package sim

import (
	"fmt"

	"icfp/internal/icfp"
	"icfp/internal/inorder"
	"icfp/internal/multipass"
	"icfp/internal/pipeline"
	"icfp/internal/runahead"
	"icfp/internal/sltp"
	"icfp/internal/stats"
	"icfp/internal/workload"
)

// Model names a simulated micro-architecture.
type Model int

// The five machines of the paper's evaluation.
const (
	InOrder Model = iota
	Runahead
	Multipass
	SLTP
	ICFP
)

// AllModels lists the machines in the paper's presentation order.
var AllModels = []Model{InOrder, Runahead, Multipass, SLTP, ICFP}

// String names the model as the paper does.
func (m Model) String() string {
	switch m {
	case InOrder:
		return "in-order"
	case Runahead:
		return "Runahead"
	case Multipass:
		return "Multipass"
	case SLTP:
		return "SLTP"
	case ICFP:
		return "iCFP"
	}
	return fmt.Sprintf("model(%d)", int(m))
}

// DefaultConfig returns the Table 1 machine with the paper's sampling
// methodology defaults (warmup before each measured sample).
func DefaultConfig() pipeline.Config {
	cfg := pipeline.DefaultConfig()
	cfg.WarmupInsts = 150_000
	return cfg
}

// Run simulates workload w on model m. Each model applies its own paper
// configuration for the advance trigger (Figure 5's settings); use the
// model packages directly for trigger sensitivity studies.
func Run(m Model, cfg pipeline.Config, w *workload.Workload) pipeline.Result {
	switch m {
	case InOrder:
		return inorder.New(cfg).Run(w)
	case Runahead:
		return runahead.New(cfg).Run(w)
	case Multipass:
		return multipass.New(cfg).Run(w)
	case SLTP:
		return sltp.New(cfg).Run(w)
	case ICFP:
		return icfp.New(cfg).Run(w)
	}
	panic(fmt.Sprintf("sim: unknown model %d", int(m)))
}

// RunSPEC simulates the named SPEC2000-profile benchmark with n timed
// instructions after the configured warmup.
func RunSPEC(m Model, cfg pipeline.Config, name string, n int) pipeline.Result {
	w := workload.SPEC(name, cfg.WarmupInsts+n)
	return Run(m, cfg, w)
}

// Speedups runs base and test models over the named benchmarks and
// returns the percent speedup of test over base per benchmark, plus the
// geometric-mean speedup.
func Speedups(base, test Model, cfg pipeline.Config, names []string, n int) (per map[string]float64, geo float64) {
	per = make(map[string]float64, len(names))
	ratios := make([]float64, 0, len(names))
	for _, name := range names {
		b := RunSPEC(base, cfg, name, n)
		t := RunSPEC(test, cfg, name, n)
		per[name] = t.SpeedupOver(b)
		ratios = append(ratios, float64(b.Cycles)/float64(t.Cycles))
	}
	return per, (stats.GeoMean(ratios) - 1) * 100
}

// L2LatencyPoint is one configuration point of the Figure 6 sweep.
type L2LatencyPoint struct {
	Label   string
	Machine func(cfg pipeline.Config) Runner
}

// Runner runs a workload (satisfied by every machine in this module).
type Runner interface {
	Run(w *workload.Workload) pipeline.Result
}

// Figure6Machines returns the six configurations of the paper's L2
// hit-latency sensitivity study: the baseline, three Runahead trigger
// variants, and two iCFP trigger variants.
func Figure6Machines() []L2LatencyPoint {
	return []L2LatencyPoint{
		{"in-order", func(cfg pipeline.Config) Runner { return inorder.New(cfg) }},
		{"RA-L2", func(cfg pipeline.Config) Runner {
			cfg.Trigger = pipeline.TriggerL2Only
			cfg.BlockSecondaryD1 = true
			return runahead.New(cfg)
		}},
		{"RA-L2/D$-primary", func(cfg pipeline.Config) Runner {
			cfg.Trigger = pipeline.TriggerPrimaryD1
			cfg.BlockSecondaryD1 = true
			return runahead.New(cfg)
		}},
		{"RA-all", func(cfg pipeline.Config) Runner {
			cfg.Trigger = pipeline.TriggerAll
			cfg.BlockSecondaryD1 = false
			return runahead.New(cfg)
		}},
		{"iCFP-L2", func(cfg pipeline.Config) Runner {
			return icfp.NewWithOptions(cfg, pipeline.TriggerL2Only, icfp.SBChained)
		}},
		{"iCFP-all", func(cfg pipeline.Config) Runner {
			return icfp.NewWithOptions(cfg, pipeline.TriggerAll, icfp.SBChained)
		}},
	}
}

// SweepL2Latency runs one machine configuration over the given L2 hit
// latencies for a benchmark and returns percent speedups over the
// in-order baseline at the same latency.
func SweepL2Latency(mk func(cfg pipeline.Config) Runner, cfg pipeline.Config, name string, n int, lats []int) []float64 {
	out := make([]float64, len(lats))
	for k, lat := range lats {
		c := cfg
		c.Hier.L2HitLat = lat
		w := workload.SPEC(name, c.WarmupInsts+n)
		base := inorder.New(c).Run(w)
		w2 := workload.SPEC(name, c.WarmupInsts+n)
		r := mk(c).Run(w2)
		out[k] = r.SpeedupOver(base)
	}
	return out
}

// FeatureBuildConfigs returns the Figure 7 "build" from SLTP to full
// iCFP. The first entry is the SLTP machine itself; the rest are iCFP
// configurations adding one feature at a time.
func FeatureBuildConfigs() []struct {
	Label string
	Make  func(cfg pipeline.Config) Runner
} {
	return []struct {
		Label string
		Make  func(cfg pipeline.Config) Runner
	}{
		{"SRL memory, single blocking rallies (SLTP)", func(cfg pipeline.Config) Runner {
			return sltp.New(cfg)
		}},
		{"+ address-hash chaining", func(cfg pipeline.Config) Runner {
			cfg.NonBlockingRally = false
			cfg.MultithreadRally = false
			cfg.PoisonBits = 1
			return icfp.NewWithOptions(cfg, pipeline.TriggerAll, icfp.SBChained)
		}},
		{"+ multiple non-blocking rallies", func(cfg pipeline.Config) Runner {
			cfg.NonBlockingRally = true
			cfg.MultithreadRally = false
			cfg.PoisonBits = 1
			return icfp.NewWithOptions(cfg, pipeline.TriggerAll, icfp.SBChained)
		}},
		{"+ 8-bit poison vectors", func(cfg pipeline.Config) Runner {
			cfg.NonBlockingRally = true
			cfg.MultithreadRally = false
			cfg.PoisonBits = 8
			return icfp.NewWithOptions(cfg, pipeline.TriggerAll, icfp.SBChained)
		}},
		{"+ multithreaded rallies (iCFP)", func(cfg pipeline.Config) Runner {
			cfg.NonBlockingRally = true
			cfg.MultithreadRally = true
			cfg.PoisonBits = 8
			return icfp.NewWithOptions(cfg, pipeline.TriggerAll, icfp.SBChained)
		}},
	}
}

// StoreBufferConfigs returns the Figure 8 store-buffer design
// comparison: indexed-limited, chained, and idealized fully-associative.
func StoreBufferConfigs() []struct {
	Label string
	Mode  icfp.SBMode
} {
	return []struct {
		Label string
		Mode  icfp.SBMode
	}{
		{"indexed with limited forwarding", icfp.SBLimited},
		{"chained (iCFP)", icfp.SBChained},
		{"fully-associative (idealized)", icfp.SBIdeal},
	}
}
