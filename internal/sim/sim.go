// Package sim is the top-level driver: it names the five simulated
// micro-architectures, runs workloads against them, and provides the
// sweep helpers behind the paper's figures.
//
// Machines are identified declaratively: every named configuration in
// this package is a thin producer of spec.Machine values, and
// spec.Machine.New is the one constructor path behind the experiment
// harness. The direct New/Run helpers remain for programmatic use (unit
// tests, fuzzing, benchmarks) where a concrete pipeline.Config in hand
// is more convenient than a spec.
package sim

import (
	"fmt"

	"icfp/internal/exp"
	"icfp/internal/icfp"
	"icfp/internal/inorder"
	"icfp/internal/multipass"
	"icfp/internal/pipeline"
	"icfp/internal/runahead"
	"icfp/internal/sltp"
	"icfp/internal/spec"
	"icfp/internal/workload"
)

// Model names a simulated micro-architecture.
type Model int

// The five machines of the paper's evaluation.
const (
	InOrder Model = iota
	Runahead
	Multipass
	SLTP
	ICFP
)

// AllModels lists the machines in the paper's presentation order.
var AllModels = []Model{InOrder, Runahead, Multipass, SLTP, ICFP}

// String names the model as the paper does.
func (m Model) String() string {
	switch m {
	case InOrder:
		return "in-order"
	case Runahead:
		return "Runahead"
	case Multipass:
		return "Multipass"
	case SLTP:
		return "SLTP"
	case ICFP:
		return "iCFP"
	}
	return fmt.Sprintf("model(%d)", int(m))
}

// Spec returns the model's declarative machine spec with its paper
// defaults (no trigger or store-buffer variation, no overrides).
func (m Model) Spec() spec.Machine {
	switch m {
	case InOrder:
		return spec.Machine{Model: spec.ModelInOrder}
	case Runahead:
		return spec.Machine{Model: spec.ModelRunahead}
	case Multipass:
		return spec.Machine{Model: spec.ModelMultipass}
	case SLTP:
		return spec.Machine{Model: spec.ModelSLTP}
	case ICFP:
		return spec.Machine{Model: spec.ModelICFP}
	}
	panic(fmt.Sprintf("sim: unknown model %d", int(m)))
}

// DefaultConfig returns the Table 1 machine with the paper's sampling
// methodology defaults — the configuration every spec diverges from
// (spec.BaseConfig).
func DefaultConfig() pipeline.Config {
	return spec.BaseConfig()
}

// New constructs model m on the given configuration. Each model applies
// its own paper configuration for the advance trigger (Figure 5's
// settings); use machine specs (or the model packages directly) for
// trigger sensitivity studies.
func New(m Model, cfg pipeline.Config) Runner {
	switch m {
	case InOrder:
		return inorder.New(cfg)
	case Runahead:
		return runahead.New(cfg)
	case Multipass:
		return multipass.New(cfg)
	case SLTP:
		return sltp.New(cfg)
	case ICFP:
		return icfp.New(cfg)
	}
	panic(fmt.Sprintf("sim: unknown model %d", int(m)))
}

// NewFromSpec constructs the machine a spec names, with cfg's divergence
// from the spec base carried as overrides. It panics when cfg touches a
// field overrides cannot express or the spec is invalid — callers hold
// both, so an error is a call-site bug.
func NewFromSpec(m spec.Machine, cfg pipeline.Config) Runner {
	r, err := specMachineAt(m, cfg).New()
	if err != nil {
		panic(fmt.Sprintf("sim: %v", err))
	}
	return r
}

// specMachineAt merges cfg's divergence from the base into the machine
// spec (the machine's own overrides win). It panics on an inexpressible
// configuration.
func specMachineAt(m spec.Machine, cfg pipeline.Config) spec.Machine {
	ov, err := spec.OverridesFor(cfg)
	if err != nil {
		panic(fmt.Sprintf("sim: %v", err))
	}
	m.Overrides = spec.Merge(m.Overrides, ov)
	return m
}

// Job expresses "run model m, configured by cfg, over the workload" as a
// harness job, the building block of the experiment registry. The
// configuration's divergence from the base rides in the machine spec's
// overrides; Job panics when cfg is not spec-expressible.
func Job(name string, m Model, cfg pipeline.Config, wl spec.Workload) exp.Job {
	return JobFor(name, m.Spec(), cfg, wl)
}

// JobFor is Job for an explicit machine spec (a Figure 6 latency point,
// a feature build, a store-buffer design).
func JobFor(name string, m spec.Machine, cfg pipeline.Config, wl spec.Workload) exp.Job {
	return exp.Job{Name: name, Machine: specMachineAt(m, cfg), Workload: wl}
}

// Run simulates workload w on model m.
func Run(m Model, cfg pipeline.Config, w *workload.Workload) pipeline.Result {
	return New(m, cfg).Run(w)
}

// RunSPEC simulates the named SPEC2000-profile benchmark with n timed
// instructions after the configured warmup.
func RunSPEC(m Model, cfg pipeline.Config, name string, n int) pipeline.Result {
	w := workload.SPEC(name, cfg.WarmupInsts+n)
	return Run(m, cfg, w)
}

// Speedups runs base and test models over the named benchmarks and
// returns the percent speedup of test over base per benchmark, plus the
// geometric-mean speedup. Runs go through the memoizing harness, so the
// base model simulates once per (configuration, benchmark) even when it
// appears on both sides.
func Speedups(base, test Model, cfg pipeline.Config, names []string, n int) (per map[string]float64, geo float64) {
	return SpeedupsCached(exp.NewCache(), base, test, cfg, names, n)
}

// SpeedupsCached is Speedups against a shared cache: runs already
// performed by any earlier experiment sharing the cache are reused
// instead of re-simulated.
func SpeedupsCached(c *exp.Cache, base, test Model, cfg pipeline.Config, names []string, n int, opts ...exp.Option) (per map[string]float64, geo float64) {
	jobs := make([]exp.Job, 0, 2*len(names))
	seen := make(map[string]bool, len(names))
	for _, name := range names {
		if seen[name] {
			continue // one job pair per benchmark; repeats reuse it
		}
		seen[name] = true
		wl := spec.SPECWorkload(name, cfg.WarmupInsts+n)
		jobs = append(jobs,
			Job("base/"+name, base, cfg, wl),
			Job("test/"+name, test, cfg, wl))
	}
	rs, err := exp.Run(jobs, append([]exp.Option{exp.WithCache(c)}, opts...)...)
	if err != nil {
		panic(err) // the job set is built right here; an error is a sim bug
	}
	per = make(map[string]float64, len(names))
	pairs := make([][2]string, 0, len(names))
	for _, name := range names {
		per[name] = rs.Speedup("test/"+name, "base/"+name)
		pairs = append(pairs, [2]string{"test/" + name, "base/" + name})
	}
	return per, rs.GeoMeanSpeedup(pairs)
}

// L2LatencyPoint is one machine of the Figure 6 sweep: a display label
// and the declarative machine spec behind it.
type L2LatencyPoint struct {
	Label   string
	Machine spec.Machine
}

// Runner runs a workload (satisfied by every machine in this module).
type Runner = spec.Runner

// Figure6Machines returns the six configurations of the paper's L2
// hit-latency sensitivity study: the baseline, three Runahead trigger
// variants, and two iCFP trigger variants — as machine specs.
func Figure6Machines() []L2LatencyPoint {
	return []L2LatencyPoint{
		{"in-order", spec.Machine{Model: spec.ModelInOrder}},
		{"RA-L2", spec.Machine{Model: spec.ModelRunahead, Trigger: spec.TriggerL2,
			Overrides: &spec.Overrides{BlockSecondaryD1: spec.Bool(true)}}},
		{"RA-L2/D$-primary", spec.Machine{Model: spec.ModelRunahead, Trigger: spec.TriggerPrimaryD1,
			Overrides: &spec.Overrides{BlockSecondaryD1: spec.Bool(true)}}},
		{"RA-all", spec.Machine{Model: spec.ModelRunahead, Trigger: spec.TriggerAll,
			Overrides: &spec.Overrides{BlockSecondaryD1: spec.Bool(false)}}},
		{"iCFP-L2", spec.Machine{Model: spec.ModelICFP, Trigger: spec.TriggerL2}},
		{"iCFP-all", spec.Machine{Model: spec.ModelICFP, Trigger: spec.TriggerAll}},
	}
}

// SweepL2Latency runs one machine spec over the given L2 hit latencies
// for a benchmark and returns percent speedups over the in-order
// baseline at the same latency.
func SweepL2Latency(m spec.Machine, cfg pipeline.Config, name string, n int, lats []int) []float64 {
	return SweepL2LatencyCached(exp.NewCache(), m, cfg, name, n, lats)
}

// SweepL2LatencyCached is SweepL2Latency against a shared cache: the
// in-order baseline at each latency simulates once no matter how many
// machines sweep against it, and machines are cached by their canonical
// specs — no labels required.
func SweepL2LatencyCached(c *exp.Cache, m spec.Machine, cfg pipeline.Config, name string, n int, lats []int, opts ...exp.Option) []float64 {
	jobs := make([]exp.Job, 0, 2*len(lats))
	for k, lat := range lats {
		cl := cfg
		cl.Hier.L2HitLat = lat
		wl := spec.SPECWorkload(name, cl.WarmupInsts+n)
		jobs = append(jobs,
			Job(fmt.Sprintf("base/%d", k), InOrder, cl, wl),
			JobFor(fmt.Sprintf("test/%d", k), m, cl, wl))
	}
	rs, err := exp.Run(jobs, append([]exp.Option{exp.WithCache(c)}, opts...)...)
	if err != nil {
		panic(err) // the job set is built right here; an error is a sim bug
	}
	out := make([]float64, len(lats))
	for k := range lats {
		out[k] = rs.Speedup(fmt.Sprintf("test/%d", k), fmt.Sprintf("base/%d", k))
	}
	return out
}

// FeatureBuild is one bar of the Figure 7 build from SLTP to full iCFP.
type FeatureBuild struct {
	Label   string
	Machine spec.Machine
}

// FeatureBuildConfigs returns the Figure 7 "build" from SLTP to full
// iCFP. The first entry is the SLTP machine itself; the rest are iCFP
// configurations adding one feature at a time.
func FeatureBuildConfigs() []FeatureBuild {
	icfpBuild := func(nonBlocking, multithread bool, poisonBits int) spec.Machine {
		return spec.Machine{Model: spec.ModelICFP, Trigger: spec.TriggerAll,
			Overrides: &spec.Overrides{
				NonBlockingRally: spec.Bool(nonBlocking),
				MultithreadRally: spec.Bool(multithread),
				PoisonBits:       spec.Int(poisonBits),
			}}
	}
	return []FeatureBuild{
		{"SRL memory, single blocking rallies (SLTP)", spec.Machine{Model: spec.ModelSLTP}},
		{"+ address-hash chaining", icfpBuild(false, false, 1)},
		{"+ multiple non-blocking rallies", icfpBuild(true, false, 1)},
		{"+ 8-bit poison vectors", icfpBuild(true, false, 8)},
		{"+ multithreaded rallies (iCFP)", icfpBuild(true, true, 8)},
	}
}

// StoreBufferDesign is one column of the Figure 8 comparison.
type StoreBufferDesign struct {
	Label   string
	Machine spec.Machine
}

// StoreBufferConfigs returns the Figure 8 store-buffer design
// comparison: indexed-limited, chained, and idealized fully-associative.
func StoreBufferConfigs() []StoreBufferDesign {
	icfpSB := func(sb string) spec.Machine {
		return spec.Machine{Model: spec.ModelICFP, Trigger: spec.TriggerAll, StoreBuffer: sb}
	}
	return []StoreBufferDesign{
		{"indexed with limited forwarding", icfpSB(spec.SBLimited)},
		{"chained (iCFP)", icfpSB(spec.SBChained)},
		{"fully-associative (idealized)", icfpSB(spec.SBIdeal)},
	}
}
