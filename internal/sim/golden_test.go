package sim

import (
	"bytes"
	"testing"

	"icfp/internal/workload"
)

// TestGoldenDeterminism pins exact cycle counts for a handful of
// (machine, benchmark) pairs. Simulation is fully deterministic, so any
// change to these numbers means a behavioural change in the simulator —
// intentional changes should update the table (and re-examine
// EXPERIMENTS.md).
func TestGoldenDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WarmupInsts = 20_000
	const timed = 80_000

	type key struct {
		m     Model
		bench string
	}
	got := map[key]int64{}
	for _, k := range []key{
		{InOrder, "equake"}, {Runahead, "equake"}, {ICFP, "equake"},
		{InOrder, "mcf"}, {SLTP, "mcf"}, {ICFP, "mcf"},
		{Multipass, "swim"}, {ICFP, "swim"},
	} {
		got[k] = RunSPEC(k.m, cfg, k.bench, timed).Cycles
	}

	// Cross-run stability: a second identical run must reproduce every
	// number bit for bit.
	for k, v := range got {
		again := RunSPEC(k.m, cfg, k.bench, timed).Cycles
		if again != v {
			t.Errorf("%s/%s: %d then %d — simulation is not deterministic", k.m, k.bench, v, again)
		}
	}

	// Relative invariants that must never regress silently.
	if !(got[key{ICFP, "equake"}] < got[key{Runahead, "equake"}] &&
		got[key{Runahead, "equake"}] <= got[key{InOrder, "equake"}]) {
		t.Errorf("equake ordering broken: iCFP %d, RA %d, in-order %d",
			got[key{ICFP, "equake"}], got[key{Runahead, "equake"}], got[key{InOrder, "equake"}])
	}
	if got[key{ICFP, "mcf"}] >= got[key{InOrder, "mcf"}] {
		t.Errorf("mcf: iCFP %d must beat in-order %d", got[key{ICFP, "mcf"}], got[key{InOrder, "mcf"}])
	}
}

// TestSerializedTraceSimulatesIdentically round-trips a workload through
// the binary codec and checks the simulator produces bit-identical
// results — the property that makes trace files usable as regression
// baselines.
func TestSerializedTraceSimulatesIdentically(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WarmupInsts = 20_000
	cfg.CheckValues = true

	for _, name := range []string{"mcf", "swim"} {
		orig := workload.SPEC(name, cfg.WarmupInsts+60_000)
		var buf bytes.Buffer
		if err := workload.WriteTrace(&buf, orig); err != nil {
			t.Fatal(err)
		}
		loaded, err := workload.ReadTrace(&buf)
		if err != nil {
			t.Fatal(err)
		}
		// The loaded workload lacks the generator's Prewarm hook; compare
		// against the original run without it too.
		orig.Prewarm = nil
		for _, m := range []Model{InOrder, ICFP} {
			a := Run(m, cfg, orig)
			b := Run(m, cfg, loaded)
			if a.Cycles != b.Cycles || a.Insts != b.Insts {
				t.Errorf("%s/%s: original %d cycles, round-tripped %d", m, name, a.Cycles, b.Cycles)
			}
		}
	}
}
