package sim

import (
	"testing"

	"icfp/internal/pipeline"
	"icfp/internal/workload"
)

// randomProfile is the unbiased fuzz-family member for a seed — the
// generator these tests originated lives in internal/workload now
// (workload.FuzzProfile), promoted to a first-class, spec-addressable
// scenario family.
func randomProfile(seed int64) workload.Profile {
	return workload.FuzzProfile(seed, workload.FuzzKnobs{})
}

// TestFuzzAllMachines runs every machine over a spread of random
// workloads with functional value checking enabled. It catches
// forwarding bugs (panic), deadlocks (watchdog panic or missing
// termination), and instruction-count mismatches.
func TestFuzzAllMachines(t *testing.T) {
	const insts = 60_000
	cfg := DefaultConfig()
	cfg.WarmupInsts = 10_000
	cfg.CheckValues = true

	for seed := int64(1); seed <= 12; seed++ {
		p := randomProfile(seed)
		t.Run(p.Name, func(t *testing.T) {
			var counts []int64
			var baseline int64
			for _, m := range AllModels {
				w := workload.Generate(p, cfg.WarmupInsts+insts, seed)
				r := Run(m, cfg, w)
				if r.Cycles <= 0 {
					t.Fatalf("%s: non-positive cycles %d", m, r.Cycles)
				}
				if r.IPC() > float64(cfg.Width) {
					t.Fatalf("%s: IPC %.2f exceeds machine width", m, r.IPC())
				}
				counts = append(counts, r.Insts)
				if m == InOrder {
					baseline = r.Cycles
				} else if float64(r.Cycles) > 1.3*float64(baseline) {
					t.Errorf("%s: %d cycles, more than 1.3x the in-order %d",
						m, r.Cycles, baseline)
				}
			}
			for _, c := range counts[1:] {
				if c != counts[0] {
					t.Fatalf("machines committed different instruction counts: %v", counts)
				}
			}
		})
	}
}

// TestFuzzStressSmallStructures shrinks every iCFP structure to force
// the overflow and fallback paths (simple-runahead transitions, drain
// gating, chain-table collisions) under value checking.
func TestFuzzStressSmallStructures(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WarmupInsts = 10_000
	cfg.CheckValues = true
	cfg.SliceEntries = 8
	cfg.ChainedSBEntries = 8
	cfg.ChainTableEntries = 8
	cfg.PoisonBits = 2

	for seed := int64(20); seed <= 26; seed++ {
		p := randomProfile(seed)
		w := workload.Generate(p, cfg.WarmupInsts+50_000, seed)
		r := Run(ICFP, cfg, w)
		if r.Cycles <= 0 {
			t.Fatalf("%s: bad cycles %d", p.Name, r.Cycles)
		}
		if r.SliceOverflows == 0 && r.SBOverflows == 0 && p.ChaseFrac > 0.02 {
			t.Logf("%s: tiny structures never overflowed (ok but unusual)", p.Name)
		}
	}
}

// TestFuzzPoisonWidths runs iCFP at every poison vector width over one
// dependent-miss fuzz workload.
func TestFuzzPoisonWidths(t *testing.T) {
	p := randomProfile(7)
	p.ChaseFrac = 0.08
	p.Chase2Frac = 0.15
	for bits := 1; bits <= 8; bits++ {
		cfg := DefaultConfig()
		cfg.WarmupInsts = 10_000
		cfg.CheckValues = true
		cfg.PoisonBits = bits
		w := workload.Generate(p, cfg.WarmupInsts+50_000, 7)
		r := Run(ICFP, cfg, w)
		if r.Cycles <= 0 {
			t.Fatalf("bits=%d: bad cycles", bits)
		}
	}
}

// TestAllTriggersTerminate exercises every trigger/blocking combination
// on a mixed workload (termination + determinism).
func TestAllTriggersTerminate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WarmupInsts = 10_000
	for _, trig := range []pipeline.AdvanceTrigger{
		pipeline.TriggerL2Only, pipeline.TriggerPrimaryD1, pipeline.TriggerAll,
	} {
		for _, block := range []bool{false, true} {
			c := cfg
			c.Trigger = trig
			c.BlockSecondaryD1 = block
			w := workload.SPEC("equake", c.WarmupInsts+60_000)
			r1 := Run(Runahead, c, w)
			w2 := workload.SPEC("equake", c.WarmupInsts+60_000)
			r2 := Run(Runahead, c, w2)
			if r1.Cycles != r2.Cycles {
				t.Errorf("trigger=%v block=%v: non-deterministic", trig, block)
			}
		}
	}
}
