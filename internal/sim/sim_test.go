package sim

import (
	"testing"

	"icfp/internal/pipeline"
	"icfp/internal/workload"
)

func quickCfg() pipeline.Config {
	cfg := DefaultConfig()
	cfg.WarmupInsts = 30_000
	return cfg
}

func TestModelStrings(t *testing.T) {
	want := map[Model]string{
		InOrder: "in-order", Runahead: "Runahead", Multipass: "Multipass",
		SLTP: "SLTP", ICFP: "iCFP",
	}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("%d = %q", m, m.String())
		}
	}
	if len(AllModels) != 5 {
		t.Fatal("five machines expected")
	}
}

func TestRunAllModels(t *testing.T) {
	cfg := quickCfg()
	for _, m := range AllModels {
		r := RunSPEC(m, cfg, "equake", 100_000)
		if r.Cycles <= 0 || r.Insts < 100_000 || r.Insts > 100_200 {
			t.Fatalf("%s: cycles=%d insts=%d", m, r.Cycles, r.Insts)
		}
	}
}

func TestICFPIsTheFastestOnHighMissFP(t *testing.T) {
	// The headline Figure 5 shape on one representative benchmark.
	cfg := quickCfg()
	cycles := map[Model]int64{}
	for _, m := range AllModels {
		cycles[m] = RunSPEC(m, cfg, "ammp", 200_000).Cycles
	}
	for _, m := range []Model{InOrder, Runahead, Multipass, SLTP} {
		if cycles[ICFP] >= cycles[m] {
			t.Errorf("iCFP (%d) must beat %s (%d) on ammp", cycles[ICFP], m, cycles[m])
		}
	}
}

func TestSpeedupsHelper(t *testing.T) {
	cfg := quickCfg()
	per, geo := Speedups(InOrder, ICFP, cfg, []string{"swim", "mesa"}, 100_000)
	if len(per) != 2 {
		t.Fatalf("per = %v", per)
	}
	if per["swim"] < 5 {
		t.Fatalf("swim speedup = %.1f%%", per["swim"])
	}
	if geo <= 0 {
		t.Fatalf("geomean = %.1f%%", geo)
	}
}

func TestSweepL2LatencyShape(t *testing.T) {
	// At higher L2 hit latencies, iCFP-all's advantage grows (Figure 6).
	cfg := quickCfg()
	machines := Figure6Machines()
	icfpAll := machines[len(machines)-1]
	if icfpAll.Label != "iCFP-all" {
		t.Fatalf("unexpected machine order: %s", icfpAll.Label)
	}
	sp := SweepL2Latency(icfpAll.Machine, cfg, "equake", 100_000, []int{10, 50})
	if len(sp) != 2 {
		t.Fatal("two points expected")
	}
	if sp[1] <= sp[0] {
		t.Fatalf("iCFP-all gain must grow with L2 latency: %.1f%% -> %.1f%%", sp[0], sp[1])
	}
}

func TestFeatureBuildMonotoneOnMcf(t *testing.T) {
	// Figure 7: each feature must help (or at least not hurt much) on a
	// dependent-miss workload; the full build must beat the first iCFP bar.
	cfg := quickCfg()
	builds := FeatureBuildConfigs()
	var first, last int64
	for i, b := range builds {
		if i == 0 {
			continue // SLTP baseline bar
		}
		r := NewFromSpec(b.Machine, cfg).Run(workload.SPEC("mcf", cfg.WarmupInsts+150_000))
		if i == 1 {
			first = r.Cycles
		}
		last = r.Cycles
	}
	if last >= first {
		t.Fatalf("full iCFP (%d cycles) must beat the blocking-rally build (%d)", last, first)
	}
}

func TestStoreBufferConfigsComplete(t *testing.T) {
	sbs := StoreBufferConfigs()
	if len(sbs) != 3 {
		t.Fatalf("three designs expected, got %d", len(sbs))
	}
}
