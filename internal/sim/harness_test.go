package sim

import (
	"fmt"
	"strings"
	"testing"

	"icfp/internal/exp"
	"icfp/internal/spec"
)

// isInOrderKey reports whether a memoization key names the in-order
// machine (keys are canonical machine specs).
func isInOrderKey(k exp.Key) bool {
	return strings.Contains(k.Machine, `"model":"in-order"`)
}

// TestSweepSharedBaselineRunsOnce pins the fix for the redundant baseline
// re-simulation in SweepL2Latency: sweeping several machines against one
// shared cache must simulate the in-order baseline once per latency
// configuration, not once per (machine, latency) point.
func TestSweepSharedBaselineRunsOnce(t *testing.T) {
	cfg := quickCfg()
	lats := []int{10, 50}
	machines := Figure6Machines()[1:]
	sweep := []L2LatencyPoint{machines[0], machines[len(machines)-1]} // RA-L2, iCFP-all

	cache := exp.NewCache()
	counts := map[exp.Key]int{}
	hook := exp.OnRun(func(k exp.Key) { counts[k]++ })
	for _, m := range sweep {
		sp := SweepL2LatencyCached(cache, m.Machine, cfg, "equake", 50_000, lats, hook)
		if len(sp) != len(lats) {
			t.Fatalf("%s: %d points, want %d", m.Label, len(sp), len(lats))
		}
	}

	baselines := 0
	for k, n := range counts {
		if n != 1 {
			t.Errorf("key %v simulated %d times, want 1", k, n)
		}
		if isInOrderKey(k) {
			baselines++
		}
	}
	if baselines != len(lats) {
		t.Errorf("in-order baseline simulated under %d configurations, want %d (once per latency)", baselines, len(lats))
	}
	if want := len(lats) * (len(sweep) + 1); cache.Simulations() != want {
		t.Errorf("total simulations = %d, want %d (machines + one shared baseline per latency)", cache.Simulations(), want)
	}
}

// TestSpeedupsSharedBaselineRunsOnce does the same for Speedups: two
// comparisons against the same baseline on a shared cache reuse the
// baseline runs.
func TestSpeedupsSharedBaselineRunsOnce(t *testing.T) {
	cfg := quickCfg()
	names := []string{"swim", "mesa"}
	cache := exp.NewCache()
	counts := map[exp.Key]int{}
	hook := exp.OnRun(func(k exp.Key) { counts[k]++ })

	perRA, _ := SpeedupsCached(cache, InOrder, Runahead, cfg, names, 50_000, hook)
	perIC, _ := SpeedupsCached(cache, InOrder, ICFP, cfg, names, 50_000, hook)
	if len(perRA) != len(names) || len(perIC) != len(names) {
		t.Fatalf("per-benchmark maps: %v / %v", perRA, perIC)
	}

	for k, n := range counts {
		if n != 1 {
			t.Errorf("key %v simulated %d times, want 1", k, n)
		}
	}
	// 2 baselines + 2 Runahead + 2 iCFP; the second call reuses both
	// baseline runs.
	if want := 3 * len(names); cache.Simulations() != want {
		t.Errorf("total simulations = %d, want %d", cache.Simulations(), want)
	}
}

// TestSpeedupsToleratesDuplicateNames pins that repeated benchmark names
// collapse to one job pair instead of tripping the harness's
// duplicate-name check (the pre-harness Speedups accepted them too).
func TestSpeedupsToleratesDuplicateNames(t *testing.T) {
	cfg := quickCfg()
	per, geo := Speedups(InOrder, ICFP, cfg, []string{"swim", "swim"}, 50_000)
	if len(per) != 1 {
		t.Fatalf("per = %v, want one entry", per)
	}
	if geo <= 0 {
		t.Fatalf("geomean = %.1f%%", geo)
	}
}

// TestSweepMatchesCachedSweep pins that the memoized path computes the
// same numbers as independent runs of the same machines.
func TestSweepMatchesCachedSweep(t *testing.T) {
	cfg := quickCfg()
	lats := []int{10, 30}
	m := Figure6Machines()[1]
	plain := SweepL2Latency(m.Machine, cfg, "equake", 50_000, lats)
	cached := SweepL2LatencyCached(exp.NewCache(), m.Machine, cfg, "equake", 50_000, lats)
	for k := range lats {
		if plain[k] != cached[k] {
			t.Errorf("lat %d: plain %.3f%% vs cached %.3f%%", lats[k], plain[k], cached[k])
		}
	}
}

// TestJobBuildsModelRunner pins the sim.Job bridge into the harness.
func TestJobBuildsModelRunner(t *testing.T) {
	cfg := quickCfg()
	wl := spec.SPECWorkload("swim", cfg.WarmupInsts+50_000)
	var jobs []exp.Job
	for _, m := range AllModels {
		jobs = append(jobs, Job(fmt.Sprintf("job/%s", m), m, cfg, wl))
	}
	rs, err := exp.Run(jobs, exp.Parallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range AllModels {
		direct := RunSPEC(m, cfg, "swim", 50_000)
		got := rs.MustGet(fmt.Sprintf("job/%s", m))
		if got.Cycles != direct.Cycles || got.Insts != direct.Insts {
			t.Errorf("%s: harness %d cycles, direct %d", m, got.Cycles, direct.Cycles)
		}
	}
}
