package store_test

import (
	"encoding/json"
	"errors"
	"testing"

	"icfp/internal/exp"
	"icfp/internal/pipeline"
	"icfp/internal/spec"
	"icfp/internal/store"
	"icfp/internal/workload"
)

// TestFuzzSpecRoundTrip pins the fuzz family's store citizenship: the
// canonical key of a fuzz-family workload is stable across JSON
// encode/decode and across knob spellings (explicit zeros collapse to
// the omitted form), a record stored under it round-trips, and a
// byte-differing result for the same key is a ConflictError — exactly
// the guarantees named SPEC workloads get.
func TestFuzzSpecRoundTrip(t *testing.T) {
	s, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}

	wl := spec.FuzzWorkload(102, workload.FuzzKnobs{SBPressure: 85}, 60_000)
	m := spec.Machine{Model: spec.ModelICFP}
	k := exp.Key{Machine: m.Canonical(), Workload: wl.Canonical()}

	// A user-authored spelling with explicit zero knobs decodes to the
	// same canonical key: one scenario, one identity.
	var authored spec.Workload
	doc := `{"fuzz":{"seed":102,"sb_pressure":85,"branch_on_load":0,"miss_cluster":0},"n":60000}`
	if err := json.Unmarshal([]byte(doc), &authored); err != nil {
		t.Fatal(err)
	}
	if err := authored.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := authored.Canonical(); got != k.Workload {
		t.Fatalf("authored spelling canonicalizes to %s, builder to %s", got, k.Workload)
	}

	// Encode/decode of the canonical form is idempotent.
	var decoded spec.Workload
	if err := json.Unmarshal([]byte(k.Workload), &decoded); err != nil {
		t.Fatal(err)
	}
	if got := decoded.Canonical(); got != k.Workload {
		t.Fatalf("canonical form not a fixed point: %s -> %s", k.Workload, got)
	}

	rec := exp.CachedResult{
		Machine: k.Machine, Workload: k.Workload,
		R:         pipeline.Result{Cycles: 123_456, Insts: 60_000},
		ElapsedNS: 5,
	}
	if err := s.Put(rec); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get(k)
	if err != nil || !ok {
		t.Fatalf("Get after Put = ok=%v err=%v", ok, err)
	}
	if got.R.Cycles != rec.R.Cycles || got.Workload != k.Workload {
		t.Errorf("round trip mangled record: %+v", got)
	}

	// First writer wins: an identical re-Put is a no-op...
	if err := s.Put(rec); err != nil {
		t.Fatalf("identical re-Put: %v", err)
	}
	// ...and a byte-differing result for the same fuzz key is a
	// determinism violation, never silently absorbed.
	bad := rec
	bad.R.Cycles++
	var ce *store.ConflictError
	if err := s.Put(bad); !errors.As(err, &ce) {
		t.Fatalf("conflicting Put = %v, want ConflictError", err)
	}
}
