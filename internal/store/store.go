// Package store is the persistent, content-addressed simulation result
// store behind the expq service (internal/serve, cmd/expq): a shared,
// multi-client promotion of the single-file `-cache-file` snapshot. Each
// completed simulation is one record on disk, addressed by the SHA-256
// of its canonical (machine, workload) spec pair — the same collision-
// free identity internal/exp memoizes on and internal/dist ships over
// the wire — in a two-level fanout directory layout, so any number of
// processes can read and append concurrently without ever rewriting a
// shared file.
//
// Writes are atomic (unique temp file, fsync, rename): a crash leaves
// either no record or a complete one, never a torn file, and concurrent
// writers of one key cannot clobber each other mid-write. Identity is
// enforced optimistically: simulations are deterministic pure functions
// of their specs, so two writers of one key must produce byte-identical
// results — the first writer wins and later identical Puts are no-ops,
// while a byte-level result difference is a *ConflictError* (a
// determinism violation, never to be papered over). The store is
// bounded: with a positive MaxBytes, least-recently-accessed records are
// evicted after each Put (Get refreshes a record's access time), so a
// long-lived daemon's disk footprint stays under the knob.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"icfp/internal/exp"
	"icfp/internal/obs"
)

// RecordVersion identifies the on-disk record schema. Records embed the
// exp.CachedResult layout (machine, workload, result, elapsed_ns), so
// the additive-fields versioning rules of docs/ARCHITECTURE.md apply
// here too: new optional fields do not bump the version, re-keyings do.
const RecordVersion = 1

// record is the on-disk layout of one result file.
type record struct {
	Version int `json:"version"`
	exp.CachedResult
}

// ConflictError reports a Put whose key already holds a byte-different
// result: two simulators disagreed about a deterministic function. This
// is fatal by design — serving either record would silently corrupt
// someone's results — so callers must surface it, not retry it.
type ConflictError struct {
	Path              string
	Machine, Workload string
}

func (e *ConflictError) Error() string {
	return fmt.Sprintf("store: result conflict for (%s | %s): %s already holds a byte-different result (determinism violation — delete the store only after finding the divergent simulator)",
		e.Machine, e.Workload, e.Path)
}

// Options configure an opened store.
type Options struct {
	// MaxBytes bounds the store's total record bytes: after each Put,
	// least-recently-accessed records are evicted until the total is
	// back under the bound. Zero means unbounded.
	MaxBytes int64
}

// recMeta is the in-memory index entry of one on-disk record.
type recMeta struct {
	size   int64
	access time.Time
}

// Store is one on-disk result store. It is safe for concurrent use by
// multiple goroutines, and the on-disk format is safe for concurrent
// use by multiple processes (atomic per-record writes; the in-memory
// byte accounting of other processes' records refreshes lazily as keys
// are read).
type Store struct {
	dir      string
	maxBytes int64

	mu    sync.Mutex
	recs  map[string]recMeta // hash → size and last access
	bytes int64

	// Telemetry (Instrument); every method on the nil zero values is a
	// no-op, so an uninstrumented store pays one nil check per event.
	hits, misses, puts, evictions *obs.Counter
}

// Open opens (creating if needed) the store rooted at dir and indexes
// its existing records.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	s := &Store{dir: dir, maxBytes: opts.MaxBytes, recs: make(map[string]recMeta)}
	if err := s.scan(); err != nil {
		return nil, err
	}
	return s, nil
}

// Instrument attaches a metrics registry: expq_store_hits_total /
// expq_store_misses_total (Get outcomes), expq_store_puts_total (new
// records written), expq_store_evictions_total, and the
// expq_store_bytes / expq_store_records gauges. A nil registry detaches.
func (s *Store) Instrument(reg *obs.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hits = reg.Counter("expq_store_hits_total", "store lookups answered from a persisted record")
	s.misses = reg.Counter("expq_store_misses_total", "store lookups that found no record")
	s.puts = reg.Counter("expq_store_puts_total", "new records written to the store")
	s.evictions = reg.Counter("expq_store_evictions_total", "records evicted to stay under the byte bound")
	reg.GaugeFunc("expq_store_bytes", "total bytes of persisted result records", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(s.bytes)
	})
	reg.GaugeFunc("expq_store_records", "persisted result records", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(len(s.recs))
	})
}

// HashKey returns the content address of a simulation: the SHA-256 hex
// digest of its canonical machine and workload encodings. Equal keys
// construct identical simulations (the spec package's contract), so the
// hash is a collision-free record identity.
func HashKey(k exp.Key) string {
	h := sha256.New()
	h.Write([]byte(k.Machine))
	h.Write([]byte{0}) // unambiguous split: canonical JSON never contains NUL
	h.Write([]byte(k.Workload))
	return hex.EncodeToString(h.Sum(nil))
}

// pathFor returns the record file of a hash: a two-hex-character fanout
// directory (256-way, so even millions of records keep directory
// listings small) holding one JSON file per record.
func (s *Store) pathFor(hash string) string {
	return filepath.Join(s.dir, hash[:2], hash+".json")
}

// scan indexes the records already on disk.
func (s *Store) scan() error {
	fanouts, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("store: reading %s: %w", s.dir, err)
	}
	for _, fan := range fanouts {
		if !fan.IsDir() || len(fan.Name()) != 2 {
			continue
		}
		ents, err := os.ReadDir(filepath.Join(s.dir, fan.Name()))
		if err != nil {
			return fmt.Errorf("store: reading %s: %w", filepath.Join(s.dir, fan.Name()), err)
		}
		for _, ent := range ents {
			name := ent.Name()
			if filepath.Ext(name) != ".json" {
				continue
			}
			info, err := ent.Info()
			if err != nil {
				continue // raced with another process's eviction
			}
			s.recs[name[:len(name)-len(".json")]] = recMeta{size: info.Size(), access: info.ModTime()}
			s.bytes += info.Size()
		}
	}
	return nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Len returns the number of indexed records.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.recs)
}

// Bytes returns the total indexed record bytes.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Get returns the persisted result for k, if the store has one, and
// refreshes the record's access time (the LRU clock eviction runs on).
// A record another process evicted since it was indexed reads as a
// plain miss.
func (s *Store) Get(k exp.Key) (exp.CachedResult, bool, error) {
	hash := HashKey(k)
	path := s.pathFor(hash)
	rec, size, err := readRecord(path)
	if err != nil {
		if os.IsNotExist(err) {
			s.mu.Lock()
			s.dropLocked(hash)
			s.mu.Unlock()
			s.misses.Inc()
			return exp.CachedResult{}, false, nil
		}
		return exp.CachedResult{}, false, err
	}
	if rec.Machine != k.Machine || rec.Workload != k.Workload {
		return exp.CachedResult{}, false, fmt.Errorf("store: %s holds (%s | %s), wanted (%s | %s) — hash collision or corrupted record",
			path, rec.Machine, rec.Workload, k.Machine, k.Workload)
	}
	now := time.Now()
	os.Chtimes(path, now, now) // best effort: a failed bump only ages the record early
	s.mu.Lock()
	if old, ok := s.recs[hash]; ok {
		s.bytes += size - old.size
	} else {
		s.bytes += size // another process wrote it since our scan
	}
	s.recs[hash] = recMeta{size: size, access: now}
	s.mu.Unlock()
	s.hits.Inc()
	return rec.CachedResult, true, nil
}

// readRecord reads and decodes one record file.
func readRecord(path string) (record, int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return record{}, 0, err
	}
	var rec record
	if err := json.Unmarshal(data, &rec); err != nil {
		return record{}, 0, fmt.Errorf("store: decoding %s: %w", path, err)
	}
	if rec.Version != RecordVersion {
		return record{}, 0, fmt.Errorf("store: %s is record schema v%d, this build reads v%d", path, rec.Version, RecordVersion)
	}
	return rec, int64(len(data)), nil
}

// resultBytes is the comparable identity of a stored result: its JSON
// encoding. pipeline.Result round-trips JSON exactly (the property the
// whole distributed design rests on), so byte equality here is result
// equality. ElapsedNS is deliberately excluded — it describes the host
// that ran the simulation, not the simulation.
func resultBytes(r exp.CachedResult) []byte {
	b, err := json.Marshal(r.R)
	if err != nil {
		panic(fmt.Sprintf("store: encoding result for (%s | %s): %v", r.Machine, r.Workload, err))
	}
	return b
}

// Put persists one completed simulation. If the key already holds a
// record with the identical result, the first writer wins and Put is a
// no-op (the existing record, including its recorded elapsed time, is
// kept). If the existing result differs byte-for-byte, Put returns a
// *ConflictError — deterministic simulations cannot disagree, so the
// store refuses to pick a side. After a new record lands, eviction
// brings the store back under its byte bound.
func (s *Store) Put(r exp.CachedResult) error {
	hash := HashKey(exp.Key{Machine: r.Machine, Workload: r.Workload})
	path := s.pathFor(hash)
	if existing, size, err := readRecord(path); err == nil {
		if string(resultBytes(existing.CachedResult)) != string(resultBytes(r)) {
			return &ConflictError{Path: path, Machine: r.Machine, Workload: r.Workload}
		}
		s.mu.Lock()
		if _, ok := s.recs[hash]; !ok {
			s.bytes += size
		}
		s.recs[hash] = recMeta{size: size, access: time.Now()}
		s.mu.Unlock()
		return nil
	} else if !os.IsNotExist(err) {
		return err
	}

	data, err := json.MarshalIndent(record{Version: RecordVersion, CachedResult: r}, "", "  ")
	if err != nil {
		return fmt.Errorf("store: encoding record for %s: %w", path, err)
	}
	data = append(data, '\n')
	if err := writeAtomic(path, data); err != nil {
		return err
	}
	s.puts.Inc()
	s.mu.Lock()
	if old, ok := s.recs[hash]; ok {
		s.bytes -= old.size
	}
	s.recs[hash] = recMeta{size: int64(len(data)), access: time.Now()}
	s.bytes += int64(len(data))
	evict := s.evictablesLocked()
	s.mu.Unlock()
	for _, h := range evict {
		s.remove(h)
	}
	return nil
}

// writeAtomic writes data to path via a unique fsynced temp file and a
// rename, creating the fanout directory on the way: concurrent writers
// never see each other's work in progress, and a crash leaves either no
// record or a complete one. Every error names the destination path.
func writeAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: creating record directory for %s: %w", path, err)
	}
	f, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("store: creating temp record for %s: %w", path, err)
	}
	tmp := f.Name()
	_, err = f.Write(data)
	if err == nil {
		err = f.Sync()
	}
	if err == nil {
		// CreateTemp makes the file 0600; records are shareable data.
		err = f.Chmod(0o644)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: writing record %s: %w", path, err)
	}
	return nil
}

// evictablesLocked picks the least-recently-accessed records to drop
// until the store is back under its byte bound; the caller holds mu and
// performs the removals after releasing it. The newest record always
// survives, so a single result larger than the bound still persists.
func (s *Store) evictablesLocked() []string {
	if s.maxBytes <= 0 {
		return nil
	}
	var out []string
	for s.bytes > s.maxBytes && len(s.recs) > 1 {
		var oldest string
		var oldestAt time.Time
		for h, m := range s.recs {
			if oldest == "" || m.access.Before(oldestAt) {
				oldest, oldestAt = h, m.access
			}
		}
		out = append(out, oldest)
		s.bytes -= s.recs[oldest].size
		delete(s.recs, oldest)
	}
	return out
}

// remove deletes one record file (already dropped from the index).
func (s *Store) remove(hash string) {
	os.Remove(s.pathFor(hash)) // ENOENT means another process got there first
	s.evictions.Inc()
}

// dropLocked forgets an index entry whose file is gone (evicted by
// another process); the caller holds mu.
func (s *Store) dropLocked(hash string) {
	if m, ok := s.recs[hash]; ok {
		s.bytes -= m.size
		delete(s.recs, hash)
	}
}

// ImportSnapshot is the one-shot migration path from the single-client
// `-cache-file` world: it reads a schema-v2 snapshot (exp.ReadSnapshot)
// and persists every entry, returning how many records were newly
// written (entries already in the store are first-writer-wins no-ops).
// A snapshot from a different schema — including the legacy unversioned
// fingerprint-keyed format, whose entries cannot be re-keyed — is an
// error, not a silent partial import.
func (s *Store) ImportSnapshot(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	rs, err := exp.ReadSnapshot(f)
	if err != nil {
		return 0, fmt.Errorf("store: importing %s: %w", path, err)
	}
	before := s.Len()
	for _, r := range rs {
		if err := s.Put(r); err != nil {
			return s.Len() - before, fmt.Errorf("store: importing %s: %w", path, err)
		}
	}
	return s.Len() - before, nil
}
