package store_test

import (
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"icfp/internal/exp"
	"icfp/internal/obs"
	"icfp/internal/pipeline"
	"icfp/internal/store"
)

// rec fabricates a distinct result record. The store treats machine and
// workload as opaque canonical strings and never interprets the result,
// so synthetic identities exercise it fully.
func rec(machine, workload string, cycles int64) exp.CachedResult {
	return exp.CachedResult{
		Machine:   machine,
		Workload:  workload,
		R:         pipeline.Result{Cycles: cycles, Insts: cycles * 2},
		ElapsedNS: 1000,
	}
}

func key(r exp.CachedResult) exp.Key {
	return exp.Key{Machine: r.Machine, Workload: r.Workload}
}

func TestRoundTripAndLayout(t *testing.T) {
	dir := t.TempDir()
	s, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := rec(`{"m":1}`, `{"w":1}`, 42)
	if _, ok, err := s.Get(key(r)); err != nil || ok {
		t.Fatalf("empty store Get = ok=%v err=%v, want miss", ok, err)
	}
	if err := s.Put(r); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get(key(r))
	if err != nil || !ok {
		t.Fatalf("Get after Put = ok=%v err=%v", ok, err)
	}
	if got.R.Cycles != 42 || got.ElapsedNS != 1000 {
		t.Errorf("round trip mangled record: %+v", got)
	}

	// The record must live at <dir>/<hash[:2]>/<hash>.json.
	hash := store.HashKey(key(r))
	path := filepath.Join(dir, hash[:2], hash+".json")
	if _, err := os.Stat(path); err != nil {
		t.Errorf("record not at content address %s: %v", path, err)
	}

	// A fresh Open of the same directory sees the record (persistence).
	s2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s2.Get(key(r)); err != nil || !ok {
		t.Errorf("reopened store lost the record: ok=%v err=%v", ok, err)
	}
	if s2.Len() != 1 || s2.Bytes() <= 0 {
		t.Errorf("reopened index Len=%d Bytes=%d, want 1 record with positive bytes", s2.Len(), s2.Bytes())
	}
}

// TestFirstWriterWins pins the optimistic-concurrency contract: a second
// Put of the identical result is a silent no-op (even with a different
// elapsed time, which describes the host, not the simulation), while a
// byte-different result is a fatal ConflictError naming the record path.
func TestFirstWriterWins(t *testing.T) {
	dir := t.TempDir()
	s, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := rec("m", "w", 7)
	if err := s.Put(r); err != nil {
		t.Fatal(err)
	}
	dup := r
	dup.ElapsedNS = 999999 // a slower host re-ran it; still the same simulation
	if err := s.Put(dup); err != nil {
		t.Fatalf("identical re-Put errored: %v", err)
	}
	got, _, err := s.Get(key(r))
	if err != nil {
		t.Fatal(err)
	}
	if got.ElapsedNS != 1000 {
		t.Errorf("re-Put replaced the first writer's record (elapsed %d, want 1000)", got.ElapsedNS)
	}

	bad := r
	bad.R.Cycles = 8 // a determinism violation
	err = s.Put(bad)
	var conflict *store.ConflictError
	if !errors.As(err, &conflict) {
		t.Fatalf("conflicting Put returned %v, want *ConflictError", err)
	}
	hash := store.HashKey(key(r))
	if !strings.Contains(conflict.Path, hash) {
		t.Errorf("ConflictError path %q does not name the record file (hash %s)", conflict.Path, hash)
	}
	// The store keeps the original record.
	got, _, _ = s.Get(key(r))
	if got.R.Cycles != 7 {
		t.Errorf("conflict clobbered the stored result: cycles %d, want 7", got.R.Cycles)
	}
}

// TestEvictionLRU pins the bounded-size policy: once the byte bound is
// exceeded, least-recently-accessed records go first, and a Get refreshes
// a record's access time so hot entries survive.
func TestEvictionLRU(t *testing.T) {
	dir := t.TempDir()
	probe, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := probe.Put(rec("m", "probe", 1)); err != nil {
		t.Fatal(err)
	}
	recBytes := probe.Bytes() // all synthetic records are near-identical size

	// Budget for three records; insert four, keeping the oldest hot.
	dir2 := t.TempDir()
	s, err := store.Open(dir2, store.Options{MaxBytes: recBytes*3 + recBytes/2})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	s.Instrument(reg)
	var rs []exp.CachedResult
	for i := 0; i < 4; i++ {
		r := rec("m", fmt.Sprintf("w%d", i), int64(i+1))
		rs = append(rs, r)
		if i == 3 {
			// Refresh w0 so w1 is the LRU victim when w3 lands. The access
			// clock is time.Now(); a sleep keeps it strictly ordered even on
			// coarse filesystem timestamps (the index clock is in-memory).
			time.Sleep(5 * time.Millisecond)
			if _, ok, err := s.Get(key(rs[0])); err != nil || !ok {
				t.Fatalf("refresh Get: ok=%v err=%v", ok, err)
			}
			time.Sleep(5 * time.Millisecond)
		}
		if err := s.Put(r); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}

	if s.Bytes() > recBytes*3+recBytes/2 {
		t.Errorf("store over budget after eviction: %d bytes", s.Bytes())
	}
	wantAlive := map[int]bool{0: true, 1: false, 2: true, 3: true}
	for i, r := range rs {
		_, ok, err := s.Get(key(r))
		if err != nil {
			t.Fatal(err)
		}
		if ok != wantAlive[i] {
			t.Errorf("record w%d alive=%v, want %v (LRU must evict the stalest, not the hot-again oldest)", i, ok, wantAlive[i])
		}
	}
	if v := reg.Counter("expq_store_evictions_total", "").Value(); v != 1 {
		t.Errorf("evictions counter = %d, want 1", v)
	}
}

// TestImportSnapshot pins the one-shot migration from -cache-file: a v2
// snapshot imports completely, re-import is a no-op, and a legacy
// unversioned snapshot is a loud SnapshotVersionError, not a partial
// import.
func TestImportSnapshot(t *testing.T) {
	cache := exp.NewCache()
	cache.AddResults([]exp.CachedResult{rec("m1", "w1", 1), rec("m2", "w2", 2)})
	snap := filepath.Join(t.TempDir(), "cache.json")
	if err := exp.SaveCacheFile(cache, snap); err != nil {
		t.Fatal(err)
	}

	s, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	n, err := s.ImportSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || s.Len() != 2 {
		t.Errorf("import wrote %d records (store has %d), want 2", n, s.Len())
	}
	n, err = s.ImportSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("re-import wrote %d new records, want 0 (first-writer-wins)", n)
	}

	legacy := filepath.Join(t.TempDir(), "old.json")
	if err := os.WriteFile(legacy, []byte(`{"entries":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var vErr *exp.SnapshotVersionError
	if _, err := s.ImportSnapshot(legacy); !errors.As(err, &vErr) {
		t.Errorf("legacy snapshot import returned %v, want SnapshotVersionError", err)
	}
}

// TestPutErrorNamesPath is the store half of the error-ergonomics
// satellite: a Put that cannot write must name the destination record
// path, whether the store root vanished or (as non-root) is read-only.
func TestPutErrorNamesPath(t *testing.T) {
	dir := t.TempDir()
	s, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := rec("m", "w", 1)
	hash := store.HashKey(key(r))

	t.Run("missing root", func(t *testing.T) {
		if err := os.RemoveAll(dir); err != nil {
			t.Fatal(err)
		}
		err := s.Put(r)
		if err == nil {
			t.Skip("fanout mkdir recreated the root; covered by read-only dir")
		}
		if !strings.Contains(err.Error(), hash) {
			t.Errorf("error %q does not name the record (hash %s)", err, hash)
		}
	})
	t.Run("read-only dir", func(t *testing.T) {
		if os.Geteuid() == 0 {
			t.Skip("running as root: directory permissions are not enforced")
		}
		roDir := t.TempDir()
		s2, err := store.Open(roDir, store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Chmod(roDir, 0o555); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { os.Chmod(roDir, 0o755) })
		err = s2.Put(r)
		if err == nil {
			t.Fatal("Put into a read-only store directory succeeded")
		}
		if !strings.Contains(err.Error(), hash) {
			t.Errorf("error %q does not name the record (hash %s)", err, hash)
		}
	})
}

// TestConcurrentPutGet races many goroutines over one store — mixed
// Put/Get traffic on overlapping keys with eviction churn — and asserts
// no lost records among the keys that must survive. Run under -race in
// CI (the dist job's race sweep covers internal/...).
func TestConcurrentPutGet(t *testing.T) {
	s, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	const keys = 32
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines*keys)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < keys; i++ {
				// All goroutines write the same deterministic result per key:
				// concurrent identical Puts must coexist (first-writer-wins).
				r := rec("m", fmt.Sprintf("w%d", i), int64(i))
				if err := s.Put(r); err != nil {
					errCh <- fmt.Errorf("goroutine %d put w%d: %w", g, i, err)
					return
				}
				if _, ok, err := s.Get(key(r)); err != nil || !ok {
					errCh <- fmt.Errorf("goroutine %d get w%d: ok=%v err=%v", g, i, ok, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if s.Len() != keys {
		t.Errorf("store has %d records, want %d", s.Len(), keys)
	}
}

// TestConcurrentEviction races writers against the evictor: a tiny byte
// bound forces every Put to evict while other goroutines Get. Nothing
// here asserts which records survive (that depends on timing) — the
// assertions are no errors, no torn files, and the bound holds.
func TestConcurrentEviction(t *testing.T) {
	dir := t.TempDir()
	probe, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := probe.Put(rec("m", "probe", 1)); err != nil {
		t.Fatal(err)
	}
	bound := probe.Bytes() * 4

	s, err := store.Open(t.TempDir(), store.Options{MaxBytes: bound})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 16; i++ {
				r := rec("m", fmt.Sprintf("g%d-w%d", g, i), int64(i))
				if err := s.Put(r); err != nil {
					errCh <- err
					return
				}
				s.Get(key(r)) // may miss: another goroutine's Put can evict it
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if s.Bytes() > bound {
		t.Errorf("store over budget under concurrent eviction: %d > %d", s.Bytes(), bound)
	}
	// Every surviving record must parse cleanly — no torn files.
	s2, err := store.Open(s.Dir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for g := 0; g < 4; g++ {
		for i := 0; i < 16; i++ {
			k := exp.Key{Machine: "m", Workload: fmt.Sprintf("g%d-w%d", g, i)}
			if _, _, err := s2.Get(k); err != nil {
				t.Errorf("surviving record %v is torn: %v", k, err)
			}
		}
	}
}

// TestTwoProcessAppend is the multi-process half of the concurrency
// satellite: two separate OS processes append overlapping and disjoint
// key sets to one store directory through the public API, and every
// record must land intact — the temp+rename protocol makes concurrent
// writers safe without any cross-process locking.
func TestTwoProcessAppend(t *testing.T) {
	if os.Getenv("STORE_APPEND_HELPER") != "" {
		helperAppend(os.Getenv("STORE_APPEND_HELPER"), os.Getenv("STORE_APPEND_SET"))
		os.Exit(0)
	}
	dir := t.TempDir()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	var procs []*exec.Cmd
	for _, set := range []string{"a", "b"} {
		cmd := exec.Command(exe, "-test.run", "^TestTwoProcessAppend$", "-test.v")
		cmd.Env = append(os.Environ(), "STORE_APPEND_HELPER="+dir, "STORE_APPEND_SET="+set)
		out, err := os.CreateTemp(t.TempDir(), "helper-*")
		if err != nil {
			t.Fatal(err)
		}
		cmd.Stdout, cmd.Stderr = out, out
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		procs = append(procs, cmd)
	}
	for i, cmd := range procs {
		if err := cmd.Wait(); err != nil {
			t.Fatalf("helper process %d: %v", i, err)
		}
	}

	s, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Each helper writes 20 private keys and 10 shared ones (identical
	// deterministic results, so the overlap is first-writer-wins, not a
	// conflict): 50 distinct records total, none lost, none torn.
	want := 20 + 20 + 10
	if s.Len() != want {
		t.Errorf("store has %d records after two-process append, want %d", s.Len(), want)
	}
	for _, set := range []string{"a", "b", "shared"} {
		for i := 0; i < helperCount(set); i++ {
			k := exp.Key{Machine: "m", Workload: fmt.Sprintf("%s-%d", set, i)}
			if _, ok, err := s.Get(k); err != nil || !ok {
				t.Errorf("record %v lost or torn: ok=%v err=%v", k, ok, err)
			}
		}
	}
}

func helperCount(set string) int {
	if set == "shared" {
		return 10
	}
	return 20
}

// helperAppend is the body run inside each helper process.
func helperAppend(dir, set string) {
	s, err := store.Open(dir, store.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	put := func(workload string, cycles int64) {
		if err := s.Put(rec("m", workload, cycles)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	for i := 0; i < helperCount(set); i++ {
		put(fmt.Sprintf("%s-%d", set, i), int64(i))
		if i < helperCount("shared") {
			// Shared keys: both processes race to write the identical record.
			put(fmt.Sprintf("shared-%d", i), int64(i))
		}
	}
}

// TestInstrumentCounters pins the expq_store_* metric names the CI serve
// job greps for.
func TestInstrumentCounters(t *testing.T) {
	s, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	s.Instrument(reg)
	r := rec("m", "w", 1)
	s.Get(key(r)) // miss
	s.Put(r)      // put
	s.Get(key(r)) // hit
	for name, want := range map[string]int64{
		"expq_store_hits_total":   1,
		"expq_store_misses_total": 1,
		"expq_store_puts_total":   1,
	} {
		if v := reg.Counter(name, "").Value(); v != want {
			t.Errorf("%s = %d, want %d", name, v, want)
		}
	}
}
