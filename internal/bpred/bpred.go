// Package bpred implements the front-end prediction structures from
// Table 1: a PPM-like tagged multi-table direction predictor (after
// Michaud, JILP 2005) within a 24 KB budget, a 2K-entry branch target
// buffer, and a 32-entry return address stack.
//
// The PPM predictor consults a bimodal base table and three tagged tables
// indexed by progressively longer global-history hashes; the longest
// matching table provides the prediction, and allocation on a mispredict
// moves the branch into a longer-history table.
package bpred

// Config sizes the predictor.
type Config struct {
	BimodalBits int   // log2 entries of the base bimodal table
	TaggedBits  int   // log2 entries of each tagged table
	HistLens    []int // global history length per tagged table
	BTBBits     int   // log2 entries of the branch target buffer
	RASEntries  int   // return address stack depth
}

// DefaultConfig matches the paper's 24 KB 3-table PPM predictor, 2K-entry
// BTB and 32-entry RAS.
func DefaultConfig() Config {
	return Config{
		BimodalBits: 13, // 8K 2-bit counters = 2 KB
		TaggedBits:  11, // 3 x 2K entries x ~12 bits ≈ 9 KB
		HistLens:    []int{5, 15, 40},
		BTBBits:     11, // 2K entries
		RASEntries:  32,
	}
}

type taggedEntry struct {
	tag   uint16
	ctr   int8 // -2..1, taken if >= 0
	valid bool
}

// Predictor is the combined direction predictor, BTB, and RAS.
type Predictor struct {
	cfg     Config
	bimodal []int8 // 2-bit saturating counters, taken if >= 2 (range 0..3)
	tagged  [][]taggedEntry
	hist    uint64 // global history, youngest outcome in bit 0

	btbTags    []uint32
	btbTargets []uint64

	ras    []uint64
	rasTop int

	// Stats
	Lookups, Mispredicts   uint64
	BTBLookups, BTBMisses  uint64
	RASPushes, RASOverflow uint64
}

// New builds a predictor from cfg.
func New(cfg Config) *Predictor {
	p := &Predictor{
		cfg:        cfg,
		bimodal:    make([]int8, 1<<cfg.BimodalBits),
		btbTags:    make([]uint32, 1<<cfg.BTBBits),
		btbTargets: make([]uint64, 1<<cfg.BTBBits),
		ras:        make([]uint64, cfg.RASEntries),
	}
	for i := range p.bimodal {
		p.bimodal[i] = 2 // weakly taken
	}
	p.tagged = make([][]taggedEntry, len(cfg.HistLens))
	for i := range p.tagged {
		p.tagged[i] = make([]taggedEntry, 1<<cfg.TaggedBits)
	}
	return p
}

// foldHistory compresses histLen bits of global history into bits wide.
func foldHistory(hist uint64, histLen, bits int) uint64 {
	if histLen > 64 {
		histLen = 64
	}
	var masked uint64
	if histLen == 64 {
		masked = hist
	} else {
		masked = hist & ((1 << uint(histLen)) - 1)
	}
	var folded uint64
	for masked != 0 {
		folded ^= masked & ((1 << uint(bits)) - 1)
		masked >>= uint(bits)
	}
	return folded
}

func (p *Predictor) taggedIndex(table int, pc uint64) (idx uint64, tag uint16) {
	bits := p.cfg.TaggedBits
	h := foldHistory(p.hist, p.cfg.HistLens[table], bits)
	idx = ((pc >> 2) ^ h ^ (pc >> uint(bits+2))) & ((1 << uint(bits)) - 1)
	t := foldHistory(p.hist, p.cfg.HistLens[table], 9)
	tag = uint16(((pc >> 2) ^ (t << 1)) & 0x1FF)
	return idx, tag
}

func (p *Predictor) bimodalIndex(pc uint64) uint64 {
	return (pc >> 2) & ((1 << uint(p.cfg.BimodalBits)) - 1)
}

// Predict returns the predicted direction for a conditional branch at pc.
func (p *Predictor) Predict(pc uint64) bool {
	p.Lookups++
	for t := len(p.tagged) - 1; t >= 0; t-- {
		idx, tag := p.taggedIndex(t, pc)
		e := &p.tagged[t][idx]
		if e.valid && e.tag == tag {
			return e.ctr >= 0
		}
	}
	return p.bimodal[p.bimodalIndex(pc)] >= 2
}

// Update trains the predictor with the resolved direction and shifts the
// global history. Call it exactly once per dynamic conditional branch, in
// program order.
func (p *Predictor) Update(pc uint64, taken bool) {
	pred := p.predictInternal(pc)
	correct := pred == taken

	// Train the provider (longest matching table, else bimodal).
	provider := -1
	for t := len(p.tagged) - 1; t >= 0; t-- {
		idx, tag := p.taggedIndex(t, pc)
		e := &p.tagged[t][idx]
		if e.valid && e.tag == tag {
			provider = t
			if taken && e.ctr < 1 {
				e.ctr++
			} else if !taken && e.ctr > -2 {
				e.ctr--
			}
			break
		}
	}
	if provider < 0 {
		bi := p.bimodalIndex(pc)
		if taken && p.bimodal[bi] < 3 {
			p.bimodal[bi]++
		} else if !taken && p.bimodal[bi] > 0 {
			p.bimodal[bi]--
		}
	}

	// On a mispredict, allocate in one longer-history table.
	if !correct {
		p.Mispredicts++
		for t := provider + 1; t < len(p.tagged); t++ {
			idx, tag := p.taggedIndex(t, pc)
			e := &p.tagged[t][idx]
			if !e.valid || e.ctr == 0 || e.ctr == -1 {
				var ctr int8 = -1
				if taken {
					ctr = 0
				}
				*e = taggedEntry{tag: tag, ctr: ctr, valid: true}
				break
			}
		}
	}

	p.hist = p.hist<<1 | boolBit(taken)
}

// predictInternal is Predict without stats, used by Update to determine
// correctness against the same state Predict saw.
func (p *Predictor) predictInternal(pc uint64) bool {
	for t := len(p.tagged) - 1; t >= 0; t-- {
		idx, tag := p.taggedIndex(t, pc)
		e := &p.tagged[t][idx]
		if e.valid && e.tag == tag {
			return e.ctr >= 0
		}
	}
	return p.bimodal[p.bimodalIndex(pc)] >= 2
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// PredictTarget consults the BTB for the target of a taken control
// transfer at pc. ok is false on a BTB miss.
func (p *Predictor) PredictTarget(pc uint64) (target uint64, ok bool) {
	p.BTBLookups++
	idx := (pc >> 2) & ((1 << uint(p.cfg.BTBBits)) - 1)
	if p.btbTags[idx] == uint32(pc>>2) && p.btbTargets[idx] != 0 {
		return p.btbTargets[idx], true
	}
	p.BTBMisses++
	return 0, false
}

// UpdateTarget installs the resolved target for pc.
func (p *Predictor) UpdateTarget(pc, target uint64) {
	idx := (pc >> 2) & ((1 << uint(p.cfg.BTBBits)) - 1)
	p.btbTags[idx] = uint32(pc >> 2)
	p.btbTargets[idx] = target
}

// Push records a return address on the RAS (for calls).
func (p *Predictor) Push(ret uint64) {
	p.RASPushes++
	if p.rasTop == len(p.ras) {
		p.RASOverflow++
		copy(p.ras, p.ras[1:])
		p.rasTop--
	}
	p.ras[p.rasTop] = ret
	p.rasTop++
}

// Pop predicts a return target from the RAS. ok is false when empty.
func (p *Predictor) Pop() (ret uint64, ok bool) {
	if p.rasTop == 0 {
		return 0, false
	}
	p.rasTop--
	return p.ras[p.rasTop], true
}

// MispredictRate returns the fraction of mispredicted direction lookups.
func (p *Predictor) MispredictRate() float64 {
	if p.Lookups == 0 {
		return 0
	}
	return float64(p.Mispredicts) / float64(p.Lookups)
}
