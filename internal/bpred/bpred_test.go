package bpred

import (
	"math/rand"
	"testing"
)

func newDefault() *Predictor { return New(DefaultConfig()) }

func TestAlwaysTakenLearns(t *testing.T) {
	p := newDefault()
	pc := uint64(0x1000)
	for i := 0; i < 50; i++ {
		p.Predict(pc)
		p.Update(pc, true)
	}
	if !p.Predict(pc) {
		t.Fatal("always-taken branch must be predicted taken")
	}
}

func TestAlwaysNotTakenLearns(t *testing.T) {
	p := newDefault()
	pc := uint64(0x2000)
	for i := 0; i < 50; i++ {
		p.Predict(pc)
		p.Update(pc, false)
	}
	if p.Predict(pc) {
		t.Fatal("never-taken branch must be predicted not-taken")
	}
}

func TestAlternatingPatternLearned(t *testing.T) {
	// T,N,T,N... is trivially captured with history; a PPM predictor must
	// get well above 90% accuracy after warmup.
	p := newDefault()
	pc := uint64(0x3000)
	correct, total := 0, 0
	for i := 0; i < 2000; i++ {
		taken := i%2 == 0
		pred := p.Predict(pc)
		if i > 500 {
			total++
			if pred == taken {
				correct++
			}
		}
		p.Update(pc, taken)
	}
	if acc := float64(correct) / float64(total); acc < 0.9 {
		t.Fatalf("alternating accuracy = %.2f, want >= 0.9", acc)
	}
}

func TestLoopPatternLearned(t *testing.T) {
	// 7 taken, 1 not-taken (a loop with trip count 8).
	p := newDefault()
	pc := uint64(0x4000)
	correct, total := 0, 0
	for i := 0; i < 4000; i++ {
		taken := i%8 != 7
		pred := p.Predict(pc)
		if i > 1000 {
			total++
			if pred == taken {
				correct++
			}
		}
		p.Update(pc, taken)
	}
	if acc := float64(correct) / float64(total); acc < 0.9 {
		t.Fatalf("loop accuracy = %.2f, want >= 0.9", acc)
	}
}

func TestRandomBranchNearChance(t *testing.T) {
	p := newDefault()
	rng := rand.New(rand.NewSource(42))
	pc := uint64(0x5000)
	correct, total := 0, 0
	for i := 0; i < 5000; i++ {
		taken := rng.Intn(2) == 0
		pred := p.Predict(pc)
		total++
		if pred == taken {
			correct++
		}
		p.Update(pc, taken)
	}
	acc := float64(correct) / float64(total)
	if acc > 0.65 {
		t.Fatalf("random branch accuracy %.2f is implausibly high", acc)
	}
}

func TestDistinctBranchesIndependent(t *testing.T) {
	p := newDefault()
	a, b := uint64(0x1000), uint64(0x1F04) // distinct bimodal indices
	for i := 0; i < 100; i++ {
		p.Update(a, true)
		p.Update(b, false)
	}
	if !p.Predict(a) || p.Predict(b) {
		t.Fatal("independent branches interfere")
	}
}

func TestMispredictCounting(t *testing.T) {
	p := newDefault()
	pc := uint64(0x6000)
	for i := 0; i < 10; i++ {
		p.Predict(pc)
		p.Update(pc, true)
	}
	before := p.Mispredicts
	p.Predict(pc)
	p.Update(pc, false) // surprise
	if p.Mispredicts != before+1 {
		t.Fatalf("Mispredicts = %d, want %d", p.Mispredicts, before+1)
	}
	if p.MispredictRate() <= 0 {
		t.Fatal("MispredictRate must be positive")
	}
}

func TestBTB(t *testing.T) {
	p := newDefault()
	if _, ok := p.PredictTarget(0x1000); ok {
		t.Fatal("cold BTB must miss")
	}
	p.UpdateTarget(0x1000, 0x8000)
	tgt, ok := p.PredictTarget(0x1000)
	if !ok || tgt != 0x8000 {
		t.Fatalf("BTB hit = %v target=%#x", ok, tgt)
	}
	if p.BTBMisses != 1 || p.BTBLookups != 2 {
		t.Fatalf("BTB stats lookups=%d misses=%d", p.BTBLookups, p.BTBMisses)
	}
}

func TestBTBConflict(t *testing.T) {
	p := New(DefaultConfig())
	// Two PCs mapping to the same BTB set: differ by entries*4.
	a := uint64(0x1000)
	b := a + uint64(4<<11)
	p.UpdateTarget(a, 0x100)
	p.UpdateTarget(b, 0x200)
	if tgt, ok := p.PredictTarget(a); ok && tgt == 0x100 {
		t.Fatal("conflicting BTB entry must have displaced the first")
	}
	if tgt, ok := p.PredictTarget(b); !ok || tgt != 0x200 {
		t.Fatal("latest BTB entry must be present")
	}
}

func TestRASLIFO(t *testing.T) {
	p := newDefault()
	p.Push(0x100)
	p.Push(0x200)
	if r, ok := p.Pop(); !ok || r != 0x200 {
		t.Fatalf("first pop = %#x, %v", r, ok)
	}
	if r, ok := p.Pop(); !ok || r != 0x100 {
		t.Fatalf("second pop = %#x, %v", r, ok)
	}
	if _, ok := p.Pop(); ok {
		t.Fatal("empty RAS must report not-ok")
	}
}

func TestRASOverflowDropsOldest(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RASEntries = 2
	p := New(cfg)
	p.Push(1)
	p.Push(2)
	p.Push(3) // drops 1
	if p.RASOverflow != 1 {
		t.Fatalf("RASOverflow = %d", p.RASOverflow)
	}
	r1, _ := p.Pop()
	r2, _ := p.Pop()
	if r1 != 3 || r2 != 2 {
		t.Fatalf("pops = %d,%d, want 3,2", r1, r2)
	}
	if _, ok := p.Pop(); ok {
		t.Fatal("oldest entry must have been dropped")
	}
}

func TestFoldHistory(t *testing.T) {
	if foldHistory(0, 10, 5) != 0 {
		t.Error("zero history folds to zero")
	}
	// Folding must be bounded by the requested width.
	for hl := 1; hl <= 64; hl += 7 {
		v := foldHistory(^uint64(0), hl, 8)
		if v >= 256 {
			t.Errorf("fold(%d bits) = %d exceeds width", hl, v)
		}
	}
}
