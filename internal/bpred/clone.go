package bpred

// Clone returns a deep copy of the predictor: all direction tables, the
// BTB, the RAS, the global history, and statistics. The configured
// HistLens slice is shared (it is never written after New). Cloning must
// be exact — predictions from a clone are byte-identical to predictions
// from the original — so warmed predictor state can be checkpointed once
// and reused across simulations (pipeline.WarmState).
func (p *Predictor) Clone() *Predictor {
	cl := *p
	cl.bimodal = make([]int8, len(p.bimodal))
	copy(cl.bimodal, p.bimodal)
	cl.tagged = make([][]taggedEntry, len(p.tagged))
	for i := range p.tagged {
		cl.tagged[i] = make([]taggedEntry, len(p.tagged[i]))
		copy(cl.tagged[i], p.tagged[i])
	}
	cl.btbTags = make([]uint32, len(p.btbTags))
	copy(cl.btbTags, p.btbTags)
	cl.btbTargets = make([]uint64, len(p.btbTargets))
	copy(cl.btbTargets, p.btbTargets)
	cl.ras = make([]uint64, len(p.ras))
	copy(cl.ras, p.ras)
	return &cl
}
