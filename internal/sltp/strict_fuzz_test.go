package sltp

// Strict-vs-skip-ahead equivalence over the committed adversarial
// corpus (see the icfp variant's comment): SLTP's slice re-execution
// must survive the same corpus pathologies the cross-model oracle
// gates.

import (
	"testing"

	"icfp/internal/pipeline"
	"icfp/internal/workload"
)

var fuzzSampleLabels = []string{"sb-extreme", "bl-noisy", "mc-extreme", "rs-extreme", "all-d"}

func TestStrictEquivalenceFuzzCorpus(t *testing.T) {
	for _, label := range fuzzSampleLabels {
		c, ok := workload.FuzzCorpusMember(label)
		if !ok {
			t.Fatalf("corpus member %q missing (corpus edited instead of appended?)", label)
		}
		tc := strictCase{
			name: c.Label, cfg: pipeline.DefaultConfig,
			w: func() *workload.Workload { return workload.Fuzz(c.Seed, c.Knobs, 6000) },
		}
		t.Run(c.Label, func(t *testing.T) {
			want := runOnce(tc, true)
			got := runOnce(tc, false)
			if got != want {
				t.Errorf("skip-ahead diverged from strict stepping on %s:\nstrict: %+v\nskip:   %+v",
					c.Name(), want, got)
			}
		})
	}
}
