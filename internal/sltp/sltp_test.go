package sltp

import (
	"testing"

	"icfp/internal/inorder"
	"icfp/internal/pipeline"
	"icfp/internal/runahead"
	"icfp/internal/workload"
)

func cfgWarm(n int) pipeline.Config {
	cfg := pipeline.DefaultConfig()
	cfg.WarmupInsts = n
	return cfg
}

func TestLoneMissBeatsRunahead(t *testing.T) {
	// Figure 1a: SLTP commits miss-independent work and re-executes only
	// the slice, so it beats both in-order and Runahead on a lone miss.
	cfg := pipeline.DefaultConfig()
	io := inorder.New(cfg).Run(workload.NewScenario(workload.ScenarioLoneL2))
	ra := runahead.New(cfg).Run(workload.NewScenario(workload.ScenarioLoneL2))
	sl := New(cfg).Run(workload.NewScenario(workload.ScenarioLoneL2))
	if sl.Cycles > io.Cycles {
		t.Fatalf("SLTP %d must not lose to in-order %d on a lone miss", sl.Cycles, io.Cycles)
	}
	if sl.Cycles > ra.Cycles {
		t.Fatalf("SLTP %d must beat Runahead %d on a lone miss", sl.Cycles, ra.Cycles)
	}
}

func TestIndependentMissesOverlap(t *testing.T) {
	cfg := pipeline.DefaultConfig()
	io := inorder.New(cfg).Run(workload.NewScenario(workload.ScenarioIndependentL2))
	sl := New(cfg).Run(workload.NewScenario(workload.ScenarioIndependentL2))
	if float64(sl.Cycles) > 0.75*float64(io.Cycles) {
		t.Fatalf("SLTP %d must overlap independent misses (in-order %d)", sl.Cycles, io.Cycles)
	}
}

func TestBlockingRallyLimitsDependentMissWorkloads(t *testing.T) {
	// §2/§4: SLTP's single blocking rally serializes dependent misses, so
	// on mcf-like chains it trails a design with non-blocking rallies.
	cfg := cfgWarm(50_000)
	io := inorder.New(cfg).Run(workload.SPEC("mcf", 200_000))
	sl := New(cfg).Run(workload.SPEC("mcf", 200_000))
	sp := sl.SpeedupOver(io)
	if sp > 25 {
		t.Fatalf("SLTP mcf speedup %.1f%% is implausibly high for blocking rallies", sp)
	}
	if sp < -15 {
		t.Fatalf("SLTP mcf slowdown %.1f%% is implausibly low", sp)
	}
}

func TestSLTPHelpsStreamingWorkloads(t *testing.T) {
	// Figure 7 shows SLTP gaining substantially on swim/applu-like code.
	cfg := cfgWarm(50_000)
	io := inorder.New(cfg).Run(workload.SPEC("swim", 250_000))
	sl := New(cfg).Run(workload.SPEC("swim", 250_000))
	if sp := sl.SpeedupOver(io); sp < 10 {
		t.Fatalf("swim SLTP speedup = %.1f%%", sp)
	}
}

func TestAdvanceAndRallyStats(t *testing.T) {
	cfg := cfgWarm(50_000)
	r := New(cfg).Run(workload.SPEC("ammp", 250_000))
	if r.Advances == 0 || r.RallyPasses == 0 {
		t.Fatal("ammp must trigger SLTP episodes")
	}
	if r.RallyPasses != r.Advances {
		t.Fatalf("SLTP makes exactly one rally per episode: %d vs %d", r.RallyPasses, r.Advances)
	}
	if r.RallyInsts == 0 {
		t.Fatal("slices must re-execute")
	}
}

func TestRallyCheaperThanRunaheadReexecution(t *testing.T) {
	// SLTP re-executes only miss slices; Runahead re-executes everything.
	cfg := cfgWarm(50_000)
	sl := New(cfg).Run(workload.SPEC("ammp", 250_000))
	ra := runahead.New(cfg).Run(workload.SPEC("ammp", 250_000))
	if sl.RallyPerKI >= ra.RallyPerKI {
		t.Fatalf("SLTP rally/KI %.0f must be below Runahead's %.0f", sl.RallyPerKI, ra.RallyPerKI)
	}
}

func TestHarmlessOnLowMissCode(t *testing.T) {
	cfg := cfgWarm(20_000)
	io := inorder.New(cfg).Run(workload.SPEC("mesa", 120_000))
	sl := New(cfg).Run(workload.SPEC("mesa", 120_000))
	if d := sl.SpeedupOver(io); d < -5 {
		t.Fatalf("mesa SLTP = %.1f%%", d)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := cfgWarm(20_000)
	a := New(cfg).Run(workload.SPEC("equake", 120_000))
	b := New(cfg).Run(workload.SPEC("equake", 120_000))
	if a.Cycles != b.Cycles {
		t.Fatalf("non-deterministic: %d vs %d", a.Cycles, b.Cycles)
	}
}
