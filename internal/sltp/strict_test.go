package sltp

// Strict-vs-skip-ahead equivalence for SLTP, mirroring the runahead and
// icfp variants: strictCycles swaps SlotAlloc.Take's jump for the
// one-cycle-at-a-time TakeStrict walk, and the full Result struct must
// be unchanged on store-pressure and branch-on-load-chain workloads.

import (
	"testing"

	"icfp/internal/pipeline"
	"icfp/internal/workload"
)

type strictCase struct {
	name string
	cfg  func() pipeline.Config
	w    func() *workload.Workload
}

func tinySB() pipeline.Config {
	cfg := pipeline.DefaultConfig()
	cfg.StoreBufEntries = 2
	return cfg
}

func tinySlice() pipeline.Config {
	cfg := pipeline.DefaultConfig()
	cfg.SliceEntries = 4
	return cfg
}

func spec(name string, n int) func() *workload.Workload {
	return func() *workload.Workload { return workload.SPEC(name, n) }
}

func scenario(sc workload.Scenario) func() *workload.Workload {
	return func() *workload.Workload { return workload.NewScenario(sc) }
}

func strictCases() []strictCase {
	deflt := pipeline.DefaultConfig
	return []strictCase{
		{"chains", deflt, scenario(workload.ScenarioChains)},
		{"dependent-l2", deflt, scenario(workload.ScenarioDependentL2)},
		{"mcf-tiny-sb", tinySB, spec("mcf", 4000)},
		{"gcc-tiny-slice", tinySlice, spec("gcc", 4000)},
		{"equake-default", deflt, spec("equake", 4000)},
	}
}

func runOnce(tc strictCase, strict bool) pipeline.Result {
	prev := strictCycles
	strictCycles = strict
	defer func() { strictCycles = prev }()
	cfg := tc.cfg()
	cfg.WarmupInsts = 500
	return New(cfg).Run(tc.w())
}

func TestStrictEquivalence(t *testing.T) {
	for _, tc := range strictCases() {
		t.Run(tc.name, func(t *testing.T) {
			want := runOnce(tc, true)
			got := runOnce(tc, false)
			if got != want {
				t.Errorf("skip-ahead diverged from strict stepping:\nstrict: %+v\nskip:   %+v", want, got)
			}
		})
	}
}
