// Package sltp implements SLTP, the Simple Latency Tolerant Processor
// (Nekkalapu et al., ICCD'08), as characterized by the iCFP paper (§4):
// non-blocking advance under L2 misses with commit of miss-independent
// instructions, but *blocking single-pass rallies* and an SRL (store redo
// log) based data memory system.
//
// Advance stores write the SRL and, speculatively, the data cache (which
// gives free store-to-load forwarding). When the triggering miss returns,
// the speculatively written lines are flushed, and the rally re-executes
// the miss slice interleaved in program order with draining the SRL to
// the cache — stalling on any miss it encounters and keeping the tail
// stalled until both finish. Store-to-load poison propagation is
// idealized (Table 1: "idealized memory dependence prediction and load
// queue").
package sltp

import (
	"icfp/internal/bpred"
	"icfp/internal/isa"
	"icfp/internal/mem"
	"icfp/internal/pipeline"
	"icfp/internal/stats"
	"icfp/internal/workload"
)

// Machine is an SLTP pipeline.
//
// A Machine may be reused for sequential Run calls — episode scratch (the
// slice, SRL, and advance-store forwarding table) is retained across
// calls — but concurrent Run calls on one Machine race on that scratch.
type Machine struct {
	cfg pipeline.Config

	// Run scratch, reused across Run calls.
	slice []sliceEntry
	srl   []srlEntry
	spec  map[uint64]specVal
}

// New returns an SLTP machine. Its paper configuration advances under L2
// misses only and blocks on data-cache misses during advance.
func New(cfg pipeline.Config) *Machine {
	cfg.Trigger = pipeline.TriggerL2Only
	return &Machine{cfg: cfg}
}

type srcKind uint8

const (
	srcNone srcKind = iota
	srcCaptured
	srcSlice
)

type sliceSrc struct {
	kind srcKind
	prod int // index into the slice
}

type sliceEntry struct {
	idx    int
	seq    uint64
	srcs   [2]sliceSrc
	isCtrl bool
	predOK bool
	done   int64
	ran    bool
}

type srlEntry struct {
	addr    uint64
	val     uint64
	poison  bool
	seq     uint64
	prodIdx int // slice index of the producing (data) instruction, -1 if clean
}

type specVal struct {
	val    uint64
	poison bool
	prod   int
}

// strictCycles (test-only) forces slot allocation to step one cycle at a
// time (SlotAlloc.TakeStrict) instead of jumping straight to the next
// fitting cycle. Simulated behaviour must be identical either way — the
// equivalence tests in strict_test.go pin that.
var strictCycles = false

type run struct {
	cfg   *pipeline.Config
	tr    *isa.Trace
	end   int // window end (exclusive trace index); tr.Len() for full runs
	hier  *mem.Hierarchy
	front *pipeline.Frontend
	slots *pipeline.SlotAlloc
	sb    *pipeline.StoreBuffer
	board pipeline.Scoreboard

	slice      []sliceEntry
	srl        []srlEntry
	spec       map[uint64]specVal // advance-store forwarding (idealized)
	lastWriter [isa.NumRegs]int

	ckpt    pipeline.Checkpoint
	seqCtr  uint64
	primRet int64

	lastIssue int64
	finish    int64

	res pipeline.Result
}

// Run simulates the workload to completion.
func (m *Machine) Run(w *workload.Workload) pipeline.Result {
	return m.RunSampled(w, pipeline.SamplePolicy{})
}

// RunSampled simulates the workload under the given sampling policy,
// running the detailed model only inside measurement windows. The zero
// policy is a full run.
func (m *Machine) RunSampled(w *workload.Workload, pol pipeline.SamplePolicy) pipeline.Result {
	return pipeline.RunWindowed(w, &m.cfg, pol,
		func(hier *mem.Hierarchy, pred *bpred.Predictor, start, meas, hi int) pipeline.Result {
			return m.runWindow(w, hier, pred, start, meas, hi)
		})
}

// runWindow runs the detailed model over trace indexes [start, hi) from
// the given warmed state at cycle 0, measuring [meas, hi): counters are
// snapshotted the first time the step loop reaches meas (step can both
// jump forward past an episode and rewind on a squash, so the crossing
// is latched once) and the result reports differences.
func (m *Machine) runWindow(w *workload.Workload, hier *mem.Hierarchy, pred *bpred.Predictor, start, meas, hi int) pipeline.Result {
	cfg := m.cfg
	if m.slice == nil {
		m.slice = make([]sliceEntry, 0, cfg.SliceEntries)
		m.srl = make([]srlEntry, 0, cfg.SRLEntries)
		m.spec = make(map[uint64]specVal, cfg.SRLEntries)
	}
	r := &run{cfg: &cfg, tr: w.Trace, end: hi, slice: m.slice[:0], srl: m.srl[:0], spec: m.spec}
	clear(r.spec)
	defer func() {
		// Episode scratch may have grown (the SRL is unbounded by design);
		// hand the larger backing back to the Machine for the next window.
		m.slice, m.srl = r.slice[:0], r.srl[:0]
	}()
	r.hier = hier
	r.front = pipeline.NewFrontend(&cfg, r.hier, pred)
	r.slots = pipeline.NewSlotAlloc(&cfg)
	r.sb = pipeline.NewStoreBuffer(cfg.StoreBufEntries, r.hier)

	var dTrack, l2Track stats.MLPTracker
	r.hier.MissObserver = func(start, done int64, l2 bool) {
		dTrack.Add(start, done)
		if l2 {
			l2Track.Add(start, done)
		}
	}

	var measBase int64
	var res0 pipeline.Result
	var hs0 mem.Stats
	crossed := false
	for i := start; i < hi; {
		if !crossed && i >= meas {
			crossed = true
			measBase, res0, hs0 = r.finish, r.res, r.hier.Stats
		}
		i = r.step(i)
	}

	insts := int64(hi - meas)
	if insts == 0 {
		return pipeline.Result{}
	}
	ki := float64(insts) / 1000
	hs := r.hier.Stats
	res := pipeline.SubCounters(r.res, res0)
	res.Cycles = r.finish - measBase
	res.Insts = insts
	res.DCacheMissPerKI = float64(hs.DataL1Misses-hs0.DataL1Misses) / ki
	res.L2MissPerKI = float64(hs.DataL2Misses-hs0.DataL2Misses) / ki
	res.DCacheMLP = dTrack.MLP()
	res.L2MLP = l2Track.MLP()
	res.RallyPerKI = float64(res.RallyInsts) / ki
	return res
}

// take allocates an issue slot, via the strict cycle walk when the
// equivalence tests ask for it.
func (r *run) take(earliest int64, op isa.Op) int64 {
	if strictCycles {
		return r.slots.TakeStrict(earliest, op)
	}
	return r.slots.Take(earliest, op)
}

// step processes the instruction at i in normal mode and returns the next
// index (which rewinds on a squash).
func (r *run) step(i int) int {
	in := r.tr.At(i)
	var g pipeline.Gate
	g.Reset(r.front.Avail(in))
	g.Require(r.board.SrcReady(in))
	g.Require(r.lastIssue)
	earliest := g.At()
	predTaken := r.front.Predict(in)
	if in.Op == isa.OpStore {
		earliest = r.sb.FullUntil(earliest)
	}
	t := r.take(earliest, in.Op)
	r.lastIssue = t

	var done int64
	switch in.Op {
	case isa.OpLoad:
		if _, ok := r.sb.Forward(t, in.Addr); ok {
			done = t + int64(r.cfg.DCachePipe)
			break
		}
		acc := r.hier.Data(t, in.Addr, false)
		done = acc.Done + int64(r.cfg.DCachePipe)
		if h := t + int64(r.cfg.DCachePipe); done < h {
			done = h
		}
		if acc.Level == mem.LevelMem && acc.Done > t+20 {
			// Trigger: enter advance mode under this L2 miss.
			return r.advance(i, t, acc.Done)
		}
	case isa.OpStore:
		r.sb.Insert(t, in.Addr, in.Val)
		done = t + 1
	default:
		done = t + int64(in.Op.ExecLatency())
	}
	r.board.WriteDst(in, done, 0, uint64(i))

	if in.Op.IsCtrl() {
		r.front.Train(in)
		if predTaken != in.Taken {
			r.res.BranchMispredicts++
			r.front.Redirect(t + 1)
		}
	}
	if done > r.finish {
		r.finish = done
	}
	return i + 1
}

func (r *run) nextSeq() uint64 {
	r.seqCtr++
	return r.seqCtr
}

// captureSrcs records each input as a captured side value or a slice-
// internal dependence.
func (r *run) captureSrcs(e *sliceEntry, in *isa.Inst) {
	srcs := [2]isa.Reg{in.Src1, in.Src2}
	for k, s := range srcs {
		switch {
		case !s.Valid():
			e.srcs[k] = sliceSrc{kind: srcNone}
		case r.board.Poison[s] != 0:
			e.srcs[k] = sliceSrc{kind: srcSlice, prod: r.lastWriter[s]}
		default:
			e.srcs[k] = sliceSrc{kind: srcCaptured}
		}
	}
}

// appendSlice diverts a miss-dependent instruction into the slice buffer,
// poisoning its destination. It reports false when the buffer is full.
func (r *run) appendSlice(in *isa.Inst, idx int, predOK bool) bool {
	if len(r.slice) >= r.cfg.SliceEntries {
		r.res.SliceOverflows++
		return false
	}
	e := sliceEntry{idx: idx, seq: r.nextSeq(), isCtrl: in.Op.IsCtrl(), predOK: predOK}
	r.captureSrcs(&e, in)
	r.slice = append(r.slice, e)
	r.board.WriteDst(in, 0, 1, e.seq)
	if in.HasDst() {
		r.lastWriter[in.Dst] = len(r.slice) - 1
	}
	r.res.AdvanceInsts++
	return true
}

// advance runs an SLTP advance episode starting at the triggering load
// (index i, issued at t, miss returning at ret), followed by the blocking
// rally. It returns the index at which normal execution resumes.
func (r *run) advance(i int, t, ret int64) int {
	r.res.Advances++
	r.ckpt = pipeline.TakeCheckpoint(&r.board, i)
	for k := range r.board.Seq {
		r.board.Seq[k] = 0
	}
	r.seqCtr = 0
	r.slice = r.slice[:0]
	r.srl = r.srl[:0]
	clear(r.spec)
	for k := range r.lastWriter {
		r.lastWriter[k] = -1
	}
	r.primRet = ret

	pipe := int64(r.cfg.DCachePipe)
	r.appendSlice(r.tr.At(i), i, true) // the triggering load

	last := t + pipe
	j := i + 1
	halted := false
	for j < r.end && !halted {
		adv := r.tr.At(j)
		var g pipeline.Gate
		g.Reset(r.front.Avail(adv))
		poisoned := r.board.SrcPoison(adv) != 0
		if !poisoned {
			g.Require(r.board.SrcReady(adv))
		}
		g.Require(last)
		earliest := g.At()
		if r.slots.Peek(earliest, adv.Op) >= ret {
			break // the triggering miss is back: rally
		}
		tt := r.take(earliest, adv.Op)
		last = tt
		predTaken := r.front.Predict(adv)

		if poisoned {
			switch {
			case adv.Op == isa.OpStore && adv.Src1.Valid() && r.board.Poison[adv.Src1] != 0:
				// Poisoned store address: the SRL cannot hold it usefully;
				// advance halts until the rally (the store retries after).
				r.res.PoisonAddrObs++
				halted = true
			case adv.Op == isa.OpStore:
				r.srl = append(r.srl, srlEntry{
					addr: adv.Addr, poison: true,
					seq: r.nextSeq(), prodIdx: r.lastWriter[adv.Src2],
				})
				r.spec[adv.Addr] = specVal{poison: true, prod: r.lastWriter[adv.Src2]}
				r.res.AdvanceInsts++
				j++
			default:
				if r.appendSlice(adv, j, !adv.Op.IsCtrl() || predTaken == adv.Taken) {
					j++
					if adv.Op.IsCtrl() && predTaken != adv.Taken {
						halted = true // diverged; the rally will squash here
					}
				} else {
					halted = true
				}
			}
			continue
		}

		// Miss-independent: execute and commit.
		done := tt + 1
		switch adv.Op {
		case isa.OpLoad:
			if sv, ok := r.spec[adv.Addr]; ok {
				if sv.poison {
					// Idealized memory dependence prediction: the load is
					// recognized as miss-dependent via the poisoned store.
					if len(r.slice) >= r.cfg.SliceEntries {
						r.res.SliceOverflows++
						halted = true
						continue
					}
					e := sliceEntry{idx: j, seq: r.nextSeq()}
					e.srcs[0] = sliceSrc{kind: srcSlice, prod: sv.prod}
					r.slice = append(r.slice, e)
					r.board.WriteDst(adv, 0, 1, e.seq)
					if adv.HasDst() {
						r.lastWriter[adv.Dst] = len(r.slice) - 1
					}
					r.res.AdvanceInsts++
					j++
					continue
				}
				done = tt + pipe
			} else if _, ok := r.sb.Forward(tt, adv.Addr); ok {
				done = tt + pipe
			} else {
				acc := r.hier.Data(tt, adv.Addr, false)
				switch {
				case acc.Done <= tt+pipe:
					done = tt + pipe
				case acc.Level == mem.LevelMem:
					// Secondary L2 miss: poison and keep advancing.
					if r.appendSlice(adv, j, true) {
						j++
					} else {
						halted = true
					}
					continue
				default:
					// Data-cache miss: SLTP blocks advance on these.
					done = acc.Done + pipe
					last = acc.Done
				}
			}
		case isa.OpStore:
			r.srl = append(r.srl, srlEntry{addr: adv.Addr, val: adv.Val, seq: r.nextSeq(), prodIdx: -1})
			r.spec[adv.Addr] = specVal{val: adv.Val, prod: -1}
			r.hier.DCache.InsertSpeculative(adv.Addr)
		default:
			done = tt + int64(adv.Op.ExecLatency())
		}
		r.board.WriteDst(adv, done, 0, r.nextSeq())
		if adv.Op.IsCtrl() {
			r.front.Train(adv)
			if predTaken != adv.Taken {
				r.res.BranchMispredicts++
				r.front.Redirect(tt + 1)
			}
		}
		if done > r.finish {
			r.finish = done
		}
		r.res.AdvanceInsts++
		j++
	}

	return r.rally(j, ret)
}

// rally performs the single blocking rally pass: flush speculative cache
// lines, then re-execute the slice interleaved with draining the SRL in
// program order, stalling on every miss. The tail stays stalled
// throughout. It returns the resume index (the checkpoint on a squash).
func (r *run) rally(resume int, ret int64) int {
	r.res.RallyPasses++
	r.hier.DCache.FlushSpeculative()

	clock := ret
	pipe := int64(r.cfg.DCachePipe)
	si, gi := 0, 0
	for si < len(r.slice) || gi < len(r.srl) {
		// Program-order merge of slice re-execution and SRL drain.
		doSlice := si < len(r.slice) &&
			(gi >= len(r.srl) || r.slice[si].seq < r.srl[gi].seq)
		clock++
		if !doSlice {
			s := &r.srl[gi]
			r.hier.Data(clock, s.addr, true)
			gi++
			continue
		}
		e := &r.slice[si]
		r.res.RallyInsts++
		in := r.tr.At(e.idx)
		for _, src := range e.srcs {
			if src.kind == srcSlice && src.prod >= 0 {
				if d := r.slice[src.prod].done; d > clock {
					clock = d // wait for the producer (blocking rally)
				}
			}
		}
		done := clock + 1
		switch {
		case in.Op == isa.OpLoad:
			if sv, ok := r.spec[in.Addr]; ok && sv.prod >= 0 {
				done = clock + pipe // forwarded from a rallied store
			} else {
				acc := r.hier.Data(clock, in.Addr, false)
				done = acc.Done + pipe
				if h := clock + pipe; done < h {
					done = h
				}
				if acc.Done > clock {
					clock = acc.Done // blocking: wait the miss out
				}
			}
		case e.isCtrl:
			r.front.Train(in)
			if !e.predOK {
				return r.squash(e.idx, clock)
			}
		case in.Op == isa.OpStore:
			// Poisoned-data store from the slice: written via its SRL slot.
		default:
			done = clock + int64(in.Op.ExecLatency())
		}
		e.done = done
		e.ran = true
		if in.HasDst() && r.board.Seq[in.Dst] == e.seq {
			r.board.Ready[in.Dst] = done
			r.board.Poison[in.Dst] = 0
		}
		if done > r.finish {
			r.finish = done
		}
		si++
	}

	// Rally complete: reconcile and resume the tail.
	r.board.ClearPoison()
	r.front.Stall(clock)
	r.lastIssue = clock
	if clock > r.finish {
		r.finish = clock
	}
	return resume
}

// squash recovers from a mispredicted poisoned branch found during the
// rally: restore the checkpoint and re-execute from there.
func (r *run) squash(branchIdx int, clock int64) int {
	r.res.Squashes++
	r.res.BranchMispredicts++
	r.ckpt.Restore(&r.board, clock+int64(r.cfg.FrontDepth))
	r.hier.DCache.FlushSpeculative()
	r.front.Flush(clock)
	r.lastIssue = clock
	_ = branchIdx
	return r.ckpt.Index
}
