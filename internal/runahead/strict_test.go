package runahead

// Strict-vs-skip-ahead equivalence: Runahead and Multipass are
// instruction-driven — they jump each instruction straight to its gated
// issue cycle (pipeline.Gate + SlotAlloc.Take) instead of stepping a
// cycle loop. strictCycles replaces the jump with SlotAlloc.TakeStrict,
// a one-cycle-at-a-time walk, and these tests require the full Result
// struct to match between the two, on adversarial store-buffer pressure
// and branch-on-load-chain workloads.

import (
	"testing"

	"icfp/internal/pipeline"
	"icfp/internal/workload"
)

type strictCase struct {
	name string
	cfg  func() pipeline.Config
	mp   bool
	w    func() *workload.Workload
}

// tinySB throttles the in-order store buffer so FullUntil stalls
// dominate issue timing.
func tinySB() pipeline.Config {
	cfg := pipeline.DefaultConfig()
	cfg.StoreBufEntries = 2
	return cfg
}

// tinyRC starves the runahead cache so advance-store forwarding evicts
// constantly.
func tinyRC() pipeline.Config {
	cfg := pipeline.DefaultConfig()
	cfg.RunaheadCache = 4
	return cfg
}

// nonBlocking advances under D$ misses instead of waiting them out.
func nonBlocking() pipeline.Config {
	cfg := pipeline.DefaultConfig()
	cfg.BlockSecondaryD1 = false
	cfg.Trigger = pipeline.TriggerPrimaryD1
	return cfg
}

func spec(name string, n int) func() *workload.Workload {
	return func() *workload.Workload { return workload.SPEC(name, n) }
}

func scenario(sc workload.Scenario) func() *workload.Workload {
	return func() *workload.Workload { return workload.NewScenario(sc) }
}

func strictCases() []strictCase {
	deflt := pipeline.DefaultConfig
	return []strictCase{
		{"chains", deflt, false, scenario(workload.ScenarioChains)},
		{"independent-l2", deflt, false, scenario(workload.ScenarioIndependentL2)},
		{"mcf-tiny-sb", tinySB, false, spec("mcf", 4000)},
		{"gcc-branchy", deflt, false, spec("gcc", 4000)},
		{"equake-nonblocking", nonBlocking, false, spec("equake", 4000)},
		{"mp-chains", deflt, true, scenario(workload.ScenarioChains)},
		{"mp-mcf-tiny-rc", tinyRC, true, spec("mcf", 4000)},
		{"mp-gcc-tiny-sb", tinySB, true, spec("gcc", 4000)},
	}
}

func runOnce(tc strictCase, strict bool) pipeline.Result {
	prev := strictCycles
	strictCycles = strict
	defer func() { strictCycles = prev }()
	cfg := tc.cfg()
	cfg.WarmupInsts = 500
	m := New(cfg)
	if tc.mp {
		m = NewMultipass(cfg)
	}
	return m.Run(tc.w())
}

func TestStrictEquivalence(t *testing.T) {
	for _, tc := range strictCases() {
		t.Run(tc.name, func(t *testing.T) {
			want := runOnce(tc, true)
			got := runOnce(tc, false)
			if got != want {
				t.Errorf("skip-ahead diverged from strict stepping:\nstrict: %+v\nskip:   %+v", want, got)
			}
		})
	}
}

// TestMachineReuseDeterministic pins the scratch-reuse contract: a
// Machine running the same workload repeatedly (runahead cache and
// result-buffer marks retained across calls) must reproduce the first
// run exactly.
func TestMachineReuseDeterministic(t *testing.T) {
	cfg := pipeline.DefaultConfig()
	cfg.WarmupInsts = 500
	for _, mp := range []bool{false, true} {
		m := New(cfg)
		if mp {
			m = NewMultipass(cfg)
		}
		first := m.Run(workload.SPEC("mcf", 4000))
		for i := 0; i < 3; i++ {
			if got := m.Run(workload.SPEC("mcf", 4000)); got != first {
				t.Fatalf("mp=%v run %d diverged from first:\nfirst: %+v\ngot:   %+v", mp, i+2, first, got)
			}
		}
	}
}
