package runahead

import (
	"testing"

	"icfp/internal/inorder"
	"icfp/internal/pipeline"
	"icfp/internal/workload"
)

func cfgWarm(n int) pipeline.Config {
	cfg := pipeline.DefaultConfig()
	cfg.WarmupInsts = n
	return cfg
}

func TestLoneMissNoBenefit(t *testing.T) {
	// Figure 1a: Runahead re-executes everything, so a lone miss with a
	// short slice gains nothing (slight cost from the mode transitions).
	cfg := pipeline.DefaultConfig()
	io := inorder.New(cfg).Run(workload.NewScenario(workload.ScenarioLoneL2))
	ra := New(cfg).Run(workload.NewScenario(workload.ScenarioLoneL2))
	if d := float64(ra.Cycles-io.Cycles) / float64(io.Cycles); d > 0.10 || d < -0.05 {
		t.Fatalf("lone miss: RA %d vs in-order %d (must be within a few %%)", ra.Cycles, io.Cycles)
	}
}

func TestIndependentMissesOverlap(t *testing.T) {
	// Figure 1b: advance execution initiates the second miss under the
	// first.
	cfg := pipeline.DefaultConfig()
	io := inorder.New(cfg).Run(workload.NewScenario(workload.ScenarioIndependentL2))
	ra := New(cfg).Run(workload.NewScenario(workload.ScenarioIndependentL2))
	if float64(ra.Cycles) > 0.7*float64(io.Cycles) {
		t.Fatalf("RA %d must overlap the misses (in-order %d)", ra.Cycles, io.Cycles)
	}
}

func TestDependentMissesIneffective(t *testing.T) {
	// Figure 1c: the second miss's address depends on the first; Runahead
	// cannot help.
	cfg := pipeline.DefaultConfig()
	io := inorder.New(cfg).Run(workload.NewScenario(workload.ScenarioDependentL2))
	ra := New(cfg).Run(workload.NewScenario(workload.ScenarioDependentL2))
	if float64(ra.Cycles) < 0.9*float64(io.Cycles) {
		t.Fatalf("RA %d should not overlap dependent misses (in-order %d)", ra.Cycles, io.Cycles)
	}
}

func TestChainsOverlap(t *testing.T) {
	// Figure 1d: independent chains of dependent misses do overlap.
	cfg := pipeline.DefaultConfig()
	io := inorder.New(cfg).Run(workload.NewScenario(workload.ScenarioChains))
	ra := New(cfg).Run(workload.NewScenario(workload.ScenarioChains))
	if float64(ra.Cycles) > 0.8*float64(io.Cycles) {
		t.Fatalf("RA %d must overlap the chains (in-order %d)", ra.Cycles, io.Cycles)
	}
}

func TestAdvanceStats(t *testing.T) {
	cfg := cfgWarm(50_000)
	r := New(cfg).Run(workload.SPEC("ammp", 250_000))
	if r.Advances == 0 || r.AdvanceInsts == 0 {
		t.Fatal("ammp must trigger advance episodes")
	}
	if r.RallyInsts == 0 {
		t.Fatal("Runahead re-executes advance instructions; RallyInsts must count them")
	}
	if r.RallyPasses != r.Advances {
		t.Fatalf("one re-execution pass per episode: %d vs %d", r.RallyPasses, r.Advances)
	}
}

func TestRunaheadImprovesMLP(t *testing.T) {
	cfg := cfgWarm(50_000)
	io := inorder.New(cfg).Run(workload.SPEC("ammp", 250_000))
	ra := New(cfg).Run(workload.SPEC("ammp", 250_000))
	if ra.L2MLP <= io.L2MLP {
		t.Fatalf("RA L2 MLP %.2f must beat in-order %.2f", ra.L2MLP, io.L2MLP)
	}
	if ra.SpeedupOver(io) < 10 {
		t.Fatalf("ammp RA speedup = %.1f%%", ra.SpeedupOver(io))
	}
}

func TestTriggerConfigMatters(t *testing.T) {
	// Advancing under primary D$ misses costs a little at a 20-cycle L2
	// (the paper's reason for the L2-only default).
	cfg := cfgWarm(50_000)
	l2only := New(cfg).Run(workload.SPEC("twolf", 250_000))
	all := cfg
	all.Trigger = pipeline.TriggerPrimaryD1
	prim := New(all).Run(workload.SPEC("twolf", 250_000))
	// twolf has almost no L2 misses: L2-only barely advances, primary-D$
	// advances constantly. Both must at least run to completion and
	// differ in behaviour.
	if l2only.Advances >= prim.Advances {
		t.Fatalf("trigger widening must add episodes: %d vs %d", l2only.Advances, prim.Advances)
	}
}

func TestMultipassBeatsNothingOnLowMiss(t *testing.T) {
	cfg := cfgWarm(20_000)
	io := inorder.New(cfg).Run(workload.SPEC("mesa", 120_000))
	mp := NewMultipass(cfg).Run(workload.SPEC("mesa", 120_000))
	if d := mp.SpeedupOver(io); d < -5 {
		t.Fatalf("Multipass must not badly hurt low-miss code: %.1f%%", d)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := cfgWarm(20_000)
	a := New(cfg).Run(workload.SPEC("swim", 120_000))
	b := New(cfg).Run(workload.SPEC("swim", 120_000))
	if a.Cycles != b.Cycles {
		t.Fatalf("non-deterministic: %d vs %d", a.Cycles, b.Cycles)
	}
}
