// Package runahead implements Runahead execution (Dundas & Mudge, ICS'97;
// Mutlu et al., HPCA'03) on the baseline in-order pipeline, and — via a
// result buffer that saves miss-independent results to accelerate
// re-execution — "flea-flicker" Multipass pipelining (Barnes et al.,
// MICRO'05).
//
// On a triggering miss the machine checkpoints the register file and
// advances past the miss in a speculative, non-committing mode: poisoned
// (miss-dependent) instructions are skipped, independent loads prefetch,
// and advance stores forward through a small runahead cache. When the
// triggering miss returns, the checkpoint is restored and ALL post-miss
// instructions re-execute — the re-processing overhead that iCFP's slice
// buffer avoids.
package runahead

import (
	"icfp/internal/bpred"
	"icfp/internal/isa"
	"icfp/internal/mem"
	"icfp/internal/pipeline"
	"icfp/internal/stats"
	"icfp/internal/workload"
)

// Machine is a Runahead (or, with the result buffer enabled, Multipass)
// pipeline.
//
// A Machine may be reused for any number of sequential Run calls — the
// allocation-heavy run scratch (the runahead cache and the Multipass
// result-buffer marks) is retained across calls — but it must not be
// shared between goroutines: concurrent Run calls race on that scratch.
type Machine struct {
	cfg       pipeline.Config
	multipass bool

	// Run scratch, reused across Run calls.
	rc      *pipeline.RunaheadCache
	resMark []bool
}

// New returns a Runahead machine. Unless the caller chose otherwise, the
// paper's best Runahead configuration applies: advance under L2 misses
// only, block on data-cache misses during advance ("D$-b").
func New(cfg pipeline.Config) *Machine {
	return &Machine{cfg: cfg}
}

// NewMultipass returns a Multipass machine: Runahead plus a result buffer
// that saves miss-independent advance results and uses them to break
// dependences during re-execution passes.
func NewMultipass(cfg pipeline.Config) *Machine {
	return &Machine{cfg: cfg, multipass: true}
}

// strictCycles (test-only) forces slot allocation to step one cycle at a
// time (SlotAlloc.TakeStrict) instead of jumping straight to the next
// fitting cycle. Simulated behaviour must be identical either way — the
// equivalence tests in strict_test.go pin that — so the flag exists
// purely to exercise the skip-ahead against the trivially correct strict
// walk.
var strictCycles = false

// run bundles per-window state.
type run struct {
	cfg   *pipeline.Config
	mp    bool
	tr    *isa.Trace
	end   int // window end (exclusive trace index); tr.Len() for full runs
	hier  *mem.Hierarchy
	front *pipeline.Frontend
	slots *pipeline.SlotAlloc
	sb    *pipeline.StoreBuffer
	board pipeline.Scoreboard
	rc    *pipeline.RunaheadCache

	// Multipass result buffer: resMark[j] is set while trace index j holds
	// a result computed during an advance pass that remains valid, and
	// resLive counts set marks (bounded by cfg.ResultBufEntries). A mark
	// array replaces the obvious map: every marked index lies ahead of the
	// normal-mode cursor and is consumed exactly once when the cursor
	// passes it, so the array is self-cleaning by the end of a run and the
	// pass loop allocates nothing.
	resMark []bool
	resLive int

	lastIssue  int64
	finish     int64
	lastDetect int64

	res pipeline.Result
}

// Run simulates the workload to completion.
func (m *Machine) Run(w *workload.Workload) pipeline.Result {
	return m.RunSampled(w, pipeline.SamplePolicy{})
}

// RunSampled simulates the workload under the given sampling policy,
// running the detailed model only inside measurement windows. The zero
// policy is a full run.
func (m *Machine) RunSampled(w *workload.Workload, pol pipeline.SamplePolicy) pipeline.Result {
	return pipeline.RunWindowed(w, &m.cfg, pol,
		func(hier *mem.Hierarchy, pred *bpred.Predictor, start, meas, hi int) pipeline.Result {
			return m.runWindow(w, hier, pred, start, meas, hi)
		})
}

// runWindow runs the detailed model over trace indexes [start, hi) from
// the given warmed state at cycle 0, measuring [meas, hi): counters are
// snapshotted when the step loop crosses meas and the result reports
// differences. An advance episode in flight at the crossing is charged
// to the ramp (the snapshot happens between normal-mode steps), a
// boundary effect bounded by one episode.
func (m *Machine) runWindow(w *workload.Workload, hier *mem.Hierarchy, pred *bpred.Predictor, start, meas, hi int) pipeline.Result {
	cfg := m.cfg
	r := &run{cfg: &cfg, mp: m.multipass, tr: w.Trace, end: hi}
	r.hier = hier
	r.front = pipeline.NewFrontend(&cfg, r.hier, pred)
	r.slots = pipeline.NewSlotAlloc(&cfg)
	r.sb = pipeline.NewStoreBuffer(cfg.StoreBufEntries, r.hier)
	if m.rc == nil {
		m.rc = pipeline.NewRunaheadCache(cfg.RunaheadCache)
	}
	m.rc.Clear()
	m.rc.Evictions = 0
	r.rc = m.rc
	if m.multipass {
		if len(m.resMark) < r.tr.Len() {
			m.resMark = make([]bool, r.tr.Len())
		}
		r.resMark = m.resMark
	}

	var dTrack, l2Track stats.MLPTracker
	r.hier.MissObserver = func(start, done int64, l2 bool) {
		dTrack.Add(start, done)
		if l2 {
			l2Track.Add(start, done)
		}
	}

	var measBase int64
	var res0 pipeline.Result
	var hs0 mem.Stats
	for i := start; i < hi; i++ {
		if i == meas {
			measBase, res0, hs0 = r.finish, r.res, r.hier.Stats
		}
		r.step(i)
	}
	if r.mp && r.resLive != 0 {
		// The normal-mode cursor passes every marked index, so the mark
		// array is clean here; clear defensively anyway so a future logic
		// change cannot leak stale results into the next window on this
		// Machine.
		clear(r.resMark)
	}

	insts := int64(hi - meas)
	ki := float64(insts) / 1000
	if insts == 0 {
		return pipeline.Result{}
	}
	hs := r.hier.Stats
	res := pipeline.SubCounters(r.res, res0)
	res.Cycles = r.finish - measBase
	res.Insts = insts
	res.DCacheMissPerKI = float64(hs.DataL1Misses-hs0.DataL1Misses) / ki
	res.L2MissPerKI = float64(hs.DataL2Misses-hs0.DataL2Misses) / ki
	res.DCacheMLP = dTrack.MLP()
	res.L2MLP = l2Track.MLP()
	res.RallyPerKI = float64(res.RallyInsts) / ki
	return res
}

// triggered reports whether a load serviced at level enters advance mode.
func (r *run) triggered(level mem.Level) bool {
	switch r.cfg.Trigger {
	case pipeline.TriggerL2Only:
		return level == mem.LevelMem
	case pipeline.TriggerPrimaryD1, pipeline.TriggerAll:
		return level != mem.LevelL1
	}
	return false
}

// take allocates an issue slot, via the strict cycle walk when the
// equivalence tests ask for it.
func (r *run) take(earliest int64, op isa.Op) int64 {
	if strictCycles {
		return r.slots.TakeStrict(earliest, op)
	}
	return r.slots.Take(earliest, op)
}

// step processes one normal-mode instruction; on a triggering miss it
// executes the whole advance episode inline before returning.
func (r *run) step(i int) {
	in := r.tr.At(i)
	var g pipeline.Gate
	g.Reset(r.front.Avail(in))
	g.Require(r.board.SrcReady(in))
	g.Require(r.lastIssue)
	earliest := g.At()
	predTaken := r.front.Predict(in)
	if in.Op == isa.OpStore {
		earliest = r.sb.FullUntil(earliest)
	}
	t := r.take(earliest, in.Op)
	r.lastIssue = t

	resHit := false
	if r.mp && r.resMark[i] {
		// Multipass: this instruction's result was computed during an
		// advance pass; reuse it to break the dependence.
		r.resMark[i] = false
		r.resLive--
		resHit = true
	}

	var done int64
	switch {
	case resHit && in.Op != isa.OpStore:
		done = t + 1
	case in.Op == isa.OpLoad:
		done = r.load(i, t)
	case in.Op == isa.OpStore:
		r.sb.Insert(t, in.Addr, in.Val)
		done = t + 1
	default:
		done = t + int64(in.Op.ExecLatency())
	}
	r.board.WriteDst(in, done, 0, uint64(i))

	if in.Op.IsCtrl() {
		r.front.Train(in)
		if predTaken != in.Taken {
			r.res.BranchMispredicts++
			r.front.Redirect(t + 1)
		}
	}
	if done > r.finish {
		r.finish = done
	}
}

// load executes a normal-mode load at cycle t and triggers advance mode
// when appropriate. It returns the load's completion cycle.
func (r *run) load(i int, t int64) int64 {
	in := r.tr.At(i)
	pipe := int64(r.cfg.DCachePipe)
	if _, ok := r.sb.Forward(t, in.Addr); ok {
		return t + pipe
	}
	acc := r.hier.Data(t, in.Addr, false)
	done := acc.Done + pipe
	if hit := t + pipe; done < hit {
		done = hit
	}
	if r.triggered(acc.Level) && done > t+pipe+int64(r.cfg.FrontDepth) {
		r.advance(i, t+pipe, done)
	}
	return done
}

// advance runs one advance episode: checkpoint at the triggering load
// (index i, miss detected at detect, data returning at ret), speculate
// past it, then restore.
func (r *run) advance(i int, detect, ret int64) {
	r.res.Advances++
	ckpt := pipeline.TakeCheckpoint(&r.board, i)
	in := r.tr.At(i)
	if in.HasDst() {
		r.board.Poison[in.Dst] = 1
	}
	// The transition discards younger in-flight instructions (§5.1):
	// instruction supply restarts from the miss point.
	r.front.Flush(detect)

	last := detect
	j := i + 1
	diverged := false
	for j < r.end && !diverged {
		adv := r.tr.At(j)
		var g pipeline.Gate
		g.Reset(r.front.Avail(adv))
		poison := r.board.SrcPoison(adv)
		if poison == 0 {
			g.Require(r.board.SrcReady(adv))
		}
		g.Require(last)
		earliest := g.At()
		if r.slots.Peek(earliest, adv.Op) >= ret {
			break // the triggering miss is back; stop advancing
		}
		t := r.take(earliest, adv.Op)
		last = t
		r.res.AdvanceInsts++

		predTaken := r.front.Predict(adv)
		done := t + 1
		switch {
		case poison != 0:
			// Miss-dependent: skipped, poison propagates.
			switch {
			case adv.Op == isa.OpStore && adv.Src1.Valid() && r.board.Poison[adv.Src1] != 0:
				r.res.PoisonAddrObs++ // unknown address: nothing to record
			case adv.Op == isa.OpStore:
				r.rc.Put(adv.Addr, 0, poison)
			case adv.Op.IsCtrl() && predTaken != adv.Taken:
				// A poisoned branch cannot resolve; if the prediction is
				// wrong, everything past it is wrong-path.
				diverged = true
			}
		case adv.Op == isa.OpLoad:
			done = t + int64(r.cfg.DCachePipe)
			if _, lp, hit := r.rc.Get(adv.Addr); hit {
				poison = lp // forward from an advance store
			} else if _, ok := r.sb.Forward(t, adv.Addr); !ok {
				acc := r.hier.Data(t, adv.Addr, false)
				switch {
				case acc.Level == mem.LevelL1:
					// hit: done already set
				case acc.Level == mem.LevelL2 && r.cfg.BlockSecondaryD1:
					// D$-blocking: wait the secondary miss out.
					done = acc.Done + int64(r.cfg.DCachePipe)
					last = acc.Done
				default:
					poison = 1 // D$-nb: poison the output, keep advancing
				}
			}
		case adv.Op == isa.OpStore:
			r.rc.Put(adv.Addr, adv.Val, 0)
		default:
			done = t + int64(adv.Op.ExecLatency())
		}

		if poison == 0 && adv.Op.IsCtrl() {
			r.front.Train(adv)
			if predTaken != adv.Taken {
				r.front.Redirect(t + 1)
			}
		}
		r.board.WriteDst(adv, done, poison, uint64(j))
		if r.mp && poison == 0 && r.resLive < r.cfg.ResultBufEntries && !r.resMark[j] {
			r.resMark[j] = true
			r.resLive++
		}
		j++
	}

	// Miss returned: restore the checkpoint and re-execute from i+1.
	ckpt.Restore(&r.board, ret)
	r.front.Flush(ret)
	r.rc.Clear()
	r.lastIssue = ret
	// Everything advanced past the checkpoint re-executes (Multipass
	// merely re-executes it faster via the result buffer).
	r.res.RallyInsts += uint64(j - (i + 1))
	r.res.RallyPasses++
}
