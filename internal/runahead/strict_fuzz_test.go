package runahead

// Strict-vs-skip-ahead equivalence over the committed adversarial
// corpus (see the icfp variant's comment): both the Runahead and the
// Multipass machine must report identical Results under strict
// one-cycle stepping on every sampled corpus pathology.

import (
	"testing"

	"icfp/internal/pipeline"
	"icfp/internal/workload"
)

var fuzzSampleLabels = []string{"sb-extreme", "bl-noisy", "mc-extreme", "rs-extreme", "all-d"}

func TestStrictEquivalenceFuzzCorpus(t *testing.T) {
	for _, label := range fuzzSampleLabels {
		c, ok := workload.FuzzCorpusMember(label)
		if !ok {
			t.Fatalf("corpus member %q missing (corpus edited instead of appended?)", label)
		}
		for _, mp := range []bool{false, true} {
			name := c.Label
			if mp {
				name = "mp-" + name
			}
			tc := strictCase{
				name: name, cfg: pipeline.DefaultConfig, mp: mp,
				w: func() *workload.Workload { return workload.Fuzz(c.Seed, c.Knobs, 6000) },
			}
			t.Run(name, func(t *testing.T) {
				want := runOnce(tc, true)
				got := runOnce(tc, false)
				if got != want {
					t.Errorf("skip-ahead diverged from strict stepping on %s:\nstrict: %+v\nskip:   %+v",
						c.Name(), want, got)
				}
			})
		}
	}
}
