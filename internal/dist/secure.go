package dist

import (
	"crypto/sha256"
	"crypto/subtle"
	"crypto/tls"
	"crypto/x509"
	"fmt"
	"io"
	"net"
	"os"
	"time"
)

// Security configures transport protection for the TCP endpoints
// (cmd/expd): TLS on the stream and a shared-token preamble that the
// dialing side must present before the accepting side processes a single
// protocol frame. The zero value is plaintext and unauthenticated — fine
// for loopback and tests, never for anything routable (see
// docs/OPERATIONS.md for the multi-host setup).
//
// Both connection directions exist in an elastic fleet (coordinators
// dial workers with -connect; workers dial coordinators with expd join),
// so each process may act as dialer, acceptor, or both. CertFile/KeyFile
// arm the accepting side; CAFile arms the dialing side; Token arms both.
type Security struct {
	// CertFile and KeyFile are the accepting side's PEM certificate and
	// key; both set enables TLS on Listen.
	CertFile, KeyFile string
	// CAFile is a PEM bundle the dialing side trusts (typically the
	// accepting side's self-signed certificate itself, or the CA that
	// issued it); set, it enables TLS on Dial.
	CAFile string
	// ServerName overrides the hostname verified against the acceptor's
	// certificate (needed when dialing by IP with a name-only cert).
	ServerName string
	// Token is the fleet's shared secret. The dialer sends a fixed-size
	// hash preamble before the first frame; the acceptor verifies it in
	// constant time and drops the connection on any mismatch.
	Token string
}

// The token preamble: a magic tag so a plaintext protocol frame can
// never be mistaken for an auth attempt, then the SHA-256 of the token.
// Fixed size, so the acceptor reads exactly one preamble and nothing of
// a correct stream's first frame.
const authMagic = "icfpdst3"

const authLen = len(authMagic) + sha256.Size

// authPreamble builds the dialer's proof of token possession.
func authPreamble(token string) []byte {
	p := make([]byte, 0, authLen)
	p = append(p, authMagic...)
	sum := sha256.Sum256([]byte(token))
	return append(p, sum[:]...)
}

// WriteAuth sends the token preamble; the dialer's first bytes on an
// authenticated connection.
func WriteAuth(w io.Writer, token string) error {
	if _, err := w.Write(authPreamble(token)); err != nil {
		return fmt.Errorf("dist: sending auth preamble: %w", err)
	}
	return nil
}

// VerifyAuth reads and checks the dialer's token preamble. It must be
// called before any ReadMessage on an authenticated connection: a wrong
// or missing token fails here, so no protocol frame from an
// unauthenticated peer is ever processed. The comparison is constant
// time.
func VerifyAuth(r io.Reader, token string) error {
	got := make([]byte, authLen)
	if _, err := io.ReadFull(r, got); err != nil {
		return fmt.Errorf("dist: reading auth preamble: %w", err)
	}
	if subtle.ConstantTimeCompare(got, authPreamble(token)) != 1 {
		return fmt.Errorf("dist: peer presented a wrong or missing auth token")
	}
	return nil
}

// authTimeout bounds how long an acceptor waits for a dialer's preamble,
// so an idle or hostile connection cannot pin an accept slot forever.
const authTimeout = 10 * time.Second

// Secure completes the accepting side of a new connection: it verifies
// the token preamble (when a token is configured) under a deadline and
// returns the connection ready for protocol frames. On failure the
// connection is closed.
func (s Security) Secure(conn net.Conn) (net.Conn, error) {
	if s.Token == "" {
		return conn, nil
	}
	conn.SetReadDeadline(time.Now().Add(authTimeout))
	if err := VerifyAuth(conn, s.Token); err != nil {
		conn.Close()
		return nil, err
	}
	conn.SetReadDeadline(time.Time{})
	return conn, nil
}

// Listen opens a TCP listener at addr, wrapped in TLS when CertFile and
// KeyFile are set. Callers must still pass each accepted connection
// through Secure before speaking the protocol.
func (s Security) Listen(addr string) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dist: listening on %s: %w", addr, err)
	}
	if s.CertFile == "" && s.KeyFile == "" {
		return ln, nil
	}
	if s.CertFile == "" || s.KeyFile == "" {
		ln.Close()
		return nil, fmt.Errorf("dist: -tls-cert and -tls-key must be set together")
	}
	cert, err := tls.LoadX509KeyPair(s.CertFile, s.KeyFile)
	if err != nil {
		ln.Close()
		return nil, fmt.Errorf("dist: loading TLS keypair: %w", err)
	}
	return tls.NewListener(ln, &tls.Config{Certificates: []tls.Certificate{cert}, MinVersion: tls.VersionTLS12}), nil
}

// Dial connects to addr — over TLS when CAFile is set, plaintext
// otherwise — and sends the token preamble when a token is configured,
// returning a connection ready for protocol frames.
func (s Security) Dial(addr string) (net.Conn, error) {
	var conn net.Conn
	var err error
	if s.CAFile != "" {
		pem, rerr := os.ReadFile(s.CAFile)
		if rerr != nil {
			return nil, fmt.Errorf("dist: reading TLS CA bundle: %w", rerr)
		}
		pool := x509.NewCertPool()
		if !pool.AppendCertsFromPEM(pem) {
			return nil, fmt.Errorf("dist: no certificates found in %s", s.CAFile)
		}
		cfg := &tls.Config{RootCAs: pool, ServerName: s.ServerName, MinVersion: tls.VersionTLS12}
		if cfg.ServerName == "" {
			host, _, herr := net.SplitHostPort(addr)
			if herr != nil {
				host = addr
			}
			cfg.ServerName = host
		}
		conn, err = tls.Dial("tcp", addr, cfg)
	} else {
		conn, err = net.Dial("tcp", addr)
	}
	if err != nil {
		return nil, fmt.Errorf("dist: connecting to %s: %w", addr, err)
	}
	if s.Token != "" {
		if err := WriteAuth(conn, s.Token); err != nil {
			conn.Close()
			return nil, err
		}
	}
	return conn, nil
}
