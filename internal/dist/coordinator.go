package dist

import (
	"errors"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync"
	"time"

	"icfp/internal/exp"
	"icfp/internal/obs"
	"icfp/internal/spec"
)

// Dispatch defaults.
const (
	// DefaultMaxAttempts caps how many times one job may be dispatched
	// before the run fails: transient worker crashes are survivable, a
	// job that kills every worker that touches it is not. Clean goodbyes
	// do not count against it.
	DefaultMaxAttempts = 3
	// maxBatchJobs bounds a cost-sized batch: even a queue of thousands
	// of near-free keys stays stealable in bounded pieces.
	maxBatchJobs = 64
)

// Options configure a coordinator run.
type Options struct {
	// Parallel is each worker's internal pool size (values below 1 mean
	// the worker's GOMAXPROCS).
	Parallel int
	// BatchSize fixes the number of jobs per dispatched batch. Zero (the
	// default) enables cost-aware sizing: batches are assembled at
	// dispatch time from per-key cost estimates — statically seeded from
	// each spec's workload length and model class, refined online from
	// the wall times workers report — so cheap keys ride in large
	// batches and known-expensive stragglers ship alone.
	BatchSize int
	// MaxAttempts caps dispatch attempts per job (default
	// DefaultMaxAttempts). Clean goodbyes do not count.
	MaxAttempts int
	// FrameTimeout bounds the silence between a worker's frames while a
	// dispatch is in flight. A worker that stays connected but stops
	// responding (wedged host, SIGSTOP) is declared dead on expiry and
	// its batch reassigned, exactly like a transport failure. It must
	// comfortably exceed one simulation's duration — results stream per
	// simulation, so that is the longest legitimate silence. Applies
	// only to transports with read deadlines (TCP, test pipes);
	// subprocess workers die with their pipes, which EOF on their own.
	// Zero disables the timeout.
	FrameTimeout time.Duration
	// Join delivers workers that join the fleet mid-run (elastic mode:
	// cmd/expd -accept-workers feeds registered dialers through here). A
	// joined worker is handshaken and enters the work-stealing loop
	// immediately. With Join set, a run whose last worker dies waits for
	// the next join instead of failing — the operator decides when to
	// give up (an interrupt still checkpoints the cache). Closing the
	// channel restores fail-when-all-workers-die semantics.
	Join <-chan Worker
	// Heartbeat, when positive, makes the coordinator beacon a
	// heartbeat frame to every worker on this interval (protocol v4).
	// Idle workers use it to detect a vanished coordinator within a few
	// intervals instead of waiting out TCP keepalive; see
	// ErrCoordinatorLost. Zero disables heartbeats.
	Heartbeat time.Duration
	// MaxIdle, when positive, bounds how long an elastic run (Options.
	// Join set) tolerates having zero workers while jobs are still
	// outstanding. On expiry the run fails with ErrFleetIdle — the
	// give-up knob for fleets whose workers may never come back. Zero
	// means wait forever (the operator decides via interrupt).
	MaxIdle time.Duration
	// Log, when set, receives dispatch diagnostics as structured slog
	// records using the shared obs key vocabulary (worker, jobs, cause,
	// ...). Results themselves are silent.
	Log *slog.Logger
	// Logf is the legacy printf diagnostics sink, consulted only when
	// Log is nil; events arrive pre-rendered by obs.Event.
	Logf func(format string, args ...any)
	// Metrics, when set, receives the coordinator's dispatch telemetry:
	// queue depth, in-flight jobs, fleet size, per-worker batch and
	// result counters, requeues, retirements, and the cost-model
	// calibration ratio. A nil registry costs one nil check per event.
	Metrics *obs.Registry
	// Spans, when set, collects one obs.Span per merged result, labeled
	// with the worker that simulated it — the distributed half of the
	// -run-summary timeline.
	Spans *obs.SpanLog
	// OnMerge, when set, is called after each result lands in the cache
	// (so a Lookup from inside the hook succeeds). Calls may arrive
	// concurrently from different workers' dispatch loops; the hook is
	// the service layer's per-job progress signal (internal/serve).
	OnMerge func(exp.Key)
}

// readDeadliner is the optional transport capability FrameTimeout needs.
type readDeadliner interface{ SetReadDeadline(time.Time) error }

// readFrame reads one frame, bounding the wait by opts.FrameTimeout when
// the transport supports deadlines.
func readFrame(rw io.ReadWriteCloser, opts *Options) (*Message, error) {
	if opts.FrameTimeout > 0 {
		if rd, ok := rw.(readDeadliner); ok {
			rd.SetReadDeadline(time.Now().Add(opts.FrameTimeout))
			defer rd.SetReadDeadline(time.Time{})
		}
	}
	return ReadMessage(rw)
}

// event emits one structured dispatch diagnostic: to Options.Log as a
// slog record when set, otherwise rendered through obs.Event into the
// legacy Logf sink. Keys come from the shared obs vocabulary so the
// coordinator, the workers, and the CLIs all log the same field names.
func (o *Options) event(msg string, kv ...any) {
	if o.Log != nil {
		o.Log.Info(msg, kv...)
		return
	}
	if o.Logf != nil {
		o.Logf("%s", obs.Event(msg, kv...))
	}
}

// distMetrics is the coordinator's telemetry, carved from
// Options.Metrics once per run. Every field is nil when the registry is
// nil, and every obs method on a nil metric is a no-op — the
// uninstrumented dispatch path pays one nil check per event.
type distMetrics struct {
	reg        *obs.Registry
	queueDepth *obs.Gauge   // dist_queue_depth
	inflight   *obs.Gauge   // dist_inflight_jobs
	active     *obs.Gauge   // dist_active_workers
	batches    *obs.Counter // dist_dispatched_batches_total
	merged     *obs.Counter // dist_results_merged_total
	requeued   *obs.Counter // dist_requeued_jobs_total
	retired    *obs.Counter // dist_retired_workers_total
	joins      *obs.Counter // dist_worker_joins_total
	goodbyes   *obs.Counter // dist_worker_goodbyes_total
}

func newDistMetrics(reg *obs.Registry) *distMetrics {
	return &distMetrics{
		reg:        reg,
		queueDepth: reg.Gauge("dist_queue_depth", "jobs awaiting dispatch"),
		inflight:   reg.Gauge("dist_inflight_jobs", "jobs handed to a worker, neither merged nor requeued"),
		active:     reg.Gauge("dist_active_workers", "workers admitted and not retired"),
		batches:    reg.Counter("dist_dispatched_batches_total", "batches handed to workers"),
		merged:     reg.Counter("dist_results_merged_total", "results merged into the coordinator cache"),
		requeued:   reg.Counter("dist_requeued_jobs_total", "jobs returned to the queue after a crash or goodbye"),
		retired:    reg.Counter("dist_retired_workers_total", "workers that left the fleet (any cause)"),
		joins:      reg.Counter("dist_worker_joins_total", "workers admitted to the fleet"),
		goodbyes:   reg.Counter("dist_worker_goodbyes_total", "workers that left cleanly with a goodbye frame"),
	}
}

// syncLocked refreshes the queue-shape gauges; the caller holds d.mu.
func (m *distMetrics) syncLocked(d *dispatcher) {
	m.queueDepth.Set(float64(len(d.ready)))
	m.inflight.Set(float64(d.inflight))
	m.active.Set(float64(d.active))
}

// pjob is one plan job moving through the dispatcher: its spec, its
// cache key, and how many dispatches have failed on it.
type pjob struct {
	sj       spec.Job
	key      exp.Key
	attempts int
}

// dispatcher is the coordinator's shared state: the ready queue, the
// in-flight count, fleet membership, and the cost model. One mutex
// guards all of it; worker goroutines block on cond while the queue is
// empty but work is still in flight (a crash or goodbye may requeue).
type dispatcher struct {
	mu   sync.Mutex
	cond *sync.Cond

	ready    []*pjob // jobs awaiting dispatch
	inflight int     // jobs handed to a worker, neither merged nor requeued
	batches  int     // dispatched batches whose runBatch has not returned
	batchSeq int

	stopped   bool // run over (success or failure): workers must exit
	completed bool
	failure   error
	done      chan struct{}
	doneOnce  sync.Once

	active     int  // workers currently admitted and not retired
	joinable   bool // an open Join channel may still deliver workers
	idleGen    int  // bumped on every admit; stale idle timers stand down
	workerErrs []string

	met *distMetrics

	transports []io.Closer // every admitted transport, closed when the run ends
	model      *costModel
	cache      *exp.Cache
	opts       *Options
	wg         sync.WaitGroup
}

// Run shards the plan's self-describing jobs across the workers and
// merges every completed result into cache. Jobs whose key the cache
// already has (a preloaded -cache-file) are not dispatched at all.
// Dispatch is work-stealing — idle workers pull the next batch, so shard
// sizes adapt to worker speed — and, by default, cost-aware (see
// Options.BatchSize). The fleet is elastic: workers arriving on
// Options.Join enter the loop mid-run, a worker that sends goodbye
// leaves cleanly (streamed results kept, unfinished remainder requeued,
// no attempt counted), and a worker whose transport fails mid-batch has
// the batch's unfinished remainder requeued for the survivors, up to
// MaxAttempts dispatches per job. Worker-side errors (invalid specs,
// simulation failures) abort the run with the worker's context attached.
// Run closes every worker transport before returning; for subprocess
// transports that also reaps the process.
func Run(plan []spec.Job, workers []Worker, cache *exp.Cache, opts Options) error {
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = DefaultMaxAttempts
	}

	d := &dispatcher{
		done:     make(chan struct{}),
		joinable: opts.Join != nil,
		model:    newCostModel(),
		cache:    cache,
		opts:     &opts,
		met:      newDistMetrics(opts.Metrics),
	}
	d.cond = sync.NewCond(&d.mu)
	opts.Metrics.GaugeFunc("dist_cost_model_ratio", "online static-units to wall-ns calibration of the dispatch cost model",
		func() float64 { return d.model.calibration() })

	var missing []spec.Job
	for _, sj := range plan {
		if _, ok := cache.Lookup(exp.KeyOf(sj)); !ok {
			missing = append(missing, sj)
		}
	}
	if len(missing) == 0 {
		CloseAll(workers)
		return nil
	}
	if len(workers) == 0 && opts.Join == nil {
		return fmt.Errorf("dist: %d jobs to simulate but no workers", len(missing))
	}
	d.model.seedFromCache(cache, plan)
	for _, sj := range missing {
		d.ready = append(d.ready, &pjob{sj: sj, key: exp.KeyOf(sj)})
	}
	d.mu.Lock()
	d.met.syncLocked(d)
	d.mu.Unlock()
	opts.event("dispatch started", obs.KeyJobs, len(missing), obs.KeyWorkers, len(workers), obs.KeyElastic, opts.Join != nil)

	for _, w := range workers {
		d.admit(w)
	}
	if opts.Join != nil {
		d.wg.Add(1)
		go d.watchJoins(opts.Join)
		if len(workers) == 0 {
			// Starting with an empty elastic fleet: the give-up clock
			// runs from the start, not only after a worker leaves.
			d.armIdleTimer()
		}
	}

	<-d.done
	// Unblock any worker goroutine still parked in a read, then wait so
	// no goroutine outlives the run.
	d.closeTransports()
	d.wg.Wait()
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.failure
}

// admit adds one worker to the fleet and starts its dispatch loop. Any
// armed idle timer stands down: bumping the generation invalidates it.
func (d *dispatcher) admit(w Worker) {
	d.mu.Lock()
	if d.stopped {
		d.mu.Unlock()
		w.RW.Close()
		return
	}
	d.active++
	d.idleGen++
	d.transports = append(d.transports, w.RW)
	d.met.joins.Inc()
	d.met.syncLocked(d)
	d.mu.Unlock()
	d.wg.Add(1)
	go d.runWorker(w)
}

// watchJoins feeds mid-run arrivals into the fleet until the run ends or
// the channel closes.
func (d *dispatcher) watchJoins(join <-chan Worker) {
	defer d.wg.Done()
	for {
		select {
		case <-d.done:
			return
		case w, ok := <-join:
			if !ok {
				d.mu.Lock()
				d.joinable = false
				starved := d.active == 0 && d.remainingLocked() > 0
				d.mu.Unlock()
				if starved {
					d.fail(fmt.Errorf("dist: join channel closed with no workers and %d jobs outstanding: %s",
						d.remaining(), d.joinErrs()))
				}
				return
			}
			d.opts.event("worker joined", obs.KeyWorker, w.Name)
			d.admit(w)
		}
	}
}

// remainingLocked reports the undone job count; the caller holds mu.
// remaining is the self-locking variant.
func (d *dispatcher) remainingLocked() int {
	return len(d.ready) + d.inflight
}

func (d *dispatcher) remaining() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.remainingLocked()
}

// ErrFleetIdle reports that an elastic run had zero workers for the
// whole Options.MaxIdle window with jobs still outstanding and gave up.
// Distinct from the all-workers-failed error of inelastic runs: the
// fleet was allowed to refill and nothing came.
var ErrFleetIdle = errors.New("dist: elastic fleet idle past the give-up window")

// armIdleTimer starts the MaxIdle give-up clock if the fleet is
// currently empty with work outstanding and a join could still save it.
// The timer captures the idle generation; an admit in the window bumps
// the generation and the expired timer stands down.
func (d *dispatcher) armIdleTimer() {
	if d.opts.MaxIdle <= 0 {
		return
	}
	d.mu.Lock()
	if d.stopped || d.active > 0 || !d.joinable || d.remainingLocked() == 0 {
		d.mu.Unlock()
		return
	}
	gen := d.idleGen
	d.mu.Unlock()
	time.AfterFunc(d.opts.MaxIdle, func() {
		d.mu.Lock()
		expired := !d.stopped && d.active == 0 && d.idleGen == gen && d.remainingLocked() > 0
		outstanding := d.remainingLocked()
		d.mu.Unlock()
		if expired {
			d.fail(fmt.Errorf("%w: no workers for %v with %d jobs outstanding: %s",
				ErrFleetIdle, d.opts.MaxIdle, outstanding, d.joinErrs()))
		}
	})
}

// fail records the run's failure and wakes everyone. A fatal error from
// a straggling worker (say, a slow handshake reporting skew) after the
// survivors already finished every batch must not turn a complete run
// into a failure.
func (d *dispatcher) fail(err error) {
	d.mu.Lock()
	if d.failure == nil && !d.completed {
		d.failure = err
	}
	d.stopped = true
	d.cond.Broadcast()
	d.mu.Unlock()
	d.doneOnce.Do(func() { close(d.done) })
}

// finish marks the run complete and wakes everyone.
func (d *dispatcher) finish() {
	d.mu.Lock()
	d.completed = true
	d.stopped = true
	d.cond.Broadcast()
	d.mu.Unlock()
	d.doneOnce.Do(func() { close(d.done) })
}

// closeTransports closes every admitted worker transport (idempotent).
func (d *dispatcher) closeTransports() {
	d.mu.Lock()
	ts := append([]io.Closer(nil), d.transports...)
	d.mu.Unlock()
	for _, t := range ts {
		t.Close()
	}
}

// next blocks until there is a batch to dispatch, returning nil when the
// run is over. The returned jobs are moved from ready to in-flight; the
// requesting worker's name sizes the batch to its measured speed.
func (d *dispatcher) next(worker string) []*pjob {
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		if d.stopped {
			return nil
		}
		if len(d.ready) > 0 {
			batch := d.takeBatchLocked(worker)
			d.inflight += len(batch)
			d.batches++
			d.met.batches.Inc()
			d.met.syncLocked(d)
			return batch
		}
		if d.inflight == 0 && d.batches == 0 {
			// Nothing queued, nothing in flight: the run is complete.
			// finish() needs the lock we hold, so release around it.
			d.mu.Unlock()
			d.finish()
			d.mu.Lock()
			return nil
		}
		d.cond.Wait()
	}
}

// endBatch accounts a dispatched batch concluding (batch_done read, or
// its error path entered) and completes the run when it was the last
// loose end. Completion deliberately waits for every batch to conclude —
// not merely for every job to merge — so the trailing cost-report and
// batch_done frames are consumed before Run tears the transports down
// and a clean run stays log-silent on both sides.
func (d *dispatcher) endBatch() {
	d.mu.Lock()
	d.batches--
	done := d.inflight == 0 && len(d.ready) == 0 && d.batches == 0 && !d.stopped
	d.mu.Unlock()
	if done {
		d.finish()
	}
}

// takeBatchLocked forms the next batch from the head of the ready queue.
// With a fixed Options.BatchSize it takes exactly that many jobs; in
// cost-aware mode the cost model sizes it (costModel.sizeBatch). The
// floor keeps a worker's pool saturated by its own batch — the
// coordinator cannot see a GOMAXPROCS-width pool, so it assumes a
// generously wide host; stealing evens out the rest.
func (d *dispatcher) takeBatchLocked(worker string) []*pjob {
	n := len(d.ready)
	if d.opts.BatchSize > 0 {
		n = min(n, d.opts.BatchSize)
	} else {
		floor := d.opts.Parallel
		if floor < 1 {
			floor = 16
		}
		n = d.model.sizeBatch(d.ready, worker, d.active, floor, maxBatchJobs)
	}
	batch := d.ready[:n]
	d.ready = d.ready[n:]
	return batch
}

// requeue returns a batch's unfinished jobs to the ready queue. When
// counted (crash paths), each job's attempt count rises and hitting
// MaxAttempts fails the run; goodbyes requeue uncounted.
func (d *dispatcher) requeue(owed []*pjob, counted bool, worker string, cause error) {
	if len(owed) == 0 {
		return
	}
	if counted {
		for _, pj := range owed {
			pj.attempts++
			if pj.attempts >= d.opts.MaxAttempts {
				d.fail(fmt.Errorf("dist: job (%s | %s) failed on its %dth dispatch, last worker %s: %w",
					pj.key.Machine, pj.key.Workload, pj.attempts, worker, cause))
				return
			}
		}
	}
	d.mu.Lock()
	d.inflight -= len(owed)
	d.ready = append(d.ready, owed...)
	d.met.requeued.Add(int64(len(owed)))
	d.met.syncLocked(d)
	d.cond.Broadcast()
	d.mu.Unlock()
}

// merged accounts one in-flight job landing in the cache. Completion is
// detected when its batch concludes (endBatch), not here.
func (d *dispatcher) merged() {
	d.mu.Lock()
	d.inflight--
	d.met.merged.Inc()
	d.met.syncLocked(d)
	d.mu.Unlock()
}

// retire removes a worker from the fleet. Its transport is closed — that
// is also the leave signal a goodbye'd Serve loop waits for — and if it
// was the last worker with work still outstanding and no join can
// replace it, the run fails with every worker's exit context.
func (d *dispatcher) retire(w Worker, cause string) {
	w.RW.Close()
	d.mu.Lock()
	d.active--
	d.met.retired.Inc()
	d.met.syncLocked(d)
	if cause != "" {
		d.workerErrs = append(d.workerErrs, fmt.Sprintf("%s: %s", w.Name, cause))
	}
	starved := d.active == 0 && d.remainingLocked() > 0 && !d.joinable && !d.stopped
	d.mu.Unlock()
	if starved {
		d.fail(fmt.Errorf("dist: all workers failed with %d jobs outstanding: %s",
			d.remaining(), d.joinErrs()))
	}
	// An elastic fleet that just went empty starts the give-up clock.
	d.armIdleTimer()
}

// runOver reports whether the run has already ended (success or
// failure) — transport errors after that point are teardown, not news.
func (d *dispatcher) runOver() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stopped
}

// joinErrs summarizes the recorded worker exits for diagnostics.
func (d *dispatcher) joinErrs() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.workerErrs) == 0 {
		return "no worker errors recorded"
	}
	return strings.Join(d.workerErrs, "; ")
}

// coordConn serializes the coordinator's outbound frames to one worker:
// batch frames come from the dispatch loop while heartbeat frames come
// from the beacon goroutine, and a frame must never interleave with
// another mid-write. Reads stay unserialized — only the dispatch loop
// reads.
type coordConn struct {
	rw io.ReadWriteCloser
	mu sync.Mutex
}

func (c *coordConn) send(m *Message) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return WriteMessage(c.rw, m)
}

// beat beacons heartbeat frames to one worker every interval until the
// run ends, the worker's loop stops it, or the transport dies (the
// dispatch loop notices the death on its own; the beacon just stops).
func (d *dispatcher) beat(conn *coordConn, stop <-chan struct{}) {
	t := time.NewTicker(d.opts.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-d.done:
			return
		case <-t.C:
			if conn.send(&Message{Type: TypeHeartbeat}) != nil {
				return
			}
		}
	}
}

// runWorker is one worker's dispatch loop: handshake, then pull batches
// until the run ends or the worker leaves (goodbye) or dies (transport
// failure). Fatal worker-reported errors abort the whole run.
func (d *dispatcher) runWorker(w Worker) {
	defer d.wg.Done()
	conn := &coordConn{rw: w.RW}
	if err := initWorker(w, conn, d.opts); err != nil {
		var fatal *fatalError
		if errors.As(err, &fatal) {
			d.fail(fmt.Errorf("dist: worker %s: %w", w.Name, err))
			d.retire(w, "")
			return
		}
		d.opts.event("worker handshake failed", obs.KeyWorker, w.Name, obs.KeyCause, err)
		d.retire(w, fmt.Sprintf("handshake: %v", err))
		return
	}
	if d.opts.Heartbeat > 0 {
		stop := make(chan struct{})
		defer close(stop)
		go d.beat(conn, stop)
	}
	batchCount := d.met.reg.Counter("dist_worker_batches_total", "batches dispatched per worker", "worker", w.Name)
	d.met.reg.GaugeFunc("dist_worker_speed", "measured throughput relative to the fleet-average calibration (1 until measured)",
		func() float64 { return d.model.speed(w.Name) }, "worker", w.Name)
	for {
		batch := d.next(w.Name)
		if batch == nil {
			d.retire(w, "")
			return
		}
		batchCount.Inc()
		owed, err := d.runBatch(w, conn, batch)
		// The batch has concluded one way or another; owed jobs are still
		// accounted in-flight until requeue moves them back, so this
		// cannot complete a run that still owes work.
		d.endBatch()
		switch {
		case err == nil:
			continue
		case errors.Is(err, errGoodbye):
			d.opts.event("worker goodbye", obs.KeyWorker, w.Name, obs.KeyJobs, len(owed))
			d.met.goodbyes.Inc()
			d.requeue(owed, false, w.Name, err)
			d.retire(w, "")
			return
		default:
			var fatal *fatalError
			if errors.As(err, &fatal) {
				d.fail(fmt.Errorf("dist: worker %s: %w", w.Name, err))
				d.retire(w, "")
				return
			}
			if d.runOver() {
				// The run completed on this batch's last streamed result
				// and Run closed the transports before the trailing
				// batch_done arrived — teardown, not a worker death.
				d.retire(w, "")
				return
			}
			// Transport-level failure: the worker is gone. Requeue
			// whatever the batch still owes and retire this worker.
			d.opts.event("worker died", obs.KeyWorker, w.Name, obs.KeyJobs, len(owed), obs.KeyCause, err)
			d.requeue(owed, true, w.Name, err)
			d.retire(w, err.Error())
			return
		}
	}
}

// fatalError marks a worker-reported protocol or simulation error:
// deterministic, so retrying it on another worker would only fail again.
type fatalError struct{ msg string }

func (e *fatalError) Error() string { return e.msg }

// errGoodbye marks a clean worker departure mid-batch.
var errGoodbye = errors.New("worker left the fleet")

// initWorker performs the handshake: protocol version, the worker's
// pool size, and the heartbeat interval this coordinator will beacon
// on. There is no job-table cross-check — batches are self-describing,
// so the worker needs no prior copy of the plan.
func initWorker(w Worker, conn *coordConn, opts *Options) error {
	init := &Message{Type: TypeInit, Proto: ProtoVersion, Parallel: opts.Parallel, HeartbeatNS: int64(opts.Heartbeat)}
	if err := conn.send(init); err != nil {
		return err
	}
	m, err := readFrame(w.RW, opts)
	if err != nil {
		return err
	}
	switch m.Type {
	case TypeReady:
		return nil
	case TypeError:
		return &fatalError{m.Err}
	default:
		return &fatalError{fmt.Sprintf("handshake: got %q frame, want %q", m.Type, TypeReady)}
	}
}

// runBatch dispatches one batch, merging its streamed results into the
// cache and its cost reports into the model, until batch_done. On a
// transport failure or goodbye it returns the jobs still owed, in
// dispatch order, for requeueing; worker-reported errors come back as
// fatalError.
func (d *dispatcher) runBatch(w Worker, conn *coordConn, batch []*pjob) (owed []*pjob, err error) {
	d.mu.Lock()
	d.batchSeq++
	id := d.batchSeq
	d.mu.Unlock()
	resultCount := d.met.reg.Counter("dist_worker_results_total", "results merged per worker", "worker", w.Name)

	jobs := make([]spec.Job, len(batch))
	remaining := make(map[exp.Key]*pjob, len(batch))
	for i, pj := range batch {
		jobs[i] = pj.sj
		remaining[pj.key] = pj
	}
	still := func() []*pjob {
		var out []*pjob
		for _, pj := range batch {
			if _, ok := remaining[pj.key]; ok {
				out = append(out, pj)
			}
		}
		return out
	}
	if err := conn.send(&Message{Type: TypeBatch, BatchID: id, Jobs: jobs}); err != nil {
		return still(), err
	}
	for {
		m, err := readFrame(w.RW, d.opts)
		if err != nil {
			return still(), err
		}
		switch m.Type {
		case TypeResult:
			if m.Result == nil {
				return still(), &fatalError{"result frame without a payload"}
			}
			d.cache.AddResults([]exp.CachedResult{*m.Result})
			k := exp.Key{Machine: m.Result.Machine, Workload: m.Result.Workload}
			if m.Result.ElapsedNS > 0 {
				d.model.observe(k, float64(m.Result.ElapsedNS))
				d.model.observeWorker(w.Name, k, float64(m.Result.ElapsedNS))
			}
			if _, ok := remaining[k]; ok {
				delete(remaining, k)
				d.merged()
				resultCount.Inc()
				if d.opts.OnMerge != nil {
					d.opts.OnMerge(k)
				}
				if d.opts.Spans != nil {
					// Width is the worker's own measurement; placement is
					// coordinator-clock, anchored at the merge instant.
					end := time.Now()
					d.opts.Spans.Add(obs.Span{
						Machine: k.Machine, Workload: k.Workload, Worker: w.Name,
						Start: end.Add(-time.Duration(m.Result.ElapsedNS)), End: end,
						ElapsedNS: m.Result.ElapsedNS,
					})
				}
			}
		case TypeCostReport:
			for _, kc := range m.Costs {
				kk := exp.Key{Machine: kc.Machine, Workload: kc.Workload}
				d.model.observe(kk, float64(kc.ElapsedNS))
				d.model.observeWorker(w.Name, kk, float64(kc.ElapsedNS))
			}
		case TypeGoodbye:
			return still(), errGoodbye
		case TypeBatchDone:
			if m.BatchID != id {
				return still(), &fatalError{fmt.Sprintf("batch_done for batch %d while %d was in flight", m.BatchID, id)}
			}
			if rest := still(); len(rest) > 0 {
				// A worker that claims completion without delivering is
				// broken, but the work itself may succeed elsewhere.
				return rest, fmt.Errorf("batch %d reported done with %d results missing", id, len(rest))
			}
			return nil, nil
		case TypeError:
			return still(), &fatalError{m.Err}
		default:
			return still(), &fatalError{fmt.Sprintf("unexpected %q frame during batch %d", m.Type, id)}
		}
	}
}
