package dist

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"icfp/internal/exp"
	"icfp/internal/spec"
)

// Dispatch defaults.
const (
	// DefaultBatchSize balances dispatch overhead against stealable
	// granularity: small enough that a slow worker strands little work,
	// large enough that the protocol is not one round trip per key.
	DefaultBatchSize = 4
	// DefaultMaxAttempts caps how many times one batch may be dispatched
	// before the run fails: transient worker crashes are survivable, a
	// batch that kills every worker that touches it is not.
	DefaultMaxAttempts = 3
)

// Options configure a coordinator run.
type Options struct {
	// Parallel is each worker's internal pool size (values below 1 mean
	// the worker's GOMAXPROCS).
	Parallel int
	// BatchSize is the number of jobs per dispatched batch (default
	// DefaultBatchSize).
	BatchSize int
	// MaxAttempts caps dispatch attempts per batch (default
	// DefaultMaxAttempts).
	MaxAttempts int
	// FrameTimeout bounds the silence between a worker's frames while a
	// dispatch is in flight. A worker that stays connected but stops
	// responding (wedged host, SIGSTOP) is declared dead on expiry and
	// its batch reassigned, exactly like a transport failure. It must
	// comfortably exceed one simulation's duration — results stream per
	// simulation, so that is the longest legitimate silence. Applies
	// only to transports with read deadlines (TCP, test pipes);
	// subprocess workers die with their pipes, which EOF on their own.
	// Zero disables the timeout.
	FrameTimeout time.Duration
	// Logf, when set, receives dispatch diagnostics: worker hand-offs,
	// crash reassignments, retirements. Results themselves are silent.
	Logf func(format string, args ...any)
}

// readDeadliner is the optional transport capability FrameTimeout needs.
type readDeadliner interface{ SetReadDeadline(time.Time) error }

// readFrame reads one frame, bounding the wait by opts.FrameTimeout when
// the transport supports deadlines.
func readFrame(rw io.ReadWriteCloser, opts *Options) (*Message, error) {
	if opts.FrameTimeout > 0 {
		if rd, ok := rw.(readDeadliner); ok {
			rd.SetReadDeadline(time.Now().Add(opts.FrameTimeout))
			defer rd.SetReadDeadline(time.Time{})
		}
	}
	return ReadMessage(rw)
}

func (o *Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// batchState is one unit of dispatch. Jobs shrink as results stream in,
// so a batch reassigned after a worker crash carries only its unfinished
// remainder.
type batchState struct {
	id       int
	jobs     []spec.Job
	attempts int
}

// Run shards the plan's self-describing jobs across the workers and
// merges every completed result into cache. Jobs whose key the cache
// already has (a preloaded -cache-file) are not dispatched at all.
// Dispatch is work-stealing — idle workers pull the next batch, so shard
// sizes adapt to worker speed — and crash-tolerant: when a worker's
// transport fails mid-batch, the batch's unfinished remainder is requeued
// for the survivors, up to MaxAttempts dispatches per batch. Worker-side
// errors (invalid specs, simulation failures) abort the run with the
// worker's context attached. Run closes every worker transport before
// returning; for subprocess transports that also reaps the process.
func Run(plan []spec.Job, workers []Worker, cache *exp.Cache, opts Options) error {
	if opts.BatchSize <= 0 {
		opts.BatchSize = DefaultBatchSize
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = DefaultMaxAttempts
	}
	defer CloseAll(workers)

	var missing []spec.Job
	for _, sj := range plan {
		if _, ok := cache.Lookup(exp.KeyOf(sj)); !ok {
			missing = append(missing, sj)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	if len(workers) == 0 {
		return fmt.Errorf("dist: %d jobs to simulate but no workers", len(missing))
	}

	var batches []*batchState
	for i := 0; i < len(missing); i += opts.BatchSize {
		end := min(i+opts.BatchSize, len(missing))
		batches = append(batches, &batchState{id: len(batches) + 1, jobs: missing[i:end]})
	}
	opts.logf("dist: %d jobs in %d batches across %d workers", len(missing), len(batches), len(workers))

	// Each batch is enqueued at most MaxAttempts times, so the buffer
	// bound makes every send non-blocking.
	queue := make(chan *batchState, len(batches)*opts.MaxAttempts)
	for _, b := range batches {
		queue <- b
	}

	var (
		mu        sync.Mutex
		pending   = len(batches)
		completed bool // every batch merged: late worker errors no longer matter
		failure   error
		once      sync.Once
	)
	done := make(chan struct{})
	fail := func(err error) {
		mu.Lock()
		// A fatal error from a straggling worker (say, a slow handshake
		// reporting skew) after the survivors already finished every
		// batch must not turn a complete run into a failure.
		if failure == nil && !completed {
			failure = err
		}
		mu.Unlock()
		once.Do(func() { close(done) })
	}
	completeBatch := func() {
		mu.Lock()
		pending--
		rem := pending
		if rem == 0 {
			completed = true
		}
		mu.Unlock()
		if rem == 0 {
			once.Do(func() { close(done) })
		}
	}

	var wg sync.WaitGroup
	workerErrs := make([]error, len(workers))
	for wi, w := range workers {
		wg.Add(1)
		go func(wi int, w Worker) {
			defer wg.Done()
			if err := initWorker(w, &opts); err != nil {
				var fatal *fatalError
				if errors.As(err, &fatal) {
					fail(fmt.Errorf("dist: worker %s: %w", w.Name, err))
				} else {
					opts.logf("dist: worker %s failed during handshake: %v", w.Name, err)
				}
				workerErrs[wi] = err
				return
			}
			for {
				select {
				case <-done:
					return
				case b := <-queue:
					rest, err := runBatch(w, b, cache, &opts)
					if err == nil {
						completeBatch()
						continue
					}
					var fatal *fatalError
					if errors.As(err, &fatal) {
						fail(fmt.Errorf("dist: worker %s: %w", w.Name, err))
						return
					}
					// Transport-level failure: the worker is gone. Requeue
					// whatever the batch still owes and retire this worker.
					workerErrs[wi] = err
					if len(rest) == 0 {
						opts.logf("dist: worker %s died after finishing batch %d: %v", w.Name, b.id, err)
						completeBatch()
						return
					}
					b.jobs = rest
					b.attempts++
					if b.attempts >= opts.MaxAttempts {
						fail(fmt.Errorf("dist: batch %d failed on its %dth dispatch (%d jobs left), last worker %s: %w",
							b.id, b.attempts, len(rest), w.Name, err))
						return
					}
					opts.logf("dist: worker %s died mid-batch %d; requeueing %d jobs (attempt %d/%d): %v",
						w.Name, b.id, len(rest), b.attempts+1, opts.MaxAttempts, err)
					queue <- b
					return
				}
			}
		}(wi, w)
	}

	// If every worker retires while batches remain, nothing will ever
	// close done — fail with the per-worker context instead of hanging.
	go func() {
		wg.Wait()
		mu.Lock()
		rem := pending
		mu.Unlock()
		if rem > 0 {
			fail(fmt.Errorf("dist: all %d workers failed with %d batches outstanding: %s",
				len(workers), rem, joinErrs(workerErrs)))
		}
	}()

	<-done
	// Unblock any worker goroutine still parked in a read, then wait so
	// no goroutine outlives the run.
	CloseAll(workers)
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	return failure
}

// fatalError marks a worker-reported protocol or simulation error:
// deterministic, so retrying it on another worker would only fail again.
type fatalError struct{ msg string }

func (e *fatalError) Error() string { return e.msg }

// initWorker performs the handshake: protocol version plus the worker's
// pool size. There is no job-table cross-check — batches are
// self-describing, so the worker needs no prior copy of the plan.
func initWorker(w Worker, opts *Options) error {
	if err := WriteMessage(w.RW, &Message{Type: TypeInit, Proto: ProtoVersion, Parallel: opts.Parallel}); err != nil {
		return err
	}
	m, err := readFrame(w.RW, opts)
	if err != nil {
		return err
	}
	switch m.Type {
	case TypeReady:
		return nil
	case TypeError:
		return &fatalError{m.Err}
	default:
		return &fatalError{fmt.Sprintf("handshake: got %q frame, want %q", m.Type, TypeReady)}
	}
}

// runBatch dispatches one batch and merges its streamed results until
// batch_done. On a transport failure it returns the jobs still owed, in
// dispatch order, for requeueing; worker-reported errors come back as
// fatalError.
func runBatch(w Worker, b *batchState, cache *exp.Cache, opts *Options) (rest []spec.Job, err error) {
	remaining := make(map[exp.Key]bool, len(b.jobs))
	for _, sj := range b.jobs {
		remaining[exp.KeyOf(sj)] = true
	}
	owed := func() []spec.Job {
		var out []spec.Job
		for _, sj := range b.jobs {
			if remaining[exp.KeyOf(sj)] {
				out = append(out, sj)
			}
		}
		return out
	}
	if err := WriteMessage(w.RW, &Message{Type: TypeBatch, BatchID: b.id, Jobs: b.jobs}); err != nil {
		return owed(), err
	}
	for {
		m, err := readFrame(w.RW, opts)
		if err != nil {
			return owed(), err
		}
		switch m.Type {
		case TypeResult:
			if m.Result == nil {
				return owed(), &fatalError{"result frame without a payload"}
			}
			cache.AddResults([]exp.CachedResult{*m.Result})
			delete(remaining, exp.Key{Machine: m.Result.Machine, Workload: m.Result.Workload})
		case TypeBatchDone:
			if m.BatchID != b.id {
				return owed(), &fatalError{fmt.Sprintf("batch_done for batch %d while %d was in flight", m.BatchID, b.id)}
			}
			if rest := owed(); len(rest) > 0 {
				// A worker that claims completion without delivering is
				// broken, but the work itself may succeed elsewhere.
				return rest, fmt.Errorf("batch %d reported done with %d results missing", b.id, len(rest))
			}
			return nil, nil
		case TypeError:
			return owed(), &fatalError{m.Err}
		default:
			return owed(), &fatalError{fmt.Sprintf("unexpected %q frame during batch %d", m.Type, b.id)}
		}
	}
}

// joinErrs summarizes the non-nil worker errors for the all-workers-dead
// diagnostic.
func joinErrs(errs []error) string {
	var parts []string
	for i, err := range errs {
		if err != nil {
			parts = append(parts, fmt.Sprintf("worker %d: %v", i, err))
		}
	}
	if len(parts) == 0 {
		return "no worker errors recorded"
	}
	return strings.Join(parts, "; ")
}
