// Package dist runs an experiment plan across worker processes and
// hosts. It is the layer between the exp harness and the CLIs: a
// coordinator takes the deduplicated plan of a job set (exp.Plan), shards
// it over any number of workers with work-stealing dispatch (workers pull
// batches, so a slow shard never straggles the run), and merges the
// exp.CachedResults the workers stream back into a shared *exp.Cache. The
// caller then renders its report locally from the warm cache, which makes
// distributed output byte-identical to a single-process run at any worker
// count: simulations are deterministic pure functions of their specs, and
// pipeline.Result round-trips JSON exactly.
//
// Coordinator and worker speak a length-delimited JSON protocol over an
// abstract transport: net.Pipe in tests, the stdin/stdout of a
// self-exec'd subprocess (cmd/experiments -workers), or a TCP connection
// (cmd/expd) for multi-host runs — optionally wrapped in TLS with a
// shared-token preamble (Security) when the fleet spans more than a
// trusted loopback. Since protocol v2 every batch carries
// self-describing spec.Jobs — a worker needs no prior copy of the job
// table, no registry, and no handshake cross-check beyond the protocol
// version, so heterogeneous fleets (different binaries, elastically
// joining workers) interoperate as long as they speak the same spec
// vocabulary.
//
// Protocol v3 makes fleets elastic and dispatch cost-aware. Workers may
// dial a long-lived coordinator and announce themselves with a register
// frame (Register/AcceptWorker), join a run already in flight
// (Options.Join), and leave it cleanly with a goodbye frame — everything
// they streamed back before leaving is kept, and only their unfinished
// remainder is redispatched. Batches are sized at dispatch time by a
// per-key cost model: a static estimate derived from each spec (workload
// length × model class) refined online by the observed wall times that
// workers stream back in cost-report frames, so cheap keys ride in large
// batches while known-expensive stragglers ship alone.
//
// Protocol v4 adds coordinator heartbeats: the init frame announces an
// interval and the coordinator beacons on it, so an idle worker whose
// coordinator vanished (host gone, network partition) notices within a
// few intervals instead of waiting out TCP keepalive. The package is
// also instrumented end to end (internal/obs): Options.Metrics exposes
// queue depth, per-worker batch counters, requeues and retirements on
// the coordinator; WithMetrics does the same for a serving worker,
// including a last-heartbeat-age gauge. The full frame catalog lives in
// docs/ARCHITECTURE.md.
package dist

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"icfp/internal/exp"
	"icfp/internal/spec"
)

// ProtoVersion identifies the wire protocol. Version 2 replaced the v1
// job-table handshake (an opaque registry spec plus a table-size
// cross-check) with self-describing spec.Job batches; version 3 added
// the elastic-fleet frames (register, goodbye) and per-key cost reports;
// version 4 added coordinator liveness heartbeats (the init frame
// announces the interval, heartbeat frames keep idle connections
// provably alive). Coordinator and workers must match exactly: results
// are only portable between compatible simulators, so version skew is a
// handshake error — reported with both versions named — not something
// to paper over.
const ProtoVersion = 4

// maxFrame bounds one protocol frame. The largest real frames are batch
// messages (a few spec jobs) and single results — far below this; the
// bound exists so a corrupt or malicious length prefix cannot trigger an
// unbounded allocation.
const maxFrame = 64 << 20

// Message types, in handshake-then-dispatch order.
const (
	// TypeRegister is worker → coordinator, and only on connections the
	// worker dialed (elastic join): the worker announces its protocol
	// version and display name before the normal init/ready handshake.
	// Coordinator-dialed workers skip it — the dialer already knows who
	// it connected to.
	TypeRegister = "register"
	// TypeInit is coordinator → worker: the protocol version plus the
	// worker-pool parallelism to simulate with.
	TypeInit = "init"
	// TypeReady is worker → coordinator: the handshake reply.
	TypeReady = "ready"
	// TypeBatch is coordinator → worker: one batch of self-describing
	// plan jobs to simulate.
	TypeBatch = "batch"
	// TypeResult is worker → coordinator: one completed simulation,
	// streamed as soon as it finishes (not held until the batch ends).
	TypeResult = "result"
	// TypeCostReport is worker → coordinator: the observed wall times of
	// the batch's freshly simulated keys, sent just before batch_done.
	// Purely advisory — it feeds the coordinator's dispatch-time cost
	// model and never affects results.
	TypeCostReport = "cost_report"
	// TypeBatchDone is worker → coordinator: every job of the identified
	// batch has been simulated and its result sent.
	TypeBatchDone = "batch_done"
	// TypeHeartbeat is coordinator → worker: a liveness beacon sent
	// every Options.Heartbeat while the run is up. The init frame
	// announces the interval (HeartbeatNS); a worker that has seen no
	// frame at all for several intervals concludes the coordinator is
	// gone — much faster than TCP keepalive notices a vanished peer —
	// and abandons the connection with ErrCoordinatorLost. Workers never
	// send heartbeats: their liveness is covered by Options.FrameTimeout.
	TypeHeartbeat = "heartbeat"
	// TypeGoodbye is worker → coordinator: the worker is leaving the
	// fleet (operator drain, host reclaim). Results it already streamed
	// are kept; the unfinished remainder of any in-flight batch is
	// redispatched to the survivors without counting as a failure.
	TypeGoodbye = "goodbye"
	// TypeError, in either direction, reports a fatal condition with
	// context; the receiver aborts the run.
	TypeError = "error"
)

// KeyCost is one cost-report entry: the canonical key of a simulation
// this worker actually ran in the reported batch, and how long it took.
type KeyCost struct {
	Machine   string `json:"machine"`
	Workload  string `json:"workload"`
	ElapsedNS int64  `json:"elapsed_ns"`
}

// Message is one protocol frame. Type selects which of the remaining
// fields are meaningful.
type Message struct {
	Type string `json:"type"`

	// Init and Register.
	Proto int `json:"proto,omitempty"`
	// Parallel is the worker's pool size; values below 1 mean the
	// worker's GOMAXPROCS.
	Parallel int `json:"parallel,omitempty"`
	// Name is the registering worker's display name (register only).
	Name string `json:"name,omitempty"`
	// HeartbeatNS is the coordinator's heartbeat interval in nanoseconds
	// (init only); zero means heartbeats are off for this connection.
	HeartbeatNS int64 `json:"heartbeat_ns,omitempty"`

	// Batch and BatchDone. Batch IDs start at 1 so a zero ID always
	// means "absent". Jobs are self-describing: each carries the full
	// machine and workload spec it names.
	BatchID int        `json:"batch_id,omitempty"`
	Jobs    []spec.Job `json:"jobs,omitempty"`

	// Result.
	Result *exp.CachedResult `json:"result,omitempty"`

	// CostReport.
	Costs []KeyCost `json:"costs,omitempty"`

	// Error.
	Err string `json:"err,omitempty"`
}

// WriteMessage frames m as a 4-byte big-endian length prefix followed by
// its JSON encoding, in a single Write call so frames on a shared stream
// are never interleaved by the transport.
func WriteMessage(w io.Writer, m *Message) error {
	body, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("dist: encoding %s frame: %w", m.Type, err)
	}
	if len(body) > maxFrame {
		return fmt.Errorf("dist: %s frame of %d bytes exceeds the %d-byte limit", m.Type, len(body), maxFrame)
	}
	frame := make([]byte, 4+len(body))
	binary.BigEndian.PutUint32(frame, uint32(len(body)))
	copy(frame[4:], body)
	if _, err := w.Write(frame); err != nil {
		return fmt.Errorf("dist: writing %s frame: %w", m.Type, err)
	}
	return nil
}

// ReadMessage reads one length-delimited frame. A clean end of stream
// between frames surfaces as io.EOF; a stream cut mid-frame as
// io.ErrUnexpectedEOF.
func ReadMessage(r io.Reader) (*Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("dist: reading frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("dist: frame of %d bytes exceeds the %d-byte limit", n, maxFrame)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("dist: reading %d-byte frame body: %w", n, err)
	}
	var m Message
	if err := json.Unmarshal(body, &m); err != nil {
		return nil, fmt.Errorf("dist: decoding frame: %w", err)
	}
	return &m, nil
}
