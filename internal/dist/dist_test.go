package dist_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"icfp/internal/dist"
	"icfp/internal/exp"
	"icfp/internal/pipeline"
	"icfp/internal/workload"
)

// The stub world: a spec naming how many keys exist, resolved on both
// sides into counting stub jobs whose results are a pure function of the
// key index — so tests can verify merged results without a simulator.

type stubSpec struct {
	Keys int   `json:"keys"`
	Base int64 `json:"base"`
}

func (s stubSpec) raw() json.RawMessage {
	b, err := json.Marshal(s)
	if err != nil {
		panic(err)
	}
	return b
}

type stubRunner struct {
	cycles int64
	runs   *atomic.Int64
}

func (s stubRunner) Run(*workload.Workload) pipeline.Result {
	if s.runs != nil {
		s.runs.Add(1)
	}
	return pipeline.Result{Name: "stub", Cycles: s.cycles, Insts: 100}
}

func stubJob(i int, base int64, runs *atomic.Int64) exp.Job {
	return exp.Job{
		Name:    fmt.Sprintf("job%d", i),
		Machine: fmt.Sprintf("m%d", i),
		Config:  pipeline.DefaultConfig(),
		Make: func(pipeline.Config) exp.Runner {
			return stubRunner{cycles: base + int64(i), runs: runs}
		},
		Workload: exp.WorkloadSpec{
			Key: fmt.Sprintf("w%d", i),
			New: func() *workload.Workload { return &workload.Workload{Name: "stub"} },
		},
	}
}

func stubJobs(s stubSpec, runs *atomic.Int64) []exp.Job {
	jobs := make([]exp.Job, 0, s.Keys)
	for i := 0; i < s.Keys; i++ {
		jobs = append(jobs, stubJob(i, s.Base, runs))
	}
	return jobs
}

// stubResolver resolves the stub spec, counting simulations into runs.
func stubResolver(runs *atomic.Int64) dist.Resolver {
	return func(raw json.RawMessage) (map[exp.Key]exp.Job, int, error) {
		var s stubSpec
		if err := json.Unmarshal(raw, &s); err != nil {
			return nil, 0, err
		}
		jobs := make(map[exp.Key]exp.Job, s.Keys)
		for _, j := range stubJobs(s, runs) {
			jobs[j.Key()] = j
		}
		return jobs, 1, nil
	}
}

// startWorker serves one in-process worker over a pipe and returns the
// coordinator-side handle plus a channel carrying Serve's error.
func startWorker(t *testing.T, name string, resolve dist.Resolver) (dist.Worker, <-chan error) {
	t.Helper()
	coordEnd, workerEnd := dist.Pipe()
	errc := make(chan error, 1)
	go func() { errc <- dist.Serve(workerEnd, resolve) }()
	return dist.Worker{Name: name, RW: coordEnd}, errc
}

func TestProtocolRoundTrip(t *testing.T) {
	msgs := []*dist.Message{
		{Type: dist.TypeInit, Proto: dist.ProtoVersion, Spec: json.RawMessage(`{"keys":3}`)},
		{Type: dist.TypeReady, Jobs: 7},
		{Type: dist.TypeBatch, BatchID: 1, Keys: []exp.Key{{Machine: "m", Config: "c", Workload: "w"}}},
		{Type: dist.TypeResult, Result: &exp.CachedResult{Machine: "m", Config: "c", Workload: "w", R: pipeline.Result{Cycles: 42}}},
		{Type: dist.TypeBatchDone, BatchID: 1},
		{Type: dist.TypeError, Err: "boom"},
	}
	var buf bytes.Buffer
	for _, m := range msgs {
		if err := dist.WriteMessage(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range msgs {
		got, err := dist.ReadMessage(&buf)
		if err != nil {
			t.Fatal(err)
		}
		gj, _ := json.Marshal(got)
		wj, _ := json.Marshal(want)
		if !bytes.Equal(gj, wj) {
			t.Errorf("round trip: got %s, want %s", gj, wj)
		}
	}
	if _, err := dist.ReadMessage(&buf); err != io.EOF {
		t.Errorf("read past final frame = %v, want io.EOF", err)
	}
}

func TestReadMessageRejectsOversizeAndTruncated(t *testing.T) {
	if _, err := dist.ReadMessage(bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff})); err == nil {
		t.Error("oversize frame length accepted")
	}
	var buf bytes.Buffer
	if err := dist.WriteMessage(&buf, &dist.Message{Type: dist.TypeReady, Jobs: 1}); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-2]
	if _, err := dist.ReadMessage(bytes.NewReader(cut)); err == nil || err == io.EOF {
		t.Errorf("truncated frame read = %v, want a mid-frame error", err)
	}
}

// TestRunMergesAllResults is the subsystem's core path: a plan sharded
// over three workers lands complete and correct in the coordinator's
// cache, with every key simulated exactly once across the fleet.
func TestRunMergesAllResults(t *testing.T) {
	spec := stubSpec{Keys: 13, Base: 1000}
	var runs atomic.Int64
	plan, err := exp.Plan(stubJobs(spec, nil))
	if err != nil {
		t.Fatal(err)
	}

	var workers []dist.Worker
	for i := 0; i < 3; i++ {
		w, _ := startWorker(t, fmt.Sprintf("w%d", i), stubResolver(&runs))
		workers = append(workers, w)
	}
	cache := exp.NewCache()
	if err := dist.Run(plan, workers, cache, dist.Options{Spec: spec.raw(), BatchSize: 2}); err != nil {
		t.Fatal(err)
	}
	for i, k := range plan {
		res, ok := cache.Lookup(k)
		if !ok {
			t.Fatalf("key %d (%+v) missing from merged cache", i, k)
		}
		if want := spec.Base + int64(i); res.Cycles != want {
			t.Errorf("key %d: cycles %d, want %d", i, res.Cycles, want)
		}
	}
	if got := runs.Load(); got != int64(spec.Keys) {
		t.Errorf("fleet simulated %d times, want %d (each key exactly once)", got, spec.Keys)
	}
}

// TestRunSkipsCachedKeys pins the -cache-file interplay: preloaded keys
// are never dispatched, and a fully warm cache needs no workers at all.
func TestRunSkipsCachedKeys(t *testing.T) {
	spec := stubSpec{Keys: 6, Base: 500}
	var local atomic.Int64
	jobs := stubJobs(spec, &local)
	plan, err := exp.Plan(jobs)
	if err != nil {
		t.Fatal(err)
	}
	cache := exp.NewCache()
	if _, err := exp.Run(jobs[:4], exp.WithCache(cache)); err != nil {
		t.Fatal(err)
	}

	var remote atomic.Int64
	w, _ := startWorker(t, "w0", stubResolver(&remote))
	if err := dist.Run(plan, []dist.Worker{w}, cache, dist.Options{Spec: spec.raw()}); err != nil {
		t.Fatal(err)
	}
	if got := remote.Load(); got != 2 {
		t.Errorf("worker simulated %d keys, want 2 (4 of 6 preloaded)", got)
	}

	// Fully warm: no workers required.
	if err := dist.Run(plan, nil, cache, dist.Options{Spec: spec.raw()}); err != nil {
		t.Errorf("warm-cache run with no workers: %v", err)
	}
	// Cold with no workers must error, not hang.
	if err := dist.Run(plan, nil, exp.NewCache(), dist.Options{Spec: spec.raw()}); err == nil {
		t.Error("cold run with no workers must fail")
	}
}

// dyingRW lets a fixed number of worker-side frames through, then fails
// every write and severs the pipe — a deterministic stand-in for a
// worker process crashing mid-batch.
type dyingRW struct {
	rw         io.ReadWriteCloser
	writesLeft atomic.Int32
	died       chan struct{}
	once       sync.Once
}

func newDyingRW(rw io.ReadWriteCloser, frames int32) *dyingRW {
	d := &dyingRW{rw: rw, died: make(chan struct{})}
	d.writesLeft.Store(frames)
	return d
}

func (d *dyingRW) Read(p []byte) (int, error) { return d.rw.Read(p) }

func (d *dyingRW) Write(p []byte) (int, error) {
	if d.writesLeft.Add(-1) < 0 {
		d.once.Do(func() {
			d.rw.Close()
			close(d.died)
		})
		return 0, errors.New("worker crashed")
	}
	return d.rw.Write(p)
}

// TestCrashRecovery pins the headline fault-tolerance guarantee: a
// worker that dies mid-batch loses nothing — the batch's unfinished
// remainder is reassigned to the survivor and the run completes with a
// full, correct cache and no error.
//
// The schedule is made deterministic by gating the survivor's resolver
// on the victim's death: the only ready worker when the batch is first
// dispatched is the one that will crash.
func TestCrashRecovery(t *testing.T) {
	spec := stubSpec{Keys: 8, Base: 2000}
	plan, err := exp.Plan(stubJobs(spec, nil))
	if err != nil {
		t.Fatal(err)
	}

	// Victim: allowed ready + one result, then crashes.
	var victimRuns atomic.Int64
	coordEnd, workerEnd := dist.Pipe()
	dying := newDyingRW(workerEnd, 2)
	victimErr := make(chan error, 1)
	go func() { victimErr <- dist.Serve(dying, stubResolver(&victimRuns)) }()
	victim := dist.Worker{Name: "victim", RW: coordEnd}

	// Survivor: resolver blocks until the victim is dead, so the first
	// dispatch must land on the victim.
	var survivorRuns atomic.Int64
	gated := func(raw json.RawMessage) (map[exp.Key]exp.Job, int, error) {
		<-dying.died
		return stubResolver(&survivorRuns)(raw)
	}
	survivor, _ := startWorker(t, "survivor", gated)

	cache := exp.NewCache()
	err = dist.Run(plan, []dist.Worker{victim, survivor}, cache, dist.Options{
		Spec:      spec.raw(),
		BatchSize: len(plan), // one batch: the crash strands a big remainder
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatalf("run with one crashed worker must still succeed, got: %v", err)
	}
	for i, k := range plan {
		res, ok := cache.Lookup(k)
		if !ok {
			t.Fatalf("key %d (%+v) missing after crash recovery", i, k)
		}
		if want := spec.Base + int64(i); res.Cycles != want {
			t.Errorf("key %d: cycles %d, want %d", i, res.Cycles, want)
		}
	}
	if serr := <-victimErr; serr == nil {
		t.Error("victim's Serve must report its send failure")
	}
	// Exactly one victim result was merged before the crash, so the
	// survivor must have re-run the other 7 keys.
	if got := survivorRuns.Load(); got != int64(spec.Keys)-1 {
		t.Errorf("survivor simulated %d keys, want %d", got, spec.Keys-1)
	}
}

// TestStalledWorkerTimesOut pins FrameTimeout: a worker that stays
// connected but goes silent mid-batch is declared dead on expiry and its
// batch reassigned, exactly like a crash. The schedule is deterministic:
// the survivor's resolver is gated on the staller having received the
// batch.
func TestStalledWorkerTimesOut(t *testing.T) {
	spec := stubSpec{Keys: 6, Base: 3000}
	plan, err := exp.Plan(stubJobs(spec, nil))
	if err != nil {
		t.Fatal(err)
	}

	// The staller speaks the handshake honestly, accepts the batch, then
	// never answers.
	coordEnd, workerEnd := dist.Pipe()
	gotBatch := make(chan struct{})
	go func() {
		m, err := dist.ReadMessage(workerEnd)
		if err != nil || m.Type != dist.TypeInit {
			return
		}
		if err := dist.WriteMessage(workerEnd, &dist.Message{Type: dist.TypeReady, Jobs: len(plan)}); err != nil {
			return
		}
		if m, err = dist.ReadMessage(workerEnd); err != nil || m.Type != dist.TypeBatch {
			return
		}
		close(gotBatch)
		// Silence: hold the connection open without ever responding.
		dist.ReadMessage(workerEnd)
	}()
	staller := dist.Worker{Name: "staller", RW: coordEnd}

	var survivorRuns atomic.Int64
	gated := func(raw json.RawMessage) (map[exp.Key]exp.Job, int, error) {
		<-gotBatch
		return stubResolver(&survivorRuns)(raw)
	}
	survivor, _ := startWorker(t, "survivor", gated)

	cache := exp.NewCache()
	err = dist.Run(plan, []dist.Worker{staller, survivor}, cache, dist.Options{
		Spec:         spec.raw(),
		BatchSize:    len(plan),
		FrameTimeout: 150 * time.Millisecond,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatalf("run with one stalled worker must still succeed, got: %v", err)
	}
	for i, k := range plan {
		if _, ok := cache.Lookup(k); !ok {
			t.Fatalf("key %d (%+v) missing after stall recovery", i, k)
		}
	}
	if got := survivorRuns.Load(); got != int64(spec.Keys) {
		t.Errorf("survivor simulated %d keys, want all %d", got, spec.Keys)
	}
}

// TestRetryCapFails pins that a batch cannot be redispatched forever: at
// MaxAttempts the run fails with context instead of spinning.
func TestRetryCapFails(t *testing.T) {
	spec := stubSpec{Keys: 4, Base: 10}
	plan, err := exp.Plan(stubJobs(spec, nil))
	if err != nil {
		t.Fatal(err)
	}
	coordEnd, workerEnd := dist.Pipe()
	dying := newDyingRW(workerEnd, 1) // ready only; every result write fails
	go dist.Serve(dying, stubResolver(nil))

	err = dist.Run(plan, []dist.Worker{{Name: "flaky", RW: coordEnd}}, exp.NewCache(), dist.Options{
		Spec: spec.raw(), MaxAttempts: 1,
	})
	if err == nil {
		t.Fatal("run must fail once the retry cap is hit")
	}
	if !strings.Contains(err.Error(), "dist:") {
		t.Errorf("error lacks dist context: %v", err)
	}
}

// TestWorkerErrorPropagates pins that a worker-side resolution failure
// aborts the run with the worker's message attached.
func TestWorkerErrorPropagates(t *testing.T) {
	spec := stubSpec{Keys: 2, Base: 10}
	plan, err := exp.Plan(stubJobs(spec, nil))
	if err != nil {
		t.Fatal(err)
	}
	w, serveErr := startWorker(t, "broken", func(json.RawMessage) (map[exp.Key]exp.Job, int, error) {
		return nil, 0, errors.New("no such registry entry")
	})
	err = dist.Run(plan, []dist.Worker{w}, exp.NewCache(), dist.Options{Spec: spec.raw()})
	if err == nil || !strings.Contains(err.Error(), "no such registry entry") {
		t.Errorf("run error = %v, want the worker's resolver message", err)
	}
	if serr := <-serveErr; serr == nil {
		t.Error("worker Serve must also fail")
	}
}

// TestJobSetSkewIsFatal pins the two divergence guards: a worker whose
// resolved job table size differs from the plan fails the handshake, and
// a worker asked for a key it cannot resolve aborts the run.
func TestJobSetSkewIsFatal(t *testing.T) {
	spec := stubSpec{Keys: 4, Base: 10}
	plan, err := exp.Plan(stubJobs(spec, nil))
	if err != nil {
		t.Fatal(err)
	}

	// Size skew: worker resolves 3 jobs against a 4-key plan.
	w, _ := startWorker(t, "skewed", stubResolver(nil))
	err = dist.Run(plan, []dist.Worker{w}, exp.NewCache(),
		dist.Options{Spec: stubSpec{Keys: 3, Base: 10}.raw()})
	if err == nil || !strings.Contains(err.Error(), "skew") {
		t.Errorf("size-skew run error = %v, want a skew diagnostic", err)
	}

	// Key skew: same size, different keys.
	rogue := append([]exp.Key{}, plan[:3]...)
	rogue = append(rogue, exp.Key{Machine: "nope", Config: "nope", Workload: "nope"})
	w2, _ := startWorker(t, "skewed2", stubResolver(nil))
	err = dist.Run(rogue, []dist.Worker{w2}, exp.NewCache(), dist.Options{Spec: spec.raw(), BatchSize: 4})
	if err == nil || !strings.Contains(err.Error(), "unknown key") {
		t.Errorf("key-skew run error = %v, want an unknown-key diagnostic", err)
	}
}

// TestProtocolVersionMismatch pins that version skew is a handshake
// failure, not silent wrongness.
func TestProtocolVersionMismatch(t *testing.T) {
	coordEnd, workerEnd := dist.Pipe()
	serveErr := make(chan error, 1)
	go func() { serveErr <- dist.Serve(workerEnd, stubResolver(nil)) }()
	if err := dist.WriteMessage(coordEnd, &dist.Message{Type: dist.TypeInit, Proto: dist.ProtoVersion + 1}); err != nil {
		t.Fatal(err)
	}
	m, err := dist.ReadMessage(coordEnd)
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != dist.TypeError || !strings.Contains(m.Err, "version") {
		t.Errorf("reply = %+v, want a version-mismatch error frame", m)
	}
	coordEnd.Close()
	if serr := <-serveErr; serr == nil {
		t.Error("Serve must fail on version mismatch")
	}
}
