package dist_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"icfp/internal/dist"
	"icfp/internal/exp"
	"icfp/internal/obs"
	"icfp/internal/pipeline"
	"icfp/internal/sim"
	"icfp/internal/spec"
	"icfp/internal/workload"
)

// The test world: real (but tiny — tens of instructions) scenario
// simulations. Batches are self-describing since protocol v2, so workers
// need no stub resolver: they run whatever specs arrive.

// testJobs builds n distinct real jobs from (model, scenario) combos,
// with warmup disabled (scenarios pre-warm their caches explicitly).
func testJobs(n int) []exp.Job {
	if max := len(sim.AllModels) * len(workload.AllScenarios); n > max {
		panic(fmt.Sprintf("at most %d distinct test jobs", max))
	}
	jobs := make([]exp.Job, 0, n)
	for i := 0; i < n; i++ {
		m := sim.AllModels[i%len(sim.AllModels)].Spec()
		m.Overrides = &spec.Overrides{Warmup: spec.Int(0)}
		sc := workload.AllScenarios[i/len(sim.AllModels)]
		jobs = append(jobs, exp.Job{
			Name:     fmt.Sprintf("job%d", i),
			Machine:  m,
			Workload: spec.ScenarioWorkload(sc),
		})
	}
	return jobs
}

// localResults simulates the jobs in-process, the reference the
// distributed path must reproduce exactly.
func localResults(t *testing.T, jobs []exp.Job) map[exp.Key]pipeline.Result {
	t.Helper()
	cache := exp.NewCache()
	if _, err := exp.Run(jobs, exp.WithCache(cache)); err != nil {
		t.Fatal(err)
	}
	out := make(map[exp.Key]pipeline.Result, len(jobs))
	for _, j := range jobs {
		res, ok := cache.Lookup(j.Key())
		if !ok {
			t.Fatalf("local reference run missing %v", j.Key())
		}
		out[j.Key()] = res
	}
	return out
}

// startWorker serves one in-process worker over a pipe and returns the
// coordinator-side handle plus a channel carrying Serve's error.
func startWorker(t *testing.T, name string, opts ...dist.ServeOption) (dist.Worker, <-chan error) {
	t.Helper()
	coordEnd, workerEnd := dist.Pipe()
	errc := make(chan error, 1)
	go func() { errc <- dist.Serve(workerEnd, opts...) }()
	return dist.Worker{Name: name, RW: coordEnd}, errc
}

func TestProtocolRoundTrip(t *testing.T) {
	job := testJobs(1)[0]
	msgs := []*dist.Message{
		{Type: dist.TypeRegister, Proto: dist.ProtoVersion, Name: "hostB:4242"},
		{Type: dist.TypeInit, Proto: dist.ProtoVersion, Parallel: 2},
		{Type: dist.TypeReady},
		{Type: dist.TypeBatch, BatchID: 1, Jobs: []spec.Job{job.Spec()}},
		{Type: dist.TypeResult, Result: &exp.CachedResult{Machine: job.Key().Machine, Workload: job.Key().Workload, R: pipeline.Result{Cycles: 42}, ElapsedNS: 1234}},
		{Type: dist.TypeCostReport, Costs: []dist.KeyCost{{Machine: job.Key().Machine, Workload: job.Key().Workload, ElapsedNS: 1234}}},
		{Type: dist.TypeBatchDone, BatchID: 1},
		{Type: dist.TypeGoodbye},
		{Type: dist.TypeError, Err: "boom"},
	}
	var buf bytes.Buffer
	for _, m := range msgs {
		if err := dist.WriteMessage(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range msgs {
		got, err := dist.ReadMessage(&buf)
		if err != nil {
			t.Fatal(err)
		}
		gj, _ := json.Marshal(got)
		wj, _ := json.Marshal(want)
		if !bytes.Equal(gj, wj) {
			t.Errorf("round trip: got %s, want %s", gj, wj)
		}
	}
	if _, err := dist.ReadMessage(&buf); err != io.EOF {
		t.Errorf("read past final frame = %v, want io.EOF", err)
	}
}

func TestReadMessageRejectsOversizeAndTruncated(t *testing.T) {
	if _, err := dist.ReadMessage(bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff})); err == nil {
		t.Error("oversize frame length accepted")
	}
	var buf bytes.Buffer
	if err := dist.WriteMessage(&buf, &dist.Message{Type: dist.TypeReady}); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-2]
	if _, err := dist.ReadMessage(bytes.NewReader(cut)); err == nil || err == io.EOF {
		t.Errorf("truncated frame read = %v, want a mid-frame error", err)
	}
}

// TestRunMergesAllResults is the subsystem's core path: a plan sharded
// over three workers — none of which has any prior copy of the job set;
// every batch is self-describing — lands complete and correct in the
// coordinator's cache, with every job simulated exactly once across the
// fleet and results identical to a local run.
func TestRunMergesAllResults(t *testing.T) {
	jobs := testJobs(13)
	want := localResults(t, jobs)
	plan, err := exp.Plan(jobs)
	if err != nil {
		t.Fatal(err)
	}

	var fleetRuns atomic.Int64
	var workers []dist.Worker
	for i := 0; i < 3; i++ {
		w, _ := startWorker(t, fmt.Sprintf("w%d", i), dist.OnSimulate(func(exp.Key) { fleetRuns.Add(1) }))
		workers = append(workers, w)
	}
	cache := exp.NewCache()
	if err := dist.Run(plan, workers, cache, dist.Options{BatchSize: 2, Parallel: 1}); err != nil {
		t.Fatal(err)
	}
	for i, sj := range plan {
		k := exp.KeyOf(sj)
		res, ok := cache.Lookup(k)
		if !ok {
			t.Fatalf("plan entry %d (%+v) missing from merged cache", i, k)
		}
		if res != want[k] {
			t.Errorf("plan entry %d: distributed result %+v != local %+v", i, res, want[k])
		}
	}
	if got := fleetRuns.Load(); got != int64(len(plan)) {
		t.Errorf("fleet simulated %d times, want %d (each job exactly once)", got, len(plan))
	}
	if cache.Simulations() != 0 {
		t.Errorf("coordinator simulated %d times; all simulation must happen on workers", cache.Simulations())
	}
}

// TestRunSkipsCachedKeys pins the -cache-file interplay: preloaded keys
// are never dispatched, and a fully warm cache needs no workers at all.
func TestRunSkipsCachedKeys(t *testing.T) {
	jobs := testJobs(6)
	plan, err := exp.Plan(jobs)
	if err != nil {
		t.Fatal(err)
	}
	cache := exp.NewCache()
	if _, err := exp.Run(jobs[:4], exp.WithCache(cache)); err != nil {
		t.Fatal(err)
	}

	var remote atomic.Int64
	w, _ := startWorker(t, "w0", dist.OnSimulate(func(exp.Key) { remote.Add(1) }))
	if err := dist.Run(plan, []dist.Worker{w}, cache, dist.Options{Parallel: 1}); err != nil {
		t.Fatal(err)
	}
	if got := remote.Load(); got != 2 {
		t.Errorf("worker simulated %d jobs, want 2 (4 of 6 preloaded)", got)
	}

	// Fully warm: no workers required.
	if err := dist.Run(plan, nil, cache, dist.Options{}); err != nil {
		t.Errorf("warm-cache run with no workers: %v", err)
	}
	// Cold with no workers must error, not hang.
	if err := dist.Run(plan, nil, exp.NewCache(), dist.Options{}); err == nil {
		t.Error("cold run with no workers must fail")
	}
}

// dyingRW lets a fixed number of worker-side frames through, then fails
// every write and severs the pipe — a deterministic stand-in for a
// worker process crashing mid-batch.
type dyingRW struct {
	rw         io.ReadWriteCloser
	writesLeft atomic.Int32
	died       chan struct{}
	once       sync.Once
}

func newDyingRW(rw io.ReadWriteCloser, frames int32) *dyingRW {
	d := &dyingRW{rw: rw, died: make(chan struct{})}
	d.writesLeft.Store(frames)
	return d
}

func (d *dyingRW) Read(p []byte) (int, error) { return d.rw.Read(p) }

func (d *dyingRW) Write(p []byte) (int, error) {
	if d.writesLeft.Add(-1) < 0 {
		d.once.Do(func() {
			d.rw.Close()
			close(d.died)
		})
		return 0, fmt.Errorf("worker crashed")
	}
	return d.rw.Write(p)
}

// gatedRW delays a worker's first read (and with it the whole handshake)
// until the gate opens — the deterministic scheduling device behind the
// crash and stall tests.
type gatedRW struct {
	rw   io.ReadWriteCloser
	gate <-chan struct{}
}

func (g *gatedRW) Read(p []byte) (int, error)  { <-g.gate; return g.rw.Read(p) }
func (g *gatedRW) Write(p []byte) (int, error) { return g.rw.Write(p) }
func (g *gatedRW) Close() error                { return g.rw.Close() }

// TestCrashRecovery pins the headline fault-tolerance guarantee: a
// worker that dies mid-batch loses nothing — the batch's unfinished
// remainder is reassigned to the survivor and the run completes with a
// full, correct cache and no error.
//
// The schedule is made deterministic by gating the survivor's transport
// on the victim's death: the only ready worker when the batch is first
// dispatched is the one that will crash.
func TestCrashRecovery(t *testing.T) {
	jobs := testJobs(8)
	want := localResults(t, jobs)
	plan, err := exp.Plan(jobs)
	if err != nil {
		t.Fatal(err)
	}

	// Victim: allowed ready + one result, then crashes.
	var victimRuns atomic.Int64
	coordEnd, workerEnd := dist.Pipe()
	dying := newDyingRW(workerEnd, 2)
	victimErr := make(chan error, 1)
	go func() {
		victimErr <- dist.Serve(dying, dist.OnSimulate(func(exp.Key) { victimRuns.Add(1) }))
	}()
	victim := dist.Worker{Name: "victim", RW: coordEnd}

	// Survivor: its handshake blocks until the victim is dead, so the
	// first dispatch must land on the victim.
	var survivorRuns atomic.Int64
	survCoord, survWorker := dist.Pipe()
	go dist.Serve(&gatedRW{rw: survWorker, gate: dying.died}, dist.OnSimulate(func(exp.Key) { survivorRuns.Add(1) }))
	survivor := dist.Worker{Name: "survivor", RW: survCoord}

	cache := exp.NewCache()
	err = dist.Run(plan, []dist.Worker{victim, survivor}, cache, dist.Options{
		BatchSize: len(plan), // one batch: the crash strands a big remainder
		Parallel:  1,         // deterministic in-worker order: one result lands before the crash
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatalf("run with one crashed worker must still succeed, got: %v", err)
	}
	for i, sj := range plan {
		k := exp.KeyOf(sj)
		res, ok := cache.Lookup(k)
		if !ok {
			t.Fatalf("plan entry %d (%+v) missing after crash recovery", i, k)
		}
		if res != want[k] {
			t.Errorf("plan entry %d: result diverged after crash recovery", i)
		}
	}
	if serr := <-victimErr; serr == nil {
		t.Error("victim's Serve must report its send failure")
	}
	// Exactly one victim result was merged before the crash, so the
	// survivor must have re-run the other 7 jobs.
	if got := survivorRuns.Load(); got != int64(len(plan))-1 {
		t.Errorf("survivor simulated %d jobs, want %d", got, len(plan)-1)
	}
}

// TestStalledWorkerTimesOut pins FrameTimeout: a worker that stays
// connected but goes silent mid-batch is declared dead on expiry and its
// batch reassigned, exactly like a crash. The schedule is deterministic:
// the survivor's handshake is gated on the staller having received the
// batch.
func TestStalledWorkerTimesOut(t *testing.T) {
	jobs := testJobs(6)
	plan, err := exp.Plan(jobs)
	if err != nil {
		t.Fatal(err)
	}

	// The staller speaks the handshake honestly, accepts the batch, then
	// never answers.
	coordEnd, workerEnd := dist.Pipe()
	gotBatch := make(chan struct{})
	go func() {
		m, err := dist.ReadMessage(workerEnd)
		if err != nil || m.Type != dist.TypeInit {
			return
		}
		if err := dist.WriteMessage(workerEnd, &dist.Message{Type: dist.TypeReady}); err != nil {
			return
		}
		if m, err = dist.ReadMessage(workerEnd); err != nil || m.Type != dist.TypeBatch {
			return
		}
		close(gotBatch)
		// Silence: hold the connection open without ever responding.
		dist.ReadMessage(workerEnd)
	}()
	staller := dist.Worker{Name: "staller", RW: coordEnd}

	var survivorRuns atomic.Int64
	survCoord, survWorker := dist.Pipe()
	go dist.Serve(&gatedRW{rw: survWorker, gate: gotBatch}, dist.OnSimulate(func(exp.Key) { survivorRuns.Add(1) }))
	survivor := dist.Worker{Name: "survivor", RW: survCoord}

	cache := exp.NewCache()
	err = dist.Run(plan, []dist.Worker{staller, survivor}, cache, dist.Options{
		BatchSize:    len(plan),
		FrameTimeout: 150 * time.Millisecond,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatalf("run with one stalled worker must still succeed, got: %v", err)
	}
	for i, sj := range plan {
		if _, ok := cache.Lookup(exp.KeyOf(sj)); !ok {
			t.Fatalf("plan entry %d missing after stall recovery", i)
		}
	}
	if got := survivorRuns.Load(); got != int64(len(plan)) {
		t.Errorf("survivor simulated %d jobs, want all %d", got, len(plan))
	}
}

// TestRetryCapFails pins that a batch cannot be redispatched forever: at
// MaxAttempts the run fails with context instead of spinning.
func TestRetryCapFails(t *testing.T) {
	plan, err := exp.Plan(testJobs(4))
	if err != nil {
		t.Fatal(err)
	}
	coordEnd, workerEnd := dist.Pipe()
	dying := newDyingRW(workerEnd, 1) // ready only; every result write fails
	go dist.Serve(dying)

	err = dist.Run(plan, []dist.Worker{{Name: "flaky", RW: coordEnd}}, exp.NewCache(), dist.Options{
		MaxAttempts: 1,
	})
	if err == nil {
		t.Fatal("run must fail once the retry cap is hit")
	}
	if !strings.Contains(err.Error(), "dist:") {
		t.Errorf("error lacks dist context: %v", err)
	}
}

// TestWorkerRejectsInvalidJobSpec pins the v2 replacement for the old
// job-table skew guard: a batch carrying a spec the worker cannot
// validate aborts the run with the worker's diagnostic, instead of
// simulating the wrong thing.
func TestWorkerRejectsInvalidJobSpec(t *testing.T) {
	w, serveErr := startWorker(t, "strict")
	rogue := []spec.Job{{
		Machine:  spec.Machine{Model: "not-a-model"},
		Workload: spec.ScenarioWorkload(workload.ScenarioLoneL2),
	}}
	err := dist.Run(rogue, []dist.Worker{w}, exp.NewCache(), dist.Options{})
	if err == nil || !strings.Contains(err.Error(), "invalid job spec") {
		t.Errorf("run error = %v, want the worker's invalid-spec diagnostic", err)
	}
	if serr := <-serveErr; serr == nil {
		t.Error("worker Serve must also fail")
	}
}

// TestWorkerRejectsHostileParallelism pins the worker-side cap on the
// coordinator-requested pool size (the init frame arrives over the
// network on TCP workers).
func TestWorkerRejectsHostileParallelism(t *testing.T) {
	coordEnd, workerEnd := dist.Pipe()
	serveErr := make(chan error, 1)
	go func() { serveErr <- dist.Serve(workerEnd) }()
	if err := dist.WriteMessage(coordEnd, &dist.Message{Type: dist.TypeInit, Proto: dist.ProtoVersion, Parallel: 1 << 20}); err != nil {
		t.Fatal(err)
	}
	m, err := dist.ReadMessage(coordEnd)
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != dist.TypeError || !strings.Contains(m.Err, "parallelism") {
		t.Errorf("reply = %+v, want a parallelism-cap error frame", m)
	}
	coordEnd.Close()
	if serr := <-serveErr; serr == nil {
		t.Error("Serve must fail on a hostile parallelism request")
	}
}

// TestProtocolVersionMismatchNamesBothVersions pins the version-bump
// hygiene in both directions: a skewed handshake fails with a message
// naming both protocol versions — never a decode panic or a silent
// mis-simulation.
func TestProtocolVersionMismatchNamesBothVersions(t *testing.T) {
	// Old coordinator (v1) → this worker (v2): the worker's error frame
	// names both versions.
	coordEnd, workerEnd := dist.Pipe()
	serveErr := make(chan error, 1)
	go func() { serveErr <- dist.Serve(workerEnd) }()
	if err := dist.WriteMessage(coordEnd, &dist.Message{Type: dist.TypeInit, Proto: 1}); err != nil {
		t.Fatal(err)
	}
	m, err := dist.ReadMessage(coordEnd)
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != dist.TypeError ||
		!strings.Contains(m.Err, "v1") || !strings.Contains(m.Err, fmt.Sprintf("v%d", dist.ProtoVersion)) {
		t.Errorf("reply = %+v, want a version-mismatch error naming v1 and v%d", m, dist.ProtoVersion)
	}
	coordEnd.Close()
	if serr := <-serveErr; serr == nil {
		t.Error("Serve must fail on version mismatch")
	}

	// Old worker (v1) ↔ this coordinator (v2): the v1 worker rejects the
	// v2 init exactly as the v1 code did — with an error frame naming
	// both versions — and the coordinator surfaces it as a fatal error,
	// not a decode panic or a hang.
	plan, err := exp.Plan(testJobs(2))
	if err != nil {
		t.Fatal(err)
	}
	c2, w2 := dist.Pipe()
	go func() {
		// A faithful reenactment of the v1 worker's handshake rejection.
		m, err := dist.ReadMessage(w2)
		if err != nil || m.Type != dist.TypeInit {
			return
		}
		if m.Proto != 1 {
			dist.WriteMessage(w2, &dist.Message{Type: dist.TypeError,
				Err: fmt.Sprintf("protocol version mismatch: coordinator %d, worker %d", m.Proto, 1)})
		}
	}()
	err = dist.Run(plan, []dist.Worker{{Name: "v1-worker", RW: c2}}, exp.NewCache(), dist.Options{})
	if err == nil || !strings.Contains(err.Error(), "version mismatch") ||
		!strings.Contains(err.Error(), fmt.Sprintf("%d", dist.ProtoVersion)) || !strings.Contains(err.Error(), "1") {
		t.Errorf("run against a v1 worker = %v, want a fatal version-mismatch error naming both versions", err)
	}
}

// TestWorkerAnswersRedispatchFromCache pins the worker-side cache: a job
// re-dispatched on the same connection (a coordinator retry) is answered
// without re-simulating.
func TestWorkerAnswersRedispatchFromCache(t *testing.T) {
	jobs := testJobs(3)
	plan, err := exp.Plan(jobs)
	if err != nil {
		t.Fatal(err)
	}
	var runs atomic.Int64
	coordEnd, workerEnd := dist.Pipe()
	go dist.Serve(workerEnd, dist.OnSimulate(func(exp.Key) { runs.Add(1) }))

	if err := dist.WriteMessage(coordEnd, &dist.Message{Type: dist.TypeInit, Proto: dist.ProtoVersion, Parallel: 1}); err != nil {
		t.Fatal(err)
	}
	if m, err := dist.ReadMessage(coordEnd); err != nil || m.Type != dist.TypeReady {
		t.Fatalf("handshake reply = (%+v, %v)", m, err)
	}
	for batch := 1; batch <= 2; batch++ {
		if err := dist.WriteMessage(coordEnd, &dist.Message{Type: dist.TypeBatch, BatchID: batch, Jobs: plan}); err != nil {
			t.Fatal(err)
		}
		results := 0
		for {
			m, err := dist.ReadMessage(coordEnd)
			if err != nil {
				t.Fatal(err)
			}
			if m.Type == dist.TypeBatchDone {
				break
			}
			if m.Type == dist.TypeCostReport {
				// Only fresh simulations report costs; a batch answered
				// entirely from the worker's cache stays silent.
				if batch == 2 {
					t.Errorf("cache-served batch sent a cost report: %+v", m.Costs)
				}
				continue
			}
			if m.Type != dist.TypeResult {
				t.Fatalf("unexpected %q frame", m.Type)
			}
			results++
		}
		if results != len(plan) {
			t.Fatalf("batch %d returned %d results, want %d", batch, results, len(plan))
		}
	}
	coordEnd.Close()
	if got := runs.Load(); got != int64(len(plan)) {
		t.Errorf("worker simulated %d times across a re-dispatch, want %d (second batch from cache)", got, len(plan))
	}
}

// realResult builds the CachedResult a scripted worker must stream for
// the plan entry — real simulation output, so correctness checks against
// the local reference still hold.
func realResult(want map[exp.Key]pipeline.Result, k exp.Key) *exp.CachedResult {
	res := want[k]
	return &exp.CachedResult{Machine: k.Machine, Workload: k.Workload, R: res, ElapsedNS: 1000}
}

// TestGoodbyeMidBatchReassignsRemainder pins the elastic drain
// guarantee: a worker that says goodbye mid-batch keeps everything it
// already streamed, hands the unfinished remainder back without it
// counting as a failed attempt (MaxAttempts is 1 here — a counted
// requeue would abort the run), and the replacement worker — which joins
// the fleet mid-run through Options.Join — receives and finishes that
// remainder.
func TestGoodbyeMidBatchReassignsRemainder(t *testing.T) {
	jobs := testJobs(8)
	want := localResults(t, jobs)
	plan, err := exp.Plan(jobs)
	if err != nil {
		t.Fatal(err)
	}

	// The leaver: a scripted worker that takes the whole plan as one
	// batch, delivers exactly one real result, then says goodbye.
	coordEnd, workerEnd := dist.Pipe()
	saidGoodbye := make(chan struct{})
	go func() {
		m, err := dist.ReadMessage(workerEnd)
		if err != nil || m.Type != dist.TypeInit {
			return
		}
		if err := dist.WriteMessage(workerEnd, &dist.Message{Type: dist.TypeReady}); err != nil {
			return
		}
		if m, err = dist.ReadMessage(workerEnd); err != nil || m.Type != dist.TypeBatch {
			return
		}
		first := exp.KeyOf(m.Jobs[0])
		if err := dist.WriteMessage(workerEnd, &dist.Message{Type: dist.TypeResult, Result: realResult(want, first)}); err != nil {
			return
		}
		if err := dist.WriteMessage(workerEnd, &dist.Message{Type: dist.TypeGoodbye}); err != nil {
			return
		}
		close(saidGoodbye)
		dist.ReadMessage(workerEnd) // wait for the coordinator to close us
	}()
	leaver := dist.Worker{Name: "leaver", RW: coordEnd}

	// The joiner arrives through the join channel only after the goodbye
	// is on the wire: its work can only be the requeued remainder.
	var joinerRuns atomic.Int64
	join := make(chan dist.Worker)
	go func() {
		<-saidGoodbye
		w, _ := startWorker(t, "joiner", dist.OnSimulate(func(exp.Key) { joinerRuns.Add(1) }))
		join <- w
	}()

	cache := exp.NewCache()
	err = dist.Run(plan, []dist.Worker{leaver}, cache, dist.Options{
		BatchSize:   len(plan),
		MaxAttempts: 1,
		Join:        join,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatalf("run with a goodbye mid-batch must succeed, got: %v", err)
	}
	for i, sj := range plan {
		k := exp.KeyOf(sj)
		res, ok := cache.Lookup(k)
		if !ok {
			t.Fatalf("plan entry %d (%+v) missing after goodbye reassignment", i, k)
		}
		if res != want[k] {
			t.Errorf("plan entry %d: result diverged after goodbye reassignment", i)
		}
	}
	if got := joinerRuns.Load(); got != int64(len(plan))-1 {
		t.Errorf("joiner simulated %d jobs, want %d (the goodbye'd batch's remainder)", got, len(plan)-1)
	}
}

// TestJoinIntoRunningDispatchReceivesWork pins the registration path
// end to end: a run may start with an empty fleet when Options.Join is
// set, and a worker that registers (the expd join handshake) and is fed
// through the channel mid-run receives the queued work and completes the
// run.
func TestJoinIntoRunningDispatchReceivesWork(t *testing.T) {
	jobs := testJobs(5)
	want := localResults(t, jobs)
	plan, err := exp.Plan(jobs)
	if err != nil {
		t.Fatal(err)
	}

	join := make(chan dist.Worker)
	var runs atomic.Int64
	go func() {
		coordEnd, workerEnd := dist.Pipe()
		// The worker side of an elastic join: dial (a pipe here),
		// register, then serve. Its own goroutine, because the register
		// write on a synchronous pipe completes only when AcceptWorker
		// reads it.
		go func() {
			if err := dist.Register(workerEnd, "elastic-1"); err != nil {
				t.Error(err)
				return
			}
			dist.Serve(workerEnd, dist.OnSimulate(func(exp.Key) { runs.Add(1) }))
		}()
		w, err := dist.AcceptWorker(coordEnd, "fallback")
		if err != nil {
			t.Error(err)
			return
		}
		if w.Name != "elastic-1" {
			t.Errorf("accepted worker name = %q, want the registered name", w.Name)
		}
		join <- w
	}()

	cache := exp.NewCache()
	if err := dist.Run(plan, nil, cache, dist.Options{Join: join, Logf: t.Logf}); err != nil {
		t.Fatalf("elastic run starting with an empty fleet: %v", err)
	}
	for i, sj := range plan {
		k := exp.KeyOf(sj)
		res, ok := cache.Lookup(k)
		if !ok {
			t.Fatalf("plan entry %d missing", i)
		}
		if res != want[k] {
			t.Errorf("plan entry %d diverged", i)
		}
	}
	if got := runs.Load(); got != int64(len(plan)) {
		t.Errorf("joined worker simulated %d jobs, want all %d", got, len(plan))
	}
}

// TestAcceptWorkerRejectsSkewAndGarbage pins the register handshake: a
// joining worker with a mismatched protocol version is turned away with
// an error frame naming both versions, and a non-register first frame is
// rejected outright — before either reaches the dispatch loop.
func TestAcceptWorkerRejectsSkewAndGarbage(t *testing.T) {
	// The pipes are synchronous, so AcceptWorker runs in a goroutine
	// while this side plays the misbehaving joiner and reads the reply.
	accept := func(rw io.ReadWriteCloser) <-chan error {
		errc := make(chan error, 1)
		go func() {
			_, err := dist.AcceptWorker(rw, "fallback")
			errc <- err
		}()
		return errc
	}

	coordEnd, workerEnd := dist.Pipe()
	errc := accept(coordEnd)
	if err := dist.WriteMessage(workerEnd, &dist.Message{Type: dist.TypeRegister, Proto: 2, Name: "old"}); err != nil {
		t.Fatal(err)
	}
	if m, rerr := dist.ReadMessage(workerEnd); rerr != nil || m.Type != dist.TypeError ||
		!strings.Contains(m.Err, "v2") || !strings.Contains(m.Err, fmt.Sprintf("v%d", dist.ProtoVersion)) {
		t.Errorf("skewed joiner got (%+v, %v), want an error frame naming both versions", m, rerr)
	}
	if err := <-errc; err == nil || !strings.Contains(err.Error(), "v2") || !strings.Contains(err.Error(), fmt.Sprintf("v%d", dist.ProtoVersion)) {
		t.Errorf("v2 register accepted or badly reported: %v", err)
	}

	c2, w2 := dist.Pipe()
	errc = accept(c2)
	if err := dist.WriteMessage(w2, &dist.Message{Type: dist.TypeReady}); err != nil {
		t.Fatal(err)
	}
	if m, rerr := dist.ReadMessage(w2); rerr != nil || m.Type != dist.TypeError {
		t.Errorf("garbage joiner got (%+v, %v), want an error frame", m, rerr)
	}
	if err := <-errc; err == nil || !strings.Contains(err.Error(), "register") {
		t.Errorf("non-register first frame accepted: %v", err)
	}
}

// TestAuthRejectedBeforeAnyFrame pins the token guarantee of the
// satellite checklist: a peer with a wrong or missing token is rejected
// by the preamble check itself — VerifyAuth fails before ReadMessage
// ever runs, so no protocol frame from an unauthenticated peer is
// processed, and the peer never sees a ready reply.
func TestAuthRejectedBeforeAnyFrame(t *testing.T) {
	serve := func(workerEnd io.ReadWriteCloser) <-chan error {
		errc := make(chan error, 1)
		go func() {
			if err := dist.VerifyAuth(workerEnd, "fleet-secret"); err != nil {
				workerEnd.Close()
				errc <- err
				return
			}
			errc <- dist.Serve(workerEnd)
		}()
		return errc
	}

	// Missing token: the dialer starts straight in with a protocol
	// frame, which can never parse as a preamble. The frame is padded
	// past the preamble length so the synchronous pipe delivers enough
	// bytes for the check to run at all.
	coordEnd, workerEnd := dist.Pipe()
	errc := serve(workerEnd)
	go dist.WriteMessage(coordEnd, &dist.Message{Type: dist.TypeInit, Proto: dist.ProtoVersion, Name: strings.Repeat("x", 64)})
	if err := <-errc; err == nil || !strings.Contains(err.Error(), "token") {
		t.Errorf("frame-as-preamble error = %v, want a token rejection", err)
	}
	if _, err := dist.ReadMessage(coordEnd); err == nil {
		t.Error("unauthenticated peer received a protocol reply")
	}

	// Wrong token: same shape, constant-time compare fails.
	c2, w2 := dist.Pipe()
	errc = serve(w2)
	if err := dist.WriteAuth(c2, "wrong-secret"); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err == nil || !strings.Contains(err.Error(), "token") {
		t.Errorf("wrong-token error = %v, want a token rejection", err)
	}

	// Correct token: the handshake proceeds.
	c3, w3 := dist.Pipe()
	errc = serve(w3)
	if err := dist.WriteAuth(c3, "fleet-secret"); err != nil {
		t.Fatal(err)
	}
	if err := dist.WriteMessage(c3, &dist.Message{Type: dist.TypeInit, Proto: dist.ProtoVersion, Parallel: 1}); err != nil {
		t.Fatal(err)
	}
	if m, err := dist.ReadMessage(c3); err != nil || m.Type != dist.TypeReady {
		t.Fatalf("authenticated handshake reply = (%+v, %v), want ready", m, err)
	}
	c3.Close()
	<-errc
}

// TestHeartbeatRunAndMetrics pins the protocol-v4 happy path plus the
// telemetry contract in one end-to-end run: with heartbeats beaconing
// faster than the worker's grace window, a run completes with correct
// results, the coordinator registry shows the dispatch shape (joins,
// merges, drained queue), and the worker registry shows heartbeat age
// and its simulation counters.
func TestHeartbeatRunAndMetrics(t *testing.T) {
	jobs := testJobs(6)
	want := localResults(t, jobs)
	plan, err := exp.Plan(jobs)
	if err != nil {
		t.Fatal(err)
	}

	wreg := obs.NewRegistry()
	w, serveErr := startWorker(t, "w0", dist.WithMetrics(wreg))
	creg := obs.NewRegistry()
	cache := exp.NewCache()
	err = dist.Run(plan, []dist.Worker{w}, cache, dist.Options{
		Parallel:  1,
		Heartbeat: 20 * time.Millisecond,
		Metrics:   creg,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatalf("heartbeat-enabled run failed: %v", err)
	}
	if serr := <-serveErr; serr != nil {
		t.Errorf("worker Serve under heartbeats: %v", serr)
	}
	for i, sj := range plan {
		k := exp.KeyOf(sj)
		res, ok := cache.Lookup(k)
		if !ok {
			t.Fatalf("plan entry %d missing", i)
		}
		if res != want[k] {
			t.Errorf("plan entry %d diverged under heartbeats", i)
		}
	}

	// Coordinator-side telemetry: reading a metric back is the same
	// get-or-create call sites use.
	if got := creg.Counter("dist_worker_joins_total", "").Value(); got != 1 {
		t.Errorf("dist_worker_joins_total = %d, want 1", got)
	}
	if got := creg.Counter("dist_results_merged_total", "").Value(); got != int64(len(plan)) {
		t.Errorf("dist_results_merged_total = %d, want %d", got, len(plan))
	}
	if got := creg.Counter("dist_worker_results_total", "", "worker", "w0").Value(); got != int64(len(plan)) {
		t.Errorf(`dist_worker_results_total{worker="w0"} = %d, want %d`, got, len(plan))
	}
	if got := creg.Counter("dist_dispatched_batches_total", "").Value(); got < 1 {
		t.Errorf("dist_dispatched_batches_total = %d, want >= 1", got)
	}
	if got := creg.Gauge("dist_queue_depth", "").Value(); got != 0 {
		t.Errorf("dist_queue_depth = %v after the run, want 0", got)
	}
	if got := creg.Gauge("dist_inflight_jobs", "").Value(); got != 0 {
		t.Errorf("dist_inflight_jobs = %v after the run, want 0", got)
	}

	// Worker-side telemetry: heartbeat age gauge and the instrumented
	// per-connection cache.
	var buf bytes.Buffer
	if err := wreg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"dist_heartbeat_age_seconds", "exp_cache_misses_total", "exp_simulations_total"} {
		if !strings.Contains(buf.String(), name) {
			t.Errorf("worker registry missing %s:\n%s", name, buf.String())
		}
	}
	if got := wreg.Counter("exp_cache_misses_total", "").Value(); got != int64(len(plan)) {
		t.Errorf("worker exp_cache_misses_total = %d, want %d", got, len(plan))
	}
}

// TestHeartbeatLossDetected pins the dead-coordinator fast path: a
// coordinator that announces a heartbeat interval and then goes silent —
// connection still open, so no EOF ever arrives — is declared lost
// within the grace window, with ErrCoordinatorLost, instead of the
// worker hanging until TCP keepalive (minutes) or forever on a pipe.
func TestHeartbeatLossDetected(t *testing.T) {
	coordEnd, workerEnd := dist.Pipe()
	serveErr := make(chan error, 1)
	go func() { serveErr <- dist.Serve(workerEnd) }()
	if err := dist.WriteMessage(coordEnd, &dist.Message{
		Type: dist.TypeInit, Proto: dist.ProtoVersion, Parallel: 1,
		HeartbeatNS: int64(30 * time.Millisecond),
	}); err != nil {
		t.Fatal(err)
	}
	if m, err := dist.ReadMessage(coordEnd); err != nil || m.Type != dist.TypeReady {
		t.Fatalf("handshake reply = (%+v, %v)", m, err)
	}
	// Prove the liveness path: one real heartbeat is consumed silently.
	if err := dist.WriteMessage(coordEnd, &dist.Message{Type: dist.TypeHeartbeat}); err != nil {
		t.Fatal(err)
	}
	// Then total silence with the connection held open.
	select {
	case err := <-serveErr:
		if !errors.Is(err, dist.ErrCoordinatorLost) {
			t.Errorf("Serve error = %v, want ErrCoordinatorLost", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("worker never declared the silent coordinator lost")
	}
	coordEnd.Close()
}

// TestMaxIdleGivesUp pins the elastic give-up knob: a run whose fleet
// stays empty for the whole MaxIdle window fails with ErrFleetIdle (a
// distinct, matchable error) instead of waiting forever for a join that
// never comes.
func TestMaxIdleGivesUp(t *testing.T) {
	plan, err := exp.Plan(testJobs(3))
	if err != nil {
		t.Fatal(err)
	}
	join := make(chan dist.Worker) // never delivers
	start := time.Now()
	err = dist.Run(plan, nil, exp.NewCache(), dist.Options{
		Join:    join,
		MaxIdle: 80 * time.Millisecond,
		Logf:    t.Logf,
	})
	if !errors.Is(err, dist.ErrFleetIdle) {
		t.Fatalf("idle elastic run error = %v, want ErrFleetIdle", err)
	}
	if elapsed := time.Since(start); elapsed < 80*time.Millisecond {
		t.Errorf("gave up after %v, before the %v window", elapsed, 80*time.Millisecond)
	}
	if !strings.Contains(err.Error(), "3 jobs outstanding") {
		t.Errorf("idle error lacks the outstanding-job count: %v", err)
	}
}

// TestMaxIdleDisarmedByJoin pins the other half of the knob: a worker
// arriving inside the window stands the give-up timer down and the run
// completes normally.
func TestMaxIdleDisarmedByJoin(t *testing.T) {
	jobs := testJobs(4)
	want := localResults(t, jobs)
	plan, err := exp.Plan(jobs)
	if err != nil {
		t.Fatal(err)
	}
	join := make(chan dist.Worker)
	go func() {
		time.Sleep(30 * time.Millisecond)
		w, _ := startWorker(t, "late")
		join <- w
	}()
	cache := exp.NewCache()
	if err := dist.Run(plan, nil, cache, dist.Options{
		Join:    join,
		MaxIdle: 2 * time.Second,
		Logf:    t.Logf,
	}); err != nil {
		t.Fatalf("run with an in-window join must succeed, got: %v", err)
	}
	for i, sj := range plan {
		k := exp.KeyOf(sj)
		if res, ok := cache.Lookup(k); !ok || res != want[k] {
			t.Fatalf("plan entry %d missing or diverged after late join", i)
		}
	}
}
