package dist_test

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/pem"
	"math/big"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"icfp/internal/dist"
	"icfp/internal/exp"
)

// genCert writes a throwaway self-signed certificate and key, the test
// stand-in for the operator-generated certs of docs/OPERATIONS.md. The
// certificate doubles as its own CA bundle on the dialing side.
func genCert(t *testing.T) (certFile, keyFile string) {
	t.Helper()
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	tmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: "expd-test"},
		DNSNames:              []string{"localhost"},
		IPAddresses:           []net.IP{net.IPv4(127, 0, 0, 1), net.IPv6loopback},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(time.Hour),
		KeyUsage:              x509.KeyUsageDigitalSignature | x509.KeyUsageCertSign,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		BasicConstraintsValid: true,
		IsCA:                  true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		t.Fatal(err)
	}
	keyDER, err := x509.MarshalECPrivateKey(key)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	certFile = filepath.Join(dir, "cert.pem")
	keyFile = filepath.Join(dir, "key.pem")
	if err := os.WriteFile(certFile, pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: der}), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(keyFile, pem.EncodeToMemory(&pem.Block{Type: "EC PRIVATE KEY", Bytes: keyDER}), 0o600); err != nil {
		t.Fatal(err)
	}
	return certFile, keyFile
}

// TestTLSTokenTransportRoundTrip runs a real dispatch over a real TCP
// connection wrapped in TLS with token auth — the full cmd/expd
// transport stack — and pins that results coming through it match a
// local run exactly.
func TestTLSTokenTransportRoundTrip(t *testing.T) {
	certFile, keyFile := genCert(t)
	serverSec := dist.Security{CertFile: certFile, KeyFile: keyFile, Token: "fleet-secret"}
	clientSec := dist.Security{CAFile: certFile, Token: "fleet-secret"}

	jobs := testJobs(4)
	want := localResults(t, jobs)
	plan, err := exp.Plan(jobs)
	if err != nil {
		t.Fatal(err)
	}

	ln, err := serverSec.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	serveErr := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			serveErr <- err
			return
		}
		defer conn.Close()
		sc, err := serverSec.Secure(conn)
		if err != nil {
			serveErr <- err
			return
		}
		serveErr <- dist.Serve(sc)
	}()

	w, err := dist.DialTCP(ln.Addr().String(), clientSec)
	if err != nil {
		t.Fatal(err)
	}
	cache := exp.NewCache()
	if err := dist.Run(plan, []dist.Worker{w}, cache, dist.Options{Logf: t.Logf}); err != nil {
		t.Fatalf("run over TLS+token transport: %v", err)
	}
	for i, sj := range plan {
		k := exp.KeyOf(sj)
		res, ok := cache.Lookup(k)
		if !ok {
			t.Fatalf("plan entry %d missing", i)
		}
		if res != want[k] {
			t.Errorf("plan entry %d diverged over TLS transport", i)
		}
	}
	if err := <-serveErr; err != nil {
		t.Errorf("worker over TLS: %v", err)
	}
}

// TestTLSDialRejectsWrongToken pins the accept-side ordering over the
// real transport: a TLS-valid dialer with the wrong fleet token is
// dropped by the preamble check before any protocol frame is processed.
func TestTLSDialRejectsWrongToken(t *testing.T) {
	certFile, keyFile := genCert(t)
	serverSec := dist.Security{CertFile: certFile, KeyFile: keyFile, Token: "fleet-secret"}

	ln, err := serverSec.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	rejected := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			rejected <- err
			return
		}
		defer conn.Close()
		_, err = serverSec.Secure(conn)
		rejected <- err
	}()

	w, err := dist.DialTCP(ln.Addr().String(), dist.Security{CAFile: certFile, Token: "wrong"})
	if err != nil {
		t.Fatal(err)
	}
	defer w.RW.Close()
	if err := <-rejected; err == nil || !strings.Contains(err.Error(), "token") {
		t.Errorf("Secure with a wrong token = %v, want a token rejection", err)
	}
}
