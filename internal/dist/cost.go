package dist

import (
	"sync"

	"icfp/internal/exp"
	"icfp/internal/spec"
)

// Relative simulation weight per machine model: roughly how many units
// of work one simulated instruction costs on each micro-architecture,
// normalized to the in-order baseline. The numbers only need to rank the
// models sensibly — the model calibrates the absolute scale online from
// observed wall times, and a key that has actually been measured uses
// its measurement directly.
var modelWeights = map[string]float64{
	spec.ModelInOrder:   1.0,
	spec.ModelRunahead:  1.7,
	spec.ModelMultipass: 2.3,
	spec.ModelSLTP:      1.9,
	spec.ModelICFP:      2.6,
	spec.ModelOOO:       3.0,
}

// scenarioCost stands in for a workload length when the workload is a
// Figure 1 micro-scenario: their traces are tens of instructions, so any
// small constant ranks them far below every SPEC sample.
const scenarioCost = 64

// staticCost is the spec-derived estimate of one job's simulation cost,
// in abstract units: workload length × model class weight. It is the
// seed the cost model starts from before any wall time has been
// observed.
func staticCost(sj spec.Job) float64 {
	insts := float64(sj.Workload.N)
	if sj.Workload.Scenario != "" {
		insts = scenarioCost
	}
	w, ok := modelWeights[sj.Machine.Model]
	if !ok {
		w = 2.0 // unknown model: assume mid-pack rather than free
	}
	return insts * w
}

// costModel estimates per-key simulation cost for dispatch-time batch
// sizing. Every key starts from its static spec-derived estimate; each
// observed wall time (a worker's cost report, or an elapsed time
// preserved in a -cache-file snapshot) replaces the estimate for that
// key exactly and refines a global static→wall-clock calibration ratio
// for the keys not yet measured. The model only shapes batches — it
// never decides what runs, so a wildly wrong estimate costs efficiency,
// not correctness.
type costModel struct {
	mu       sync.Mutex
	static   map[exp.Key]float64 // spec-derived units, filled at plan time
	observed map[exp.Key]float64 // wall ns, exact once measured
	ratio    float64             // EWMA of observed-ns / static-units
	measured bool                // at least one observation folded into ratio
	workers  map[string]*workerRate
}

// workerRate is one worker's private static→wall-clock calibration: the
// same EWMA the global ratio runs, but fed only by wall times this
// worker reported. The quotient global/worker is the worker's relative
// speed — a host twice as fast as the fleet average burns nanoseconds at
// half the fleet rate — which is what lets heterogeneous hosts get
// correctly sized batches instead of the fleet-average batch.
type workerRate struct {
	ratio    float64
	measured bool
	seen     map[exp.Key]bool // each key feeds this worker's EWMA once
}

func newCostModel() *costModel {
	return &costModel{
		static:   make(map[exp.Key]float64),
		observed: make(map[exp.Key]float64),
		ratio:    1,
		workers:  make(map[string]*workerRate),
	}
}

// admit registers a plan job's static estimate.
func (c *costModel) admit(sj spec.Job, k exp.Key) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.static[k]; !ok {
		c.static[k] = staticCost(sj)
	}
}

// observe folds one measured wall time into the model. A key's first
// measurement feeds the calibration ratio; repeats (the same key arrives
// both on its result frame and in the batch cost report) only refresh
// that key's own estimate, so no key is double-weighted in the EWMA.
func (c *costModel) observe(k exp.Key, ns float64) {
	if ns <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	_, seen := c.observed[k]
	c.observed[k] = ns
	if s := c.static[k]; s > 0 && !seen {
		r := ns / s
		if !c.measured {
			c.ratio, c.measured = r, true
		} else {
			c.ratio = 0.75*c.ratio + 0.25*r
		}
	}
}

// observeWorker attributes one measured wall time to the worker that
// produced it, feeding that worker's private calibration EWMA. Like the
// global ratio, each key is folded at most once per worker (result frame
// and batch cost report both carry it). Unattributed observations —
// cache-snapshot seeds — never reach here, so a worker's ratio reflects
// only its own hardware.
func (c *costModel) observeWorker(worker string, k exp.Key, ns float64) {
	if ns <= 0 || worker == "" {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.static[k]
	if s <= 0 {
		return
	}
	w := c.workers[worker]
	if w == nil {
		w = &workerRate{ratio: 1, seen: make(map[exp.Key]bool)}
		c.workers[worker] = w
	}
	if w.seen[k] {
		return
	}
	w.seen[k] = true
	r := ns / s
	if !w.measured {
		w.ratio, w.measured = r, true
	} else {
		w.ratio = 0.75*w.ratio + 0.25*r
	}
}

// speedLocked returns a worker's relative throughput: global ns-per-unit
// over the worker's own ns-per-unit, so 2 means "twice the fleet-average
// speed". 1 until both sides have been measured; clamped to [1/4, 4] so
// one noisy first measurement cannot starve or flood a host.
func (c *costModel) speedLocked(worker string) float64 {
	w := c.workers[worker]
	if w == nil || !w.measured || !c.measured || w.ratio <= 0 {
		return 1
	}
	s := c.ratio / w.ratio
	return min(max(s, 0.25), 4)
}

// speed is the self-locking variant, the dist_worker_speed gauge.
func (c *costModel) speed(worker string) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.speedLocked(worker)
}

// calibration returns the current static-units → wall-ns EWMA ratio,
// the dist_cost_model_ratio gauge (1 until the first observation).
func (c *costModel) calibration() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ratio
}

// estimate returns the key's current cost estimate in wall nanoseconds
// (calibrated units before the first observation — consistent across
// keys, which is all batch sizing needs).
func (c *costModel) estimate(k exp.Key) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.estimateLocked(k)
}

func (c *costModel) estimateLocked(k exp.Key) float64 {
	if ns, ok := c.observed[k]; ok {
		return ns
	}
	return c.static[k] * c.ratio
}

// seedFromCache folds the elapsed times a preloaded cache snapshot
// recorded for this plan's keys into the model, so a rerun sizes its
// batches from real measurements immediately. Snapshot entries outside
// the plan are ignored: their static costs are unknown here, so they
// could not calibrate the ratio anyway.
func (c *costModel) seedFromCache(cache *exp.Cache, plan []spec.Job) {
	for _, sj := range plan {
		k := exp.KeyOf(sj)
		c.admit(sj, k)
		if d, ok := cache.Elapsed(k); ok && d > 0 {
			c.observe(k, float64(d))
		}
	}
}

// sizeBatch decides how many jobs from the head of the ready queue the
// next batch takes, under one model lock for the whole decision. The
// cost budget is an even share of the queue's remaining estimated cost
// per active worker, divided again by stealSlack so each worker's share
// is split into several steals — the slack is what lets a fast worker
// pick up a slow one's leftovers — and scaled by the receiving worker's
// measured relative speed, so a host twice as fast as the fleet average
// takes roughly twice the batch instead of idling between steals. The
// floor keeps the receiving pool saturated by its own batch; maxJobs
// keeps even a queue of near-free keys stealable in bounded pieces. At
// least one job is always taken.
func (c *costModel) sizeBatch(ready []*pjob, worker string, activeWorkers, floor, maxJobs int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var queueCost float64
	for _, pj := range ready {
		queueCost += c.estimateLocked(pj.key)
	}
	if activeWorkers < 1 {
		activeWorkers = 1
	}
	budget := queueCost * c.speedLocked(worker) / (float64(activeWorkers) * stealSlack)
	var cost float64
	take := 0
	for take < len(ready) && take < maxJobs {
		e := c.estimateLocked(ready[take].key)
		if take >= floor && cost+e > budget {
			break
		}
		cost += e
		take++
	}
	return max(take, 1)
}

// stealSlack is how many batches each active worker's fair share of the
// remaining work is split into. Higher values mean finer steals (better
// balance, more protocol round trips).
const stealSlack = 4
