package dist

import (
	"testing"

	"icfp/internal/exp"
	"icfp/internal/spec"
)

// costJob builds a SPEC job whose static cost is controlled by its
// instruction count and model.
func costJob(model string, n int) (spec.Job, exp.Key) {
	sj := spec.Job{Machine: spec.Machine{Model: model}, Workload: spec.SPECWorkload("mcf", n)}
	return sj, exp.KeyOf(sj)
}

func TestStaticCostRanksModelsAndLengths(t *testing.T) {
	cheapJob, _ := costJob(spec.ModelInOrder, 10_000)
	halfJob, _ := costJob(spec.ModelICFP, 10_000)
	fullJob, _ := costJob(spec.ModelICFP, 20_000)
	if !(staticCost(cheapJob) < staticCost(halfJob) && staticCost(halfJob) < staticCost(fullJob)) {
		t.Errorf("static cost ordering broken: inorder/10k=%v icfp/10k=%v icfp/20k=%v",
			staticCost(cheapJob), staticCost(halfJob), staticCost(fullJob))
	}
	// The fig6-style half-sample relation the ISSUE motivates: same
	// machine at half the workload length estimates about half the cost.
	if r := staticCost(fullJob) / staticCost(halfJob); r < 1.9 || r > 2.1 {
		t.Errorf("half-sample cost ratio = %v, want ~2", r)
	}
	scenario := spec.Job{Machine: spec.Machine{Model: spec.ModelICFP}, Workload: spec.ScenarioWorkload("a-lone-l2")}
	if staticCost(scenario) >= staticCost(cheapJob) {
		t.Errorf("scenario cost %v should rank far below any SPEC sample (%v)", staticCost(scenario), staticCost(cheapJob))
	}
}

func TestCostModelObservationsOverrideAndCalibrate(t *testing.T) {
	m := newCostModel()
	sj1, k1 := costJob(spec.ModelICFP, 10_000)
	sj2, k2 := costJob(spec.ModelICFP, 20_000)
	m.admit(sj1, k1)
	m.admit(sj2, k2)

	// Before any observation, estimates are the static seeds.
	if e1, e2 := m.estimate(k1), m.estimate(k2); e1 >= e2 {
		t.Fatalf("pre-observation estimates not ordered: %v >= %v", e1, e2)
	}
	// An observed key reports its measurement exactly.
	m.observe(k1, 5e6)
	if got := m.estimate(k1); got != 5e6 {
		t.Errorf("observed key estimate = %v, want the measurement 5e6", got)
	}
	// The observation calibrates unmeasured keys too: k2's static cost
	// is 2× k1's, so its estimate lands near 2× k1's measured time.
	if got := m.estimate(k2); got < 0.5*1e7 || got > 2*1e7 {
		t.Errorf("calibrated estimate for unmeasured key = %v, want ≈1e7", got)
	}
	// Re-observing a key (it arrives both on its result frame and in the
	// batch cost report) refreshes its own estimate but must not fold
	// into the calibration ratio again.
	before := m.ratio
	m.observe(k1, 6e6)
	if got := m.estimate(k1); got != 6e6 {
		t.Errorf("re-observed key estimate = %v, want the fresh measurement 6e6", got)
	}
	if m.ratio != before {
		t.Errorf("re-observation moved the calibration ratio %v -> %v; repeats must not double-weight", before, m.ratio)
	}
}

// TestCostAwareBatchSizing pins the dispatch-time sizing behaviour the
// tentpole names: cheap keys ride in larger batches, a known-expensive
// straggler ships alone (once the pool-width floor is met).
func TestCostAwareBatchSizing(t *testing.T) {
	d := &dispatcher{model: newCostModel(), opts: &Options{Parallel: 1}}
	d.active = 1

	// One straggler at the head, then a tail of cheap keys.
	straggler, sk := costJob(spec.ModelOOO, 1_000_000)
	d.model.admit(straggler, sk)
	d.model.observe(sk, 1e9)
	d.ready = append(d.ready, &pjob{sj: straggler, key: sk})
	for i := 0; i < 12; i++ {
		sj, k := costJob(spec.ModelInOrder, 1_000+i) // distinct cheap keys
		d.model.admit(sj, k)
		d.model.observe(k, 1e6)
		d.ready = append(d.ready, &pjob{sj: sj, key: k})
	}

	first := d.takeBatchLocked("w")
	if len(first) != 1 || first[0].key != sk {
		t.Fatalf("first batch = %d jobs, want the straggler alone", len(first))
	}
	second := d.takeBatchLocked("w")
	if len(second) < 2 {
		t.Errorf("cheap keys batched %d at a time, want them grouped", len(second))
	}

	// A fixed BatchSize bypasses the model entirely.
	d.opts.BatchSize = 5
	fixed := d.takeBatchLocked("w")
	if len(fixed) != 5 {
		t.Errorf("fixed BatchSize batch = %d jobs, want exactly 5", len(fixed))
	}
}

// TestBatchFloorKeepsPoolsBusy pins the sizing floor: with a wide worker
// pool, a batch never starves it below one job per pool slot while jobs
// remain.
func TestBatchFloorKeepsPoolsBusy(t *testing.T) {
	d := &dispatcher{model: newCostModel(), opts: &Options{Parallel: 8}}
	d.active = 4 // several workers competing shrinks the cost budget
	for i := 0; i < 32; i++ {
		sj, k := costJob(spec.ModelInOrder, 1_000+i)
		d.model.admit(sj, k)
		d.ready = append(d.ready, &pjob{sj: sj, key: k})
	}
	if got := len(d.takeBatchLocked("w")); got < 8 {
		t.Errorf("batch of %d jobs starves an 8-wide pool", got)
	}
}

// TestSeedFromCacheUsesSnapshotTimings pins the -cache-file interplay:
// elapsed times preserved in a snapshot pre-seed the model, so a rerun
// opens with measured costs instead of static guesses.
func TestSeedFromCacheUsesSnapshotTimings(t *testing.T) {
	sj, k := costJob(spec.ModelICFP, 10_000)
	cache := exp.NewCache()
	cache.AddResults([]exp.CachedResult{{Machine: k.Machine, Workload: k.Workload, ElapsedNS: 7e6}})

	m := newCostModel()
	m.seedFromCache(cache, []spec.Job{sj})
	if got := m.estimate(k); got != 7e6 {
		t.Errorf("estimate after snapshot seeding = %v, want the recorded 7e6", got)
	}
}

// TestPerWorkerSpeedSizesBatches pins the heterogeneous-fleet satellite:
// once a worker's own wall times diverge from the fleet-average
// calibration, its batches scale with its measured relative speed — a
// 2×-speed synthetic worker takes visibly more of the queue per steal
// than a ½×-speed one, instead of both receiving the fleet-average
// batch.
func TestPerWorkerSpeedSizesBatches(t *testing.T) {
	m := newCostModel()

	// Calibrate the fleet average at 100 ns per static unit, on keys
	// disjoint from the ready queue (cost reports from finished batches).
	for i := 0; i < 8; i++ {
		sj, k := costJob(spec.ModelInOrder, 10_000+i)
		m.admit(sj, k)
		m.observe(k, float64(10_000+i)*100)
	}
	// The fast host finishes identical work in half the fleet-average
	// time; the slow host takes double. Several keys each, so the EWMA
	// converges near the true per-worker rate.
	for i := 0; i < 8; i++ {
		sj, k := costJob(spec.ModelRunahead, 20_000+i)
		m.admit(sj, k)
		m.observe(k, float64(staticCost(sj))*100)
		m.observeWorker("fast", k, float64(staticCost(sj))*50)
	}
	for i := 0; i < 8; i++ {
		sj, k := costJob(spec.ModelSLTP, 30_000+i)
		m.admit(sj, k)
		m.observe(k, float64(staticCost(sj))*100)
		m.observeWorker("slow", k, float64(staticCost(sj))*200)
	}

	if s := m.speed("fast"); s < 1.5 || s > 2.5 {
		t.Errorf("fast worker speed = %v, want ≈2", s)
	}
	if s := m.speed("slow"); s < 0.35 || s > 0.65 {
		t.Errorf("slow worker speed = %v, want ≈0.5", s)
	}
	if s := m.speed("unmeasured"); s != 1 {
		t.Errorf("unmeasured worker speed = %v, want exactly 1", s)
	}

	// One shared ready queue of unmeasured keys: the fast worker's steal
	// must be decisively larger than the slow worker's.
	ready := make([]*pjob, 0, 40)
	for i := 0; i < 40; i++ {
		sj, k := costJob(spec.ModelICFP, 40_000+i)
		m.admit(sj, k)
		ready = append(ready, &pjob{sj: sj, key: k})
	}
	const workers, floor = 2, 1
	fast := m.sizeBatch(ready, "fast", workers, floor, maxBatchJobs)
	slow := m.sizeBatch(ready, "slow", workers, floor, maxBatchJobs)
	if fast < 3*slow {
		t.Errorf("2×-speed worker takes %d jobs vs the ½×-speed worker's %d; want ≥3× (speed must shape the budget)", fast, slow)
	}
	if unk := m.sizeBatch(ready, "unmeasured", workers, floor, maxBatchJobs); unk <= slow || unk >= fast {
		t.Errorf("unmeasured worker takes %d jobs, want between slow (%d) and fast (%d)", unk, slow, fast)
	}
}

// TestWorkerSpeedClamped pins the guard rail: one wild measurement
// cannot push a worker's speed outside [1/4, 4].
func TestWorkerSpeedClamped(t *testing.T) {
	m := newCostModel()
	sj, k := costJob(spec.ModelInOrder, 10_000)
	m.admit(sj, k)
	m.observe(k, 1e6)
	sj2, k2 := costJob(spec.ModelInOrder, 10_001)
	m.admit(sj2, k2)
	m.observeWorker("glacial", k2, 1e12) // absurdly slow single sample
	if s := m.speed("glacial"); s != 0.25 {
		t.Errorf("glacial worker speed = %v, want clamped to 0.25", s)
	}
	sj3, k3 := costJob(spec.ModelInOrder, 10_002)
	m.admit(sj3, k3)
	m.observeWorker("warp", k3, 1) // absurdly fast single sample
	if s := m.speed("warp"); s != 4 {
		t.Errorf("warp worker speed = %v, want clamped to 4", s)
	}
}
