package dist

import (
	"errors"
	"fmt"
	"io"

	"icfp/internal/exp"
)

// maxWorkerParallel caps the coordinator-requested pool size: the spec
// arrives over the network on TCP workers, and no legitimate coordinator
// asks for a wider pool than any real machine has.
const maxWorkerParallel = 4096

// ServeOption configures a worker.
type ServeOption func(*serveOptions)

type serveOptions struct {
	onRun func(exp.Key)
}

// OnSimulate installs a hook invoked once per actual simulation this
// worker performs (never for its cache hits) — metrics and tests.
func OnSimulate(f func(exp.Key)) ServeOption {
	return func(o *serveOptions) { o.onRun = f }
}

// Serve runs the worker side of the protocol on rw until the coordinator
// closes the connection (the clean shutdown, returning nil) or an error
// occurs. Batches are self-describing — each job carries its full
// machine and workload spec — so the worker needs no prior knowledge of
// the coordinator's job set; it validates each spec strictly and reports
// invalid ones as fatal errors. The worker keeps its own cache and arena
// for the lifetime of the connection, so a job re-dispatched after a
// coordinator-side retry is answered from cache rather than
// re-simulated, and completed results are streamed back the moment each
// simulation finishes.
func Serve(rw io.ReadWriter, opts ...ServeOption) error {
	var so serveOptions
	for _, opt := range opts {
		opt(&so)
	}
	m, err := ReadMessage(rw)
	if err == io.EOF || errors.Is(err, io.ErrClosedPipe) {
		return nil // coordinator had nothing to dispatch (warm cache) and closed us
	}
	if err != nil {
		return fmt.Errorf("dist: worker handshake: %w", err)
	}
	if m.Type != TypeInit {
		return sendError(rw, fmt.Sprintf("handshake: got %q frame, want %q", m.Type, TypeInit))
	}
	if m.Proto != ProtoVersion {
		return sendError(rw, fmt.Sprintf("protocol version mismatch: coordinator speaks v%d, this worker speaks v%d", m.Proto, ProtoVersion))
	}
	if m.Parallel > maxWorkerParallel {
		return sendError(rw, fmt.Sprintf("requested parallelism %d exceeds the worker cap %d", m.Parallel, maxWorkerParallel))
	}
	parallel := m.Parallel
	if err := WriteMessage(rw, &Message{Type: TypeReady}); err != nil {
		return err
	}

	cache := exp.NewCache()
	arena := exp.NewArena()
	for {
		m, err := ReadMessage(rw)
		if err == io.EOF || errors.Is(err, io.ErrClosedPipe) {
			return nil // coordinator closed the connection: run complete
		}
		if err != nil {
			return err
		}
		switch m.Type {
		case TypeBatch:
			if err := serveBatch(rw, m, cache, arena, parallel, &so); err != nil {
				return err
			}
		case TypeError:
			return fmt.Errorf("dist: coordinator error: %s", m.Err)
		default:
			return sendError(rw, fmt.Sprintf("unexpected %q frame between batches", m.Type))
		}
	}
}

// serveBatch simulates one self-describing batch and streams its
// results. Results are sent from the pool's completion hook, so the
// coordinator can merge (and checkpoint) them while the rest of the
// batch is still running.
func serveBatch(rw io.ReadWriter, m *Message, cache *exp.Cache, arena *exp.Arena, parallel int, so *serveOptions) error {
	batch := make([]exp.Job, 0, len(m.Jobs))
	seen := make(map[exp.Key]bool, len(m.Jobs))
	for _, sj := range m.Jobs {
		if err := sj.Validate(); err != nil {
			return sendError(rw, fmt.Sprintf("batch %d: invalid job spec: %v", m.BatchID, err))
		}
		k := exp.KeyOf(sj)
		if seen[k] {
			continue // the plan never repeats a key; tolerate duplicates anyway
		}
		seen[k] = true
		// The key is the unique in-batch job name; results are keyed,
		// not named, so the name never leaves this process.
		batch = append(batch, exp.Job{Name: k.Machine + "|" + k.Workload, Machine: sj.Machine, Workload: sj.Workload})
	}

	var sendErr error
	sent := make(map[exp.Key]bool, len(batch))
	send := func(k exp.Key) {
		if sendErr != nil {
			return
		}
		res, ok := cache.Lookup(k)
		if !ok {
			return // cannot happen: the hook fires after the result is published
		}
		sent[k] = true
		sendErr = WriteMessage(rw, &Message{Type: TypeResult, Result: &exp.CachedResult{
			Machine: k.Machine, Workload: k.Workload, R: res,
		}})
	}
	hook := send
	if so.onRun != nil {
		hook = func(k exp.Key) {
			so.onRun(k)
			send(k)
		}
	}
	_, err := exp.Run(batch,
		exp.WithCache(cache), exp.WithArena(arena), exp.Parallelism(parallel),
		exp.OnRun(hook))
	if err != nil {
		return sendError(rw, fmt.Sprintf("batch %d: %v", m.BatchID, err))
	}
	if sendErr != nil {
		return sendErr
	}
	// Jobs answered from this worker's cache (re-dispatched after a
	// coordinator retry) never reach the completion hook; send them now.
	for _, j := range batch {
		if k := j.Key(); !sent[k] {
			send(k)
		}
	}
	if sendErr != nil {
		return sendErr
	}
	return WriteMessage(rw, &Message{Type: TypeBatchDone, BatchID: m.BatchID})
}

// sendError reports a fatal worker-side condition to the coordinator and
// returns it as this side's error too.
func sendError(rw io.ReadWriter, msg string) error {
	WriteMessage(rw, &Message{Type: TypeError, Err: msg}) // best effort: the transport may already be down
	return errors.New("dist: worker: " + msg)
}
