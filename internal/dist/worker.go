package dist

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"icfp/internal/exp"
	"icfp/internal/obs"
)

// maxWorkerParallel caps the coordinator-requested pool size: the spec
// arrives over the network on TCP workers, and no legitimate coordinator
// asks for a wider pool than any real machine has.
const maxWorkerParallel = 4096

// ServeOption configures a worker.
type ServeOption func(*serveOptions)

type serveOptions struct {
	onRun func(exp.Key)
	leave <-chan struct{}
	reg   *obs.Registry
}

// OnSimulate installs a hook invoked once per actual simulation this
// worker performs (never for its cache hits) — metrics and tests.
func OnSimulate(f func(exp.Key)) ServeOption {
	return func(o *serveOptions) { o.onRun = f }
}

// WithMetrics attaches a metrics registry to the serving worker: the
// connection's simulation cache is instrumented (exp_cache_* plus the
// per-model exp_sim_* totals — the worker-side sim rate), and
// dist_heartbeat_age_seconds reports how long ago the coordinator last
// proved liveness (any frame counts; heartbeats keep it fresh while
// idle). Re-registering across redials replaces the gauge cleanly.
func WithMetrics(reg *obs.Registry) ServeOption {
	return func(o *serveOptions) { o.reg = reg }
}

// ErrCoordinatorLost reports that a worker abandoned its connection
// because the coordinator announced a heartbeat interval and then went
// silent for several intervals — the fast-path detection of a vanished
// coordinator (host gone, network partition) that TCP keepalive would
// take minutes to notice. Redialing is the caller's policy (expd join
// exits; a supervisor restarts it).
var ErrCoordinatorLost = errors.New("dist: coordinator heartbeat lost")

// heartbeatGrace is how many announced intervals of total silence a
// worker tolerates before declaring the coordinator lost.
const heartbeatGrace = 3

// LeaveOn makes the worker leave the fleet when ch is closed: a goodbye
// frame is sent (interleaving safely with any in-flight result stream),
// the batch's remaining simulations are abandoned (each pool worker at
// most finishes the one it is mid-flight on), further outbound frames
// are suppressed, and Serve returns once the coordinator — which
// requeues the batch's unfinished remainder and keeps everything already
// streamed — closes the connection. Close the channel; the leave signal
// has two independent waiters (the goodbye sender and the simulation
// pool's cancel), and only a close reaches both. This is the drain path
// behind `expd join`'s SIGINT/SIGTERM handling.
func LeaveOn(ch <-chan struct{}) ServeOption {
	return func(o *serveOptions) { o.leave = ch }
}

// Register announces a dialing worker to an accepting coordinator
// (cmd/expd join → -accept-workers): one register frame carrying the
// protocol version and the worker's display name, sent before the
// normal init/ready handshake that the coordinator initiates. The
// matching accept side is AcceptWorker.
func Register(rw io.Writer, name string) error {
	return WriteMessage(rw, &Message{Type: TypeRegister, Proto: ProtoVersion, Name: name})
}

// AcceptWorker completes the coordinator side of an elastic join: it
// reads the dialer's register frame, rejects protocol-version skew with
// an error frame naming both versions, and returns the worker handle to
// feed into Options.Join. Transport security (Security.Secure) must
// already have run: by the time a register frame is parsed the peer has
// proven token possession. fallbackName names the worker when the
// register frame carries no name (typically the remote address).
//
// The register read is bounded by a deadline on transports that support
// one, so a connected-but-silent peer (port scanner, health check)
// cannot pin an accept goroutine and its connection forever.
func AcceptWorker(rw io.ReadWriteCloser, fallbackName string) (Worker, error) {
	if rd, ok := rw.(readDeadliner); ok {
		rd.SetReadDeadline(time.Now().Add(authTimeout))
		defer rd.SetReadDeadline(time.Time{})
	}
	m, err := ReadMessage(rw)
	if err != nil {
		rw.Close()
		return Worker{}, fmt.Errorf("dist: reading register frame: %w", err)
	}
	if m.Type != TypeRegister {
		WriteMessage(rw, &Message{Type: TypeError, Err: fmt.Sprintf("expected a %q frame, got %q", TypeRegister, m.Type)})
		rw.Close()
		return Worker{}, fmt.Errorf("dist: expected a %q frame, got %q", TypeRegister, m.Type)
	}
	if m.Proto != ProtoVersion {
		err := fmt.Sprintf("protocol version mismatch: joining worker speaks v%d, this coordinator speaks v%d", m.Proto, ProtoVersion)
		WriteMessage(rw, &Message{Type: TypeError, Err: err})
		rw.Close()
		return Worker{}, errors.New("dist: " + err)
	}
	name := m.Name
	if name == "" {
		name = fallbackName
	}
	return Worker{Name: name, RW: rw}, nil
}

// workerConn serializes a worker's outbound frames: results stream from
// the simulation pool's completion hook while a leave signal may inject
// a goodbye from another goroutine, and a frame must never interleave
// with another mid-write. After goodbye, every other outbound frame is
// suppressed — the coordinator has already written this worker off.
type workerConn struct {
	rw   io.ReadWriter
	mu   sync.Mutex
	left bool
}

func (c *workerConn) send(m *Message) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.left {
		return nil
	}
	return WriteMessage(c.rw, m)
}

func (c *workerConn) goodbye() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.left {
		return nil
	}
	c.left = true
	return WriteMessage(c.rw, &Message{Type: TypeGoodbye})
}

// Serve runs the worker side of the protocol on rw until the coordinator
// closes the connection (the clean shutdown, returning nil) or an error
// occurs. Batches are self-describing — each job carries its full
// machine and workload spec — so the worker needs no prior knowledge of
// the coordinator's job set; it validates each spec strictly and reports
// invalid ones as fatal errors. The worker keeps its own cache and arena
// for the lifetime of the connection, so a job re-dispatched after a
// coordinator-side retry is answered from cache rather than
// re-simulated; completed results are streamed back the moment each
// simulation finishes, each carrying its wall time, and every batch ends
// with a cost report of the freshly simulated keys — the feedstock of
// the coordinator's dispatch-time batch sizing.
func Serve(rw io.ReadWriter, opts ...ServeOption) error {
	var so serveOptions
	for _, opt := range opts {
		opt(&so)
	}
	conn := &workerConn{rw: rw}
	if so.leave != nil {
		leaveDone := make(chan struct{})
		defer close(leaveDone)
		go func() {
			select {
			case <-so.leave:
				conn.goodbye() // best effort: the coordinator may already be gone
			case <-leaveDone:
			}
		}()
	}
	m, err := ReadMessage(rw)
	if err == io.EOF || errors.Is(err, io.ErrClosedPipe) {
		return nil // coordinator had nothing to dispatch (warm cache) and closed us
	}
	if err != nil {
		return fmt.Errorf("dist: worker handshake: %w", err)
	}
	if m.Type != TypeInit {
		return sendError(conn, fmt.Sprintf("handshake: got %q frame, want %q", m.Type, TypeInit))
	}
	if m.Proto != ProtoVersion {
		return sendError(conn, fmt.Sprintf("protocol version mismatch: coordinator speaks v%d, this worker speaks v%d", m.Proto, ProtoVersion))
	}
	if m.Parallel > maxWorkerParallel {
		return sendError(conn, fmt.Sprintf("requested parallelism %d exceeds the worker cap %d", m.Parallel, maxWorkerParallel))
	}
	parallel := m.Parallel
	hb := time.Duration(m.HeartbeatNS)
	if err := conn.send(&Message{Type: TypeReady}); err != nil {
		return err
	}

	// Any frame proves coordinator liveness; the handshake seeds the
	// clock so the age gauge never reads from the epoch.
	var lastBeat atomic.Int64
	lastBeat.Store(time.Now().UnixNano())
	so.reg.GaugeFunc("dist_heartbeat_age_seconds", "seconds since the coordinator last proved liveness (any frame)",
		func() float64 { return time.Since(time.Unix(0, lastBeat.Load())).Seconds() })

	cache := exp.NewCache()
	arena := exp.NewArena()
	cache.Instrument(so.reg)
	deadline, canDeadline := rw.(readDeadliner)
	for {
		// While heartbeats are announced, an idle wait is bounded: total
		// silence past the grace window means the coordinator is gone.
		if hb > 0 && canDeadline {
			deadline.SetReadDeadline(time.Now().Add(heartbeatGrace * hb))
		}
		m, err := ReadMessage(rw)
		if hb > 0 && canDeadline {
			deadline.SetReadDeadline(time.Time{})
		}
		if err == io.EOF || errors.Is(err, io.ErrClosedPipe) {
			return nil // coordinator closed the connection: run complete, or this worker's goodbye was honored
		}
		if err != nil {
			if conn.hasLeft() {
				// A post-goodbye transport teardown is the expected end
				// of a drained connection, not a failure.
				return nil
			}
			if hb > 0 && errors.Is(err, os.ErrDeadlineExceeded) {
				return fmt.Errorf("%w: no frame for %v (announced interval %v)", ErrCoordinatorLost, heartbeatGrace*hb, hb)
			}
			return err
		}
		lastBeat.Store(time.Now().UnixNano())
		switch m.Type {
		case TypeHeartbeat:
			// Liveness only; the timestamp above is the whole point.
		case TypeBatch:
			if err := serveBatch(conn, m, cache, arena, parallel, &so); err != nil {
				return err
			}
		case TypeError:
			return fmt.Errorf("dist: coordinator error: %s", m.Err)
		default:
			return sendError(conn, fmt.Sprintf("unexpected %q frame between batches", m.Type))
		}
	}
}

func (c *workerConn) hasLeft() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.left
}

// serveBatch simulates one self-describing batch and streams its
// results. Results are sent from the pool's completion hook, so the
// coordinator can merge (and checkpoint) them while the rest of the
// batch is still running.
func serveBatch(conn *workerConn, m *Message, cache *exp.Cache, arena *exp.Arena, parallel int, so *serveOptions) error {
	batch := make([]exp.Job, 0, len(m.Jobs))
	seen := make(map[exp.Key]bool, len(m.Jobs))
	for _, sj := range m.Jobs {
		if err := sj.Validate(); err != nil {
			return sendError(conn, fmt.Sprintf("batch %d: invalid job spec: %v", m.BatchID, err))
		}
		k := exp.KeyOf(sj)
		if seen[k] {
			continue // the plan never repeats a key; tolerate duplicates anyway
		}
		seen[k] = true
		// The key is the unique in-batch job name; results are keyed,
		// not named, so the name never leaves this process.
		batch = append(batch, exp.Job{Name: k.Machine + "|" + k.Workload, Machine: sj.Machine, Workload: sj.Workload})
	}

	var sendErr error
	var costs []KeyCost
	sent := make(map[exp.Key]bool, len(batch))
	send := func(k exp.Key) {
		if sendErr != nil {
			return
		}
		res, ok := cache.Lookup(k)
		if !ok {
			return // cannot happen: the hook fires after the result is published
		}
		sent[k] = true
		elapsed, _ := cache.Elapsed(k)
		sendErr = conn.send(&Message{Type: TypeResult, Result: &exp.CachedResult{
			Machine: k.Machine, Workload: k.Workload, R: res, ElapsedNS: int64(elapsed),
		}})
	}
	hook := func(k exp.Key) {
		if so.onRun != nil {
			so.onRun(k)
		}
		if elapsed, ok := cache.Elapsed(k); ok && elapsed > 0 {
			costs = append(costs, KeyCost{Machine: k.Machine, Workload: k.Workload, ElapsedNS: int64(elapsed)})
		}
		send(k)
	}
	runOpts := []exp.Option{
		exp.WithCache(cache), exp.WithArena(arena), exp.Parallelism(parallel),
		exp.OnRun(hook),
	}
	if so.leave != nil {
		runOpts = append(runOpts, exp.Cancel(so.leave))
	}
	_, err := exp.Run(batch, runOpts...)
	if errors.Is(err, exp.ErrCanceled) {
		// Leaving the fleet: the goodbye is already on the wire and the
		// coordinator has requeued whatever this batch still owed.
		return nil
	}
	if err != nil {
		return sendError(conn, fmt.Sprintf("batch %d: %v", m.BatchID, err))
	}
	if sendErr != nil {
		return sendErr
	}
	// Jobs answered from this worker's cache (re-dispatched after a
	// coordinator retry) never reach the completion hook; send them now.
	for _, j := range batch {
		if k := j.Key(); !sent[k] {
			send(k)
		}
	}
	if sendErr != nil {
		return sendErr
	}
	if len(costs) > 0 {
		if err := conn.send(&Message{Type: TypeCostReport, Costs: costs}); err != nil {
			return err
		}
	}
	return conn.send(&Message{Type: TypeBatchDone, BatchID: m.BatchID})
}

// sendError reports a fatal worker-side condition to the coordinator and
// returns it as this side's error too.
func sendError(conn *workerConn, msg string) error {
	conn.send(&Message{Type: TypeError, Err: msg}) // best effort: the transport may already be down
	return errors.New("dist: worker: " + msg)
}
