package dist

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"icfp/internal/exp"
)

// Resolver turns the coordinator's opaque job spec into this worker's
// job table, keyed by memoization key, plus the parallelism of the
// worker's internal pool (values below 1 mean GOMAXPROCS). Coordinator
// and worker must resolve the same spec to the same job set — for the
// CLIs both sides build it from the shared experiment registry — and the
// handshake cross-checks the table size so a skewed worker fails loudly
// instead of simulating the wrong thing.
type Resolver func(spec json.RawMessage) (jobs map[exp.Key]exp.Job, parallel int, err error)

// Serve runs the worker side of the protocol on rw until the coordinator
// closes the connection (the clean shutdown, returning nil) or an error
// occurs. The worker keeps its own cache and arena for the lifetime of
// the connection, so a key re-dispatched after a coordinator-side retry
// is answered from cache rather than re-simulated, and completed results
// are streamed back the moment each simulation finishes.
func Serve(rw io.ReadWriter, resolve Resolver) error {
	m, err := ReadMessage(rw)
	if err == io.EOF || errors.Is(err, io.ErrClosedPipe) {
		return nil // coordinator had nothing to dispatch (warm cache) and closed us
	}
	if err != nil {
		return fmt.Errorf("dist: worker handshake: %w", err)
	}
	if m.Type != TypeInit {
		return sendError(rw, fmt.Sprintf("handshake: got %q frame, want %q", m.Type, TypeInit))
	}
	if m.Proto != ProtoVersion {
		return sendError(rw, fmt.Sprintf("protocol version mismatch: coordinator %d, worker %d", m.Proto, ProtoVersion))
	}
	jobs, parallel, err := resolve(m.Spec)
	if err != nil {
		return sendError(rw, fmt.Sprintf("resolving job spec: %v", err))
	}
	if err := WriteMessage(rw, &Message{Type: TypeReady, Jobs: len(jobs)}); err != nil {
		return err
	}

	cache := exp.NewCache()
	arena := exp.NewArena()
	for {
		m, err := ReadMessage(rw)
		if err == io.EOF || errors.Is(err, io.ErrClosedPipe) {
			return nil // coordinator closed the connection: run complete
		}
		if err != nil {
			return err
		}
		switch m.Type {
		case TypeBatch:
			if err := serveBatch(rw, m, jobs, cache, arena, parallel); err != nil {
				return err
			}
		case TypeError:
			return fmt.Errorf("dist: coordinator error: %s", m.Err)
		default:
			return sendError(rw, fmt.Sprintf("unexpected %q frame between batches", m.Type))
		}
	}
}

// serveBatch simulates one batch and streams its results. Results are sent
// from the pool's completion hook, so the coordinator can merge (and
// checkpoint) them while the rest of the batch is still running.
func serveBatch(rw io.ReadWriter, m *Message, jobs map[exp.Key]exp.Job, cache *exp.Cache, arena *exp.Arena, parallel int) error {
	batch := make([]exp.Job, 0, len(m.Keys))
	for _, k := range m.Keys {
		j, ok := jobs[k]
		if !ok {
			return sendError(rw, fmt.Sprintf("batch %d: unknown key %+v — coordinator and worker job sets diverge", m.BatchID, k))
		}
		// The plan never repeats a key, so the key itself is a unique
		// in-batch job name.
		j.Name = fmt.Sprintf("%s|%s|%s", k.Machine, k.Config, k.Workload)
		batch = append(batch, j)
	}

	var sendErr error
	sent := make(map[exp.Key]bool, len(batch))
	send := func(k exp.Key) {
		if sendErr != nil {
			return
		}
		res, ok := cache.Lookup(k)
		if !ok {
			return // cannot happen: the hook fires after the result is published
		}
		sent[k] = true
		sendErr = WriteMessage(rw, &Message{Type: TypeResult, Result: &exp.CachedResult{
			Machine: k.Machine, Config: k.Config, Workload: k.Workload, R: res,
		}})
	}
	_, err := exp.Run(batch,
		exp.WithCache(cache), exp.WithArena(arena), exp.Parallelism(parallel),
		exp.OnRun(send))
	if err != nil {
		return sendError(rw, fmt.Sprintf("batch %d: %v", m.BatchID, err))
	}
	if sendErr != nil {
		return sendErr
	}
	// Keys answered from this worker's cache (re-dispatched after a
	// coordinator retry) never reach the completion hook; send them now.
	for _, k := range m.Keys {
		if !sent[k] {
			send(k)
		}
	}
	if sendErr != nil {
		return sendErr
	}
	return WriteMessage(rw, &Message{Type: TypeBatchDone, BatchID: m.BatchID})
}

// sendError reports a fatal worker-side condition to the coordinator and
// returns it as this side's error too.
func sendError(rw io.ReadWriter, msg string) error {
	WriteMessage(rw, &Message{Type: TypeError, Err: msg}) // best effort: the transport may already be down
	return errors.New("dist: worker: " + msg)
}
