package dist

import (
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"sync"
	"time"
)

// Worker is one remote worker from the coordinator's point of view: a
// name for error context ("proc 2", "hostB:9700") and the protocol
// transport. The coordinator owns the transport and closes it when the
// run ends; stream-level workers (Serve) treat that close as the
// shutdown signal.
type Worker struct {
	Name string
	RW   io.ReadWriteCloser
}

// CloseAll closes every worker transport, the cleanup owed on any path
// that stops short of (or finishes) dispatch. Closes are idempotent, so
// overlapping cleanup paths are safe.
func CloseAll(workers []Worker) {
	for _, w := range workers {
		w.RW.Close()
	}
}

// Pipe returns a connected in-process transport pair, the test harness
// for coordinator/worker runs without processes: Serve one end, hand the
// other to the coordinator.
func Pipe() (coord, worker io.ReadWriteCloser) {
	return net.Pipe()
}

// DialTCP connects to a worker serving at addr (cmd/expd serve), under
// the given transport security (TLS when sec.CAFile is set, token
// preamble when sec.Token is set; the zero Security is plaintext), and
// names it after the address.
func DialTCP(addr string, sec Security) (Worker, error) {
	conn, err := sec.Dial(addr)
	if err != nil {
		return Worker{}, fmt.Errorf("dist: connecting to worker %s: %w", addr, err)
	}
	return Worker{Name: addr, RW: conn}, nil
}

// Stdio returns the worker-side transport of a subprocess worker: frames
// arrive on stdin and leave on stdout. A process serving on it must not
// write anything else to stdout (diagnostics belong on stderr).
func Stdio() io.ReadWriteCloser {
	return stdio{}
}

type stdio struct{}

func (stdio) Read(p []byte) (int, error)  { return os.Stdin.Read(p) }
func (stdio) Write(p []byte) (int, error) { return os.Stdout.Write(p) }
func (stdio) Close() error                { return nil }

// killGrace is how long a closing subprocess transport waits for the
// worker to exit on its own after stdin closes before killing it.
const killGrace = 5 * time.Second

// Command starts bin with args as a subprocess worker speaking the
// protocol on its stdin/stdout (the -worker-stdio mode of
// cmd/experiments) and returns the coordinator-side transport. The
// worker's stderr passes through to this process's stderr. Closing the
// transport closes the worker's stdin — its signal to exit — and reaps
// the process, killing it if it outlives the grace period.
func Command(name, bin string, args ...string) (Worker, error) {
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return Worker{}, fmt.Errorf("dist: worker %s: %w", name, err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return Worker{}, fmt.Errorf("dist: worker %s: %w", name, err)
	}
	if err := cmd.Start(); err != nil {
		return Worker{}, fmt.Errorf("dist: starting worker %s (%s): %w", name, bin, err)
	}
	return Worker{Name: name, RW: &proc{cmd: cmd, in: stdin, out: stdout}}, nil
}

// proc is the coordinator-side transport of a subprocess worker.
type proc struct {
	cmd  *exec.Cmd
	in   io.WriteCloser
	out  io.ReadCloser
	once sync.Once
	err  error
}

func (p *proc) Read(b []byte) (int, error)  { return p.out.Read(b) }
func (p *proc) Write(b []byte) (int, error) { return p.in.Write(b) }

// Close is idempotent: it closes the worker's stdin and waits for the
// process, escalating to a kill after the grace period. Wait also closes
// the stdout pipe, unblocking any reader.
func (p *proc) Close() error {
	p.once.Do(func() {
		p.in.Close()
		timer := time.AfterFunc(killGrace, func() { p.cmd.Process.Kill() })
		p.err = p.cmd.Wait()
		timer.Stop()
	})
	return p.err
}
