package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// The shared structured-log key vocabulary. Every dispatch diagnostic in
// the fleet uses these keys, so one grep (or one log-pipeline field)
// means the same thing on the coordinator, the workers, and the CLIs —
// the log table in docs/OPERATIONS.md is written against them.
const (
	// KeyWorker is a worker's display name ("proc 2", "hostB:9700").
	KeyWorker = "worker"
	// KeyBatch is a dispatch batch ID (they start at 1).
	KeyBatch = "batch"
	// KeyKey is a simulation's canonical machine|workload identity.
	KeyKey = "key"
	// KeyAttempt is a job's dispatch-attempt ordinal.
	KeyAttempt = "attempt"
	// KeyCause carries the error or reason behind an event.
	KeyCause = "cause"
	// KeyJobs counts jobs (queued, requeued, outstanding).
	KeyJobs = "jobs"
	// KeyWorkers counts fleet members.
	KeyWorkers = "workers"
	// KeyAddr is a network address (listeners, peers).
	KeyAddr = "addr"
	// KeyElastic marks a run whose fleet accepts mid-run joins.
	KeyElastic = "elastic"
)

// NewLogger returns the fleet's standard structured logger: slog text
// format at Info level to w (stderr in the CLIs — stdout carries only
// reports).
func NewLogger(w io.Writer) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: slog.LevelInfo}))
}

// Event formats a structured event as "msg key=value ..." — the bridge
// from the slog vocabulary to legacy printf-style log sinks (test
// t.Logf, the deprecated dist.Options.Logf). Values render with %v;
// strings containing spaces are quoted the way slog's text handler
// quotes them.
func Event(msg string, kv ...any) string {
	var b strings.Builder
	b.WriteString(msg)
	for i := 0; i+1 < len(kv); i += 2 {
		b.WriteByte(' ')
		fmt.Fprintf(&b, "%v=", kv[i])
		v := fmt.Sprintf("%v", kv[i+1])
		if strings.ContainsAny(v, " \t\"") {
			fmt.Fprintf(&b, "%q", v)
		} else {
			b.WriteString(v)
		}
	}
	return b.String()
}
