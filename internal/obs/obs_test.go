package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "jobs", "worker", "w0")
	c.Inc()
	c.Add(2)
	c.Add(-5) // negative deltas ignored: counters are monotonic
	if got := c.Value(); got != 3 {
		t.Errorf("counter = %d, want 3", got)
	}
	if again := r.Counter("jobs_total", "", "worker", "w0"); again != c {
		t.Error("get-or-create returned a different counter for the same series")
	}
	if other := r.Counter("jobs_total", "", "worker", "w1"); other == c {
		t.Error("distinct labels returned the same counter")
	}

	g := r.Gauge("depth", "queue depth")
	g.Set(4.5)
	g.Add(-1.5)
	if got := g.Value(); got != 3 {
		t.Errorf("gauge = %v, want 3", got)
	}

	h := r.Histogram("secs", "seconds", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("histogram count = %d, want 5", h.Count())
	}
	if h.Sum() != 56.05 {
		t.Errorf("histogram sum = %v, want 56.05", h.Sum())
	}

	r.GaugeFunc("age_seconds", "age", func() float64 { return 7 })
}

// TestNilSafety pins the "off by default" contract: every operation on a
// nil registry, and on the nil metrics it hands out, is a no-op.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("a", "")
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Error("nil counter accumulated")
	}
	g := r.Gauge("b", "")
	g.Set(1)
	g.Add(1)
	if g.Value() != 0 {
		t.Error("nil gauge accumulated")
	}
	h := r.Histogram("c", "", DefSecondsBuckets)
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil histogram accumulated")
	}
	r.GaugeFunc("d", "", func() float64 { return 1 })
	if err := r.WritePrometheus(io.Discard); err != nil {
		t.Errorf("nil WritePrometheus: %v", err)
	}
	if err := r.WriteJSON(io.Discard); err != nil {
		t.Errorf("nil WriteJSON: %v", err)
	}

	var l *SpanLog
	l.Add(Span{})
	if l.Spans() != nil {
		t.Error("nil span log returned spans")
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("dist_worker_batches_total", "batches dispatched per worker", "worker", "hostB:9700").Add(3)
	r.Counter("dist_worker_batches_total", "", "worker", "proc 0").Add(1)
	r.Gauge("dist_queue_depth", "jobs awaiting dispatch").Set(12)
	r.GaugeFunc("dist_heartbeat_age_seconds", "seconds since the last coordinator heartbeat", func() float64 { return 1.5 })
	h := r.Histogram("exp_sim_seconds", "simulation wall time", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP dist_worker_batches_total batches dispatched per worker",
		"# TYPE dist_worker_batches_total counter",
		`dist_worker_batches_total{worker="hostB:9700"} 3`,
		`dist_worker_batches_total{worker="proc 0"} 1`,
		"# TYPE dist_queue_depth gauge",
		"dist_queue_depth 12",
		"dist_heartbeat_age_seconds 1.5",
		"# TYPE exp_sim_seconds histogram",
		`exp_sim_seconds_bucket{le="1"} 1`,
		`exp_sim_seconds_bucket{le="10"} 2`,
		`exp_sim_seconds_bucket{le="+Inf"} 3`,
		"exp_sim_seconds_sum 55.5",
		"exp_sim_seconds_count 3",
	} {
		if !strings.Contains(out, want+"\n") && !strings.HasSuffix(out, want) {
			t.Errorf("Prometheus output missing %q:\n%s", want, out)
		}
	}
	// Deterministic: a second render is byte-identical.
	var buf2 bytes.Buffer
	r.WritePrometheus(&buf2)
	if buf.String() != buf2.String() {
		t.Error("two renders of the same registry differ")
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits", "", "worker", "w0").Add(2)
	r.Histogram("secs", "", []float64{1}).Observe(0.5)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Metrics []struct {
			Name   string            `json:"name"`
			Labels map[string]string `json:"labels"`
			Type   string            `json:"type"`
			Value  *float64          `json:"value"`
			Count  *int64            `json:"count"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("JSON rendering does not parse: %v\n%s", err, buf.String())
	}
	if len(doc.Metrics) != 2 {
		t.Fatalf("got %d metrics, want 2", len(doc.Metrics))
	}
	if m := doc.Metrics[0]; m.Name != "hits" || m.Type != "counter" || m.Labels["worker"] != "w0" || m.Value == nil || *m.Value != 2 {
		t.Errorf("counter rendered badly: %+v", m)
	}
	if m := doc.Metrics[1]; m.Name != "secs" || m.Type != "histogram" || m.Count == nil || *m.Count != 1 {
		t.Errorf("histogram rendered badly: %+v", m)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", "", "worker", `a"b\c`).Inc()
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	if want := `c{worker="a\"b\\c"} 1`; !strings.Contains(buf.String(), want) {
		t.Errorf("escaped label missing %q in %q", want, buf.String())
	}
}

func TestConcurrentRegistryUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Counter("c", "help").Inc()
				r.Gauge("g", "").Add(1)
				r.Histogram("h", "", DefSecondsBuckets).Observe(0.01)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c", "").Value(); got != 800 {
		t.Errorf("concurrent counter = %d, want 800", got)
	}
	if got := r.Gauge("g", "").Value(); got != 800 {
		t.Errorf("concurrent gauge = %v, want 800", got)
	}
	if got := r.Histogram("h", "", DefSecondsBuckets).Count(); got != 800 {
		t.Errorf("concurrent histogram = %d, want 800", got)
	}
}

func TestHandlerServesMetricsAndHealthz(t *testing.T) {
	r := NewRegistry()
	r.Counter("exp_cache_hits_total", "cache hits").Add(5)
	var unhealthy bool
	addr, stop, err := Serve("127.0.0.1:0", r, func() error {
		if unhealthy {
			return io.ErrClosedPipe
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "exp_cache_hits_total 5") {
		t.Errorf("/metrics = %d %q", code, body)
	}
	if code, body := get("/metrics?format=json"); code != 200 || !strings.Contains(body, `"exp_cache_hits_total"`) {
		t.Errorf("/metrics?format=json = %d %q", code, body)
	}
	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q", code, body)
	}
	unhealthy = true
	if code, _ := get("/healthz"); code != http.StatusServiceUnavailable {
		t.Errorf("unhealthy /healthz = %d, want 503", code)
	}
}

func TestSpanLogSortsAndRenders(t *testing.T) {
	l := NewSpanLog()
	t0 := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	l.Add(Span{Machine: "m2", Workload: "w", Worker: "b", Start: t0.Add(time.Second), End: t0.Add(2 * time.Second), ElapsedNS: 1e9})
	l.Add(Span{Machine: "m1", Workload: "w", Worker: "a", Start: t0, End: t0.Add(time.Second), ElapsedNS: 1e9})
	spans := l.Spans()
	if len(spans) != 2 || spans[0].Machine != "m1" || spans[1].Machine != "m2" {
		t.Errorf("spans not sorted by start: %+v", spans)
	}
	var buf bytes.Buffer
	if err := l.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Spans []Span `json:"spans"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("span JSON does not parse: %v", err)
	}
	if len(doc.Spans) != 2 || doc.Spans[0].Worker != "a" {
		t.Errorf("span JSON round trip: %+v", doc.Spans)
	}
}

func TestEventRendering(t *testing.T) {
	got := Event("worker joined", KeyWorker, "hostB:9700", KeyJobs, 7, KeyCause, "two words")
	want := `worker joined worker=hostB:9700 jobs=7 cause="two words"`
	if got != want {
		t.Errorf("Event = %q, want %q", got, want)
	}
}
