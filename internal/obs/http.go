package obs

import (
	"fmt"
	"net"
	"net/http"
	"strings"
	"time"
)

// Handler returns the embeddable telemetry mux:
//
//   - /metrics renders the registry in Prometheus text format, or as
//     JSON with ?format=json (or an Accept: application/json header).
//   - /healthz returns 200 "ok", or 503 with the error text when the
//     optional healthz func reports one — the liveness contract scrape
//     targets and load balancers expect.
//
// A nil healthz means "alive as long as the server answers".
func (r *Registry) Handler(healthz func() error) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		asJSON := req.URL.Query().Get("format") == "json" ||
			strings.Contains(req.Header.Get("Accept"), "application/json")
		if asJSON {
			w.Header().Set("Content-Type", "application/json")
			r.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		if healthz != nil {
			if err := healthz(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// Serve starts the telemetry endpoint on addr in a background goroutine
// and returns the bound address (useful with ":0") and a stop func. The
// server is deliberately plain HTTP on a trusted interface: bind it to
// loopback or an internal network, exactly like any other metrics port.
func Serve(addr string, r *Registry, healthz func() error) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: metrics listener on %s: %w", addr, err)
	}
	srv := &http.Server{Handler: r.Handler(healthz), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	stop := func() {
		srv.Close()
	}
	return ln.Addr().String(), stop, nil
}
