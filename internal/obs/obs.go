// Package obs is the stdlib-only telemetry layer of the fleet: a metrics
// registry (atomic counters, gauges, fixed-bucket histograms) renderable
// in both Prometheus text format and JSON, an embeddable HTTP handler
// serving /metrics and /healthz, a structured-logging vocabulary on
// log/slog shared by every dispatch diagnostic, and a span log that
// records a run's per-simulation timeline for offline trace inspection.
//
// Everything is off by default and nil-safe: a nil *Registry hands out
// nil metrics, and every method on a nil Counter, Gauge, Histogram, or
// SpanLog is a no-op. Subsystems therefore instrument unconditionally
// and pay a single nil check per event when telemetry is disabled —
// instrumentation points sit outside simulation hot loops (per
// simulation, per batch, per membership event), so the enabled cost is
// one atomic op per event. The registry is safe for concurrent use;
// get-or-create calls for an existing series return the same metric.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label renders an alternating key/value list as a canonical Prometheus
// label block ({k="v",...}), empty for no labels. Keys are emitted in
// the given order; callers use a fixed order per series name so the
// series identity is stable.
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label key/value list %q", kv))
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(kv[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(v)
}

// Counter is a monotonically increasing metric. The zero value is ready
// to use; a nil Counter ignores every operation.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are a programmer error and ignored).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric that can go up and down. The zero value is
// ready to use; a nil Gauge ignores every operation.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed cumulative buckets, plus a
// running sum and count — the Prometheus histogram shape. A nil
// Histogram ignores every operation.
type Histogram struct {
	bounds []float64 // upper bounds, ascending; +Inf is implicit
	counts []atomic.Int64
	sum    Gauge
	count  atomic.Int64
}

// DefSecondsBuckets are the default buckets for wall-time histograms:
// 1ms to ~100s in roughly 3x steps.
var DefSecondsBuckets = []float64{0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1, 3, 10, 30, 100}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			break
		}
	}
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// kind discriminates what a registered series holds.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// series is one registered (name, labels) pair and its metric.
type series struct {
	name   string
	labels string   // rendered {k="v",...} block, "" when unlabeled
	kv     []string // the raw alternating key/value list behind labels
	kind   kind

	c  *Counter
	g  *Gauge
	gf func() float64
	h  *Histogram
}

// Registry holds named metric series and renders them. The zero value is
// not usable; create one with NewRegistry. A nil *Registry is the
// "telemetry off" state: its accessors return nil metrics whose methods
// are no-ops.
type Registry struct {
	mu     sync.Mutex
	series map[string]*series // keyed by name + rendered labels
	help   map[string]string  // per metric name, first registration wins
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{series: make(map[string]*series), help: make(map[string]string)}
}

// lookup returns the series for (name, labels), creating it with mk when
// absent. Re-registering an existing series with a different kind is a
// programmer error and panics.
func (r *Registry) lookup(name, help string, k kind, kv []string, mk func() *series) *series {
	labels := renderLabels(kv)
	id := name + labels
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.series[id]; ok {
		if s.kind != k && !(s.kind == kindGaugeFunc && k == kindGaugeFunc) {
			panic(fmt.Sprintf("obs: series %s re-registered as %s, was %s", id, k, s.kind))
		}
		return s
	}
	s := mk()
	s.name, s.labels, s.kv, s.kind = name, labels, kv, k
	r.series[id] = s
	if _, ok := r.help[name]; !ok && help != "" {
		r.help[name] = help
	}
	return s
}

// Counter returns the counter series (name, label key/value pairs),
// creating it on first use. On a nil registry it returns nil (a no-op
// counter).
func (r *Registry) Counter(name, help string, kv ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindCounter, kv, func() *series { return &series{c: &Counter{}} }).c
}

// Gauge returns the gauge series, creating it on first use. On a nil
// registry it returns nil (a no-op gauge).
func (r *Registry) Gauge(name, help string, kv ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindGauge, kv, func() *series { return &series{g: &Gauge{}} }).g
}

// GaugeFunc registers a gauge whose value is computed at render time —
// ages and depths derived from live state. Re-registering the same
// series replaces the function (a redialing worker re-arms its gauge).
// No-op on a nil registry.
func (r *Registry) GaugeFunc(name, help string, f func() float64, kv ...string) {
	if r == nil {
		return
	}
	s := r.lookup(name, help, kindGaugeFunc, kv, func() *series { return &series{} })
	r.mu.Lock()
	s.gf = f
	r.mu.Unlock()
}

// Histogram returns the histogram series with the given ascending upper
// bounds (+Inf implicit), creating it on first use. On a nil registry it
// returns nil (a no-op histogram).
func (r *Registry) Histogram(name, help string, bounds []float64, kv ...string) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindHistogram, kv, func() *series {
		return &series{h: &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds))}}
	}).h
}

// snapshot returns the registered series sorted by name then labels, so
// rendered output is deterministic.
func (r *Registry) snapshot() []*series {
	r.mu.Lock()
	out := make([]*series, 0, len(r.series))
	for _, s := range r.series {
		out = append(out, s)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return out[i].labels < out[j].labels
	})
	return out
}

// value returns a scalar series' current value.
func (s *series) value() float64 {
	switch s.kind {
	case kindCounter:
		return float64(s.c.Value())
	case kindGaugeFunc:
		if s.gf == nil {
			return 0
		}
		return s.gf()
	default:
		return s.g.Value()
	}
}

// WritePrometheus renders every series in the Prometheus text exposition
// format, sorted by series name for deterministic scrapes. A nil
// registry renders nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	var b strings.Builder
	lastName := ""
	r.mu.Lock()
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.Unlock()
	for _, s := range r.snapshot() {
		if s.name != lastName {
			lastName = s.name
			if h := help[s.name]; h != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", s.name, h)
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", s.name, s.kind)
		}
		if s.kind == kindHistogram {
			writePromHistogram(&b, s)
			continue
		}
		fmt.Fprintf(&b, "%s%s %s\n", s.name, s.labels, formatValue(s.value()))
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writePromHistogram renders one histogram series: cumulative buckets,
// then sum and count.
func writePromHistogram(b *strings.Builder, s *series) {
	base := strings.TrimSuffix(strings.TrimPrefix(s.labels, "{"), "}")
	bucketLabels := func(le string) string {
		if base == "" {
			return `{le="` + le + `"}`
		}
		return "{" + base + `,le="` + le + `"}`
	}
	var cum int64
	for i, bound := range s.h.bounds {
		cum += s.h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket%s %d\n", s.name, bucketLabels(formatValue(bound)), cum)
	}
	fmt.Fprintf(b, "%s_bucket%s %d\n", s.name, bucketLabels("+Inf"), s.h.Count())
	fmt.Fprintf(b, "%s_sum%s %s\n", s.name, s.labels, formatValue(s.h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", s.name, s.labels, s.h.Count())
}

// formatValue renders a float the way Prometheus expects: integers
// without a decimal point, everything else in shortest form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// jsonMetric is one series in the JSON rendering.
type jsonMetric struct {
	Name    string            `json:"name"`
	Labels  map[string]string `json:"labels,omitempty"`
	Type    string            `json:"type"`
	Value   *float64          `json:"value,omitempty"`
	Count   *int64            `json:"count,omitempty"`
	Sum     *float64          `json:"sum,omitempty"`
	Buckets []jsonBucket      `json:"buckets,omitempty"`
}

type jsonBucket struct {
	LE    float64 `json:"le"`
	Count int64   `json:"count"`
}

// WriteJSON renders every series as a JSON document
// ({"metrics": [...]}), the machine-readable twin of WritePrometheus,
// in the same deterministic order. A nil registry renders an empty
// document.
func (r *Registry) WriteJSON(w io.Writer) error {
	type doc struct {
		Metrics []jsonMetric `json:"metrics"`
	}
	d := doc{Metrics: []jsonMetric{}}
	if r != nil {
		for _, s := range r.snapshot() {
			m := jsonMetric{Name: s.name, Type: s.kind.String()}
			if len(s.kv) > 0 {
				m.Labels = make(map[string]string, len(s.kv)/2)
				for i := 0; i < len(s.kv); i += 2 {
					m.Labels[s.kv[i]] = s.kv[i+1]
				}
			}
			if s.kind == kindHistogram {
				count, sum := s.h.Count(), s.h.Sum()
				m.Count, m.Sum = &count, &sum
				var cum int64
				for i, bound := range s.h.bounds {
					cum += s.h.counts[i].Load()
					m.Buckets = append(m.Buckets, jsonBucket{LE: bound, Count: cum})
				}
			} else {
				v := s.value()
				m.Value = &v
			}
			d.Metrics = append(d.Metrics, m)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}
