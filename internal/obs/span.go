package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// Span is one simulation's slot in a run timeline: which canonical
// (machine, workload) key ran, where (a local pool worker or a dist
// fleet member), and when. Distributed spans are reconstructed on the
// coordinator from each result's merge time and reported wall time, so
// their absolute placement is coordinator-clock based while their width
// is the worker's measurement.
type Span struct {
	Machine   string    `json:"machine"`
	Workload  string    `json:"workload"`
	Worker    string    `json:"worker"`
	Start     time.Time `json:"start"`
	End       time.Time `json:"end"`
	ElapsedNS int64     `json:"elapsed_ns"`
}

// SpanLog collects a run's spans for offline trace inspection
// (cmd/experiments -run-summary). A nil SpanLog ignores every Add, so
// callers thread it unconditionally; it is safe for concurrent use.
type SpanLog struct {
	mu    sync.Mutex
	spans []Span
}

// NewSpanLog returns an empty span log.
func NewSpanLog() *SpanLog { return &SpanLog{} }

// Add records one span. No-op on a nil log.
func (l *SpanLog) Add(s Span) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.spans = append(l.spans, s)
	l.mu.Unlock()
}

// Spans returns a copy of the recorded spans sorted by start time (ties
// by key), the stable order the JSON export uses.
func (l *SpanLog) Spans() []Span {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	out := make([]Span, len(l.spans))
	copy(out, l.spans)
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		if out[i].Machine != out[j].Machine {
			return out[i].Machine < out[j].Machine
		}
		return out[i].Workload < out[j].Workload
	})
	return out
}

// WriteJSON writes the timeline as {"spans": [...]}, sorted by start
// time — the -run-summary file format.
func (l *SpanLog) WriteJSON(w io.Writer) error {
	type doc struct {
		Spans []Span `json:"spans"`
	}
	d := doc{Spans: l.Spans()}
	if d.Spans == nil {
		d.Spans = []Span{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}
