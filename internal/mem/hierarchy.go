// Package mem models the simulated memory hierarchy: split L1 I/D caches
// with victim buffers, a unified L2, stream-buffer prefetchers, miss status
// holding registers (MSHRs), and a bandwidth-limited memory bus.
//
// The model is completion-time based rather than event-driven: an access at
// cycle C immediately returns the cycle at which its data is available,
// computed against per-resource busy-until clocks. Tag state is updated
// eagerly; a map of in-flight line fills makes later accesses to a pending
// line wait for the original fill (MSHR merging). This keeps the hierarchy
// simple while modelling the contention that bounds the paper's achievable
// MLP (one 128-byte line per 32 bus cycles against a 400-cycle latency
// gives the ~12 practical L2 MLP limit the paper cites in §5.1).
package mem

import (
	"slices"

	"icfp/internal/cache"
)

// Level identifies where in the hierarchy an access was satisfied.
type Level int

// Hierarchy levels, ordered by distance from the pipeline.
const (
	LevelL1 Level = iota
	LevelL2
	LevelStream // stream-buffer prefetcher hit
	LevelMem
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelStream:
		return "stream"
	case LevelMem:
		return "mem"
	}
	return "?"
}

// Config describes the hierarchy. DefaultConfig matches Table 1.
type Config struct {
	L1I cache.Config
	L1D cache.Config
	L2  cache.Config

	L2HitLat int // cycles from L1 miss to data with an L2 hit

	MemLat        int // cycles to the first chunk from memory
	MemChunkLat   int // cycles per additional chunk
	MemChunkBytes int // chunk size in bytes
	NumMSHRs      int // outstanding memory misses

	StreamBufs      int // number of stream buffers (0 disables prefetch)
	StreamBufBlocks int // L2-line-sized blocks per stream buffer
}

// DefaultConfig returns the Table 1 hierarchy: 32 KB 4-way 64 B L1s with
// 8-entry victim buffers, 1 MB 8-way 128 B L2 with a 4-entry victim buffer
// and 20-cycle hit latency, 400-cycle memory with 4-cycle 16 B chunks, 64
// MSHRs, and 8 stream buffers of 8 blocks each.
func DefaultConfig() Config {
	return Config{
		L1I:             cache.Config{SizeBytes: 32 << 10, Assoc: 4, LineBytes: 64, VictimEntries: 8},
		L1D:             cache.Config{SizeBytes: 32 << 10, Assoc: 4, LineBytes: 64, VictimEntries: 8},
		L2:              cache.Config{SizeBytes: 1 << 20, Assoc: 8, LineBytes: 128, VictimEntries: 4},
		L2HitLat:        20,
		MemLat:          400,
		MemChunkLat:     4,
		MemChunkBytes:   16,
		NumMSHRs:        64,
		StreamBufs:      8,
		StreamBufBlocks: 8,
	}
}

// busCycles returns the bus occupancy of one full L2 line transfer.
func (c Config) busCycles() int64 {
	chunks := c.L2.LineBytes / c.MemChunkBytes
	return int64(chunks) * int64(c.MemChunkLat)
}

// Result reports the outcome of an access.
type Result struct {
	Done  int64 // cycle at which the data is available to the pipeline
	Level Level // level that supplied the data
}

// Stats counts hierarchy events.
type Stats struct {
	DemandDataAccesses uint64
	DataL1Misses       uint64 // demand accesses that missed in L1D
	DataL2Misses       uint64 // demand accesses that missed in L2 (incl. stream hits)
	StreamHits         uint64
	InstL1Misses       uint64
	InstL2Misses       uint64
	Prefetches         uint64
	Writebacks         uint64
	MSHRMergeHits      uint64
	MSHRStallCycles    uint64
}

// streamBlock is one prefetched block held by a stream buffer.
type streamBlock struct {
	line  uint64
	ready int64 // completion cycle of the prefetch
}

// streamBuf holds its prefetched blocks in a fixed FIFO ring (backing
// allocated once in New, StreamBufBlocks entries), so steady-state
// consume/refill churn never allocates.
type streamBuf struct {
	nextLine uint64 // next L2 line address the buffer expects to supply
	blocks   []streamBlock
	head     int // index of the oldest block
	n        int // live blocks
	lastUse  int64
	valid    bool
}

// at returns the i-th oldest block.
func (sb *streamBuf) at(i int) *streamBlock {
	idx := sb.head + i
	if idx >= len(sb.blocks) {
		idx -= len(sb.blocks)
	}
	return &sb.blocks[idx]
}

// Hierarchy is the simulated memory system. Create with New.
type Hierarchy struct {
	cfg    Config
	ICache *cache.Cache
	DCache *cache.Cache
	L2     *cache.Cache

	busFree int64            // cycle at which the memory bus frees
	pending map[uint64]int64 // in-flight L2-line fills: line -> completion
	mshrs   []int64          // completion cycles of active MSHRs
	streams []streamBuf
	// missedLines filters stream allocation: a stream is allocated only
	// when line X misses and line X-1 missed recently (two consecutive
	// misses indicate a stream; lone random or pointer-chase misses must
	// not burn bus bandwidth on useless prefetches).
	missedLines map[uint64]struct{}
	clock       int64

	// MissObserver, if non-nil, is called for every demand access that
	// misses the L1 data cache with the interval during which the miss is
	// outstanding and whether it also missed in the L2. Timing models use
	// it to feed MLP trackers.
	MissObserver func(start, done int64, l2Miss bool)

	Stats Stats
}

// New builds a hierarchy from cfg, validating all cache geometries.
func New(cfg Config) *Hierarchy {
	h := &Hierarchy{
		cfg:         cfg,
		ICache:      cache.New(cfg.L1I),
		DCache:      cache.New(cfg.L1D),
		L2:          cache.New(cfg.L2),
		pending:     make(map[uint64]int64),
		missedLines: make(map[uint64]struct{}),
	}
	if cfg.StreamBufs > 0 {
		h.streams = make([]streamBuf, cfg.StreamBufs)
		blocks := make([]streamBlock, cfg.StreamBufs*cfg.StreamBufBlocks)
		for i := range h.streams {
			h.streams[i].blocks = blocks[i*cfg.StreamBufBlocks : (i+1)*cfg.StreamBufBlocks : (i+1)*cfg.StreamBufBlocks]
		}
	}
	return h
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// l2Line aligns addr to an L2 line.
func (h *Hierarchy) l2Line(addr uint64) uint64 {
	return addr &^ uint64(h.cfg.L2.LineBytes-1)
}

// pendingDone returns the completion cycle of an in-flight fill covering
// addr, or 0 if none. Stale entries are pruned opportunistically.
func (h *Hierarchy) pendingDone(cycle int64, addr uint64) int64 {
	if len(h.pending) == 0 {
		return 0 // no in-flight fills: skip the map probe on the hit path
	}
	line := h.l2Line(addr)
	done, ok := h.pending[line]
	if !ok {
		return 0
	}
	if done <= cycle {
		delete(h.pending, line)
		return 0
	}
	return done
}

// allocMSHR reserves a miss slot, returning the earliest cycle the miss can
// begin (stalls if all MSHRs are busy) and registers its completion.
func (h *Hierarchy) allocMSHR(cycle, done int64) int64 {
	// Drop completed entries.
	live := h.mshrs[:0]
	for _, c := range h.mshrs {
		if c > cycle {
			live = append(live, c)
		}
	}
	h.mshrs = live
	start := cycle
	if len(h.mshrs) >= h.cfg.NumMSHRs {
		slices.Sort(h.mshrs)
		idx := len(h.mshrs) - h.cfg.NumMSHRs
		if h.mshrs[idx] > start {
			h.Stats.MSHRStallCycles += uint64(h.mshrs[idx] - start)
			start = h.mshrs[idx]
		}
	}
	h.mshrs = append(h.mshrs, done)
	return start
}

// fetchFromMemory schedules a line transfer on the memory bus starting no
// earlier than cycle and returns the cycle the critical chunk arrives.
func (h *Hierarchy) fetchFromMemory(cycle int64) int64 {
	start := cycle
	if h.busFree > start {
		start = h.busFree
	}
	h.busFree = start + h.cfg.busCycles()
	return start + int64(h.cfg.MemLat)
}

// writeback charges bus occupancy for a dirty line leaving the L2.
func (h *Hierarchy) writeback() {
	h.Stats.Writebacks++
	h.busFree += h.cfg.busCycles()
}

// streamProbe checks the stream buffers for an L2-line address. On a hit
// the block is consumed, the stream advances (issuing a new prefetch), and
// the block's ready cycle is returned.
func (h *Hierarchy) streamProbe(cycle int64, line uint64) (int64, bool) {
	for i := range h.streams {
		sb := &h.streams[i]
		if !sb.valid {
			continue
		}
		for j := 0; j < sb.n; j++ {
			b := sb.at(j)
			if b.line != line {
				continue
			}
			ready := b.ready
			// Consume this block and everything older.
			sb.head += j + 1
			if sb.head >= len(sb.blocks) {
				sb.head -= len(sb.blocks)
			}
			sb.n -= j + 1
			sb.lastUse = cycle
			h.refillStream(cycle, sb)
			return ready, true
		}
	}
	return 0, false
}

// refillStream tops a stream buffer up to its block budget.
func (h *Hierarchy) refillStream(cycle int64, sb *streamBuf) {
	for sb.n < h.cfg.StreamBufBlocks {
		line := sb.nextLine
		sb.nextLine += uint64(h.cfg.L2.LineBytes)
		if h.L2.Probe(line) {
			continue // already cached; skip ahead
		}
		done := h.fetchFromMemory(cycle)
		h.Stats.Prefetches++
		*sb.at(sb.n) = streamBlock{line: line, ready: done}
		sb.n++
	}
}

// allocStream starts a new stream after a miss at line (prefetching the
// successor lines), replacing the least recently used buffer. Allocation
// is filtered: it requires a recent miss to the preceding line, so that
// isolated random or pointer-chase misses do not waste bus bandwidth.
func (h *Hierarchy) allocStream(cycle int64, line uint64) {
	if len(h.streams) == 0 {
		return
	}
	prev := line - uint64(h.cfg.L2.LineBytes)
	if _, ok := h.missedLines[prev]; !ok {
		if len(h.missedLines) > 4096 {
			clear(h.missedLines)
		}
		h.missedLines[line] = struct{}{}
		return
	}
	delete(h.missedLines, prev)
	vi := 0
	for i := range h.streams {
		if !h.streams[i].valid {
			vi = i
			break
		}
		if h.streams[i].lastUse < h.streams[vi].lastUse {
			vi = i
		}
	}
	sb := &h.streams[vi]
	sb.nextLine = line + uint64(h.cfg.L2.LineBytes)
	sb.head, sb.n = 0, 0
	sb.lastUse = cycle
	sb.valid = true
	h.refillStream(cycle, sb)
}

// l2Access services an L1 miss: L2 lookup, then stream buffers, then
// memory. It installs the line in the L2 and returns data-ready cycle and
// supplying level.
func (h *Hierarchy) l2Access(cycle int64, addr uint64, write bool) (int64, Level) {
	if h.L2.Lookup(addr, write) {
		done := cycle + int64(h.cfg.L2HitLat)
		if p := h.pendingDone(cycle, addr); p > done {
			// The tag is present but the line is still streaming in from
			// memory: this is an MSHR merge with the original fill.
			h.Stats.MSHRMergeHits++
			return p, LevelMem
		}
		return done, LevelL2
	}
	line := h.l2Line(addr)
	// Merge with an in-flight fill of the same line.
	if p := h.pendingDone(cycle, addr); p > 0 {
		h.Stats.MSHRMergeHits++
		h.insertL2(addr, write)
		return p, LevelMem
	}
	if ready, ok := h.streamProbe(cycle, line); ok {
		h.Stats.StreamHits++
		done := cycle + int64(h.cfg.L2HitLat)
		if ready > done {
			done = ready
		}
		h.insertL2(addr, write)
		if ready > cycle {
			h.pending[line] = done
		}
		return done, LevelStream
	}
	// Full miss to memory.
	done := h.fetchFromMemory(cycle)
	start := h.allocMSHR(cycle, done)
	if start > cycle { // MSHR stall pushed the request back
		done = h.fetchFromMemory(start)
	}
	h.pending[line] = done
	h.insertL2(addr, write)
	h.allocStream(cycle, line)
	return done, LevelMem
}

func (h *Hierarchy) insertL2(addr uint64, write bool) {
	if _, dirty := h.L2.Insert(addr, write); dirty {
		h.writeback()
	}
}

// Data performs a demand data access. The returned Done is the cycle the
// value is available; the 3-cycle D$ pipeline occupancy is charged by the
// pipeline model, not here.
func (h *Hierarchy) Data(cycle int64, addr uint64, write bool) Result {
	h.Stats.DemandDataAccesses++
	if h.DCache.Lookup(addr, write) {
		done := cycle
		if p := h.pendingDone(cycle, addr); p > done {
			done = p
		}
		return Result{Done: done, Level: LevelL1}
	}
	h.Stats.DataL1Misses++
	done, lvl := h.l2Access(cycle, addr, write)
	if lvl == LevelMem {
		// Stream-buffer hits are prefetched lines; only accesses that
		// truly wait on memory count as demand L2 misses.
		h.Stats.DataL2Misses++
	}
	h.DCache.Insert(addr, write)
	if h.MissObserver != nil {
		h.MissObserver(cycle, done, lvl == LevelMem)
	}
	return Result{Done: done, Level: lvl}
}

// Prefetch issues a non-binding fill of addr without counting it as a
// demand access. Advance-mode execution under a poisoned branch that later
// proves wrong still warms the caches through this path.
func (h *Hierarchy) Prefetch(cycle int64, addr uint64) Result {
	if h.DCache.Lookup(addr, false) {
		return Result{Done: cycle, Level: LevelL1}
	}
	done, lvl := h.l2Access(cycle, addr, false)
	h.DCache.Insert(addr, false)
	return Result{Done: done, Level: lvl}
}

// ProbeData reports the level that would service addr, without changing
// any state. Policy code (e.g. Runahead's advance-trigger selection) uses
// it to classify a miss before committing to a mode transition.
func (h *Hierarchy) ProbeData(addr uint64) Level {
	if h.DCache.Probe(addr) {
		return LevelL1
	}
	if h.L2.Probe(addr) {
		return LevelL2
	}
	return LevelMem
}

// Inst performs an instruction fetch access for the line containing addr.
func (h *Hierarchy) Inst(cycle int64, addr uint64) Result {
	if h.ICache.Lookup(addr, false) {
		done := cycle
		if p := h.pendingDone(cycle, addr); p > done {
			done = p
		}
		return Result{Done: done, Level: LevelL1}
	}
	h.Stats.InstL1Misses++
	done, lvl := h.l2Access(cycle, addr, false)
	if lvl != LevelL2 {
		h.Stats.InstL2Misses++
	}
	h.ICache.Insert(addr, false)
	return Result{Done: done, Level: lvl}
}
