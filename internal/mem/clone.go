package mem

import "maps"

// Clone returns a deep copy of the hierarchy: caches, bus and MSHR
// clocks, in-flight fill map, stream buffers, miss-filter set, and
// statistics. MissObserver is NOT copied — it closes over the owning
// simulation's trackers, so every simulation must install its own on the
// clone. Cloning must be exact (a run started from a clone is
// byte-identical to one started from the original); the warm-state
// equivalence tests pin that property.
func (h *Hierarchy) Clone() *Hierarchy {
	cl := *h
	cl.ICache = h.ICache.Clone()
	cl.DCache = h.DCache.Clone()
	cl.L2 = h.L2.Clone()
	cl.pending = maps.Clone(h.pending)
	cl.missedLines = maps.Clone(h.missedLines)
	cl.mshrs = make([]int64, len(h.mshrs), cap(h.mshrs))
	copy(cl.mshrs, h.mshrs)
	if h.streams != nil {
		cl.streams = make([]streamBuf, len(h.streams))
		blocks := make([]streamBlock, len(h.streams)*h.cfg.StreamBufBlocks)
		for i := range h.streams {
			cl.streams[i] = h.streams[i]
			dst := blocks[i*h.cfg.StreamBufBlocks : (i+1)*h.cfg.StreamBufBlocks : (i+1)*h.cfg.StreamBufBlocks]
			copy(dst, h.streams[i].blocks)
			cl.streams[i].blocks = dst
		}
	}
	cl.MissObserver = nil
	return &cl
}
