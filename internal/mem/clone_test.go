package mem

import "testing"

// TestHierarchyCloneIsolated pins that a cloned hierarchy shares no
// mutable state with its original: accesses through the clone must not
// change what the original's caches hold, and vice versa.
func TestHierarchyCloneIsolated(t *testing.T) {
	h := New(DefaultConfig())
	// Populate: a strided walk that fills L1D sets and some MSHR/pending
	// state via timed accesses.
	for a := uint64(0); a < 1<<16; a += 64 {
		h.Data(int64(a/64), a, a%128 == 0)
	}

	c := h.Clone()

	// The clone sees the original's cache contents: the most recently
	// touched line must be resident in both.
	if !c.DCache.Lookup(1<<16-64, false) {
		t.Fatal("clone lost a line the original holds")
	}

	// Mutating the clone leaves the original untouched.
	origHits, origMisses := h.DCache.Hits, h.DCache.Misses
	for a := uint64(1 << 20); a < 1<<20+1<<16; a += 64 {
		c.Data(int64(a/64), a, false)
	}
	if h.DCache.Hits != origHits || h.DCache.Misses != origMisses {
		t.Fatalf("original's D$ counters moved after clone accesses: hits %d->%d misses %d->%d",
			origHits, h.DCache.Hits, origMisses, h.DCache.Misses)
	}
	if len(h.pending) != len(c.pending) && len(h.pending) == 0 {
		t.Fatal("original pending map aliased by clone")
	}

	// And mutating the original leaves the clone untouched.
	cHits := c.DCache.Hits
	for a := uint64(2 << 20); a < 2<<20+1<<15; a += 64 {
		h.Data(int64(a/64), a, false)
	}
	if c.DCache.Hits != cHits {
		t.Fatalf("clone's D$ counters moved after original accesses: %d -> %d", cHits, c.DCache.Hits)
	}

	// MissObserver must not carry over: each simulation installs its own.
	if c2 := h.Clone(); c2.MissObserver != nil {
		t.Fatal("clone inherited a MissObserver")
	}
}

// TestCacheCloneVictim pins victim-buffer deep copying.
func TestCacheCloneVictim(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.L1D.VictimEntries == 0 {
		t.Skip("no victim buffer in the default config")
	}
	h := New(cfg)
	for a := uint64(0); a < 1<<18; a += 64 {
		h.DCache.Lookup(a, false)
		h.DCache.Insert(a, false)
	}
	c := h.DCache.Clone()
	before := h.DCache.VictimHits
	// Thrash the clone's victim buffer.
	for a := uint64(1 << 21); a < 1<<21+1<<18; a += 64 {
		c.Lookup(a, false)
		c.Insert(a, false)
	}
	if h.DCache.VictimHits != before {
		t.Fatal("original victim state aliased by clone")
	}
}
