package mem

import (
	"testing"

	"icfp/internal/cache"
)

// testConfig returns a small hierarchy with prefetching disabled so that
// tests control every miss.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.StreamBufs = 0
	return cfg
}

func TestLevelString(t *testing.T) {
	for lvl, want := range map[Level]string{
		LevelL1: "L1", LevelL2: "L2", LevelStream: "stream", LevelMem: "mem", Level(9): "?",
	} {
		if lvl.String() != want {
			t.Errorf("Level(%d) = %q, want %q", lvl, lvl.String(), want)
		}
	}
}

func TestColdMissGoesToMemory(t *testing.T) {
	h := New(testConfig())
	r := h.Data(0, 0x10000, false)
	if r.Level != LevelMem {
		t.Fatalf("cold access level = %v", r.Level)
	}
	if r.Done != int64(h.cfg.MemLat) {
		t.Fatalf("cold access done = %d, want %d", r.Done, h.cfg.MemLat)
	}
}

func TestL1HitAfterFill(t *testing.T) {
	h := New(testConfig())
	h.Data(0, 0x10000, false)
	r := h.Data(1000, 0x10000, false)
	if r.Level != LevelL1 || r.Done != 1000 {
		t.Fatalf("after fill: level=%v done=%d", r.Level, r.Done)
	}
}

func TestL2HitLatency(t *testing.T) {
	h := New(testConfig())
	h.Data(0, 0x10000, false) // fills L2+L1
	// Evict from tiny range? Instead access a different 64B line within the
	// same 128B L2 line: L1 miss (different L1 line), L2 hit.
	r := h.Data(1000, 0x10040, false)
	if r.Level != LevelL2 {
		t.Fatalf("level = %v, want L2", r.Level)
	}
	if r.Done != 1000+int64(h.cfg.L2HitLat) {
		t.Fatalf("done = %d, want %d", r.Done, 1000+int64(h.cfg.L2HitLat))
	}
}

func TestMSHRMerge(t *testing.T) {
	h := New(testConfig())
	r1 := h.Data(0, 0x20000, false)
	r2 := h.Data(5, 0x20040, false) // same 128B L2 line, different L1 line
	if r2.Done != r1.Done {
		t.Fatalf("merged miss done=%d, want %d", r2.Done, r1.Done)
	}
	if h.Stats.MSHRMergeHits != 1 {
		t.Fatalf("MSHRMergeHits = %d", h.Stats.MSHRMergeHits)
	}
}

func TestPendingFillDelaysL1Hit(t *testing.T) {
	h := New(testConfig())
	r1 := h.Data(0, 0x30000, false)
	// Same L1 line again while the fill is still in flight: tag state says
	// hit, but data cannot arrive before the original fill.
	r2 := h.Data(10, 0x30000, false)
	if r2.Level != LevelL1 {
		t.Fatalf("level = %v", r2.Level)
	}
	if r2.Done != r1.Done {
		t.Fatalf("pending-gated hit done=%d, want %d", r2.Done, r1.Done)
	}
	// After completion the gate is gone.
	r3 := h.Data(r1.Done+1, 0x30000, false)
	if r3.Done != r1.Done+1 {
		t.Fatalf("post-fill hit done=%d", r3.Done)
	}
}

func TestBusSerializesIndependentMisses(t *testing.T) {
	h := New(testConfig())
	r1 := h.Data(0, 0x100000, false)
	r2 := h.Data(0, 0x200000, false)
	bus := h.cfg.busCycles()
	if r2.Done != r1.Done+bus {
		t.Fatalf("second miss done=%d, want %d", r2.Done, r1.Done+bus)
	}
}

func TestMSHRLimitStalls(t *testing.T) {
	cfg := testConfig()
	cfg.NumMSHRs = 2
	h := New(cfg)
	h.Data(0, 0x100000, false)
	h.Data(0, 0x200000, false)
	r3 := h.Data(0, 0x300000, false) // must wait for an MSHR
	if h.Stats.MSHRStallCycles == 0 {
		t.Fatal("expected MSHR stall cycles")
	}
	if r3.Done <= int64(cfg.MemLat)+cfg.busCycles() {
		t.Fatalf("third miss done=%d suspiciously early", r3.Done)
	}
}

func TestStreamBufferHit(t *testing.T) {
	cfg := DefaultConfig() // prefetch on
	h := New(cfg)
	line := uint64(cfg.L2.LineBytes)
	// A lone miss must NOT allocate a stream (allocation filter).
	h.Data(0, 0x400000, false)
	if h.Stats.Prefetches != 0 {
		t.Fatal("a lone miss must not trigger prefetching")
	}
	// A second consecutive line miss confirms a stream.
	h.Data(1000, 0x400000+line, false)
	if h.Stats.Prefetches == 0 {
		t.Fatal("two consecutive line misses must allocate a stream")
	}
	// The third sequential line should hit the stream buffer.
	r := h.Data(3000, 0x400000+2*line, false)
	if r.Level != LevelStream {
		t.Fatalf("level = %v, want stream", r.Level)
	}
	if h.Stats.StreamHits != 1 {
		t.Fatalf("StreamHits = %d", h.Stats.StreamHits)
	}
}

func TestStreamBufferFollowsStream(t *testing.T) {
	cfg := DefaultConfig()
	h := New(cfg)
	line := uint64(cfg.L2.LineBytes)
	base := uint64(0x800000)
	h.Data(0, base, false)
	// March through many sequential lines; after the first couple the
	// stream should cover everything.
	misses := 0
	cycle := int64(5000)
	for i := uint64(1); i <= 20; i++ {
		r := h.Data(cycle, base+i*line, false)
		if r.Level == LevelMem {
			misses++
		}
		cycle = r.Done + 100
	}
	if misses > 2 {
		t.Fatalf("stream prefetcher missed %d sequential lines", misses)
	}
}

func TestInstPath(t *testing.T) {
	h := New(testConfig())
	r := h.Inst(0, 0x1000)
	if r.Level != LevelMem || h.Stats.InstL1Misses != 1 {
		t.Fatalf("cold ifetch level=%v misses=%d", r.Level, h.Stats.InstL1Misses)
	}
	r2 := h.Inst(1000, 0x1000)
	if r2.Level != LevelL1 {
		t.Fatalf("warm ifetch level=%v", r2.Level)
	}
}

func TestProbeDataNonPerturbing(t *testing.T) {
	h := New(testConfig())
	if h.ProbeData(0x5000) != LevelMem {
		t.Fatal("cold probe must report mem")
	}
	if h.Stats.DemandDataAccesses != 0 {
		t.Fatal("probe must not count as access")
	}
	h.Data(0, 0x5000, false)
	if h.ProbeData(0x5000) != LevelL1 {
		t.Fatal("probe after fill must report L1")
	}
	if h.ProbeData(0x5040) != LevelL2 {
		t.Fatal("sibling L1 line must report L2")
	}
}

func TestMissObserver(t *testing.T) {
	h := New(testConfig())
	var got []bool
	h.MissObserver = func(start, done int64, l2miss bool) {
		if done <= start {
			t.Errorf("observer interval [%d,%d] empty", start, done)
		}
		got = append(got, l2miss)
	}
	h.Data(0, 0x6000, false)   // memory miss
	h.Data(500, 0x6040, false) // after fill: L2 hit (same L2 line) -> l2miss=false
	h.Data(501, 0x6000, false) // L1 hit: no callback
	if len(got) != 2 || got[0] != true || got[1] != false {
		t.Fatalf("observer calls = %v", got)
	}
}

func TestWritebackCharged(t *testing.T) {
	cfg := testConfig()
	// Tiny L2 so evictions happen fast; no victim buffering.
	cfg.L2 = cache.Config{SizeBytes: 4096, Assoc: 2, LineBytes: 128, VictimEntries: 0}
	cfg.L1D = cache.Config{SizeBytes: 512, Assoc: 1, LineBytes: 64, VictimEntries: 0}
	h := New(cfg)
	// Write lines mapping to one L2 set until a dirty eviction occurs.
	setStride := uint64(4096 / 2) // sets*line = 2048
	for i := uint64(0); i < 4; i++ {
		h.Data(int64(i)*10, 0x10000+i*setStride, true)
	}
	if h.Stats.Writebacks == 0 {
		t.Fatal("expected at least one writeback")
	}
}

func TestPrefetchWarmsCache(t *testing.T) {
	h := New(testConfig())
	h.Prefetch(0, 0x9000)
	if h.Stats.DemandDataAccesses != 0 {
		t.Fatal("prefetch must not count as demand access")
	}
	if h.ProbeData(0x9000) != LevelL1 {
		t.Fatal("prefetch must install the line")
	}
}

func TestStoreWriteAllocates(t *testing.T) {
	h := New(testConfig())
	r := h.Data(0, 0xA000, true)
	if r.Level != LevelMem {
		t.Fatalf("store miss level = %v", r.Level)
	}
	r2 := h.Data(r.Done, 0xA000, false)
	if r2.Level != LevelL1 {
		t.Fatal("store must write-allocate")
	}
}
