package cache

import (
	"testing"
	"testing/quick"
)

func smallCfg() Config {
	return Config{SizeBytes: 1024, Assoc: 2, LineBytes: 64, VictimEntries: 0}
}

func TestConfigValidate(t *testing.T) {
	good := smallCfg()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{SizeBytes: 1024, Assoc: 2, LineBytes: 48},       // non-power-of-two line
		{SizeBytes: 1024, Assoc: 0, LineBytes: 64},       // zero assoc
		{SizeBytes: 1000, Assoc: 2, LineBytes: 64},       // size not multiple
		{SizeBytes: 64 * 2 * 3, Assoc: 2, LineBytes: 64}, // non-pow2 sets
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New must panic on invalid config")
		}
	}()
	New(Config{SizeBytes: 3, Assoc: 1, LineBytes: 2})
}

func TestMissThenHit(t *testing.T) {
	c := New(smallCfg())
	if c.Lookup(0x1000, false) {
		t.Fatal("cold cache must miss")
	}
	c.Insert(0x1000, false)
	if !c.Lookup(0x1000, false) {
		t.Fatal("inserted line must hit")
	}
	if !c.Lookup(0x103F, false) {
		t.Fatal("same line, different offset must hit")
	}
	if c.Lookup(0x1040, false) {
		t.Fatal("next line must miss")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(smallCfg()) // 8 sets, 2 ways
	// Three lines mapping to set 0: addresses differ by numSets*line = 512.
	a, b, d := uint64(0), uint64(512), uint64(1024)
	c.Insert(a, false)
	c.Insert(b, false)
	c.Lookup(a, false) // make a most recently used
	c.Insert(d, false) // should evict b
	if !c.Probe(a) {
		t.Error("a (MRU) must survive")
	}
	if c.Probe(b) {
		t.Error("b (LRU) must be evicted")
	}
	if !c.Probe(d) {
		t.Error("d must be present")
	}
}

func TestEvictionReportsDirty(t *testing.T) {
	c := New(smallCfg())
	c.Insert(0, true) // dirty
	c.Insert(512, false)
	ev, dirty := c.Insert(1024, false)
	if ev != 0 || !dirty {
		t.Errorf("evicted=%#x dirty=%v, want 0 dirty", ev, dirty)
	}
}

func TestVictimBuffer(t *testing.T) {
	cfg := smallCfg()
	cfg.VictimEntries = 2
	c := New(cfg)
	c.Insert(0, false)
	c.Insert(512, false)
	c.Insert(1024, false) // evicts line 0 into victim buffer
	if !c.Lookup(0, false) {
		t.Fatal("victim buffer must satisfy the access")
	}
	if c.VictimHits != 1 {
		t.Errorf("VictimHits = %d, want 1", c.VictimHits)
	}
	// After a victim hit the line is back in the main array.
	if !c.Probe(0) {
		t.Error("line must be re-inserted after victim hit")
	}
}

func TestVictimBufferOverflow(t *testing.T) {
	cfg := smallCfg()
	cfg.VictimEntries = 1
	c := New(cfg)
	c.Insert(0, true)
	c.Insert(512, false)
	c.Insert(1024, false) // line 0 -> victim buffer
	ev, dirty := c.Insert(1536, false)
	// line 512 pushes line 0 out of the 1-entry victim buffer.
	if ev != 0 || !dirty {
		t.Errorf("victim overflow evicted=%#x dirty=%v, want 0,true", ev, dirty)
	}
}

func TestInvalidate(t *testing.T) {
	c := New(smallCfg())
	c.Insert(0x2000, false)
	if !c.Invalidate(0x2000) {
		t.Fatal("Invalidate must report removal")
	}
	if c.Probe(0x2000) {
		t.Fatal("line must be gone after Invalidate")
	}
	if c.Invalidate(0x2000) {
		t.Fatal("second Invalidate must report absence")
	}
}

func TestSpeculativeFlush(t *testing.T) {
	c := New(smallCfg())
	c.InsertSpeculative(0x100)
	c.Insert(0x200, false)
	c.MarkSpeculative(0x200)
	c.Insert(0x300, false)
	if n := c.FlushSpeculative(); n != 2 {
		t.Fatalf("FlushSpeculative = %d, want 2", n)
	}
	if c.Probe(0x100) || c.Probe(0x200) {
		t.Error("speculative lines must be invalidated")
	}
	if !c.Probe(0x300) {
		t.Error("non-speculative line must survive flush")
	}
}

func TestSpeculativeCommit(t *testing.T) {
	c := New(smallCfg())
	c.InsertSpeculative(0x100)
	if n := c.CommitSpeculative(); n != 1 {
		t.Fatalf("CommitSpeculative = %d, want 1", n)
	}
	if n := c.FlushSpeculative(); n != 0 {
		t.Fatalf("flush after commit removed %d lines", n)
	}
	if !c.Probe(0x100) {
		t.Error("committed line must persist")
	}
}

func TestMarkSpeculativeMissing(t *testing.T) {
	c := New(smallCfg())
	if c.MarkSpeculative(0x500) {
		t.Error("MarkSpeculative on absent line must return false")
	}
}

func TestStatsCount(t *testing.T) {
	c := New(smallCfg())
	c.Lookup(0, false)
	c.Insert(0, false)
	c.Lookup(0, false)
	c.Lookup(0, false)
	if c.Misses != 1 || c.Hits != 2 {
		t.Errorf("hits=%d misses=%d, want 2,1", c.Hits, c.Misses)
	}
}

func TestReset(t *testing.T) {
	c := New(smallCfg())
	c.Insert(0, true)
	c.Lookup(0, false)
	c.Reset()
	if c.Probe(0) {
		t.Error("Reset must invalidate lines")
	}
	if c.Hits != 0 || c.Misses != 0 {
		t.Error("Reset must clear stats")
	}
}

func TestProbeDoesNotPerturb(t *testing.T) {
	c := New(smallCfg())
	c.Insert(0, false)   // LRU after next insert
	c.Insert(512, false) // MRU
	c.Probe(0)           // must NOT refresh line 0
	c.Insert(1024, false)
	if c.Probe(0) {
		t.Error("Probe must not update LRU state")
	}
}

func TestInsertExistingMergesDirty(t *testing.T) {
	c := New(smallCfg())
	c.Insert(0x40, false)
	ev, d := c.Insert(0x40, true) // refill of present line
	if ev != 0 || d {
		t.Error("refill of present line must not evict")
	}
	// Evict it and confirm dirtiness merged.
	c.Insert(0x40+512, false)
	_, dirty := c.Insert(0x40+1024, false)
	if !dirty {
		t.Error("merged dirty bit lost")
	}
}

func TestLineAddrProperty(t *testing.T) {
	c := New(smallCfg())
	f := func(addr uint64) bool {
		la := c.LineAddr(addr)
		return la%64 == 0 && la <= addr && addr-la < 64
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: after inserting N distinct lines that map to one set with
// associativity A and no victim buffer, exactly min(N, A) remain.
func TestSetOccupancyProperty(t *testing.T) {
	f := func(n uint8) bool {
		c := New(smallCfg()) // 2-way, 8 sets
		count := int(n%6) + 1
		for i := 0; i < count; i++ {
			c.Insert(uint64(i)*512, false)
		}
		present := 0
		for i := 0; i < count; i++ {
			if c.Probe(uint64(i) * 512) {
				present++
			}
		}
		want := count
		if want > 2 {
			want = 2
		}
		return present == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestVictimRingWrapsFIFO exercises the victim ring past several
// wrap-arounds: entries must come back out strictly oldest-first, and
// mid-ring removal (a victim hit) must preserve the order of the rest.
func TestVictimRingWrapsFIFO(t *testing.T) {
	cfg := smallCfg() // 2-way, 8 sets, 64 B lines -> set stride 512
	cfg.VictimEntries = 3
	c := New(cfg)
	// Fill one set and keep evicting through it (addresses start at 512 so
	// a popped line address is never confused with "no eviction"): line i
	// enters the victim buffer when line i+2 is inserted, and pops out as
	// the returned eviction 3 insertions later, oldest first.
	var popped []uint64
	for i := 1; i <= 12; i++ {
		ev, _ := c.Insert(uint64(i)*512, false)
		if i >= 6 {
			popped = append(popped, ev)
		}
	}
	for k, ev := range popped {
		if want := uint64(k+1) * 512; ev != want {
			t.Errorf("pop %d = line %#x, want %#x (FIFO order)", k, ev, want)
		}
	}
	// Mid-ring removal: with a 4-entry ring, hit the second-oldest victim
	// entry, then pin that the three survivors (plus the entry the re-insert
	// displaced) still pop out strictly oldest-first. A removal that swaps
	// instead of shifting would reorder the pops.
	cfg.VictimEntries = 4
	c2 := New(cfg)
	for _, a := range []uint64{512, 1024, 1536, 2048, 2560, 3072} {
		c2.Insert(a, false)
	}
	// victim = [512, 1024, 1536, 2048], set = {2560, 3072}.
	if !c2.Lookup(1024, false) {
		t.Fatal("victim middle entry must hit")
	}
	if c2.VictimHits != 1 {
		t.Errorf("VictimHits = %d, want 1", c2.VictimHits)
	}
	if !c2.Probe(1024) {
		t.Error("victim-hit line must be resident again")
	}
	// Re-inserting 1024 displaced 2560 into the ring: victim is now
	// [512, 1536, 2048, 2560] and must drain in exactly that order.
	for i, want := range []uint64{512, 1536, 2048} {
		ev, _ := c2.Insert(3584+uint64(i)*512, false)
		if ev != want {
			t.Errorf("post-removal pop %d = line %#x, want %#x (FIFO order)", i, ev, want)
		}
	}
}
