package cache

// Clone returns a deep copy of the cache: tag arrays, victim buffer, LRU
// clock, and statistics. The copy shares nothing mutable with the
// original, so warmed cache state can be checkpointed once and handed to
// any number of simulations (pipeline.WarmState). Cloning must be exact —
// a simulation started from a clone behaves byte-identically to one
// started from the original — which the warm-state equivalence tests pin.
func (c *Cache) Clone() *Cache {
	cl := *c
	numSets := len(c.sets)
	backing := make([]line, numSets*c.cfg.Assoc)
	cl.sets = make([][]line, numSets)
	for i := range cl.sets {
		dst := backing[i*c.cfg.Assoc : (i+1)*c.cfg.Assoc : (i+1)*c.cfg.Assoc]
		copy(dst, c.sets[i])
		cl.sets[i] = dst
	}
	cl.victim = make([]victimLine, len(c.victim))
	copy(cl.victim, c.victim)
	return &cl
}
