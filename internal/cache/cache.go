// Package cache implements a set-associative cache tag array with LRU
// replacement, an optional victim buffer, and per-line speculative tagging.
//
// The simulator is trace-driven, so caches track tags only (no data — the
// functional values live in the resolved trace and the memory image).
// Speculative tagging exists for SLTP's SRL-based memory system, which
// writes advance stores speculatively into the data cache and must flush
// them when a rally begins (paper §4).
package cache

import "fmt"

// Config sizes a cache.
type Config struct {
	SizeBytes     int // total capacity
	Assoc         int // ways per set
	LineBytes     int // line size (power of two)
	VictimEntries int // victim buffer entries; 0 disables it
}

// Validate checks the geometry.
func (c Config) Validate() error {
	if c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache: line size %d is not a positive power of two", c.LineBytes)
	}
	if c.Assoc <= 0 {
		return fmt.Errorf("cache: associativity %d must be positive", c.Assoc)
	}
	if c.SizeBytes <= 0 || c.SizeBytes%(c.LineBytes*c.Assoc) != 0 {
		return fmt.Errorf("cache: size %d is not a multiple of line*assoc", c.SizeBytes)
	}
	sets := c.SizeBytes / (c.LineBytes * c.Assoc)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d is not a power of two", sets)
	}
	return nil
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	spec  bool // written speculatively (SLTP SRL mode)
	used  uint64
}

// Cache is a set-associative tag array. Create with New.
type Cache struct {
	cfg       Config
	sets      [][]line
	setMask   uint64
	lineShift uint
	clock     uint64

	// Victim buffer: a fixed FIFO ring of victimCap entries (allocated
	// once in New). vHead indexes the oldest entry; vLen counts live ones.
	// Probes walk oldest to youngest, matching insertion order.
	victim    []victimLine
	vHead     int
	vLen      int
	victimCap int

	// Stats
	Hits, Misses, VictimHits uint64
}

type victimLine struct {
	lineAddr uint64
	dirty    bool
}

// victimAt returns the i-th oldest victim entry.
func (c *Cache) victimAt(i int) *victimLine {
	idx := c.vHead + i
	if idx >= c.victimCap {
		idx -= c.victimCap
	}
	return &c.victim[idx]
}

// victimRemove deletes the i-th oldest entry, preserving FIFO order of
// the rest (younger entries shift one slot older).
func (c *Cache) victimRemove(i int) {
	for ; i < c.vLen-1; i++ {
		*c.victimAt(i) = *c.victimAt(i + 1)
	}
	c.vLen--
}

// victimPush appends an entry, evicting and returning the oldest when the
// ring is full.
func (c *Cache) victimPush(v victimLine) (old victimLine, evicted bool) {
	if c.vLen == c.victimCap {
		old = *c.victimAt(0)
		evicted = true
		c.vHead = (c.vHead + 1) % c.victimCap
		c.vLen--
	}
	*c.victimAt(c.vLen) = v
	c.vLen++
	return old, evicted
}

// New builds a cache from cfg. It panics on invalid geometry, which is a
// programming error in machine configuration, not a runtime condition.
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	numSets := cfg.SizeBytes / (cfg.LineBytes * cfg.Assoc)
	sets := make([][]line, numSets)
	backing := make([]line, numSets*cfg.Assoc)
	for i := range sets {
		sets[i] = backing[i*cfg.Assoc : (i+1)*cfg.Assoc : (i+1)*cfg.Assoc]
	}
	shift := uint(0)
	for 1<<shift != cfg.LineBytes {
		shift++
	}
	return &Cache{
		cfg:       cfg,
		sets:      sets,
		setMask:   uint64(numSets - 1),
		lineShift: shift,
		victim:    make([]victimLine, cfg.VictimEntries),
		victimCap: cfg.VictimEntries,
	}
}

// LineAddr returns the line-aligned address containing addr.
func (c *Cache) LineAddr(addr uint64) uint64 { return addr &^ uint64(c.cfg.LineBytes-1) }

// LineBytes returns the configured line size.
func (c *Cache) LineBytes() int { return c.cfg.LineBytes }

func (c *Cache) set(addr uint64) []line { return c.sets[(addr>>c.lineShift)&c.setMask] }

func (c *Cache) find(addr uint64) *line {
	tag := addr >> c.lineShift
	set := c.set(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return &set[i]
		}
	}
	return nil
}

// Lookup performs an access. On a hit it updates LRU state and returns
// true. On a miss it checks the victim buffer; a victim hit re-inserts the
// line (counted in VictimHits and reported as a hit). write marks the line
// dirty on a hit.
func (c *Cache) Lookup(addr uint64, write bool) bool {
	c.clock++
	if l := c.find(addr); l != nil {
		l.used = c.clock
		if write {
			l.dirty = true
		}
		c.Hits++
		return true
	}
	// Victim buffer probe.
	la := c.LineAddr(addr)
	for i := 0; i < c.vLen; i++ {
		if v := c.victimAt(i); v.lineAddr == la {
			dirty := v.dirty
			c.victimRemove(i)
			c.insertLine(addr, dirty || write, false)
			c.VictimHits++
			c.Hits++
			return true
		}
	}
	c.Misses++
	return false
}

// Probe reports whether addr is present without updating LRU or stats.
// The victim buffer is included.
func (c *Cache) Probe(addr uint64) bool {
	if c.find(addr) != nil {
		return true
	}
	la := c.LineAddr(addr)
	for i := 0; i < c.vLen; i++ {
		if c.victimAt(i).lineAddr == la {
			return true
		}
	}
	return false
}

// Insert fills the line containing addr (e.g. on miss return). It returns
// the evicted line address and whether a valid dirty line was displaced to
// memory (after passing through the victim buffer if one is configured).
func (c *Cache) Insert(addr uint64, write bool) (evicted uint64, dirtyEvict bool) {
	return c.insertLine(addr, write, false)
}

// InsertSpeculative fills the line and tags it speculative (SLTP advance
// stores). FlushSpeculative removes all such lines.
func (c *Cache) InsertSpeculative(addr uint64) {
	c.insertLine(addr, true, true)
}

// MarkSpeculative tags an already-present line as speculatively written.
// It reports whether the line was present.
func (c *Cache) MarkSpeculative(addr uint64) bool {
	if l := c.find(addr); l != nil {
		l.spec = true
		l.dirty = true
		return true
	}
	return false
}

func (c *Cache) insertLine(addr uint64, dirty, spec bool) (evicted uint64, dirtyEvict bool) {
	tag := addr >> c.lineShift
	set := c.set(addr)
	c.clock++
	// Refill into an existing copy (MSHR merge already filled it).
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].used = c.clock
			set[i].dirty = set[i].dirty || dirty
			set[i].spec = set[i].spec || spec
			return 0, false
		}
	}
	vi := 0
	for i := range set {
		if !set[i].valid {
			vi = i
			goto fill
		}
		if set[i].used < set[vi].used {
			vi = i
		}
	}
	// Evict set[vi], optionally into the victim buffer.
	{
		evLine := set[vi].tag << c.lineShift
		evDirty := set[vi].dirty
		if c.victimCap > 0 {
			if old, ev := c.victimPush(victimLine{evLine, evDirty}); ev {
				evicted, dirtyEvict = old.lineAddr, old.dirty
			}
		} else {
			evicted, dirtyEvict = evLine, evDirty
		}
	}
fill:
	set[vi] = line{tag: tag, valid: true, dirty: dirty, spec: spec, used: c.clock}
	return evicted, dirtyEvict
}

// Invalidate removes the line containing addr if present (victim buffer
// included). It reports whether a line was removed.
func (c *Cache) Invalidate(addr uint64) bool {
	if l := c.find(addr); l != nil {
		l.valid = false
		return true
	}
	la := c.LineAddr(addr)
	for i := 0; i < c.vLen; i++ {
		if c.victimAt(i).lineAddr == la {
			c.victimRemove(i)
			return true
		}
	}
	return false
}

// FlushSpeculative invalidates every speculatively tagged line and returns
// how many were flushed. SLTP calls this at the start of each rally.
func (c *Cache) FlushSpeculative() int {
	n := 0
	for si := range c.sets {
		for i := range c.sets[si] {
			if c.sets[si][i].valid && c.sets[si][i].spec {
				c.sets[si][i].valid = false
				c.sets[si][i].spec = false
				n++
			}
		}
	}
	return n
}

// CommitSpeculative clears the speculative tag on every line, making the
// writes permanent (SLTP does this when a rally completes successfully).
func (c *Cache) CommitSpeculative() int {
	n := 0
	for si := range c.sets {
		for i := range c.sets[si] {
			if c.sets[si][i].valid && c.sets[si][i].spec {
				c.sets[si][i].spec = false
				n++
			}
		}
	}
	return n
}

// Reset invalidates the whole cache and clears statistics.
func (c *Cache) Reset() {
	for si := range c.sets {
		for i := range c.sets[si] {
			c.sets[si][i] = line{}
		}
	}
	c.vHead, c.vLen = 0, 0
	c.clock = 0
	c.Hits, c.Misses, c.VictimHits = 0, 0, 0
}
