package exp

import (
	"encoding/json"
	"fmt"
	"io"

	"icfp/internal/pipeline"
	"icfp/internal/spec"
	"icfp/internal/stats"
)

// Result is one job's outcome: the job's name, its self-describing
// machine and workload specs, and the simulation result. Exported result
// sets therefore carry everything needed to reproduce each number.
type Result struct {
	Name     string          `json:"name"`
	Machine  spec.Machine    `json:"machine"`
	Workload spec.Workload   `json:"workload"`
	R        pipeline.Result `json:"result"`
}

// ResultSet holds run results in deterministic (job submission) order and
// provides the reductions the paper's figures are built from.
type ResultSet struct {
	Results []Result `json:"results"`
}

// Len returns the number of results.
func (rs *ResultSet) Len() int { return len(rs.Results) }

// Get returns the named result.
func (rs *ResultSet) Get(name string) (Result, bool) {
	for _, r := range rs.Results {
		if r.Name == name {
			return r, true
		}
	}
	return Result{}, false
}

// MustGet returns the named result and panics if it is absent — the
// harness analogue of an out-of-range index, indicating a job-set bug.
func (rs *ResultSet) MustGet(name string) pipeline.Result {
	r, ok := rs.Get(name)
	if !ok {
		panic(fmt.Sprintf("exp: no result named %q", name))
	}
	return r.R
}

// Speedup returns the percent speedup of the named test run over the
// named base run (positive means test is faster).
func (rs *ResultSet) Speedup(test, base string) float64 {
	return rs.MustGet(test).SpeedupOver(rs.MustGet(base))
}

// SpeedupCI95 returns Speedup(test, base) together with its 95%
// half-width in percentage points, propagating both runs' sampling CIs
// through the CPI ratio (relative half-widths add in quadrature; see
// stats.RatioCI95). Full runs carry zero CIs, so their half-width is 0
// and the speedup value itself always matches Speedup exactly.
func (rs *ResultSet) SpeedupCI95(test, base string) (speedupPct, ciPct float64) {
	t, b := rs.MustGet(test), rs.MustGet(base)
	_, ci := stats.RatioCI95(b.CPI(), b.SampleCPICI95, t.CPI(), t.SampleCPICI95)
	return t.SpeedupOver(b), ci * 100
}

// GeoMeanSpeedup returns the geometric-mean percent speedup over a list
// of (test, base) result-name pairs — the reduction behind every
// "geomean" row in the paper's figures.
func (rs *ResultSet) GeoMeanSpeedup(pairs [][2]string) float64 {
	ratios := make([]float64, 0, len(pairs))
	for _, p := range pairs {
		ratios = append(ratios, float64(rs.MustGet(p[1]).Cycles)/float64(rs.MustGet(p[0]).Cycles))
	}
	return (stats.GeoMean(ratios) - 1) * 100
}

// GeoMeanPercent folds per-item percent speedups into their geometric
// mean, for callers that already reduced to percentages.
func GeoMeanPercent(speedups []float64) float64 {
	ratios := make([]float64, 0, len(speedups))
	for _, s := range speedups {
		ratios = append(ratios, 1+s/100)
	}
	return (stats.GeoMean(ratios) - 1) * 100
}

// WriteJSON writes the result set as indented JSON.
func (rs *ResultSet) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rs)
}

// ReadJSON parses a result set previously written by WriteJSON.
func ReadJSON(r io.Reader) (*ResultSet, error) {
	var rs ResultSet
	if err := json.NewDecoder(r).Decode(&rs); err != nil {
		return nil, fmt.Errorf("exp: decoding result set: %w", err)
	}
	return &rs, nil
}
