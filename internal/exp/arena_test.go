package exp_test

import (
	"sync"
	"testing"

	"icfp/internal/exp"
	"icfp/internal/sim"
	"icfp/internal/spec"
	"icfp/internal/workload"
)

// TestArenaGeneratesOncePerKey pins the arena contract: one generation
// per distinct workload spec, even under concurrent Get.
func TestArenaGeneratesOncePerKey(t *testing.T) {
	a := exp.NewArena()
	wl := spec.ScenarioWorkload(workload.ScenarioLoneL2)
	var wg sync.WaitGroup
	got := make([]*workload.Workload, 8)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = a.Get(wl)
		}(i)
	}
	wg.Wait()
	if a.Generations() != 1 {
		t.Errorf("8 concurrent Gets generated %d times, want 1", a.Generations())
	}
	for i := 1; i < len(got); i++ {
		if got[i] != got[0] {
			t.Error("all Gets of one spec must return the same workload")
		}
	}
	a.Get(spec.ScenarioWorkload(workload.ScenarioChains))
	if a.Generations() != 2 {
		t.Errorf("distinct specs: %d generations, want 2", a.Generations())
	}
	// Equal specs built separately still share one generation.
	a.Get(spec.ScenarioWorkload(workload.ScenarioLoneL2))
	if a.Generations() != 2 {
		t.Errorf("re-Get of an equal spec regenerated: %d generations, want 2", a.Generations())
	}
}

// TestWorkloadImmutableAcrossModels pins the invariant that makes arena
// sharing sound: running every machine of the evaluation over one shared
// workload leaves the trace and the memory image bit-identical. If any
// model ever starts writing either, this fails and the arena must go.
func TestWorkloadImmutableAcrossModels(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates all five machines")
	}
	cfg := sim.DefaultConfig()
	cfg.WarmupInsts = 10_000
	w := workload.SPEC("mcf", cfg.WarmupInsts+40_000)

	traceSum := w.Trace.Checksum()
	memSum := w.Mem.Checksum()
	pages := w.Mem.PageCount()

	for _, m := range sim.AllModels {
		sim.Run(m, cfg, w)
		if got := w.Trace.Checksum(); got != traceSum {
			t.Fatalf("%s mutated the shared trace: checksum %#x != %#x", m, got, traceSum)
		}
		if got := w.Mem.Checksum(); got != memSum {
			t.Fatalf("%s mutated the shared memory image: checksum %#x != %#x", m, got, memSum)
		}
		if got := w.Mem.PageCount(); got != pages {
			t.Fatalf("%s materialized pages in the shared image: %d != %d", m, got, pages)
		}
	}

	// The shared workload also yields the same results as a private one —
	// sharing must be invisible.
	private := workload.SPEC("mcf", cfg.WarmupInsts+40_000)
	for _, m := range []sim.Model{sim.InOrder, sim.ICFP} {
		a := sim.Run(m, cfg, w)
		b := sim.Run(m, cfg, private)
		if a.Cycles != b.Cycles {
			t.Errorf("%s: shared workload %d cycles, private %d", m, a.Cycles, b.Cycles)
		}
	}
}
