package exp_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"icfp/internal/exp"
	"icfp/internal/pipeline"
	"icfp/internal/sim"
	"icfp/internal/workload"
)

// TestArenaGeneratesOncePerKey pins the arena contract: one generation
// per distinct key, even under concurrent Get.
func TestArenaGeneratesOncePerKey(t *testing.T) {
	var gens atomic.Int64
	spec := func(key string) exp.WorkloadSpec {
		return exp.WorkloadSpec{
			Key: key,
			New: func() *workload.Workload {
				gens.Add(1)
				return &workload.Workload{Name: key}
			},
		}
	}
	a := exp.NewArena()
	var wg sync.WaitGroup
	got := make([]*workload.Workload, 8)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = a.Get(spec("k1"))
		}(i)
	}
	wg.Wait()
	if gens.Load() != 1 {
		t.Errorf("8 concurrent Gets generated %d times, want 1", gens.Load())
	}
	for i := 1; i < len(got); i++ {
		if got[i] != got[0] {
			t.Error("all Gets of one key must return the same workload")
		}
	}
	a.Get(spec("k2"))
	if gens.Load() != 2 || a.Generations() != 2 {
		t.Errorf("distinct keys: %d generations (arena says %d), want 2", gens.Load(), a.Generations())
	}
}

// witnessRunner records which workload pointer each simulation received.
type witnessRunner struct {
	mu   *sync.Mutex
	seen *[]*workload.Workload
}

func (r witnessRunner) Run(w *workload.Workload) pipeline.Result {
	r.mu.Lock()
	*r.seen = append(*r.seen, w)
	r.mu.Unlock()
	return pipeline.Result{Name: w.Name, Cycles: 1, Insts: 1}
}

// TestRunSharesWorkloadsWithinRun pins that exp.Run routes every job
// through one arena: distinct simulations with equal workload keys see
// the same workload pointer.
func TestRunSharesWorkloadsWithinRun(t *testing.T) {
	var gens atomic.Int64
	wl := exp.WorkloadSpec{
		Key: "shared",
		New: func() *workload.Workload {
			gens.Add(1)
			return &workload.Workload{Name: "shared"}
		},
	}
	var mu sync.Mutex
	var seen []*workload.Workload
	jobs := make([]exp.Job, 0, 4)
	for _, m := range []string{"m1", "m2", "m3", "m4"} {
		jobs = append(jobs, exp.Job{
			Name: "j/" + m, Machine: m, Workload: wl,
			Make: func(pipeline.Config) exp.Runner { return witnessRunner{mu: &mu, seen: &seen} },
		})
	}
	if _, err := exp.Run(jobs, exp.Parallelism(2)); err != nil {
		t.Fatal(err)
	}
	if gens.Load() != 1 {
		t.Errorf("4 jobs over one key generated %d workloads, want 1", gens.Load())
	}
	if len(seen) != 4 {
		t.Fatalf("expected 4 simulations, saw %d", len(seen))
	}
	for _, w := range seen[1:] {
		if w != seen[0] {
			t.Error("jobs sharing a key must receive the same workload pointer")
		}
	}
}

// TestWorkloadImmutableAcrossModels pins the invariant that makes arena
// sharing sound: running every machine of the evaluation over one shared
// workload leaves the trace and the memory image bit-identical. If any
// model ever starts writing either, this fails and the arena must go.
func TestWorkloadImmutableAcrossModels(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates all five machines")
	}
	cfg := sim.DefaultConfig()
	cfg.WarmupInsts = 10_000
	w := workload.SPEC("mcf", cfg.WarmupInsts+40_000)

	traceSum := w.Trace.Checksum()
	memSum := w.Mem.Checksum()
	pages := w.Mem.PageCount()

	for _, m := range sim.AllModels {
		sim.Run(m, cfg, w)
		if got := w.Trace.Checksum(); got != traceSum {
			t.Fatalf("%s mutated the shared trace: checksum %#x != %#x", m, got, traceSum)
		}
		if got := w.Mem.Checksum(); got != memSum {
			t.Fatalf("%s mutated the shared memory image: checksum %#x != %#x", m, got, memSum)
		}
		if got := w.Mem.PageCount(); got != pages {
			t.Fatalf("%s materialized pages in the shared image: %d != %d", m, got, pages)
		}
	}

	// The shared workload also yields the same results as a private one —
	// sharing must be invisible.
	private := workload.SPEC("mcf", cfg.WarmupInsts+40_000)
	for _, m := range []sim.Model{sim.InOrder, sim.ICFP} {
		a := sim.Run(m, cfg, w)
		b := sim.Run(m, cfg, private)
		if a.Cycles != b.Cycles {
			t.Errorf("%s: shared workload %d cycles, private %d", m, a.Cycles, b.Cycles)
		}
	}
}
