package exp_test

import (
	"fmt"

	"icfp/internal/exp"
	"icfp/internal/spec"
)

// ExampleCache shows the memoization contract: jobs with equal canonical
// (machine, workload) specs simulate once no matter how often they are
// named, the cache spans Run calls when shared through WithCache, and
// Lookup retrieves a completed result by its key.
func ExampleCache() {
	warm := &spec.Overrides{Warmup: spec.Int(0)} // scenarios pre-warm explicitly
	jobs := []exp.Job{
		{
			Name:     "baseline",
			Machine:  spec.Machine{Model: spec.ModelInOrder, Overrides: warm},
			Workload: spec.Workload{Scenario: "a-lone-l2"},
		},
		{
			// A different name for the same simulation: shares the key,
			// so it costs nothing extra.
			Name:     "baseline-again",
			Machine:  spec.Machine{Model: spec.ModelInOrder, Overrides: warm},
			Workload: spec.Workload{Scenario: "a-lone-l2"},
		},
	}

	cache := exp.NewCache()
	if _, err := exp.Run(jobs, exp.WithCache(cache)); err != nil {
		fmt.Println("run:", err)
		return
	}
	fmt.Println("simulations after first run:", cache.Simulations())

	// A second run over the same cache is answered entirely from memo.
	if _, err := exp.Run(jobs, exp.WithCache(cache)); err != nil {
		fmt.Println("run:", err)
		return
	}
	fmt.Println("simulations after second run:", cache.Simulations())

	_, ok := cache.Lookup(jobs[0].Key())
	fmt.Println("result cached:", ok)
	// Output:
	// simulations after first run: 1
	// simulations after second run: 1
	// result cached: true
}
