package exp_test

import (
	"bytes"
	"fmt"
	"math"
	"testing"
	"time"

	"icfp/internal/exp"
	"icfp/internal/sim"
	"icfp/internal/spec"
)

// TestSampledDegenerateIsFullIdentity pins the canonical-identity rule:
// a sampling policy with no effect (period == interval, no warmup — it
// measures every instruction) canonicalizes away, so the job shares the
// full run's cache key, simulates once, and returns the identical
// result. This is what keeps every pre-sampling cache file, golden, and
// dist identity valid.
func TestSampledDegenerateIsFullIdentity(t *testing.T) {
	full := exp.Job{Name: "full", Machine: sim.ICFP.Spec(), Workload: spec.SPECWorkload("mcf", 20_000)}
	deg := full
	deg.Name = "deg"
	deg.Workload.Sampling = &spec.Sampling{Mode: spec.ModeSampled, Interval: 4_000, Period: 4_000}
	if full.Key() != deg.Key() {
		t.Fatalf("degenerate sampled key differs from full:\n%v\n%v", deg.Key(), full.Key())
	}
	explicit := full
	explicit.Name = "explicit"
	explicit.Workload.Sampling = &spec.Sampling{Mode: spec.ModeFull}
	if full.Key() != explicit.Key() {
		t.Fatal("explicit full-mode policy must share the bare workload's key")
	}

	cache := exp.NewCache()
	rs, err := exp.Run([]exp.Job{full, deg, explicit}, exp.WithCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	if got := cache.Simulations(); got != 1 {
		t.Fatalf("three spellings of one identity simulated %d times, want 1", got)
	}
	if rs.MustGet("full") != rs.MustGet("deg") || rs.MustGet("full") != rs.MustGet("explicit") {
		t.Fatal("degenerate sampled result differs from the full run")
	}
}

// TestSampledRunAllModels pins the harness dispatch seam: a live sampled
// workload reaches every model's RunSampled path and comes back carrying
// sampling statistics, while the full run of the same benchmark carries
// none — and both share one generated workload (and with it the
// warmed-state checkpoint store) through the arena.
func TestSampledRunAllModels(t *testing.T) {
	const n = 30_000
	warm := &spec.Overrides{Warmup: spec.Int(2_000)}
	wl := spec.SPECWorkload("mcf", n)
	swl := wl
	swl.Sampling = &spec.Sampling{Mode: spec.ModeSampled, Interval: 1_000, Period: 7_000}

	cache := exp.NewCache()
	arena := exp.NewArena()
	var jobs []exp.Job
	for _, m := range spec.Models {
		mach := spec.Machine{Model: m, Overrides: warm}
		jobs = append(jobs,
			exp.Job{Name: m + "/full", Machine: mach, Workload: wl},
			exp.Job{Name: m + "/sampled", Machine: mach, Workload: swl})
	}
	rs, err := exp.Run(jobs, exp.WithCache(cache), exp.WithArena(arena))
	if err != nil {
		t.Fatal(err)
	}
	if got := cache.Simulations(); got != 2*len(spec.Models) {
		t.Fatalf("simulated %d, want %d (sampled and full are distinct identities)", got, 2*len(spec.Models))
	}
	if got := arena.Generations(); got != 1 {
		t.Fatalf("generated %d workloads, want 1 (sampled and full share the base workload)", got)
	}
	for _, m := range spec.Models {
		f, s := rs.MustGet(m+"/full"), rs.MustGet(m+"/sampled")
		if f.SampleIntervals != 0 || f.SampleCPICI95 != 0 {
			t.Errorf("%s: full run carries sampling statistics: %+v", m, f)
		}
		if s.SampleIntervals < 2 {
			t.Errorf("%s: sampled run measured %d intervals, want >= 2", m, s.SampleIntervals)
		}
		if s.Insts >= f.Insts {
			t.Errorf("%s: sampled run measured %d insts, full %d; sampling must measure less", m, s.Insts, f.Insts)
		}
		if f.CPI() <= 0 || s.CPI() <= 0 {
			t.Fatalf("%s: non-positive CPI (full %v, sampled %v)", m, f.CPI(), s.CPI())
		}
		// A loose sanity band; the tight accuracy claim is pinned on a
		// long workload below, where sampling theory actually applies.
		if relErr := math.Abs(s.CPI()-f.CPI()) / f.CPI(); relErr > 0.25 {
			t.Errorf("%s: sampled CPI %v vs full %v (%.1f%% off)", m, s.CPI(), f.CPI(), 100*relErr)
		}
	}
}

// TestLegacyV2SnapshotLoads pins schema compatibility: a v2 cache file
// written before sampling existed (its results lack the additive
// SampleIntervals/SampleCPICI95 fields) still loads, and the new fields
// read zero — exactly the "additive fields only within a version" rule
// docs/ARCHITECTURE.md commits to.
func TestLegacyV2SnapshotLoads(t *testing.T) {
	mkey := spec.Machine{Model: spec.ModelInOrder}.Canonical()
	wkey := spec.SPECWorkload("mcf", 1000).Canonical()
	legacy := fmt.Sprintf(
		`{"version":2,"entries":[{"machine":%q,"workload":%q,"result":{"Name":"mcf","Cycles":2000,"Insts":1000},"elapsed_ns":7}]}`,
		mkey, wkey)

	entries, err := exp.ReadSnapshot(bytes.NewReader([]byte(legacy)))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("loaded %d entries, want 1", len(entries))
	}
	c := exp.NewCache()
	c.AddResults(entries)
	r, ok := c.Lookup(exp.Key{Machine: mkey, Workload: wkey})
	if !ok {
		t.Fatal("legacy entry not reachable under its canonical key")
	}
	if r.Cycles != 2000 || r.Insts != 1000 {
		t.Fatalf("legacy result corrupted: %+v", r)
	}
	if r.SampleIntervals != 0 || r.SampleCPICI95 != 0 {
		t.Fatalf("legacy result invented sampling statistics: %+v", r)
	}
}

// TestSampledSpeedupAndAccuracy is the acceptance run: on a workload two
// orders of magnitude past the unit-test norm, sampled mode must beat
// full simulation by >= 10x wall clock on every model while estimating
// CPI within 1% — and within its own reported 95% interval, the
// statistical-honesty bar the harness exists to enforce.
//
// The warm-state checkpoint store is pre-populated by one untimed
// sampled run, mirroring a registry sweep: the arena shares the workload
// (and its attached checkpoints) across all jobs, so only the first run
// pays trace-replay warming and every later model clones.
func TestSampledSpeedupAndAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second acceptance run")
	}
	const n = 12_000_000
	full := spec.SPECWorkload("mcf", n)
	sampled := full
	// The ramp dominates each window's detailed stretch: the speculative
	// models' episodes perturb long-lived L2 state (wrong-path pollution
	// and prefetch benefit) that functional warming cannot recreate, and
	// the resulting transient takes tens of thousands of detailed
	// instructions to die out. A 60k ramp ahead of each 20k measured
	// interval keeps per-model bias under ~0.5% while twelve windows give
	// the CI honest width; the period keeps the detailed fraction at 8%,
	// leaving the >= 10x speedup margin. The seed picks one fixed
	// stratified-random placement (the run is deterministic either way).
	sampled.Sampling = &spec.Sampling{Mode: spec.ModeSampled, Interval: 20_000, Period: 1_000_000, Ramp: 60_000, Seed: 3}

	arena := exp.NewArena()
	w := arena.Get(sampled) // shared with the full jobs: sampling is not part of the base identity
	pol := sampled.Sampling.Policy()

	newMachine := func(model string) spec.SampledRunner {
		r, err := spec.Machine{Model: model}.New()
		if err != nil {
			t.Fatal(err)
		}
		return r.(spec.SampledRunner)
	}
	// Untimed warm-store population.
	newMachine(spec.ModelInOrder).RunSampled(w, pol)

	for _, m := range spec.Models {
		t0 := time.Now()
		fres := newMachine(m).Run(w)
		tFull := time.Since(t0)
		t0 = time.Now()
		sres := newMachine(m).RunSampled(w, pol)
		tSampled := time.Since(t0)

		speedup := float64(tFull) / float64(tSampled)
		cpiErr := math.Abs(sres.CPI() - fres.CPI())
		relErr := cpiErr / fres.CPI()
		t.Logf("%-10s full %8v  sampled %8v  (%5.1fx)  CPI %.4f vs %.4f ±%.4f (%.3f%% off, %d windows)",
			m, tFull.Round(time.Millisecond), tSampled.Round(time.Millisecond), speedup,
			sres.CPI(), fres.CPI(), sres.SampleCPICI95, 100*relErr, sres.SampleIntervals)
		if speedup < 10 {
			t.Errorf("%s: sampled speedup %.1fx, want >= 10x", m, speedup)
		}
		if relErr > 0.01 {
			t.Errorf("%s: sampled CPI %.4f vs full %.4f: %.3f%% error, want <= 1%%", m, sres.CPI(), fres.CPI(), 100*relErr)
		}
		if cpiErr > sres.SampleCPICI95 {
			t.Errorf("%s: CPI error %.5f outside the reported 95%% interval ±%.5f", m, cpiErr, sres.SampleCPICI95)
		}
	}
}
