package exp_test

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"icfp/internal/exp"
	"icfp/internal/sim"
	"icfp/internal/spec"
	"icfp/internal/workload"
)

// scenarioJobs is a small all-real job set: every Figure 1 scenario on
// every machine.
func scenarioJobs() []exp.Job {
	cfg := sim.DefaultConfig()
	cfg.WarmupInsts = 0
	var jobs []exp.Job
	for _, sc := range workload.AllScenarios {
		for _, m := range sim.AllModels {
			jobs = append(jobs, sim.Job(string(sc)+"/"+m.String(), m, cfg, spec.ScenarioWorkload(sc)))
		}
	}
	return jobs
}

func TestRunDeterministicAcrossParallelism(t *testing.T) {
	serial, err := exp.Run(scenarioJobs(), exp.Parallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := exp.Run(scenarioJobs(), exp.Parallelism(8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Error("result sets differ between -parallel 1 and -parallel 8")
	}
}

func TestRunRejectsMalformedJobs(t *testing.T) {
	good := scenarioJobs()[0]
	badMachine := good
	badMachine.Machine.Model = "not-a-model"
	badWorkload := good
	badWorkload.Workload = spec.Workload{SPEC: "mcf", Scenario: "a-lone-l2"}
	noName := good
	noName.Name = ""
	for _, tc := range []struct {
		name string
		jobs []exp.Job
	}{
		{"duplicate names", []exp.Job{good, good}},
		{"empty name", []exp.Job{noName}},
		{"invalid machine spec", []exp.Job{badMachine}},
		{"invalid workload spec", []exp.Job{badWorkload}},
	} {
		if _, err := exp.Run(tc.jobs); err == nil {
			t.Errorf("%s: Run succeeded, want error", tc.name)
		}
		if _, err := exp.Plan(tc.jobs); err == nil {
			t.Errorf("%s: Plan succeeded, want error", tc.name)
		}
	}
}

// TestCanonicalKeysSeparateConfigs pins the new cache identity: keys are
// canonical spec encodings, so jobs differing in any override (top-level
// or nested) get distinct keys, and identical specs share one.
func TestCanonicalKeysSeparateConfigs(t *testing.T) {
	base := exp.Job{Machine: sim.ICFP.Spec(), Workload: spec.SPECWorkload("mcf", 1000)}
	same := exp.Job{Machine: sim.ICFP.Spec(), Workload: spec.SPECWorkload("mcf", 1000)}
	if base.Key() != same.Key() {
		t.Error("equal specs must share a key")
	}
	poison := base
	poison.Machine.Overrides = &spec.Overrides{PoisonBits: spec.Int(1)}
	if base.Key() == poison.Key() {
		t.Error("jobs differing in PoisonBits must not share a key")
	}
	lat := base
	lat.Machine.Overrides = &spec.Overrides{L2HitLat: spec.Int(21)}
	if base.Key() == lat.Key() || poison.Key() == lat.Key() {
		t.Error("jobs differing in hierarchy overrides must not share a key")
	}
	wl := base
	wl.Workload = spec.SPECWorkload("mcf", 1001)
	if base.Key() == wl.Key() {
		t.Error("jobs differing in workload length must not share a key")
	}
}

func TestResultSetJSONRoundTrip(t *testing.T) {
	rs, err := exp.Run(scenarioJobs()[:10], exp.Parallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rs.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := exp.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rs, back) {
		t.Error("result set changed across a JSON round trip")
	}
}

func TestResultSetReductions(t *testing.T) {
	jobs := scenarioJobs()
	rs, err := exp.Run(jobs[:4], exp.Parallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	a, b := jobs[0].Name, jobs[1].Name
	want := rs.MustGet(a).SpeedupOver(rs.MustGet(b))
	if sp := rs.Speedup(a, b); sp != want {
		t.Errorf("Speedup = %.3f%%, want %.3f%%", sp, want)
	}
	geo := rs.GeoMeanSpeedup([][2]string{{a, b}, {a, b}})
	ratio := float64(rs.MustGet(b).Cycles) / float64(rs.MustGet(a).Cycles)
	if wantGeo := (ratio - 1) * 100; geo < wantGeo-1e-9 || geo > wantGeo+1e-9 {
		t.Errorf("GeoMeanSpeedup = %.6f%%, want %.6f%%", geo, wantGeo)
	}
	if g := exp.GeoMeanPercent([]float64{100, 100}); g != 100 {
		t.Errorf("GeoMeanPercent = %.1f%%, want +100%%", g)
	}
	if _, ok := rs.Get("missing"); ok {
		t.Error("Get of a missing name must report absence")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustGet of a missing name must panic")
			}
		}()
		rs.MustGet("missing")
	}()
}

func TestJobNamesIndexResults(t *testing.T) {
	jobs := scenarioJobs()
	rs, err := exp.Run(jobs, exp.Parallelism(3))
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != len(jobs) {
		t.Fatalf("results = %d, want %d", rs.Len(), len(jobs))
	}
	for i, j := range jobs {
		if rs.Results[i].Name != j.Name {
			t.Fatalf("result %d is %q, want job order preserved (%q)", i, rs.Results[i].Name, j.Name)
		}
		if !reflect.DeepEqual(rs.Results[i].Workload, j.Workload) {
			t.Fatalf("result %d workload %+v, want %+v", i, rs.Results[i].Workload, j.Workload)
		}
	}
}

// TestRunCancel pins the drain contract behind elastic worker leaves: a
// canceled run stops simulating, returns ErrCanceled, and leaves the
// shared cache consistent (no torn entries) for whatever did complete.
func TestRunCancel(t *testing.T) {
	jobs := scenarioJobs()[:4]
	cache := exp.NewCache()

	// Canceled before it starts: nothing simulates.
	canceled := make(chan struct{})
	close(canceled)
	_, err := exp.Run(jobs, exp.WithCache(cache), exp.Cancel(canceled))
	if !errors.Is(err, exp.ErrCanceled) {
		t.Fatalf("pre-canceled run error = %v, want ErrCanceled", err)
	}
	if got := cache.Simulations(); got != 0 {
		t.Errorf("pre-canceled run simulated %d jobs, want 0", got)
	}

	// An open cancel channel changes nothing.
	open := make(chan struct{})
	if _, err := exp.Run(jobs, exp.WithCache(cache), exp.Cancel(open)); err != nil {
		t.Fatalf("run with an open cancel channel: %v", err)
	}
	if got := cache.Simulations(); got != len(jobs) {
		t.Errorf("run simulated %d jobs, want %d", got, len(jobs))
	}
}
