package exp_test

import (
	"bytes"
	"fmt"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"icfp/internal/exp"
	"icfp/internal/pipeline"
	"icfp/internal/sim"
	"icfp/internal/workload"
)

// stubRunner returns a canned result and counts its runs, letting engine
// tests observe exactly how many simulations happen.
type stubRunner struct {
	cycles int64
	runs   *atomic.Int64
}

func (s stubRunner) Run(*workload.Workload) pipeline.Result {
	s.runs.Add(1)
	return pipeline.Result{Name: "stub", Cycles: s.cycles, Insts: 100}
}

// stubJob builds a job whose machine is a counting stub. Jobs sharing a
// machine label, config, and workload key share a cache key.
func stubJob(name, machine, wkey string, cycles int64, runs *atomic.Int64) exp.Job {
	return exp.Job{
		Name:    name,
		Machine: machine,
		Config:  pipeline.DefaultConfig(),
		Make: func(pipeline.Config) exp.Runner {
			return stubRunner{cycles: cycles, runs: runs}
		},
		Workload: exp.WorkloadSpec{
			Key: wkey,
			New: func() *workload.Workload { return &workload.Workload{Name: wkey} },
		},
	}
}

func TestRunMemoizesEqualKeys(t *testing.T) {
	var runs atomic.Int64
	jobs := []exp.Job{
		stubJob("a", "m1", "w1", 100, &runs),
		stubJob("b", "m1", "w1", 100, &runs), // same key as a
		stubJob("c", "m2", "w1", 200, &runs), // different machine
		stubJob("d", "m1", "w2", 300, &runs), // different workload
	}
	hooks := 0
	rs, err := exp.Run(jobs, exp.Parallelism(4), exp.OnRun(func(exp.Key) { hooks++ }))
	if err != nil {
		t.Fatal(err)
	}
	if got := runs.Load(); got != 3 {
		t.Errorf("simulations = %d, want 3 (jobs a and b share a key)", got)
	}
	if hooks != 3 {
		t.Errorf("OnRun fired %d times, want 3", hooks)
	}
	if rs.MustGet("a").Cycles != 100 || rs.MustGet("b").Cycles != 100 ||
		rs.MustGet("c").Cycles != 200 || rs.MustGet("d").Cycles != 300 {
		t.Errorf("wrong results: %+v", rs.Results)
	}
}

// slowRunner blocks until released, forcing concurrent duplicate-key
// jobs onto the engine's deferred path (workers must not park on an
// in-flight key; they defer it and keep draining the queue).
type slowRunner struct {
	release <-chan struct{}
	runs    *atomic.Int64
}

func (s slowRunner) Run(*workload.Workload) pipeline.Result {
	s.runs.Add(1)
	<-s.release
	return pipeline.Result{Name: "slow", Cycles: 7, Insts: 1}
}

func TestRunDefersInFlightDuplicates(t *testing.T) {
	var runs atomic.Int64
	release := make(chan struct{})
	var fastRuns atomic.Int64
	slow := func(name string) exp.Job {
		j := stubJob(name, "slow", "w-slow", 7, &fastRuns)
		j.Make = func(pipeline.Config) exp.Runner { return slowRunner{release: release, runs: &runs} }
		return j
	}
	jobs := []exp.Job{slow("s1"), slow("s2"), slow("s3")}
	for i := 0; i < 8; i++ {
		jobs = append(jobs, stubJob(fmt.Sprintf("f%d", i), "fast", fmt.Sprintf("w%d", i), int64(i), &fastRuns))
	}
	done := make(chan *exp.ResultSet, 1)
	go func() {
		rs, err := exp.Run(jobs, exp.Parallelism(2))
		if err != nil {
			t.Error(err)
		}
		done <- rs
	}()
	// With 2 workers and the slow key claimed, the remaining worker (and
	// the one that dequeues s2/s3) must still drain every fast job
	// before the slow simulation is released.
	deadline := time.Now().Add(10 * time.Second)
	for fastRuns.Load() < 8 {
		if time.Now().After(deadline) {
			close(release)
			t.Fatal("fast jobs did not drain while the slow key was in flight (worker parked on a duplicate?)")
		}
		runtime.Gosched()
	}
	close(release)
	rs := <-done
	if runs.Load() != 1 {
		t.Errorf("slow key simulated %d times, want 1", runs.Load())
	}
	for _, name := range []string{"s1", "s2", "s3"} {
		if rs.MustGet(name).Cycles != 7 {
			t.Errorf("%s: cycles = %d, want 7", name, rs.MustGet(name).Cycles)
		}
	}
}

func TestRunSharedCacheAcrossRuns(t *testing.T) {
	var runs atomic.Int64
	cache := exp.NewCache()
	for i := 0; i < 3; i++ {
		if _, err := exp.Run([]exp.Job{stubJob("a", "m1", "w1", 1, &runs)}, exp.WithCache(cache)); err != nil {
			t.Fatal(err)
		}
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("simulations across 3 cached runs = %d, want 1", got)
	}
	if cache.Simulations() != 1 {
		t.Errorf("cache.Simulations() = %d, want 1", cache.Simulations())
	}
	k := stubJob("a", "m1", "w1", 1, &runs).Key()
	if cache.SimulationsFor(k) != 1 {
		t.Errorf("SimulationsFor(%v) = %d, want 1", k, cache.SimulationsFor(k))
	}
}

func TestRunRejectsMalformedJobs(t *testing.T) {
	var runs atomic.Int64
	good := stubJob("a", "m1", "w1", 1, &runs)
	for _, tc := range []struct {
		name string
		jobs []exp.Job
	}{
		{"duplicate names", []exp.Job{good, stubJob("a", "m2", "w2", 1, &runs)}},
		{"empty name", []exp.Job{stubJob("", "m1", "w1", 1, &runs)}},
		{"nil constructor", []exp.Job{{Name: "x", Machine: "m", Workload: good.Workload}}},
		{"nil workload factory", []exp.Job{{Name: "x", Machine: "m", Make: good.Make}}},
	} {
		if _, err := exp.Run(tc.jobs); err == nil {
			t.Errorf("%s: Run succeeded, want error", tc.name)
		}
	}
	if runs.Load() != 0 {
		t.Errorf("malformed job sets must not simulate; ran %d", runs.Load())
	}
}

func TestFingerprintSeparatesConfigs(t *testing.T) {
	a := pipeline.DefaultConfig()
	b := a
	if exp.Fingerprint(a) != exp.Fingerprint(b) {
		t.Error("equal configs must share a fingerprint")
	}
	b.PoisonBits = 1
	if exp.Fingerprint(a) == exp.Fingerprint(b) {
		t.Error("configs differing in PoisonBits must not share a fingerprint")
	}
	c := a
	c.Hier.L2HitLat++
	if exp.Fingerprint(a) == exp.Fingerprint(c) {
		t.Error("configs differing in nested hierarchy fields must not share a fingerprint")
	}
}

// scenarioJobs is a small all-real job set: every Figure 1 scenario on
// every machine.
func scenarioJobs() []exp.Job {
	cfg := sim.DefaultConfig()
	cfg.WarmupInsts = 0
	var jobs []exp.Job
	for _, sc := range workload.AllScenarios {
		for _, m := range sim.AllModels {
			jobs = append(jobs, sim.Job(string(sc)+"/"+m.String(), m, cfg, exp.ScenarioWorkload(sc)))
		}
	}
	return jobs
}

func TestRunDeterministicAcrossParallelism(t *testing.T) {
	serial, err := exp.Run(scenarioJobs(), exp.Parallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := exp.Run(scenarioJobs(), exp.Parallelism(8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Error("result sets differ between -parallel 1 and -parallel 8")
	}
}

func TestResultSetJSONRoundTrip(t *testing.T) {
	rs, err := exp.Run(scenarioJobs()[:10], exp.Parallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rs.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := exp.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rs, back) {
		t.Error("result set changed across a JSON round trip")
	}
}

func TestResultSetReductions(t *testing.T) {
	var runs atomic.Int64
	rs, err := exp.Run([]exp.Job{
		stubJob("base", "m-base", "w", 200, &runs),
		stubJob("test", "m-test", "w", 100, &runs),
	})
	if err != nil {
		t.Fatal(err)
	}
	if sp := rs.Speedup("test", "base"); sp != 100 {
		t.Errorf("Speedup = %.1f%%, want +100%%", sp)
	}
	if geo := rs.GeoMeanSpeedup([][2]string{{"test", "base"}, {"test", "base"}}); geo != 100 {
		t.Errorf("GeoMeanSpeedup = %.1f%%, want +100%%", geo)
	}
	if geo := exp.GeoMeanPercent([]float64{100, 100}); geo != 100 {
		t.Errorf("GeoMeanPercent = %.1f%%, want +100%%", geo)
	}
	if _, ok := rs.Get("missing"); ok {
		t.Error("Get of a missing name must report absence")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustGet of a missing name must panic")
			}
		}()
		rs.MustGet("missing")
	}()
}

func TestJobNamesIndexResults(t *testing.T) {
	jobs := scenarioJobs()
	rs, err := exp.Run(jobs, exp.Parallelism(3))
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != len(jobs) {
		t.Fatalf("results = %d, want %d", rs.Len(), len(jobs))
	}
	for i, j := range jobs {
		if rs.Results[i].Name != j.Name {
			t.Fatalf("result %d is %q, want job order preserved (%q)", i, rs.Results[i].Name, j.Name)
		}
		if rs.Results[i].Workload != j.Workload.Key {
			t.Fatalf("result %d workload %q, want %q", i, rs.Results[i].Workload, j.Workload.Key)
		}
	}
}
