package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"icfp/internal/pipeline"
)

// SnapshotVersion identifies the cache-file schema this build reads and
// writes. Version 2 keys entries by canonical machine/workload specs
// (spec.Canonical); the unversioned pre-spec schema keyed entries by a
// machine label and an opaque configuration fingerprint, which cannot be
// re-keyed — loading one yields a SnapshotVersionError so callers can
// warn and regenerate instead of failing or silently mixing identities.
const SnapshotVersion = 2

// SnapshotVersionError reports a cache file written under a different
// schema version than this build understands.
type SnapshotVersionError struct {
	Got, Want int
}

func (e *SnapshotVersionError) Error() string {
	if e.Got == 0 {
		return fmt.Sprintf("exp: cache snapshot uses the unversioned fingerprint-keyed schema; this build keys on canonical specs (v%d)", e.Want)
	}
	return fmt.Sprintf("exp: cache snapshot schema v%d, this build reads v%d", e.Got, e.Want)
}

// CachedResult is one completed simulation in a persisted cache file:
// the full memoization key (canonical machine and workload specs) plus
// its result. Simulations are deterministic pure functions of the key,
// which is what makes reloading them in a later process sound.
//
// ElapsedNS records the simulation's wall time. Unlike the result it is
// not deterministic — it describes the machine that ran the simulation,
// not the simulation — and exists only to seed dispatch-time cost models
// (internal/dist): zero means "unmeasured" and is always safe. The field
// is additive and optional, so schema v2 readers old and new interchange
// freely (see the versioning rules in docs/ARCHITECTURE.md).
type CachedResult struct {
	Machine   string          `json:"machine"`
	Workload  string          `json:"workload"`
	R         pipeline.Result `json:"result"`
	ElapsedNS int64           `json:"elapsed_ns,omitempty"`
}

// cacheFile is the on-disk layout of a persisted cache.
type cacheFile struct {
	Version int            `json:"version"`
	Entries []CachedResult `json:"entries"`
}

// Snapshot returns every completed cache entry in deterministic
// (machine, workload) order. In-flight entries are skipped: a snapshot
// taken concurrently with a run captures only finished work.
func (c *Cache) Snapshot() []CachedResult {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]CachedResult, 0, len(c.entries))
	for k, e := range c.entries {
		select {
		case <-e.done:
			out = append(out, CachedResult{Machine: k.Machine, Workload: k.Workload, R: e.res, ElapsedNS: int64(e.elapsed)})
		default:
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Machine != b.Machine {
			return a.Machine < b.Machine
		}
		return a.Workload < b.Workload
	})
	return out
}

// AddResults pre-fills the cache with completed results (typically loaded
// from an earlier invocation's snapshot). Keys already present are left
// untouched. Added entries count as cache hits, not simulations.
func (c *Cache) AddResults(rs []CachedResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, r := range rs {
		k := Key{Machine: r.Machine, Workload: r.Workload}
		if _, ok := c.entries[k]; ok {
			continue
		}
		e := &entry{done: make(chan struct{}), res: r.R, elapsed: time.Duration(r.ElapsedNS)}
		close(e.done)
		c.entries[k] = e
	}
}

// WriteSnapshot writes the cache's completed entries as indented JSON.
func (c *Cache) WriteSnapshot(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(cacheFile{Version: SnapshotVersion, Entries: c.Snapshot()})
}

// ReadSnapshot parses a snapshot previously written by WriteSnapshot. A
// file from a different schema version (including the unversioned
// pre-spec format) returns a SnapshotVersionError.
func ReadSnapshot(r io.Reader) ([]CachedResult, error) {
	var f cacheFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("exp: decoding cache snapshot: %w", err)
	}
	if f.Version != SnapshotVersion {
		return nil, &SnapshotVersionError{Got: f.Version, Want: SnapshotVersion}
	}
	return f.Entries, nil
}

// LoadCacheFile pre-fills the cache from the named snapshot file. A
// missing file is not an error — it is the normal first-invocation
// state. A version mismatch surfaces as a wrapped SnapshotVersionError;
// callers that treat old snapshots as regenerate-rather-than-fail should
// errors.As for it.
func LoadCacheFile(c *Cache, path string) error {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	rs, err := ReadSnapshot(f)
	if err != nil {
		return fmt.Errorf("exp: cache file %s: %w", path, err)
	}
	c.AddResults(rs)
	return nil
}

// SaveCacheFile atomically replaces the named snapshot file with the
// cache's current completed entries. The temp file gets a unique name in
// the target directory — concurrent savers (real, now that distributed
// runs can share a cache directory) never clobber each other's work in
// progress — and is fsynced before the rename, so a crash leaves either
// the old snapshot or the complete new one, never a torn file.
// Every error — temp creation, write, fsync, rename — names the
// destination path, so "disk full" or "read-only directory" failures
// point at the snapshot that was being saved, not an anonymous temp
// file. (os.Rename's LinkError names both ends itself and passes
// through unwrapped.)
func SaveCacheFile(c *Cache, path string) error {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("exp: saving cache file %s: %w", path, err)
	}
	tmp := f.Name()
	err = c.WriteSnapshot(f)
	if err == nil {
		err = f.Sync()
	}
	if err == nil {
		// CreateTemp makes the file 0600; snapshots are shareable data.
		err = f.Chmod(0o644)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("exp: saving cache file %s: %w", path, err)
	}
	return nil
}
