package exp

// Engine tests that need synthetic runners (canned results, controlled
// blocking) swap the package's constructor hook; everything observable
// through the public API is tested black-box in exp_test.go instead.

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"icfp/internal/pipeline"
	"icfp/internal/spec"
	"icfp/internal/workload"
)

// stubs maps job keys to synthetic runners. Jobs without a stub fall
// back to the real constructor, so one install covers mixed sets.
type stubs struct {
	mu    sync.Mutex
	byKey map[Key]Runner
}

// install routes the engine's constructor through the stub table for the
// duration of the test.
func (s *stubs) install(t *testing.T) {
	t.Helper()
	old := newRunner
	newRunner = func(j Job) (Runner, error) {
		s.mu.Lock()
		r, ok := s.byKey[j.Key()]
		s.mu.Unlock()
		if ok {
			return r, nil
		}
		return j.Machine.New()
	}
	t.Cleanup(func() { newRunner = old })
}

func (s *stubs) add(j Job, r Runner) Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.byKey == nil {
		s.byKey = make(map[Key]Runner)
	}
	s.byKey[j.Key()] = r
	return j
}

// stubMachine builds distinct (but valid) machine specs from a small id.
func stubMachine(id int) spec.Machine {
	return spec.Machine{Model: spec.ModelInOrder, Overrides: &spec.Overrides{SliceEntries: spec.Int(32 + id)}}
}

// stubWorkload builds distinct (but valid, cheap to generate) workload
// specs from a small id.
func stubWorkload(id int) spec.Workload {
	return spec.SPECWorkload("mcf", 1000+id)
}

type stubRunner struct {
	cycles int64
	runs   *atomic.Int64
}

func (s stubRunner) Run(*workload.Workload) pipeline.Result {
	if s.runs != nil {
		s.runs.Add(1)
	}
	return pipeline.Result{Name: "stub", Cycles: s.cycles, Insts: 100}
}

// stubJob registers a canned-result job: machine mid over workload wid.
func (s *stubs) stubJob(name string, mid, wid int, cycles int64, runs *atomic.Int64) Job {
	j := Job{Name: name, Machine: stubMachine(mid), Workload: stubWorkload(wid)}
	return s.add(j, stubRunner{cycles: cycles, runs: runs})
}

func TestRunMemoizesEqualKeys(t *testing.T) {
	var s stubs
	s.install(t)
	var runs atomic.Int64
	jobs := []Job{
		s.stubJob("a", 1, 1, 100, &runs),
		s.stubJob("b", 1, 1, 100, &runs), // same key as a
		s.stubJob("c", 2, 1, 200, &runs), // different machine
		s.stubJob("d", 1, 2, 300, &runs), // different workload
	}
	hooks := 0
	rs, err := Run(jobs, Parallelism(4), OnRun(func(Key) { hooks++ }))
	if err != nil {
		t.Fatal(err)
	}
	if got := runs.Load(); got != 3 {
		t.Errorf("simulations = %d, want 3 (jobs a and b share a key)", got)
	}
	if hooks != 3 {
		t.Errorf("OnRun fired %d times, want 3", hooks)
	}
	if rs.MustGet("a").Cycles != 100 || rs.MustGet("b").Cycles != 100 ||
		rs.MustGet("c").Cycles != 200 || rs.MustGet("d").Cycles != 300 {
		t.Errorf("wrong results: %+v", rs.Results)
	}
}

// slowRunner blocks until released, forcing concurrent duplicate-key
// jobs onto the engine's deferred path (workers must not park on an
// in-flight key; they defer it and keep draining the queue).
type slowRunner struct {
	release <-chan struct{}
	runs    *atomic.Int64
}

func (s slowRunner) Run(*workload.Workload) pipeline.Result {
	s.runs.Add(1)
	<-s.release
	return pipeline.Result{Name: "slow", Cycles: 7, Insts: 1}
}

func TestRunDefersInFlightDuplicates(t *testing.T) {
	var s stubs
	s.install(t)
	var runs atomic.Int64
	release := make(chan struct{})
	var fastRuns atomic.Int64
	slowJob := func(name string) Job {
		j := Job{Name: name, Machine: stubMachine(100), Workload: stubWorkload(100)}
		return s.add(j, slowRunner{release: release, runs: &runs})
	}
	jobs := []Job{slowJob("s1"), slowJob("s2"), slowJob("s3")}
	for i := 0; i < 8; i++ {
		jobs = append(jobs, s.stubJob(fmt.Sprintf("f%d", i), i, i, int64(i), &fastRuns))
	}
	done := make(chan *ResultSet, 1)
	go func() {
		rs, err := Run(jobs, Parallelism(2))
		if err != nil {
			t.Error(err)
		}
		done <- rs
	}()
	// With 2 workers and the slow key claimed, the remaining worker (and
	// the one that dequeues s2/s3) must still drain every fast job
	// before the slow simulation is released.
	deadline := time.Now().Add(10 * time.Second)
	for fastRuns.Load() < 8 {
		if time.Now().After(deadline) {
			close(release)
			t.Fatal("fast jobs did not drain while the slow key was in flight (worker parked on a duplicate?)")
		}
		runtime.Gosched()
	}
	close(release)
	rs := <-done
	if runs.Load() != 1 {
		t.Errorf("slow key simulated %d times, want 1", runs.Load())
	}
	for _, name := range []string{"s1", "s2", "s3"} {
		if rs.MustGet(name).Cycles != 7 {
			t.Errorf("%s: cycles = %d, want 7", name, rs.MustGet(name).Cycles)
		}
	}
}

func TestRunSharedCacheAcrossRuns(t *testing.T) {
	var s stubs
	s.install(t)
	var runs atomic.Int64
	cache := NewCache()
	for i := 0; i < 3; i++ {
		if _, err := Run([]Job{s.stubJob("a", 1, 1, 1, &runs)}, WithCache(cache)); err != nil {
			t.Fatal(err)
		}
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("simulations across 3 cached runs = %d, want 1", got)
	}
	if cache.Simulations() != 1 {
		t.Errorf("cache.Simulations() = %d, want 1", cache.Simulations())
	}
	k := Job{Name: "a", Machine: stubMachine(1), Workload: stubWorkload(1)}.Key()
	if cache.SimulationsFor(k) != 1 {
		t.Errorf("SimulationsFor(%v) = %d, want 1", k, cache.SimulationsFor(k))
	}
}

// witnessRunner records which workload pointer each simulation received.
type witnessRunner struct {
	mu   *sync.Mutex
	seen *[]*workload.Workload
}

func (r witnessRunner) Run(w *workload.Workload) pipeline.Result {
	r.mu.Lock()
	*r.seen = append(*r.seen, w)
	r.mu.Unlock()
	return pipeline.Result{Name: w.Name, Cycles: 1, Insts: 1}
}

// TestRunSharesWorkloadsWithinRun pins that Run routes every job through
// one arena: distinct simulations with equal workload specs see the same
// workload pointer.
func TestRunSharesWorkloadsWithinRun(t *testing.T) {
	var s stubs
	s.install(t)
	var mu sync.Mutex
	var seen []*workload.Workload
	wl := stubWorkload(0)
	jobs := make([]Job, 0, 4)
	for i := 0; i < 4; i++ {
		j := Job{Name: fmt.Sprintf("j/%d", i), Machine: stubMachine(i), Workload: wl}
		jobs = append(jobs, s.add(j, witnessRunner{mu: &mu, seen: &seen}))
	}
	arena := NewArena()
	if _, err := Run(jobs, Parallelism(2), WithArena(arena)); err != nil {
		t.Fatal(err)
	}
	if arena.Generations() != 1 {
		t.Errorf("4 jobs over one workload spec generated %d workloads, want 1", arena.Generations())
	}
	if len(seen) != 4 {
		t.Fatalf("expected 4 simulations, saw %d", len(seen))
	}
	for _, w := range seen[1:] {
		if w != seen[0] {
			t.Error("jobs sharing a workload spec must receive the same workload pointer")
		}
	}
}
