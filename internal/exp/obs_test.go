package exp_test

import (
	"strings"
	"testing"

	"icfp/internal/exp"
	"icfp/internal/obs"
)

// TestCacheInstrumentation pins the harness telemetry contract: an
// instrumented cache counts misses (one per distinct key), hits (every
// repeat claim or lookup), drains its in-flight gauge to zero, and Run
// records per-model simulation totals plus one span per actual
// simulation — never for cache hits.
func TestCacheInstrumentation(t *testing.T) {
	jobs := scenarioJobs()
	distinct := make(map[exp.Key]bool)
	models := make(map[string]bool)
	for _, j := range jobs {
		distinct[j.Key()] = true
		models[j.Machine.Model] = true
	}

	reg := obs.NewRegistry()
	cache := exp.NewCache()
	cache.Instrument(reg)
	spans := obs.NewSpanLog()
	if _, err := exp.Run(jobs, exp.WithCache(cache), exp.WithSpans(spans)); err != nil {
		t.Fatal(err)
	}

	if got := reg.Counter("exp_cache_misses_total", "").Value(); got != int64(len(distinct)) {
		t.Errorf("exp_cache_misses_total = %d, want %d (one per distinct key)", got, len(distinct))
	}
	if got := reg.Gauge("exp_cache_inflight", "").Value(); got != 0 {
		t.Errorf("exp_cache_inflight = %v after the run, want 0", got)
	}
	firstHits := reg.Counter("exp_cache_hits_total", "").Value()

	// A second run over the same cache is all hits: no new simulations,
	// no new spans, hits grow by at least one per job.
	if _, err := exp.Run(jobs, exp.WithCache(cache), exp.WithSpans(spans)); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("exp_cache_misses_total", "").Value(); got != int64(len(distinct)) {
		t.Errorf("warm rerun grew misses to %d, want still %d", got, len(distinct))
	}
	if got := reg.Counter("exp_cache_hits_total", "").Value(); got < firstHits+int64(len(jobs)) {
		t.Errorf("warm rerun hits = %d, want >= %d", got, firstHits+int64(len(jobs)))
	}

	// Per-model totals: every model simulated at least once, instruction
	// counts nonzero, and the sum over models equals the distinct-key
	// simulation count.
	var simTotal int64
	for m := range models {
		n := reg.Counter("exp_simulations_total", "", "model", m).Value()
		if n < 1 {
			t.Errorf("exp_simulations_total{model=%q} = %d, want >= 1", m, n)
		}
		simTotal += n
		if insts := reg.Counter("exp_sim_instructions_total", "", "model", m).Value(); insts < 1 {
			t.Errorf("exp_sim_instructions_total{model=%q} = %d, want >= 1", m, insts)
		}
	}
	if simTotal != int64(len(distinct)) {
		t.Errorf("sum of exp_simulations_total = %d, want %d", simTotal, len(distinct))
	}
	if got := reg.Histogram("exp_sim_seconds", "", obs.DefSecondsBuckets).Count(); got != int64(len(distinct)) {
		t.Errorf("exp_sim_seconds count = %d, want %d", got, len(distinct))
	}

	// Spans: exactly one per actual simulation, none from the warm rerun,
	// all labeled with a pool worker and internally consistent.
	got := spans.Spans()
	if len(got) != len(distinct) {
		t.Fatalf("recorded %d spans, want %d (one per simulation)", len(got), len(distinct))
	}
	for _, s := range got {
		if !strings.HasPrefix(s.Worker, "pool-") {
			t.Errorf("span worker = %q, want a pool-N label", s.Worker)
		}
		if s.End.Before(s.Start) || s.ElapsedNS < 0 {
			t.Errorf("span timing inconsistent: %+v", s)
		}
	}
}

// TestUninstrumentedCacheIsFree pins the off-by-default contract at the
// harness level: a cache never handed a registry runs identically with
// all telemetry paths as no-ops.
func TestUninstrumentedCacheIsFree(t *testing.T) {
	cache := exp.NewCache()
	if _, err := exp.Run(scenarioJobs(), exp.WithCache(cache)); err != nil {
		t.Fatal(err)
	}
	if cache.Simulations() == 0 {
		t.Error("uninstrumented run recorded no simulations")
	}
}
