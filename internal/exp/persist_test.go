package exp_test

import (
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"icfp/internal/exp"
)

// TestCacheFileRoundTrip pins the -cache-file workflow: a cache saved by
// one invocation pre-fills the next, so repeated runs simulate nothing.
func TestCacheFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.json")

	var runs atomic.Int64
	jobs := []exp.Job{
		stubJob("a", "m1", "w1", 100, &runs),
		stubJob("b", "m2", "w1", 200, &runs),
	}

	first := exp.NewCache()
	if err := exp.LoadCacheFile(first, path); err != nil {
		t.Fatalf("loading a missing cache file must be a no-op, got %v", err)
	}
	if _, err := exp.Run(jobs, exp.WithCache(first)); err != nil {
		t.Fatal(err)
	}
	if err := exp.SaveCacheFile(first, path); err != nil {
		t.Fatal(err)
	}
	if runs.Load() != 2 {
		t.Fatalf("first invocation simulated %d, want 2", runs.Load())
	}

	second := exp.NewCache()
	if err := exp.LoadCacheFile(second, path); err != nil {
		t.Fatal(err)
	}
	rs, err := exp.Run(jobs, exp.WithCache(second))
	if err != nil {
		t.Fatal(err)
	}
	if runs.Load() != 2 {
		t.Errorf("second invocation simulated %d more, want 0 (cache file must satisfy both jobs)", runs.Load()-2)
	}
	if second.Simulations() != 0 {
		t.Errorf("loaded entries counted as simulations: %d", second.Simulations())
	}
	if rs.MustGet("a").Cycles != 100 || rs.MustGet("b").Cycles != 200 {
		t.Errorf("results changed across the cache file round trip: %+v", rs.Results)
	}
}

// TestSnapshotDeterministicOrder pins that a snapshot's entry order does
// not depend on map iteration, so saved cache files diff cleanly.
func TestSnapshotDeterministicOrder(t *testing.T) {
	var runs atomic.Int64
	c := exp.NewCache()
	jobs := []exp.Job{
		stubJob("z", "m9", "w9", 9, &runs),
		stubJob("y", "m1", "w2", 2, &runs),
		stubJob("x", "m1", "w1", 1, &runs),
	}
	if _, err := exp.Run(jobs, exp.WithCache(c)); err != nil {
		t.Fatal(err)
	}
	snap := c.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d entries, want 3", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		a, b := snap[i-1], snap[i]
		if a.Machine > b.Machine || (a.Machine == b.Machine && a.Workload > b.Workload) {
			t.Errorf("snapshot not sorted at %d: %+v then %+v", i, a, b)
		}
	}
}

// TestLoadCacheFileRejectsGarbage pins the error path for corrupt files.
func TestLoadCacheFileRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := exp.LoadCacheFile(exp.NewCache(), path); err == nil {
		t.Fatal("corrupt cache file must be rejected")
	}
}
