package exp_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"icfp/internal/exp"
)

// TestCacheFileRoundTrip pins the -cache-file workflow: a cache saved by
// one invocation pre-fills the next, so repeated runs simulate nothing.
func TestCacheFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.json")

	var runs atomic.Int64
	jobs := []exp.Job{
		stubJob("a", "m1", "w1", 100, &runs),
		stubJob("b", "m2", "w1", 200, &runs),
	}

	first := exp.NewCache()
	if err := exp.LoadCacheFile(first, path); err != nil {
		t.Fatalf("loading a missing cache file must be a no-op, got %v", err)
	}
	if _, err := exp.Run(jobs, exp.WithCache(first)); err != nil {
		t.Fatal(err)
	}
	if err := exp.SaveCacheFile(first, path); err != nil {
		t.Fatal(err)
	}
	if runs.Load() != 2 {
		t.Fatalf("first invocation simulated %d, want 2", runs.Load())
	}

	second := exp.NewCache()
	if err := exp.LoadCacheFile(second, path); err != nil {
		t.Fatal(err)
	}
	rs, err := exp.Run(jobs, exp.WithCache(second))
	if err != nil {
		t.Fatal(err)
	}
	if runs.Load() != 2 {
		t.Errorf("second invocation simulated %d more, want 0 (cache file must satisfy both jobs)", runs.Load()-2)
	}
	if second.Simulations() != 0 {
		t.Errorf("loaded entries counted as simulations: %d", second.Simulations())
	}
	if rs.MustGet("a").Cycles != 100 || rs.MustGet("b").Cycles != 200 {
		t.Errorf("results changed across the cache file round trip: %+v", rs.Results)
	}
}

// TestSnapshotDeterministicOrder pins that a snapshot's entry order does
// not depend on map iteration, so saved cache files diff cleanly.
func TestSnapshotDeterministicOrder(t *testing.T) {
	var runs atomic.Int64
	c := exp.NewCache()
	jobs := []exp.Job{
		stubJob("z", "m9", "w9", 9, &runs),
		stubJob("y", "m1", "w2", 2, &runs),
		stubJob("x", "m1", "w1", 1, &runs),
	}
	if _, err := exp.Run(jobs, exp.WithCache(c)); err != nil {
		t.Fatal(err)
	}
	snap := c.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d entries, want 3", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		a, b := snap[i-1], snap[i]
		if a.Machine > b.Machine || (a.Machine == b.Machine && a.Workload > b.Workload) {
			t.Errorf("snapshot not sorted at %d: %+v then %+v", i, a, b)
		}
	}
}

// TestLoadCacheFileRejectsGarbage pins the error path for corrupt files.
func TestLoadCacheFileRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := exp.LoadCacheFile(exp.NewCache(), path); err == nil {
		t.Fatal("corrupt cache file must be rejected")
	}
}

// TestLoadCacheFileRejectsTruncated pins the error path for a snapshot
// cut off mid-write (e.g. a crash without the atomic-rename discipline):
// both ReadSnapshot and LoadCacheFile must reject it rather than load a
// silently incomplete result set.
func TestLoadCacheFileRejectsTruncated(t *testing.T) {
	var runs atomic.Int64
	c := exp.NewCache()
	if _, err := exp.Run([]exp.Job{stubJob("a", "m1", "w1", 100, &runs)}, exp.WithCache(c)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	truncated := buf.Bytes()[:buf.Len()/2]
	if _, err := exp.ReadSnapshot(bytes.NewReader(truncated)); err == nil {
		t.Fatal("ReadSnapshot accepted a truncated snapshot")
	}
	path := filepath.Join(t.TempDir(), "cache.json")
	if err := os.WriteFile(path, truncated, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := exp.LoadCacheFile(exp.NewCache(), path); err == nil {
		t.Fatal("LoadCacheFile accepted a truncated snapshot")
	}
}

// TestSaveCacheFileConcurrentSavers pins that simultaneous SaveCacheFile
// calls on the same path never tear the file: each saver writes its own
// uniquely named temp file and the final rename is atomic, so the
// survivor is one complete snapshot.
func TestSaveCacheFileConcurrentSavers(t *testing.T) {
	var runs atomic.Int64
	c := exp.NewCache()
	jobs := make([]exp.Job, 0, 8)
	for i := 0; i < 8; i++ {
		jobs = append(jobs, stubJob(fmt.Sprintf("j%d", i), fmt.Sprintf("m%d", i), "w", int64(100+i), &runs))
	}
	if _, err := exp.Run(jobs, exp.WithCache(c)); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "cache.json")
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = exp.SaveCacheFile(c, path)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("saver %d: %v", i, err)
		}
	}
	loaded := exp.NewCache()
	if err := exp.LoadCacheFile(loaded, path); err != nil {
		t.Fatalf("surviving snapshot is not loadable: %v", err)
	}
	if got := len(loaded.Snapshot()); got != len(jobs) {
		t.Errorf("surviving snapshot has %d entries, want %d", got, len(jobs))
	}
	left, err := filepath.Glob(path + ".tmp-*")
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Errorf("temp files left behind: %v", left)
	}
}
