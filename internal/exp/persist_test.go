package exp_test

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"icfp/internal/exp"
	"icfp/internal/sim"
	"icfp/internal/workload"
)

// persistJobs is a pair of distinct, cheap, real jobs.
func persistJobs() []exp.Job {
	return []exp.Job{
		planJob("a", sim.InOrder, workload.ScenarioLoneL2),
		planJob("b", sim.ICFP, workload.ScenarioLoneL2),
	}
}

// TestCacheFileRoundTrip pins the -cache-file workflow: a cache saved by
// one invocation pre-fills the next, so repeated runs simulate nothing.
func TestCacheFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.json")
	jobs := persistJobs()

	first := exp.NewCache()
	if err := exp.LoadCacheFile(first, path); err != nil {
		t.Fatalf("loading a missing cache file must be a no-op, got %v", err)
	}
	rs1, err := exp.Run(jobs, exp.WithCache(first))
	if err != nil {
		t.Fatal(err)
	}
	if err := exp.SaveCacheFile(first, path); err != nil {
		t.Fatal(err)
	}
	if first.Simulations() != 2 {
		t.Fatalf("first invocation simulated %d, want 2", first.Simulations())
	}

	second := exp.NewCache()
	if err := exp.LoadCacheFile(second, path); err != nil {
		t.Fatal(err)
	}
	rs2, err := exp.Run(jobs, exp.WithCache(second))
	if err != nil {
		t.Fatal(err)
	}
	if second.Simulations() != 0 {
		t.Errorf("second invocation simulated %d, want 0 (cache file must satisfy both jobs)", second.Simulations())
	}
	for _, name := range []string{"a", "b"} {
		if rs1.MustGet(name).Cycles != rs2.MustGet(name).Cycles {
			t.Errorf("%s: results changed across the cache file round trip", name)
		}
	}
}

// TestSnapshotDeterministicOrder pins that a snapshot's entry order does
// not depend on map iteration, so saved cache files diff cleanly.
func TestSnapshotDeterministicOrder(t *testing.T) {
	c := exp.NewCache()
	jobs := []exp.Job{
		planJob("z", sim.ICFP, workload.ScenarioChains),
		planJob("y", sim.InOrder, workload.ScenarioChains),
		planJob("x", sim.InOrder, workload.ScenarioLoneL2),
	}
	if _, err := exp.Run(jobs, exp.WithCache(c)); err != nil {
		t.Fatal(err)
	}
	snap := c.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d entries, want 3", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		a, b := snap[i-1], snap[i]
		if a.Machine > b.Machine || (a.Machine == b.Machine && a.Workload > b.Workload) {
			t.Errorf("snapshot not sorted at %d: %+v then %+v", i, a, b)
		}
	}
}

// TestLoadCacheFileRejectsGarbage pins the error path for corrupt files.
func TestLoadCacheFileRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := exp.LoadCacheFile(exp.NewCache(), path); err == nil {
		t.Fatal("corrupt cache file must be rejected")
	}
}

// TestLoadCacheFileRejectsTruncated pins the error path for a snapshot
// cut off mid-write (e.g. a crash without the atomic-rename discipline):
// both ReadSnapshot and LoadCacheFile must reject it rather than load a
// silently incomplete result set.
func TestLoadCacheFileRejectsTruncated(t *testing.T) {
	c := exp.NewCache()
	if _, err := exp.Run(persistJobs()[:1], exp.WithCache(c)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	truncated := buf.Bytes()[:buf.Len()/2]
	if _, err := exp.ReadSnapshot(bytes.NewReader(truncated)); err == nil {
		t.Fatal("ReadSnapshot accepted a truncated snapshot")
	}
	path := filepath.Join(t.TempDir(), "cache.json")
	if err := os.WriteFile(path, truncated, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := exp.LoadCacheFile(exp.NewCache(), path); err == nil {
		t.Fatal("LoadCacheFile accepted a truncated snapshot")
	}
}

// TestSnapshotVersionMismatch pins the schema-versioning contract: a
// pre-spec (unversioned, fingerprint-keyed) snapshot and a
// future-versioned one both surface as SnapshotVersionError — loadable
// nowhere, but distinguishable from corruption so callers can warn and
// regenerate instead of failing.
func TestSnapshotVersionMismatch(t *testing.T) {
	legacy := []byte(`{
  "entries": [
    {"machine": "iCFP", "config": "00f0ba41cafe0000", "workload": "spec:mcf:n=3000", "result": {"name": "mcf", "cycles": 123}}
  ]
}`)
	_, err := exp.ReadSnapshot(bytes.NewReader(legacy))
	var verr *exp.SnapshotVersionError
	if !errors.As(err, &verr) {
		t.Fatalf("legacy snapshot: err = %v, want SnapshotVersionError", err)
	}
	if verr.Got != 0 || verr.Want != exp.SnapshotVersion {
		t.Errorf("legacy snapshot error = %+v, want got 0, want %d", verr, exp.SnapshotVersion)
	}

	future := []byte(`{"version": 99, "entries": []}`)
	_, err = exp.ReadSnapshot(bytes.NewReader(future))
	if !errors.As(err, &verr) || verr.Got != 99 {
		t.Fatalf("future snapshot: err = %v, want SnapshotVersionError{Got: 99}", err)
	}

	// LoadCacheFile wraps the same error so callers can errors.As it.
	path := filepath.Join(t.TempDir(), "cache.json")
	if err := os.WriteFile(path, legacy, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := exp.LoadCacheFile(exp.NewCache(), path); !errors.As(err, &verr) {
		t.Fatalf("LoadCacheFile of a legacy snapshot: err = %v, want wrapped SnapshotVersionError", err)
	}
}

// TestSnapshotRoundTripsCurrentVersion pins that what SaveCacheFile
// writes, ReadSnapshot accepts — the trivial-but-load-bearing inverse of
// the version rejection above.
func TestSnapshotRoundTripsCurrentVersion(t *testing.T) {
	c := exp.NewCache()
	if _, err := exp.Run(persistJobs(), exp.WithCache(c)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	entries, err := exp.ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("round trip kept %d entries, want 2", len(entries))
	}
	for _, e := range entries {
		// Keys are canonical spec encodings, not labels or hashes.
		if !bytes.Contains([]byte(e.Machine), []byte(`"model"`)) {
			t.Errorf("entry machine key %q is not a canonical machine spec", e.Machine)
		}
	}
}

// TestSaveCacheFileConcurrentSavers pins that simultaneous SaveCacheFile
// calls on the same path never tear the file: each saver writes its own
// uniquely named temp file and the final rename is atomic, so the
// survivor is one complete snapshot.
func TestSaveCacheFileConcurrentSavers(t *testing.T) {
	c := exp.NewCache()
	jobs := make([]exp.Job, 0, 8)
	for i, sc := range workload.AllScenarios[:4] {
		jobs = append(jobs,
			planJob(fmt.Sprintf("io/%d", i), sim.InOrder, sc),
			planJob(fmt.Sprintf("ic/%d", i), sim.ICFP, sc))
	}
	if _, err := exp.Run(jobs, exp.WithCache(c)); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "cache.json")
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = exp.SaveCacheFile(c, path)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("saver %d: %v", i, err)
		}
	}
	loaded := exp.NewCache()
	if err := exp.LoadCacheFile(loaded, path); err != nil {
		t.Fatalf("surviving snapshot is not loadable: %v", err)
	}
	if got := len(loaded.Snapshot()); got != len(jobs) {
		t.Errorf("surviving snapshot has %d entries, want %d", got, len(jobs))
	}
	left, err := filepath.Glob(path + ".tmp-*")
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Errorf("temp files left behind: %v", left)
	}
}

// TestSaveCacheFileErrorNamesPath pins the failure-mode ergonomics of
// SaveCacheFile: when the destination directory is unwritable, the error
// must name the snapshot path the caller asked for — not just the
// anonymous temp file — so an operator reading a log knows which cache
// was lost.
func TestSaveCacheFileErrorNamesPath(t *testing.T) {
	// A destination whose parent directory does not exist fails for every
	// user, including root (where 0555 permission bits are not enforced).
	t.Run("missing dir", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "no", "such", "cache.json")
		err := exp.SaveCacheFile(exp.NewCache(), path)
		if err == nil {
			t.Fatalf("SaveCacheFile into a missing directory succeeded")
		}
		if !strings.Contains(err.Error(), path) {
			t.Errorf("error %q does not name the destination path %q", err, path)
		}
	})
	t.Run("read-only dir", func(t *testing.T) {
		if os.Geteuid() == 0 {
			t.Skip("running as root: directory permissions are not enforced")
		}
		dir := filepath.Join(t.TempDir(), "ro")
		if err := os.Mkdir(dir, 0o555); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { os.Chmod(dir, 0o755) })
		path := filepath.Join(dir, "cache.json")
		err := exp.SaveCacheFile(exp.NewCache(), path)
		if err == nil {
			t.Fatalf("SaveCacheFile into a read-only directory succeeded")
		}
		if !strings.Contains(err.Error(), path) {
			t.Errorf("error %q does not name the destination path %q", err, path)
		}
	})
}
