// Package exp is the experiment-orchestration harness behind the paper's
// evaluation: it runs named (machine, workload) jobs on a worker pool,
// memoizes simulations so shared baselines run exactly once, generates
// each distinct workload once in a shared read-only arena, and collects
// results into typed, JSON-exportable result sets.
//
// Simulations in this module are deterministic pure functions of their
// (machine constructor, configuration, workload) inputs, which is what
// makes both halves of the design sound: runs can be farmed out to any
// number of workers without changing results, and a result computed for
// one experiment can be reused verbatim by another. The cache key is the
// triple (machine identity, configuration fingerprint, workload key); the
// Machine string must therefore uniquely identify the constructor's
// behaviour given the configuration — two different constructors may
// share a label only if they build identical machines.
package exp

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"

	"icfp/internal/pipeline"
	"icfp/internal/workload"
)

// Runner runs a workload; every machine in this module satisfies it.
type Runner interface {
	Run(w *workload.Workload) pipeline.Result
}

// WorkloadSpec names a workload and knows how to build it. The factory is
// called at most once per distinct Key per arena: generated workloads are
// shared, read-only, across all machines and configurations that name the
// same key (see Arena). Machines read the trace and memory image but
// never write either, and the Prewarm hook writes only to the machine's
// own hierarchy, so sharing is safe even across concurrent simulations.
type WorkloadSpec struct {
	Key string // cache-key component; must uniquely identify the workload
	New func() *workload.Workload
}

// SPECWorkload is the spec for a generated SPEC2000-profile benchmark
// with n total dynamic instructions (warmup included).
func SPECWorkload(name string, n int) WorkloadSpec {
	return WorkloadSpec{
		Key: fmt.Sprintf("spec:%s:n=%d", name, n),
		New: func() *workload.Workload { return workload.SPEC(name, n) },
	}
}

// ScenarioWorkload is the spec for one of the Figure 1 micro-scenarios.
func ScenarioWorkload(sc workload.Scenario) WorkloadSpec {
	return WorkloadSpec{
		Key: "scenario:" + string(sc),
		New: func() *workload.Workload { return workload.NewScenario(sc) },
	}
}

// Job is one named simulation: a machine constructor applied to a
// configuration, run over a workload built from its spec. Job names index
// the ResultSet and must be unique within one Run call; distinct jobs may
// share a cache key (same machine, config, workload), in which case the
// simulation happens once.
type Job struct {
	Name     string // result name, unique within a Run
	Machine  string // machine identity; part of the cache key
	Config   pipeline.Config
	Make     func(cfg pipeline.Config) Runner
	Workload WorkloadSpec
}

// Key is the memoization key of a job.
type Key struct {
	Machine  string
	Config   string // configuration fingerprint
	Workload string
}

// Key returns the job's memoization key.
func (j Job) Key() Key {
	return Key{Machine: j.Machine, Config: Fingerprint(j.Config), Workload: j.Workload.Key}
}

// Fingerprint deterministically summarizes a configuration. Config is a
// plain value struct (the only indirection is the predictor's history
// slice, which prints by value), so the formatted form captures every
// field; it is hashed to keep keys compact.
func Fingerprint(cfg pipeline.Config) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v", cfg)
	return fmt.Sprintf("%016x", h.Sum64())
}

// Cache memoizes simulation results across Run calls. The zero value is
// not usable; create one with NewCache. A single cache may be shared by
// concurrent Run calls: the first claimant of a key simulates, everyone
// else waits for its result.
type Cache struct {
	mu      sync.Mutex
	entries map[Key]*entry
	runs    map[Key]int // actual simulations per key (diagnostics/tests)
}

type entry struct {
	done chan struct{}
	res  pipeline.Result
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[Key]*entry), runs: make(map[Key]int)}
}

// claim returns the entry for k and whether the caller claimed it (and
// must simulate, then call finish).
func (c *Cache) claim(k Key) (*entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[k]; ok {
		return e, false
	}
	e := &entry{done: make(chan struct{})}
	c.entries[k] = e
	return e, true
}

// finish publishes the result of a claimed entry.
func (c *Cache) finish(k Key, e *entry, res pipeline.Result) {
	c.mu.Lock()
	c.runs[k]++
	c.mu.Unlock()
	e.res = res
	close(e.done)
}

// Simulations returns the total number of actual simulator runs recorded
// by the cache (cache hits are not counted).
func (c *Cache) Simulations() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, v := range c.runs {
		n += v
	}
	return n
}

// SimulationsFor returns how many times the key was actually simulated —
// at most once per cache, by construction.
func (c *Cache) SimulationsFor(k Key) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.runs[k]
}

// Lookup returns the completed result for k, if the cache has one.
// In-flight entries read as absent: Lookup never blocks on a simulation
// another claimant is still running.
func (c *Cache) Lookup(k Key) (pipeline.Result, bool) {
	c.mu.Lock()
	e, ok := c.entries[k]
	c.mu.Unlock()
	if !ok {
		return pipeline.Result{}, false
	}
	select {
	case <-e.done:
		return e.res, true
	default:
		return pipeline.Result{}, false
	}
}

// options collects Run configuration.
type options struct {
	parallelism int
	cache       *Cache
	arena       *Arena
	onRun       func(Key)
}

// Option configures Run.
type Option func(*options)

// Parallelism sets the worker-pool size. Values below 1 (and the
// default) mean GOMAXPROCS workers. Results are identical for every
// setting; only wall-clock time changes.
func Parallelism(n int) Option {
	return func(o *options) { o.parallelism = n }
}

// WithCache routes the run through a shared memoization cache, so
// simulations already performed — by this run or any earlier one sharing
// the cache — are reused instead of repeated.
func WithCache(c *Cache) Option {
	return func(o *options) { o.cache = c }
}

// WithArena routes the run through a shared workload arena, so workloads
// already generated — by this run or any earlier one sharing the arena —
// are reused instead of regenerated. Without this option each Run call
// owns a private arena (workloads are still generated only once per key
// within the run).
func WithArena(a *Arena) Option {
	return func(o *options) { o.arena = a }
}

// OnRun installs a hook invoked once per actual simulation (never for
// cache hits), after the simulation completes. Calls may arrive from any
// worker but never concurrently.
func OnRun(f func(Key)) Option {
	return func(o *options) { o.onRun = f }
}

// validate fails fast on malformed job sets (duplicate names, missing
// constructor or workload) before any simulation or dispatch happens.
func validate(jobs []Job) error {
	seen := make(map[string]bool, len(jobs))
	for _, j := range jobs {
		switch {
		case j.Name == "":
			return fmt.Errorf("exp: job with empty name (machine %q, workload %q)", j.Machine, j.Workload.Key)
		case seen[j.Name]:
			return fmt.Errorf("exp: duplicate job name %q", j.Name)
		case j.Make == nil:
			return fmt.Errorf("exp: job %q has no machine constructor", j.Name)
		case j.Workload.New == nil:
			return fmt.Errorf("exp: job %q has no workload factory", j.Name)
		}
		seen[j.Name] = true
	}
	return nil
}

// Plan validates the job set exactly as Run does and returns its
// deduplicated memoization keys in first-appearance order. The plan is
// the unit of distribution: every key is one simulation that has to
// happen somewhere, so a dispatcher (internal/dist) can shard the plan
// across worker processes, merge the resulting CachedResults into a
// cache, and then Run locally entirely from cache hits.
func Plan(jobs []Job) ([]Key, error) {
	if err := validate(jobs); err != nil {
		return nil, err
	}
	seen := make(map[Key]bool, len(jobs))
	keys := make([]Key, 0, len(jobs))
	for _, j := range jobs {
		k := j.Key()
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	return keys, nil
}

// Run executes the jobs on a worker pool and returns their results in job
// order. Jobs with equal cache keys simulate once; with a WithCache
// option, memoization also spans earlier runs. Run fails fast on
// malformed job sets (duplicate names, missing constructor or workload)
// before simulating anything.
func Run(jobs []Job, opts ...Option) (*ResultSet, error) {
	o := options{}
	for _, opt := range opts {
		opt(&o)
	}
	if o.parallelism < 1 {
		o.parallelism = runtime.GOMAXPROCS(0)
	}
	// More pool workers than jobs would only park idle goroutines — and
	// lets a hostile parallelism setting (dist specs arrive over the
	// network) cost at most len(jobs) goroutines.
	o.parallelism = min(o.parallelism, len(jobs))
	if o.cache == nil {
		o.cache = NewCache()
	}
	if o.arena == nil {
		o.arena = NewArena()
	}

	if err := validate(jobs); err != nil {
		return nil, err
	}

	var hookMu sync.Mutex
	work := make(chan int)
	results := make([]Result, len(jobs))
	// Jobs whose key is claimed by a still-running simulation are parked
	// here instead of blocking a pool slot; they are resolved after the
	// pool drains, by which point every claimant has finished.
	var deferredMu sync.Mutex
	type pending struct {
		idx int
		e   *entry
	}
	var deferred []pending
	var wg sync.WaitGroup
	for w := 0; w < o.parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				j := jobs[i]
				k := j.Key()
				e, claimed := o.cache.claim(k)
				if claimed {
					res := j.Make(j.Config).Run(o.arena.Get(j.Workload))
					o.cache.finish(k, e, res)
					if o.onRun != nil {
						hookMu.Lock()
						o.onRun(k)
						hookMu.Unlock()
					}
				} else {
					select {
					case <-e.done:
					default:
						deferredMu.Lock()
						deferred = append(deferred, pending{idx: i, e: e})
						deferredMu.Unlock()
						continue
					}
				}
				results[i] = Result{Name: j.Name, Machine: j.Machine, Workload: j.Workload.Key, R: e.res}
			}
		}()
	}
	for i := range jobs {
		work <- i
	}
	close(work)
	wg.Wait()
	for _, d := range deferred {
		<-d.e.done
		j := jobs[d.idx]
		results[d.idx] = Result{Name: j.Name, Machine: j.Machine, Workload: j.Workload.Key, R: d.e.res}
	}
	return &ResultSet{Results: results}, nil
}
