// Package exp is the experiment-orchestration harness behind the paper's
// evaluation: it runs named (machine, workload) jobs on a worker pool,
// memoizes simulations so shared baselines run exactly once, generates
// each distinct workload once in a shared read-only arena, and collects
// results into typed, JSON-exportable result sets.
//
// Jobs are declarative: a job carries a spec.Machine and a spec.Workload
// — serializable data, not closures — and the cache key of a simulation
// is the pair of their canonical encodings (spec.Canonical). That single
// identity is used everywhere a simulation is named: the in-process memo
// cache, persisted cache snapshots, and the distributed dispatch protocol
// all key on the same strings, so results computed anywhere are reusable
// everywhere.
//
// Simulations in this module are deterministic pure functions of their
// (machine spec, workload spec) inputs, which is what makes the design
// sound: runs can be farmed out to any number of workers without
// changing results, and a result computed for one experiment can be
// reused verbatim by another.
package exp

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"icfp/internal/obs"
	"icfp/internal/pipeline"
	"icfp/internal/spec"
)

// Runner runs a workload; every machine a spec can name satisfies it.
type Runner = spec.Runner

// Job is one named simulation: a declared machine run over a declared
// workload. Job names index the ResultSet and must be unique within one
// Run call; distinct jobs may share a cache key (equal canonical machine
// and workload specs), in which case the simulation happens once.
type Job struct {
	Name     string // result name, unique within a Run
	Machine  spec.Machine
	Workload spec.Workload
}

// Key is the memoization key of a simulation: the canonical encodings of
// its machine and workload specs. Equal keys construct identical
// simulations by the spec package's contract.
type Key struct {
	Machine  string
	Workload string
}

// Key returns the job's memoization key.
func (j Job) Key() Key {
	return Key{Machine: j.Machine.Canonical(), Workload: j.Workload.Canonical()}
}

// Spec returns the job's identity as a self-describing spec.Job (the
// name is dropped: plan entries are identity, not presentation).
func (j Job) Spec() spec.Job {
	return spec.Job{Machine: j.Machine, Workload: j.Workload}
}

// KeyOf returns the memoization key of a self-describing spec job.
func KeyOf(sj spec.Job) Key {
	return Key{Machine: sj.Machine.Canonical(), Workload: sj.Workload.Canonical()}
}

// newRunner builds a job's machine; engine tests swap it to inject
// synthetic runners (see engine_test.go).
var newRunner = func(j Job) (Runner, error) { return j.Machine.New() }

// Cache memoizes simulation results across Run calls. The zero value is
// not usable; create one with NewCache. A single cache may be shared by
// concurrent Run calls: the first claimant of a key simulates, everyone
// else waits for its result.
type Cache struct {
	mu      sync.Mutex
	entries map[Key]*entry
	runs    map[Key]int // actual simulations per key (diagnostics/tests)

	// Telemetry (Instrument). All nil-safe no-ops until a registry is
	// attached, so the uninstrumented path pays one nil check per event.
	reg      *obs.Registry
	hits     *obs.Counter
	misses   *obs.Counter
	inflight *obs.Gauge
}

type entry struct {
	done    chan struct{}
	res     pipeline.Result
	elapsed time.Duration // wall time of the simulation (0 for preloaded results)
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[Key]*entry), runs: make(map[Key]int)}
}

// Instrument attaches a metrics registry: cache hits/misses
// (exp_cache_hits_total / exp_cache_misses_total — a hit is any claim or
// lookup answered without a new simulation), in-flight simulations
// (exp_cache_inflight), and the per-model simulation totals that Run
// records (exp_simulations_total, exp_sim_instructions_total,
// exp_sim_elapsed_ns_total, exp_sim_seconds). A nil registry detaches.
func (c *Cache) Instrument(reg *obs.Registry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reg = reg
	c.hits = reg.Counter("exp_cache_hits_total", "simulations answered from the memo cache (claims and lookups)")
	c.misses = reg.Counter("exp_cache_misses_total", "cache claims and lookups that found no completed result")
	c.inflight = reg.Gauge("exp_cache_inflight", "simulations claimed but not yet finished")
}

// registry returns the attached metrics registry (nil when
// uninstrumented); Run uses it for the per-model simulation totals.
func (c *Cache) registry() *obs.Registry {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reg
}

// claim returns the entry for k and whether the caller claimed it (and
// must simulate, then call finish).
func (c *Cache) claim(k Key) (*entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[k]; ok {
		c.hits.Inc()
		return e, false
	}
	e := &entry{done: make(chan struct{})}
	c.entries[k] = e
	c.misses.Inc()
	c.inflight.Add(1)
	return e, true
}

// finish publishes the result of a claimed entry, recording how long the
// simulation took (the raw material of dispatch-time cost models).
func (c *Cache) finish(k Key, e *entry, res pipeline.Result, elapsed time.Duration) {
	c.mu.Lock()
	c.runs[k]++
	c.mu.Unlock()
	e.res = res
	e.elapsed = elapsed
	c.inflight.Add(-1)
	close(e.done)
}

// Simulations returns the total number of actual simulator runs recorded
// by the cache (cache hits are not counted).
func (c *Cache) Simulations() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, v := range c.runs {
		n += v
	}
	return n
}

// SimulationsFor returns how many times the key was actually simulated —
// at most once per cache, by construction.
func (c *Cache) SimulationsFor(k Key) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.runs[k]
}

// Lookup returns the completed result for k, if the cache has one.
// In-flight entries read as absent: Lookup never blocks on a simulation
// another claimant is still running.
func (c *Cache) Lookup(k Key) (pipeline.Result, bool) {
	c.mu.Lock()
	e, ok := c.entries[k]
	c.mu.Unlock()
	if !ok {
		c.misses.Inc()
		return pipeline.Result{}, false
	}
	select {
	case <-e.done:
		c.hits.Inc()
		return e.res, true
	default:
		c.misses.Inc()
		return pipeline.Result{}, false
	}
}

// Elapsed returns the wall time the completed simulation for k took, if
// the cache has one. Results merged via AddResults report the elapsed
// time their snapshot recorded (zero when the snapshot predates timing
// capture); in-flight entries read as absent, like Lookup.
func (c *Cache) Elapsed(k Key) (time.Duration, bool) {
	c.mu.Lock()
	e, ok := c.entries[k]
	c.mu.Unlock()
	if !ok {
		return 0, false
	}
	select {
	case <-e.done:
		return e.elapsed, true
	default:
		return 0, false
	}
}

// options collects Run configuration.
type options struct {
	parallelism int
	cache       *Cache
	arena       *Arena
	onRun       func(Key)
	cancel      <-chan struct{}
	spans       *obs.SpanLog
}

// Option configures Run.
type Option func(*options)

// Parallelism sets the worker-pool size. Values below 1 (and the
// default) mean GOMAXPROCS workers. Results are identical for every
// setting; only wall-clock time changes.
func Parallelism(n int) Option {
	return func(o *options) { o.parallelism = n }
}

// WithCache routes the run through a shared memoization cache, so
// simulations already performed — by this run or any earlier one sharing
// the cache — are reused instead of repeated.
func WithCache(c *Cache) Option {
	return func(o *options) { o.cache = c }
}

// WithArena routes the run through a shared workload arena, so workloads
// already generated — by this run or any earlier one sharing the arena —
// are reused instead of regenerated. Without this option each Run call
// owns a private arena (workloads are still generated only once per key
// within the run).
func WithArena(a *Arena) Option {
	return func(o *options) { o.arena = a }
}

// OnRun installs a hook invoked once per actual simulation (never for
// cache hits), after the simulation completes. Calls may arrive from any
// worker but never concurrently.
func OnRun(f func(Key)) Option {
	return func(o *options) { o.onRun = f }
}

// WithSpans records one obs.Span per actual simulation (never for cache
// hits) into l, labeled with the pool worker that ran it — the local
// half of the -run-summary timeline. A nil log records nothing.
func WithSpans(l *obs.SpanLog) Option {
	return func(o *options) { o.spans = l }
}

// ErrCanceled reports that a Run was abandoned through a Cancel channel
// before every job completed.
var ErrCanceled = errors.New("exp: run canceled")

// Cancel makes the run abandonable: once ch fires — close it to cancel;
// a closed channel is the only signal every waiter observes — workers
// stop starting new simulations (each at most finishes the one it is
// mid-flight on; claimed cache entries are always completed, never torn)
// and Run returns ErrCanceled instead of results. A single value send
// also cancels (the first receipt is latched for the whole pool), but
// close is the intended idiom. Completed simulations stay in the shared
// cache. This is the drain path of distributed workers leaving an
// elastic fleet (internal/dist).
func Cancel(ch <-chan struct{}) Option {
	return func(o *options) { o.cancel = ch }
}

// validate fails fast on malformed job sets (duplicate names, invalid
// machine or workload specs) before any simulation or dispatch happens.
func validate(jobs []Job) error {
	seen := make(map[string]bool, len(jobs))
	for _, j := range jobs {
		switch {
		case j.Name == "":
			return fmt.Errorf("exp: job with empty name (machine %s, workload %s)", j.Machine.Canonical(), j.Workload.Canonical())
		case seen[j.Name]:
			return fmt.Errorf("exp: duplicate job name %q", j.Name)
		}
		seen[j.Name] = true
		if err := (spec.Job{Name: j.Name, Machine: j.Machine, Workload: j.Workload}).Validate(); err != nil {
			return fmt.Errorf("exp: %w", err)
		}
	}
	return nil
}

// Plan validates the job set exactly as Run does and returns its
// deduplicated simulations as self-describing specs, in first-appearance
// order. The plan is the unit of distribution: every entry is one
// simulation that has to happen somewhere, so a dispatcher
// (internal/dist) can shard the plan across worker processes — each
// entry carries everything a worker needs to run it — merge the
// resulting CachedResults into a cache, and then Run locally entirely
// from cache hits.
func Plan(jobs []Job) ([]spec.Job, error) {
	if err := validate(jobs); err != nil {
		return nil, err
	}
	seen := make(map[Key]bool, len(jobs))
	plan := make([]spec.Job, 0, len(jobs))
	for _, j := range jobs {
		k := j.Key()
		if !seen[k] {
			seen[k] = true
			plan = append(plan, j.Spec())
		}
	}
	return plan, nil
}

// Run executes the jobs on a worker pool and returns their results in job
// order. Jobs with equal cache keys simulate once; with a WithCache
// option, memoization also spans earlier runs. Run fails fast on
// malformed job sets (duplicate names, invalid specs) before simulating
// anything.
func Run(jobs []Job, opts ...Option) (*ResultSet, error) {
	o := options{}
	for _, opt := range opts {
		opt(&o)
	}
	if o.parallelism < 1 {
		o.parallelism = runtime.GOMAXPROCS(0)
	}
	// More pool workers than jobs would only park idle goroutines — and
	// lets a hostile parallelism setting (dist specs arrive over the
	// network) cost at most len(jobs) goroutines.
	o.parallelism = min(o.parallelism, len(jobs))
	if o.cache == nil {
		o.cache = NewCache()
	}
	if o.arena == nil {
		o.arena = NewArena()
	}

	if err := validate(jobs); err != nil {
		return nil, err
	}

	var hookMu sync.Mutex
	// canceled latches the first cancel receipt, so even a single value
	// sent on the channel (rather than the idiomatic close) stops every
	// pool worker and is still visible to the final check below.
	var canceled atomic.Bool
	work := make(chan int)
	results := make([]Result, len(jobs))
	// Jobs whose key is claimed by a still-running simulation are parked
	// here instead of blocking a pool slot; they are resolved after the
	// pool drains, by which point every claimant has finished.
	var deferredMu sync.Mutex
	type pending struct {
		idx int
		e   *entry
	}
	var deferred []pending
	var wg sync.WaitGroup
	for w := 0; w < o.parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				if o.cancel != nil {
					if canceled.Load() {
						continue // drain the queue without simulating
					}
					select {
					case <-o.cancel:
						canceled.Store(true)
						continue
					default:
					}
				}
				j := jobs[i]
				k := j.Key()
				e, claimed := o.cache.claim(k)
				if claimed {
					r, err := newRunner(j)
					if err != nil {
						// validate() vetted every spec; a constructor
						// failure here is a bug, not an input error.
						panic(fmt.Sprintf("exp: job %q: %v", j.Name, err))
					}
					start := time.Now()
					wk := o.arena.Get(j.Workload)
					var res pipeline.Result
					if pol := j.Workload.Sampling; pol.Live() {
						// Every machine a spec can name implements sampled
						// runs; synthetic test runners that don't simply
						// cannot be asked for a live sampled workload.
						res = r.(spec.SampledRunner).RunSampled(wk, pol.Policy())
					} else {
						res = r.Run(wk)
					}
					end := time.Now()
					elapsed := end.Sub(start)
					o.cache.finish(k, e, res, elapsed)
					if reg := o.cache.registry(); reg != nil {
						model := j.Machine.Model
						reg.Counter("exp_simulations_total", "actual simulator runs per model (cache hits excluded)", "model", model).Inc()
						reg.Counter("exp_sim_instructions_total", "simulated instructions per model", "model", model).Add(res.Insts)
						reg.Counter("exp_sim_elapsed_ns_total", "wall time spent simulating per model, in nanoseconds", "model", model).Add(int64(elapsed))
						reg.Histogram("exp_sim_seconds", "wall time of individual simulations", obs.DefSecondsBuckets).Observe(elapsed.Seconds())
					}
					o.spans.Add(obs.Span{Machine: k.Machine, Workload: k.Workload, Worker: fmt.Sprintf("pool-%d", w), Start: start, End: end, ElapsedNS: int64(elapsed)})
					if o.onRun != nil {
						hookMu.Lock()
						o.onRun(k)
						hookMu.Unlock()
					}
				} else {
					select {
					case <-e.done:
					default:
						deferredMu.Lock()
						deferred = append(deferred, pending{idx: i, e: e})
						deferredMu.Unlock()
						continue
					}
				}
				results[i] = Result{Name: j.Name, Machine: j.Machine, Workload: j.Workload, R: e.res}
			}
		}()
	}
	for i := range jobs {
		work <- i
	}
	close(work)
	wg.Wait()
	if o.cancel != nil {
		if canceled.Load() {
			// Claimed entries were all finished (claim-then-simulate is
			// never abandoned mid-key), so the cache is consistent; only
			// this run's result set is incomplete.
			return nil, ErrCanceled
		}
		select {
		case <-o.cancel:
			return nil, ErrCanceled
		default:
		}
	}
	for _, d := range deferred {
		<-d.e.done
		j := jobs[d.idx]
		results[d.idx] = Result{Name: j.Name, Machine: j.Machine, Workload: j.Workload, R: d.e.res}
	}
	return &ResultSet{Results: results}, nil
}
