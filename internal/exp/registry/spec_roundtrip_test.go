package registry_test

import (
	"bytes"
	"testing"

	"icfp/internal/exp"
	"icfp/internal/exp/registry"
	"icfp/internal/spec"
)

// suiteExpJobs converts a suite's declarative jobs to harness jobs, the
// same conversion ReportSuite performs.
func suiteExpJobs(s spec.Suite) []exp.Job {
	jobs := make([]exp.Job, len(s.Jobs))
	for i, j := range s.Jobs {
		jobs[i] = exp.Job{Name: j.Name, Machine: j.Machine, Workload: j.Workload}
	}
	return jobs
}

// TestEveryExperimentRoundTripsAsSpec is the property pin for the spec
// redesign: for every registry experiment, Marshal → Unmarshal → Marshal
// is byte-identical, and the rebuilt suite produces exactly the same
// exp.Plan keys as the compiled-in path — so a described experiment
// shipped as JSON names precisely the simulations the binary would run.
func TestEveryExperimentRoundTripsAsSpec(t *testing.T) {
	p := tinyParams()
	for _, name := range registry.Names() {
		s, err := registry.Describe(name, p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b1, err := s.Marshal()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		back, err := spec.UnmarshalSuite(b1)
		if err != nil {
			t.Fatalf("%s: described suite does not re-parse: %v", name, err)
		}
		b2, err := back.Marshal()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(b1, b2) {
			t.Errorf("%s: Marshal -> Unmarshal -> Marshal changed bytes", name)
		}

		direct, err := exp.Plan(suiteExpJobs(s))
		if err != nil {
			t.Fatalf("%s: planning the described suite: %v", name, err)
		}
		rebuilt, err := exp.Plan(suiteExpJobs(back))
		if err != nil {
			t.Fatalf("%s: planning the round-tripped suite: %v", name, err)
		}
		if len(direct) != len(rebuilt) {
			t.Fatalf("%s: plan sizes diverge across the round trip: %d vs %d", name, len(direct), len(rebuilt))
		}
		for i := range direct {
			if exp.KeyOf(direct[i]) != exp.KeyOf(rebuilt[i]) {
				t.Errorf("%s: plan key %d diverges across the round trip", name, i)
			}
		}
	}
}

// TestDescribedSuiteRendersIdentically is the acceptance pin for -spec:
// running a round-tripped described suite renders byte-identically to
// running the experiment directly, for every experiment in the registry.
// Both paths share one cache, so each simulation happens once.
func TestDescribedSuiteRendersIdentically(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full registry at tiny scale")
	}
	p := tinyParams()
	cache := exp.NewCache()
	for _, name := range registry.Names() {
		var direct bytes.Buffer
		if _, err := registry.Report(&direct, []string{name}, p, exp.WithCache(cache)); err != nil {
			t.Fatalf("%s: %v", name, err)
		}

		s, err := registry.Describe(name, p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := s.Marshal()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		back, err := spec.UnmarshalSuite(b)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var viaSpec bytes.Buffer
		if _, err := registry.ReportSuite(&viaSpec, back, exp.WithCache(cache)); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(direct.Bytes(), viaSpec.Bytes()) {
			t.Errorf("%s: spec-run output differs from the compiled-in path:\n--- direct ---\n%s\n--- via spec ---\n%s",
				name, direct.String(), viaSpec.String())
		}
	}
}

// TestRegistryRejectsInexpressibleParams pins that a Params.Cfg no
// override can express fails suite building loudly instead of silently
// simulating something else.
func TestRegistryRejectsInexpressibleParams(t *testing.T) {
	p := tinyParams()
	p.Cfg.Hier.L1D.SizeBytes *= 2
	if _, err := registry.Describe("fig5", p); err == nil {
		t.Error("Describe accepted a configuration overrides cannot express")
	}
	if _, err := registry.Run([]string{"fig5"}, p); err == nil {
		t.Error("Run accepted a configuration overrides cannot express")
	}
}
