package registry_test

import (
	"bytes"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/pem"
	"fmt"
	"io"
	"math/big"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"icfp/internal/dist"
	"icfp/internal/exp"
	"icfp/internal/exp/registry"
	"icfp/internal/obs"
)

// pipeWorkers serves n in-process workers over pipes. Workers carry no
// registry knowledge: batches are self-describing since protocol v2.
func pipeWorkers(t *testing.T, n int) []dist.Worker {
	t.Helper()
	workers := make([]dist.Worker, 0, n)
	for i := 0; i < n; i++ {
		coordEnd, workerEnd := dist.Pipe()
		go dist.Serve(workerEnd)
		workers = append(workers, dist.Worker{Name: fmt.Sprintf("w%d", i), RW: coordEnd})
	}
	return workers
}

// TestDistributedReportMatchesLocal is the cross-process determinism
// guarantee at the registry level: a report assembled from results that
// were simulated on dist workers and merged through the JSON protocol is
// byte-identical to a local single-process report, and the coordinator
// itself simulates nothing.
func TestDistributedReportMatchesLocal(t *testing.T) {
	names := []string{"fig5", "table2", "area"}
	p := tinyParams()

	var local bytes.Buffer
	if _, err := registry.Report(&local, names, p, exp.Parallelism(1)); err != nil {
		t.Fatal(err)
	}

	var distributed bytes.Buffer
	cache := exp.NewCache()
	sets, err := registry.ReportDistributed(&distributed, names, p, pipeWorkers(t, 3), 1, cache, dist.Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(local.Bytes(), distributed.Bytes()) {
		t.Errorf("distributed report differs from local:\n--- local ---\n%s\n--- distributed ---\n%s",
			local.String(), distributed.String())
	}
	if cache.Simulations() != 0 {
		t.Errorf("coordinator simulated %d times; all simulation must happen on workers", cache.Simulations())
	}
	for _, name := range names {
		if _, ok := sets[name]; !ok {
			t.Errorf("no result set for %q", name)
		}
	}
}

// TestDistributedReportWarmCache pins the cache-file interplay: a cache
// warmed by one distributed run satisfies the next without any workers.
func TestDistributedReportWarmCache(t *testing.T) {
	names := []string{"fig8"}
	p := tinyParams()
	cache := exp.NewCache()
	var first bytes.Buffer
	if _, err := registry.ReportDistributed(&first, names, p, pipeWorkers(t, 2), 1, cache, dist.Options{}); err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if _, err := registry.ReportDistributed(&second, names, p, nil, 1, cache, dist.Options{}); err != nil {
		t.Fatalf("warm-cache distributed run must need no workers: %v", err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Error("warm-cache rerun differs from the run that warmed it")
	}
}

// TestSuiteDistributedMatchesLocal pins the -spec / -workers interplay:
// a described suite dispatched to workers renders byte-identically to a
// local run of the same suite — and, transitively, to the compiled-in
// experiment.
func TestSuiteDistributedMatchesLocal(t *testing.T) {
	p := tinyParams()
	s, err := registry.Describe("fig8", p)
	if err != nil {
		t.Fatal(err)
	}
	var local bytes.Buffer
	if _, err := registry.ReportSuite(&local, s, exp.Parallelism(1)); err != nil {
		t.Fatal(err)
	}
	var distributed bytes.Buffer
	cache := exp.NewCache()
	if _, err := registry.ReportSuiteDistributed(&distributed, s, pipeWorkers(t, 2), 1, cache, dist.Options{Logf: t.Logf}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(local.Bytes(), distributed.Bytes()) {
		t.Errorf("distributed suite report differs from local:\n--- local ---\n%s\n--- distributed ---\n%s",
			local.String(), distributed.String())
	}
	if cache.Simulations() != 0 {
		t.Errorf("coordinator simulated %d times; all simulation must happen on workers", cache.Simulations())
	}
}

// TestDistributedReportUnknownExperiment pins the coordinator-side error
// path before any dispatch.
func TestDistributedReportUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	_, err := registry.ReportDistributed(&out, []string{"nope"}, tinyParams(), nil, 1, nil, dist.Options{})
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Errorf("err = %v, want unknown-experiment", err)
	}
}

// genFleetCert writes a throwaway self-signed certificate and key for
// the elastic-fleet golden test's TLS transports.
func genFleetCert(t *testing.T) (certFile, keyFile string) {
	t.Helper()
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	tmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: "expd-test"},
		DNSNames:              []string{"localhost"},
		IPAddresses:           []net.IP{net.IPv4(127, 0, 0, 1), net.IPv6loopback},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(time.Hour),
		KeyUsage:              x509.KeyUsageDigitalSignature | x509.KeyUsageCertSign,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		BasicConstraintsValid: true,
		IsCA:                  true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		t.Fatal(err)
	}
	keyDER, err := x509.MarshalECPrivateKey(key)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	certFile = filepath.Join(dir, "cert.pem")
	keyFile = filepath.Join(dir, "key.pem")
	if err := os.WriteFile(certFile, pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: der}), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(keyFile, pem.EncodeToMemory(&pem.Block{Type: "EC PRIVATE KEY", Bytes: keyDER}), 0o600); err != nil {
		t.Fatal(err)
	}
	return certFile, keyFile
}

// TestElasticTLSFleetMatchesGolden is the acceptance pin for elastic,
// authenticated fleets: the full -all report, rendered from results
// simulated by workers that dial a TLS+token coordinator listener over
// real TCP — one joining only after dispatch has started, another
// leaving mid-run with a goodbye — is byte-identical to the committed
// single-process golden.
func TestElasticTLSFleetMatchesGolden(t *testing.T) {
	golden, err := os.ReadFile(filepath.Join("..", "..", "..", "cmd", "experiments", "testdata", "golden_all_tiny.txt"))
	if err != nil {
		t.Fatal(err)
	}
	certFile, keyFile := genFleetCert(t)
	acceptSec := dist.Security{CertFile: certFile, KeyFile: keyFile, Token: "fleet-secret"}
	dialSec := dist.Security{CAFile: certFile, Token: "fleet-secret"}

	// The coordinator's -accept-workers listener, exactly as cmd/expd
	// wires it: authenticate, read the register frame, feed the fleet.
	ln, err := acceptSec.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	join := make(chan dist.Worker)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				sc, err := acceptSec.Secure(c)
				if err != nil {
					t.Errorf("accept: %v", err)
					return
				}
				w, err := dist.AcceptWorker(sc, c.RemoteAddr().String())
				if err != nil {
					t.Errorf("accept: %v", err)
					return
				}
				join <- w
			}(conn)
		}
	}()

	// Worker wA dials in first; after its fourth simulation it leaves
	// the fleet mid-run via the goodbye path. Its first simulation gates
	// worker wB's dial, so wB provably joins after dispatch started and
	// finishes the run (including wA's handed-back remainder).
	leaveA := make(chan struct{})
	dialB := make(chan struct{})
	startWorker := func(name string, opts ...dist.ServeOption) {
		conn, err := dialSec.Dial(ln.Addr().String())
		if err != nil {
			t.Errorf("%s: %v", name, err)
			return
		}
		defer conn.Close()
		if err := dist.Register(conn, name); err != nil {
			t.Errorf("%s: %v", name, err)
			return
		}
		if err := dist.Serve(conn, opts...); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	var aRuns atomic.Int64
	var closeOnce, leaveOnce sync.Once
	go startWorker("wA", dist.LeaveOn(leaveA), dist.OnSimulate(func(exp.Key) {
		switch aRuns.Add(1) {
		case 1:
			closeOnce.Do(func() { close(dialB) })
		case 4:
			leaveOnce.Do(func() { close(leaveA) })
		}
	}))
	go func() {
		<-dialB
		startWorker("wB")
	}()

	var out bytes.Buffer
	cache := exp.NewCache()
	opts := dist.Options{Join: join, Logf: t.Logf}
	if _, err := registry.ReportDistributed(&out, registry.DefaultNames(), tinyParams(), nil, 1, cache, opts); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), golden) {
		t.Errorf("elastic TLS fleet output differs from the committed golden (%d vs %d bytes)", out.Len(), len(golden))
	}
	if cache.Simulations() != 0 {
		t.Errorf("coordinator simulated %d times; all simulation must happen on the fleet", cache.Simulations())
	}
}

// crashRW lets a fixed number of worker-side frames through, then fails
// every write and severs the pipe — a worker process dying mid-batch.
type crashRW struct {
	rw         io.ReadWriteCloser
	writesLeft atomic.Int32
	died       chan struct{}
	once       sync.Once
}

func newCrashRW(rw io.ReadWriteCloser, frames int32) *crashRW {
	c := &crashRW{rw: rw, died: make(chan struct{})}
	c.writesLeft.Store(frames)
	return c
}

func (c *crashRW) Read(p []byte) (int, error) { return c.rw.Read(p) }

func (c *crashRW) Write(p []byte) (int, error) {
	if c.writesLeft.Add(-1) < 0 {
		c.once.Do(func() {
			c.rw.Close()
			close(c.died)
		})
		return 0, fmt.Errorf("worker crashed")
	}
	return c.rw.Write(p)
}

// gateRW delays a worker's first read — and with it its handshake —
// until the gate opens, the scheduling device that forces the first
// batches onto the workers that will fail.
type gateRW struct {
	rw   io.ReadWriteCloser
	gate <-chan struct{}
}

func (g *gateRW) Read(p []byte) (int, error)  { <-g.gate; return g.rw.Read(p) }
func (g *gateRW) Write(p []byte) (int, error) { return g.rw.Write(p) }
func (g *gateRW) Close() error                { return g.rw.Close() }

// TestChaosFleetMatchesGolden is the fault-injection acceptance pin: the
// full -all report survives a worker crashing mid-batch AND a worker
// partitioning (connected but silent, cut by FrameTimeout) — with the
// output still byte-identical to the committed single-process golden,
// and the telemetry registry accounting the carnage: requeues happened,
// every worker retired, and the queue drained to zero.
func TestChaosFleetMatchesGolden(t *testing.T) {
	golden, err := os.ReadFile(filepath.Join("..", "..", "..", "cmd", "experiments", "testdata", "golden_all_tiny.txt"))
	if err != nil {
		t.Fatal(err)
	}

	// The crasher: handshakes, streams one result, then dies mid-batch.
	crashCoord, crashWorker := dist.Pipe()
	dying := newCrashRW(crashWorker, 2) // ready + one result
	go dist.Serve(dying)

	// The partitioned worker: handshakes, accepts a batch, then goes
	// silent while holding the connection open — only FrameTimeout can
	// declare it dead.
	stallCoord, stallWorker := dist.Pipe()
	gotBatch := make(chan struct{})
	go func() {
		m, err := dist.ReadMessage(stallWorker)
		if err != nil || m.Type != dist.TypeInit {
			return
		}
		if err := dist.WriteMessage(stallWorker, &dist.Message{Type: dist.TypeReady}); err != nil {
			return
		}
		if m, err = dist.ReadMessage(stallWorker); err != nil || m.Type != dist.TypeBatch {
			return
		}
		close(gotBatch)
		dist.ReadMessage(stallWorker) // silence: never answer again
	}()

	// Two healthy survivors, gated until both victims have their batches
	// (and the crasher is dead), so the first dispatches provably land on
	// the doomed workers and real requeues happen.
	gate := make(chan struct{})
	go func() {
		<-dying.died
		<-gotBatch
		close(gate)
	}()
	workers := []dist.Worker{
		{Name: "crasher", RW: crashCoord},
		{Name: "partitioned", RW: stallCoord},
	}
	for i := 0; i < 2; i++ {
		coordEnd, workerEnd := dist.Pipe()
		go dist.Serve(&gateRW{rw: workerEnd, gate: gate})
		workers = append(workers, dist.Worker{Name: fmt.Sprintf("survivor%d", i), RW: coordEnd})
	}

	reg := obs.NewRegistry()
	var out bytes.Buffer
	cache := exp.NewCache()
	opts := dist.Options{
		BatchSize:    8,
		FrameTimeout: 500 * time.Millisecond,
		Metrics:      reg,
		Logf:         t.Logf,
	}
	if _, err := registry.ReportDistributed(&out, registry.DefaultNames(), tinyParams(), workers, 1, cache, opts); err != nil {
		t.Fatalf("chaos run must still succeed: %v", err)
	}
	if !bytes.Equal(out.Bytes(), golden) {
		t.Errorf("chaos fleet output differs from the committed golden (%d vs %d bytes)", out.Len(), len(golden))
	}
	if cache.Simulations() != 0 {
		t.Errorf("coordinator simulated %d times; all simulation must happen on the fleet", cache.Simulations())
	}

	// The registry must have witnessed the chaos and the recovery.
	if got := reg.Counter("dist_requeued_jobs_total", "").Value(); got < 1 {
		t.Errorf("dist_requeued_jobs_total = %d, want >= 1 (a crash and a partition both requeue)", got)
	}
	if got := reg.Counter("dist_retired_workers_total", "").Value(); got != int64(len(workers)) {
		t.Errorf("dist_retired_workers_total = %d, want %d", got, len(workers))
	}
	if got := reg.Counter("dist_worker_joins_total", "").Value(); got != int64(len(workers)) {
		t.Errorf("dist_worker_joins_total = %d, want %d", got, len(workers))
	}
	if got := reg.Counter("dist_worker_goodbyes_total", "").Value(); got != 0 {
		t.Errorf("dist_worker_goodbyes_total = %d, want 0 (nobody left cleanly)", got)
	}
	if got := reg.Gauge("dist_queue_depth", "").Value(); got != 0 {
		t.Errorf("dist_queue_depth = %v after the run, want 0", got)
	}
	if got := reg.Gauge("dist_inflight_jobs", "").Value(); got != 0 {
		t.Errorf("dist_inflight_jobs = %v after the run, want 0", got)
	}
	if got := reg.Counter("dist_results_merged_total", "").Value(); got < 1 {
		t.Errorf("dist_results_merged_total = %d, want >= 1", got)
	}
}
