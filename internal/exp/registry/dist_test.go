package registry_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"icfp/internal/dist"
	"icfp/internal/exp"
	"icfp/internal/exp/registry"
)

// pipeWorkers serves n in-process workers over pipes. Workers carry no
// registry knowledge: batches are self-describing since protocol v2.
func pipeWorkers(t *testing.T, n int) []dist.Worker {
	t.Helper()
	workers := make([]dist.Worker, 0, n)
	for i := 0; i < n; i++ {
		coordEnd, workerEnd := dist.Pipe()
		go dist.Serve(workerEnd)
		workers = append(workers, dist.Worker{Name: fmt.Sprintf("w%d", i), RW: coordEnd})
	}
	return workers
}

// TestDistributedReportMatchesLocal is the cross-process determinism
// guarantee at the registry level: a report assembled from results that
// were simulated on dist workers and merged through the JSON protocol is
// byte-identical to a local single-process report, and the coordinator
// itself simulates nothing.
func TestDistributedReportMatchesLocal(t *testing.T) {
	names := []string{"fig5", "table2", "area"}
	p := tinyParams()

	var local bytes.Buffer
	if _, err := registry.Report(&local, names, p, exp.Parallelism(1)); err != nil {
		t.Fatal(err)
	}

	var distributed bytes.Buffer
	cache := exp.NewCache()
	sets, err := registry.ReportDistributed(&distributed, names, p, pipeWorkers(t, 3), 1, cache, dist.Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(local.Bytes(), distributed.Bytes()) {
		t.Errorf("distributed report differs from local:\n--- local ---\n%s\n--- distributed ---\n%s",
			local.String(), distributed.String())
	}
	if cache.Simulations() != 0 {
		t.Errorf("coordinator simulated %d times; all simulation must happen on workers", cache.Simulations())
	}
	for _, name := range names {
		if _, ok := sets[name]; !ok {
			t.Errorf("no result set for %q", name)
		}
	}
}

// TestDistributedReportWarmCache pins the cache-file interplay: a cache
// warmed by one distributed run satisfies the next without any workers.
func TestDistributedReportWarmCache(t *testing.T) {
	names := []string{"fig8"}
	p := tinyParams()
	cache := exp.NewCache()
	var first bytes.Buffer
	if _, err := registry.ReportDistributed(&first, names, p, pipeWorkers(t, 2), 1, cache, dist.Options{}); err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if _, err := registry.ReportDistributed(&second, names, p, nil, 1, cache, dist.Options{}); err != nil {
		t.Fatalf("warm-cache distributed run must need no workers: %v", err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Error("warm-cache rerun differs from the run that warmed it")
	}
}

// TestSuiteDistributedMatchesLocal pins the -spec / -workers interplay:
// a described suite dispatched to workers renders byte-identically to a
// local run of the same suite — and, transitively, to the compiled-in
// experiment.
func TestSuiteDistributedMatchesLocal(t *testing.T) {
	p := tinyParams()
	s, err := registry.Describe("fig8", p)
	if err != nil {
		t.Fatal(err)
	}
	var local bytes.Buffer
	if _, err := registry.ReportSuite(&local, s, exp.Parallelism(1)); err != nil {
		t.Fatal(err)
	}
	var distributed bytes.Buffer
	cache := exp.NewCache()
	if _, err := registry.ReportSuiteDistributed(&distributed, s, pipeWorkers(t, 2), 1, cache, dist.Options{Logf: t.Logf}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(local.Bytes(), distributed.Bytes()) {
		t.Errorf("distributed suite report differs from local:\n--- local ---\n%s\n--- distributed ---\n%s",
			local.String(), distributed.String())
	}
	if cache.Simulations() != 0 {
		t.Errorf("coordinator simulated %d times; all simulation must happen on workers", cache.Simulations())
	}
}

// TestDistributedReportUnknownExperiment pins the coordinator-side error
// path before any dispatch.
func TestDistributedReportUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	_, err := registry.ReportDistributed(&out, []string{"nope"}, tinyParams(), nil, 1, nil, dist.Options{})
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Errorf("err = %v, want unknown-experiment", err)
	}
}
