package registry_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"icfp/internal/dist"
	"icfp/internal/exp"
	"icfp/internal/exp/registry"
)

// pipeWorkers serves n in-process registry workers over pipes.
func pipeWorkers(t *testing.T, n int) []dist.Worker {
	t.Helper()
	workers := make([]dist.Worker, 0, n)
	for i := 0; i < n; i++ {
		coordEnd, workerEnd := dist.Pipe()
		go dist.Serve(workerEnd, registry.ResolveWorker)
		workers = append(workers, dist.Worker{Name: fmt.Sprintf("w%d", i), RW: coordEnd})
	}
	return workers
}

// TestDistributedReportMatchesLocal is the cross-process determinism
// guarantee at the registry level: a report assembled from results that
// were simulated on dist workers and merged through the JSON protocol is
// byte-identical to a local single-process report, and the coordinator
// itself simulates nothing.
func TestDistributedReportMatchesLocal(t *testing.T) {
	names := []string{"fig5", "table2", "area"}
	p := tinyParams()

	var local bytes.Buffer
	if _, err := registry.Report(&local, names, p, exp.Parallelism(1)); err != nil {
		t.Fatal(err)
	}

	var distributed bytes.Buffer
	cache := exp.NewCache()
	sets, err := registry.ReportDistributed(&distributed, names, p, pipeWorkers(t, 3), 1, cache, dist.Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(local.Bytes(), distributed.Bytes()) {
		t.Errorf("distributed report differs from local:\n--- local ---\n%s\n--- distributed ---\n%s",
			local.String(), distributed.String())
	}
	if cache.Simulations() != 0 {
		t.Errorf("coordinator simulated %d times; all simulation must happen on workers", cache.Simulations())
	}
	for _, name := range names {
		if _, ok := sets[name]; !ok {
			t.Errorf("no result set for %q", name)
		}
	}
}

// TestDistributedReportWarmCache pins the cache-file interplay: a cache
// warmed by one distributed run satisfies the next without any workers.
func TestDistributedReportWarmCache(t *testing.T) {
	names := []string{"fig8"}
	p := tinyParams()
	cache := exp.NewCache()
	var first bytes.Buffer
	if _, err := registry.ReportDistributed(&first, names, p, pipeWorkers(t, 2), 1, cache, dist.Options{}); err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if _, err := registry.ReportDistributed(&second, names, p, nil, 1, cache, dist.Options{}); err != nil {
		t.Fatalf("warm-cache distributed run must need no workers: %v", err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Error("warm-cache rerun differs from the run that warmed it")
	}
}

// TestResolveWorkerRejectsBadSpecs pins the worker-side validation.
func TestResolveWorkerRejectsBadSpecs(t *testing.T) {
	for name, spec := range map[string]string{
		"garbage":        "not json",
		"zero n":         `{"names":["fig5"],"n":0,"warm":100}`,
		"negative":       `{"names":["fig5"],"n":100,"warm":-1}`,
		"unknown name":   `{"names":["nope"],"n":100,"warm":100}`,
		"hostile n":      `{"names":["fig5"],"n":2000000000,"warm":100}`,
		"hostile warm":   `{"names":["fig5"],"n":100,"warm":2000000000}`,
		"hostile fanout": `{"names":["fig5"],"n":100,"warm":100,"parallel":100000000}`,
	} {
		if _, _, err := registry.ResolveWorker([]byte(spec)); err == nil {
			t.Errorf("%s: ResolveWorker accepted %q", name, spec)
		}
	}
	jobs, parallel, err := registry.ResolveWorker([]byte(`{"names":["fig8"],"n":2000,"warm":1000,"parallel":2}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) == 0 || parallel != 2 {
		t.Errorf("ResolveWorker = %d jobs, parallel %d; want jobs and parallel 2", len(jobs), parallel)
	}
}

// TestDistributedReportUnknownExperiment pins the coordinator-side error
// path before any dispatch.
func TestDistributedReportUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	_, err := registry.ReportDistributed(&out, []string{"nope"}, tinyParams(), nil, 1, nil, dist.Options{})
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Errorf("err = %v, want unknown-experiment", err)
	}
}
