package registry

import (
	"fmt"
	"io"

	"icfp/internal/area"
	"icfp/internal/exp"
	"icfp/internal/pipeline"
	"icfp/internal/sim"
	"icfp/internal/spec"
	"icfp/internal/workload"
)

// fig5Models are the four latency-tolerant designs compared against the
// in-order baseline throughout the evaluation.
var fig5Models = []sim.Model{sim.Runahead, sim.Multipass, sim.SLTP, sim.ICFP}

// fig6Lats are the L2 hit latencies of the Figure 6 sweep.
var fig6Lats = []int{10, 20, 30, 40, 50}

// figure7Names are the benchmarks the paper shows in the feature build.
var figure7Names = []string{"ammp", "applu", "art", "equake", "swim", "bzip2", "gap", "gzip", "mcf", "vpr"}

// figure8Names are the benchmarks the paper shows for store buffers.
var figure8Names = []string{"applu", "equake", "swim", "bzip2", "gzip", "vpr"}

// ablateNames pair a dependent-miss workload with a streaming one.
var ablateNames = []string{"mcf", "swim"}

func table1Exp() Experiment {
	e := Experiment{
		Name: "table1",
		Desc: "simulated processor configuration (Table 1)",
	}
	e.Suite = func(p Params) (spec.Suite, error) {
		return newSuite(e, p).done() // analytic: no simulations
	}
	e.Print = func(w io.Writer, p Params, _ *exp.ResultSet) {
		cfg := p.Cfg
		h := cfg.Hier
		fmt.Fprintln(w, "== Table 1: simulated processor configuration ==")
		fmt.Fprintf(w, "Pipeline   %d-wide, %d front-end stages + 1 ALU + %d D$ + 1 reg-write; %d int ports, %d fp/ls/br port\n",
			cfg.Width, cfg.FrontDepth, cfg.DCachePipe, cfg.IntPorts, cfg.MemFPBrPorts)
		fmt.Fprintf(w, "Bpred      PPM %d-table (hist %v), %d-entry BTB, %d-entry RAS\n",
			len(cfg.Bpred.HistLens), cfg.Bpred.HistLens, 1<<cfg.Bpred.BTBBits, cfg.Bpred.RASEntries)
		fmt.Fprintf(w, "I$/D$      %d KB, %d-way, %d B lines, %d-entry victim buffers\n",
			h.L1D.SizeBytes>>10, h.L1D.Assoc, h.L1D.LineBytes, h.L1D.VictimEntries)
		fmt.Fprintf(w, "L2         %d MB, %d-way, %d B lines, %d-cycle hit, %d-entry victim buffer\n",
			h.L2.SizeBytes>>20, h.L2.Assoc, h.L2.LineBytes, h.L2HitLat, h.L2.VictimEntries)
		fmt.Fprintf(w, "Memory     %d-cycle latency, %d cycles per %d B chunk, %d MSHRs\n",
			h.MemLat, h.MemChunkLat, h.MemChunkBytes, h.NumMSHRs)
		fmt.Fprintf(w, "Prefetch   %d stream buffers x %d blocks\n", h.StreamBufs, h.StreamBufBlocks)
		fmt.Fprintf(w, "iCFP       %d-entry chained SB, %d-entry chain table, %d-entry slice buffer, %d-bit poison vectors\n",
			cfg.ChainedSBEntries, cfg.ChainTableEntries, cfg.SliceEntries, cfg.PoisonBits)
		fmt.Fprintf(w, "Others     %d-entry runahead cache, %d-entry SRL, %d-entry result buffer, %d-entry store buffer\n\n",
			cfg.RunaheadCache, cfg.SRLEntries, cfg.ResultBufEntries, cfg.StoreBufEntries)
	}
	return e
}

// fig5Suite builds the Figure 5 job set under e's name prefix: the
// in-order baseline and the four latency-tolerant designs over every
// benchmark. fig5 and its sampled variant fig5s share it; the distinct
// prefixes keep their jobs from colliding when both are selected.
func fig5Suite(e Experiment, p Params) (spec.Suite, error) {
	b := newSuite(e, p)
	for _, name := range workload.AllSPECNames {
		wl := spec.SPECWorkload(name, p.Cfg.WarmupInsts+p.N)
		b.add(e.Name+"/"+name+"/base", sim.InOrder.Spec(), p.Cfg, wl)
		for _, m := range fig5Models {
			b.add(e.Name+"/"+name+"/"+m.String(), m.Spec(), p.Cfg, wl)
		}
	}
	return b.done()
}

func fig5Exp() Experiment {
	e := Experiment{
		Name: "fig5",
		Desc: "speedups over in-order: Runahead, Multipass, SLTP, iCFP (Figure 5)",
	}
	e.Suite = func(p Params) (spec.Suite, error) {
		return fig5Suite(e, p)
	}
	e.Print = func(w io.Writer, p Params, rs *exp.ResultSet) {
		// Sampled cells (the -sample flag family) grow a ±CI tail; full
		// cells format exactly as always, keeping the golden intact.
		sp := func(name string, m sim.Model) string {
			return spCell(rs, "%+8.1f%%", "fig5/"+name+"/"+m.String(), "fig5/"+name+"/base")
		}
		fmt.Fprintln(w, "== Figure 5: % speedup over in-order ==")
		fmt.Fprintf(w, "%-9s %9s %9s %9s %9s\n", "bench", "Runahead", "Multipass", "SLTP", "iCFP")
		for _, name := range workload.AllSPECNames {
			fmt.Fprintf(w, "%-9s %s %s %s %s\n", name,
				sp(name, sim.Runahead), sp(name, sim.Multipass), sp(name, sim.SLTP), sp(name, sim.ICFP))
		}
		for _, grp := range []struct {
			label string
			names []string
		}{
			{"SPECfp", workload.SPECfpNames},
			{"SPECint", workload.SPECintNames},
			{"SPEC", workload.AllSPECNames},
		} {
			geo := func(m sim.Model) float64 {
				pairs := make([][2]string, 0, len(grp.names))
				for _, name := range grp.names {
					pairs = append(pairs, [2]string{"fig5/" + name + "/" + m.String(), "fig5/" + name + "/base"})
				}
				return rs.GeoMeanSpeedup(pairs)
			}
			fmt.Fprintf(w, "%-9s %+8.1f%% %+8.1f%% %+8.1f%% %+8.1f%%   (geomean)\n", grp.label,
				geo(sim.Runahead), geo(sim.Multipass), geo(sim.SLTP), geo(sim.ICFP))
		}
		fmt.Fprintln(w, "paper geomeans: Runahead 11%, Multipass 11%, SLTP 9%, iCFP 16%")
		fmt.Fprintln(w)
	}
	return e
}

// fig5sExp is fig5's sampled long-workload variant: the same comparison
// at 25x the instruction count (the paper-scale regime where sampling
// theory applies), measured by interval sampling at near-constant
// detailed cost, with every cell carrying its 95% confidence
// half-width. It is Extra — excluded from -all so the full-mode report
// and its golden stay exactly the paper's evaluation — and runs when
// named (-fig5s), under DefaultSampling unless the -sample flag family
// pins a policy.
func fig5sExp() Experiment {
	const scale = 25
	e := Experiment{
		Name:  "fig5s",
		Desc:  "Figure 5 at 25x workload length via interval sampling (speedup ± 95% CI)",
		Extra: true,
	}
	e.Suite = func(p Params) (spec.Suite, error) {
		q := p
		q.N = p.N * scale
		if q.Sampling == nil {
			q.Sampling = DefaultSampling(q.Cfg.WarmupInsts + q.N)
		}
		return fig5Suite(e, q)
	}
	e.Print = func(w io.Writer, p Params, rs *exp.ResultSet) {
		fmt.Fprintln(w, "== Figure 5 sampled, 25x length: % speedup over in-order ± 95% CI ==")
		fmt.Fprintf(w, "%-9s %14s %14s %14s %14s\n", "bench", "Runahead", "Multipass", "SLTP", "iCFP")
		for _, name := range workload.AllSPECNames {
			fmt.Fprintf(w, "%-9s", name)
			for _, m := range fig5Models {
				sp, ci := rs.SpeedupCI95("fig5s/"+name+"/"+m.String(), "fig5s/"+name+"/base")
				fmt.Fprintf(w, " %14s", fmt.Sprintf("%+.1f%%±%.1f", sp, ci))
			}
			fmt.Fprintln(w)
		}
		geo := func(m sim.Model) float64 {
			pairs := make([][2]string, 0, len(workload.AllSPECNames))
			for _, name := range workload.AllSPECNames {
				pairs = append(pairs, [2]string{"fig5s/" + name + "/" + m.String(), "fig5s/" + name + "/base"})
			}
			return rs.GeoMeanSpeedup(pairs)
		}
		fmt.Fprintf(w, "%-9s %+13.1f%% %+13.1f%% %+13.1f%% %+13.1f%%   (geomean)\n", "SPEC",
			geo(sim.Runahead), geo(sim.Multipass), geo(sim.SLTP), geo(sim.ICFP))
		fmt.Fprintln(w)
	}
	return e
}

func table2Exp() Experiment {
	models := []sim.Model{sim.InOrder, sim.Runahead, sim.ICFP}
	e := Experiment{
		Name: "table2",
		Desc: "diagnostics: miss rates, D$/L2 MLP, iCFP rally rate (Table 2)",
	}
	e.Suite = func(p Params) (spec.Suite, error) {
		b := newSuite(e, p)
		for _, name := range workload.AllSPECNames {
			wl := spec.SPECWorkload(name, p.Cfg.WarmupInsts+p.N)
			for _, m := range models {
				b.add("table2/"+name+"/"+m.String(), m.Spec(), p.Cfg, wl)
			}
		}
		return b.done()
	}
	e.Print = func(w io.Writer, p Params, rs *exp.ResultSet) {
		fmt.Fprintln(w, "== Table 2: diagnostics (miss/KI from the in-order baseline) ==")
		fmt.Fprintf(w, "%-9s %6s %6s | %6s %6s %6s | %6s %6s %6s | %8s\n",
			"bench", "D$/KI", "L2/KI", "dMLPiO", "dMLPra", "dMLPic", "l2iO", "l2ra", "l2ic", "rally/KI")
		for _, name := range workload.AllSPECNames {
			io := rs.MustGet("table2/" + name + "/in-order")
			ra := rs.MustGet("table2/" + name + "/Runahead")
			ic := rs.MustGet("table2/" + name + "/iCFP")
			fmt.Fprintf(w, "%-9s %6.1f %6.1f | %6.1f %6.1f %6.1f | %6.1f %6.1f %6.1f | %8.0f\n",
				name, io.DCacheMissPerKI, io.L2MissPerKI,
				io.DCacheMLP, ra.DCacheMLP, ic.DCacheMLP,
				io.L2MLP, ra.L2MLP, ic.L2MLP, ic.RallyPerKI)
		}
		fmt.Fprintln(w)
	}
	return e
}

func fig6Exp() Experiment {
	machines := sim.Figure6Machines()[1:] // skip the in-order baseline row
	e := Experiment{
		Name: "fig6",
		Desc: "L2 hit-latency sensitivity, equake + SPEC geomean (Figure 6)",
	}
	e.Suite = func(p Params) (spec.Suite, error) {
		b := newSuite(e, p)
		n2 := p.N / 2 // the full-suite sweep is the heaviest experiment
		for _, lat := range fig6Lats {
			cl := p.Cfg
			cl.Hier.L2HitLat = lat
			wlEq := spec.SPECWorkload("equake", cl.WarmupInsts+p.N)
			b.add(fmt.Sprintf("fig6/equake/base/%d", lat), sim.InOrder.Spec(), cl, wlEq)
			for _, m := range machines {
				b.add(fmt.Sprintf("fig6/equake/%s/%d", m.Label, lat), m.Machine, cl, wlEq)
			}
			for _, bench := range workload.AllSPECNames {
				wl := spec.SPECWorkload(bench, cl.WarmupInsts+n2)
				b.add(fmt.Sprintf("fig6/spec/%s/base/%d", bench, lat), sim.InOrder.Spec(), cl, wl)
				for _, m := range machines {
					b.add(fmt.Sprintf("fig6/spec/%s/%s/%d", bench, m.Label, lat), m.Machine, cl, wl)
				}
			}
		}
		return b.done()
	}
	e.Print = func(w io.Writer, p Params, rs *exp.ResultSet) {
		fmt.Fprintln(w, "== Figure 6: % speedup over in-order vs L2 hit latency ==")
		header := func() {
			fmt.Fprintf(w, "%-18s", "config")
			for _, l := range fig6Lats {
				fmt.Fprintf(w, " %7d", l)
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w, "-- equake --")
		header()
		for _, m := range machines {
			fmt.Fprintf(w, "%-18s", m.Label)
			for _, lat := range fig6Lats {
				fmt.Fprintf(w, " %s", spCell(rs, "%+6.1f%%",
					fmt.Sprintf("fig6/equake/%s/%d", m.Label, lat),
					fmt.Sprintf("fig6/equake/base/%d", lat)))
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w, "-- SPEC geomean --")
		header()
		for _, m := range machines {
			fmt.Fprintf(w, "%-18s", m.Label)
			for _, lat := range fig6Lats {
				pairs := make([][2]string, 0, len(workload.AllSPECNames))
				for _, bench := range workload.AllSPECNames {
					pairs = append(pairs, [2]string{
						fmt.Sprintf("fig6/spec/%s/%s/%d", bench, m.Label, lat),
						fmt.Sprintf("fig6/spec/%s/base/%d", bench, lat)})
				}
				fmt.Fprintf(w, " %+6.1f%%", rs.GeoMeanSpeedup(pairs))
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w)
	}
	return e
}

func fig7Exp() Experiment {
	builds := sim.FeatureBuildConfigs()
	e := Experiment{
		Name: "fig7",
		Desc: "iCFP feature build from SLTP (Figure 7)",
	}
	e.Suite = func(p Params) (spec.Suite, error) {
		b := newSuite(e, p)
		for _, name := range figure7Names {
			wl := spec.SPECWorkload(name, p.Cfg.WarmupInsts+p.N)
			b.add("fig7/"+name+"/base", sim.InOrder.Spec(), p.Cfg, wl)
			for i, build := range builds {
				b.add(fmt.Sprintf("fig7/%s/bar%d", name, i+1), build.Machine, p.Cfg, wl)
			}
		}
		return b.done()
	}
	e.Print = func(w io.Writer, p Params, rs *exp.ResultSet) {
		fmt.Fprintln(w, "== Figure 7: iCFP feature build, % speedup over in-order ==")
		fmt.Fprintf(w, "%-9s", "bench")
		for i := range builds {
			fmt.Fprintf(w, "  bar%d   ", i+1)
		}
		fmt.Fprintln(w)
		for i, b := range builds {
			fmt.Fprintf(w, "bar%d = %s\n", i+1, b.Label)
		}
		for _, name := range figure7Names {
			fmt.Fprintf(w, "%-9s", name)
			for i := range builds {
				fmt.Fprintf(w, " %s", spCell(rs, "%+7.1f%%", fmt.Sprintf("fig7/%s/bar%d", name, i+1), "fig7/"+name+"/base"))
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w)
	}
	return e
}

func fig8Exp() Experiment {
	sbs := sim.StoreBufferConfigs()
	e := Experiment{
		Name: "fig8",
		Desc: "store-buffer design comparison (Figure 8)",
	}
	e.Suite = func(p Params) (spec.Suite, error) {
		b := newSuite(e, p)
		for _, name := range figure8Names {
			wl := spec.SPECWorkload(name, p.Cfg.WarmupInsts+p.N)
			b.add("fig8/"+name+"/base", sim.InOrder.Spec(), p.Cfg, wl)
			for _, sb := range sbs {
				b.add(fmt.Sprintf("fig8/%s/%s", name, sb.Label), sb.Machine, p.Cfg, wl)
			}
		}
		return b.done()
	}
	e.Print = func(w io.Writer, p Params, rs *exp.ResultSet) {
		fmt.Fprintln(w, "== Figure 8: store buffer designs, % speedup over in-order ==")
		fmt.Fprintf(w, "%-9s %12s %12s %12s\n", "bench", "limited", "chained", "ideal")
		for _, name := range figure8Names {
			fmt.Fprintf(w, "%-9s", name)
			for _, sb := range sbs {
				fmt.Fprintf(w, " %s", spCell(rs, "%+11.1f%%", fmt.Sprintf("fig8/%s/%s", name, sb.Label), "fig8/"+name+"/base"))
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w)
	}
	return e
}

func hopsExp() Experiment {
	e := Experiment{
		Name: "hops",
		Desc: "chained store buffer hop statistics and chain-table size (§3.2)",
	}
	e.Suite = func(p Params) (spec.Suite, error) {
		b := newSuite(e, p)
		small := p.Cfg
		small.ChainTableEntries = 64
		for _, name := range workload.AllSPECNames {
			wl := spec.SPECWorkload(name, p.Cfg.WarmupInsts+p.N)
			b.add("hops/"+name+"/512", sim.ICFP.Spec(), p.Cfg, wl)
			b.add("hops/"+name+"/64", sim.ICFP.Spec(), small, wl)
		}
		return b.done()
	}
	e.Print = func(w io.Writer, p Params, rs *exp.ResultSet) {
		fmt.Fprintln(w, "== §3.2: chained store buffer excess hops per load ==")
		fmt.Fprintf(w, "%-9s %12s %12s | %12s\n", "bench", "hops(512ct)", ">=5 hops", "hops(64ct)")
		for _, name := range workload.AllSPECNames {
			r := rs.MustGet("hops/" + name + "/512")
			r64 := rs.MustGet("hops/" + name + "/64")
			fmt.Fprintf(w, "%-9s %12.3f %11.1f%% | %12.3f\n", name, r.SBExtraHops, r.SBHopsAtLeast*100, r64.SBExtraHops)
		}
		fmt.Fprintln(w, "paper: < 0.5 for all benchmarks, < 0.05 for most")
		fmt.Fprintln(w)
	}
	return e
}

func poisonExp() Experiment {
	e := Experiment{
		Name: "poison",
		Desc: "poison vector width study, 1 vs 8 bits (§3.4)",
	}
	e.Suite = func(p Params) (spec.Suite, error) {
		b := newSuite(e, p)
		one := p.Cfg
		one.PoisonBits = 1
		for _, name := range workload.AllSPECNames {
			wl := spec.SPECWorkload(name, p.Cfg.WarmupInsts+p.N)
			b.add("poison/"+name+"/1", sim.ICFP.Spec(), one, wl)
			b.add("poison/"+name+"/8", sim.ICFP.Spec(), p.Cfg, wl)
		}
		return b.done()
	}
	e.Print = func(w io.Writer, p Params, rs *exp.ResultSet) {
		fmt.Fprintln(w, "== §3.4: poison vector width (speedup of 8-bit over 1-bit) ==")
		speedups := []float64{}
		for _, name := range workload.AllSPECNames {
			speedups = append(speedups, rs.Speedup("poison/"+name+"/8", "poison/"+name+"/1"))
			fmt.Fprintf(w, "%-9s %s\n", name, spCell(rs, "%+6.1f%%", "poison/"+name+"/8", "poison/"+name+"/1"))
		}
		fmt.Fprintf(w, "%-9s %+6.1f%%   (paper: +1.5%% average, +6%% on mcf)\n\n", "geomean", exp.GeoMeanPercent(speedups))
	}
	return e
}

func areaExp() Experiment {
	e := Experiment{
		Name: "area",
		Desc: "area overheads at 45 nm (§5.3)",
	}
	e.Suite = func(p Params) (spec.Suite, error) {
		return newSuite(e, p).done() // analytic: no simulations
	}
	e.Print = func(w io.Writer, p Params, _ *exp.ResultSet) {
		fmt.Fprintln(w, "== §5.3: area overheads (45 nm) ==")
		for _, d := range area.AllDesigns() {
			fmt.Fprintf(w, "%-10s %.3f mm²  (paper %.2f)\n", d.Name, d.Total(), area.PaperMM2[d.Name])
			for _, s := range d.Structures {
				fmt.Fprintf(w, "    %-28s %.4f\n", s.Name, s.MM2())
			}
		}
		fmt.Fprintln(w)
	}
	return e
}

func oooExp() Experiment {
	e := Experiment{
		Name: "ooo",
		Desc: "out-of-order and out-of-order CFP comparison (§5.3)",
	}
	e.Suite = func(p Params) (spec.Suite, error) {
		b := newSuite(e, p)
		for _, name := range workload.AllSPECNames {
			wl := spec.SPECWorkload(name, p.Cfg.WarmupInsts+p.N)
			b.add("ooo/"+name+"/base", sim.InOrder.Spec(), p.Cfg, wl)
			b.add("ooo/"+name+"/2way", spec.Machine{Model: spec.ModelOOO}, p.Cfg, wl)
			b.add("ooo/"+name+"/cfp", spec.Machine{Model: spec.ModelOOO, CFP: true}, p.Cfg, wl)
		}
		return b.done()
	}
	e.Print = func(w io.Writer, p Params, rs *exp.ResultSet) {
		fmt.Fprintln(w, "== §5.3: 2-way out-of-order and out-of-order CFP vs in-order ==")
		var po, pc [][2]string
		for _, name := range workload.AllSPECNames {
			fmt.Fprintf(w, "%-9s ooo %s   ooo-cfp %s\n", name,
				spCell(rs, "%+7.1f%%", "ooo/"+name+"/2way", "ooo/"+name+"/base"),
				spCell(rs, "%+7.1f%%", "ooo/"+name+"/cfp", "ooo/"+name+"/base"))
			po = append(po, [2]string{"ooo/" + name + "/2way", "ooo/" + name + "/base"})
			pc = append(pc, [2]string{"ooo/" + name + "/cfp", "ooo/" + name + "/base"})
		}
		fmt.Fprintf(w, "%-9s ooo %+7.1f%%   ooo-cfp %+7.1f%%   (geomean; paper: +68%% and +83%%)\n\n",
			"SPEC", rs.GeoMeanSpeedup(po), rs.GeoMeanSpeedup(pc))
	}
	return e
}

// ablateSweeps are the DESIGN.md structure-size ablations: each varies
// one iCFP structure over a range of sizes.
var ablateSweeps = []struct {
	label  string
	vals   []int
	modify func(cfg *pipeline.Config, v int)
}{
	{"slice buffer entries", []int{32, 64, 128, 256}, func(cfg *pipeline.Config, v int) { cfg.SliceEntries = v }},
	{"chained store buffer entries", []int{32, 64, 128, 256}, func(cfg *pipeline.Config, v int) { cfg.ChainedSBEntries = v }},
	{"poison vector width (bits)", []int{1, 2, 4, 8}, func(cfg *pipeline.Config, v int) { cfg.PoisonBits = v }},
}

func ablateExp() Experiment {
	e := Experiment{
		Name: "ablate",
		Desc: "iCFP structure-size ablations (DESIGN.md)",
	}
	e.Suite = func(p Params) (spec.Suite, error) {
		b := newSuite(e, p)
		// The in-order baseline ignores every swept structure, so one
		// baseline per benchmark serves all sweep points.
		for _, name := range ablateNames {
			wl := spec.SPECWorkload(name, p.Cfg.WarmupInsts+p.N)
			b.add("ablate/base/"+name, sim.InOrder.Spec(), p.Cfg, wl)
		}
		for si, sweep := range ablateSweeps {
			for _, v := range sweep.vals {
				c := p.Cfg
				sweep.modify(&c, v)
				for _, name := range ablateNames {
					wl := spec.SPECWorkload(name, p.Cfg.WarmupInsts+p.N)
					b.add(fmt.Sprintf("ablate/%d/%d/%s", si, v, name), sim.ICFP.Spec(), c, wl)
				}
			}
		}
		return b.done()
	}
	e.Print = func(w io.Writer, p Params, rs *exp.ResultSet) {
		fmt.Fprintln(w, "== Ablations: iCFP structure sizing ==")
		for si, sweep := range ablateSweeps {
			fmt.Fprintf(w, "-- %s --\n", sweep.label)
			for _, v := range sweep.vals {
				fmt.Fprintf(w, "%4d:", v)
				for _, name := range ablateNames {
					fmt.Fprintf(w, "  %s %s", name,
						spCell(rs, "%+7.1f%%", fmt.Sprintf("ablate/%d/%d/%s", si, v, name), "ablate/base/"+name))
				}
				fmt.Fprintln(w)
			}
		}
		fmt.Fprintln(w)
	}
	return e
}

// fuzzModels are the latency-tolerant designs the fuzz-corpus
// experiment compares against the in-order baseline.
var fuzzModels = []sim.Model{sim.Runahead, sim.SLTP, sim.ICFP}

func fuzzExp() Experiment {
	e := Experiment{
		Name: "fuzz",
		Desc: "adversarial fuzz-corpus cross-model comparison (workload.FuzzCorpus)",
		// The corpus is a correctness instrument, not a paper figure:
		// keep it out of -all so the committed -all golden stays exactly
		// the paper's evaluation.
		Extra: true,
	}
	e.Suite = func(p Params) (spec.Suite, error) {
		b := newSuite(e, p)
		for _, c := range workload.FuzzCorpus() {
			wl := spec.FuzzWorkload(c.Seed, c.Knobs, p.Cfg.WarmupInsts+p.N)
			b.add("fuzz/"+c.Label+"/base", sim.InOrder.Spec(), p.Cfg, wl)
			for _, m := range fuzzModels {
				b.add("fuzz/"+c.Label+"/"+m.String(), m.Spec(), p.Cfg, wl)
			}
		}
		return b.done()
	}
	e.Print = func(w io.Writer, p Params, rs *exp.ResultSet) {
		fmt.Fprintln(w, "== adversarial fuzz corpus: percent speedup over in-order ==")
		fmt.Fprintf(w, "%-13s", "scenario")
		for _, m := range fuzzModels {
			fmt.Fprintf(w, " %9s", m.String())
		}
		fmt.Fprintln(w)
		speedups := make(map[sim.Model][]float64)
		for _, c := range workload.FuzzCorpus() {
			fmt.Fprintf(w, "%-13s", c.Label)
			base := "fuzz/" + c.Label + "/base"
			for _, m := range fuzzModels {
				name := "fuzz/" + c.Label + "/" + m.String()
				speedups[m] = append(speedups[m], rs.Speedup(name, base))
				fmt.Fprintf(w, " %s", spCell(rs, "%+8.1f%%", name, base))
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "%-13s", "geomean")
		for _, m := range fuzzModels {
			fmt.Fprintf(w, " %+8.1f%%", exp.GeoMeanPercent(speedups[m]))
		}
		fmt.Fprintln(w)
		fmt.Fprintln(w)
	}
	return e
}
