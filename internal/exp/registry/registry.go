// Package registry names the experiments of the paper's evaluation —
// every figure, table, and sensitivity study of §3/§5 — and runs them on
// the exp harness. All experiments selected for one Run share a
// memoization cache, so common work (above all the in-order baseline
// runs that every speedup figure divides by) simulates exactly once no
// matter how many experiments need it.
package registry

import (
	"fmt"
	"io"

	"icfp/internal/exp"
	"icfp/internal/pipeline"
	"icfp/internal/sim"
)

// Params are the knobs shared by every experiment: the machine
// configuration (whose WarmupInsts is the per-sample warmup) and the
// number of timed instructions per sample.
type Params struct {
	Cfg pipeline.Config
	N   int
}

// DefaultParams mirrors the cmd/experiments defaults: the Table 1
// machine, scaled-down samples.
func DefaultParams() Params {
	cfg := sim.DefaultConfig()
	return Params{Cfg: cfg, N: 400_000}
}

// Experiment is one named entry of the evaluation. Jobs builds the
// simulations it needs (nil for analytic experiments like the area
// model); Print renders its table from the completed results.
type Experiment struct {
	Name  string
	Desc  string
	Jobs  func(p Params) []exp.Job
	Print func(w io.Writer, p Params, rs *exp.ResultSet)
}

// All lists the registry in the paper's presentation order.
func All() []Experiment {
	return []Experiment{
		table1Exp(),
		fig5Exp(),
		table2Exp(),
		fig6Exp(),
		fig7Exp(),
		fig8Exp(),
		hopsExp(),
		poisonExp(),
		areaExp(),
		oooExp(),
		ablateExp(),
	}
}

// Names lists the experiment names in registry order.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, e := range all {
		names[i] = e.Name
	}
	return names
}

// Lookup returns the named experiment.
func Lookup(name string) (Experiment, bool) {
	for _, e := range All() {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// collect resolves the experiment names (deduplicated, order-preserving)
// and gathers their combined job list with per-experiment counts — the
// shared front half of Run and of distributed planning, which must agree
// exactly on the job set across processes.
func collect(names []string, p Params) (selected []Experiment, jobs []exp.Job, counts []int, err error) {
	picked := make(map[string]bool, len(names))
	for _, name := range names {
		e, ok := Lookup(name)
		if !ok {
			return nil, nil, nil, fmt.Errorf("registry: unknown experiment %q (have %v)", name, Names())
		}
		if !picked[name] {
			picked[name] = true
			selected = append(selected, e)
		}
	}
	counts = make([]int, len(selected))
	for i, e := range selected {
		if e.Jobs != nil {
			js := e.Jobs(p)
			counts[i] = len(js)
			jobs = append(jobs, js...)
		}
	}
	return selected, jobs, counts, nil
}

// Run executes the named experiments and returns their result sets
// keyed by experiment name. All selected experiments' jobs go through
// one worker-pool run — job names are experiment-prefixed, so they never
// collide — which both keeps the pool saturated across experiment
// boundaries and memoizes shared work (above all the in-order baselines)
// across experiments. Options (most usefully exp.Parallelism) are
// forwarded to the underlying exp.Run.
func Run(names []string, p Params, opts ...exp.Option) (map[string]*exp.ResultSet, error) {
	selected, jobs, counts, err := collect(names, p)
	if err != nil {
		return nil, err
	}
	rs, err := exp.Run(jobs, opts...)
	if err != nil {
		return nil, fmt.Errorf("registry: %w", err)
	}

	out := make(map[string]*exp.ResultSet, len(selected))
	off := 0
	for i, e := range selected {
		out[e.Name] = &exp.ResultSet{Results: rs.Results[off : off+counts[i] : off+counts[i]]}
		off += counts[i]
	}
	return out, nil
}

// Report runs the named experiments and renders each one's table to w in
// the order given. Rendering is serial and driven purely by the result
// sets, so the output is byte-identical at every parallelism setting.
func Report(w io.Writer, names []string, p Params, opts ...exp.Option) (map[string]*exp.ResultSet, error) {
	sets, err := Run(names, p, opts...)
	if err != nil {
		return nil, err
	}
	for _, name := range names {
		e, _ := Lookup(name)
		if e.Print != nil {
			e.Print(w, p, sets[name])
		}
	}
	return sets, nil
}
