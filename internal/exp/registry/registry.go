// Package registry names the experiments of the paper's evaluation —
// every figure, table, and sensitivity study of §3/§5 — as declarative
// spec.Suite values and runs them on the exp harness. Each experiment's
// suite marshals losslessly to JSON (`cmd/experiments -describe`), and a
// suite run from JSON (`-spec`) renders byte-identically to the
// compiled-in path. All experiments selected for one Run share a
// memoization cache, so common work (above all the in-order baseline
// runs that every speedup figure divides by) simulates exactly once no
// matter how many experiments need it.
package registry

import (
	"fmt"
	"io"

	"icfp/internal/exp"
	"icfp/internal/pipeline"
	"icfp/internal/sim"
	"icfp/internal/spec"
)

// Params are the knobs shared by every experiment: the machine
// configuration (whose WarmupInsts is the per-sample warmup) and the
// number of timed instructions per sample. The configuration must be
// spec-expressible (the base machine plus named overrides), or suite
// building fails. A non-nil Sampling attaches that policy to every SPEC
// workload an experiment builds (the cmd/experiments -sample flag
// family), turning the whole selection into a sampled run.
type Params struct {
	Cfg      pipeline.Config
	N        int
	Sampling *spec.Sampling
}

// DefaultSampling returns the sampling policy used when a sampled run
// does not pin its own: one measurement window per twelfth of the
// workload, each window 2% of its stratum with a detailed ramp three
// windows long ahead of it — twelve strata give the 95% CI honest
// width, the 8% detailed fraction keeps the ≥10x speedup margin, and
// the ramp hides the warm-state transients functional warming cannot
// recreate (the acceptance-pinned shape; see docs/ARCHITECTURE.md).
// total is the workload's full dynamic length, warmup included.
// Workloads too short to sample get a degenerate policy that
// canonicalizes away into the full run.
func DefaultSampling(total int) *spec.Sampling {
	period := total / 12
	interval := period / 50
	if interval < 1 {
		return &spec.Sampling{Mode: spec.ModeSampled, Interval: 1, Period: 1}
	}
	return &spec.Sampling{Mode: spec.ModeSampled, Interval: interval, Period: period, Ramp: 3 * interval, Seed: 1}
}

// DefaultParams mirrors the cmd/experiments defaults: the Table 1
// machine, scaled-down samples.
func DefaultParams() Params {
	cfg := sim.DefaultConfig()
	return Params{Cfg: cfg, N: 400_000}
}

// Experiment is one named entry of the evaluation. Suite declares the
// simulations it needs as a serializable spec (possibly with zero jobs,
// for analytic experiments like the area model); Print renders its table
// from the completed results.
type Experiment struct {
	Name  string
	Desc  string
	Suite func(p Params) (spec.Suite, error)
	Print func(w io.Writer, p Params, rs *exp.ResultSet)
	// Extra excludes the experiment from -all (it still runs when named
	// explicitly): the sampled long-workload variants live here, so the
	// -all report and its golden stay exactly the paper's evaluation.
	Extra bool
}

// All lists the registry in the paper's presentation order.
func All() []Experiment {
	return []Experiment{
		table1Exp(),
		fig5Exp(),
		fig5sExp(),
		table2Exp(),
		fig6Exp(),
		fig7Exp(),
		fig8Exp(),
		hopsExp(),
		poisonExp(),
		areaExp(),
		oooExp(),
		ablateExp(),
		fuzzExp(),
	}
}

// Names lists the experiment names in registry order.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, e := range all {
		names[i] = e.Name
	}
	return names
}

// DefaultNames lists the -all selection: every experiment except the
// Extra ones (the sampled long-workload variants, which run only when
// named). This is the set the committed -all golden pins.
func DefaultNames() []string {
	var names []string
	for _, e := range All() {
		if !e.Extra {
			names = append(names, e.Name)
		}
	}
	return names
}

// Lookup returns the named experiment.
func Lookup(name string) (Experiment, bool) {
	for _, e := range All() {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// Describe returns the named experiment as a self-contained suite: the
// exact jobs a direct run would simulate, plus a builtin render that
// reproduces the experiment's own table. The result marshals losslessly
// (spec.Suite.Marshal) and running it back through ReportSuite renders
// byte-identically to the compiled-in path.
func Describe(name string, p Params) (spec.Suite, error) {
	e, ok := Lookup(name)
	if !ok {
		return spec.Suite{}, fmt.Errorf("registry: unknown experiment %q (have %v)", name, Names())
	}
	return e.Suite(p)
}

// suiteBuilder accumulates one experiment's suite, converting each job's
// concrete configuration into overrides of the spec base. The first
// error sticks and surfaces from done().
type suiteBuilder struct {
	s        spec.Suite
	sampling *spec.Sampling
	err      error
}

// newSuite starts the experiment's suite at the given parameters, with a
// builtin render pointing back at the experiment's own table code.
func newSuite(e Experiment, p Params) *suiteBuilder {
	return &suiteBuilder{
		s: spec.Suite{
			Name:   e.Name,
			Desc:   e.Desc,
			N:      p.N,
			Warm:   p.Cfg.WarmupInsts,
			Render: &spec.Render{Kind: spec.RenderBuiltin, Builtin: e.Name},
		},
		sampling: p.Sampling,
	}
}

// add appends one job: machine m configured by cfg (whose divergence
// from the spec base rides in the overrides; the machine's own overrides
// win where both set a knob) over the workload. A suite-level sampling
// policy attaches to every SPEC or fuzz workload that does not pin its
// own (scenarios have fixed tiny traces and never sample).
func (b *suiteBuilder) add(name string, m spec.Machine, cfg pipeline.Config, wl spec.Workload) {
	if b.err != nil {
		return
	}
	ov, err := spec.OverridesFor(cfg)
	if err != nil {
		b.err = fmt.Errorf("registry: suite %q job %q: %w", b.s.Name, name, err)
		return
	}
	m.Overrides = spec.Merge(m.Overrides, ov)
	if b.sampling != nil && (wl.SPEC != "" || wl.Fuzz != nil) && wl.Sampling == nil {
		s := *b.sampling
		wl.Sampling = &s
	}
	b.s.Jobs = append(b.s.Jobs, spec.Job{Name: name, Machine: m, Workload: wl})
}

// done returns the built suite or the first accumulated error.
func (b *suiteBuilder) done() (spec.Suite, error) {
	if b.err != nil {
		return spec.Suite{}, b.err
	}
	return b.s, nil
}

// suiteJobs converts a suite's declarative jobs into harness jobs.
func suiteJobs(s spec.Suite) []exp.Job {
	jobs := make([]exp.Job, len(s.Jobs))
	for i, j := range s.Jobs {
		jobs[i] = exp.Job{Name: j.Name, Machine: j.Machine, Workload: j.Workload}
	}
	return jobs
}

// collect resolves the experiment names (deduplicated, order-preserving)
// into suites and gathers their combined job list with per-experiment
// counts — the shared front half of Run and of distributed planning.
func collect(names []string, p Params) (selected []Experiment, jobs []exp.Job, counts []int, err error) {
	picked := make(map[string]bool, len(names))
	for _, name := range names {
		e, ok := Lookup(name)
		if !ok {
			return nil, nil, nil, fmt.Errorf("registry: unknown experiment %q (have %v)", name, Names())
		}
		if !picked[name] {
			picked[name] = true
			selected = append(selected, e)
		}
	}
	counts = make([]int, len(selected))
	for i, e := range selected {
		s, err := e.Suite(p)
		if err != nil {
			return nil, nil, nil, err
		}
		counts[i] = len(s.Jobs)
		jobs = append(jobs, suiteJobs(s)...)
	}
	return selected, jobs, counts, nil
}

// Run executes the named experiments and returns their result sets
// keyed by experiment name. All selected experiments' jobs go through
// one worker-pool run — job names are experiment-prefixed, so they never
// collide — which both keeps the pool saturated across experiment
// boundaries and memoizes shared work (above all the in-order baselines)
// across experiments. Options (most usefully exp.Parallelism) are
// forwarded to the underlying exp.Run.
func Run(names []string, p Params, opts ...exp.Option) (map[string]*exp.ResultSet, error) {
	selected, jobs, counts, err := collect(names, p)
	if err != nil {
		return nil, err
	}
	rs, err := exp.Run(jobs, opts...)
	if err != nil {
		return nil, fmt.Errorf("registry: %w", err)
	}

	out := make(map[string]*exp.ResultSet, len(selected))
	off := 0
	for i, e := range selected {
		out[e.Name] = &exp.ResultSet{Results: rs.Results[off : off+counts[i] : off+counts[i]]}
		off += counts[i]
	}
	return out, nil
}

// Report runs the named experiments and renders each one's table to w in
// the order given. Rendering is serial and driven purely by the result
// sets, so the output is byte-identical at every parallelism setting.
func Report(w io.Writer, names []string, p Params, opts ...exp.Option) (map[string]*exp.ResultSet, error) {
	sets, err := Run(names, p, opts...)
	if err != nil {
		return nil, err
	}
	for _, name := range names {
		e, _ := Lookup(name)
		if e.Print != nil {
			e.Print(w, p, sets[name])
		}
	}
	return sets, nil
}

// ReportSuite runs one suite — built-in (Describe) or user-authored
// (spec.UnmarshalSuite) — and renders it to w according to its Render
// declaration. A described builtin suite renders byte-identically to
// running the experiment directly.
func ReportSuite(w io.Writer, s spec.Suite, opts ...exp.Option) (*exp.ResultSet, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	rs, err := exp.Run(suiteJobs(s), opts...)
	if err != nil {
		return nil, fmt.Errorf("registry: suite %q: %w", s.Name, err)
	}
	if err := renderSuite(w, s, rs); err != nil {
		return nil, err
	}
	return rs, nil
}
