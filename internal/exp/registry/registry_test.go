package registry_test

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"icfp/internal/exp"
	"icfp/internal/exp/registry"
	"icfp/internal/sim"
)

// isInOrderKey reports whether a memoization key names the in-order
// machine (keys are canonical machine specs).
func isInOrderKey(k exp.Key) bool {
	return strings.Contains(k.Machine, `"model":"in-order"`)
}

// tinyParams keeps the full registry fast enough for tests while still
// simulating every experiment for real.
func tinyParams() registry.Params {
	cfg := sim.DefaultConfig()
	cfg.WarmupInsts = 1_000
	return registry.Params{Cfg: cfg, N: 2_000}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"table1", "fig5", "fig5s", "table2", "fig6", "fig7", "fig8", "hops", "poison", "area", "ooo", "ablate", "fuzz"}
	if got := registry.Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("registry = %v, want %v", got, want)
	}
	for _, name := range want {
		e, ok := registry.Lookup(name)
		if !ok || e.Name != name || e.Desc == "" || e.Print == nil || e.Suite == nil {
			t.Errorf("experiment %q incomplete: %+v", name, e)
		}
	}
	if _, ok := registry.Lookup("nope"); ok {
		t.Error("Lookup must reject unknown names")
	}
}

func TestRegistryUnknownName(t *testing.T) {
	if _, err := registry.Run([]string{"nope"}, tinyParams()); err == nil {
		t.Fatal("Run of an unknown experiment must fail")
	}
}

// TestFullRegistryDeterministicAcrossParallelism is the harness's core
// guarantee: a serial run and an 8-worker run of every experiment in the
// registry produce deep-equal result sets and byte-identical reports.
func TestFullRegistryDeterministicAcrossParallelism(t *testing.T) {
	p := tinyParams()
	var out1, out8 bytes.Buffer
	sets1, err := registry.Report(&out1, registry.Names(), p, exp.Parallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	sets8, err := registry.Report(&out8, registry.Names(), p, exp.Parallelism(8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sets1, sets8) {
		t.Error("result sets differ between parallelism 1 and 8")
	}
	if !bytes.Equal(out1.Bytes(), out8.Bytes()) {
		t.Error("rendered reports differ between parallelism 1 and 8")
	}
	for _, name := range registry.Names() {
		if _, ok := sets1[name]; !ok {
			t.Errorf("no result set for %q", name)
		}
	}
}

// TestSharedBaselinesSimulateOnce pins the memoization win: fig5 and
// table2 run the in-order baseline over the same benchmarks with the
// same configuration, so a combined run must simulate each baseline
// exactly once.
func TestSharedBaselinesSimulateOnce(t *testing.T) {
	p := tinyParams()
	counts := map[exp.Key]int{}
	_, err := registry.Run([]string{"fig5", "table2"}, p,
		exp.Parallelism(4), exp.OnRun(func(k exp.Key) { counts[k]++ }))
	if err != nil {
		t.Fatal(err)
	}
	baselines := 0
	for k, n := range counts {
		if n != 1 {
			t.Errorf("key %v simulated %d times, want 1", k, n)
		}
		if isInOrderKey(k) {
			baselines++
		}
	}
	// One in-order run per benchmark, shared by both experiments.
	if want := 24; baselines != want {
		t.Errorf("in-order baselines simulated %d times, want %d (once per benchmark)", baselines, want)
	}
}

func TestReportRendersEveryExperiment(t *testing.T) {
	var out bytes.Buffer
	_, err := registry.Report(&out, []string{"table1", "area"}, tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, marker := range []string{"== Table 1:", "== §5.3: area overheads"} {
		if !strings.Contains(out.String(), marker) {
			t.Errorf("report missing %q:\n%s", marker, out.String())
		}
	}
}
