package registry

import (
	"fmt"
	"io"
	"strings"

	"icfp/internal/exp"
	"icfp/internal/sim"
	"icfp/internal/spec"
)

// renderSuite renders a completed suite to w according to its Render
// declaration. A nil render defaults to the plain results table. The
// suite must already have validated.
func renderSuite(w io.Writer, s spec.Suite, rs *exp.ResultSet) error {
	kind := spec.RenderTable
	if s.Render != nil {
		kind = s.Render.Kind
	}
	switch kind {
	case spec.RenderTable:
		return renderTable(w, s, rs)
	case spec.RenderSpeedup:
		return renderSpeedup(w, s, rs)
	case spec.RenderSweep:
		return renderSweep(w, s, rs)
	case spec.RenderBuiltin:
		return renderBuiltin(w, s, rs)
	}
	return fmt.Errorf("registry: suite %q: unknown render kind %q", s.Name, kind)
}

// renderBuiltin reuses a registry experiment's own table code. The
// suite's job names must match that experiment's; a panic from a missing
// result (a user-edited job list) surfaces as an error naming the suite.
func renderBuiltin(w io.Writer, s spec.Suite, rs *exp.ResultSet) (err error) {
	e, ok := Lookup(s.Render.Builtin)
	if !ok {
		return fmt.Errorf("registry: suite %q: render names unknown builtin experiment %q (have %v)",
			s.Name, s.Render.Builtin, Names())
	}
	p := Params{Cfg: sim.DefaultConfig(), N: s.N}
	p.Cfg.WarmupInsts = s.Warm
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("registry: suite %q: builtin render %q: %v (do the suite's job names still match the experiment's?)",
				s.Name, e.Name, r)
		}
	}()
	e.Print(w, p, rs)
	return nil
}

// renderTable prints one row per job in suite order. Sampled results
// append their 95% confidence half-width to the IPC cell; full results
// render exactly as before the sampling harness existed, keeping the
// golden output byte-identical.
func renderTable(w io.Writer, s spec.Suite, rs *exp.ResultSet) error {
	fmt.Fprintf(w, "== suite %s ==\n", s.Name)
	fmt.Fprintf(w, "%-32s %12s %10s %6s\n", "job", "cycles", "insts", "IPC")
	for _, r := range rs.Results {
		fmt.Fprintf(w, "%-32s %12d %10d %6.3f", r.Name, r.R.Cycles, r.R.Insts, r.R.IPC())
		if r.R.SampleIntervals > 0 && r.R.CPI() > 0 {
			// IPC = 1/CPI, so the relative half-width carries over.
			fmt.Fprintf(w, "±%.3f (%d windows)", r.R.IPC()*r.R.SampleCPICI95/r.R.CPI(), r.R.SampleIntervals)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
	return nil
}

// ciSuffix returns the "±h" tail for a speedup cell when either run was
// sampled (h is the 95% half-width in percentage points), and "" for
// full runs — so full-mode tables format exactly as they always have.
func ciSuffix(rs *exp.ResultSet, test, base string) string {
	if _, ci := rs.SpeedupCI95(test, base); ci > 0 {
		return fmt.Sprintf("±%.1f", ci)
	}
	return ""
}

// spCell formats the percent speedup of test over base as a table cell
// using the given verb (e.g. "%+7.1f%%"), with the ciSuffix tail.
func spCell(rs *exp.ResultSet, format, test, base string) string {
	return fmt.Sprintf(format, rs.Speedup(test, base)) + ciSuffix(rs, test, base)
}

// baseline returns the render's baseline name segment (default "base").
func baseline(s spec.Suite) string {
	if s.Render != nil && s.Render.Baseline != "" {
		return s.Render.Baseline
	}
	return "base"
}

// splitLast splits a job name at its last "/" into (prefix, segment);
// names without a slash split into ("", name).
func splitLast(name string) (string, string) {
	if i := strings.LastIndex(name, "/"); i >= 0 {
		return name[:i], name[i+1:]
	}
	return "", name
}

// joinGroup rebuilds a job name from a group prefix and a segment.
func joinGroup(group, seg string) string {
	if group == "" {
		return seg
	}
	return group + "/" + seg
}

// renderSpeedup prints each non-baseline job's percent speedup over its
// group's baseline job, plus the geometric mean over all pairs.
func renderSpeedup(w io.Writer, s spec.Suite, rs *exp.ResultSet) error {
	base := baseline(s)
	fmt.Fprintf(w, "== suite %s: %% speedup over %q ==\n", s.Name, base)
	var pairs [][2]string
	for _, r := range rs.Results {
		group, seg := splitLast(r.Name)
		if seg == base {
			continue
		}
		bname := joinGroup(group, base)
		if _, ok := rs.Get(bname); !ok {
			return fmt.Errorf("registry: suite %q: job %q has no baseline %q (rename the baseline job or set render.baseline)",
				s.Name, r.Name, bname)
		}
		fmt.Fprintf(w, "%-32s %+7.1f%%%s\n", r.Name, rs.Speedup(r.Name, bname), ciSuffix(rs, r.Name, bname))
		pairs = append(pairs, [2]string{r.Name, bname})
	}
	if len(pairs) == 0 {
		return fmt.Errorf("registry: suite %q: no jobs to compare against baseline %q", s.Name, base)
	}
	fmt.Fprintf(w, "%-32s %+7.1f%%\n\n", "geomean", rs.GeoMeanSpeedup(pairs))
	return nil
}

// renderSweep reads job names as "row/col" and prints a grid of percent
// speedups of each row over the baseline row at the same column.
func renderSweep(w io.Writer, s spec.Suite, rs *exp.ResultSet) error {
	base := baseline(s)
	var rows, cols []string
	seenRow := map[string]bool{}
	seenCol := map[string]bool{}
	for _, r := range rs.Results {
		row, col := splitLast(r.Name)
		if row == "" {
			return fmt.Errorf("registry: suite %q: sweep render needs \"row/col\" job names; %q has no \"/\"", s.Name, r.Name)
		}
		if !seenCol[col] {
			seenCol[col] = true
			cols = append(cols, col)
		}
		if row == base || seenRow[row] {
			continue
		}
		seenRow[row] = true
		rows = append(rows, row)
	}
	if len(rows) == 0 {
		return fmt.Errorf("registry: suite %q: sweep has no rows besides the baseline %q", s.Name, base)
	}
	fmt.Fprintf(w, "== suite %s: %% speedup over %q ==\n", s.Name, base)
	fmt.Fprintf(w, "%-18s", "config")
	for _, col := range cols {
		fmt.Fprintf(w, " %8s", col)
	}
	fmt.Fprintln(w)
	for _, row := range rows {
		fmt.Fprintf(w, "%-18s", row)
		for _, col := range cols {
			test, bname := row+"/"+col, base+"/"+col
			if _, ok := rs.Get(test); !ok {
				return fmt.Errorf("registry: suite %q: sweep cell %q is missing", s.Name, test)
			}
			if _, ok := rs.Get(bname); !ok {
				return fmt.Errorf("registry: suite %q: sweep baseline %q is missing", s.Name, bname)
			}
			fmt.Fprintf(w, " %+7.1f%%%s", rs.Speedup(test, bname), ciSuffix(rs, test, bname))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
	return nil
}
