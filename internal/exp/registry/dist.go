package registry

import (
	"fmt"
	"io"

	"icfp/internal/dist"
	"icfp/internal/exp"
	"icfp/internal/spec"
)

// runPlanDistributed shards a deduplicated plan of self-describing jobs
// across the dist workers and merges the streamed results into cache.
// Keys already in the cache are not dispatched, so a preloaded
// -cache-file shrinks distributed runs the same way it shrinks local
// ones.
func runPlanDistributed(plan []spec.Job, workers []dist.Worker, workerParallel int, cache *exp.Cache, opts dist.Options) error {
	opts.Parallel = workerParallel
	// opts.BatchSize stays zero unless a caller pinned it: zero selects
	// the dispatcher's cost-aware sizing, which floors each batch at the
	// worker's pool width (so its cores stay busy) and otherwise sizes
	// by per-key cost estimates — cheap keys batch large, expensive keys
	// ship alone.
	return dist.Run(plan, workers, cache, opts)
}

// ReportDistributed is the distributed counterpart of Report: it plans
// the named experiments' deduplicated jobs, shards them across the dist
// workers (workerParallel is each worker's internal pool size), merges
// the streamed results into cache, and renders every experiment locally
// from the warm cache. Because simulations are deterministic pure
// functions of their specs and results round-trip JSON exactly, the
// rendered report is byte-identical to a single-process Report at any
// worker count. Every dispatched job is self-describing, so workers need
// no matching job table — only a compatible simulator. The dispatch
// options pass through to dist.Run except Parallel, which this function
// owns.
func ReportDistributed(w io.Writer, names []string, p Params, workers []dist.Worker, workerParallel int, cache *exp.Cache, opts dist.Options) (map[string]*exp.ResultSet, error) {
	if cache == nil {
		cache = exp.NewCache()
	}
	// dist.Run closes every worker transport on all of its paths; the
	// error returns before it must do the same or connections (and
	// subprocess workers) leak.
	_, jobs, _, err := collect(names, p)
	if err != nil {
		dist.CloseAll(workers)
		return nil, err
	}
	plan, err := exp.Plan(jobs)
	if err != nil {
		dist.CloseAll(workers)
		return nil, fmt.Errorf("registry: %w", err)
	}
	if err := runPlanDistributed(plan, workers, workerParallel, cache, opts); err != nil {
		return nil, err
	}
	// Every key is now cached: this Run simulates nothing, it only
	// assembles result sets and renders — same code path, same bytes.
	return Report(w, names, p, exp.WithCache(cache), exp.Parallelism(1))
}

// ReportSuiteDistributed is ReportSuite across dist workers: the suite's
// deduplicated jobs are dispatched, results merge into cache, and the
// suite renders locally from the warm cache — byte-identical to a local
// ReportSuite at any worker count.
func ReportSuiteDistributed(w io.Writer, s spec.Suite, workers []dist.Worker, workerParallel int, cache *exp.Cache, opts dist.Options) (*exp.ResultSet, error) {
	if cache == nil {
		cache = exp.NewCache()
	}
	if err := s.Validate(); err != nil {
		dist.CloseAll(workers)
		return nil, err
	}
	plan, err := exp.Plan(suiteJobs(s))
	if err != nil {
		dist.CloseAll(workers)
		return nil, fmt.Errorf("registry: suite %q: %w", s.Name, err)
	}
	if err := runPlanDistributed(plan, workers, workerParallel, cache, opts); err != nil {
		return nil, err
	}
	return ReportSuite(w, s, exp.WithCache(cache), exp.Parallelism(1))
}
