package registry

import (
	"encoding/json"
	"fmt"
	"io"

	"icfp/internal/dist"
	"icfp/internal/exp"
	"icfp/internal/sim"
)

// WorkerSpec is the job spec a coordinator sends its dist workers:
// exactly enough for a worker to rebuild the coordinator's job set from
// the shared registry. Distributed runs cover Params built from
// sim.DefaultConfig with the spec's warmup and sample size — the CLI
// contract — and any other divergence between the two sides is caught
// by the dist handshake and unknown-key guards rather than silently
// mis-simulated.
type WorkerSpec struct {
	Names    []string `json:"names"`    // selected experiments, deduplicated, registry order preserved
	N        int      `json:"n"`        // timed instructions per sample
	Warm     int      `json:"warm"`     // warmup instructions per sample
	Parallel int      `json:"parallel"` // worker-internal pool size; <1 means GOMAXPROCS
}

// params rebuilds the run parameters exactly as the CLIs do.
func (s WorkerSpec) params() Params {
	cfg := sim.DefaultConfig()
	cfg.WarmupInsts = s.Warm
	return Params{Cfg: cfg, N: s.N}
}

// ResolveWorker is the registry's dist.Resolver: it parses a WorkerSpec
// and rebuilds the named experiments' jobs, keyed by memoization key.
// Jobs sharing a key are identical by the harness's cache contract, so
// keeping the first suffices.
func ResolveWorker(spec json.RawMessage) (map[exp.Key]exp.Job, int, error) {
	var s WorkerSpec
	if err := json.Unmarshal(spec, &s); err != nil {
		return nil, 0, fmt.Errorf("registry: parsing worker spec: %w", err)
	}
	// The spec arrives over the network on TCP workers: reject values no
	// legitimate coordinator would send instead of obeying them — pool
	// sizes beyond any real machine (<1 means GOMAXPROCS, and exp.Run
	// additionally caps the pool at the batch size), and per-key sample
	// sizes far past paper scale (1M timed after 4M warmup), which would
	// otherwise pin the daemon's cores for hours per key.
	const maxInstsPerKey = 1 << 30
	if s.N <= 0 {
		return nil, 0, fmt.Errorf("registry: worker spec has n=%d, want > 0", s.N)
	}
	if s.Warm < 0 {
		return nil, 0, fmt.Errorf("registry: worker spec has warm=%d, want >= 0", s.Warm)
	}
	if s.N > maxInstsPerKey || s.Warm > maxInstsPerKey {
		return nil, 0, fmt.Errorf("registry: worker spec has n=%d, warm=%d, want <= %d each", s.N, s.Warm, maxInstsPerKey)
	}
	if s.Parallel > 4096 {
		return nil, 0, fmt.Errorf("registry: worker spec has parallel=%d, want <= 4096", s.Parallel)
	}
	_, jobs, _, err := collect(s.Names, s.params())
	if err != nil {
		return nil, 0, err
	}
	table := make(map[exp.Key]exp.Job, len(jobs))
	for _, j := range jobs {
		k := j.Key()
		if _, ok := table[k]; !ok {
			table[k] = j
		}
	}
	return table, s.Parallel, nil
}

// ReportDistributed is the distributed counterpart of Report: it plans
// the named experiments' deduplicated keys, shards them across the dist
// workers (workerParallel is each worker's internal pool size), merges
// the streamed results into cache, and renders every experiment locally
// from the warm cache. Because simulations are deterministic pure
// functions of their keys and results round-trip JSON exactly, the
// rendered report is byte-identical to a single-process Report at any
// worker count. Keys already in the cache are not dispatched, so a
// preloaded -cache-file shrinks distributed runs the same way it
// shrinks local ones. The dispatch options pass through to dist.Run
// except Spec, which this function owns.
func ReportDistributed(w io.Writer, names []string, p Params, workers []dist.Worker, workerParallel int, cache *exp.Cache, opts dist.Options) (map[string]*exp.ResultSet, error) {
	if cache == nil {
		cache = exp.NewCache()
	}
	// dist.Run closes every worker transport on all of its paths; the
	// error returns before it must do the same or connections (and
	// subprocess workers) leak.
	ws := WorkerSpec{N: p.N, Warm: p.Cfg.WarmupInsts, Parallel: workerParallel}
	if got, want := exp.Fingerprint(p.Cfg), exp.Fingerprint(ws.params().Cfg); got != want {
		// The wire spec carries only N and the warmup: any other Cfg
		// customization cannot reach the workers, and letting it through
		// would fail mid-dispatch with a misleading skew diagnostic.
		dist.CloseAll(workers)
		return nil, fmt.Errorf("registry: distributed runs support only sim.DefaultConfig plus WarmupInsts; got config fingerprint %s, want %s", got, want)
	}
	selected, jobs, _, err := collect(names, p)
	if err != nil {
		dist.CloseAll(workers)
		return nil, err
	}
	plan, err := exp.Plan(jobs)
	if err != nil {
		dist.CloseAll(workers)
		return nil, fmt.Errorf("registry: %w", err)
	}
	for _, e := range selected {
		ws.Names = append(ws.Names, e.Name)
	}
	spec, err := json.Marshal(ws)
	if err != nil {
		dist.CloseAll(workers)
		return nil, fmt.Errorf("registry: encoding worker spec: %w", err)
	}
	opts.Spec = spec
	if opts.BatchSize <= 0 {
		// A worker simulates one batch at a time with a pool capped at
		// the batch size, so batches must be at least as large as the
		// worker's pool to keep its cores busy; 2× leaves headroom for
		// uneven key costs while keeping steals reasonably fine-grained.
		// workerParallel <= 0 means "each worker's GOMAXPROCS", a width
		// the coordinator cannot see — assume a generously wide host so
		// big machines aren't starved; work stealing evens out the rest.
		width := workerParallel
		if width < 1 {
			width = 16
		}
		opts.BatchSize = max(dist.DefaultBatchSize, 2*width)
	}
	if err := dist.Run(plan, workers, cache, opts); err != nil {
		return nil, err
	}
	// Every key is now cached: this Run simulates nothing, it only
	// assembles result sets and renders — same code path, same bytes.
	return Report(w, names, p, exp.WithCache(cache), exp.Parallelism(1))
}
