package exp_test

import (
	"reflect"
	"testing"

	"icfp/internal/exp"
	"icfp/internal/sim"
	"icfp/internal/spec"
	"icfp/internal/workload"
)

// planJob builds a real, cheap job from a model and a scenario. Warmup
// is disabled: scenarios pre-warm their caches explicitly, and the base
// configuration's sampling warmup would otherwise consume the whole
// trace.
func planJob(name string, m sim.Model, sc workload.Scenario) exp.Job {
	mach := m.Spec()
	mach.Overrides = &spec.Overrides{Warmup: spec.Int(0)}
	return exp.Job{Name: name, Machine: mach, Workload: spec.ScenarioWorkload(sc)}
}

// TestPlanDeduplicatesKeys pins that Plan surfaces each distinct
// simulation exactly once, as a self-describing spec, in
// first-appearance order — the contract the distributed dispatcher
// shards on.
func TestPlanDeduplicatesKeys(t *testing.T) {
	jobs := []exp.Job{
		planJob("a", sim.InOrder, workload.ScenarioLoneL2),
		planJob("b", sim.InOrder, workload.ScenarioLoneL2), // same key as a
		planJob("c", sim.ICFP, workload.ScenarioLoneL2),
		planJob("d", sim.InOrder, workload.ScenarioChains),
	}
	plan, err := exp.Plan(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 3 {
		t.Fatalf("plan has %d entries, want 3: %v", len(plan), plan)
	}
	want := []exp.Key{jobs[0].Key(), jobs[2].Key(), jobs[3].Key()}
	got := make([]exp.Key, len(plan))
	for i, sj := range plan {
		got[i] = exp.KeyOf(sj)
		if sj.Name != "" {
			t.Errorf("plan entry %d carries a name %q; plan entries are identity, not presentation", i, sj.Name)
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("plan keys = %v, want %v (first-appearance order)", got, want)
	}
	// Each entry is self-describing: rebuilding a job from it yields the
	// same key.
	for i, sj := range plan {
		rebuilt := exp.Job{Name: "x", Machine: sj.Machine, Workload: sj.Workload}
		if rebuilt.Key() != got[i] {
			t.Errorf("plan entry %d does not round-trip through its spec", i)
		}
	}
}

// TestCacheLookup pins Lookup's completed-only contract: present after a
// run, absent for unknown keys, and populated by AddResults.
func TestCacheLookup(t *testing.T) {
	c := exp.NewCache()
	job := planJob("a", sim.InOrder, workload.ScenarioLoneL2)
	if _, ok := c.Lookup(job.Key()); ok {
		t.Fatal("Lookup hit on an empty cache")
	}
	if _, err := exp.Run([]exp.Job{job}, exp.WithCache(c)); err != nil {
		t.Fatal(err)
	}
	res, ok := c.Lookup(job.Key())
	if !ok || res.Cycles <= 0 {
		t.Fatalf("Lookup after run = (%+v, %v), want a real result", res, ok)
	}

	other := exp.NewCache()
	other.AddResults(c.Snapshot())
	if got, ok := other.Lookup(job.Key()); !ok || got.Cycles != res.Cycles {
		t.Fatalf("Lookup after AddResults = (%+v, %v), want cycles %d", got, ok, res.Cycles)
	}
}
