package exp_test

import (
	"reflect"
	"sync/atomic"
	"testing"

	"icfp/internal/exp"
)

// TestPlanDeduplicatesKeys pins that Plan surfaces each distinct
// memoization key exactly once, in first-appearance order — the contract
// the distributed dispatcher shards on.
func TestPlanDeduplicatesKeys(t *testing.T) {
	var runs atomic.Int64
	jobs := []exp.Job{
		stubJob("a", "m1", "w1", 100, &runs),
		stubJob("b", "m1", "w1", 100, &runs), // same key as a
		stubJob("c", "m2", "w1", 200, &runs),
		stubJob("d", "m1", "w2", 300, &runs),
	}
	plan, err := exp.Plan(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 3 {
		t.Fatalf("plan has %d keys, want 3: %v", len(plan), plan)
	}
	want := []exp.Key{jobs[0].Key(), jobs[2].Key(), jobs[3].Key()}
	if !reflect.DeepEqual(plan, want) {
		t.Errorf("plan = %v, want %v (first-appearance order)", plan, want)
	}
	if runs.Load() != 0 {
		t.Errorf("Plan simulated %d jobs; planning must not simulate", runs.Load())
	}
}

// TestPlanValidatesLikeRun pins that a job set Run would reject is also
// rejected at planning time, before any dispatch.
func TestPlanValidatesLikeRun(t *testing.T) {
	var runs atomic.Int64
	for name, jobs := range map[string][]exp.Job{
		"duplicate name": {stubJob("a", "m1", "w1", 1, &runs), stubJob("a", "m2", "w2", 2, &runs)},
		"empty name":     {stubJob("", "m1", "w1", 1, &runs)},
		"no constructor": {{Name: "a", Machine: "m1", Workload: exp.WorkloadSpec{Key: "w1", New: stubJob("x", "m1", "w1", 1, &runs).Workload.New}}},
		"no workload":    {{Name: "a", Machine: "m1", Make: stubJob("x", "m1", "w1", 1, &runs).Make}},
	} {
		if _, err := exp.Plan(jobs); err == nil {
			t.Errorf("%s: Plan accepted a job set Run rejects", name)
		}
	}
}

// TestCacheLookup pins Lookup's completed-only contract: present after a
// run, absent for unknown keys, and populated by AddResults.
func TestCacheLookup(t *testing.T) {
	var runs atomic.Int64
	c := exp.NewCache()
	job := stubJob("a", "m1", "w1", 123, &runs)
	if _, ok := c.Lookup(job.Key()); ok {
		t.Fatal("Lookup hit on an empty cache")
	}
	if _, err := exp.Run([]exp.Job{job}, exp.WithCache(c)); err != nil {
		t.Fatal(err)
	}
	res, ok := c.Lookup(job.Key())
	if !ok || res.Cycles != 123 {
		t.Fatalf("Lookup after run = (%+v, %v), want cycles 123", res, ok)
	}

	other := exp.NewCache()
	other.AddResults(c.Snapshot())
	if res, ok := other.Lookup(job.Key()); !ok || res.Cycles != 123 {
		t.Fatalf("Lookup after AddResults = (%+v, %v), want cycles 123", res, ok)
	}
}
