package exp

import (
	"sync"

	"icfp/internal/spec"
	"icfp/internal/workload"
)

// Arena is a shared workload store: each distinct workload spec
// (canonical encoding) is generated exactly once and the resulting
// *workload.Workload is handed out, read-only, to every simulation that
// asks for it. Sharing is sound because workloads are immutable during
// simulation: machines read the trace and the memory image but never
// write either (the Prewarm hook writes only to the machine's own
// hierarchy), an invariant pinned by TestWorkloadImmutableAcrossModels.
// Trace regeneration used to dominate the harness — every job rebuilt
// its multi-hundred-kilo-instruction trace and memory image from scratch
// — so the arena is what makes the evaluation CPU-bound on simulation
// rather than on generation.
//
// An Arena may be shared by concurrent Run calls: the first claimant of a
// key generates, everyone else waits for its result.
type Arena struct {
	mu      sync.Mutex
	entries map[string]*arenaEntry
	gens    int // actual generations (diagnostics/tests)
}

type arenaEntry struct {
	done chan struct{}
	w    *workload.Workload
}

// NewArena returns an empty arena.
func NewArena() *Arena {
	return &Arena{entries: make(map[string]*arenaEntry)}
}

// Get returns the workload the spec declares, generating it on first
// use. The returned workload is shared: callers must treat it as
// read-only. Sharing keys on the base workload — the sampling policy
// does not change the generated trace or memory image — so sampled and
// full runs of one benchmark share a single workload, and with it the
// warmed-state checkpoint store the sampled runs attach to it
// (pipeline.WarmState): a sweep warms each workload once, not once per
// job.
func (a *Arena) Get(w spec.Workload) *workload.Workload {
	key := w.Base().Canonical()
	a.mu.Lock()
	e, ok := a.entries[key]
	if ok {
		a.mu.Unlock()
		<-e.done
		return e.w
	}
	e = &arenaEntry{done: make(chan struct{})}
	a.entries[key] = e
	a.gens++
	a.mu.Unlock()
	e.w = w.New()
	close(e.done)
	return e.w
}

// Generations returns how many workloads were actually generated — at
// most once per distinct key, by construction.
func (a *Arena) Generations() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.gens
}
