// Package diffcheck is the cross-model differential oracle: it runs
// every simulated model over a set of fuzz-family scenarios and checks
// the structural invariants that must hold between the models no matter
// what the workload does — retired-instruction counts agree, IPC never
// exceeds machine width, the blocking in-order core is the performance
// floor, the idealized store buffer dominates the limited one, and the
// sampled estimator lands within its own reported confidence interval
// of the full run. Each invariant is a relation *between* simulations,
// so the oracle needs no golden numbers to catch a broken model: a bug
// that shifts one machine shows up as a violated relation against the
// others. cmd/fuzzgate drives it over the committed adversarial corpus
// (workload.FuzzCorpus) and additionally pins the per-model stats
// against a golden file.
package diffcheck

import (
	"fmt"

	"icfp/internal/exp"
	"icfp/internal/spec"
	"icfp/internal/workload"
)

// Model labels, in report order. Full-simulation labels first; the
// sampled runs re-measure two of the machines under interval sampling.
const (
	InOrder     = "in-order"
	Runahead    = "runahead"
	Multipass   = "multipass"
	SLTP        = "sltp"
	ICFP        = "icfp"
	ICFPIdeal   = "icfp/ideal"
	ICFPLimited = "icfp/limited"
	OOO         = "ooo"
)

// FloorFactor bounds every enhanced model's cycles relative to the
// blocking in-order core: the enhanced machines hide miss latency, so
// on no workload may one fall behind in-order by more than the slack a
// pathological advance policy can cost (the bound internal/sim's fuzz
// suite has pinned since the seed).
const FloorFactor = 1.3

// idealTolerance is the slack allowed on the ideal-dominates-limited
// store-buffer invariant: the idealized fully-associative buffer must
// not lose to limited forwarding by more than this fraction. The slack
// is real behaviour, not noise: on poisoned-store scenarios limited's
// forwarding stalls sideline exactly the loads whose idealized forwards
// would propagate poison, so limited occasionally dodges recovery work
// ideal pays for (observed up to ~6% on the corpus). Gross breakage of
// either buffer still lands far outside the slack.
const idealTolerance = 0.08

// chainedTolerance bounds the chained buffer against the ideal one in
// *both* directions — the paper's Figure 8 claim that address-hash
// chaining performs within a whisker of full associativity. Observed
// corpus-wide divergence is under 0.3%, so 2% flags any real change in
// the chained design while never firing on today's behaviour.
const chainedTolerance = 0.02

// Stat is one model's pinned result on one scenario. Sampled entries
// additionally carry the estimator's interval count and the 95%
// confidence half-width of CPI across windows — simulation and window
// placement are deterministic, so these are stable goldens, not noise.
type Stat struct {
	Model     string  `json:"model"`
	Cycles    int64   `json:"cycles"`
	Insts     int64   `json:"insts"`
	Intervals int     `json:"intervals,omitempty"`
	CPICI95   float64 `json:"cpi_ci95,omitempty"`
}

// CPI returns the stat's cycles per instruction.
func (s Stat) CPI() float64 {
	if s.Insts == 0 {
		return 0
	}
	return float64(s.Cycles) / float64(s.Insts)
}

// Report is the oracle's verdict on one scenario: every model's stats
// (full models in label order, then the sampled runs) and the list of
// violated invariants, empty when the scenario passes.
type Report struct {
	Scenario   string   `json:"scenario"`
	Stats      []Stat   `json:"stats"`
	Violations []string `json:"-"`
}

// OK reports whether every invariant held.
func (r Report) OK() bool { return len(r.Violations) == 0 }

// Options configure a corpus check.
type Options struct {
	// N is the total dynamic instructions per scenario, warmup included
	// (default 60 000); Warm is the per-sample machine warmup (default
	// 10 000).
	N    int
	Warm int
	// Perturb corrupts the named model's collected stats (cycles
	// inflated, one phantom instruction) before invariant checking —
	// the oracle's self-test hook. A perturbed model must be caught by
	// at least one invariant; cmd/fuzzgate -perturb and CI assert that
	// it is.
	Perturb string
	// Cache and Arena, when non-nil, are shared with the exp harness so
	// corpus runs memoize against earlier work.
	Cache *exp.Cache
	Arena *exp.Arena
	// Parallelism is forwarded to exp.Run (0 means GOMAXPROCS).
	Parallelism int
}

// labeled pairs a report label with the machine spec it names.
type labeled struct {
	label string
	m     spec.Machine
}

// fullMachines returns the full-simulation model set, every machine at
// the given per-sample warmup.
func fullMachines(warm int) []labeled {
	ov := &spec.Overrides{Warmup: spec.Int(warm)}
	return []labeled{
		{InOrder, spec.Machine{Model: spec.ModelInOrder, Overrides: ov}},
		{Runahead, spec.Machine{Model: spec.ModelRunahead, Overrides: ov}},
		{Multipass, spec.Machine{Model: spec.ModelMultipass, Overrides: ov}},
		{SLTP, spec.Machine{Model: spec.ModelSLTP, Overrides: ov}},
		{ICFP, spec.Machine{Model: spec.ModelICFP, Overrides: ov}},
		{ICFPIdeal, spec.Machine{Model: spec.ModelICFP, StoreBuffer: spec.SBIdeal, Overrides: ov}},
		{ICFPLimited, spec.Machine{Model: spec.ModelICFP, StoreBuffer: spec.SBLimited, Overrides: ov}},
		{OOO, spec.Machine{Model: spec.ModelOOO, Overrides: ov}},
	}
}

// sampledLabels lists the machines re-run under interval sampling: the
// floor model and the paper's machine. Their labels gain a "/sampled"
// suffix in reports.
func sampledLabels() []string { return []string{InOrder, ICFP} }

// sampling returns the oracle's interval-sampling policy for an n-inst
// scenario: twelve windows of 2% of their stratum with a three-window
// detailed ramp (the registry's default shape, pinned here so the
// golden does not drift if the registry retunes its default).
func sampling(n int) *spec.Sampling {
	period := n / 12
	interval := period / 50
	if interval < 1 {
		return &spec.Sampling{Mode: spec.ModeSampled, Interval: 1, Period: 1}
	}
	return &spec.Sampling{Mode: spec.ModeSampled, Interval: interval, Period: period, Ramp: 3 * interval, Seed: 1}
}

// CheckAll runs the oracle over every scenario: one exp.Run carrying
// all (scenario, model) jobs — so the worker pool stays saturated
// across scenario boundaries and shared work memoizes — then per
// scenario the invariant checks. The error covers harness problems
// (invalid specs, canceled runs); invariant violations are data, in
// the reports.
func CheckAll(cases []workload.FuzzCase, o Options) ([]Report, error) {
	if o.N == 0 {
		o.N = 60_000
	}
	if o.Warm == 0 {
		o.Warm = 10_000
	}
	machines := fullMachines(o.Warm)
	perScenario := len(machines) + len(sampledLabels())

	var jobs []exp.Job
	for _, c := range cases {
		wl := spec.FuzzWorkload(c.Seed, c.Knobs, o.N)
		for _, m := range machines {
			jobs = append(jobs, exp.Job{Name: c.Name() + "/" + m.label, Machine: m.m, Workload: wl})
		}
		swl := wl
		swl.Sampling = sampling(o.N)
		for _, m := range machines {
			for _, sl := range sampledLabels() {
				if m.label == sl {
					jobs = append(jobs, exp.Job{Name: c.Name() + "/" + m.label + "/sampled", Machine: m.m, Workload: swl})
				}
			}
		}
	}

	opts := []exp.Option{exp.Parallelism(o.Parallelism)}
	if o.Cache != nil {
		opts = append(opts, exp.WithCache(o.Cache))
	}
	if o.Arena != nil {
		opts = append(opts, exp.WithArena(o.Arena))
	}
	rs, err := exp.Run(jobs, opts...)
	if err != nil {
		return nil, fmt.Errorf("diffcheck: %w", err)
	}

	width := spec.BaseConfig().Width
	reports := make([]Report, 0, len(cases))
	for i, c := range cases {
		rep := Report{Scenario: c.Name()}
		for _, res := range rs.Results[i*perScenario : (i+1)*perScenario] {
			label := res.Name[len(c.Name())+1:]
			st := Stat{
				Model:     label,
				Cycles:    res.R.Cycles,
				Insts:     res.R.Insts,
				Intervals: res.R.SampleIntervals,
				CPICI95:   res.R.SampleCPICI95,
			}
			if o.Perturb != "" && (label == o.Perturb || label == o.Perturb+"/sampled") {
				st.Cycles *= 7
				st.Insts++
			}
			rep.Stats = append(rep.Stats, st)
		}
		rep.Violations = check(rep, len(machines), width)
		reports = append(reports, rep)
	}
	return reports, nil
}

// check evaluates every invariant over one scenario's stats: the first
// nFull stats are the full models in fullMachines order, the rest are
// the sampled re-runs.
func check(rep Report, nFull, width int) []string {
	var v []string
	bad := func(format string, args ...any) {
		v = append(v, fmt.Sprintf(format, args...))
	}
	byLabel := make(map[string]Stat, len(rep.Stats))
	for _, s := range rep.Stats {
		byLabel[s.Model] = s
	}

	// Sanity: every run terminates with positive cycles and does not
	// retire faster than the machine width allows.
	for _, s := range rep.Stats {
		if s.Cycles <= 0 || s.Insts <= 0 {
			bad("%s: non-positive cycles %d / insts %d", s.Model, s.Cycles, s.Insts)
			continue
		}
		if ipc := float64(s.Insts) / float64(s.Cycles); ipc > float64(width) {
			bad("%s: IPC %.2f exceeds machine width %d", s.Model, ipc, width)
		}
	}

	// Retired-instruction agreement: every full model executes the same
	// program, so committed counts must match exactly.
	base := rep.Stats[0]
	for _, s := range rep.Stats[1:nFull] {
		if s.Insts != base.Insts {
			bad("%s: retired %d instructions, %s retired %d", s.Model, s.Insts, base.Model, base.Insts)
		}
	}

	// Performance floor: the blocking in-order core is the worst machine
	// modulo the bounded slack a pathological advance policy can cost.
	inorder := byLabel[InOrder]
	if inorder.Cycles > 0 {
		for _, s := range rep.Stats[1:nFull] {
			if float64(s.Cycles) > FloorFactor*float64(inorder.Cycles) {
				bad("%s: %d cycles, more than %.1fx the in-order %d", s.Model, s.Cycles, FloorFactor, inorder.Cycles)
			}
		}
	}

	// Store-buffer dominance: the idealized fully-associative buffer
	// must not lose to limited forwarding beyond the documented slack.
	ideal, limited := byLabel[ICFPIdeal], byLabel[ICFPLimited]
	if limited.Cycles > 0 && float64(ideal.Cycles) > (1+idealTolerance)*float64(limited.Cycles) {
		bad("icfp/ideal: %d cycles, slower than icfp/limited %d beyond %.0f%% tolerance",
			ideal.Cycles, limited.Cycles, idealTolerance*100)
	}

	// Figure 8: the chained buffer performs within a whisker of the
	// ideal one, in both directions.
	chained := byLabel[ICFP]
	if ideal.Cycles > 0 && chained.Cycles > 0 {
		if ratio := float64(chained.Cycles) / float64(ideal.Cycles); ratio > 1+chainedTolerance || ratio < 1-chainedTolerance {
			bad("icfp: %d cycles, diverges from icfp/ideal %d beyond %.0f%% (chained must track ideal)",
				chained.Cycles, ideal.Cycles, chainedTolerance*100)
		}
	}

	// Sampled-vs-full: the estimator must land within its own reported
	// confidence interval of the full run (plus a small absolute floor
	// for scenarios whose windows agree so well the CI collapses).
	for _, s := range rep.Stats[nFull:] {
		fullLabel := s.Model[:len(s.Model)-len("/sampled")]
		full := byLabel[fullLabel]
		if full.Insts == 0 || s.Insts == 0 {
			continue // already reported above
		}
		if s.Intervals <= 1 {
			bad("%s: %d sampling intervals, want several", s.Model, s.Intervals)
			continue
		}
		bound := 4*s.CPICI95 + 0.05*full.CPI()
		if diff := s.CPI() - full.CPI(); diff > bound || -diff > bound {
			bad("%s: sampled CPI %.4f vs full %.4f, off by %.4f > bound %.4f (CI95 %.4f)",
				s.Model, s.CPI(), full.CPI(), diff, bound, s.CPICI95)
		}
	}
	return v
}
