package diffcheck

import (
	"strings"
	"testing"

	"icfp/internal/exp"
	"icfp/internal/workload"
)

// sample is a small corpus slice that keeps the test fast while still
// exercising a biased and an unbiased family member.
func sample() []workload.FuzzCase {
	return []workload.FuzzCase{
		{Label: "plain", Seed: 3},
		{Label: "pressured", Seed: 102, Knobs: workload.FuzzKnobs{SBPressure: 85}},
	}
}

func opts() Options {
	return Options{N: 24_000, Warm: 4_000}
}

func TestInvariantsHoldOnSample(t *testing.T) {
	reports, err := CheckAll(sample(), opts())
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("got %d reports, want 2", len(reports))
	}
	for _, r := range reports {
		if !r.OK() {
			t.Errorf("%s: unexpected violations: %v", r.Scenario, r.Violations)
		}
		wantStats := len(fullMachines(0)) + len(sampledLabels())
		if len(r.Stats) != wantStats {
			t.Errorf("%s: %d stats, want %d", r.Scenario, len(r.Stats), wantStats)
		}
	}
}

// TestPerturbedModelIsCaught is the oracle's teeth check: corrupting
// any model's stats must violate at least one invariant on every
// scenario — otherwise the gate would wave a broken model through.
func TestPerturbedModelIsCaught(t *testing.T) {
	for _, model := range []string{InOrder, ICFP, ICFPIdeal, OOO} {
		o := opts()
		o.Perturb = model
		reports, err := CheckAll(sample(), o)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range reports {
			if r.OK() {
				t.Errorf("perturb %s: scenario %s passed every invariant", model, r.Scenario)
			}
		}
	}
}

// TestSharedCacheMemoizes pins the tentpole's cache-citizenship claim
// at the oracle level: a second corpus check against the same cache
// re-simulates nothing.
func TestSharedCacheMemoizes(t *testing.T) {
	o := opts()
	o.Cache = exp.NewCache()
	o.Arena = exp.NewArena()
	if _, err := CheckAll(sample(), o); err != nil {
		t.Fatal(err)
	}
	first := o.Cache.Simulations()
	if first == 0 {
		t.Fatal("first check simulated nothing")
	}
	if _, err := CheckAll(sample(), o); err != nil {
		t.Fatal(err)
	}
	if again := o.Cache.Simulations(); again != first {
		t.Fatalf("second check simulated %d new runs, want 0", again-first)
	}
}

// TestViolationMessagesNameTheModel keeps the oracle's output usable:
// a violation must name the offending model label.
func TestViolationMessagesNameTheModel(t *testing.T) {
	o := opts()
	o.Perturb = ICFP
	reports, err := CheckAll(sample(), o)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range reports {
		for _, v := range r.Violations {
			if strings.Contains(v, ICFP) {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no violation names the perturbed model")
	}
}
