// Package stats provides the measurement utilities behind Table 2 and the
// §3.2 store-buffer hop claims: memory-level-parallelism trackers computed
// from miss intervals, and small integer histograms.
//
// The MLP tracker follows the paper's measurement convention: overlapping
// miss intervals are merged and the parallelism of a window is the total
// miss latency divided by the covered wall time, so a value of 1.0 means
// fully serialized misses. Histograms are plain counting bins used for
// hop counts and chain lengths; both types are cheap enough to stay
// enabled in every simulation.
package stats

import (
	"math"
	"sort"
)

// MLPTracker accumulates miss lifetime intervals and computes the average
// number of outstanding misses over cycles where at least one miss is
// outstanding — the MLP definition used by Table 2 of the paper.
type MLPTracker struct {
	starts []int64
	ends   []int64
}

// Add records one miss outstanding over [start, end). Empty or inverted
// intervals are ignored.
func (t *MLPTracker) Add(start, end int64) {
	if end <= start {
		return
	}
	t.starts = append(t.starts, start)
	t.ends = append(t.ends, end)
}

// Count returns the number of recorded misses.
func (t *MLPTracker) Count() int { return len(t.starts) }

// MLP returns total outstanding miss-cycles divided by cycles with at
// least one outstanding miss. Zero misses yield an MLP of 0.
func (t *MLPTracker) MLP() float64 {
	if len(t.starts) == 0 {
		return 0
	}
	ss := append([]int64(nil), t.starts...)
	es := append([]int64(nil), t.ends...)
	sort.Slice(ss, func(i, j int) bool { return ss[i] < ss[j] })
	sort.Slice(es, func(i, j int) bool { return es[i] < es[j] })

	var missCycles, busyCycles int64
	outstanding := 0
	var lastEdge int64
	si, ei := 0, 0
	for ei < len(es) {
		var edge int64
		if si < len(ss) && ss[si] <= es[ei] {
			edge = ss[si]
		} else {
			edge = es[ei]
		}
		if outstanding > 0 {
			missCycles += int64(outstanding) * (edge - lastEdge)
			busyCycles += edge - lastEdge
		}
		lastEdge = edge
		if si < len(ss) && ss[si] <= es[ei] {
			outstanding++
			si++
		} else {
			outstanding--
			ei++
		}
	}
	if busyCycles == 0 {
		return 0
	}
	return float64(missCycles) / float64(busyCycles)
}

// Reset discards all recorded intervals.
func (t *MLPTracker) Reset() {
	t.starts = t.starts[:0]
	t.ends = t.ends[:0]
}

// Histogram counts small non-negative integer samples (e.g. store-buffer
// chain hops per load). Samples beyond the last bucket land in the last
// bucket.
type Histogram struct {
	Buckets []uint64
	total   uint64
	sum     uint64
}

// NewHistogram creates a histogram with n buckets (values 0..n-1, with
// overflow clamped to n-1).
func NewHistogram(n int) *Histogram {
	return &Histogram{Buckets: make([]uint64, n)}
}

// Add records one sample.
func (h *Histogram) Add(v int) {
	if v < 0 {
		v = 0
	}
	if v >= len(h.Buckets) {
		v = len(h.Buckets) - 1
	}
	h.Buckets[v]++
	h.total++
	h.sum += uint64(v)
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.total }

// Mean returns the average sample value.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// FractionAtLeast returns the fraction of samples >= v.
func (h *Histogram) FractionAtLeast(v int) float64 {
	if h.total == 0 {
		return 0
	}
	var n uint64
	for i := v; i < len(h.Buckets); i++ {
		n += h.Buckets[i]
	}
	return float64(n) / float64(h.total)
}

// GeoMean returns the geometric mean of xs (each must be > 0); it is used
// for the paper's SPECint/SPECfp/SPEC speedup summaries. Non-positive
// values are skipped.
func GeoMean(xs []float64) float64 {
	prod := 1.0
	n := 0
	for _, x := range xs {
		if x > 0 {
			prod *= x
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Pow(prod, 1.0/float64(n))
}
