// Package stats provides the measurement utilities behind Table 2 and the
// §3.2 store-buffer hop claims: memory-level-parallelism trackers computed
// from miss intervals, and small integer histograms.
//
// The MLP tracker follows the paper's measurement convention: overlapping
// miss intervals are merged and the parallelism of a window is the total
// miss latency divided by the covered wall time, so a value of 1.0 means
// fully serialized misses. Histograms are plain counting bins used for
// hop counts and chain lengths; both types are cheap enough to stay
// enabled in every simulation.
package stats

import (
	"math"
	"sort"
)

// MLPTracker accumulates miss lifetime intervals and computes the average
// number of outstanding misses over cycles where at least one miss is
// outstanding — the MLP definition used by Table 2 of the paper.
type MLPTracker struct {
	starts []int64
	ends   []int64
	// MLP needs both edge lists sorted; the sorted copies are cached here
	// and rebuilt only after an Add, so repeated MLP calls (and MLP calls
	// on already-sorted recordings) don't re-copy and re-sort every time.
	sortedStarts []int64
	sortedEnds   []int64
	sorted       bool
}

// Add records one miss outstanding over [start, end). Empty or inverted
// intervals are ignored.
func (t *MLPTracker) Add(start, end int64) {
	if end <= start {
		return
	}
	t.starts = append(t.starts, start)
	t.ends = append(t.ends, end)
	t.sorted = false
}

// Count returns the number of recorded misses.
func (t *MLPTracker) Count() int { return len(t.starts) }

// MLP returns total outstanding miss-cycles divided by cycles with at
// least one outstanding miss. Zero misses yield an MLP of 0.
func (t *MLPTracker) MLP() float64 {
	if len(t.starts) == 0 {
		return 0
	}
	if !t.sorted {
		t.sortedStarts = append(t.sortedStarts[:0], t.starts...)
		t.sortedEnds = append(t.sortedEnds[:0], t.ends...)
		sort.Slice(t.sortedStarts, func(i, j int) bool { return t.sortedStarts[i] < t.sortedStarts[j] })
		sort.Slice(t.sortedEnds, func(i, j int) bool { return t.sortedEnds[i] < t.sortedEnds[j] })
		t.sorted = true
	}
	ss, es := t.sortedStarts, t.sortedEnds

	var missCycles, busyCycles int64
	outstanding := 0
	var lastEdge int64
	si, ei := 0, 0
	for ei < len(es) {
		var edge int64
		if si < len(ss) && ss[si] <= es[ei] {
			edge = ss[si]
		} else {
			edge = es[ei]
		}
		if outstanding > 0 {
			missCycles += int64(outstanding) * (edge - lastEdge)
			busyCycles += edge - lastEdge
		}
		lastEdge = edge
		if si < len(ss) && ss[si] <= es[ei] {
			outstanding++
			si++
		} else {
			outstanding--
			ei++
		}
	}
	if busyCycles == 0 {
		return 0
	}
	return float64(missCycles) / float64(busyCycles)
}

// Reset discards all recorded intervals.
func (t *MLPTracker) Reset() {
	t.starts = t.starts[:0]
	t.ends = t.ends[:0]
	t.sortedStarts = t.sortedStarts[:0]
	t.sortedEnds = t.sortedEnds[:0]
	t.sorted = false
}

// Histogram counts small non-negative integer samples (e.g. store-buffer
// chain hops per load). Samples beyond the last bucket land in the last
// bucket.
type Histogram struct {
	Buckets []uint64
	total   uint64
	sum     uint64
}

// NewHistogram creates a histogram with n buckets (values 0..n-1, with
// overflow clamped to n-1).
func NewHistogram(n int) *Histogram {
	return &Histogram{Buckets: make([]uint64, n)}
}

// Add records one sample.
func (h *Histogram) Add(v int) {
	if v < 0 {
		v = 0
	}
	if v >= len(h.Buckets) {
		v = len(h.Buckets) - 1
	}
	h.Buckets[v]++
	h.total++
	h.sum += uint64(v)
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.total }

// Mean returns the average sample value.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// FractionAtLeast returns the fraction of samples >= v.
func (h *Histogram) FractionAtLeast(v int) float64 {
	if h.total == 0 {
		return 0
	}
	var n uint64
	for i := v; i < len(h.Buckets); i++ {
		n += h.Buckets[i]
	}
	return float64(n) / float64(h.total)
}

// MeanCI95 returns the sample mean of xs and the 95% confidence
// half-width of that mean under the normal approximation (1.96·s/√k with
// the sample standard deviation s) — the stratified-sampling error bar of
// SMARTS-style interval simulation. Fewer than two samples give a
// half-width of 0 (no spread information).
func MeanCI95(xs []float64) (mean, ci float64) {
	k := len(xs)
	if k == 0 {
		return 0, 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean = sum / float64(k)
	if k < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	s := math.Sqrt(ss / float64(k-1))
	return mean, 1.96 * s / math.Sqrt(float64(k))
}

// RatioCI95 propagates independent 95% half-widths through the ratio
// num/den by the first-order delta method: the relative half-widths add
// in quadrature. It is how sampled speedups (cycle ratios of two
// independently sampled runs) get their error bars. A zero numerator or
// denominator yields (0, 0).
func RatioCI95(num, numCI, den, denCI float64) (ratio, ci float64) {
	if num == 0 || den == 0 {
		return 0, 0
	}
	ratio = num / den
	rel := math.Sqrt((numCI/num)*(numCI/num) + (denCI/den)*(denCI/den))
	return ratio, math.Abs(ratio) * rel
}

// GeoMean returns the geometric mean of xs (each must be > 0); it is used
// for the paper's SPECint/SPECfp/SPEC speedup summaries. Non-positive
// values are skipped.
func GeoMean(xs []float64) float64 {
	prod := 1.0
	n := 0
	for _, x := range xs {
		if x > 0 {
			prod *= x
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Pow(prod, 1.0/float64(n))
}
