package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMLPEmpty(t *testing.T) {
	var tr MLPTracker
	if tr.MLP() != 0 || tr.Count() != 0 {
		t.Fatal("empty tracker must report 0")
	}
}

func TestMLPSingleMiss(t *testing.T) {
	var tr MLPTracker
	tr.Add(100, 500)
	if got := tr.MLP(); got != 1 {
		t.Fatalf("single miss MLP = %v, want 1", got)
	}
}

func TestMLPTwoFullyOverlapped(t *testing.T) {
	var tr MLPTracker
	tr.Add(0, 100)
	tr.Add(0, 100)
	if got := tr.MLP(); got != 2 {
		t.Fatalf("overlapped MLP = %v, want 2", got)
	}
}

func TestMLPTwoDisjoint(t *testing.T) {
	var tr MLPTracker
	tr.Add(0, 100)
	tr.Add(200, 300)
	if got := tr.MLP(); got != 1 {
		t.Fatalf("disjoint MLP = %v, want 1", got)
	}
}

func TestMLPPartialOverlap(t *testing.T) {
	var tr MLPTracker
	// [0,100) and [50,150): 100 cycles single + 50 cycles double
	// = (100*1? let's compute: 0-50 one, 50-100 two, 100-150 one.
	// miss-cycles = 50 + 100 + 50 = 200; busy = 150; MLP = 4/3.
	tr.Add(0, 100)
	tr.Add(50, 150)
	if got := tr.MLP(); math.Abs(got-4.0/3.0) > 1e-9 {
		t.Fatalf("partial overlap MLP = %v, want 1.333", got)
	}
}

func TestMLPIgnoresEmptyIntervals(t *testing.T) {
	var tr MLPTracker
	tr.Add(10, 10)
	tr.Add(10, 5)
	if tr.Count() != 0 {
		t.Fatal("degenerate intervals must be ignored")
	}
}

func TestMLPReset(t *testing.T) {
	var tr MLPTracker
	tr.Add(0, 10)
	tr.Reset()
	if tr.Count() != 0 || tr.MLP() != 0 {
		t.Fatal("Reset must clear state")
	}
}

// Property: MLP is always within [1, N] for N non-empty intervals.
func TestMLPBoundsProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		var tr MLPTracker
		n := 0
		for i := 0; i+1 < len(raw) && n < 50; i += 2 {
			s := int64(raw[i])
			e := s + int64(raw[i+1]%1000) + 1
			tr.Add(s, e)
			n++
		}
		if n == 0 {
			return true
		}
		m := tr.MLP()
		return m >= 1 && m <= float64(n)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(4)
	h.Add(0)
	h.Add(1)
	h.Add(1)
	h.Add(9) // clamps to bucket 3
	if h.Count() != 4 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Buckets[0] != 1 || h.Buckets[1] != 2 || h.Buckets[3] != 1 {
		t.Fatalf("buckets = %v", h.Buckets)
	}
	if got := h.Mean(); math.Abs(got-(0+1+1+3)/4.0) > 1e-9 {
		t.Fatalf("Mean = %v", got)
	}
	if got := h.FractionAtLeast(1); math.Abs(got-0.75) > 1e-9 {
		t.Fatalf("FractionAtLeast(1) = %v", got)
	}
	if h.FractionAtLeast(4) != 0 {
		t.Fatal("FractionAtLeast beyond buckets must be 0")
	}
}

func TestHistogramNegativeClamps(t *testing.T) {
	h := NewHistogram(2)
	h.Add(-5)
	if h.Buckets[0] != 1 {
		t.Fatal("negative sample must clamp to 0")
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(2)
	if h.Mean() != 0 || h.FractionAtLeast(0) != 0 {
		t.Fatal("empty histogram must report zeros")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{4, 9}); math.Abs(got-6) > 1e-9 {
		t.Fatalf("GeoMean(4,9) = %v, want 6", got)
	}
	if got := GeoMean([]float64{2, 2, 2}); math.Abs(got-2) > 1e-9 {
		t.Fatalf("GeoMean(2,2,2) = %v", got)
	}
	if GeoMean(nil) != 0 {
		t.Fatal("GeoMean(nil) must be 0")
	}
	// Non-positive values skipped.
	if got := GeoMean([]float64{0, -1, 8}); math.Abs(got-8) > 1e-9 {
		t.Fatalf("GeoMean skip = %v", got)
	}
}

// TestMLPSortCacheInterleaved pins the sort-once-behind-a-dirty-flag
// optimization: repeated MLP() calls return identical values, an Add
// between calls invalidates the cached sorted copies, and Reset clears
// them — the tracker must behave exactly as if it sorted on every call.
func TestMLPSortCacheInterleaved(t *testing.T) {
	var tr MLPTracker
	// Deliberately out of order so a stale sorted cache would be wrong.
	tr.Add(200, 300)
	tr.Add(0, 100)
	if a, b := tr.MLP(), tr.MLP(); a != b || a != 1 {
		t.Fatalf("repeated MLP() = %v then %v, want stable 1", a, b)
	}
	// This interval overlaps both earlier ones; a tracker that kept the
	// stale sorted edges would miss it.
	tr.Add(0, 300)
	// fresh computes the same recording from scratch.
	var fresh MLPTracker
	fresh.Add(200, 300)
	fresh.Add(0, 100)
	fresh.Add(0, 300)
	if got, want := tr.MLP(), fresh.MLP(); got != want {
		t.Fatalf("MLP after interleaved Add = %v, fresh tracker = %v", got, want)
	}
	if got := tr.MLP(); got != fresh.MLP() {
		t.Fatalf("second MLP after Add = %v, want %v", got, fresh.MLP())
	}
	tr.Reset()
	if tr.MLP() != 0 || tr.Count() != 0 {
		t.Fatal("Reset must clear the recording and the sorted cache")
	}
	tr.Add(0, 50)
	if got := tr.MLP(); got != 1 {
		t.Fatalf("MLP after Reset+Add = %v, want 1 (stale cache leaked)", got)
	}
}

func TestMeanCI95(t *testing.T) {
	if m, ci := MeanCI95(nil); m != 0 || ci != 0 {
		t.Fatal("empty slice must report (0, 0)")
	}
	if m, ci := MeanCI95([]float64{7}); m != 7 || ci != 0 {
		t.Fatal("single sample must report (x, 0)")
	}
	m, ci := MeanCI95([]float64{1, 3})
	if m != 2 {
		t.Fatalf("mean = %v, want 2", m)
	}
	// s = sqrt(2), ci = 1.96*sqrt(2)/sqrt(2) = 1.96.
	if math.Abs(ci-1.96) > 1e-9 {
		t.Fatalf("ci = %v, want 1.96", ci)
	}
}

// TestMeanCI95ShrinksAsRootK pins the statistical contract the sampled
// harness reports to users: on a fixed-variance synthetic distribution,
// the 95% half-width shrinks like 1/sqrt(k) as windows are added.
func TestMeanCI95ShrinksAsRootK(t *testing.T) {
	// A deterministic zero-autocorrelation sequence with fixed spread:
	// alternating +1/-1 around a base, so s is identical at every even k.
	sample := func(k int) []float64 {
		xs := make([]float64, k)
		for i := range xs {
			xs[i] = 10 + float64(1-2*(i%2))
		}
		return xs
	}
	_, ci16 := MeanCI95(sample(16))
	_, ci64 := MeanCI95(sample(64))
	_, ci256 := MeanCI95(sample(256))
	if ci16 <= 0 || ci64 <= 0 || ci256 <= 0 {
		t.Fatalf("degenerate half-widths: %v %v %v", ci16, ci64, ci256)
	}
	// Quadrupling k must halve the half-width (up to the s_{k-1} factor,
	// well under 2% at these sizes).
	if r := ci16 / ci64; math.Abs(r-2) > 0.05 {
		t.Fatalf("ci(16)/ci(64) = %v, want ~2 (1/sqrt(k) scaling)", r)
	}
	if r := ci64 / ci256; math.Abs(r-2) > 0.05 {
		t.Fatalf("ci(64)/ci(256) = %v, want ~2 (1/sqrt(k) scaling)", r)
	}
}

func TestRatioCI95(t *testing.T) {
	if r, ci := RatioCI95(0, 1, 5, 1); r != 0 || ci != 0 {
		t.Fatal("zero numerator must report (0, 0)")
	}
	if r, ci := RatioCI95(5, 1, 0, 1); r != 0 || ci != 0 {
		t.Fatal("zero denominator must report (0, 0)")
	}
	r, ci := RatioCI95(10, 1, 5, 0)
	if r != 2 || math.Abs(ci-0.2) > 1e-9 {
		t.Fatalf("RatioCI95(10±1, 5±0) = %v±%v, want 2±0.2", r, ci)
	}
	// Relative widths add in quadrature: 3% and 4% give 5%.
	r, ci = RatioCI95(100, 3, 50, 2)
	if r != 2 || math.Abs(ci-2*0.05) > 1e-9 {
		t.Fatalf("RatioCI95(100±3, 50±2) = %v±%v, want 2±0.1", r, ci)
	}
}
