package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMLPEmpty(t *testing.T) {
	var tr MLPTracker
	if tr.MLP() != 0 || tr.Count() != 0 {
		t.Fatal("empty tracker must report 0")
	}
}

func TestMLPSingleMiss(t *testing.T) {
	var tr MLPTracker
	tr.Add(100, 500)
	if got := tr.MLP(); got != 1 {
		t.Fatalf("single miss MLP = %v, want 1", got)
	}
}

func TestMLPTwoFullyOverlapped(t *testing.T) {
	var tr MLPTracker
	tr.Add(0, 100)
	tr.Add(0, 100)
	if got := tr.MLP(); got != 2 {
		t.Fatalf("overlapped MLP = %v, want 2", got)
	}
}

func TestMLPTwoDisjoint(t *testing.T) {
	var tr MLPTracker
	tr.Add(0, 100)
	tr.Add(200, 300)
	if got := tr.MLP(); got != 1 {
		t.Fatalf("disjoint MLP = %v, want 1", got)
	}
}

func TestMLPPartialOverlap(t *testing.T) {
	var tr MLPTracker
	// [0,100) and [50,150): 100 cycles single + 50 cycles double
	// = (100*1? let's compute: 0-50 one, 50-100 two, 100-150 one.
	// miss-cycles = 50 + 100 + 50 = 200; busy = 150; MLP = 4/3.
	tr.Add(0, 100)
	tr.Add(50, 150)
	if got := tr.MLP(); math.Abs(got-4.0/3.0) > 1e-9 {
		t.Fatalf("partial overlap MLP = %v, want 1.333", got)
	}
}

func TestMLPIgnoresEmptyIntervals(t *testing.T) {
	var tr MLPTracker
	tr.Add(10, 10)
	tr.Add(10, 5)
	if tr.Count() != 0 {
		t.Fatal("degenerate intervals must be ignored")
	}
}

func TestMLPReset(t *testing.T) {
	var tr MLPTracker
	tr.Add(0, 10)
	tr.Reset()
	if tr.Count() != 0 || tr.MLP() != 0 {
		t.Fatal("Reset must clear state")
	}
}

// Property: MLP is always within [1, N] for N non-empty intervals.
func TestMLPBoundsProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		var tr MLPTracker
		n := 0
		for i := 0; i+1 < len(raw) && n < 50; i += 2 {
			s := int64(raw[i])
			e := s + int64(raw[i+1]%1000) + 1
			tr.Add(s, e)
			n++
		}
		if n == 0 {
			return true
		}
		m := tr.MLP()
		return m >= 1 && m <= float64(n)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(4)
	h.Add(0)
	h.Add(1)
	h.Add(1)
	h.Add(9) // clamps to bucket 3
	if h.Count() != 4 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Buckets[0] != 1 || h.Buckets[1] != 2 || h.Buckets[3] != 1 {
		t.Fatalf("buckets = %v", h.Buckets)
	}
	if got := h.Mean(); math.Abs(got-(0+1+1+3)/4.0) > 1e-9 {
		t.Fatalf("Mean = %v", got)
	}
	if got := h.FractionAtLeast(1); math.Abs(got-0.75) > 1e-9 {
		t.Fatalf("FractionAtLeast(1) = %v", got)
	}
	if h.FractionAtLeast(4) != 0 {
		t.Fatal("FractionAtLeast beyond buckets must be 0")
	}
}

func TestHistogramNegativeClamps(t *testing.T) {
	h := NewHistogram(2)
	h.Add(-5)
	if h.Buckets[0] != 1 {
		t.Fatal("negative sample must clamp to 0")
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(2)
	if h.Mean() != 0 || h.FractionAtLeast(0) != 0 {
		t.Fatal("empty histogram must report zeros")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{4, 9}); math.Abs(got-6) > 1e-9 {
		t.Fatalf("GeoMean(4,9) = %v, want 6", got)
	}
	if got := GeoMean([]float64{2, 2, 2}); math.Abs(got-2) > 1e-9 {
		t.Fatalf("GeoMean(2,2,2) = %v", got)
	}
	if GeoMean(nil) != 0 {
		t.Fatal("GeoMean(nil) must be 0")
	}
	// Non-positive values skipped.
	if got := GeoMean([]float64{0, -1, 8}); math.Abs(got-8) > 1e-9 {
		t.Fatalf("GeoMean skip = %v", got)
	}
}
