// Package multipass implements "flea-flicker" Multipass pipelining
// (Barnes, Ryoo & Hwu, MICRO'05) as evaluated by the iCFP paper: Runahead
// execution extended with a result buffer that saves miss-independent
// advance results and replays them to break dependences during
// re-execution passes. Its paper configuration advances under all L2
// misses and primary data-cache misses, blocking on secondary data-cache
// misses.
//
// The mechanics live in the runahead package; this package fixes the
// configuration.
package multipass

import (
	"icfp/internal/pipeline"
	"icfp/internal/runahead"
	"icfp/internal/workload"
)

// Machine is a Multipass pipeline.
type Machine struct {
	inner *runahead.Machine
}

// New returns a Multipass machine. Unless the caller overrode it, the
// trigger is forced to the paper's Multipass setting (L2 + primary D$).
func New(cfg pipeline.Config) *Machine {
	cfg.Trigger = pipeline.TriggerPrimaryD1
	cfg.BlockSecondaryD1 = true
	return &Machine{inner: runahead.NewMultipass(cfg)}
}

// NewWithTrigger returns a Multipass machine with an explicit trigger,
// for sensitivity studies.
func NewWithTrigger(cfg pipeline.Config, trig pipeline.AdvanceTrigger, blockSecondary bool) *Machine {
	cfg.Trigger = trig
	cfg.BlockSecondaryD1 = blockSecondary
	return &Machine{inner: runahead.NewMultipass(cfg)}
}

// Run simulates the workload to completion.
func (m *Machine) Run(w *workload.Workload) pipeline.Result {
	return m.inner.Run(w)
}

// RunSampled simulates the workload under the given sampling policy.
func (m *Machine) RunSampled(w *workload.Workload, pol pipeline.SamplePolicy) pipeline.Result {
	return m.inner.RunSampled(w, pol)
}
