package multipass

import (
	"testing"

	"icfp/internal/pipeline"
	"icfp/internal/runahead"
	"icfp/internal/workload"
)

func TestMultipassAcceleratesReexecution(t *testing.T) {
	// The result buffer breaks dependences on re-execution passes, so
	// Multipass should match or beat plain Runahead on most workloads
	// (the paper: "usually slightly out-performs Runahead").
	cfg := pipeline.DefaultConfig()
	cfg.WarmupInsts = 50_000
	wins := 0
	for _, name := range []string{"ammp", "mcf", "gap"} {
		ra := runahead.New(cfg).Run(workload.SPEC(name, 250_000))
		mp := New(cfg).Run(workload.SPEC(name, 250_000))
		if mp.Cycles <= ra.Cycles {
			wins++
		}
	}
	if wins < 2 {
		t.Fatalf("Multipass beat Runahead on only %d of 3 dependent-miss workloads", wins)
	}
}

func TestMultipassAdvancesUnderPrimaryD1(t *testing.T) {
	// Multipass's paper configuration triggers on primary D$ misses too,
	// so it advances even on workloads without L2 misses.
	cfg := pipeline.DefaultConfig()
	cfg.WarmupInsts = 50_000
	r := New(cfg).Run(workload.SPEC("twolf", 200_000))
	if r.Advances == 0 {
		t.Fatal("Multipass must advance under twolf's D$ misses")
	}
}

func TestExplicitTriggerOverride(t *testing.T) {
	cfg := pipeline.DefaultConfig()
	cfg.WarmupInsts = 50_000
	l2 := NewWithTrigger(cfg, pipeline.TriggerL2Only, true).Run(workload.SPEC("twolf", 200_000))
	if l2.Advances != 0 {
		t.Fatalf("L2-only Multipass advanced %d times on an L2-hit workload", l2.Advances)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := pipeline.DefaultConfig()
	cfg.WarmupInsts = 20_000
	a := New(cfg).Run(workload.SPEC("gcc", 120_000))
	b := New(cfg).Run(workload.SPEC("gcc", 120_000))
	if a.Cycles != b.Cycles {
		t.Fatalf("non-deterministic: %d vs %d", a.Cycles, b.Cycles)
	}
}
