// Package isa defines the small RISC-like instruction set used by the
// simulator. Programs are represented as fully resolved dynamic traces:
// every instruction record carries its operands, effective address, result
// value and branch outcome. Timing models re-fetch instructions by trace
// index, which makes checkpoint/restore (needed by Runahead, Multipass,
// SLTP and iCFP) a matter of saving an index and a register snapshot.
package isa

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
)

// Op is an instruction opcode class. Classes matter only insofar as they
// determine execution latency and issue-port requirements (Table 1 of the
// paper: 2-way superscalar, 2 integer units, 1 fp/load/store/branch unit).
type Op uint8

// Opcode classes.
const (
	OpNop    Op = iota
	OpALU       // 1-cycle integer op
	OpIMul      // 4-cycle integer multiply
	OpFAdd      // 2-cycle fp add
	OpFMul      // 4-cycle fp multiply
	OpLoad      // data-cache load (3-cycle D$ pipe on a hit)
	OpStore     // store: address+data, retires via the store buffer
	OpBranch    // conditional branch
	OpJump      // unconditional direct jump
	OpCall      // call (pushes RAS)
	OpRet       // return (pops RAS)
	numOps
)

var opNames = [numOps]string{
	"nop", "alu", "imul", "fadd", "fmul", "load", "store", "br", "jmp", "call", "ret",
}

// String returns the mnemonic for the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsMem reports whether the op accesses data memory.
func (o Op) IsMem() bool { return o == OpLoad || o == OpStore }

// IsCtrl reports whether the op is a control transfer.
func (o Op) IsCtrl() bool { return o == OpBranch || o == OpJump || o == OpCall || o == OpRet }

// ExecLatency returns the execution latency in cycles for non-memory ops.
// Loads and stores derive their latency from the memory hierarchy instead.
func (o Op) ExecLatency() int {
	switch o {
	case OpIMul, OpFMul:
		return 4
	case OpFAdd:
		return 2
	default:
		return 1
	}
}

// Reg names an architectural register. The machine has 32 integer and 32
// floating-point registers; RegNone marks an absent operand.
type Reg uint8

// Register file layout.
const (
	NumIntRegs = 32
	NumFPRegs  = 32
	NumRegs    = NumIntRegs + NumFPRegs

	// RegNone marks an absent source or destination operand.
	RegNone Reg = 255
)

// Valid reports whether r names a real register.
func (r Reg) Valid() bool { return r < NumRegs }

// IntReg returns the i'th integer register.
func IntReg(i int) Reg { return Reg(i) }

// FPReg returns the i'th floating-point register.
func FPReg(i int) Reg { return Reg(NumIntRegs + i) }

// String returns "rN" for integer and "fN" for fp registers.
func (r Reg) String() string {
	switch {
	case r == RegNone:
		return "-"
	case r < NumIntRegs:
		return fmt.Sprintf("r%d", uint8(r))
	case r < NumRegs:
		return fmt.Sprintf("f%d", uint8(r)-NumIntRegs)
	default:
		return fmt.Sprintf("reg(%d)", uint8(r))
	}
}

// Inst is one dynamic instruction in a resolved trace.
type Inst struct {
	PC     uint64 // instruction address (drives I$ and branch prediction)
	Op     Op
	Dst    Reg    // destination register, RegNone if none
	Src1   Reg    // first source, RegNone if none
	Src2   Reg    // second source, RegNone if none
	Addr   uint64 // effective address for loads/stores
	Size   uint8  // access size in bytes for loads/stores
	Val    uint64 // result value (loads: loaded value; stores: stored value)
	Taken  bool   // resolved direction for branches
	Target uint64 // resolved target for taken control transfers
}

// HasDst reports whether the instruction writes a register.
func (in *Inst) HasDst() bool { return in.Dst != RegNone }

// NextPC returns the address of the next dynamic instruction.
func (in *Inst) NextPC() uint64 {
	if in.Op.IsCtrl() && in.Taken {
		return in.Target
	}
	return in.PC + 4
}

// String renders the instruction for debugging and examples.
func (in *Inst) String() string {
	switch in.Op {
	case OpLoad:
		return fmt.Sprintf("%#x: load [%#x] -> %s", in.PC, in.Addr, in.Dst)
	case OpStore:
		return fmt.Sprintf("%#x: store %s -> [%#x]", in.PC, in.Src2, in.Addr)
	case OpBranch:
		return fmt.Sprintf("%#x: br %s,%s taken=%v -> %#x", in.PC, in.Src1, in.Src2, in.Taken, in.Target)
	default:
		return fmt.Sprintf("%#x: %s %s,%s -> %s", in.PC, in.Op, in.Src1, in.Src2, in.Dst)
	}
}

// Trace is a resolved dynamic instruction stream. Index i is the i'th
// dynamic instruction; timing models address the stream by index so that
// checkpoint/restore and slice re-execution can re-fetch precisely.
type Trace struct {
	Insts []Inst
	// Name labels the workload that produced the trace.
	Name string
}

// Len returns the number of dynamic instructions.
func (t *Trace) Len() int { return len(t.Insts) }

// At returns the instruction at index i.
func (t *Trace) At(i int) *Inst { return &t.Insts[i] }

// Checksum returns a content hash over every field of every instruction.
// Identical traces hash identically; tests use it to pin that timing
// models never mutate a shared trace.
func (t *Trace) Checksum() uint64 {
	h := fnv.New64a()
	var buf [40]byte
	for i := range t.Insts {
		in := &t.Insts[i]
		binary.LittleEndian.PutUint64(buf[0:], in.PC)
		buf[8] = uint8(in.Op)
		buf[9] = uint8(in.Dst)
		buf[10] = uint8(in.Src1)
		buf[11] = uint8(in.Src2)
		buf[12] = in.Size
		if in.Taken {
			buf[13] = 1
		} else {
			buf[13] = 0
		}
		binary.LittleEndian.PutUint64(buf[16:], in.Addr)
		binary.LittleEndian.PutUint64(buf[24:], in.Val)
		binary.LittleEndian.PutUint64(buf[32:], in.Target)
		h.Write(buf[:])
	}
	return h.Sum64()
}
