package isa

import (
	"testing"
	"testing/quick"
)

func TestOpString(t *testing.T) {
	cases := map[Op]string{
		OpNop: "nop", OpALU: "alu", OpIMul: "imul", OpFAdd: "fadd",
		OpFMul: "fmul", OpLoad: "load", OpStore: "store", OpBranch: "br",
		OpJump: "jmp", OpCall: "call", OpRet: "ret",
	}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", op, got, want)
		}
	}
	if got := Op(200).String(); got != "op(200)" {
		t.Errorf("out-of-range op = %q", got)
	}
}

func TestOpClassification(t *testing.T) {
	if !OpLoad.IsMem() || !OpStore.IsMem() {
		t.Error("load/store must be memory ops")
	}
	if OpALU.IsMem() || OpBranch.IsMem() {
		t.Error("alu/branch must not be memory ops")
	}
	for _, op := range []Op{OpBranch, OpJump, OpCall, OpRet} {
		if !op.IsCtrl() {
			t.Errorf("%s must be control", op)
		}
	}
	for _, op := range []Op{OpALU, OpLoad, OpStore, OpNop} {
		if op.IsCtrl() {
			t.Errorf("%s must not be control", op)
		}
	}
}

func TestExecLatency(t *testing.T) {
	cases := map[Op]int{
		OpALU: 1, OpIMul: 4, OpFAdd: 2, OpFMul: 4, OpNop: 1, OpBranch: 1,
	}
	for op, want := range cases {
		if got := op.ExecLatency(); got != want {
			t.Errorf("%s latency = %d, want %d", op, got, want)
		}
	}
}

func TestRegNaming(t *testing.T) {
	if IntReg(5).String() != "r5" {
		t.Errorf("IntReg(5) = %s", IntReg(5))
	}
	if FPReg(3).String() != "f3" {
		t.Errorf("FPReg(3) = %s", FPReg(3))
	}
	if RegNone.String() != "-" {
		t.Errorf("RegNone = %s", RegNone)
	}
	if RegNone.Valid() {
		t.Error("RegNone must not be valid")
	}
	if !IntReg(0).Valid() || !FPReg(31).Valid() {
		t.Error("architectural registers must be valid")
	}
	if Reg(NumRegs).Valid() {
		t.Error("register beyond file must be invalid")
	}
}

func TestRegPartition(t *testing.T) {
	// Integer and FP registers must not alias.
	seen := map[Reg]bool{}
	for i := 0; i < NumIntRegs; i++ {
		seen[IntReg(i)] = true
	}
	for i := 0; i < NumFPRegs; i++ {
		if seen[FPReg(i)] {
			t.Fatalf("FPReg(%d) aliases an integer register", i)
		}
	}
}

func TestNextPC(t *testing.T) {
	in := Inst{PC: 0x1000, Op: OpALU}
	if in.NextPC() != 0x1004 {
		t.Errorf("sequential NextPC = %#x", in.NextPC())
	}
	br := Inst{PC: 0x1000, Op: OpBranch, Taken: true, Target: 0x2000}
	if br.NextPC() != 0x2000 {
		t.Errorf("taken branch NextPC = %#x", br.NextPC())
	}
	nt := Inst{PC: 0x1000, Op: OpBranch, Taken: false, Target: 0x2000}
	if nt.NextPC() != 0x1004 {
		t.Errorf("not-taken branch NextPC = %#x", nt.NextPC())
	}
}

func TestHasDst(t *testing.T) {
	with := Inst{Dst: IntReg(1)}
	without := Inst{Dst: RegNone}
	if !with.HasDst() || without.HasDst() {
		t.Error("HasDst misclassifies")
	}
}

func TestTraceAccess(t *testing.T) {
	tr := &Trace{Name: "t", Insts: []Inst{{PC: 4}, {PC: 8}}}
	if tr.Len() != 2 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.At(1).PC != 8 {
		t.Errorf("At(1).PC = %#x", tr.At(1).PC)
	}
}

func TestInstString(t *testing.T) {
	// String must not panic and must mention the PC for every op class.
	for op := OpNop; op < numOps; op++ {
		in := Inst{PC: 0x40, Op: op, Dst: IntReg(1), Src1: IntReg(2), Src2: IntReg(3)}
		if s := in.String(); s == "" {
			t.Errorf("empty String for %s", op)
		}
	}
}

func TestRegStringTotal(t *testing.T) {
	// Property: String never panics for any byte value.
	f := func(b uint8) bool { return Reg(b).String() != "" }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
