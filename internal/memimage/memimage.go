// Package memimage provides a sparse, paged functional memory image.
//
// Workload generators use it to lay out data structures (notably the linked
// lists that drive pointer-chase workloads) and the timing models use it to
// check that store-load forwarding mechanisms deliver the right values.
package memimage

import (
	"encoding/binary"
	"hash/fnv"
	"sort"
)

const (
	pageShift = 12
	pageSize  = 1 << pageShift
	pageMask  = pageSize - 1
)

// Image is a sparse byte-addressable memory. The zero value is an empty
// image ready for use; unwritten bytes read as zero.
type Image struct {
	pages map[uint64]*[pageSize]byte
}

// New returns an empty memory image.
func New() *Image {
	return &Image{pages: make(map[uint64]*[pageSize]byte)}
}

func (m *Image) page(addr uint64, create bool) *[pageSize]byte {
	if m.pages == nil {
		if !create {
			return nil
		}
		m.pages = make(map[uint64]*[pageSize]byte)
	}
	pn := addr >> pageShift
	p := m.pages[pn]
	if p == nil && create {
		p = new([pageSize]byte)
		m.pages[pn] = p
	}
	return p
}

// Read8 reads one byte.
func (m *Image) Read8(addr uint64) byte {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&pageMask]
}

// Write8 writes one byte.
func (m *Image) Write8(addr uint64, v byte) {
	m.page(addr, true)[addr&pageMask] = v
}

// Read64 reads a little-endian 64-bit word. The access may straddle pages.
func (m *Image) Read64(addr uint64) uint64 {
	if off := addr & pageMask; off <= pageSize-8 {
		// Fast path: the word lives on one page — a single map probe.
		p := m.page(addr, false)
		if p == nil {
			return 0
		}
		return binary.LittleEndian.Uint64(p[off : off+8])
	}
	var v uint64
	for i := uint64(0); i < 8; i++ {
		v |= uint64(m.Read8(addr+i)) << (8 * i)
	}
	return v
}

// Write64 writes a little-endian 64-bit word. The access may straddle pages.
func (m *Image) Write64(addr uint64, v uint64) {
	if off := addr & pageMask; off <= pageSize-8 {
		p := m.page(addr, true)
		binary.LittleEndian.PutUint64(p[off:off+8], v)
		return
	}
	for i := uint64(0); i < 8; i++ {
		m.Write8(addr+i, byte(v>>(8*i)))
	}
}

// Checksum returns a content hash of the image: identical images (same
// written bytes, regardless of write order) hash identically. Tests use
// it to pin that simulation never mutates a shared workload's memory.
func (m *Image) Checksum() uint64 {
	pns := make([]uint64, 0, len(m.pages))
	for pn := range m.pages {
		pns = append(pns, pn)
	}
	sort.Slice(pns, func(i, j int) bool { return pns[i] < pns[j] })
	h := fnv.New64a()
	var buf [8]byte
	for _, pn := range pns {
		binary.LittleEndian.PutUint64(buf[:], pn)
		h.Write(buf[:])
		h.Write(m.pages[pn][:])
	}
	return h.Sum64()
}

// PageCount returns the number of materialized pages (for tests and for
// sanity-checking workload footprints).
func (m *Image) PageCount() int { return len(m.pages) }

// Footprint returns the total bytes of materialized pages.
func (m *Image) Footprint() uint64 { return uint64(len(m.pages)) * pageSize }
