// Package memimage provides a sparse, paged functional memory image.
//
// Workload generators use it to lay out data structures (notably the linked
// lists that drive pointer-chase workloads) and the timing models use it to
// check that store-load forwarding mechanisms deliver the right values.
package memimage

const (
	pageShift = 12
	pageSize  = 1 << pageShift
	pageMask  = pageSize - 1
)

// Image is a sparse byte-addressable memory. The zero value is an empty
// image ready for use; unwritten bytes read as zero.
type Image struct {
	pages map[uint64]*[pageSize]byte
}

// New returns an empty memory image.
func New() *Image {
	return &Image{pages: make(map[uint64]*[pageSize]byte)}
}

func (m *Image) page(addr uint64, create bool) *[pageSize]byte {
	if m.pages == nil {
		if !create {
			return nil
		}
		m.pages = make(map[uint64]*[pageSize]byte)
	}
	pn := addr >> pageShift
	p := m.pages[pn]
	if p == nil && create {
		p = new([pageSize]byte)
		m.pages[pn] = p
	}
	return p
}

// Read8 reads one byte.
func (m *Image) Read8(addr uint64) byte {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&pageMask]
}

// Write8 writes one byte.
func (m *Image) Write8(addr uint64, v byte) {
	m.page(addr, true)[addr&pageMask] = v
}

// Read64 reads a little-endian 64-bit word. The access may straddle pages.
func (m *Image) Read64(addr uint64) uint64 {
	var v uint64
	for i := uint64(0); i < 8; i++ {
		v |= uint64(m.Read8(addr+i)) << (8 * i)
	}
	return v
}

// Write64 writes a little-endian 64-bit word. The access may straddle pages.
func (m *Image) Write64(addr uint64, v uint64) {
	for i := uint64(0); i < 8; i++ {
		m.Write8(addr+i, byte(v>>(8*i)))
	}
}

// PageCount returns the number of materialized pages (for tests and for
// sanity-checking workload footprints).
func (m *Image) PageCount() int { return len(m.pages) }

// Footprint returns the total bytes of materialized pages.
func (m *Image) Footprint() uint64 { return uint64(len(m.pages)) * pageSize }
