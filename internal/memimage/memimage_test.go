package memimage

import (
	"testing"
	"testing/quick"
)

func TestZeroValueReads(t *testing.T) {
	m := New()
	if m.Read8(0x1234) != 0 {
		t.Error("unwritten byte must read as zero")
	}
	if m.Read64(0xdeadbeef) != 0 {
		t.Error("unwritten word must read as zero")
	}
	var z Image // zero value usable
	if z.Read8(1) != 0 {
		t.Error("zero-value image must read zero")
	}
	z.Write8(1, 7)
	if z.Read8(1) != 7 {
		t.Error("zero-value image must accept writes")
	}
}

func TestReadWrite8(t *testing.T) {
	m := New()
	m.Write8(100, 0xAB)
	if got := m.Read8(100); got != 0xAB {
		t.Errorf("Read8 = %#x", got)
	}
	if got := m.Read8(101); got != 0 {
		t.Errorf("neighbor byte = %#x, want 0", got)
	}
}

func TestReadWrite64RoundTrip(t *testing.T) {
	m := New()
	f := func(addr uint64, v uint64) bool {
		addr &= 0xFFFFFFFF // keep page count bounded
		m.Write64(addr, v)
		return m.Read64(addr) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWrite64CrossesPage(t *testing.T) {
	m := New()
	addr := uint64(pageSize - 4) // straddles the first page boundary
	m.Write64(addr, 0x1122334455667788)
	if got := m.Read64(addr); got != 0x1122334455667788 {
		t.Errorf("cross-page read = %#x", got)
	}
	if m.PageCount() != 2 {
		t.Errorf("PageCount = %d, want 2", m.PageCount())
	}
}

func TestLittleEndianLayout(t *testing.T) {
	m := New()
	m.Write64(0, 0x0807060504030201)
	for i := uint64(0); i < 8; i++ {
		if got := m.Read8(i); got != byte(i+1) {
			t.Errorf("byte %d = %#x, want %#x", i, got, i+1)
		}
	}
}

func TestFootprint(t *testing.T) {
	m := New()
	if m.Footprint() != 0 {
		t.Error("empty image must have zero footprint")
	}
	m.Write8(0, 1)
	m.Write8(pageSize*10, 1)
	if m.PageCount() != 2 {
		t.Errorf("PageCount = %d, want 2", m.PageCount())
	}
	if m.Footprint() != 2*pageSize {
		t.Errorf("Footprint = %d", m.Footprint())
	}
}

func TestOverwrite(t *testing.T) {
	m := New()
	m.Write64(64, 1)
	m.Write64(64, 0xFFFFFFFFFFFFFFFF)
	if got := m.Read64(64); got != 0xFFFFFFFFFFFFFFFF {
		t.Errorf("overwrite read = %#x", got)
	}
}
