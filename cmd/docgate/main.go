// Command docgate is the CI gate for the documentation layer: it fails
// when the docs rot. It enforces two invariants, with zero dependencies
// beyond the standard library so it runs anywhere `go run` does:
//
//   - Markdown link integrity: every relative link in README.md and
//     docs/*.md must point at a file or directory that exists in the
//     repository (fragments are stripped; external schemes are skipped —
//     this is an offline gate, not a crawler).
//
//   - Package documentation: every package under internal/, cmd/, and
//     examples/ must carry a package-level doc comment (the
//     revive/stylecheck package-comments rule, without the dependency),
//     so `go doc` output stays self-explanatory.
//
// Run it from the repository root:
//
//	go run ./cmd/docgate
//
// It prints one line per violation and exits 1 if there were any.
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// mdLink matches inline markdown links and images: [text](target). Bare
// autolinks and reference-style links are rare enough here not to carry
// their own grammar.
var mdLink = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)[^)]*\)`)

func main() {
	var problems []string
	complain := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	checkLinks(collectMarkdown(complain), complain)
	checkPackageComments(complain)

	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "docgate:", p)
		}
		fmt.Fprintf(os.Stderr, "docgate: %d problems\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("docgate: docs and package comments are clean")
}

// collectMarkdown gathers the gated markdown files: README.md and
// everything under docs/.
func collectMarkdown(complain func(string, ...any)) []string {
	files := []string{"README.md"}
	err := filepath.WalkDir("docs", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(path, ".md") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		complain("walking docs/: %v (the docs tree is part of the deliverable)", err)
	}
	return files
}

// checkLinks verifies every relative link target in the given markdown
// files exists.
func checkLinks(files []string, complain func(string, ...any)) {
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			complain("%s: %v", file, err)
			continue
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue // external: offline gate
			}
			target, _, _ = strings.Cut(target, "#")
			if target == "" {
				continue // pure fragment: same-file anchor
			}
			// Links resolve relative to the file that makes them.
			resolved := filepath.Join(filepath.Dir(file), target)
			if _, err := os.Stat(resolved); err != nil {
				complain("%s: broken link %q (resolved %s)", file, m[1], resolved)
			}
		}
	}
}

// checkPackageComments walks the source trees and requires a package
// doc comment on every package (on any one file, per godoc's rules;
// test files and generated mains of examples count too — an example is
// documentation).
func checkPackageComments(complain func(string, ...any)) {
	fset := token.NewFileSet()
	for _, root := range []string{"internal", "cmd", "examples"} {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil || !d.IsDir() {
				return err
			}
			pkgs, perr := parser.ParseDir(fset, path, nil, parser.PackageClauseOnly|parser.ParseComments)
			if perr != nil {
				complain("%s: %v", path, perr)
				return nil
			}
			for name, pkg := range pkgs {
				if strings.HasSuffix(name, "_test") {
					continue
				}
				documented := false
				for _, f := range pkg.Files {
					if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
						documented = true
						break
					}
				}
				if !documented {
					complain("%s: package %s has no package doc comment", path, name)
				}
			}
			return nil
		})
		if err != nil {
			complain("walking %s: %v", root, err)
		}
	}
}
