// Command fuzzgate is the differential-correctness gate: it runs the
// committed adversarial corpus (workload.FuzzCorpus) through the
// cross-model oracle (internal/diffcheck), fails on any violated
// invariant, and pins every model's per-scenario stats byte-for-byte
// against a committed golden file — so a change that shifts any model
// on any corpus member is either a caught bug or a consciously
// refreshed golden.
//
//	go run ./cmd/fuzzgate                  # gate against the committed golden
//	go run ./cmd/fuzzgate -update          # rewrite the golden in place
//	go run ./cmd/fuzzgate -expand 50       # also check 50 fresh seeds (invariants only)
//	go run ./cmd/fuzzgate -perturb icfp    # oracle self-test: must fail
//
// The -expand mode is the nightly seed-expansion sweep: members of the
// fuzz family the corpus does not pin, derived deterministically from
// -expand-seed, checked against the invariants alone (no golden — the
// point is new territory every night via a date-derived seed). A
// violation prints the member's exact (seed, knobs) identity, which is
// everything needed to reproduce it or promote it into the corpus.
//
// -perturb corrupts the named model's stats before checking and
// inverts the exit status: the gate then *must* report a violation, or
// the oracle itself has lost its teeth. CI runs one perturbed pass so
// a refactor cannot silently disable the invariants.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"icfp/internal/diffcheck"
	"icfp/internal/exp"
	"icfp/internal/workload"
)

var (
	flagGolden  = flag.String("golden", "cmd/fuzzgate/golden_corpus.json", "committed golden stats file")
	flagUpdate  = flag.Bool("update", false, "rewrite the golden file from this run instead of gating")
	flagN       = flag.Int("n", 60_000, "total dynamic instructions per scenario, warmup included")
	flagWarm    = flag.Int("warm", 10_000, "per-sample machine warmup instructions")
	flagExpand  = flag.Int("expand", 0, "also oracle-check this many fresh fuzz members (invariants only)")
	flagSeed    = flag.Int64("expand-seed", 1, "base seed of the -expand sweep (nightly passes a date-derived value)")
	flagPerturb = flag.String("perturb", "", "corrupt this model's stats and require the oracle to catch it (self-test)")
	flagPar     = flag.Int("parallelism", 0, "exp worker-pool size (0 means GOMAXPROCS)")
)

// expandCases derives n fresh fuzz-family members from the base seed:
// seeds the corpus does not use, knobs drawn deterministically from the
// seed itself, so a nightly sweep is reproducible from its seed alone.
func expandCases(base int64, n int) []workload.FuzzCase {
	cases := make([]workload.FuzzCase, 0, n)
	for i := 0; i < n; i++ {
		seed := 10_000 + base*int64(n) + int64(i)
		knob := func(key int64) int {
			x := (seed*6364136223846793005 + key*1442695040888963407) >> 33
			if x < 0 {
				x = -x
			}
			return int(x % 101)
		}
		cases = append(cases, workload.FuzzCase{
			Label: fmt.Sprintf("expand-%d", i),
			Seed:  seed,
			Knobs: workload.FuzzKnobs{
				SBPressure:   knob(1),
				BranchOnLoad: knob(2),
				MissCluster:  knob(3),
				RallyStarve:  knob(4),
			},
		})
	}
	return cases
}

// summarize prints one line per scenario and every violation, returning
// the number of scenarios with violations.
func summarize(reports []diffcheck.Report) int {
	failed := 0
	for _, r := range reports {
		status := "ok"
		if !r.OK() {
			status = fmt.Sprintf("FAIL (%d violations)", len(r.Violations))
			failed++
		}
		fmt.Printf("fuzzgate: %-28s %s\n", r.Scenario, status)
		for _, v := range r.Violations {
			fmt.Printf("fuzzgate:   violation: %s\n", v)
		}
	}
	return failed
}

func run() error {
	flag.Parse()

	opts := diffcheck.Options{
		N: *flagN, Warm: *flagWarm,
		Perturb:     *flagPerturb,
		Parallelism: *flagPar,
		Cache:       exp.NewCache(),
		Arena:       exp.NewArena(),
	}

	corpus := workload.FuzzCorpus()
	reports, err := diffcheck.CheckAll(corpus, opts)
	if err != nil {
		return err
	}
	failed := summarize(reports)

	if *flagExpand > 0 {
		fmt.Printf("fuzzgate: expanding: %d fresh members from base seed %d\n", *flagExpand, *flagSeed)
		expanded, err := diffcheck.CheckAll(expandCases(*flagSeed, *flagExpand), opts)
		if err != nil {
			return err
		}
		failed += summarize(expanded)
	}

	if *flagPerturb != "" {
		// Self-test: the corrupted model must trip at least one
		// invariant; a clean pass means the oracle is broken.
		if failed == 0 {
			return fmt.Errorf("perturbed model %q passed every invariant: the oracle is not catching corruption", *flagPerturb)
		}
		fmt.Printf("fuzzgate: ok (perturbed %q caught by the invariants on %d scenarios)\n", *flagPerturb, failed)
		return nil
	}
	if failed > 0 {
		return fmt.Errorf("%d scenarios violated cross-model invariants", failed)
	}

	golden, err := json.MarshalIndent(reports, "", "  ")
	if err != nil {
		return err
	}
	golden = append(golden, '\n')
	if *flagUpdate {
		if err := os.WriteFile(*flagGolden, golden, 0o644); err != nil {
			return err
		}
		fmt.Println("fuzzgate: golden", *flagGolden, "updated")
		return nil
	}
	committed, err := os.ReadFile(*flagGolden)
	if err != nil {
		if os.IsNotExist(err) {
			return fmt.Errorf("golden %s missing; run with -update to create it", *flagGolden)
		}
		return err
	}
	if string(committed) != string(golden) {
		diffGolden(committed, golden)
		return fmt.Errorf("per-model stats diverge from golden %s; if the change is intentional, refresh it with -update", *flagGolden)
	}
	fmt.Printf("fuzzgate: ok (%d scenarios, all invariants held, stats match golden)\n", len(reports))
	return nil
}

// diffGolden prints which scenario/model entries moved, so a CI failure
// names the divergence instead of dumping two JSON blobs.
func diffGolden(committed, current []byte) {
	var want, got []diffcheck.Report
	if json.Unmarshal(committed, &want) != nil || json.Unmarshal(current, &got) != nil {
		fmt.Println("fuzzgate: golden layout changed; full re-generation needed")
		return
	}
	wantBy := make(map[string]diffcheck.Stat)
	for _, r := range want {
		for _, s := range r.Stats {
			wantBy[r.Scenario+"/"+s.Model] = s
		}
	}
	gotBy := make(map[string]diffcheck.Stat)
	for _, r := range got {
		for _, s := range r.Stats {
			k := r.Scenario + "/" + s.Model
			gotBy[k] = s
			if w, ok := wantBy[k]; !ok {
				fmt.Printf("fuzzgate: diff %-40s not in golden\n", k)
			} else if w != s {
				fmt.Printf("fuzzgate: diff %-40s cycles %d -> %d, insts %d -> %d\n",
					k, w.Cycles, s.Cycles, w.Insts, s.Insts)
			}
		}
	}
	for k := range wantBy {
		if _, ok := gotBy[k]; !ok {
			fmt.Printf("fuzzgate: diff %-40s missing from run\n", k)
		}
	}
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fuzzgate:", err)
		os.Exit(1)
	}
}
