// Command icfpsim runs one benchmark workload on one simulated
// micro-architecture and prints its statistics.
//
// Usage:
//
//	icfpsim [-model icfp] [-bench mcf] [-n 400000] [-warm 150000] [-l2lat 20]
//
// Models: inorder, runahead, multipass, sltp, icfp.
// Benchmarks: the 24 SPEC2000 profile names (ammp..wupwise, bzip2..vpr),
// or scenario:a..scenario:f for the Figure 1 micro-scenarios.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"icfp/internal/sim"
	"icfp/internal/workload"
)

var (
	flagModel = flag.String("model", "icfp", "inorder | runahead | multipass | sltp | icfp")
	flagBench = flag.String("bench", "mcf", "SPEC2000 profile name or scenario:a..scenario:f")
	flagN     = flag.Int("n", 400_000, "timed instructions")
	flagWarm  = flag.Int("warm", 150_000, "warmup instructions")
	flagL2    = flag.Int("l2lat", 20, "L2 hit latency in cycles")
	flagBase  = flag.Bool("baseline", false, "also run the in-order baseline and print speedup")
)

var models = map[string]sim.Model{
	"inorder": sim.InOrder, "runahead": sim.Runahead,
	"multipass": sim.Multipass, "sltp": sim.SLTP, "icfp": sim.ICFP,
}

var scenarios = map[string]workload.Scenario{
	"scenario:a": workload.ScenarioLoneL2,
	"scenario:b": workload.ScenarioIndependentL2,
	"scenario:c": workload.ScenarioDependentL2,
	"scenario:d": workload.ScenarioChains,
	"scenario:e": workload.ScenarioD1IndependentL2,
	"scenario:f": workload.ScenarioD1DependentL2,
}

func main() {
	flag.Parse()
	model, ok := models[strings.ToLower(*flagModel)]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown model %q\n", *flagModel)
		os.Exit(2)
	}
	cfg := sim.DefaultConfig()
	cfg.WarmupInsts = *flagWarm
	cfg.Hier.L2HitLat = *flagL2

	var load func() *workload.Workload
	if sc, ok := scenarios[*flagBench]; ok {
		cfg.WarmupInsts = 0
		load = func() *workload.Workload { return workload.NewScenario(sc) }
	} else {
		name := *flagBench
		load = func() *workload.Workload { return workload.SPEC(name, cfg.WarmupInsts+*flagN) }
	}

	r := sim.Run(model, cfg, load())
	fmt.Printf("%s on %s:\n", model, r.Name)
	fmt.Printf("  cycles        %12d\n", r.Cycles)
	fmt.Printf("  instructions  %12d   (IPC %.3f)\n", r.Insts, r.IPC())
	fmt.Printf("  D$ miss/KI    %12.1f   L2 miss/KI %.1f\n", r.DCacheMissPerKI, r.L2MissPerKI)
	fmt.Printf("  D$ MLP        %12.2f   L2 MLP     %.2f\n", r.DCacheMLP, r.L2MLP)
	fmt.Printf("  mispredicts   %12d\n", r.BranchMispredicts)
	if r.Advances > 0 {
		fmt.Printf("  advances      %12d   advance insts %d\n", r.Advances, r.AdvanceInsts)
		fmt.Printf("  rally passes  %12d   rally/KI %.0f\n", r.RallyPasses, r.RallyPerKI)
		fmt.Printf("  squashes      %12d   slice/SB overflows %d/%d\n", r.Squashes, r.SliceOverflows, r.SBOverflows)
	}
	if r.SBForwards > 0 {
		fmt.Printf("  SB forwards   %12d   mean extra hops %.3f\n", r.SBForwards, r.SBExtraHops)
	}
	if *flagBase && model != sim.InOrder {
		base := sim.Run(sim.InOrder, cfg, load())
		fmt.Printf("  speedup over in-order: %+.1f%%\n", r.SpeedupOver(base))
	}
}
