// Package cliutil holds the cache-persistence, signal, and
// transport-security plumbing shared by the experiment CLIs
// (cmd/experiments, cmd/expd), so the interrupt-snapshot semantics and
// the TLS/token flag vocabulary each live in exactly one place.
package cliutil

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"icfp/internal/dist"
	"icfp/internal/exp"
)

// SecurityFlags registers the transport-security flags every TCP
// endpoint of the fleet shares — -tls-cert/-tls-key (accepting side),
// -tls-ca/-tls-server-name (dialing side), -token (both) — and returns
// the Security they populate. The zero state (no flags set) is
// plaintext for loopback and tests; docs/OPERATIONS.md is the runbook
// for everything else.
func SecurityFlags(fs *flag.FlagSet) *dist.Security {
	sec := &dist.Security{}
	fs.StringVar(&sec.CertFile, "tls-cert", "", "PEM certificate presented to dialing peers (with -tls-key, enables TLS on the listener)")
	fs.StringVar(&sec.KeyFile, "tls-key", "", "PEM private key for -tls-cert")
	fs.StringVar(&sec.CAFile, "tls-ca", "", "PEM bundle to verify the dialed peer against (enables TLS on outbound connections)")
	fs.StringVar(&sec.ServerName, "tls-server-name", "", "hostname to verify against the peer certificate (default: the dialed host)")
	fs.StringVar(&sec.Token, "token", "", "shared fleet secret; dialers prove it before any protocol frame is processed")
	return sec
}

// PersistentCache builds the run's memoization cache, preloading the
// optional snapshot at path, and installs a SIGINT/SIGTERM handler that
// checkpoints completed results before exiting (with the conventional
// 130/143 codes) — so interrupted long runs keep their finished
// simulations. The returned save function writes the snapshot (a no-op
// without a path); callers must treat its error as fatal on the happy
// path, where a silently missing snapshot would make the next
// invocation re-simulate everything, and may merely log it on paths
// that already exit non-zero.
//
// A snapshot written under an older schema (the pre-spec,
// fingerprint-keyed format) is not an error: its entries cannot be
// re-keyed, so the run warns, starts from an empty cache, and replaces
// the file with a current-schema snapshot on save. A snapshot from a
// NEWER schema is fatal — regenerating would overwrite another build's
// accumulated results with a downgraded file.
func PersistentCache(prog, path string) (*exp.Cache, func() error, error) {
	cache := exp.NewCache()
	if path != "" {
		if err := exp.LoadCacheFile(cache, path); err != nil {
			var verr *exp.SnapshotVersionError
			if !errors.As(err, &verr) || verr.Got > exp.SnapshotVersion {
				return nil, nil, err
			}
			fmt.Fprintf(os.Stderr, "%s: cache file %s: %v — entries are re-keyed under the canonical spec schema, so the snapshot is ignored and will be regenerated\n",
				prog, path, verr)
		}
	}
	save := func() error {
		if path == "" {
			return nil
		}
		return exp.SaveCacheFile(cache, path)
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sigc
		fmt.Fprintf(os.Stderr, "%s: %v: saving partial cache and exiting\n", prog, s)
		if err := save(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: saving cache: %v\n", prog, err)
		}
		if s == syscall.SIGTERM {
			os.Exit(143)
		}
		os.Exit(130)
	}()
	return cache, save, nil
}
