// Command tracetool generates, inspects, and converts simulator traces.
//
//	tracetool -gen mcf -n 500000 -o mcf.trc     # dump a profile workload
//	tracetool -info mcf.trc                      # characterize a trace file
//	tracetool -info -gen mcf -n 500000           # characterize a profile
//
// Trace files decouple regression baselines from generator changes and
// allow externally converted traces to run on the simulator (see
// workload.ReadTrace).
package main

import (
	"flag"
	"fmt"
	"os"

	"icfp/internal/isa"
	"icfp/internal/workload"
)

var (
	flagGen  = flag.String("gen", "", "generate the named SPEC2000 profile workload")
	flagN    = flag.Int("n", 500_000, "instructions to generate")
	flagSeed = flag.Int64("seed", workload.DefaultSeed, "generator seed")
	flagOut  = flag.String("o", "", "write the trace to this file")
	flagInfo = flag.Bool("info", false, "print a trace characterization")
)

func main() {
	flag.Parse()

	var wl *workload.Workload
	switch {
	case *flagGen != "":
		wl = workload.Generate(workload.Profiles(*flagGen), *flagN, *flagSeed)
	case flag.NArg() == 1:
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if wl, err = workload.ReadTrace(f); err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "need -gen NAME or a trace file argument")
		flag.Usage()
		os.Exit(2)
	}

	if *flagOut != "" {
		f, err := os.Create(*flagOut)
		if err != nil {
			fatal(err)
		}
		if err := workload.WriteTrace(f, wl); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s: %d instructions\n", *flagOut, wl.Trace.Len())
	}
	if *flagInfo || *flagOut == "" {
		describe(wl)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracetool:", err)
	os.Exit(1)
}

// describe prints the static characterization of a trace: instruction
// mix, memory footprint, branch behaviour.
func describe(wl *workload.Workload) {
	var ops [16]int
	lines := map[uint64]struct{}{}
	pcs := map[uint64]struct{}{}
	taken := 0
	var branches int
	for i := 0; i < wl.Trace.Len(); i++ {
		in := wl.Trace.At(i)
		ops[in.Op]++
		pcs[in.PC] = struct{}{}
		if in.Op.IsMem() {
			lines[in.Addr&^63] = struct{}{}
		}
		if in.Op == isa.OpBranch {
			branches++
			if in.Taken {
				taken++
			}
		}
	}
	n := wl.Trace.Len()
	fmt.Printf("trace %q: %d instructions, %d static PCs\n", wl.Name, n, len(pcs))
	fmt.Println("mix:")
	for op := isa.OpNop; op <= isa.OpRet; op++ {
		if ops[op] == 0 {
			continue
		}
		fmt.Printf("  %-6s %8d  (%.1f%%)\n", op, ops[op], 100*float64(ops[op])/float64(n))
	}
	fmt.Printf("data footprint: %d distinct 64B lines (%.1f KB)\n", len(lines), float64(len(lines))*64/1024)
	if branches > 0 {
		fmt.Printf("branches: %d, %.1f%% taken\n", branches, 100*float64(taken)/float64(branches))
	}
}
