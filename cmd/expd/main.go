// Command expd runs the paper's evaluation across hosts over the
// internal/dist protocol on TCP.
//
// On each worker host, start a serving daemon:
//
//	expd serve -listen :9700
//
// On the coordinator, name the workers and the experiments:
//
//	expd -connect hostA:9700,hostB:9700 -all
//	expd -connect hostA:9700 -run fig5,table2 -n 1000000 -warm 4000000
//
// The coordinator plans the deduplicated simulation jobs, shards them
// across the connected workers with work-stealing batches, merges the
// streamed results, and renders the report locally — byte-identical to
// `experiments` run in a single process, because simulations are
// deterministic pure functions of their specs. A worker host that dies
// mid-run has its unfinished batch reassigned to the survivors. Batches
// carry self-describing specs (internal/spec), so workers need no copy
// of the coordinator's job table — heterogeneous builds interoperate as
// long as they speak the same protocol version and simulate identically;
// the handshake rejects mismatched protocol versions by name.
//
// -cache-file works as in cmd/experiments: preloaded results are not
// re-dispatched, and interrupts or failures save a partial snapshot of
// everything the workers completed.
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"runtime"
	"strings"
	"time"

	"icfp/cmd/internal/cliutil"
	"icfp/internal/dist"
	"icfp/internal/exp/registry"
	"icfp/internal/sim"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		serveMain(os.Args[2:])
		return
	}
	coordMain(os.Args[1:])
}

// serveMain is the worker daemon: accept coordinator connections and
// serve the protocol on each, concurrently, until killed.
func serveMain(args []string) {
	fs := flag.NewFlagSet("expd serve", flag.ExitOnError)
	listen := fs.String("listen", ":9700", "TCP address to accept coordinators on")
	fs.Parse(args)

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "expd serve:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "expd serve: listening on %s (%d CPUs)\n", ln.Addr(), runtime.NumCPU())
	failures := 0
	for {
		conn, err := ln.Accept()
		if err != nil {
			// A transient accept failure (EMFILE, connection churn) must
			// not kill a daemon mid-serve on other connections — but a
			// listener that only ever errors is dead, so bounded
			// consecutive failures exit instead of looping forever.
			if errors.Is(err, net.ErrClosed) {
				fmt.Fprintln(os.Stderr, "expd serve: listener closed:", err)
				os.Exit(1)
			}
			failures++
			fmt.Fprintf(os.Stderr, "expd serve: accept (%d consecutive failures): %v\n", failures, err)
			if failures >= 10 {
				fmt.Fprintln(os.Stderr, "expd serve: listener looks permanently broken, exiting")
				os.Exit(1)
			}
			time.Sleep(100 * time.Millisecond)
			continue
		}
		failures = 0
		go func(c net.Conn) {
			defer c.Close()
			peer := c.RemoteAddr()
			fmt.Fprintf(os.Stderr, "expd serve: coordinator %s connected\n", peer)
			if err := dist.Serve(c); err != nil {
				fmt.Fprintf(os.Stderr, "expd serve: coordinator %s: %v\n", peer, err)
				return
			}
			fmt.Fprintf(os.Stderr, "expd serve: coordinator %s done\n", peer)
		}(conn)
	}
}

// coordMain is the coordinator: dial the worker hosts, distribute the
// run, render locally.
func coordMain(args []string) {
	fs := flag.NewFlagSet("expd", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: expd serve -listen :port        (worker host)")
		fmt.Fprintln(os.Stderr, "       expd -connect host:port,... [flags]  (coordinator)")
		fs.PrintDefaults()
	}
	var (
		connect   = fs.String("connect", "", "comma-separated worker addresses (required)")
		run       = fs.String("run", "", "comma-separated experiment names (default: every experiment)")
		all       = fs.Bool("all", false, "run every experiment (same as leaving -run empty)")
		n         = fs.Int("n", 400_000, "timed instructions per sample")
		warm      = fs.Int("warm", 150_000, "warmup instructions per sample")
		parallel  = fs.Int("parallel", 0, "per-worker pool size (0 = each worker's GOMAXPROCS)")
		cacheFile = fs.String("cache-file", "", "load/save the memoization cache from/to this JSON file")
		timeout   = fs.Duration("worker-timeout", 0, "declare a silent worker dead and reassign its batch after this long (must exceed one simulation's duration; 0 = wait forever)")
	)
	fs.Parse(args)

	fatal := func(err error) {
		fmt.Fprintln(os.Stderr, "expd:", err)
		os.Exit(1)
	}
	if *connect == "" {
		fs.Usage()
		os.Exit(2)
	}
	if *n <= 0 || *warm < 0 {
		fatal(fmt.Errorf("bad sample sizes: -n %d, -warm %d", *n, *warm))
	}
	if *run != "" && *all {
		fatal(fmt.Errorf("-run and -all are mutually exclusive"))
	}
	names := registry.Names()
	if *run != "" {
		names = names[:0]
		for _, name := range strings.Split(*run, ",") {
			if name = strings.TrimSpace(name); name != "" {
				names = append(names, name)
			}
		}
		if len(names) == 0 {
			fatal(fmt.Errorf("-run %q names no experiments", *run))
		}
	}

	cache, saveCache, err := cliutil.PersistentCache("expd", *cacheFile)
	if err != nil {
		fatal(err)
	}

	var workers []dist.Worker
	for _, addr := range strings.Split(*connect, ",") {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		w, err := dist.DialTCP(addr)
		if err != nil {
			dist.CloseAll(workers)
			fatal(err)
		}
		workers = append(workers, w)
	}

	p := registry.Params{Cfg: sim.DefaultConfig(), N: *n}
	p.Cfg.WarmupInsts = *warm
	logf := func(format string, a ...any) { fmt.Fprintf(os.Stderr, format+"\n", a...) }
	opts := dist.Options{Logf: logf, FrameTimeout: *timeout}
	if _, err := registry.ReportDistributed(os.Stdout, names, p, workers, *parallel, cache, opts); err != nil {
		if serr := saveCache(); serr != nil {
			fmt.Fprintln(os.Stderr, "expd: saving cache:", serr)
		}
		fatal(err)
	}
	// The complete snapshot: failing to persist it is a failed run.
	if err := saveCache(); err != nil {
		fatal(fmt.Errorf("saving cache: %w", err))
	}
}
