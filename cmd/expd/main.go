// Command expd runs the paper's evaluation across hosts over the
// internal/dist protocol on TCP, with optional TLS and shared-token
// authentication on every connection (docs/OPERATIONS.md is the fleet
// runbook; docs/ARCHITECTURE.md describes the protocol).
//
// It has three roles. A worker host can run a serving daemon that
// coordinators dial:
//
//	expd serve -listen :9700
//
// or dial a long-lived coordinator itself and join its fleet (elastic
// mode — workers may join or leave while a run is in flight):
//
//	expd join coord-host:9701
//
// The coordinator names the experiments and builds its fleet from
// either or both directions:
//
//	expd -connect hostA:9700,hostB:9700 -all
//	expd -accept-workers :9701 -all -cache-file sim.json
//	expd -connect hostA:9700 -accept-workers :9701 -run fig5,table2 -n 1000000 -warm 4000000
//
// The coordinator plans the deduplicated simulation jobs, shards them
// across the fleet with cost-aware work-stealing batches (per-key cost
// estimates seeded from each spec and refined online from the wall
// times workers report, so cheap keys batch large and expensive
// stragglers ship alone), merges the streamed results, and renders the
// report locally — byte-identical to `experiments` run in a single
// process at any fleet shape, because simulations are deterministic
// pure functions of their specs. A worker that dies mid-run has its
// unfinished batch reassigned to the survivors; a worker that leaves
// with `expd join`'s SIGINT/SIGTERM goodbye keeps everything it already
// streamed and hands back only the remainder. Batches carry
// self-describing specs (internal/spec), so workers need no copy of the
// coordinator's job table — heterogeneous builds interoperate as long
// as they speak the same protocol version and simulate identically; the
// handshake rejects mismatched protocol versions by name.
//
// Transport security: -tls-cert/-tls-key arm an accepting endpoint
// (serve's listener, the coordinator's -accept-workers listener),
// -tls-ca (plus optional -tls-server-name) makes a dialing endpoint
// (the coordinator's -connect, join's outbound connection) verify the
// peer, and -token arms both sides of a shared-secret preamble that is
// checked before any protocol frame is processed. Leave all of them
// unset only on loopback or a trusted network.
//
// -cache-file works as in cmd/experiments: preloaded results are not
// re-dispatched (and their recorded wall times pre-seed the cost
// model), and interrupts or failures save a partial snapshot of
// everything the workers completed.
//
// Observability: every role accepts -metrics-addr to serve /metrics
// (Prometheus text, or JSON via ?format=json) and /healthz over plain
// HTTP — bind it to loopback or an internal interface. The coordinator
// additionally beacons protocol-v4 heartbeats (-heartbeat) so idle
// workers detect a vanished coordinator fast, and -max-idle bounds how
// long an elastic run waits with zero workers before giving up. See the
// Monitoring section of docs/OPERATIONS.md for the metric catalog.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"icfp/cmd/internal/cliutil"
	"icfp/internal/dist"
	"icfp/internal/exp/registry"
	"icfp/internal/obs"
	"icfp/internal/sim"
)

// serveMetrics starts the telemetry endpoint when addr is nonempty and
// returns the registry (nil when disabled — every obs call site treats
// a nil registry as off).
func serveMetrics(role, addr string) *obs.Registry {
	if addr == "" {
		return nil
	}
	reg := obs.NewRegistry()
	bound, _, err := obs.Serve(addr, reg, nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "expd %s: %v\n", role, err)
		os.Exit(1)
	}
	obs.NewLogger(os.Stderr).Info("metrics endpoint up", obs.KeyAddr, bound)
	return reg
}

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "serve":
			serveMain(os.Args[2:])
			return
		case "join":
			joinMain(os.Args[2:])
			return
		}
	}
	coordMain(os.Args[1:])
}

// serveMain is the worker daemon: accept coordinator connections and
// serve the protocol on each, concurrently, until killed.
func serveMain(args []string) {
	fs := flag.NewFlagSet("expd serve", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: expd serve -listen :port [-tls-cert c.pem -tls-key k.pem] [-token secret]")
		fmt.Fprintln(os.Stderr, "Worker daemon: accepts coordinators (expd -connect) and simulates their batches.")
		fs.PrintDefaults()
	}
	listen := fs.String("listen", ":9700", "TCP address to accept coordinators on")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics and /healthz on this address (empty = telemetry off)")
	sec := cliutil.SecurityFlags(fs)
	fs.Parse(args)

	reg := serveMetrics("serve", *metricsAddr)
	ln, err := sec.Listen(*listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "expd serve:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "expd serve: listening on %s (%d CPUs, tls: %v, token auth: %v)\n",
		ln.Addr(), runtime.NumCPU(), sec.CertFile != "", sec.Token != "")
	failures := 0
	for {
		conn, err := ln.Accept()
		if err != nil {
			// A transient accept failure (EMFILE, connection churn) must
			// not kill a daemon mid-serve on other connections — but a
			// listener that only ever errors is dead, so bounded
			// consecutive failures exit instead of looping forever.
			if errors.Is(err, net.ErrClosed) {
				fmt.Fprintln(os.Stderr, "expd serve: listener closed:", err)
				os.Exit(1)
			}
			failures++
			fmt.Fprintf(os.Stderr, "expd serve: accept (%d consecutive failures): %v\n", failures, err)
			if failures >= 10 {
				fmt.Fprintln(os.Stderr, "expd serve: listener looks permanently broken, exiting")
				os.Exit(1)
			}
			time.Sleep(100 * time.Millisecond)
			continue
		}
		failures = 0
		go func(c net.Conn) {
			defer c.Close()
			peer := c.RemoteAddr()
			// The token preamble is verified before a single protocol
			// frame is read; an unauthenticated peer never reaches Serve.
			sc, err := sec.Secure(c)
			if err != nil {
				fmt.Fprintf(os.Stderr, "expd serve: coordinator %s: %v\n", peer, err)
				return
			}
			fmt.Fprintf(os.Stderr, "expd serve: coordinator %s connected\n", peer)
			if err := dist.Serve(sc, dist.WithMetrics(reg)); err != nil {
				fmt.Fprintf(os.Stderr, "expd serve: coordinator %s: %v\n", peer, err)
				return
			}
			fmt.Fprintf(os.Stderr, "expd serve: coordinator %s done\n", peer)
		}(conn)
	}
}

// joinMain is the elastic worker: dial a long-lived coordinator
// (expd -accept-workers), register, and simulate its batches until the
// run ends or this process is told to leave (SIGINT/SIGTERM → goodbye:
// results already streamed are kept, the batch remainder is requeued).
func joinMain(args []string) {
	fs := flag.NewFlagSet("expd join", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: expd join coordinator:port [-name label] [-retry 2s] [-tls-ca ca.pem] [-token secret]")
		fmt.Fprintln(os.Stderr, "Elastic worker: dials the coordinator's -accept-workers listener and joins its fleet,")
		fmt.Fprintln(os.Stderr, "mid-run included. SIGINT/SIGTERM sends a goodbye and exits; finished results are kept.")
		fs.PrintDefaults()
	}
	name := fs.String("name", "", "worker display name in coordinator logs (default host:pid)")
	retry := fs.Duration("retry", 2*time.Second, "redial interval while the coordinator is unreachable (0 = try once)")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics and /healthz on this address (empty = telemetry off)")
	sec := cliutil.SecurityFlags(fs)

	// Accept both `expd join host:port -flags` and `expd join -flags host:port`.
	var addr string
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		addr, args = args[0], args[1:]
	}
	fs.Parse(args)
	if addr == "" && fs.NArg() > 0 {
		addr = fs.Arg(0)
	}
	if addr == "" {
		fs.Usage()
		os.Exit(2)
	}
	if *name == "" {
		host, _ := os.Hostname()
		*name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}

	reg := serveMetrics("join", *metricsAddr)
	leave := make(chan struct{})
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sigc
		fmt.Fprintf(os.Stderr, "expd join: %v: sending goodbye and draining\n", s)
		close(leave)
		// A second signal forces an immediate exit.
		<-sigc
		os.Exit(130)
	}()

	for {
		conn, err := sec.Dial(addr)
		if err != nil {
			select {
			case <-leave:
				return
			default:
			}
			if *retry <= 0 {
				fmt.Fprintln(os.Stderr, "expd join:", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "expd join: %v; retrying in %v\n", err, *retry)
			select {
			case <-time.After(*retry):
				continue
			case <-leave:
				return
			}
		}
		err = dist.Register(conn, *name)
		if err == nil {
			fmt.Fprintf(os.Stderr, "expd join: registered with %s as %q\n", addr, *name)
			err = dist.Serve(conn, dist.LeaveOn(leave), dist.WithMetrics(reg))
		}
		conn.Close()
		select {
		case <-leave:
			fmt.Fprintln(os.Stderr, "expd join: left the fleet")
			return
		default:
		}
		if errors.Is(err, dist.ErrCoordinatorLost) && *retry > 0 {
			// The coordinator went silent past its announced heartbeat
			// grace (protocol v4): treat it like an unreachable
			// coordinator and redial, rather than dying — a restarted
			// coordinator wants its fleet back.
			fmt.Fprintf(os.Stderr, "expd join: %v; redialing in %v\n", err, *retry)
			select {
			case <-time.After(*retry):
				continue
			case <-leave:
				return
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "expd join:", err)
			os.Exit(1)
		}
		// A clean end means the coordinator finished its run and closed
		// us; with a retry interval, rejoin for the next run.
		if *retry <= 0 {
			return
		}
		fmt.Fprintf(os.Stderr, "expd join: run complete; redialing in %v\n", *retry)
		select {
		case <-time.After(*retry):
		case <-leave:
			return
		}
	}
}

// coordMain is the coordinator: build the fleet (dial -connect workers,
// accept -accept-workers joiners), distribute the run, render locally.
func coordMain(args []string) {
	fs := flag.NewFlagSet("expd", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: expd serve -listen :port                                (worker daemon)")
		fmt.Fprintln(os.Stderr, "       expd join coordinator:port                              (elastic worker)")
		fmt.Fprintln(os.Stderr, "       expd [-connect host:port,...] [-accept-workers :port] [flags]  (coordinator)")
		fmt.Fprintln(os.Stderr, "The coordinator needs at least one of -connect and -accept-workers.")
		fs.PrintDefaults()
	}
	var (
		connect   = fs.String("connect", "", "comma-separated worker addresses to dial (expd serve daemons)")
		accept    = fs.String("accept-workers", "", "TCP address to accept elastic workers on (expd join); they may join mid-run")
		run       = fs.String("run", "", "comma-separated experiment names (default: the -all set)")
		all       = fs.Bool("all", false, "run the standard experiment set (same as leaving -run empty; extras like fig5s run when named in -run)")
		n         = fs.Int("n", 400_000, "timed instructions per sample")
		warm      = fs.Int("warm", 150_000, "warmup instructions per sample")
		parallel  = fs.Int("parallel", 0, "per-worker pool size (0 = each worker's GOMAXPROCS)")
		batch     = fs.Int("batch", 0, "fixed jobs per dispatched batch (0 = cost-aware sizing from per-key estimates)")
		cacheFile = fs.String("cache-file", "", "load/save the memoization cache from/to this JSON file")
		timeout   = fs.Duration("worker-timeout", 0, "declare a silent worker dead and reassign its batch after this long (must exceed one simulation's duration; 0 = wait forever)")
		heartbeat = fs.Duration("heartbeat", 2*time.Second, "beacon a liveness heartbeat to every worker on this interval so idle workers detect a dead coordinator (0 = off)")
		maxIdle   = fs.Duration("max-idle", 0, "give up an elastic run after this long with zero workers and jobs outstanding (0 = wait forever)")
		metrics   = fs.String("metrics-addr", "", "serve /metrics and /healthz on this address (empty = telemetry off)")
	)
	sec := cliutil.SecurityFlags(fs)
	fs.Parse(args)

	fatal := func(err error) {
		fmt.Fprintln(os.Stderr, "expd:", err)
		os.Exit(1)
	}
	if *connect == "" && *accept == "" {
		fs.Usage()
		os.Exit(2)
	}
	if *n <= 0 || *warm < 0 {
		fatal(fmt.Errorf("bad sample sizes: -n %d, -warm %d", *n, *warm))
	}
	if *run != "" && *all {
		fatal(fmt.Errorf("-run and -all are mutually exclusive"))
	}
	names := registry.DefaultNames()
	if *run != "" {
		names = names[:0]
		for _, name := range strings.Split(*run, ",") {
			if name = strings.TrimSpace(name); name != "" {
				names = append(names, name)
			}
		}
		if len(names) == 0 {
			fatal(fmt.Errorf("-run %q names no experiments", *run))
		}
	}

	cache, saveCache, err := cliutil.PersistentCache("expd", *cacheFile)
	if err != nil {
		fatal(err)
	}

	log := obs.NewLogger(os.Stderr)
	reg := serveMetrics("", *metrics)
	cache.Instrument(reg)

	var workers []dist.Worker
	for _, addr := range strings.Split(*connect, ",") {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		w, err := dist.DialTCP(addr, *sec)
		if err != nil {
			dist.CloseAll(workers)
			fatal(err)
		}
		workers = append(workers, w)
	}

	var join chan dist.Worker
	if *accept != "" {
		ln, err := sec.Listen(*accept)
		if err != nil {
			dist.CloseAll(workers)
			fatal(err)
		}
		log.Info("accepting elastic workers", obs.KeyAddr, ln.Addr().String(),
			"tls", sec.CertFile != "", "token_auth", sec.Token != "")
		join = make(chan dist.Worker)
		runDone := make(chan struct{})
		go acceptWorkers(ln, *sec, join, runDone, log)
		// Once the run ends nothing reads the join channel again: stop
		// accepting and turn away candidates already mid-handshake, so a
		// late joiner gets a closed connection instead of a silent hang.
		defer close(runDone)
		defer ln.Close()
	}

	p := registry.Params{Cfg: sim.DefaultConfig(), N: *n}
	p.Cfg.WarmupInsts = *warm
	opts := dist.Options{
		Log: log, FrameTimeout: *timeout, BatchSize: *batch, Join: join,
		Heartbeat: *heartbeat, MaxIdle: *maxIdle, Metrics: reg,
	}
	if _, err := registry.ReportDistributed(os.Stdout, names, p, workers, *parallel, cache, opts); err != nil {
		if serr := saveCache(); serr != nil {
			fmt.Fprintln(os.Stderr, "expd: saving cache:", serr)
		}
		fatal(err)
	}
	// The complete snapshot: failing to persist it is a failed run.
	if err := saveCache(); err != nil {
		fatal(fmt.Errorf("saving cache: %w", err))
	}
}

// acceptWorkers feeds registering dialers into the dispatcher's join
// channel until the listener closes (when the run ends). Each candidate
// is authenticated, then its register frame validated, off the accept
// loop so one slow dialer cannot block the next; a worker whose
// handshake finishes after the run ended is closed instead of parked on
// the never-again-read join channel.
func acceptWorkers(ln net.Listener, sec dist.Security, join chan<- dist.Worker, done <-chan struct{}, log *slog.Logger) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go func(c net.Conn) {
			peer := c.RemoteAddr().String()
			sc, err := sec.Secure(c)
			if err != nil {
				log.Info("rejecting worker", obs.KeyAddr, peer, obs.KeyCause, err)
				return
			}
			w, err := dist.AcceptWorker(sc, peer)
			if err != nil {
				log.Info("rejecting worker", obs.KeyAddr, peer, obs.KeyCause, err)
				return
			}
			select {
			case join <- w:
			case <-done:
				w.RW.Close()
			}
		}(conn)
	}
}
