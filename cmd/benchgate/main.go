// Command benchgate is the performance-regression gate: it runs the
// BenchmarkSimRate suite, parses the per-model measurements (simulated
// Minst/s, B/op and allocs/op), writes them as a perf-trajectory JSON
// file, and fails when sim rates or allocation counts regressed more
// than -max-regress relative to the committed baseline (BENCH_PR6.json;
// older baselines like BENCH_PR2.json share the format and still load
// via -baseline).
//
//	go run ./cmd/benchgate                 # gate against BENCH_PR6.json
//	go run ./cmd/benchgate -update         # rewrite the baseline in place
//	go run ./cmd/benchgate -out art.json   # also export the run as an artifact
//
// Machines differ in absolute speed, so two gates apply:
//
//   - relative: every model's rate normalized by the same run's in-order
//     rate, compared against the baseline's normalized rates. This is
//     hardware-independent and always enforced — it catches any change
//     that slows one machine's machinery relative to the others.
//   - absolute: per-model Minst/s against the baseline, enforced only
//     when the run's CPU (go test's "cpu:" line) matches the baseline's,
//     since absolute rates on different hardware are incomparable. This
//     catches uniform slowdowns (e.g. a pessimized shared hierarchy)
//     that normalization hides.
//
// allocs/op is deterministic and hardware-independent, so it is gated
// directly per model with the same -max-regress threshold.
//
// The run also includes BenchmarkSampledRate, whose "errpct" metric is
// each model's CPI error under interval sampling versus the full run of
// the same trace. Simulation and window placement are deterministic, so
// the error is a stable per-model number: it lands in the trajectory's
// "sampled" section as sampled_error and is gated like a perf number —
// an accuracy regression beyond -max-regress (plus a small absolute
// floor for near-zero baselines) fails CI. Baselines without a sampled
// section (pre-sampling trajectories) skip this gate.
//
// Every baseline model must appear in the run; a model the benchmark no
// longer reports fails the gate rather than silently going ungated.
// Refresh the baseline with -update after intentional perf changes or a
// CI runner-class change.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
)

// Measurement is one model's benchmark result.
type Measurement struct {
	Model      string  `json:"model"`
	MinstPerS  float64 `json:"minst_per_s"`
	BPerOp     int64   `json:"b_per_op"`
	AllocsOp   int64   `json:"allocs_per_op"`
	NsPerOp    float64 `json:"ns_per_op"`
	Iterations int64   `json:"iterations"`
}

// SampledMeasurement is one model's sampled-mode result: the effective
// covered-trace rate (informational) and the deterministic CPI error of
// the sampled estimate versus the full run, in percent (gated).
type SampledMeasurement struct {
	Model        string  `json:"model"`
	MinstPerS    float64 `json:"minst_per_s"`
	SampledError float64 `json:"sampled_error"`
}

// Trajectory is the on-disk layout of the perf-trajectory file. History
// carries headline wall-clock numbers of past optimization PRs so the
// trend survives baseline refreshes; Benchmarks is the gated baseline;
// CPU records the hardware the rates were measured on (absolute rates
// are only compared between identical CPU strings).
type Trajectory struct {
	Note       string               `json:"note,omitempty"`
	History    map[string]string    `json:"history,omitempty"`
	CPU        string               `json:"cpu,omitempty"`
	Benchmarks []Measurement        `json:"benchmarks"`
	Sampled    []SampledMeasurement `json:"sampled,omitempty"`
}

var (
	flagBaseline = flag.String("baseline", "BENCH_PR6.json", "committed baseline trajectory file")
	flagOut      = flag.String("out", "", "also write this run's trajectory to FILE (CI artifact)")
	flagUpdate   = flag.Bool("update", false, "rewrite the baseline file from this run instead of gating")
	flagMaxReg   = flag.Float64("max-regress", 0.20, "maximum tolerated fractional sim-rate or allocs/op regression")
	flagBench    = flag.String("bench", "^(BenchmarkSimRate|BenchmarkSampledRate)$", "benchmark pattern to run")
	flagTime     = flag.String("benchtime", "", "forwarded to go test -benchtime (baseline refreshes want 3s+)")
)

// benchLine matches one "go test -bench -benchmem" result row with the
// custom Minst/s metric, e.g.:
//
//	BenchmarkSimRate/in-order-4  147  7601456 ns/op  19.74 Minst/s  570992 B/op  114 allocs/op
var benchLine = regexp.MustCompile(
	`^BenchmarkSimRate/(\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op\s+([\d.]+) Minst/s\s+(\d+) B/op\s+(\d+) allocs/op`)

// sampledLine matches one BenchmarkSampledRate row, which carries the
// additional deterministic "errpct" accuracy metric, e.g.:
//
//	BenchmarkSampledRate/iCFP-4  36  33426680 ns/op  91.25 Minst/s  1.113 errpct  4460280 B/op  1259 allocs/op
var sampledLine = regexp.MustCompile(
	`^BenchmarkSampledRate/(\S+?)(?:-\d+)?\s+\d+\s+[\d.]+ ns/op\s+([\d.eE+-]+) Minst/s\s+([\d.eE+-]+) errpct`)

func run() error {
	flag.Parse()

	args := []string{"test", "-run", "^$", "-bench", *flagBench, "-benchmem"}
	if *flagTime != "" {
		args = append(args, "-benchtime", *flagTime)
	}
	cmd := exec.Command("go", append(args, ".")...)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = os.Stderr
	fmt.Fprintln(os.Stderr, "benchgate: running", cmd.String())
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("benchmark run failed: %w", err)
	}

	var ms []Measurement
	var sms []SampledMeasurement
	var cpu string
	sc := bufio.NewScanner(&out)
	for sc.Scan() {
		if c, ok := strings.CutPrefix(sc.Text(), "cpu: "); ok {
			cpu = strings.TrimSpace(c)
			continue
		}
		if s := sampledLine.FindStringSubmatch(sc.Text()); s != nil {
			rate, _ := strconv.ParseFloat(s[2], 64)
			errPct, _ := strconv.ParseFloat(s[3], 64)
			sms = append(sms, SampledMeasurement{Model: s[1], MinstPerS: rate, SampledError: errPct})
			continue
		}
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		rate, _ := strconv.ParseFloat(m[4], 64)
		bop, _ := strconv.ParseInt(m[5], 10, 64)
		aop, _ := strconv.ParseInt(m[6], 10, 64)
		ms = append(ms, Measurement{
			Model: m[1], MinstPerS: rate, BPerOp: bop, AllocsOp: aop,
			NsPerOp: ns, Iterations: iters,
		})
	}
	if len(ms) == 0 {
		return fmt.Errorf("no BenchmarkSimRate results parsed from benchmark output:\n%s", out.String())
	}
	for _, m := range ms {
		fmt.Printf("benchgate: %-10s %8.2f Minst/s  %10d B/op  %7d allocs/op\n",
			m.Model, m.MinstPerS, m.BPerOp, m.AllocsOp)
	}
	for _, s := range sms {
		fmt.Printf("benchgate: %-10s %8.2f Minst/s  sampled CPI error %.3f%%\n",
			s.Model+" (s)", s.MinstPerS, s.SampledError)
	}

	base, err := readTrajectory(*flagBaseline)
	if os.IsNotExist(err) && !*flagUpdate {
		return fmt.Errorf("baseline %s missing; run with -update to create it", *flagBaseline)
	}
	if err != nil && !os.IsNotExist(err) {
		return err
	}

	cur := Trajectory{CPU: cpu, Benchmarks: ms, Sampled: sms}
	if base != nil {
		cur.Note, cur.History = base.Note, base.History
	}
	if *flagOut != "" {
		if err := writeTrajectory(*flagOut, cur); err != nil {
			return err
		}
	}
	if *flagUpdate {
		if err := writeTrajectory(*flagBaseline, cur); err != nil {
			return err
		}
		fmt.Println("benchgate: baseline", *flagBaseline, "updated")
		return nil
	}

	baseline := make(map[string]Measurement, len(base.Benchmarks))
	for _, m := range base.Benchmarks {
		baseline[m.Model] = m
	}
	current := make(map[string]Measurement, len(ms))
	for _, m := range ms {
		current[m.Model] = m
	}

	failed := false
	// Every baseline model must appear in the run: a model the benchmark
	// stopped reporting (regex drift, rename) must not go silently ungated.
	for _, b := range base.Benchmarks {
		if _, ok := current[b.Model]; !ok {
			failed = true
			fmt.Printf("benchgate: FAIL %-10s in baseline but missing from the run (renamed? parse drift?)\n", b.Model)
		}
	}
	for _, m := range ms {
		if _, ok := baseline[m.Model]; !ok {
			fmt.Printf("benchgate: %-10s no baseline entry (new model?); skipping\n", m.Model)
		}
	}

	// Relative gate (hardware-independent): rates normalized by the same
	// run's in-order rate.
	const ref = "in-order"
	curRef, baseRef := current[ref], baseline[ref]
	if curRef.MinstPerS > 0 && baseRef.MinstPerS > 0 {
		for _, m := range ms {
			b, ok := baseline[m.Model]
			if !ok || m.Model == ref {
				continue
			}
			curRatio := m.MinstPerS / curRef.MinstPerS
			baseRatio := b.MinstPerS / baseRef.MinstPerS
			if curRatio < baseRatio*(1-*flagMaxReg) {
				failed = true
				fmt.Printf("benchgate: FAIL %-10s %.3fx of in-order < baseline %.3fx (-%.0f%% allowed)\n",
					m.Model, curRatio, baseRatio, *flagMaxReg*100)
			}
		}
	} else {
		failed = true
		fmt.Printf("benchgate: FAIL no %q rate in run or baseline; relative gate impossible\n", ref)
	}

	// Absolute gate: only meaningful on the baseline's hardware.
	if cpu != "" && cpu == base.CPU {
		for _, m := range ms {
			b, ok := baseline[m.Model]
			if !ok {
				continue
			}
			limit := b.MinstPerS * (1 - *flagMaxReg)
			if m.MinstPerS < limit {
				failed = true
				fmt.Printf("benchgate: FAIL %-10s %.2f Minst/s < %.2f (baseline %.2f, -%.0f%% allowed)\n",
					m.Model, m.MinstPerS, limit, b.MinstPerS, *flagMaxReg*100)
			}
		}
	} else {
		fmt.Printf("benchgate: absolute gate skipped (run cpu %q, baseline cpu %q); relative gate applied\n", cpu, base.CPU)
	}

	// Allocation gate: allocs/op does not depend on the runner's speed,
	// so every model is gated directly against its baseline count.
	for _, m := range ms {
		b, ok := baseline[m.Model]
		if !ok {
			continue
		}
		limit := float64(b.AllocsOp) * (1 + *flagMaxReg)
		if float64(m.AllocsOp) > limit {
			failed = true
			fmt.Printf("benchgate: FAIL %-10s %d allocs/op > %.0f (baseline %d, +%.0f%% allowed)\n",
				m.Model, m.AllocsOp, limit, b.AllocsOp, *flagMaxReg*100)
		}
	}

	// Sampled-accuracy gate: the CPI error of the sampled path is
	// deterministic (seeded placement, deterministic simulation), so a
	// grown error is a real accuracy regression, not noise. The small
	// absolute floor keeps a near-zero baseline from failing on harmless
	// last-digit movement. Baselines predating sampling carry no entries
	// and skip the gate.
	curSampled := make(map[string]SampledMeasurement, len(sms))
	for _, s := range sms {
		curSampled[s.Model] = s
	}
	for _, b := range base.Sampled {
		s, ok := curSampled[b.Model]
		if !ok {
			failed = true
			fmt.Printf("benchgate: FAIL %-10s sampled baseline present but missing from the run\n", b.Model)
			continue
		}
		limit := b.SampledError*(1+*flagMaxReg) + 0.05
		if s.SampledError > limit {
			failed = true
			fmt.Printf("benchgate: FAIL %-10s sampled CPI error %.3f%% > %.3f%% (baseline %.3f%%, +%.0f%% allowed)\n",
				b.Model, s.SampledError, limit, b.SampledError, *flagMaxReg*100)
		}
	}

	if failed {
		return fmt.Errorf("sim-rate, allocs/op, or sampled-accuracy regression beyond %.0f%%; if intentional, refresh the baseline with -update", *flagMaxReg*100)
	}
	fmt.Println("benchgate: ok (no sim-rate, allocs/op, or sampled-accuracy regression beyond the threshold)")
	return nil
}

func readTrajectory(path string) (*Trajectory, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var t Trajectory
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return &t, nil
}

func writeTrajectory(path string, t Trajectory) error {
	data, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}
