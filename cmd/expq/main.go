// Command expq is the simulation service daemon: the long-lived front
// end that turns the batch pipeline into shared infrastructure
// (internal/serve over internal/store). Clients submit declarative
// suites — the same `-spec` documents cmd/experiments runs — over
// HTTP/JSON; results come back byte-identical to a local run.
//
// Start a daemon backed by a persistent store and an elastic worker
// fleet (docs/OPERATIONS.md has the full runbook):
//
//	expq -listen :9800 -store /var/lib/expq/store \
//	     -accept-workers :9801 -token secret
//
// Workers are plain `expd join` processes dialing -accept-workers; they
// may join and leave at any time, including mid-submission. Without
// -accept-workers, expq simulates in-process (-local bounds the pool) —
// the single-host service shape.
//
// Submit a suite and print the rendered report:
//
//	experiments -describe fig8 | expq submit -server http://host:9800 -
//	experiments -all -server http://host:9800        (same, per experiment)
//
// Every submitted job resolves through the store (a prior completion by
// any client is a hit), then the in-flight table (identical jobs
// running for another client are joined, not re-simulated), and only
// then the compute backend. Completed work persists across daemon
// restarts in the -store directory; -store-max-bytes bounds it with
// LRU-by-access eviction. -import-cache migrates a legacy `-cache-file`
// snapshot into the store once at startup.
//
// Transport security mirrors expd: -tls-cert/-tls-key arm both the
// HTTP listener and the worker listener, -token guards submissions
// (bearer token) and worker registration (preamble). -metrics-addr
// serves the expq_* store/service series plus the dist_* dispatch
// series on /metrics.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"icfp/cmd/internal/cliutil"
	"icfp/internal/dist"
	"icfp/internal/obs"
	"icfp/internal/serve"
	"icfp/internal/store"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "submit" {
		submitMain(os.Args[2:])
		return
	}
	daemonMain(os.Args[1:])
}

func daemonMain(args []string) {
	fs := flag.NewFlagSet("expq", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: expq -listen :9800 -store DIR [-accept-workers :9801] [flags]   (daemon)")
		fmt.Fprintln(os.Stderr, "       expq submit -server URL [suite.json | -]                        (client)")
		fs.PrintDefaults()
	}
	var (
		listen    = fs.String("listen", ":9800", "HTTP address for suite submissions")
		storeDir  = fs.String("store", "", "persistent result store directory (required)")
		maxBytes  = fs.Int64("store-max-bytes", 0, "evict least-recently-accessed results past this store size (0 = unbounded)")
		importC   = fs.String("import-cache", "", "one-shot migration: import this -cache-file snapshot into the store at startup")
		accept    = fs.String("accept-workers", "", "TCP address to accept elastic expd join workers on (empty = simulate in-process)")
		local     = fs.Int("local", 0, "in-process simulation pool size when no worker fleet is configured (0 = GOMAXPROCS)")
		parallel  = fs.Int("parallel", 0, "per-worker pool size (0 = each worker's GOMAXPROCS)")
		timeout   = fs.Duration("worker-timeout", 0, "declare a silent worker dead and reassign its batch after this long (0 = wait forever)")
		heartbeat = fs.Duration("heartbeat", 2*time.Second, "beacon a liveness heartbeat to every worker on this interval (0 = off)")
		maxIdle   = fs.Duration("max-idle", 0, "fail a submission after this long with zero workers and jobs outstanding (0 = wait forever)")
		metrics   = fs.String("metrics-addr", "", "serve /metrics and /healthz on this address (empty = telemetry off)")
	)
	sec := cliutil.SecurityFlags(fs)
	fs.Parse(args)

	fatal := func(err error) {
		fmt.Fprintln(os.Stderr, "expq:", err)
		os.Exit(1)
	}
	if *storeDir == "" {
		fs.Usage()
		os.Exit(2)
	}

	log := obs.NewLogger(os.Stderr)
	var reg *obs.Registry
	if *metrics != "" {
		reg = obs.NewRegistry()
		bound, _, err := obs.Serve(*metrics, reg, nil)
		if err != nil {
			fatal(err)
		}
		log.Info("metrics endpoint up", obs.KeyAddr, bound)
	}

	st, err := store.Open(*storeDir, store.Options{MaxBytes: *maxBytes})
	if err != nil {
		fatal(err)
	}
	st.Instrument(reg)
	log.Info("store open", "dir", *storeDir, "records", st.Len(), "bytes", st.Bytes())
	if *importC != "" {
		n, err := st.ImportSnapshot(*importC)
		if err != nil {
			fatal(fmt.Errorf("importing %s: %w", *importC, err))
		}
		log.Info("cache snapshot imported", "path", *importC, "new_records", n)
	}

	var join chan dist.Worker
	if *accept != "" {
		ln, err := sec.Listen(*accept)
		if err != nil {
			fatal(err)
		}
		defer ln.Close()
		log.Info("accepting elastic workers", obs.KeyAddr, ln.Addr().String(),
			"tls", sec.CertFile != "", "token_auth", sec.Token != "")
		join = make(chan dist.Worker)
		// The daemon outlives every submission: the accept loop never
		// stands down, and workers redial between coordinator rounds.
		go acceptWorkers(ln, *sec, join, log)
	}

	srv, err := serve.New(serve.Config{
		Store:          st,
		Join:           join,
		DistOpts:       dist.Options{Log: log, FrameTimeout: *timeout, Heartbeat: *heartbeat, MaxIdle: *maxIdle},
		WorkerParallel: *parallel,
		LocalParallel:  *local,
		Token:          sec.Token,
		Metrics:        reg,
		Log:            log,
	})
	if err != nil {
		fatal(err)
	}

	hln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sigc
		log.Info("shutting down", "signal", s.String())
		hs.Close()
	}()
	log.Info("submissions endpoint up", obs.KeyAddr, hln.Addr().String(),
		"tls", sec.CertFile != "", "token_auth", sec.Token != "", "backend", backendName(*accept))
	if sec.CertFile != "" {
		err = hs.ServeTLS(hln, sec.CertFile, sec.KeyFile)
	} else {
		err = hs.Serve(hln)
	}
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
}

func backendName(accept string) string {
	if accept == "" {
		return "local"
	}
	return "fleet"
}

// acceptWorkers feeds registering dialers into the service's join
// channel for as long as the daemon lives. Authentication and the
// register frame are handled off the accept loop so one slow dialer
// cannot block the next (same shape as expd's coordinator, minus the
// run-scoped shutdown: the daemon's fleet is permanent).
func acceptWorkers(ln net.Listener, sec dist.Security, join chan<- dist.Worker, log *slog.Logger) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go func(c net.Conn) {
			peer := c.RemoteAddr().String()
			sc, err := sec.Secure(c)
			if err != nil {
				log.Info("rejecting worker", obs.KeyAddr, peer, obs.KeyCause, err)
				return
			}
			w, err := dist.AcceptWorker(sc, peer)
			if err != nil {
				log.Info("rejecting worker", obs.KeyAddr, peer, obs.KeyCause, err)
				return
			}
			join <- w
		}(conn)
	}
}

func submitMain(args []string) {
	fs := flag.NewFlagSet("expq submit", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: expq submit -server URL [-token secret] [-tls-ca ca.pem] [suite.json | -]")
		fmt.Fprintln(os.Stderr, "Submits a -spec suite document to a running expq daemon and prints the rendered report.")
		fs.PrintDefaults()
	}
	var (
		server     = fs.String("server", "", "expq daemon base URL, e.g. http://host:9800")
		token      = fs.String("token", "", "bearer token (the daemon's -token)")
		caFile     = fs.String("tls-ca", "", "CA certificate file to verify an https daemon against")
		serverName = fs.String("tls-server-name", "", "expected TLS server name when it differs from the URL host")
		quiet      = fs.Bool("q", false, "suppress per-job progress on stderr")
	)
	fs.Parse(args)
	fatal := func(err error) {
		fmt.Fprintln(os.Stderr, "expq submit:", err)
		os.Exit(1)
	}
	if *server == "" {
		fs.Usage()
		os.Exit(2)
	}
	path := fs.Arg(0)
	if path == "" {
		path = "-"
	}
	var suite []byte
	var err error
	if path == "-" {
		suite, err = io.ReadAll(os.Stdin)
	} else {
		suite, err = os.ReadFile(path)
	}
	if err != nil {
		fatal(err)
	}

	c, err := serve.NewClient(*server, *token, *caFile, *serverName)
	if err != nil {
		fatal(err)
	}
	onEvent := func(e serve.Event) {
		if *quiet {
			return
		}
		switch e.Event {
		case "plan":
			fmt.Fprintf(os.Stderr, "expq submit: %d jobs (%d store hits, %d shared, %d dispatched)\n",
				e.Jobs, e.StoreHits, e.Attached, e.Dispatched)
		case "job":
			fmt.Fprintf(os.Stderr, "expq submit: %d/%d done\n", e.Done, e.Total)
		}
	}
	out, err := c.Submit(suite, onEvent)
	if err != nil {
		fatal(err)
	}
	os.Stdout.Write(out)
}
