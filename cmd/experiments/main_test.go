package main_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"icfp/internal/exp"
)

// buildBinary compiles cmd/experiments once per test binary invocation.
var buildOnce struct {
	path string
	err  error
	done bool
}

func buildBinary(t *testing.T) string {
	t.Helper()
	if !buildOnce.done {
		buildOnce.done = true
		dir, err := os.MkdirTemp("", "experiments-test-*")
		if err != nil {
			buildOnce.err = err
		} else {
			bin := filepath.Join(dir, "experiments")
			out, err := exec.Command("go", "build", "-o", bin, "icfp/cmd/experiments").CombinedOutput()
			if err != nil {
				buildOnce.err = fmt.Errorf("go build: %v\n%s", err, out)
			} else {
				buildOnce.path = bin
			}
		}
	}
	if buildOnce.err != nil {
		t.Fatal(buildOnce.err)
	}
	return buildOnce.path
}

func TestMain(m *testing.M) {
	code := m.Run()
	if buildOnce.path != "" {
		os.RemoveAll(filepath.Dir(buildOnce.path))
	}
	os.Exit(code)
}

// tinyArgs matches the committed golden: the full registry at test-scale
// sample sizes.
var tinyArgs = []string{"-all", "-n", "2000", "-warm", "1000"}

// TestWorkersGolden is the acceptance pin for the distributed
// dispatcher: -all output is byte-identical to the committed
// single-process golden at every worker count, including the real
// subprocess fan-out path (self-exec'd -worker-stdio workers over
// stdio pipes).
func TestWorkersGolden(t *testing.T) {
	bin := buildBinary(t)
	want, err := os.ReadFile("testdata/golden_all_tiny.txt")
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 2, 3} {
		args := append(append([]string{}, tinyArgs...), "-workers", fmt.Sprint(workers))
		cmd := exec.Command(bin, args...)
		var out, stderr bytes.Buffer
		cmd.Stdout = &out
		cmd.Stderr = &stderr
		if err := cmd.Run(); err != nil {
			t.Fatalf("-workers %d: %v\nstderr: %s", workers, err, stderr.String())
		}
		if !bytes.Equal(out.Bytes(), want) {
			t.Errorf("-workers %d output differs from the committed golden (simulator behaviour changed? regenerate testdata/golden_all_tiny.txt)", workers)
		}
	}
}

// TestDistributedCacheFile pins the -workers / -cache-file interplay: a
// distributed run persists its merged results, and a rerun loads them
// and simulates nothing remotely (it needs no live workers' worth of
// time — just verify output stability and that the file round-trips).
func TestDistributedCacheFile(t *testing.T) {
	bin := buildBinary(t)
	cachePath := filepath.Join(t.TempDir(), "cache.json")
	run := func(extra ...string) []byte {
		t.Helper()
		args := append([]string{"-fig8", "-n", "2000", "-warm", "1000", "-cache-file", cachePath}, extra...)
		cmd := exec.Command(bin, args...)
		var out, stderr bytes.Buffer
		cmd.Stdout = &out
		cmd.Stderr = &stderr
		if err := cmd.Run(); err != nil {
			t.Fatalf("%v: %v\nstderr: %s", args, err, stderr.String())
		}
		return out.Bytes()
	}
	first := run("-workers", "2")
	f, err := os.Open(cachePath)
	if err != nil {
		t.Fatalf("distributed run saved no cache file: %v", err)
	}
	entries, err := exp.ReadSnapshot(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("distributed run saved an empty cache snapshot")
	}
	second := run()
	if !bytes.Equal(first, second) {
		t.Error("warm-cache rerun differs from the distributed run that built the cache")
	}
}

// TestFlagValidation pins the usage-error paths: worker and pool counts
// that used to hang or misbehave are rejected up front with exit 2.
func TestFlagValidation(t *testing.T) {
	bin := buildBinary(t)
	for _, args := range [][]string{
		{"-all", "-parallel", "0"},
		{"-all", "-parallel", "-3"},
		{"-all", "-workers", "-1"},
		{"-all", "-n", "0"},
		{"-all", "-warm", "-1"},
		{},                                       // no experiments selected
		{"-spec", "whatever.json", "-fig5"},      // -spec excludes named experiments
		{"-spec", "whatever.json", "-n", "5000"}, // sample sizes come from the suite
		{"-describe", "fig6", "-fig5"},           // -describe emits one experiment
		{"-fig5", "-sample-interval", "1000"},    // -sample-* knobs refine -sample
		{"-spec", "whatever.json", "-sample"},    // sampling policies live in the suite
	} {
		cmd := exec.Command(bin, args...)
		err := cmd.Run()
		ee, ok := err.(*exec.ExitError)
		if !ok || ee.ExitCode() != 2 {
			t.Errorf("args %v: err = %v, want exit code 2", args, err)
		}
	}
}

// TestSampledRunReportsCI pins the -sample flag family end to end: a
// sampled run succeeds, reports confidence intervals in its cells, and
// the same selection in full mode reports none.
func TestSampledRunReportsCI(t *testing.T) {
	bin := buildBinary(t)
	run := func(extra ...string) string {
		t.Helper()
		args := append([]string{"-fig8", "-n", "20000", "-warm", "2000"}, extra...)
		cmd := exec.Command(bin, args...)
		var out, stderr bytes.Buffer
		cmd.Stdout = &out
		cmd.Stderr = &stderr
		if err := cmd.Run(); err != nil {
			t.Fatalf("%v: %v\nstderr: %s", args, err, stderr.String())
		}
		return out.String()
	}
	sampled := run("-sample")
	if !strings.Contains(sampled, "±") {
		t.Errorf("sampled run reports no confidence intervals:\n%s", sampled)
	}
	if full := run(); strings.Contains(full, "±") {
		t.Errorf("full run invented confidence intervals:\n%s", full)
	}
}

// TestInterruptSavesPartialCache pins the satellite guarantee: a run
// interrupted by SIGINT exits promptly and leaves a loadable cache
// snapshot behind, so completed simulations survive. The run is pinned
// to -parallel 1, so its wall time is single-core-bound (~15 s of
// simulation) and the signal reliably lands mid-run on any hardware; if
// some future machine still finishes first, the test skips rather than
// reporting a false failure.
func TestInterruptSavesPartialCache(t *testing.T) {
	bin := buildBinary(t)
	cachePath := filepath.Join(t.TempDir(), "cache.json")
	cmd := exec.Command(bin, "-all", "-n", "200000", "-warm", "50000", "-parallel", "1", "-cache-file", cachePath)
	cmd.Stdout = &bytes.Buffer{}
	cmd.Stderr = &bytes.Buffer{}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(2 * time.Second)
	if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	err := cmd.Wait()
	if err == nil {
		t.Skip("run finished before the signal landed; nothing to observe")
	}
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 130 {
		t.Fatalf("interrupted run: err = %v, want exit code 130", err)
	}
	f, err := os.Open(cachePath)
	if err != nil {
		t.Fatalf("interrupted run saved no cache snapshot: %v", err)
	}
	defer f.Close()
	entries, err := exp.ReadSnapshot(f)
	if err != nil {
		t.Fatalf("interrupted run's snapshot does not parse: %v", err)
	}
	// On a slow or loaded machine zero simulations may have completed
	// within the window; an empty-but-valid snapshot is then the correct
	// partial state, just a weaker observation.
	t.Logf("snapshot preserved %d completed simulations", len(entries))
}

// TestDescribeSpecRoundTripGolden is the acceptance pin for the spec
// redesign: for every experiment in the registry,
// `-describe <name> | -spec /dev/stdin` produces byte-identical output
// to running the experiment directly. The pairs share one -cache-file,
// so each simulation happens once across the whole test.
func TestDescribeSpecRoundTripGolden(t *testing.T) {
	bin := buildBinary(t)
	dir := t.TempDir()
	cachePath := filepath.Join(dir, "cache.json")

	list, err := exec.Command(bin, "-list").Output()
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, line := range strings.Split(strings.TrimSpace(string(list)), "\n") {
		names = append(names, strings.Fields(line)[0])
	}
	if len(names) < 10 {
		t.Fatalf("-list returned only %v", names)
	}

	for _, name := range names {
		direct := new(bytes.Buffer)
		cmd := exec.Command(bin, "-"+name, "-n", "2000", "-warm", "1000", "-cache-file", cachePath)
		cmd.Stdout = direct
		cmd.Stderr = &bytes.Buffer{}
		if err := cmd.Run(); err != nil {
			t.Fatalf("%s: direct run: %v", name, err)
		}

		suite, err := exec.Command(bin, "-describe", name, "-n", "2000", "-warm", "1000").Output()
		if err != nil {
			t.Fatalf("%s: -describe: %v", name, err)
		}
		suitePath := filepath.Join(dir, name+".json")
		if err := os.WriteFile(suitePath, suite, 0o644); err != nil {
			t.Fatal(err)
		}
		viaSpec := new(bytes.Buffer)
		cmd = exec.Command(bin, "-spec", suitePath, "-cache-file", cachePath)
		cmd.Stdout = viaSpec
		cmd.Stderr = &bytes.Buffer{}
		if err := cmd.Run(); err != nil {
			t.Fatalf("%s: -spec run: %v", name, err)
		}
		if !bytes.Equal(direct.Bytes(), viaSpec.Bytes()) {
			t.Errorf("%s: -spec output differs from the direct run:\n--- direct ---\n%s\n--- via spec ---\n%s",
				name, direct.String(), viaSpec.String())
		}
	}
}

// TestCustomSuiteExample exercises the checked-in user-authored suite:
// it must run cleanly (locally and with subprocess workers,
// byte-identically) and render the sweep it declares.
func TestCustomSuiteExample(t *testing.T) {
	bin := buildBinary(t)
	suitePath, err := filepath.Abs("../../examples/customsuite/suite.json")
	if err != nil {
		t.Fatal(err)
	}
	run := func(extra ...string) string {
		t.Helper()
		args := append([]string{"-spec", suitePath}, extra...)
		cmd := exec.Command(bin, args...)
		var out, stderr bytes.Buffer
		cmd.Stdout = &out
		cmd.Stderr = &stderr
		if err := cmd.Run(); err != nil {
			t.Fatalf("%v: %v\nstderr: %s", args, err, stderr.String())
		}
		return out.String()
	}
	local := run()
	for _, marker := range []string{"icfp-trigger-l2-sweep", "iCFP-l2", "iCFP-all", "config"} {
		if !strings.Contains(local, marker) {
			t.Errorf("suite output missing %q:\n%s", marker, local)
		}
	}
	if workers2 := run("-workers", "2"); workers2 != local {
		t.Errorf("-workers 2 suite output differs from local:\n--- local ---\n%s\n--- workers ---\n%s", local, workers2)
	}
}

// TestSpecRejectsTypos pins the strict-decoding satellite end to end: a
// typo'd field fails the run with an actionable message instead of
// silently simulating the default machine.
func TestSpecRejectsTypos(t *testing.T) {
	bin := buildBinary(t)
	good, err := os.ReadFile("../../examples/customsuite/suite.json")
	if err != nil {
		t.Fatal(err)
	}
	bad := bytes.Replace(good, []byte(`"trigger"`), []byte(`"trigerr"`), 1)
	if bytes.Equal(good, bad) {
		t.Fatal("test fixture: no trigger field to misspell")
	}
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, "-spec", path)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	err = cmd.Run()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("typo'd suite: err = %v, want exit 1", err)
	}
	if !strings.Contains(stderr.String(), "trigerr") {
		t.Errorf("error does not name the typo'd field:\n%s", stderr.String())
	}
}

// TestLegacyCacheFileRegenerates pins the snapshot-versioning satellite:
// a pre-spec (fingerprint-keyed) cache file is not a fatal decode error
// — the run warns, proceeds, and replaces it with a current-schema
// snapshot.
func TestLegacyCacheFileRegenerates(t *testing.T) {
	bin := buildBinary(t)
	cachePath := filepath.Join(t.TempDir(), "cache.json")
	legacy := []byte(`{"entries":[{"machine":"iCFP","config":"00ff00ff00ff00ff","workload":"spec:mcf:n=3000","result":{"name":"mcf","cycles":1}}]}` + "\n")
	if err := os.WriteFile(cachePath, legacy, 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, "-fig8", "-n", "2000", "-warm", "1000", "-cache-file", cachePath)
	cmd.Stdout = &bytes.Buffer{}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("run with a legacy cache file must succeed, got %v\nstderr: %s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "regenerated") {
		t.Errorf("no re-keying warning on stderr:\n%s", stderr.String())
	}
	f, err := os.Open(cachePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	entries, err := exp.ReadSnapshot(f)
	if err != nil {
		t.Fatalf("cache file was not regenerated under the current schema: %v", err)
	}
	if len(entries) == 0 {
		t.Error("regenerated cache file is empty")
	}
}

// TestFutureCacheFileIsFatal pins the other side of snapshot
// versioning: a cache file from a NEWER schema must abort the run, not
// be silently overwritten with a downgraded snapshot.
func TestFutureCacheFileIsFatal(t *testing.T) {
	bin := buildBinary(t)
	cachePath := filepath.Join(t.TempDir(), "cache.json")
	future := []byte(`{"version":99,"entries":[]}` + "\n")
	if err := os.WriteFile(cachePath, future, 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, "-table1", "-cache-file", cachePath)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	err := cmd.Run()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("future-schema cache file: err = %v, want exit 1\nstderr: %s", err, stderr.String())
	}
	if got, err := os.ReadFile(cachePath); err != nil || !bytes.Equal(got, future) {
		t.Errorf("future-schema cache file was modified (err %v):\n%s", err, got)
	}
}

// TestListStillWorks guards the registry listing against the CLI
// restructure.
func TestListStillWorks(t *testing.T) {
	bin := buildBinary(t)
	out, err := exec.Command(bin, "-list").Output()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"table1", "fig5", "ablate"} {
		if !bytes.Contains(out, []byte(name)) {
			t.Errorf("-list output missing %q:\n%s", name, out)
		}
	}
}

// TestJSONExportWithWorkers pins that -json works through the
// distributed path and round-trips.
func TestJSONExportWithWorkers(t *testing.T) {
	bin := buildBinary(t)
	jsonPath := filepath.Join(t.TempDir(), "out.json")
	cmd := exec.Command(bin, "-fig8", "-n", "2000", "-warm", "1000", "-workers", "2", "-json", jsonPath)
	cmd.Stdout = &bytes.Buffer{}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("%v\nstderr: %s", err, stderr.String())
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var ex struct {
		N           int                        `json:"n"`
		Experiments map[string]json.RawMessage `json:"experiments"`
	}
	if err := json.Unmarshal(raw, &ex); err != nil {
		t.Fatal(err)
	}
	if ex.N != 2000 || len(ex.Experiments) != 1 {
		t.Errorf("export = n %d, %d experiments; want 2000 and 1", ex.N, len(ex.Experiments))
	}
}
