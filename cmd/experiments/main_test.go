package main_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"icfp/internal/exp"
)

// buildBinary compiles cmd/experiments once per test binary invocation.
var buildOnce struct {
	path string
	err  error
	done bool
}

func buildBinary(t *testing.T) string {
	t.Helper()
	if !buildOnce.done {
		buildOnce.done = true
		dir, err := os.MkdirTemp("", "experiments-test-*")
		if err != nil {
			buildOnce.err = err
		} else {
			bin := filepath.Join(dir, "experiments")
			out, err := exec.Command("go", "build", "-o", bin, "icfp/cmd/experiments").CombinedOutput()
			if err != nil {
				buildOnce.err = fmt.Errorf("go build: %v\n%s", err, out)
			} else {
				buildOnce.path = bin
			}
		}
	}
	if buildOnce.err != nil {
		t.Fatal(buildOnce.err)
	}
	return buildOnce.path
}

func TestMain(m *testing.M) {
	code := m.Run()
	if buildOnce.path != "" {
		os.RemoveAll(filepath.Dir(buildOnce.path))
	}
	os.Exit(code)
}

// tinyArgs matches the committed golden: the full registry at test-scale
// sample sizes.
var tinyArgs = []string{"-all", "-n", "2000", "-warm", "1000"}

// TestWorkersGolden is the acceptance pin for the distributed
// dispatcher: -all output is byte-identical to the committed
// single-process golden at every worker count, including the real
// subprocess fan-out path (self-exec'd -worker-stdio workers over
// stdio pipes).
func TestWorkersGolden(t *testing.T) {
	bin := buildBinary(t)
	want, err := os.ReadFile("testdata/golden_all_tiny.txt")
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 2, 3} {
		args := append(append([]string{}, tinyArgs...), "-workers", fmt.Sprint(workers))
		cmd := exec.Command(bin, args...)
		var out, stderr bytes.Buffer
		cmd.Stdout = &out
		cmd.Stderr = &stderr
		if err := cmd.Run(); err != nil {
			t.Fatalf("-workers %d: %v\nstderr: %s", workers, err, stderr.String())
		}
		if !bytes.Equal(out.Bytes(), want) {
			t.Errorf("-workers %d output differs from the committed golden (simulator behaviour changed? regenerate testdata/golden_all_tiny.txt)", workers)
		}
	}
}

// TestDistributedCacheFile pins the -workers / -cache-file interplay: a
// distributed run persists its merged results, and a rerun loads them
// and simulates nothing remotely (it needs no live workers' worth of
// time — just verify output stability and that the file round-trips).
func TestDistributedCacheFile(t *testing.T) {
	bin := buildBinary(t)
	cachePath := filepath.Join(t.TempDir(), "cache.json")
	run := func(extra ...string) []byte {
		t.Helper()
		args := append([]string{"-fig8", "-n", "2000", "-warm", "1000", "-cache-file", cachePath}, extra...)
		cmd := exec.Command(bin, args...)
		var out, stderr bytes.Buffer
		cmd.Stdout = &out
		cmd.Stderr = &stderr
		if err := cmd.Run(); err != nil {
			t.Fatalf("%v: %v\nstderr: %s", args, err, stderr.String())
		}
		return out.Bytes()
	}
	first := run("-workers", "2")
	f, err := os.Open(cachePath)
	if err != nil {
		t.Fatalf("distributed run saved no cache file: %v", err)
	}
	entries, err := exp.ReadSnapshot(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("distributed run saved an empty cache snapshot")
	}
	second := run()
	if !bytes.Equal(first, second) {
		t.Error("warm-cache rerun differs from the distributed run that built the cache")
	}
}

// TestFlagValidation pins the usage-error paths: worker and pool counts
// that used to hang or misbehave are rejected up front with exit 2.
func TestFlagValidation(t *testing.T) {
	bin := buildBinary(t)
	for _, args := range [][]string{
		{"-all", "-parallel", "0"},
		{"-all", "-parallel", "-3"},
		{"-all", "-workers", "-1"},
		{"-all", "-n", "0"},
		{"-all", "-warm", "-1"},
		{}, // no experiments selected
	} {
		cmd := exec.Command(bin, args...)
		err := cmd.Run()
		ee, ok := err.(*exec.ExitError)
		if !ok || ee.ExitCode() != 2 {
			t.Errorf("args %v: err = %v, want exit code 2", args, err)
		}
	}
}

// TestInterruptSavesPartialCache pins the satellite guarantee: a run
// interrupted by SIGINT exits promptly and leaves a loadable cache
// snapshot behind, so completed simulations survive. The run is pinned
// to -parallel 1, so its wall time is single-core-bound (~15 s of
// simulation) and the signal reliably lands mid-run on any hardware; if
// some future machine still finishes first, the test skips rather than
// reporting a false failure.
func TestInterruptSavesPartialCache(t *testing.T) {
	bin := buildBinary(t)
	cachePath := filepath.Join(t.TempDir(), "cache.json")
	cmd := exec.Command(bin, "-all", "-n", "200000", "-warm", "50000", "-parallel", "1", "-cache-file", cachePath)
	cmd.Stdout = &bytes.Buffer{}
	cmd.Stderr = &bytes.Buffer{}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(2 * time.Second)
	if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	err := cmd.Wait()
	if err == nil {
		t.Skip("run finished before the signal landed; nothing to observe")
	}
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 130 {
		t.Fatalf("interrupted run: err = %v, want exit code 130", err)
	}
	f, err := os.Open(cachePath)
	if err != nil {
		t.Fatalf("interrupted run saved no cache snapshot: %v", err)
	}
	defer f.Close()
	entries, err := exp.ReadSnapshot(f)
	if err != nil {
		t.Fatalf("interrupted run's snapshot does not parse: %v", err)
	}
	// On a slow or loaded machine zero simulations may have completed
	// within the window; an empty-but-valid snapshot is then the correct
	// partial state, just a weaker observation.
	t.Logf("snapshot preserved %d completed simulations", len(entries))
}

// TestListStillWorks guards the registry listing against the CLI
// restructure.
func TestListStillWorks(t *testing.T) {
	bin := buildBinary(t)
	out, err := exec.Command(bin, "-list").Output()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"table1", "fig5", "ablate"} {
		if !bytes.Contains(out, []byte(name)) {
			t.Errorf("-list output missing %q:\n%s", name, out)
		}
	}
}

// TestJSONExportWithWorkers pins that -json works through the
// distributed path and round-trips.
func TestJSONExportWithWorkers(t *testing.T) {
	bin := buildBinary(t)
	jsonPath := filepath.Join(t.TempDir(), "out.json")
	cmd := exec.Command(bin, "-fig8", "-n", "2000", "-warm", "1000", "-workers", "2", "-json", jsonPath)
	cmd.Stdout = &bytes.Buffer{}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("%v\nstderr: %s", err, stderr.String())
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var ex struct {
		N           int                        `json:"n"`
		Experiments map[string]json.RawMessage `json:"experiments"`
	}
	if err := json.Unmarshal(raw, &ex); err != nil {
		t.Fatal(err)
	}
	if ex.N != 2000 || len(ex.Experiments) != 1 {
		t.Errorf("export = n %d, %d experiments; want 2000 and 1", ex.N, len(ex.Experiments))
	}
}
